package vfs

// Checkpointing: bounding recovery by periodically handing the
// durable store a full snapshot of the node tree. The store writes it
// (plus its own extent index) as an atomic image and compacts the
// journal; the next boot loads the image and replays only the tail
// (DESIGN.md §15).
//
// The snapshot must correspond exactly to one journal LSN, so
// Checkpoint holds the quiesce lock exclusively: every mutator holds
// it shared for the span that journals the record and applies the
// tree change, so when Checkpoint enters, the tree equals the journal
// prefix and nothing moves until the image is on disk. Reads are
// never blocked — they take node read locks only, and the snapshot
// walk takes the same, so lookups and READs proceed at full speed
// while a checkpoint streams out.

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/storage"
)

// Checkpoint snapshots the tree into the durable store's checkpoint
// image and compacts the journal. It returns the store's running
// checkpoint counters. Fails on stores that do not checkpoint (the
// in-memory default).
func (fs *FS) Checkpoint() (storage.CheckpointStats, error) {
	ck, ok := fs.blocks.(storage.Checkpointer)
	if !ok {
		return storage.CheckpointStats{}, fmt.Errorf("vfs: store %T cannot checkpoint", fs.blocks)
	}
	fs.quiesce.Lock()
	defer fs.quiesce.Unlock()
	return ck.Checkpoint(fs.nextID.Load(), fs.nextCookie.Load(), fs.snapshotNodes)
}

// snapshotNodes streams every live node to emit as a NodeRecord. The
// caller holds quiesce exclusively, so the tree cannot change; node
// read locks are still taken because readers may be updating nothing
// but the race detector does not know that, and shard maps are
// read-locked against concurrent lookups.
func (fs *FS) snapshotNodes(emit func(*storage.NodeRecord) error) error {
	for i := range fs.shards {
		sh := &fs.shards[i]
		sh.mu.RLock()
		ns := make([]*node, 0, len(sh.nodes))
		for _, n := range sh.nodes {
			ns = append(ns, n)
		}
		sh.mu.RUnlock()
		for _, n := range ns {
			fs.rlockNode(n)
			if n.dead {
				n.mu.RUnlock()
				continue
			}
			nr := storage.NodeRecord{
				ID:     uint64(n.id),
				Type:   uint8(n.attr.Type),
				Mode:   n.attr.Mode,
				UID:    n.attr.UID,
				GID:    n.attr.GID,
				Nlink:  n.nlink,
				Size:   n.attr.Size,
				Atime:  n.attr.Atime.UnixNano(),
				Mtime:  n.attr.Mtime.UnixNano(),
				Ctime:  n.attr.Ctime.UnixNano(),
				Parent: uint64(n.parent),
				Target: n.target,
			}
			if n.children != nil {
				nr.Ents = make([]storage.DirEntRecord, 0, len(n.children))
				for name, ent := range n.children {
					nr.Ents = append(nr.Ents, storage.DirEntRecord{
						Name: name, ID: uint64(ent.id), Cookie: ent.cookie,
					})
				}
			}
			n.mu.RUnlock()
			if err := emit(&nr); err != nil {
				return err
			}
		}
	}
	return nil
}

// StartAutoCheckpoint launches the background checkpointer: it fires
// when the journal's live bytes reach walBytes (0 disables the size
// trigger) or when every has elapsed since the last checkpoint (0
// disables the timer). The returned stop function halts the loop and
// waits for any in-flight checkpoint to finish. On a store that
// cannot checkpoint it is a no-op.
func (fs *FS) StartAutoCheckpoint(walBytes uint64, every time.Duration) (stop func()) {
	ck, ok := fs.blocks.(storage.Checkpointer)
	if !ok || (walBytes == 0 && every == 0) {
		return func() {}
	}
	poll := 250 * time.Millisecond
	if every > 0 && every/4 < poll {
		poll = max(every/4, 10*time.Millisecond)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(poll)
		defer tick.Stop()
		last := time.Now()
		var fails uint64
		var lastMsg string
		var lastWarn time.Time
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			if !(walBytes > 0 && ck.WALSizeBytes() >= walBytes) &&
				!(every > 0 && time.Since(last) >= every) {
				continue
			}
			// An error leaves the previous image and the full journal
			// intact; resetting the timer keeps a persistent failure
			// from hot-looping the disk. The store counts failures in
			// its checkpoint stats block; log here too (throttled) so a
			// journal growing without bound is never silent.
			if _, err := fs.Checkpoint(); err != nil {
				fails++
				if msg := err.Error(); msg != lastMsg || time.Since(lastWarn) >= time.Minute {
					lastMsg, lastWarn = msg, time.Now()
					log.Printf("vfs: auto-checkpoint failed (%d failures): %v", fails, err)
				}
			} else {
				fails, lastMsg = 0, ""
			}
			last = time.Now()
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
