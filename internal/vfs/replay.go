package vfs

// Journal replay: rebuilding the node tree from the MetadataStore's
// surviving records. Replay is single-threaded and runs either before
// the FS is published (NewWithStores) or against a private staging
// tree that is swapped in under every shard lock (crashRestart), so
// it uses direct map access instead of the locking helpers.
//
// The store has already rebuilt its own serving copy (content bytes)
// from the same records, in the same order, so applyRecord never
// calls back into the BlockStore — it only mirrors each mutation's
// namespace effects: entries, link counts, attributes, and the
// id/cookie watermarks. Timestamps come from the records (the vfs
// clock reading journaled with each operation), which is what makes
// replay deterministic under an injected clock.

import (
	"fmt"
	"time"

	"repro/internal/storage"
)

func (fs *FS) replayGet(id uint64) *node {
	return fs.shardOf(FileID(id)).nodes[FileID(id)]
}

func (fs *FS) replayDir(id uint64) (*node, error) {
	d := fs.replayGet(id)
	if d == nil || d.attr.Type != TypeDir {
		return nil, fmt.Errorf("vfs: journal references directory %d which does not exist", id)
	}
	return d, nil
}

func (fs *FS) noteID(id uint64) {
	if id > fs.nextID.Load() {
		fs.nextID.Store(id)
	}
}

func (fs *FS) noteCookie(c uint64) {
	if c > fs.nextCookie.Load() {
		fs.nextCookie.Store(c)
	}
}

// applyRecord replays one journal record into the tree.
func (fs *FS) applyRecord(rec storage.Record) error {
	if nr := rec.Node; nr != nil {
		// A checkpoint-image node: installed verbatim, replacing any
		// existing node of the same id (the implicit root from
		// initTree when nr.ID is 1). Image records always precede the
		// journal tail, so the tail's deltas land on top of these.
		n := &node{
			id: FileID(nr.ID),
			attr: Attr{
				Type: FileType(nr.Type), Mode: nr.Mode,
				UID: nr.UID, GID: nr.GID, Size: nr.Size,
				Atime: time.Unix(0, nr.Atime),
				Mtime: time.Unix(0, nr.Mtime),
				Ctime: time.Unix(0, nr.Ctime),
			},
			parent: FileID(nr.Parent),
			target: nr.Target,
			nlink:  nr.Nlink,
		}
		n.attr.FileID = n.id
		n.attr.Nlink = nr.Nlink
		if n.attr.Type == TypeDir {
			n.children = make(map[string]dirent, len(nr.Ents))
			for _, e := range nr.Ents {
				n.children[e.Name] = dirent{id: FileID(e.ID), cookie: e.Cookie}
				fs.noteCookie(e.Cookie)
			}
		}
		fs.shardOf(n.id).nodes[n.id] = n
		fs.noteID(nr.ID)
		return nil
	}
	if d := rec.Data; d != nil {
		n := fs.replayGet(d.ID)
		if n == nil || n.attr.Type != TypeReg {
			return fmt.Errorf("vfs: journal data record for unknown file %d", d.ID)
		}
		if end := d.Off + uint64(d.Len); end > n.attr.Size {
			n.attr.Size = end
		}
		t := time.Unix(0, d.Time)
		n.attr.Mtime, n.attr.Ctime = t, t
		return nil
	}
	m := rec.Meta
	t := time.Unix(0, m.Time)
	switch m.Op {
	case storage.OpCreate, storage.OpMkdir, storage.OpSymlink:
		d, err := fs.replayDir(m.Dir)
		if err != nil {
			return err
		}
		n := &node{
			id: FileID(m.ID),
			attr: Attr{
				Mode: m.Mode, UID: m.UID, GID: m.GID,
				Atime: t, Mtime: t, Ctime: t,
			},
			nlink: 1,
		}
		n.attr.FileID = n.id
		switch m.Op {
		case storage.OpCreate:
			n.attr.Type = TypeReg
		case storage.OpMkdir:
			n.attr.Type = TypeDir
			n.children = make(map[string]dirent)
			n.nlink = 2
			n.parent = d.id
			d.nlink++
		case storage.OpSymlink:
			n.attr.Type = TypeSymlink
			n.target = m.Target
			n.attr.Size = uint64(len(m.Target))
		}
		fs.shardOf(n.id).nodes[n.id] = n
		d.children[m.Name] = dirent{id: n.id, cookie: m.Cookie}
		fs.touchDir(d, t)
		fs.noteID(m.ID)
		fs.noteCookie(m.Cookie)

	case storage.OpLink:
		d, err := fs.replayDir(m.Dir)
		if err != nil {
			return err
		}
		n := fs.replayGet(m.ID)
		if n == nil {
			return fmt.Errorf("vfs: journal link to unknown file %d", m.ID)
		}
		d.children[m.Name] = dirent{id: n.id, cookie: m.Cookie}
		n.nlink++
		n.attr.Ctime = t
		fs.touchDir(d, t)
		fs.noteCookie(m.Cookie)

	case storage.OpRemove:
		d, err := fs.replayDir(m.Dir)
		if err != nil {
			return err
		}
		ent, ok := d.children[m.Name]
		if !ok {
			return fmt.Errorf("vfs: journal remove of missing entry %q in %d", m.Name, m.Dir)
		}
		n := fs.replayGet(uint64(ent.id))
		delete(d.children, m.Name)
		if n != nil {
			n.nlink--
			if n.nlink == 0 {
				delete(fs.shardOf(n.id).nodes, n.id)
			} else {
				n.attr.Ctime = t
			}
		}
		fs.touchDir(d, t)

	case storage.OpRmdir:
		d, err := fs.replayDir(m.Dir)
		if err != nil {
			return err
		}
		ent, ok := d.children[m.Name]
		if !ok {
			return fmt.Errorf("vfs: journal rmdir of missing entry %q in %d", m.Name, m.Dir)
		}
		delete(d.children, m.Name)
		delete(fs.shardOf(ent.id).nodes, ent.id)
		d.nlink--
		fs.touchDir(d, t)

	case storage.OpRename:
		fd, err := fs.replayDir(m.Dir)
		if err != nil {
			return err
		}
		td, err := fs.replayDir(m.ToDir)
		if err != nil {
			return err
		}
		ent, ok := fd.children[m.Name]
		if !ok {
			return fmt.Errorf("vfs: journal rename of missing entry %q in %d", m.Name, m.Dir)
		}
		n := fs.replayGet(uint64(ent.id))
		if old, hasOld := td.children[m.ToName]; hasOld && old.id != ent.id {
			if o := fs.replayGet(uint64(old.id)); o != nil {
				if o.attr.Type == TypeDir {
					delete(fs.shardOf(o.id).nodes, o.id)
					td.nlink--
				} else {
					o.nlink--
					if o.nlink == 0 {
						delete(fs.shardOf(o.id).nodes, o.id)
					}
				}
			}
		}
		delete(fd.children, m.Name)
		td.children[m.ToName] = dirent{id: ent.id, cookie: m.ToCookie}
		if n != nil && n.attr.Type == TypeDir {
			n.parent = td.id
			if fd.id != td.id {
				fd.nlink--
				td.nlink++
			}
		}
		fs.touchDir(fd, t)
		fs.touchDir(td, t)
		fs.noteCookie(m.ToCookie)

	case storage.OpSetAttr:
		n := fs.replayGet(m.ID)
		if n == nil {
			return fmt.Errorf("vfs: journal setattr on unknown file %d", m.ID)
		}
		if m.SetMask&storage.SetMode != 0 {
			n.attr.Mode = m.Mode
		}
		if m.SetMask&storage.SetUID != 0 {
			n.attr.UID = m.UID
		}
		if m.SetMask&storage.SetGID != 0 {
			n.attr.GID = m.GID
		}
		if m.SetMask&storage.SetSize != 0 {
			// The store already truncated its serving copy while
			// scanning this record.
			n.attr.Size = m.Size
		}
		if m.SetMask&storage.SetMtime != 0 {
			n.attr.Mtime = time.Unix(0, m.Mtime)
		}
		if m.SetMask&storage.SetAtime != 0 {
			n.attr.Atime = time.Unix(0, m.Atime)
		}
		n.attr.Ctime = t

	default:
		return fmt.Errorf("vfs: journal op %d unknown", m.Op)
	}
	return nil
}

// crashRestart drives the durable store through a real crash (kill -9
// semantics: buffered journal records torn off, fd closed unsynced),
// rebuilds a staging tree by replaying the surviving journal, and
// swaps it into the live FS under every shard-map lock. In-flight
// operations holding pre-crash node pointers mutate orphans — the
// same data a real crash would have lost — and the epoch-derived
// verifier change makes their clients retransmit.
func (fs *FS) crashRestart(cr storage.CrashRestarter) error {
	if err := cr.CrashRestart(); err != nil {
		return err
	}
	staging := &FS{clock: fs.clock, meta: fs.meta, blocks: fs.blocks}
	staging.initTree()
	rp, ok := fs.meta.(storage.Replayer)
	if !ok {
		return fmt.Errorf("vfs: store %T crashes but cannot replay", fs.meta)
	}
	st, err := rp.Replay(staging.applyRecord)
	if err != nil {
		return err
	}
	staging.foldWatermarks()
	for i := range fs.shards {
		fs.shards[i].mu.Lock()
	}
	for i := range fs.shards {
		fs.shards[i].nodes = staging.shards[i].nodes
	}
	fs.nextID.Store(staging.nextID.Load())
	fs.nextCookie.Store(staging.nextCookie.Load())
	fs.replayed = st
	for i := range fs.shards {
		fs.shards[i].mu.Unlock()
	}
	fs.verf.Store(fs.newVerf())
	return nil
}
