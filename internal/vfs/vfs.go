// Package vfs implements the file system substrate underneath the SFS
// read-write server: a POSIX-style file system with inodes,
// attributes, directories, symbolic links, and Unix permission checks.
//
// In the paper's implementation the SFS server relays NFS 3 calls to a
// kernel NFS server backed by FreeBSD's FFS (paper §3). This package
// stands in for that kernel file system: the NFS server in
// internal/nfs exposes a vfs.FS over the wire, and the benchmarks use
// a bare FS as the "Local" baseline. An optional Disk model charges
// simulated media time so benchmark shapes involving synchronous
// writes (e.g. the Sprite LFS unlink phase) match the paper's.
//
// # Storage
//
// The node tree holds the namespace and attributes; bytes and their
// durability belong to a storage backend behind two narrow interfaces
// (see internal/storage): a MetadataStore that journals every
// namespace/attribute mutation, and a BlockStore that holds file
// content. New uses storage/memstore — the original in-memory
// behavior, where journaling is a no-op — while NewWithStores accepts
// a durable pair such as storage/diskstore, whose write-ahead log is
// replayed here at open to rebuild the tree and whose boot epoch
// becomes the NFS write verifier (DESIGN.md §11).
//
// # Concurrency
//
// All methods are safe for concurrent use. The file system is sharded
// so that the data path of one file never contends with another's:
// nodes live in a NumShards-way striped table keyed by FileID, each
// stripe guarding only its slice of the id→node map, and every node
// carries its own RWMutex guarding its attributes, data, and directory
// entries. Read/Write/Commit/GetAttr touch exactly one node lock;
// namespace operations (Create/Remove/Rename/Link/...) lock the
// directories and nodes they mutate. The lock hierarchy (see
// DESIGN.md §9):
//
//  1. Node locks before shard-map locks. A shard-map lock is only ever
//     taken to look an id up (released before any node lock) or to
//     insert/delete a map entry while the affected node locks are
//     already held. No path acquires a node lock while holding a
//     shard-map lock.
//  2. Multiple node locks are acquired in ascending FileID order.
//     When an operation discovers — mid-flight — that it needs a lock
//     ordered before one it holds (a child with a lower id than its
//     directory), it releases what it holds, re-acquires in ascending
//     order, and re-validates the directory entries it read; the
//     LockStats OrderRestarts counter tracks how often that happens.
//  3. A directory entry pins its node: while a directory's lock is
//     held, every id in its children map refers to a live node,
//     because all entry-removal paths hold that directory's lock.
package vfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/memstore"
)

// FileID identifies a file for the life of the file system. IDs are
// never reused, so stale handles are detectable.
type FileID uint64

// FileType enumerates node types.
type FileType uint32

// File types.
const (
	TypeReg FileType = iota + 1
	TypeDir
	TypeSymlink
)

// Mode permission bits (a subset of POSIX).
const (
	ModeRead  = 0o4
	ModeWrite = 0o2
	ModeExec  = 0o1
)

// MaxNameLen bounds a single path component.
const MaxNameLen = 255

// NumShards is the number of stripes in the node table. A power of
// two so the shard of an id is a mask, sized so that tens of
// concurrent clients rarely collide on a stripe.
const NumShards = 64

// Errors mirroring the NFS 3 status codes the server maps them to.
var (
	ErrNotFound    = errors.New("vfs: no such file or directory")
	ErrExist       = errors.New("vfs: file exists")
	ErrNotDir      = errors.New("vfs: not a directory")
	ErrIsDir       = errors.New("vfs: is a directory")
	ErrNotEmpty    = errors.New("vfs: directory not empty")
	ErrPerm        = errors.New("vfs: permission denied")
	ErrStale       = errors.New("vfs: stale file handle")
	ErrNameTooLong = errors.New("vfs: name too long")
	ErrInval       = errors.New("vfs: invalid argument")
	ErrNotSymlink  = errors.New("vfs: not a symbolic link")
	ErrIO          = errors.New("vfs: i/o error")
)

// ioErr wraps a storage-backend failure in ErrIO so the NFS layer
// maps it to NFS3ERR_IO.
func ioErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrIO, err)
}

// Cred identifies the caller for permission checks. UID 0 bypasses
// permission bits, as root does on the paper's server host.
type Cred struct {
	UID  uint32
	GIDs []uint32
}

// Anonymous is the credential used for unauthenticated access
// (authentication number zero in the SFS protocol).
var Anonymous = Cred{UID: NobodyUID, GIDs: []uint32{NobodyGID}}

// Well-known IDs for anonymous access.
const (
	NobodyUID = 65534
	NobodyGID = 65534
)

// Attr carries the attributes of one file, in the style of NFS fattr3.
type Attr struct {
	Type   FileType
	Mode   uint32
	Nlink  uint32
	UID    uint32
	GID    uint32
	Size   uint64
	FileID FileID
	Atime  time.Time
	Mtime  time.Time
	Ctime  time.Time
}

// SetAttr selects attribute updates; nil fields are left unchanged.
type SetAttr struct {
	Mode  *uint32
	UID   *uint32
	GID   *uint32
	Size  *uint64
	Mtime *time.Time
	Atime *time.Time
}

// DirEntry is one directory entry as returned by ReadDir.
type DirEntry struct {
	Name   string
	FileID FileID
	Cookie uint64
}

// Disk models media costs. The zero value of FS uses no disk model;
// benchmarks install one to reproduce the paper's disk-bound phases.
type Disk interface {
	// Read charges a read of n bytes.
	Read(n int)
	// Write charges an asynchronous write of n bytes.
	Write(n int)
	// Sync charges a synchronous metadata/data flush.
	Sync()
}

type dirent struct {
	id     FileID
	cookie uint64
}

// node is one inode. Its mu guards every field below it; id is
// immutable. dead marks a node whose last link is gone (or whose
// removal is committed) — operations that find it set return ErrStale.
// Regular-file content lives in the FS's BlockStore, keyed by id;
// attr.Size is the authoritative length and the node lock serializes
// all store calls for the id (the storage concurrency contract).
type node struct {
	id FileID

	mu       sync.RWMutex
	dead     bool
	attr     Attr
	children map[string]dirent // TypeDir
	parent   FileID            // TypeDir
	target   string            // TypeSymlink
	nlink    uint32
}

// shard is one stripe of the node table plus its contention counters.
// The per-node counters live here too, attributed to the shard of the
// node's id, so hot stripes are visible in LockStats.
type shard struct {
	mu    sync.RWMutex
	nodes map[FileID]*node

	mapLocks      atomic.Uint64
	mapContended  atomic.Uint64
	nodeLocks     atomic.Uint64
	nodeContended atomic.Uint64
}

// diskBox wraps the Disk interface for atomic swapping by SetDisk.
type diskBox struct{ d Disk }

// FS is the node tree over a storage backend. All methods are safe
// for concurrent use; see the package comment for the lock hierarchy.
type FS struct {
	shards     [NumShards]shard
	root       FileID
	nextID     atomic.Uint64
	nextCookie atomic.Uint64
	disk       atomic.Pointer[diskBox]
	clock      func() time.Time
	// meta journals namespace/attr mutations; blocks holds file
	// content. For durable backends both are one object (diskstore).
	meta   storage.MetadataStore
	blocks storage.BlockStore
	// replayed records the journal replay done at open, for figures.
	replayed storage.ReplayStats
	// verf is the write verifier of the current "boot" (RFC 1813
	// §4.8): it changes across Restart so clients can detect that
	// unstable data may have been lost.
	verf atomic.Uint64
	// orderRestarts counts lock-ordering restarts (rule 2 above).
	orderRestarts atomic.Uint64
	// quiesce serializes mutations against checkpoint snapshots:
	// every operation that journals a record or changes the tree
	// holds it shared, Checkpoint and Restart hold it exclusive.
	// Reads never touch it. Ordered before node locks (rule 0: no
	// path acquires quiesce while holding a node or shard lock).
	quiesce sync.RWMutex
}

// bootCount disambiguates verifiers minted within one clock tick.
var bootCount atomic.Uint64

// newVerf mints a boot verifier. A durable store's WAL epoch is
// authoritative — it survives the crash that invalidated the old
// verifier, so replayed clients and a reopened server agree without
// any wall-clock read. The in-memory path mixes the file system's
// clock with a boot counter, so restart tests driven by an injected
// clock stay deterministic.
func (fs *FS) newVerf() uint64 {
	if ep, ok := fs.blocks.(storage.Epocher); ok {
		return mix64(ep.Epoch())
	}
	return uint64(fs.clock().UnixNano()) ^ bootCount.Add(1)<<48
}

// mix64 is the splitmix64 finalizer: a bijection spreading small
// epochs across the verifier space.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New returns an empty file system over the in-memory store, whose
// root directory is owned by rootUID/rootGID with mode 0755.
func New() *FS {
	ms := memstore.New()
	fs, err := NewWithStores(ms, ms)
	if err != nil {
		panic("vfs: in-memory store cannot fail: " + err.Error())
	}
	return fs
}

// NewWithStores returns a file system whose namespace mutations are
// journaled through meta and whose file content lives in blocks. If
// the stores are durable (meta implements storage.Replayer), the
// surviving journal is replayed to rebuild the tree before the file
// system is returned, and the write verifier derives from the
// store's boot epoch. Durable backends must pass one object as both
// halves (journal order must cover both namespaces and content).
func NewWithStores(meta storage.MetadataStore, blocks storage.BlockStore) (*FS, error) {
	fs := &FS{clock: time.Now, meta: meta, blocks: blocks}
	fs.initTree()
	if rp, ok := meta.(storage.Replayer); ok {
		st, err := rp.Replay(fs.applyRecord)
		if err != nil {
			return nil, err
		}
		fs.replayed = st
	}
	fs.foldWatermarks()
	fs.verf.Store(fs.newVerf())
	return fs, nil
}

// foldWatermarks raises the id and cookie counters to the store's
// checkpoint-trailer watermarks. Replay alone cannot recover them:
// ids allocated before a checkpoint and freed after it appear in
// neither the image nor the tail, and reusing one would resurrect
// stale NFS file handles.
func (fs *FS) foldWatermarks() {
	if wm, ok := fs.meta.(storage.Watermarker); ok {
		id, cookie := wm.Watermarks()
		fs.noteID(id)
		fs.noteCookie(cookie)
	}
}

// initTree builds the empty shard table and the root directory. The
// root is implicit — never journaled — so every replay starts from
// the same node 1.
func (fs *FS) initTree() {
	for i := range fs.shards {
		fs.shards[i].nodes = make(map[FileID]*node)
	}
	now := fs.clock()
	r := &node{
		id: FileID(fs.nextID.Add(1)),
		attr: Attr{
			Type: TypeDir, Mode: 0o755, Nlink: 2,
			Atime: now, Mtime: now, Ctime: now,
		},
		children: make(map[string]dirent),
		nlink:    2,
	}
	r.attr.FileID = r.id
	r.parent = r.id
	fs.insertNode(r)
	fs.root = r.id
}

// LastReplay reports the journal replay statistics from the most
// recent open or crash-restart (zero for the in-memory store).
func (fs *FS) LastReplay() storage.ReplayStats { return fs.replayed }

// StorageStats returns the durable store's counters, or nil for the
// in-memory default — callers embed it with omitempty so memstore
// deployments keep their exact pre-refactor stats documents.
func (fs *FS) StorageStats() *storage.Stats {
	if sr, ok := fs.blocks.(storage.StatsReporter); ok {
		return sr.StorageStats()
	}
	return nil
}

// SetDisk installs a disk cost model; nil removes it.
func (fs *FS) SetDisk(d Disk) {
	if d == nil {
		fs.disk.Store(nil)
		return
	}
	fs.disk.Store(&diskBox{d: d})
}

func (fs *FS) diskModel() Disk {
	if b := fs.disk.Load(); b != nil {
		return b.d
	}
	return nil
}

// Root returns the FileID of the root directory.
func (fs *FS) Root() FileID { return fs.root }

func (fs *FS) shardOf(id FileID) *shard {
	return &fs.shards[uint64(id)&(NumShards-1)]
}

// get returns the node for id without locking it. Callers must lock
// the node and re-check its dead flag before touching its fields.
func (fs *FS) get(id FileID) (*node, error) {
	sh := fs.shardOf(id)
	if !sh.mu.TryRLock() {
		sh.mapContended.Add(1)
		sh.mu.RLock()
	}
	sh.mapLocks.Add(1)
	n, ok := sh.nodes[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, ErrStale
	}
	return n, nil
}

// insertNode publishes a fully built node in its shard's map.
func (fs *FS) insertNode(n *node) {
	sh := fs.shardOf(n.id)
	if !sh.mu.TryLock() {
		sh.mapContended.Add(1)
		sh.mu.Lock()
	}
	sh.mapLocks.Add(1)
	sh.nodes[n.id] = n
	sh.mu.Unlock()
}

// deleteNode removes a dead node from its shard's map. The caller
// holds the node's lock (node → shard-map order, rule 1).
func (fs *FS) deleteNode(n *node) {
	sh := fs.shardOf(n.id)
	if !sh.mu.TryLock() {
		sh.mapContended.Add(1)
		sh.mu.Lock()
	}
	sh.mapLocks.Add(1)
	delete(sh.nodes, n.id)
	sh.mu.Unlock()
}

// lockNode write-locks n, counting contention against its shard.
func (fs *FS) lockNode(n *node) {
	sh := fs.shardOf(n.id)
	if !n.mu.TryLock() {
		sh.nodeContended.Add(1)
		n.mu.Lock()
	}
	sh.nodeLocks.Add(1)
}

// rlockNode read-locks n, counting contention against its shard.
func (fs *FS) rlockNode(n *node) {
	sh := fs.shardOf(n.id)
	if !n.mu.TryRLock() {
		sh.nodeContended.Add(1)
		n.mu.RLock()
	}
	sh.nodeLocks.Add(1)
}

// getLocked returns the node write-locked and alive.
func (fs *FS) getLocked(id FileID) (*node, error) {
	n, err := fs.get(id)
	if err != nil {
		return nil, err
	}
	fs.lockNode(n)
	if n.dead {
		n.mu.Unlock()
		return nil, ErrStale
	}
	return n, nil
}

// getRLocked returns the node read-locked and alive.
func (fs *FS) getRLocked(id FileID) (*node, error) {
	n, err := fs.get(id)
	if err != nil {
		return nil, err
	}
	fs.rlockNode(n)
	if n.dead {
		n.mu.RUnlock()
		return nil, ErrStale
	}
	return n, nil
}

// lockAscending write-locks the given nodes in ascending FileID order.
// The slice is sorted and deduplicated in place; the returned slice
// holds the nodes actually locked (unlock in any order).
func (fs *FS) lockAscending(ns []*node) []*node {
	sort.Slice(ns, func(i, j int) bool { return ns[i].id < ns[j].id })
	out := ns[:0]
	var prev *node
	for _, n := range ns {
		if n == prev {
			continue
		}
		fs.lockNode(n)
		out = append(out, n)
		prev = n
	}
	return out
}

func unlockAll(ns []*node) {
	for _, n := range ns {
		n.mu.Unlock()
	}
}

// lockChild locks the child entry id of the already write-locked
// directory d, following the ascending-id rule: when id > d.id the
// child is locked directly; otherwise d is released, both are locked
// in ascending order, and the entry is re-validated. ok reports
// whether d is still locked, alive, and maps name to id — when false,
// everything is unlocked and the caller must restart.
func (fs *FS) lockChild(d *node, name string, id FileID) (child *node, ok bool) {
	if id > d.id {
		// A directory's lock pins its entries (rule 3), so the
		// child must be in the table.
		n, err := fs.get(id)
		if err != nil || n.dead {
			// Unreachable while d is locked; treat as a restart.
			d.mu.Unlock()
			return nil, false
		}
		fs.lockNode(n)
		return n, true
	}
	fs.orderRestarts.Add(1)
	d.mu.Unlock()
	n, err := fs.get(id)
	if err != nil {
		return nil, false
	}
	fs.lockNode(n)
	fs.lockNode(d)
	if d.dead || n.dead || d.children[name].id != id {
		d.mu.Unlock()
		n.mu.Unlock()
		return nil, false
	}
	return n, true
}

// access checks whether cred may perform want (a ModeRead/Write/Exec
// combination) on n.
func access(cred Cred, n *node, want uint32) error {
	if cred.UID == 0 {
		return nil
	}
	var bits uint32
	switch {
	case cred.UID == n.attr.UID:
		bits = n.attr.Mode >> 6
	case inGroup(cred, n.attr.GID):
		bits = n.attr.Mode >> 3
	default:
		bits = n.attr.Mode
	}
	if bits&want != want {
		return ErrPerm
	}
	return nil
}

func inGroup(cred Cred, gid uint32) bool {
	for _, g := range cred.GIDs {
		if g == gid {
			return true
		}
	}
	return false
}

func checkName(name string) error {
	if name == "" || name == "." || name == ".." {
		return ErrInval
	}
	if len(name) > MaxNameLen {
		return ErrNameTooLong
	}
	if strings.ContainsRune(name, '/') {
		return ErrInval
	}
	return nil
}

// GetAttr returns the attributes of id.
func (fs *FS) GetAttr(id FileID) (Attr, error) {
	n, err := fs.getRLocked(id)
	if err != nil {
		return Attr{}, err
	}
	a := n.attr
	a.Nlink = n.nlink
	n.mu.RUnlock()
	return a, nil
}

// SetAttrs applies the non-nil fields of sa to id with permission
// checks: chmod/chown require ownership (or root); size and time
// updates require write permission.
func (fs *FS) SetAttrs(cred Cred, id FileID, sa SetAttr) (Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	n, err := fs.getLocked(id)
	if err != nil {
		return Attr{}, err
	}
	owner := cred.UID == 0 || cred.UID == n.attr.UID
	if (sa.Mode != nil || sa.UID != nil || sa.GID != nil) && !owner {
		n.mu.Unlock()
		return Attr{}, ErrPerm
	}
	if sa.UID != nil && *sa.UID != n.attr.UID && cred.UID != 0 {
		n.mu.Unlock()
		return Attr{}, ErrPerm // only root may give files away
	}
	if sa.Size != nil || sa.Mtime != nil || sa.Atime != nil {
		if !owner {
			if err := access(cred, n, ModeWrite); err != nil {
				n.mu.Unlock()
				return Attr{}, err
			}
		}
	}
	now := fs.clock()
	rec := storage.MetaRecord{Op: storage.OpSetAttr, Time: now.UnixNano(), ID: uint64(n.id)}
	if sa.Mode != nil {
		n.attr.Mode = *sa.Mode & 0o7777
		rec.SetMask |= storage.SetMode
		rec.Mode = n.attr.Mode
	}
	if sa.UID != nil {
		n.attr.UID = *sa.UID
		rec.SetMask |= storage.SetUID
		rec.UID = *sa.UID
	}
	if sa.GID != nil {
		n.attr.GID = *sa.GID
		rec.SetMask |= storage.SetGID
		rec.GID = *sa.GID
	}
	truncated := false
	if sa.Size != nil {
		if n.attr.Type != TypeReg {
			n.mu.Unlock()
			return Attr{}, ErrIsDir
		}
		sz := *sa.Size
		// Truncate is a synchronous, stable update; the store drops
		// any unstable-write shadow with it.
		if err := fs.blocks.Truncate(uint64(n.id), sz); err != nil {
			n.mu.Unlock()
			return Attr{}, ioErr(err)
		}
		n.attr.Size = sz
		n.attr.Mtime = now
		rec.SetMask |= storage.SetSize | storage.SetMtime
		rec.Size = sz
		rec.Mtime = now.UnixNano()
		truncated = true
	}
	if sa.Mtime != nil {
		n.attr.Mtime = *sa.Mtime
		rec.SetMask |= storage.SetMtime
		rec.Mtime = sa.Mtime.UnixNano()
	}
	if sa.Atime != nil {
		n.attr.Atime = *sa.Atime
		rec.SetMask |= storage.SetAtime
		rec.Atime = sa.Atime.UnixNano()
	}
	n.attr.Ctime = now
	a := n.attr
	a.Nlink = n.nlink
	err = fs.meta.LogMeta(&rec)
	n.mu.Unlock()
	if err != nil {
		return Attr{}, ioErr(err)
	}
	if truncated {
		if disk := fs.diskModel(); disk != nil {
			disk.Sync()
		}
	}
	return a, nil
}

// Access reports whether cred may perform want on id, without side
// effects — the NFS ACCESS procedure.
func (fs *FS) Access(cred Cred, id FileID, want uint32) error {
	n, err := fs.getRLocked(id)
	if err != nil {
		return err
	}
	err = access(cred, n, want)
	n.mu.RUnlock()
	return err
}

// Lookup resolves name within directory dir.
func (fs *FS) Lookup(cred Cred, dir FileID, name string) (FileID, Attr, error) {
	d, err := fs.getRLocked(dir)
	if err != nil {
		return 0, Attr{}, err
	}
	if d.attr.Type != TypeDir {
		d.mu.RUnlock()
		return 0, Attr{}, ErrNotDir
	}
	if err := access(cred, d, ModeExec); err != nil {
		d.mu.RUnlock()
		return 0, Attr{}, err
	}
	switch name {
	case ".":
		a := d.attr
		a.Nlink = d.nlink
		d.mu.RUnlock()
		return d.id, a, nil
	case "..":
		// Release d before locking the parent: the parent usually has
		// a smaller id, and holding both would invert the ascending
		// order (rule 2).
		parent := d.parent
		d.mu.RUnlock()
		p, err := fs.getRLocked(parent)
		if err != nil {
			return 0, Attr{}, err
		}
		a := p.attr
		a.Nlink = p.nlink
		p.mu.RUnlock()
		return p.id, a, nil
	}
	if err := checkName(name); err != nil {
		d.mu.RUnlock()
		return 0, Attr{}, err
	}
	ent, ok := d.children[name]
	d.mu.RUnlock()
	if !ok {
		return 0, Attr{}, ErrNotFound
	}
	n, err := fs.getRLocked(ent.id)
	if err != nil {
		// The entry was removed between the two locks; report the
		// name as gone rather than the handle as stale.
		return 0, Attr{}, ErrNotFound
	}
	a := n.attr
	a.Nlink = n.nlink
	n.mu.RUnlock()
	return a.FileID, a, nil
}

// Create makes a regular file owned by cred in dir. If exclusive is
// set an existing name fails with ErrExist; otherwise an existing
// regular file is truncated and returned.
func (fs *FS) Create(cred Cred, dir FileID, name string, mode uint32, exclusive bool) (FileID, Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	if err := checkName(name); err != nil {
		return 0, Attr{}, err
	}
	for {
		d, err := fs.getLocked(dir)
		if err != nil {
			return 0, Attr{}, err
		}
		if d.attr.Type != TypeDir {
			d.mu.Unlock()
			return 0, Attr{}, ErrNotDir
		}
		if err := access(cred, d, ModeWrite|ModeExec); err != nil {
			d.mu.Unlock()
			return 0, Attr{}, err
		}
		ent, ok := d.children[name]
		if !ok {
			now := fs.clock()
			n := fs.newNode(TypeReg, mode, cred, now)
			a := n.attr
			a.Nlink = n.nlink
			fs.insertNode(n)
			cookie := fs.cookie()
			d.children[name] = dirent{id: n.id, cookie: cookie}
			fs.touchDir(d, now)
			// Journal while d is still locked, so log order matches
			// serialization order and the create precedes any record
			// that references the new id.
			err := fs.meta.LogMeta(&storage.MetaRecord{
				Op: storage.OpCreate, Time: now.UnixNano(),
				Dir: uint64(d.id), Name: name, ID: uint64(n.id),
				Cookie: cookie, Mode: a.Mode, UID: a.UID, GID: a.GID,
			})
			d.mu.Unlock()
			if err != nil {
				return 0, Attr{}, ioErr(err)
			}
			if disk := fs.diskModel(); disk != nil {
				disk.Sync() // metadata creation is synchronous on FFS
			}
			return a.FileID, a, nil
		}
		if exclusive {
			d.mu.Unlock()
			return 0, Attr{}, ErrExist
		}
		n, ok := fs.lockChild(d, name, ent.id)
		if !ok {
			continue
		}
		if n.attr.Type != TypeReg {
			d.mu.Unlock()
			n.mu.Unlock()
			return 0, Attr{}, ErrExist
		}
		if err := access(cred, n, ModeWrite); err != nil {
			d.mu.Unlock()
			n.mu.Unlock()
			return 0, Attr{}, err
		}
		// Truncation is stable: the store drops any unstable-write
		// shadow with it.
		if err := fs.blocks.Truncate(uint64(n.id), 0); err != nil {
			d.mu.Unlock()
			n.mu.Unlock()
			return 0, Attr{}, ioErr(err)
		}
		n.attr.Size = 0
		now := fs.clock()
		n.attr.Mtime, n.attr.Ctime = now, now
		a := n.attr
		a.Nlink = n.nlink
		err = fs.meta.LogMeta(&storage.MetaRecord{
			Op: storage.OpSetAttr, Time: now.UnixNano(), ID: uint64(n.id),
			SetMask: storage.SetSize | storage.SetMtime, Size: 0, Mtime: now.UnixNano(),
		})
		d.mu.Unlock()
		n.mu.Unlock()
		if err != nil {
			return 0, Attr{}, ioErr(err)
		}
		return a.FileID, a, nil
	}
}

// newNode builds a node without publishing it; the caller copies what
// it needs and then calls insertNode. The caller supplies now so one
// clock reading stamps the node, the directory touch, and the journal
// record — which is what makes replay reproduce the tree exactly.
func (fs *FS) newNode(t FileType, mode uint32, cred Cred, now time.Time) *node {
	gid := uint32(NobodyGID)
	if len(cred.GIDs) > 0 {
		gid = cred.GIDs[0]
	}
	n := &node{
		id: FileID(fs.nextID.Add(1)),
		attr: Attr{
			Type: t, Mode: mode & 0o7777, UID: cred.UID, GID: gid,
			Atime: now, Mtime: now, Ctime: now,
		},
		nlink: 1,
	}
	n.attr.FileID = n.id
	if t == TypeDir {
		n.children = make(map[string]dirent)
		n.nlink = 2
	}
	return n
}

func (fs *FS) cookie() uint64 { return fs.nextCookie.Add(1) }

func (fs *FS) touchDir(d *node, now time.Time) {
	d.attr.Mtime, d.attr.Ctime = now, now
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(cred Cred, dir FileID, name string, mode uint32) (FileID, Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	if err := checkName(name); err != nil {
		return 0, Attr{}, err
	}
	d, err := fs.getLocked(dir)
	if err != nil {
		return 0, Attr{}, err
	}
	if d.attr.Type != TypeDir {
		d.mu.Unlock()
		return 0, Attr{}, ErrNotDir
	}
	if err := access(cred, d, ModeWrite|ModeExec); err != nil {
		d.mu.Unlock()
		return 0, Attr{}, err
	}
	if _, ok := d.children[name]; ok {
		d.mu.Unlock()
		return 0, Attr{}, ErrExist
	}
	now := fs.clock()
	n := fs.newNode(TypeDir, mode, cred, now)
	n.parent = d.id
	a := n.attr
	a.Nlink = n.nlink
	fs.insertNode(n)
	cookie := fs.cookie()
	d.children[name] = dirent{id: n.id, cookie: cookie}
	d.nlink++
	fs.touchDir(d, now)
	err = fs.meta.LogMeta(&storage.MetaRecord{
		Op: storage.OpMkdir, Time: now.UnixNano(),
		Dir: uint64(d.id), Name: name, ID: uint64(n.id),
		Cookie: cookie, Mode: a.Mode, UID: a.UID, GID: a.GID,
	})
	d.mu.Unlock()
	if err != nil {
		return 0, Attr{}, ioErr(err)
	}
	if disk := fs.diskModel(); disk != nil {
		disk.Sync()
	}
	return a.FileID, a, nil
}

// Symlink creates a symbolic link to target.
func (fs *FS) Symlink(cred Cred, dir FileID, name, target string) (FileID, Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	if err := checkName(name); err != nil {
		return 0, Attr{}, err
	}
	if len(target) > 4096 {
		return 0, Attr{}, ErrNameTooLong
	}
	d, err := fs.getLocked(dir)
	if err != nil {
		return 0, Attr{}, err
	}
	if d.attr.Type != TypeDir {
		d.mu.Unlock()
		return 0, Attr{}, ErrNotDir
	}
	if err := access(cred, d, ModeWrite|ModeExec); err != nil {
		d.mu.Unlock()
		return 0, Attr{}, err
	}
	if _, ok := d.children[name]; ok {
		d.mu.Unlock()
		return 0, Attr{}, ErrExist
	}
	now := fs.clock()
	n := fs.newNode(TypeSymlink, 0o777, cred, now)
	n.target = target
	n.attr.Size = uint64(len(target))
	a := n.attr
	a.Nlink = n.nlink
	fs.insertNode(n)
	cookie := fs.cookie()
	d.children[name] = dirent{id: n.id, cookie: cookie}
	fs.touchDir(d, now)
	err = fs.meta.LogMeta(&storage.MetaRecord{
		Op: storage.OpSymlink, Time: now.UnixNano(),
		Dir: uint64(d.id), Name: name, ID: uint64(n.id),
		Cookie: cookie, Mode: a.Mode, UID: a.UID, GID: a.GID, Target: target,
	})
	d.mu.Unlock()
	if err != nil {
		return 0, Attr{}, ioErr(err)
	}
	if disk := fs.diskModel(); disk != nil {
		disk.Sync()
	}
	return a.FileID, a, nil
}

// Readlink returns the target of a symbolic link.
func (fs *FS) Readlink(id FileID) (string, error) {
	n, err := fs.getRLocked(id)
	if err != nil {
		return "", err
	}
	if n.attr.Type != TypeSymlink {
		n.mu.RUnlock()
		return "", ErrNotSymlink
	}
	target := n.target
	n.mu.RUnlock()
	return target, nil
}

// Link creates a hard link to an existing regular file.
func (fs *FS) Link(cred Cred, file, dir FileID, name string) error {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	if err := checkName(name); err != nil {
		return err
	}
	// Both ids are known up front: lock straight in ascending order.
	n, err := fs.get(file)
	if err != nil {
		return err
	}
	d, err := fs.get(dir)
	if err != nil {
		return err
	}
	locked := fs.lockAscending([]*node{n, d})
	if n.dead || d.dead {
		unlockAll(locked)
		return ErrStale
	}
	if n.attr.Type == TypeDir {
		unlockAll(locked)
		return ErrIsDir
	}
	if d.attr.Type != TypeDir {
		unlockAll(locked)
		return ErrNotDir
	}
	if err := access(cred, d, ModeWrite|ModeExec); err != nil {
		unlockAll(locked)
		return err
	}
	if _, ok := d.children[name]; ok {
		unlockAll(locked)
		return ErrExist
	}
	now := fs.clock()
	cookie := fs.cookie()
	d.children[name] = dirent{id: n.id, cookie: cookie}
	n.nlink++
	n.attr.Ctime = now
	fs.touchDir(d, now)
	logErr := fs.meta.LogMeta(&storage.MetaRecord{
		Op: storage.OpLink, Time: now.UnixNano(),
		Dir: uint64(d.id), Name: name, ID: uint64(n.id), Cookie: cookie,
	})
	unlockAll(locked)
	if logErr != nil {
		return ioErr(logErr)
	}
	if disk := fs.diskModel(); disk != nil {
		disk.Sync()
	}
	return nil
}

// Remove unlinks a non-directory name from dir.
func (fs *FS) Remove(cred Cred, dir FileID, name string) error {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	if err := checkName(name); err != nil {
		return err
	}
	for {
		d, err := fs.getLocked(dir)
		if err != nil {
			return err
		}
		if d.attr.Type != TypeDir {
			d.mu.Unlock()
			return ErrNotDir
		}
		if err := access(cred, d, ModeWrite|ModeExec); err != nil {
			d.mu.Unlock()
			return err
		}
		ent, ok := d.children[name]
		if !ok {
			d.mu.Unlock()
			return ErrNotFound
		}
		n, ok := fs.lockChild(d, name, ent.id)
		if !ok {
			continue
		}
		if n.attr.Type == TypeDir {
			d.mu.Unlock()
			n.mu.Unlock()
			return ErrIsDir
		}
		now := fs.clock()
		delete(d.children, name)
		n.nlink--
		if n.nlink == 0 {
			n.dead = true
			fs.deleteNode(n)
			// Last link gone: release the content. Durability of the
			// removal rides on the OpRemove record.
			fs.blocks.Remove(uint64(n.id)) //nolint:errcheck
		} else {
			n.attr.Ctime = now
		}
		fs.touchDir(d, now)
		logErr := fs.meta.LogMeta(&storage.MetaRecord{
			Op: storage.OpRemove, Time: now.UnixNano(),
			Dir: uint64(d.id), Name: name,
		})
		d.mu.Unlock()
		n.mu.Unlock()
		if logErr != nil {
			return ioErr(logErr)
		}
		if disk := fs.diskModel(); disk != nil {
			disk.Sync() // unlink is a synchronous metadata write
		}
		return nil
	}
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(cred Cred, dir FileID, name string) error {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	if err := checkName(name); err != nil {
		return err
	}
	for {
		d, err := fs.getLocked(dir)
		if err != nil {
			return err
		}
		if err := access(cred, d, ModeWrite|ModeExec); err != nil {
			d.mu.Unlock()
			return err
		}
		ent, ok := d.children[name]
		if !ok {
			d.mu.Unlock()
			return ErrNotFound
		}
		n, ok := fs.lockChild(d, name, ent.id)
		if !ok {
			continue
		}
		if n.attr.Type != TypeDir {
			d.mu.Unlock()
			n.mu.Unlock()
			return ErrNotDir
		}
		if len(n.children) != 0 {
			d.mu.Unlock()
			n.mu.Unlock()
			return ErrNotEmpty
		}
		now := fs.clock()
		delete(d.children, name)
		n.dead = true
		fs.deleteNode(n)
		d.nlink--
		fs.touchDir(d, now)
		logErr := fs.meta.LogMeta(&storage.MetaRecord{
			Op: storage.OpRmdir, Time: now.UnixNano(),
			Dir: uint64(d.id), Name: name,
		})
		d.mu.Unlock()
		n.mu.Unlock()
		if logErr != nil {
			return ioErr(logErr)
		}
		if disk := fs.diskModel(); disk != nil {
			disk.Sync()
		}
		return nil
	}
}

// Rename moves fromName in fromDir to toName in toDir, replacing any
// existing non-directory target.
//
// Rename is the one operation that can need four node locks (two
// directories, the moved node, a replaced victim), so it always runs
// the two-phase protocol of rule 2: peek at the entries under the
// directory locks, release, lock the full set in ascending id order,
// and re-validate; any interleaved change restarts the loop.
func (fs *FS) Rename(cred Cred, fromDir FileID, fromName string, toDir FileID, toName string) error {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	if err := checkName(fromName); err != nil {
		return err
	}
	if err := checkName(toName); err != nil {
		return err
	}
	for {
		// Peek phase: discover which nodes the rename involves.
		fd, err := fs.get(fromDir)
		if err != nil {
			return err
		}
		td, err := fs.get(toDir)
		if err != nil {
			return err
		}
		dirs := fs.lockAscending([]*node{fd, td})
		if fd.dead || td.dead {
			unlockAll(dirs)
			return ErrStale
		}
		if fd.attr.Type != TypeDir || td.attr.Type != TypeDir {
			unlockAll(dirs)
			return ErrNotDir
		}
		if err := access(cred, fd, ModeWrite|ModeExec); err != nil {
			unlockAll(dirs)
			return err
		}
		if err := access(cred, td, ModeWrite|ModeExec); err != nil {
			unlockAll(dirs)
			return err
		}
		ent, ok := fd.children[fromName]
		if !ok {
			unlockAll(dirs)
			return ErrNotFound
		}
		old, hasOld := td.children[toName]
		if hasOld && old.id == ent.id {
			unlockAll(dirs)
			return nil
		}
		n, err := fs.get(ent.id)
		if err != nil {
			unlockAll(dirs)
			continue // unreachable while fd is locked; restart
		}
		var o *node
		if hasOld {
			if o, err = fs.get(old.id); err != nil {
				unlockAll(dirs)
				continue
			}
		}

		// Lock phase: if every extra node orders after the held
		// directories, lock them in place; otherwise release and
		// re-acquire the full set ascending.
		maxHeld := fd.id
		if td.id > maxHeld {
			maxHeld = td.id
		}
		var locked []*node
		if n.id > maxHeld && (o == nil || o.id > maxHeld) {
			extra := []*node{n}
			if o != nil && o != n {
				extra = append(extra, o)
			}
			locked = append(dirs, fs.lockAscending(extra)...)
		} else {
			fs.orderRestarts.Add(1)
			unlockAll(dirs)
			all := []*node{fd, td, n}
			if o != nil {
				all = append(all, o)
			}
			locked = fs.lockAscending(all)
			// Re-validate everything read during the peek.
			stale := fd.dead || td.dead || n.dead || (o != nil && o.dead) ||
				fd.children[fromName] != ent
			if !stale {
				old2, has2 := td.children[toName]
				stale = has2 != hasOld || (hasOld && old2 != old)
			}
			if stale {
				unlockAll(locked)
				continue
			}
		}

		// Mutation phase: all involved nodes are locked.
		if o != nil {
			if o.attr.Type == TypeDir {
				if n.attr.Type != TypeDir {
					unlockAll(locked)
					return ErrIsDir
				}
				if len(o.children) != 0 {
					unlockAll(locked)
					return ErrNotEmpty
				}
				o.dead = true
				fs.deleteNode(o)
				td.nlink--
			} else {
				o.nlink--
				if o.nlink == 0 {
					o.dead = true
					fs.deleteNode(o)
					fs.blocks.Remove(uint64(o.id)) //nolint:errcheck
				}
			}
		}
		now := fs.clock()
		toCookie := fs.cookie()
		delete(fd.children, fromName)
		td.children[toName] = dirent{id: n.id, cookie: toCookie}
		if n.attr.Type == TypeDir {
			n.parent = td.id
			if fd.id != td.id {
				fd.nlink--
				td.nlink++
			}
		}
		fs.touchDir(fd, now)
		fs.touchDir(td, now)
		logErr := fs.meta.LogMeta(&storage.MetaRecord{
			Op: storage.OpRename, Time: now.UnixNano(),
			Dir: uint64(fd.id), Name: fromName,
			ToDir: uint64(td.id), ToName: toName, ToCookie: toCookie,
		})
		unlockAll(locked)
		if logErr != nil {
			return ioErr(logErr)
		}
		if disk := fs.diskModel(); disk != nil {
			disk.Sync()
		}
		return nil
	}
}

// Read returns up to count bytes of file data starting at off, and
// whether the read reached end of file. The copy is made under the
// file's own read lock, so concurrent reads — of this file or any
// other — proceed in parallel.
//
// The returned slice is a fresh snapshot no one else references:
// store-level buffers mutate in place under writes (memstore WriteAt),
// so this snapshot — not the store's backing array — is the stable
// slice the wire path borrows into READ replies (DESIGN.md §12). This
// copy is the one unavoidable touch between disk state and the wire.
func (fs *FS) Read(cred Cred, id FileID, off uint64, count uint32) ([]byte, bool, error) {
	n, err := fs.getRLocked(id)
	if err != nil {
		return nil, false, err
	}
	if n.attr.Type == TypeDir {
		n.mu.RUnlock()
		return nil, false, ErrIsDir
	}
	if err := access(cred, n, ModeRead); err != nil {
		n.mu.RUnlock()
		return nil, false, err
	}
	size := n.attr.Size
	if off >= size {
		n.mu.RUnlock()
		return []byte{}, true, nil
	}
	end := off + uint64(count)
	if end > size {
		end = size
	}
	out := make([]byte, end-off)
	// The copy is made under the node's read lock, which is what
	// serializes it against writers per the storage contract.
	if err := fs.blocks.ReadAt(uint64(n.id), off, out); err != nil {
		n.mu.RUnlock()
		return nil, false, ioErr(err)
	}
	eof := end == size
	n.mu.RUnlock()
	if disk := fs.diskModel(); disk != nil {
		disk.Read(len(out))
	}
	return out, eof, nil
}

// Write stores data at off, extending the file as needed. If sync is
// set the write is charged as stable storage.
func (fs *FS) Write(cred Cred, id FileID, off uint64, data []byte, sync bool) (Attr, error) {
	return fs.WriteClocked(cred, id, off, data, sync, nil)
}

// WriteClocked is Write with a stage clock: on a durable store the
// group-commit wait of a stable write is charged to clk's fsync stage
// (storage.ClockedStore). A nil clk is exactly Write.
func (fs *FS) WriteClocked(cred Cred, id FileID, off uint64, data []byte, sync bool, clk *stats.StageClock) (Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	n, err := fs.getLocked(id)
	if err != nil {
		return Attr{}, err
	}
	if n.attr.Type == TypeDir {
		n.mu.Unlock()
		return Attr{}, ErrIsDir
	}
	if err := access(cred, n, ModeWrite); err != nil {
		n.mu.Unlock()
		return Attr{}, err
	}
	now := fs.clock()
	// The store decides what stability means: memstore keeps the last
	// stable image for Restart to revert to; diskstore journals the
	// extent, returning immediately for unstable writes and after the
	// group-committed fsync for stable ones.
	if cs, ok := fs.blocks.(storage.ClockedStore); ok && clk != nil {
		err = cs.WriteAtClocked(uint64(n.id), off, data, sync, now.UnixNano(), clk)
	} else {
		err = fs.blocks.WriteAt(uint64(n.id), off, data, sync, now.UnixNano())
	}
	if err != nil {
		n.mu.Unlock()
		return Attr{}, ioErr(err)
	}
	if end := off + uint64(len(data)); end > n.attr.Size {
		n.attr.Size = end
	}
	n.attr.Mtime, n.attr.Ctime = now, now
	a := n.attr
	a.Nlink = n.nlink
	n.mu.Unlock()
	if disk := fs.diskModel(); disk != nil {
		disk.Write(len(data))
		if sync {
			disk.Sync()
		}
	}
	return a, nil
}

// Commit flushes a file to stable storage (the NFS COMMIT operation).
// On a durable store this waits for one group-committed fsync.
func (fs *FS) Commit(id FileID) error {
	return fs.CommitClocked(id, nil)
}

// CommitClocked is Commit with the group-commit wait charged to clk's
// fsync stage. A nil clk is exactly Commit.
func (fs *FS) CommitClocked(id FileID, clk *stats.StageClock) error {
	n, err := fs.getLocked(id)
	if err != nil {
		return err
	}
	if cs, ok := fs.blocks.(storage.ClockedStore); ok && clk != nil {
		err = cs.CommitClocked(uint64(n.id), clk)
	} else {
		err = fs.blocks.Commit(uint64(n.id))
	}
	n.mu.Unlock()
	if err != nil {
		return ioErr(err)
	}
	if disk := fs.diskModel(); disk != nil {
		disk.Sync()
	}
	return nil
}

// Verifier reports the write verifier of the current boot. NFS 3
// clients compare the verifiers carried by WRITE and COMMIT replies: a
// change means unstable data may have been discarded and must be
// retransmitted (RFC 1813 §4.8).
func (fs *FS) Verifier() uint64 { return fs.verf.Load() }

// Restart simulates a server crash and reboot: uncommitted unstable
// writes are lost, and the write verifier changes so clients can
// detect the loss and retransmit (RFC 1813 §4.8).
//
// On a durable store the crash is real: the journal drops its
// user-space buffer and closes without a final sync (the kill -9
// model), reopens under a new epoch, and the tree is rebuilt from the
// surviving records — every acknowledged COMMIT survives because its
// fsync already covered it.
//
// Deprecated: on the default in-memory store Restart is a test-only
// hook — it reverts each file to its last stable image, which only
// simulates the loss. Production crash coverage comes from the disk
// store (sfssd -store disk), where this method and a real kill -9
// exercise the same recovery path.
//
// Restart is not atomic against in-flight writes — neither is a real
// crash. A write that lands mid-restart saw the old verifier when its
// reply was stamped, so the client observes a verifier change and
// retransmits data that may in fact have survived: a redundant
// retransmission, never a silently dropped stability promise.
func (fs *FS) Restart() {
	// Exclusive against mutators AND checkpoints: a checkpoint
	// snapshotting the tree mid-swap would publish a half-restarted
	// image.
	fs.quiesce.Lock()
	defer fs.quiesce.Unlock()
	if cr, ok := fs.blocks.(storage.CrashRestarter); ok {
		if err := fs.crashRestart(cr); err != nil {
			// Restart is driven by tests and the recovery figure;
			// failing to reopen the store leaves nothing to serve.
			panic("vfs: crash restart: " + err.Error())
		}
		return
	}
	if r, ok := fs.blocks.(storage.Restarter); ok {
		for i := range fs.shards {
			sh := &fs.shards[i]
			sh.mu.RLock()
			ns := make([]*node, 0, len(sh.nodes))
			for _, n := range sh.nodes {
				ns = append(ns, n)
			}
			sh.mu.RUnlock()
			for _, n := range ns {
				fs.lockNode(n)
				if !n.dead && n.attr.Type == TypeReg {
					if size, ok := r.Revert(uint64(n.id)); ok {
						n.attr.Size = size
					}
				}
				n.mu.Unlock()
			}
		}
	}
	fs.verf.Store(fs.newVerf())
}

// ReadDir returns directory entries with cookies greater than cookie,
// in cookie order, up to max entries (0 means all).
func (fs *FS) ReadDir(cred Cred, dir FileID, cookie uint64, max int) ([]DirEntry, bool, error) {
	d, err := fs.getRLocked(dir)
	if err != nil {
		return nil, false, err
	}
	if d.attr.Type != TypeDir {
		d.mu.RUnlock()
		return nil, false, ErrNotDir
	}
	if err := access(cred, d, ModeRead); err != nil {
		d.mu.RUnlock()
		return nil, false, err
	}
	ents := make([]DirEntry, 0, len(d.children))
	for name, ent := range d.children {
		if ent.cookie > cookie {
			ents = append(ents, DirEntry{Name: name, FileID: ent.id, Cookie: ent.cookie})
		}
	}
	d.mu.RUnlock()
	sort.Slice(ents, func(i, j int) bool { return ents[i].Cookie < ents[j].Cookie })
	eof := true
	if max > 0 && len(ents) > max {
		ents = ents[:max]
		eof = false
	}
	return ents, eof, nil
}

// NumNodes reports the number of live nodes, for tests.
func (fs *FS) NumNodes() int {
	total := 0
	for i := range fs.shards {
		sh := &fs.shards[i]
		sh.mu.RLock()
		total += len(sh.nodes)
		sh.mu.RUnlock()
	}
	return total
}

// ShardLockStats is one stripe's slice of a LockStats snapshot.
type ShardLockStats struct {
	Shard         int    `json:"shard"`
	MapLocks      uint64 `json:"map_locks"`
	MapContended  uint64 `json:"map_contended,omitempty"`
	NodeLocks     uint64 `json:"node_locks"`
	NodeContended uint64 `json:"node_contended,omitempty"`
}

// LockStats is a snapshot of the sharded lock hierarchy's contention
// counters: how often the shard-map and per-node locks were taken,
// how often an acquisition had to wait, and how often a namespace
// operation restarted to respect the ascending lock order. Shards
// lists the per-stripe numbers for stripes that saw contention.
type LockStats struct {
	MapLocks      uint64           `json:"map_locks"`
	MapContended  uint64           `json:"map_contended"`
	NodeLocks     uint64           `json:"node_locks"`
	NodeContended uint64           `json:"node_contended"`
	OrderRestarts uint64           `json:"order_restarts"`
	Shards        []ShardLockStats `json:"shards,omitempty"`
}

// LockStatsSnapshot captures the contention counters of every stripe.
func (fs *FS) LockStatsSnapshot() LockStats {
	var st LockStats
	st.OrderRestarts = fs.orderRestarts.Load()
	for i := range fs.shards {
		sh := &fs.shards[i]
		s := ShardLockStats{
			Shard:         i,
			MapLocks:      sh.mapLocks.Load(),
			MapContended:  sh.mapContended.Load(),
			NodeLocks:     sh.nodeLocks.Load(),
			NodeContended: sh.nodeContended.Load(),
		}
		st.MapLocks += s.MapLocks
		st.MapContended += s.MapContended
		st.NodeLocks += s.NodeLocks
		st.NodeContended += s.NodeContended
		if s.MapContended > 0 || s.NodeContended > 0 {
			st.Shards = append(st.Shards, s)
		}
	}
	return st
}
