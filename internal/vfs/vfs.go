// Package vfs implements the file system substrate underneath the SFS
// read-write server: an in-memory POSIX-style file system with inodes,
// attributes, directories, symbolic links, and Unix permission checks.
//
// In the paper's implementation the SFS server relays NFS 3 calls to a
// kernel NFS server backed by FreeBSD's FFS (paper §3). This package
// stands in for that kernel file system: the NFS server in
// internal/nfs exposes a vfs.FS over the wire, and the benchmarks use
// a bare FS as the "Local" baseline. An optional Disk model charges
// simulated media time so benchmark shapes involving synchronous
// writes (e.g. the Sprite LFS unlink phase) match the paper's.
package vfs

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FileID identifies a file for the life of the file system. IDs are
// never reused, so stale handles are detectable.
type FileID uint64

// FileType enumerates node types.
type FileType uint32

// File types.
const (
	TypeReg FileType = iota + 1
	TypeDir
	TypeSymlink
)

// Mode permission bits (a subset of POSIX).
const (
	ModeRead  = 0o4
	ModeWrite = 0o2
	ModeExec  = 0o1
)

// MaxNameLen bounds a single path component.
const MaxNameLen = 255

// Errors mirroring the NFS 3 status codes the server maps them to.
var (
	ErrNotFound    = errors.New("vfs: no such file or directory")
	ErrExist       = errors.New("vfs: file exists")
	ErrNotDir      = errors.New("vfs: not a directory")
	ErrIsDir       = errors.New("vfs: is a directory")
	ErrNotEmpty    = errors.New("vfs: directory not empty")
	ErrPerm        = errors.New("vfs: permission denied")
	ErrStale       = errors.New("vfs: stale file handle")
	ErrNameTooLong = errors.New("vfs: name too long")
	ErrInval       = errors.New("vfs: invalid argument")
	ErrNotSymlink  = errors.New("vfs: not a symbolic link")
)

// Cred identifies the caller for permission checks. UID 0 bypasses
// permission bits, as root does on the paper's server host.
type Cred struct {
	UID  uint32
	GIDs []uint32
}

// Anonymous is the credential used for unauthenticated access
// (authentication number zero in the SFS protocol).
var Anonymous = Cred{UID: NobodyUID, GIDs: []uint32{NobodyGID}}

// Well-known IDs for anonymous access.
const (
	NobodyUID = 65534
	NobodyGID = 65534
)

// Attr carries the attributes of one file, in the style of NFS fattr3.
type Attr struct {
	Type   FileType
	Mode   uint32
	Nlink  uint32
	UID    uint32
	GID    uint32
	Size   uint64
	FileID FileID
	Atime  time.Time
	Mtime  time.Time
	Ctime  time.Time
}

// SetAttr selects attribute updates; nil fields are left unchanged.
type SetAttr struct {
	Mode  *uint32
	UID   *uint32
	GID   *uint32
	Size  *uint64
	Mtime *time.Time
	Atime *time.Time
}

// DirEntry is one directory entry as returned by ReadDir.
type DirEntry struct {
	Name   string
	FileID FileID
	Cookie uint64
}

// Disk models media costs. The zero value of FS uses no disk model;
// benchmarks install one to reproduce the paper's disk-bound phases.
type Disk interface {
	// Read charges a read of n bytes.
	Read(n int)
	// Write charges an asynchronous write of n bytes.
	Write(n int)
	// Sync charges a synchronous metadata/data flush.
	Sync()
}

type dirent struct {
	id     FileID
	cookie uint64
}

type node struct {
	id       FileID
	attr     Attr
	data     []byte            // TypeReg
	children map[string]dirent // TypeDir
	parent   FileID            // TypeDir
	target   string            // TypeSymlink
	nlink    uint32
}

// FS is an in-memory file system. All methods are safe for concurrent
// use.
type FS struct {
	mu         sync.RWMutex
	nodes      map[FileID]*node
	root       FileID
	nextID     FileID
	nextCookie uint64
	disk       Disk
	clock      func() time.Time
	// verf is the write verifier of the current "boot" (RFC 1813
	// §4.8): it changes across Restart so clients can detect that
	// unstable data may have been lost.
	verf uint64
	// shadow holds, per file with uncommitted unstable writes, the
	// last stable image of its data. Restart reverts to it; Commit
	// and synchronous writes drop it.
	shadow map[FileID][]byte
}

// bootCount disambiguates verifiers minted within one clock tick.
var bootCount atomic.Uint64

func newVerf() uint64 {
	return uint64(time.Now().UnixNano()) ^ bootCount.Add(1)<<48
}

// New returns an empty file system whose root directory is owned by
// rootUID/rootGID with mode 0755.
func New() *FS {
	fs := &FS{
		nodes:  make(map[FileID]*node),
		nextID: 1,
		clock:  time.Now,
		verf:   newVerf(),
		shadow: make(map[FileID][]byte),
	}
	now := fs.clock()
	r := &node{
		id: fs.nextID,
		attr: Attr{
			Type: TypeDir, Mode: 0o755, Nlink: 2,
			FileID: fs.nextID, Atime: now, Mtime: now, Ctime: now,
		},
		children: make(map[string]dirent),
		nlink:    2,
	}
	r.parent = r.id
	fs.nodes[r.id] = r
	fs.root = r.id
	fs.nextID++
	return fs
}

// SetDisk installs a disk cost model; nil removes it.
func (fs *FS) SetDisk(d Disk) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.disk = d
}

// Root returns the FileID of the root directory.
func (fs *FS) Root() FileID {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.root
}

func (fs *FS) get(id FileID) (*node, error) {
	n, ok := fs.nodes[id]
	if !ok {
		return nil, ErrStale
	}
	return n, nil
}

// access checks whether cred may perform want (a ModeRead/Write/Exec
// combination) on n.
func access(cred Cred, n *node, want uint32) error {
	if cred.UID == 0 {
		return nil
	}
	var bits uint32
	switch {
	case cred.UID == n.attr.UID:
		bits = n.attr.Mode >> 6
	case inGroup(cred, n.attr.GID):
		bits = n.attr.Mode >> 3
	default:
		bits = n.attr.Mode
	}
	if bits&want != want {
		return ErrPerm
	}
	return nil
}

func inGroup(cred Cred, gid uint32) bool {
	for _, g := range cred.GIDs {
		if g == gid {
			return true
		}
	}
	return false
}

func checkName(name string) error {
	if name == "" || name == "." || name == ".." {
		return ErrInval
	}
	if len(name) > MaxNameLen {
		return ErrNameTooLong
	}
	if strings.ContainsRune(name, '/') {
		return ErrInval
	}
	return nil
}

// GetAttr returns the attributes of id.
func (fs *FS) GetAttr(id FileID) (Attr, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.get(id)
	if err != nil {
		return Attr{}, err
	}
	a := n.attr
	a.Nlink = n.nlink
	return a, nil
}

// SetAttrs applies the non-nil fields of sa to id with permission
// checks: chmod/chown require ownership (or root); size and time
// updates require write permission.
func (fs *FS) SetAttrs(cred Cred, id FileID, sa SetAttr) (Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.get(id)
	if err != nil {
		return Attr{}, err
	}
	owner := cred.UID == 0 || cred.UID == n.attr.UID
	if (sa.Mode != nil || sa.UID != nil || sa.GID != nil) && !owner {
		return Attr{}, ErrPerm
	}
	if sa.UID != nil && *sa.UID != n.attr.UID && cred.UID != 0 {
		return Attr{}, ErrPerm // only root may give files away
	}
	if sa.Size != nil || sa.Mtime != nil || sa.Atime != nil {
		if !owner {
			if err := access(cred, n, ModeWrite); err != nil {
				return Attr{}, err
			}
		}
	}
	now := fs.clock()
	if sa.Mode != nil {
		n.attr.Mode = *sa.Mode & 0o7777
	}
	if sa.UID != nil {
		n.attr.UID = *sa.UID
	}
	if sa.GID != nil {
		n.attr.GID = *sa.GID
	}
	if sa.Size != nil {
		if n.attr.Type != TypeReg {
			return Attr{}, ErrIsDir
		}
		sz := *sa.Size
		if uint64(len(n.data)) > sz {
			n.data = n.data[:sz]
		} else {
			n.data = append(n.data, make([]byte, sz-uint64(len(n.data)))...)
		}
		n.attr.Size = sz
		n.attr.Mtime = now
		delete(fs.shadow, id) // truncate is a synchronous, stable update
		if fs.disk != nil {
			fs.disk.Sync()
		}
	}
	if sa.Mtime != nil {
		n.attr.Mtime = *sa.Mtime
	}
	if sa.Atime != nil {
		n.attr.Atime = *sa.Atime
	}
	n.attr.Ctime = now
	a := n.attr
	a.Nlink = n.nlink
	return a, nil
}

// Access reports whether cred may perform want on id, without side
// effects — the NFS ACCESS procedure.
func (fs *FS) Access(cred Cred, id FileID, want uint32) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.get(id)
	if err != nil {
		return err
	}
	return access(cred, n, want)
}

// Lookup resolves name within directory dir.
func (fs *FS) Lookup(cred Cred, dir FileID, name string) (FileID, Attr, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, err := fs.get(dir)
	if err != nil {
		return 0, Attr{}, err
	}
	if d.attr.Type != TypeDir {
		return 0, Attr{}, ErrNotDir
	}
	if err := access(cred, d, ModeExec); err != nil {
		return 0, Attr{}, err
	}
	switch name {
	case ".":
		a := d.attr
		a.Nlink = d.nlink
		return d.id, a, nil
	case "..":
		p, err := fs.get(d.parent)
		if err != nil {
			return 0, Attr{}, err
		}
		a := p.attr
		a.Nlink = p.nlink
		return p.id, a, nil
	}
	if err := checkName(name); err != nil {
		return 0, Attr{}, err
	}
	ent, ok := d.children[name]
	if !ok {
		return 0, Attr{}, ErrNotFound
	}
	n, err := fs.get(ent.id)
	if err != nil {
		return 0, Attr{}, err
	}
	a := n.attr
	a.Nlink = n.nlink
	return n.id, a, nil
}

// Create makes a regular file owned by cred in dir. If exclusive is
// set an existing name fails with ErrExist; otherwise an existing
// regular file is truncated and returned.
func (fs *FS) Create(cred Cred, dir FileID, name string, mode uint32, exclusive bool) (FileID, Attr, error) {
	if err := checkName(name); err != nil {
		return 0, Attr{}, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.get(dir)
	if err != nil {
		return 0, Attr{}, err
	}
	if d.attr.Type != TypeDir {
		return 0, Attr{}, ErrNotDir
	}
	if err := access(cred, d, ModeWrite|ModeExec); err != nil {
		return 0, Attr{}, err
	}
	if ent, ok := d.children[name]; ok {
		if exclusive {
			return 0, Attr{}, ErrExist
		}
		n, err := fs.get(ent.id)
		if err != nil {
			return 0, Attr{}, err
		}
		if n.attr.Type != TypeReg {
			return 0, Attr{}, ErrExist
		}
		if err := access(cred, n, ModeWrite); err != nil {
			return 0, Attr{}, err
		}
		n.data = n.data[:0]
		n.attr.Size = 0
		now := fs.clock()
		n.attr.Mtime, n.attr.Ctime = now, now
		a := n.attr
		a.Nlink = n.nlink
		return n.id, a, nil
	}
	n := fs.newNode(TypeReg, mode, cred)
	d.children[name] = dirent{id: n.id, cookie: fs.cookie()}
	fs.touchDir(d)
	if fs.disk != nil {
		fs.disk.Sync() // metadata creation is synchronous on FFS
	}
	a := n.attr
	a.Nlink = n.nlink
	return n.id, a, nil
}

func (fs *FS) newNode(t FileType, mode uint32, cred Cred) *node {
	now := fs.clock()
	gid := uint32(NobodyGID)
	if len(cred.GIDs) > 0 {
		gid = cred.GIDs[0]
	}
	n := &node{
		id: fs.nextID,
		attr: Attr{
			Type: t, Mode: mode & 0o7777, UID: cred.UID, GID: gid,
			FileID: fs.nextID, Atime: now, Mtime: now, Ctime: now,
		},
		nlink: 1,
	}
	if t == TypeDir {
		n.children = make(map[string]dirent)
		n.nlink = 2
	}
	fs.nodes[n.id] = n
	fs.nextID++
	return n
}

func (fs *FS) cookie() uint64 {
	fs.nextCookie++
	return fs.nextCookie
}

func (fs *FS) touchDir(d *node) {
	now := fs.clock()
	d.attr.Mtime, d.attr.Ctime = now, now
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(cred Cred, dir FileID, name string, mode uint32) (FileID, Attr, error) {
	if err := checkName(name); err != nil {
		return 0, Attr{}, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.get(dir)
	if err != nil {
		return 0, Attr{}, err
	}
	if d.attr.Type != TypeDir {
		return 0, Attr{}, ErrNotDir
	}
	if err := access(cred, d, ModeWrite|ModeExec); err != nil {
		return 0, Attr{}, err
	}
	if _, ok := d.children[name]; ok {
		return 0, Attr{}, ErrExist
	}
	n := fs.newNode(TypeDir, mode, cred)
	n.parent = d.id
	d.children[name] = dirent{id: n.id, cookie: fs.cookie()}
	d.nlink++
	fs.touchDir(d)
	if fs.disk != nil {
		fs.disk.Sync()
	}
	a := n.attr
	a.Nlink = n.nlink
	return n.id, a, nil
}

// Symlink creates a symbolic link to target.
func (fs *FS) Symlink(cred Cred, dir FileID, name, target string) (FileID, Attr, error) {
	if err := checkName(name); err != nil {
		return 0, Attr{}, err
	}
	if len(target) > 4096 {
		return 0, Attr{}, ErrNameTooLong
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.get(dir)
	if err != nil {
		return 0, Attr{}, err
	}
	if d.attr.Type != TypeDir {
		return 0, Attr{}, ErrNotDir
	}
	if err := access(cred, d, ModeWrite|ModeExec); err != nil {
		return 0, Attr{}, err
	}
	if _, ok := d.children[name]; ok {
		return 0, Attr{}, ErrExist
	}
	n := fs.newNode(TypeSymlink, 0o777, cred)
	n.target = target
	n.attr.Size = uint64(len(target))
	d.children[name] = dirent{id: n.id, cookie: fs.cookie()}
	fs.touchDir(d)
	if fs.disk != nil {
		fs.disk.Sync()
	}
	a := n.attr
	a.Nlink = n.nlink
	return n.id, a, nil
}

// Readlink returns the target of a symbolic link.
func (fs *FS) Readlink(id FileID) (string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.get(id)
	if err != nil {
		return "", err
	}
	if n.attr.Type != TypeSymlink {
		return "", ErrNotSymlink
	}
	return n.target, nil
}

// Link creates a hard link to an existing regular file.
func (fs *FS) Link(cred Cred, file, dir FileID, name string) error {
	if err := checkName(name); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.get(file)
	if err != nil {
		return err
	}
	if n.attr.Type == TypeDir {
		return ErrIsDir
	}
	d, err := fs.get(dir)
	if err != nil {
		return err
	}
	if d.attr.Type != TypeDir {
		return ErrNotDir
	}
	if err := access(cred, d, ModeWrite|ModeExec); err != nil {
		return err
	}
	if _, ok := d.children[name]; ok {
		return ErrExist
	}
	d.children[name] = dirent{id: n.id, cookie: fs.cookie()}
	n.nlink++
	n.attr.Ctime = fs.clock()
	fs.touchDir(d)
	if fs.disk != nil {
		fs.disk.Sync()
	}
	return nil
}

// Remove unlinks a non-directory name from dir.
func (fs *FS) Remove(cred Cred, dir FileID, name string) error {
	if err := checkName(name); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.get(dir)
	if err != nil {
		return err
	}
	if d.attr.Type != TypeDir {
		return ErrNotDir
	}
	if err := access(cred, d, ModeWrite|ModeExec); err != nil {
		return err
	}
	ent, ok := d.children[name]
	if !ok {
		return ErrNotFound
	}
	n, err := fs.get(ent.id)
	if err != nil {
		return err
	}
	if n.attr.Type == TypeDir {
		return ErrIsDir
	}
	delete(d.children, name)
	n.nlink--
	if n.nlink == 0 {
		delete(fs.nodes, n.id)
		delete(fs.shadow, n.id)
	} else {
		n.attr.Ctime = fs.clock()
	}
	fs.touchDir(d)
	if fs.disk != nil {
		fs.disk.Sync() // unlink is a synchronous metadata write
	}
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(cred Cred, dir FileID, name string) error {
	if err := checkName(name); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.get(dir)
	if err != nil {
		return err
	}
	if err := access(cred, d, ModeWrite|ModeExec); err != nil {
		return err
	}
	ent, ok := d.children[name]
	if !ok {
		return ErrNotFound
	}
	n, err := fs.get(ent.id)
	if err != nil {
		return err
	}
	if n.attr.Type != TypeDir {
		return ErrNotDir
	}
	if len(n.children) != 0 {
		return ErrNotEmpty
	}
	delete(d.children, name)
	delete(fs.nodes, n.id)
	d.nlink--
	fs.touchDir(d)
	if fs.disk != nil {
		fs.disk.Sync()
	}
	return nil
}

// Rename moves fromName in fromDir to toName in toDir, replacing any
// existing non-directory target.
func (fs *FS) Rename(cred Cred, fromDir FileID, fromName string, toDir FileID, toName string) error {
	if err := checkName(fromName); err != nil {
		return err
	}
	if err := checkName(toName); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, err := fs.get(fromDir)
	if err != nil {
		return err
	}
	td, err := fs.get(toDir)
	if err != nil {
		return err
	}
	if fd.attr.Type != TypeDir || td.attr.Type != TypeDir {
		return ErrNotDir
	}
	if err := access(cred, fd, ModeWrite|ModeExec); err != nil {
		return err
	}
	if err := access(cred, td, ModeWrite|ModeExec); err != nil {
		return err
	}
	ent, ok := fd.children[fromName]
	if !ok {
		return ErrNotFound
	}
	n, err := fs.get(ent.id)
	if err != nil {
		return err
	}
	if old, ok := td.children[toName]; ok {
		if old.id == ent.id {
			return nil
		}
		o, err := fs.get(old.id)
		if err != nil {
			return err
		}
		if o.attr.Type == TypeDir {
			if n.attr.Type != TypeDir {
				return ErrIsDir
			}
			if len(o.children) != 0 {
				return ErrNotEmpty
			}
			delete(fs.nodes, o.id)
			td.nlink--
		} else {
			o.nlink--
			if o.nlink == 0 {
				delete(fs.nodes, o.id)
				delete(fs.shadow, o.id)
			}
		}
	}
	delete(fd.children, fromName)
	td.children[toName] = dirent{id: n.id, cookie: fs.cookie()}
	if n.attr.Type == TypeDir {
		n.parent = td.id
		if fd.id != td.id {
			fd.nlink--
			td.nlink++
		}
	}
	fs.touchDir(fd)
	fs.touchDir(td)
	if fs.disk != nil {
		fs.disk.Sync()
	}
	return nil
}

// Read returns up to count bytes of file data starting at off, and
// whether the read reached end of file.
func (fs *FS) Read(cred Cred, id FileID, off uint64, count uint32) ([]byte, bool, error) {
	fs.mu.RLock()
	n, err := fs.get(id)
	if err != nil {
		fs.mu.RUnlock()
		return nil, false, err
	}
	if n.attr.Type == TypeDir {
		fs.mu.RUnlock()
		return nil, false, ErrIsDir
	}
	if err := access(cred, n, ModeRead); err != nil {
		fs.mu.RUnlock()
		return nil, false, err
	}
	if off >= uint64(len(n.data)) {
		fs.mu.RUnlock()
		return []byte{}, true, nil
	}
	end := off + uint64(count)
	if end > uint64(len(n.data)) {
		end = uint64(len(n.data))
	}
	out := make([]byte, end-off)
	copy(out, n.data[off:end])
	eof := end == uint64(len(n.data))
	disk := fs.disk
	fs.mu.RUnlock()
	if disk != nil {
		disk.Read(len(out))
	}
	return out, eof, nil
}

// Write stores data at off, extending the file as needed. If sync is
// set the write is charged as stable storage.
func (fs *FS) Write(cred Cred, id FileID, off uint64, data []byte, sync bool) (Attr, error) {
	fs.mu.Lock()
	n, err := fs.get(id)
	if err != nil {
		fs.mu.Unlock()
		return Attr{}, err
	}
	if n.attr.Type == TypeDir {
		fs.mu.Unlock()
		return Attr{}, ErrIsDir
	}
	if err := access(cred, n, ModeWrite); err != nil {
		fs.mu.Unlock()
		return Attr{}, err
	}
	if !sync {
		// First unstable write since the last stable point: keep the
		// stable image so Restart can lose this data like a real
		// server reboot would.
		if _, ok := fs.shadow[id]; !ok {
			fs.shadow[id] = append([]byte(nil), n.data...)
		}
	}
	end := off + uint64(len(data))
	if end > uint64(len(n.data)) {
		n.data = append(n.data, make([]byte, end-uint64(len(n.data)))...)
	}
	copy(n.data[off:end], data)
	n.attr.Size = uint64(len(n.data))
	now := fs.clock()
	n.attr.Mtime, n.attr.Ctime = now, now
	if sync {
		delete(fs.shadow, id)
	}
	a := n.attr
	a.Nlink = n.nlink
	disk := fs.disk
	fs.mu.Unlock()
	if disk != nil {
		disk.Write(len(data))
		if sync {
			disk.Sync()
		}
	}
	return a, nil
}

// Commit flushes a file to stable storage (the NFS COMMIT operation).
func (fs *FS) Commit(id FileID) error {
	fs.mu.Lock()
	_, err := fs.get(id)
	if err == nil {
		delete(fs.shadow, id)
	}
	disk := fs.disk
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	if disk != nil {
		disk.Sync()
	}
	return nil
}

// Verifier reports the write verifier of the current boot. NFS 3
// clients compare the verifiers carried by WRITE and COMMIT replies: a
// change means unstable data may have been discarded and must be
// retransmitted (RFC 1813 §4.8).
func (fs *FS) Verifier() uint64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.verf
}

// Restart simulates a server crash and reboot: every file's
// uncommitted unstable writes revert to the last stable image, and
// the write verifier changes so clients can detect the loss.
func (fs *FS) Restart() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for id, data := range fs.shadow {
		if n, ok := fs.nodes[id]; ok {
			n.data = data
			n.attr.Size = uint64(len(data))
		}
		delete(fs.shadow, id)
	}
	fs.verf = newVerf()
}

// ReadDir returns directory entries with cookies greater than cookie,
// in cookie order, up to max entries (0 means all).
func (fs *FS) ReadDir(cred Cred, dir FileID, cookie uint64, max int) ([]DirEntry, bool, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, err := fs.get(dir)
	if err != nil {
		return nil, false, err
	}
	if d.attr.Type != TypeDir {
		return nil, false, ErrNotDir
	}
	if err := access(cred, d, ModeRead); err != nil {
		return nil, false, err
	}
	ents := make([]DirEntry, 0, len(d.children))
	for name, ent := range d.children {
		if ent.cookie > cookie {
			ents = append(ents, DirEntry{Name: name, FileID: ent.id, Cookie: ent.cookie})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Cookie < ents[j].Cookie })
	eof := true
	if max > 0 && len(ents) > max {
		ents = ents[:max]
		eof = false
	}
	return ents, eof, nil
}

// NumNodes reports the number of live nodes, for tests.
func (fs *FS) NumNodes() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.nodes)
}
