package vfs

// Checkpoint tests at the vfs layer: the full snapshot → image →
// bounded-replay loop, bit-exact restoration of the namespace, and
// the quiesce protocol under concurrent load.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/storage/diskstore"
)

// TestCheckpointRestoresTree builds a namespace with every node
// flavor, checkpoints, reopens, and asserts the image-restored tree
// is bit-equal to the pre-close one — attributes, times, link counts,
// symlink targets, directory cookies — with zero tail records.
func TestCheckpointRestoresTree(t *testing.T) {
	dir := t.TempDir()
	fs, ds := newDiskFS(t, dir, diskstore.Options{})

	d1, _, err := fs.Mkdir(root, fs.Root(), "dir1", 0o750)
	if err != nil {
		t.Fatal(err)
	}
	f1, _, err := fs.Create(root, d1, "file1", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, f1, 0, []byte("checkpointed bytes"), true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Symlink(root, d1, "ln", "../dir1/file1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link(root, f1, fs.Root(), "hard1"); err != nil {
		t.Fatal(err)
	}
	mode := uint32(0o604)
	if _, err := fs.SetAttrs(root, f1, SetAttr{Mode: &mode}); err != nil {
		t.Fatal(err)
	}
	// Id churn that only the trailer watermark remembers: allocate,
	// checkpoint, remove — the id is in neither image nor tail.
	doomed, _, err := fs.Create(root, d1, "doomed", 0o600, true)
	if err != nil {
		t.Fatal(err)
	}

	wantF1, err := fs.GetAttr(f1)
	if err != nil {
		t.Fatal(err)
	}
	wantEnts, _, err := fs.ReadDir(root, d1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(root, d1, "doomed"); err != nil {
		t.Fatal(err)
	}
	// The reopened tree is image + tail remove, so the expected dir
	// attrs are the post-remove ones (the remove replays and touches
	// the directory's mtime again, exactly as it did live).
	wantDir, err := fs.GetAttr(d1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, ds2 := newDiskFS(t, dir, diskstore.Options{})
	defer ds2.Close()
	rs := fs2.LastReplay()
	if rs.CheckpointRecords == 0 {
		t.Fatalf("replay loaded no image: %+v", rs)
	}
	if rs.TailRecords != 1 {
		t.Fatalf("TailRecords = %d, want only the post-checkpoint remove", rs.TailRecords)
	}

	gotF1, err := fs2.GetAttr(f1)
	if err != nil {
		t.Fatal(err)
	}
	if gotF1.Mode != wantF1.Mode || gotF1.Size != wantF1.Size || gotF1.Nlink != 2 ||
		gotF1.UID != wantF1.UID || gotF1.GID != wantF1.GID ||
		!gotF1.Mtime.Equal(wantF1.Mtime) || !gotF1.Ctime.Equal(wantF1.Ctime) ||
		!gotF1.Atime.Equal(wantF1.Atime) {
		t.Fatalf("file attrs not bit-equal:\n got %+v\nwant %+v", gotF1, wantF1)
	}
	gotDir, err := fs2.GetAttr(d1)
	if err != nil {
		t.Fatal(err)
	}
	if gotDir.Mode != wantDir.Mode || gotDir.Nlink != wantDir.Nlink ||
		!gotDir.Mtime.Equal(wantDir.Mtime) {
		t.Fatalf("dir attrs not bit-equal:\n got %+v\nwant %+v", gotDir, wantDir)
	}
	// Cookies must survive exactly: a client resuming READDIR across
	// the reboot depends on them.
	gotEnts, _, err := fs2.ReadDir(root, d1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]uint64{}
	for _, e := range wantEnts {
		want[e.Name] = [2]uint64{uint64(e.FileID), e.Cookie}
	}
	delete(want, "doomed")
	if len(gotEnts) != len(want) {
		t.Fatalf("dir has %d entries, want %d", len(gotEnts), len(want))
	}
	for _, e := range gotEnts {
		w, ok := want[e.Name]
		if !ok || w[0] != uint64(e.FileID) || w[1] != e.Cookie {
			t.Fatalf("entry %q = (id %d, cookie %d), want %v", e.Name, e.FileID, e.Cookie, w)
		}
	}
	if hid, _, err := fs2.Lookup(root, fs2.Root(), "hard1"); err != nil || hid != f1 {
		t.Fatalf("hard link = (%d, %v), want id %d", hid, err, f1)
	}
	lnID, _, err := fs2.Lookup(root, d1, "ln")
	if err != nil {
		t.Fatal(err)
	}
	if target, err := fs2.Readlink(lnID); err != nil || target != "../dir1/file1" {
		t.Fatalf("readlink = (%q, %v)", target, err)
	}
	data, _, err := fs2.Read(root, f1, 0, 100)
	if err != nil || string(data) != "checkpointed bytes" {
		t.Fatalf("content = %q, %v", data, err)
	}
	// The watermark: a new id must not reuse the doomed one.
	nid, _, err := fs2.Create(root, fs2.Root(), "fresh", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if nid == doomed {
		t.Fatalf("id %d reused after checkpoint+remove", nid)
	}
}

// TestCheckpointBoundsReplayAcrossHistory: N× more history than a
// single boot should replay. With checkpointing the tail stays O(1)
// while the journal-only path replays everything.
func TestCheckpointBoundsReplayAcrossHistory(t *testing.T) {
	dir := t.TempDir()
	fs, ds := newDiskFS(t, dir, diskstore.Options{})
	id, _, err := fs.Create(root, fs.Root(), "f", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for round := 0; round < 10; round++ {
		for i := 0; i < 20; i++ {
			if _, err := fs.Write(root, id, uint64(i)*4096, buf, false); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Commit(id); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Write(root, id, 0, []byte("tail"), true); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, ds2 := newDiskFS(t, dir, diskstore.Options{})
	defer ds2.Close()
	rs := fs2.LastReplay()
	// 200 data records were journaled; the tail must hold only the one
	// past the last checkpoint.
	if rs.TailRecords != 1 {
		t.Fatalf("TailRecords = %d after 10 checkpointed rounds, want 1", rs.TailRecords)
	}
	if data, _, err := fs2.Read(root, id, 0, 4); err != nil || string(data) != "tail" {
		t.Fatalf("read = %q, %v", data, err)
	}
}

// TestCheckpointConcurrentWrites hammers the quiesce protocol: many
// writers and namespace mutators race a stream of checkpoints, then
// the store reopens and every file the workload acked must be whole.
// Race-detector target.
func TestCheckpointConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	fs, ds := newDiskFS(t, dir, diskstore.Options{HotBytes: 128 << 10})

	const workers = 4
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("w%d-f%d", w, i)
				id, _, err := fs.Create(root, fs.Root(), name, 0o644, true)
				if err != nil {
					t.Errorf("create %s: %v", name, err)
					return
				}
				if _, err := fs.Write(root, id, 0, []byte(name), true); err != nil {
					t.Errorf("write %s: %v", name, err)
					return
				}
				if i%10 == 9 {
					dn := fmt.Sprintf("w%d-d%d", w, i)
					if _, _, err := fs.Mkdir(root, fs.Root(), dn, 0o755); err != nil {
						t.Errorf("mkdir %s: %v", dn, err)
						return
					}
				}
			}
		}()
	}
	ckDone := make(chan struct{})
	go func() {
		defer close(ckDone)
		for i := 0; i < 8; i++ {
			if _, err := fs.Checkpoint(); err != nil {
				t.Errorf("checkpoint %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-ckDone
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, ds2 := newDiskFS(t, dir, diskstore.Options{HotBytes: 128 << 10})
	defer ds2.Close()
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			name := fmt.Sprintf("w%d-f%d", w, i)
			id, _, err := fs2.Lookup(root, fs2.Root(), name)
			if err != nil {
				t.Fatalf("lookup %s: %v", name, err)
			}
			data, _, err := fs2.Read(root, id, 0, uint32(len(name)))
			if err != nil || string(data) != name {
				t.Fatalf("read %s = %q, %v", name, data, err)
			}
		}
	}
}

// TestAutoCheckpointFires: the background checkpointer must fire on
// the WAL-bytes trigger without any manual call, and stop() must halt
// it.
func TestAutoCheckpointFires(t *testing.T) {
	dir := t.TempDir()
	fs, ds := newDiskFS(t, dir, diskstore.Options{})
	defer ds.Close()
	stop := fs.StartAutoCheckpoint(64<<10, 0)
	defer stop()
	id, _, err := fs.Create(root, fs.Root(), "f", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8192)
	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < 16; i++ {
			if _, err := fs.Write(root, id, uint64(i)*8192, buf, false); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Commit(id); err != nil {
			t.Fatal(err)
		}
		st := fs.StorageStats()
		if st != nil && st.Checkpoint != nil && st.Checkpoint.Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-checkpoint never fired on the bytes trigger")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCheckpointOnMemstoreErrors: the in-memory store cannot
// checkpoint; the API must say so instead of silently succeeding.
func TestCheckpointOnMemstoreErrors(t *testing.T) {
	fs := New()
	if _, err := fs.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on memstore succeeded")
	}
	stop := fs.StartAutoCheckpoint(1, time.Millisecond)
	stop() // no-op, must not panic
}
