package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

var (
	alice = Cred{UID: 1000, GIDs: []uint32{1000}}
	bob   = Cred{UID: 1001, GIDs: []uint32{1001}}
	root  = Cred{UID: 0, GIDs: []uint32{0}}
)

func TestRootAttributes(t *testing.T) {
	fs := New()
	a, err := fs.GetAttr(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	if a.Type != TypeDir {
		t.Fatal("root is not a directory")
	}
	if a.Nlink < 2 {
		t.Fatalf("root nlink %d", a.Nlink)
	}
}

func TestCreateLookupReadWrite(t *testing.T) {
	fs := New()
	id, attr, err := fs.Create(root, fs.Root(), "hello.txt", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Type != TypeReg || attr.Size != 0 {
		t.Fatalf("bad attrs %+v", attr)
	}
	if _, err := fs.Write(root, id, 0, []byte("hello, world"), false); err != nil {
		t.Fatal(err)
	}
	got, lattr, err := fs.Lookup(root, fs.Root(), "hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got != id || lattr.Size != 12 {
		t.Fatalf("lookup: id=%d size=%d", got, lattr.Size)
	}
	data, eof, err := fs.Read(root, id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello, world" || !eof {
		t.Fatalf("read %q eof=%v", data, eof)
	}
}

func TestReadOffsets(t *testing.T) {
	fs := New()
	id, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	fs.Write(root, id, 0, []byte("0123456789"), false) //nolint:errcheck
	data, eof, err := fs.Read(root, id, 3, 4)
	if err != nil || string(data) != "3456" || eof {
		t.Fatalf("mid read: %q eof=%v err=%v", data, eof, err)
	}
	data, eof, _ = fs.Read(root, id, 8, 10)
	if string(data) != "89" || !eof {
		t.Fatalf("tail read: %q eof=%v", data, eof)
	}
	data, eof, _ = fs.Read(root, id, 100, 10)
	if len(data) != 0 || !eof {
		t.Fatalf("past-end read: %q eof=%v", data, eof)
	}
}

func TestSparseWrite(t *testing.T) {
	fs := New()
	id, _, _ := fs.Create(root, fs.Root(), "sparse", 0o644, true)
	if _, err := fs.Write(root, id, 1000, []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	a, _ := fs.GetAttr(id)
	if a.Size != 1001 {
		t.Fatalf("size %d, want 1001", a.Size)
	}
	data, _, _ := fs.Read(root, id, 0, 10)
	if !bytes.Equal(data, make([]byte, 10)) {
		t.Fatal("hole not zero-filled")
	}
}

func TestExclusiveCreate(t *testing.T) {
	fs := New()
	if _, _, err := fs.Create(root, fs.Root(), "f", 0o644, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Create(root, fs.Root(), "f", 0o644, true); !errors.Is(err, ErrExist) {
		t.Fatalf("got %v, want ErrExist", err)
	}
	// Non-exclusive create truncates.
	id, _, _ := fs.Lookup(root, fs.Root(), "f")
	fs.Write(root, id, 0, []byte("data"), false) //nolint:errcheck
	_, attr, err := fs.Create(root, fs.Root(), "f", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Size != 0 {
		t.Fatal("non-exclusive create did not truncate")
	}
}

func TestPermissionEnforcement(t *testing.T) {
	fs := New()
	dir, _, err := fs.Mkdir(root, fs.Root(), "alice", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	uid := alice.UID
	if _, err := fs.SetAttrs(root, dir, SetAttr{UID: &uid}); err != nil {
		t.Fatal(err)
	}
	// Bob cannot create in Alice's 0755 directory.
	if _, _, err := fs.Create(bob, dir, "intruder", 0o644, true); !errors.Is(err, ErrPerm) {
		t.Fatalf("got %v, want ErrPerm", err)
	}
	// Alice can.
	id, _, err := fs.Create(alice, dir, "private", 0o600, true)
	if err != nil {
		t.Fatal(err)
	}
	fs.Write(alice, id, 0, []byte("secret"), false) //nolint:errcheck
	// Bob cannot read Alice's 0600 file.
	if _, _, err := fs.Read(bob, id, 0, 10); !errors.Is(err, ErrPerm) {
		t.Fatalf("got %v, want ErrPerm", err)
	}
	// Bob cannot write it either.
	if _, err := fs.Write(bob, id, 0, []byte("x"), false); !errors.Is(err, ErrPerm) {
		t.Fatalf("got %v, want ErrPerm", err)
	}
	// Root bypasses.
	if _, _, err := fs.Read(root, id, 0, 10); err != nil {
		t.Fatal(err)
	}
}

func TestGroupPermissions(t *testing.T) {
	fs := New()
	id, _, _ := fs.Create(root, fs.Root(), "shared", 0o640, true)
	gid := uint32(2000)
	auid := alice.UID
	if _, err := fs.SetAttrs(root, id, SetAttr{UID: &auid, GID: &gid}); err != nil {
		t.Fatal(err)
	}
	carol := Cred{UID: 1002, GIDs: []uint32{5, 2000}}
	if _, _, err := fs.Read(carol, id, 0, 1); err != nil {
		t.Fatalf("group member denied: %v", err)
	}
	if _, _, err := fs.Read(bob, id, 0, 1); !errors.Is(err, ErrPerm) {
		t.Fatalf("non-member got %v, want ErrPerm", err)
	}
}

func TestChmodChownRules(t *testing.T) {
	fs := New()
	id, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	auid := alice.UID
	if _, err := fs.SetAttrs(root, id, SetAttr{UID: &auid}); err != nil {
		t.Fatal(err)
	}
	mode := uint32(0o600)
	if _, err := fs.SetAttrs(alice, id, SetAttr{Mode: &mode}); err != nil {
		t.Fatalf("owner chmod: %v", err)
	}
	if _, err := fs.SetAttrs(bob, id, SetAttr{Mode: &mode}); !errors.Is(err, ErrPerm) {
		t.Fatalf("non-owner chmod: got %v, want ErrPerm", err)
	}
	buid := bob.UID
	if _, err := fs.SetAttrs(alice, id, SetAttr{UID: &buid}); !errors.Is(err, ErrPerm) {
		t.Fatalf("non-root chown away: got %v, want ErrPerm", err)
	}
}

func TestTruncate(t *testing.T) {
	fs := New()
	id, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	fs.Write(root, id, 0, []byte("0123456789"), false) //nolint:errcheck
	sz := uint64(4)
	a, err := fs.SetAttrs(root, id, SetAttr{Size: &sz})
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != 4 {
		t.Fatalf("size %d", a.Size)
	}
	sz = 8
	fs.SetAttrs(root, id, SetAttr{Size: &sz}) //nolint:errcheck
	data, _, _ := fs.Read(root, id, 0, 10)
	if !bytes.Equal(data, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Fatalf("extend produced %q", data)
	}
}

func TestRemoveAndRefcounts(t *testing.T) {
	fs := New()
	id, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	if err := fs.Link(root, id, fs.Root(), "f2"); err != nil {
		t.Fatal(err)
	}
	a, _ := fs.GetAttr(id)
	if a.Nlink != 2 {
		t.Fatalf("nlink %d, want 2", a.Nlink)
	}
	if err := fs.Remove(root, fs.Root(), "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.GetAttr(id); err != nil {
		t.Fatal("file vanished while still linked")
	}
	if err := fs.Remove(root, fs.Root(), "f2"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.GetAttr(id); !errors.Is(err, ErrStale) {
		t.Fatalf("got %v, want ErrStale", err)
	}
}

func TestRmdirSemantics(t *testing.T) {
	fs := New()
	dir, _, _ := fs.Mkdir(root, fs.Root(), "d", 0o755)
	fs.Create(root, dir, "f", 0o644, true) //nolint:errcheck
	if err := fs.Rmdir(root, fs.Root(), "d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("got %v, want ErrNotEmpty", err)
	}
	fs.Remove(root, dir, "f") //nolint:errcheck
	if err := fs.Rmdir(root, fs.Root(), "d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(root, fs.Root(), "d"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestRemoveDirWithRemoveFails(t *testing.T) {
	fs := New()
	fs.Mkdir(root, fs.Root(), "d", 0o755) //nolint:errcheck
	if err := fs.Remove(root, fs.Root(), "d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("got %v, want ErrIsDir", err)
	}
}

func TestRename(t *testing.T) {
	fs := New()
	d1, _, _ := fs.Mkdir(root, fs.Root(), "a", 0o755)
	d2, _, _ := fs.Mkdir(root, fs.Root(), "b", 0o755)
	id, _, _ := fs.Create(root, d1, "f", 0o644, true)
	fs.Write(root, id, 0, []byte("content"), false) //nolint:errcheck
	if err := fs.Rename(root, d1, "f", d2, "g"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Lookup(root, d1, "f"); !errors.Is(err, ErrNotFound) {
		t.Fatal("source still present after rename")
	}
	got, _, err := fs.Lookup(root, d2, "g")
	if err != nil || got != id {
		t.Fatalf("lookup after rename: %v", err)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	fs := New()
	a, _, _ := fs.Create(root, fs.Root(), "a", 0o644, true)
	b, _, _ := fs.Create(root, fs.Root(), "b", 0o644, true)
	if err := fs.Rename(root, fs.Root(), "a", fs.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.GetAttr(b); !errors.Is(err, ErrStale) {
		t.Fatal("replaced target still alive")
	}
	got, _, _ := fs.Lookup(root, fs.Root(), "b")
	if got != a {
		t.Fatal("rename target wrong")
	}
}

func TestRenameDirectoryUpdatesParent(t *testing.T) {
	fs := New()
	d1, _, _ := fs.Mkdir(root, fs.Root(), "a", 0o755)
	d2, _, _ := fs.Mkdir(root, fs.Root(), "b", 0o755)
	sub, _, _ := fs.Mkdir(root, d1, "sub", 0o755)
	if err := fs.Rename(root, d1, "sub", d2, "sub"); err != nil {
		t.Fatal(err)
	}
	parent, _, err := fs.Lookup(root, sub, "..")
	if err != nil {
		t.Fatal(err)
	}
	if parent != d2 {
		t.Fatal(".. does not point at new parent")
	}
}

func TestSymlinkReadlink(t *testing.T) {
	fs := New()
	id, attr, err := fs.Symlink(root, fs.Root(), "link", "/sfs/host:abc")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Type != TypeSymlink {
		t.Fatal("wrong type")
	}
	target, err := fs.Readlink(id)
	if err != nil || target != "/sfs/host:abc" {
		t.Fatalf("readlink: %q %v", target, err)
	}
	reg, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	if _, err := fs.Readlink(reg); !errors.Is(err, ErrNotSymlink) {
		t.Fatalf("got %v, want ErrNotSymlink", err)
	}
}

func TestReadDirCookies(t *testing.T) {
	fs := New()
	for i := 0; i < 10; i++ {
		fs.Create(root, fs.Root(), fmt.Sprintf("f%02d", i), 0o644, true) //nolint:errcheck
	}
	ents, eof, err := fs.ReadDir(root, fs.Root(), 0, 4)
	if err != nil || eof || len(ents) != 4 {
		t.Fatalf("first page: %d entries eof=%v err=%v", len(ents), eof, err)
	}
	var all []string
	cookie := uint64(0)
	for {
		ents, eof, err := fs.ReadDir(root, fs.Root(), cookie, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			all = append(all, e.Name)
			cookie = e.Cookie
		}
		if eof {
			break
		}
	}
	if len(all) != 10 {
		t.Fatalf("paged readdir returned %d entries", len(all))
	}
	seen := map[string]bool{}
	for _, n := range all {
		if seen[n] {
			t.Fatalf("duplicate entry %q across pages", n)
		}
		seen[n] = true
	}
}

func TestLookupDotDot(t *testing.T) {
	fs := New()
	d, _, _ := fs.Mkdir(root, fs.Root(), "d", 0o755)
	id, _, err := fs.Lookup(root, d, "..")
	if err != nil || id != fs.Root() {
		t.Fatalf("..: %v", err)
	}
	id, _, err = fs.Lookup(root, d, ".")
	if err != nil || id != d {
		t.Fatalf(".: %v", err)
	}
	// Root's .. is root.
	id, _, _ = fs.Lookup(root, fs.Root(), "..")
	if id != fs.Root() {
		t.Fatal("root .. escapes")
	}
}

func TestBadNames(t *testing.T) {
	fs := New()
	for _, name := range []string{"", ".", "..", "a/b", string(bytes.Repeat([]byte{'x'}, 300))} {
		if _, _, err := fs.Create(root, fs.Root(), name, 0o644, true); err == nil {
			t.Errorf("Create(%q) succeeded", name)
		}
	}
}

func TestStaleHandles(t *testing.T) {
	fs := New()
	id, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	fs.Remove(root, fs.Root(), "f") //nolint:errcheck
	if _, _, err := fs.Read(root, id, 0, 1); !errors.Is(err, ErrStale) {
		t.Fatalf("read stale: %v", err)
	}
	if _, err := fs.Write(root, id, 0, []byte("x"), false); !errors.Is(err, ErrStale) {
		t.Fatalf("write stale: %v", err)
	}
}

func TestSetAttrTimes(t *testing.T) {
	fs := New()
	id, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	when := time.Date(1999, 12, 1, 0, 0, 0, 0, time.UTC)
	a, err := fs.SetAttrs(root, id, SetAttr{Mtime: &when, Atime: &when})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mtime.Equal(when) || !a.Atime.Equal(when) {
		t.Fatal("times not applied")
	}
}

func TestResolveWalk(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(root, "a/b/c.txt", []byte("deep"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(root, "a/b/c.txt")
	if err != nil || string(data) != "deep" {
		t.Fatalf("ReadFile: %q %v", data, err)
	}
	if err := fs.SymlinkAt(root, "a/link", "b/c.txt"); err != nil {
		t.Fatal(err)
	}
	data, err = fs.ReadFile(root, "a/link")
	if err != nil || string(data) != "deep" {
		t.Fatalf("through symlink: %q %v", data, err)
	}
}

func TestResolveExternalTarget(t *testing.T) {
	fs := New()
	if err := fs.SymlinkAt(root, "links/verisign", "/sfs/verisign.com:abc123"); err != nil {
		t.Fatal(err)
	}
	_, ext, err := fs.Resolve(root, "links/verisign")
	if err != nil {
		t.Fatal(err)
	}
	if ext != "/sfs/verisign.com:abc123" {
		t.Fatalf("external = %q", ext)
	}
	// A path continuing through the external link carries the rest.
	if err := fs.SymlinkAt(root, "mit", "/sfs/mit.edu:xyz"); err != nil {
		t.Fatal(err)
	}
	_, ext, err = fs.Resolve(root, "mit/users/dm")
	if err != nil {
		t.Fatal(err)
	}
	if ext != "/sfs/mit.edu:xyz/users/dm" {
		t.Fatalf("external with rest = %q", ext)
	}
}

func TestSymlinkLoopDetected(t *testing.T) {
	fs := New()
	fs.SymlinkAt(root, "x", "y") //nolint:errcheck
	fs.SymlinkAt(root, "y", "x") //nolint:errcheck
	if _, _, err := fs.Resolve(root, "x"); !errors.Is(err, ErrTooManyLinks) {
		t.Fatalf("got %v, want ErrTooManyLinks", err)
	}
}

func TestMkdirAllIdempotent(t *testing.T) {
	fs := New()
	a, err := fs.MkdirAll(root, "x/y/z", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.MkdirAll(root, "x/y/z", 0o755)
	if err != nil || a != b {
		t.Fatalf("second MkdirAll: id %d vs %d, %v", a, b, err)
	}
}

// Property: after any sequence of create/remove pairs the node count
// returns to its baseline — no leaks.
func TestQuickNoNodeLeaks(t *testing.T) {
	f := func(names []string) bool {
		fs := New()
		base := fs.NumNodes()
		created := map[string]bool{}
		for _, raw := range names {
			name := fmt.Sprintf("n%x", raw)
			if len(name) > MaxNameLen {
				name = name[:MaxNameLen]
			}
			if !created[name] {
				if _, _, err := fs.Create(root, fs.Root(), name, 0o644, true); err != nil {
					return false
				}
				created[name] = true
			}
		}
		for name := range created {
			if err := fs.Remove(root, fs.Root(), name); err != nil {
				return false
			}
		}
		return fs.NumNodes() == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: written data always reads back regardless of chunking.
func TestQuickWriteReadBack(t *testing.T) {
	f := func(chunks [][]byte) bool {
		fs := New()
		id, _, err := fs.Create(root, fs.Root(), "f", 0o644, true)
		if err != nil {
			return false
		}
		var expect []byte
		off := uint64(0)
		for _, c := range chunks {
			if len(c) > 4096 {
				c = c[:4096]
			}
			if _, err := fs.Write(root, id, off, c, false); err != nil {
				return false
			}
			expect = append(expect, c...)
			off += uint64(len(c))
		}
		got, _, err := fs.Read(root, id, 0, uint32(len(expect)+1))
		if err != nil {
			return false
		}
		return bytes.Equal(got, expect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

type countingDisk struct{ reads, writes, syncs int }

func (d *countingDisk) Read(n int)  { d.reads++ }
func (d *countingDisk) Write(n int) { d.writes++ }
func (d *countingDisk) Sync()       { d.syncs++ }

func TestDiskModelCharges(t *testing.T) {
	fs := New()
	d := &countingDisk{}
	fs.SetDisk(d)
	id, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	if d.syncs == 0 {
		t.Fatal("create did not sync metadata")
	}
	fs.Write(root, id, 0, []byte("x"), true) //nolint:errcheck
	if d.writes == 0 {
		t.Fatal("write not charged")
	}
	fs.Read(root, id, 0, 1) //nolint:errcheck
	if d.reads == 0 {
		t.Fatal("read not charged")
	}
	before := d.syncs
	fs.Remove(root, fs.Root(), "f") //nolint:errcheck
	if d.syncs <= before {
		t.Fatal("unlink did not sync")
	}
}

func BenchmarkCreateRemove(b *testing.B) {
	fs := New()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("f%d", i)
		if _, _, err := fs.Create(root, fs.Root(), name, 0o644, true); err != nil {
			b.Fatal(err)
		}
		if err := fs.Remove(root, fs.Root(), name); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWrite8K(b *testing.B) {
	fs := New()
	id, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	buf := make([]byte, 8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		if _, err := fs.Write(root, id, uint64(i%1000)*8192, buf, false); err != nil {
			b.Fatal(err)
		}
	}
}

func TestVerifierAndRestart(t *testing.T) {
	fs := New()
	v1 := fs.Verifier()
	id, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	if _, err := fs.Write(root, id, 0, []byte("stable"), true); err != nil {
		t.Fatal(err)
	}
	// An unstable overwrite that is never committed is discarded by a
	// server restart, and the write verifier changes so clients can
	// detect the loss.
	if _, err := fs.Write(root, id, 0, []byte("VOLATILE--"), false); err != nil {
		t.Fatal(err)
	}
	fs.Restart()
	if fs.Verifier() == v1 {
		t.Fatal("verifier unchanged across restart")
	}
	data, _, err := fs.Read(root, id, 0, 100)
	if err != nil || string(data) != "stable" {
		t.Fatalf("post-restart data %q err=%v", data, err)
	}
}

func TestCommitSurvivesRestart(t *testing.T) {
	fs := New()
	id, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	if _, err := fs.Write(root, id, 0, []byte("durable"), false); err != nil {
		t.Fatal(err)
	}
	if err := fs.Commit(id); err != nil {
		t.Fatal(err)
	}
	fs.Restart()
	data, _, err := fs.Read(root, id, 0, 100)
	if err != nil || string(data) != "durable" {
		t.Fatalf("committed data lost across restart: %q err=%v", data, err)
	}
}

func TestStableWriteDropsShadow(t *testing.T) {
	fs := New()
	id, _, _ := fs.Create(root, fs.Root(), "f", 0o644, true)
	if _, err := fs.Write(root, id, 0, []byte("one"), false); err != nil {
		t.Fatal(err)
	}
	// A FILE_SYNC write flushes everything pending on the file, so the
	// pre-crash snapshot must not resurrect the old contents.
	if _, err := fs.Write(root, id, 0, []byte("two"), true); err != nil {
		t.Fatal(err)
	}
	fs.Restart()
	data, _, err := fs.Read(root, id, 0, 100)
	if err != nil || string(data) != "two" {
		t.Fatalf("stable write lost across restart: %q err=%v", data, err)
	}
}
