package vfs

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// SeedFromHost copies a host directory tree into the file system so
// the daemons can serve real content. Symbolic links are preserved
// (their targets may be self-certifying pathnames). Ownership is
// assigned to cred.
func (f *FS) SeedFromHost(cred Cred, hostDir string) error {
	root, err := filepath.Abs(hostDir)
	if err != nil {
		return err
	}
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		rel = filepath.ToSlash(rel)
		switch {
		case d.Type()&fs.ModeSymlink != 0:
			target, err := os.Readlink(path)
			if err != nil {
				return err
			}
			return f.SymlinkAt(cred, rel, target)
		case d.IsDir():
			_, err := f.MkdirAll(cred, rel, 0o755)
			return err
		default:
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			mode := uint32(0o644)
			if info, err := d.Info(); err == nil && info.Mode()&0o100 != 0 {
				mode = 0o755
			}
			return f.WriteFile(cred, rel, data, mode)
		}
	})
}

// DumpToHost writes the file system's tree under hostDir, inverting
// SeedFromHost (used by tools to extract fetched trees).
func (f *FS) DumpToHost(cred Cred, hostDir string) error {
	var walk func(dir FileID, rel string) error
	walk = func(dir FileID, rel string) error {
		ents, _, err := f.ReadDir(cred, dir, 0, 0)
		if err != nil {
			return err
		}
		for _, e := range ents {
			attr, err := f.GetAttr(e.FileID)
			if err != nil {
				return err
			}
			hostPath := filepath.Join(hostDir, filepath.FromSlash(rel), e.Name)
			switch attr.Type {
			case TypeDir:
				if err := os.MkdirAll(hostPath, 0o755); err != nil {
					return err
				}
				if err := walk(e.FileID, strings.TrimPrefix(rel+"/"+e.Name, "/")); err != nil {
					return err
				}
			case TypeSymlink:
				target, err := f.Readlink(e.FileID)
				if err != nil {
					return err
				}
				os.Remove(hostPath) //nolint:errcheck // replace if present
				if err := os.Symlink(target, hostPath); err != nil {
					return err
				}
			default:
				data, _, err := f.Read(cred, e.FileID, 0, uint32(attr.Size))
				if err != nil {
					return err
				}
				if err := os.MkdirAll(filepath.Dir(hostPath), 0o755); err != nil {
					return err
				}
				if err := os.WriteFile(hostPath, data, os.FileMode(attr.Mode&0o777)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := os.MkdirAll(hostDir, 0o755); err != nil {
		return err
	}
	return walk(f.Root(), "")
}
