package vfs

import (
	"errors"
	"strings"
)

// ErrTooManyLinks is returned when symbolic link resolution exceeds
// the loop limit.
var ErrTooManyLinks = errors.New("vfs: too many levels of symbolic links")

const maxLinkDepth = 16

// Resolve walks path (slash separated, relative to the root) following
// symbolic links whose targets are relative or rooted inside this file
// system. Targets beginning with "/" that escape this file system
// (such as self-certifying pathnames) stop resolution with the
// remaining target returned in external.
func (fs *FS) Resolve(cred Cred, path string) (id FileID, external string, err error) {
	return fs.resolve(cred, fs.Root(), path, 0)
}

func (fs *FS) resolve(cred Cred, dir FileID, path string, depth int) (FileID, string, error) {
	if depth > maxLinkDepth {
		return 0, "", ErrTooManyLinks
	}
	cur := dir
	parts := splitPath(path)
	for i, part := range parts {
		id, attr, err := fs.Lookup(cred, cur, part)
		if err != nil {
			return 0, "", err
		}
		if attr.Type == TypeSymlink {
			target, err := fs.Readlink(id)
			if err != nil {
				return 0, "", err
			}
			rest := strings.Join(parts[i+1:], "/")
			if strings.HasPrefix(target, "/") {
				// Leaves this file system (e.g. a secure
				// link to a self-certifying pathname).
				if rest != "" {
					target = target + "/" + rest
				}
				return 0, target, nil
			}
			if rest != "" {
				target = target + "/" + rest
			}
			return fs.resolve(cred, cur, target, depth+1)
		}
		cur = id
	}
	return cur, "", nil
}

func splitPath(p string) []string {
	var parts []string
	for _, s := range strings.Split(p, "/") {
		if s != "" && s != "." {
			parts = append(parts, s)
		}
	}
	return parts
}

// MkdirAll creates every missing directory along path and returns the
// FileID of the final directory.
func (fs *FS) MkdirAll(cred Cred, path string, mode uint32) (FileID, error) {
	cur := fs.Root()
	for _, part := range splitPath(path) {
		id, attr, err := fs.Lookup(cred, cur, part)
		switch {
		case err == nil:
			if attr.Type != TypeDir {
				return 0, ErrNotDir
			}
			cur = id
		case errors.Is(err, ErrNotFound):
			id, _, err = fs.Mkdir(cred, cur, part, mode)
			if err != nil {
				return 0, err
			}
			cur = id
		default:
			return 0, err
		}
	}
	return cur, nil
}

// WriteFile creates (or truncates) the file at path with the given
// contents, creating parent directories as needed.
func (fs *FS) WriteFile(cred Cred, path string, data []byte, mode uint32) error {
	dirPath, name := splitDirFile(path)
	dir, err := fs.MkdirAll(cred, dirPath, 0o755)
	if err != nil {
		return err
	}
	id, _, err := fs.Create(cred, dir, name, mode, false)
	if err != nil {
		return err
	}
	_, err = fs.Write(cred, id, 0, data, false)
	return err
}

// ReadFile returns the full contents of the file at path.
func (fs *FS) ReadFile(cred Cred, path string) ([]byte, error) {
	id, external, err := fs.Resolve(cred, path)
	if err != nil {
		return nil, err
	}
	if external != "" {
		return nil, ErrNotFound
	}
	attr, err := fs.GetAttr(id)
	if err != nil {
		return nil, err
	}
	data, _, err := fs.Read(cred, id, 0, uint32(attr.Size))
	return data, err
}

// SymlinkAt creates a symbolic link at path pointing to target,
// creating parent directories as needed.
func (fs *FS) SymlinkAt(cred Cred, path, target string) error {
	dirPath, name := splitDirFile(path)
	dir, err := fs.MkdirAll(cred, dirPath, 0o755)
	if err != nil {
		return err
	}
	_, _, err = fs.Symlink(cred, dir, name, target)
	return err
}

func splitDirFile(path string) (dir, file string) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return "", ""
	}
	return strings.Join(parts[:len(parts)-1], "/"), parts[len(parts)-1]
}
