package vfs

// Race stress for the sharded lock hierarchy: namespace operations
// (Create/Rename/Remove) interleave with the data path
// (Read/Write/Commit) on the same directories, including the
// cross-directory rename pattern whose naive "directories first" lock
// order deadlocks. These tests assert semantics loosely — the real
// assertion is that `go test -race ./internal/vfs` stays quiet and
// nothing deadlocks.

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestStressNamespaceVsData runs writers, readers, committers, and
// renamers over a small set of shared directories and files.
func TestStressNamespaceVsData(t *testing.T) {
	fs := New()
	cred := Cred{UID: 0}

	// Two directories whose ids bracket the files created later, so
	// renames exercise both the in-order fast path and the
	// release-and-retry restart path.
	dirA, _, err := fs.Mkdir(cred, fs.Root(), "a", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	dirB, _, err := fs.Mkdir(cred, fs.Root(), "b", 0o755)
	if err != nil {
		t.Fatal(err)
	}

	const nFiles = 8
	files := make([]FileID, nFiles)
	for i := range files {
		id, _, err := fs.Create(cred, dirA, "shared"+string(rune('0'+i)), 0o644, true)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = id
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	// Data path: hammer the shared files. ErrStale is fine — a
	// renamer/remover may retire a file mid-flight.
	buf := make([]byte, 512)
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stopped(); i++ {
				id := files[(i+g)%nFiles]
				var opErr error
				switch i % 4 {
				case 0:
					_, opErr = fs.Write(cred, id, uint64(i%7)*64, buf, false)
				case 1:
					_, _, opErr = fs.Read(cred, id, 0, 256)
				case 2:
					opErr = fs.Commit(id)
				case 3:
					_, opErr = fs.GetAttr(id)
				}
				if opErr != nil && !errors.Is(opErr, ErrStale) {
					t.Errorf("data path: %v", opErr)
					return
				}
			}
		}()
	}

	// Namespace churn in both directions between the two directories:
	// the deadlock-prone pattern if lock ordering were "from-dir
	// before to-dir" instead of ascending FileID.
	for g := 0; g < 2; g++ {
		g := g
		from, to := dirA, dirB
		if g == 1 {
			from, to = dirB, dirA
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := "churn" + string(rune('0'+g))
			for i := 0; !stopped(); i++ {
				if _, _, err := fs.Create(cred, from, name, 0o644, false); err != nil &&
					!errors.Is(err, ErrExist) && !errors.Is(err, ErrStale) {
					t.Errorf("create: %v", err)
					return
				}
				if err := fs.Rename(cred, from, name, to, name); err != nil &&
					!errors.Is(err, ErrNotFound) && !errors.Is(err, ErrStale) {
					t.Errorf("rename: %v", err)
					return
				}
				if err := fs.Remove(cred, to, name); err != nil &&
					!errors.Is(err, ErrNotFound) && !errors.Is(err, ErrStale) {
					t.Errorf("remove: %v", err)
					return
				}
			}
		}()
	}

	// One goroutine rotates the shared files themselves through
	// renames so the data-path goroutines race against entry moves of
	// the very nodes they hold.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stopped(); i++ {
			n := "shared" + string(rune('0'+i%nFiles))
			if err := fs.Rename(cred, dirA, n, dirB, n); err != nil &&
				!errors.Is(err, ErrNotFound) && !errors.Is(err, ErrStale) {
				t.Errorf("rotate out: %v", err)
				return
			}
			if err := fs.Rename(cred, dirB, n, dirA, n); err != nil &&
				!errors.Is(err, ErrNotFound) && !errors.Is(err, ErrStale) {
				t.Errorf("rotate back: %v", err)
				return
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The shared files all survived the churn (renames only moved
	// them), and every file still reads back consistently.
	for _, id := range files {
		if _, err := fs.GetAttr(id); err != nil {
			t.Fatalf("shared file %d lost: %v", id, err)
		}
	}
}

// TestStressRestartVsWrite interleaves Restart with unstable writes
// and commits: the verifier must change across each restart, and no
// write may observe torn data.
func TestStressRestartVsWrite(t *testing.T) {
	fs := New()
	cred := Cred{UID: 0}
	id, _, err := fs.Create(cred, fs.Root(), "f", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = 0xab
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := fs.Write(cred, id, 0, payload, i%8 == 0); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if i%16 == 0 {
				if err := fs.Commit(id); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < 20; i++ {
		before := fs.Verifier()
		fs.Restart()
		if fs.Verifier() == before {
			t.Error("verifier unchanged across restart")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Post-churn, the file is either empty (reverted) or holds the
	// payload prefix — never torn garbage.
	data, _, err := fs.Read(cred, id, 0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data {
		if b != 0xab {
			t.Fatalf("byte %d = %#x, want 0xab", i, b)
		}
	}
}

// TestLockStatsSnapshot checks that the contention counters move and
// aggregate sanely under parallel load.
func TestLockStatsSnapshot(t *testing.T) {
	fs := New()
	cred := Cred{UID: 0}
	id, _, err := fs.Create(cred, fs.Root(), "f", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if _, err := fs.Write(cred, id, 0, []byte("x"), false); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := fs.LockStatsSnapshot()
	if st.NodeLocks == 0 || st.MapLocks == 0 {
		t.Fatalf("counters never moved: %+v", st)
	}
	var fromShards uint64
	for _, sh := range st.Shards {
		fromShards += sh.NodeContended
	}
	if fromShards != st.NodeContended {
		t.Fatalf("per-shard contention %d != total %d", fromShards, st.NodeContended)
	}
}
