package vfs

// Disk-backed vfs tests: the same FS API served from storage/diskstore,
// where Restart is a real crash (torn WAL tail, epoch bump, full
// replay) instead of the memstore's test-only shadow revert, and a
// close/reopen must reproduce the entire namespace from the journal.

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage/diskstore"
)

// newDiskFS opens a disk-backed FS in dir with a deterministic clock
// (satellite: no wall-clock reads in the log path, so replay is
// bit-stable). Each call to the clock advances one second from a
// fixed origin.
func newDiskFS(t *testing.T, dir string, opts diskstore.Options) (*FS, *diskstore.Store) {
	t.Helper()
	ds, err := diskstore.Open(dir, opts)
	if err != nil {
		t.Fatalf("diskstore.Open: %v", err)
	}
	fs, err := NewWithStores(ds, ds)
	if err != nil {
		t.Fatalf("NewWithStores: %v", err)
	}
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	var tick atomic.Int64 // concurrent writers stamp records in parallel
	fs.clock = func() time.Time {
		return base.Add(time.Duration(tick.Add(1)) * time.Second)
	}
	return fs, ds
}

// TestDiskNamespacePersistence drives every journaled mutation —
// create, mkdir, symlink, link, rename, remove, rmdir, setattr,
// truncate — then closes the store and reopens it, asserting the
// replayed tree matches what was built.
func TestDiskNamespacePersistence(t *testing.T) {
	dir := t.TempDir()
	fs, ds := newDiskFS(t, dir, diskstore.Options{})

	d1, _, err := fs.Mkdir(root, fs.Root(), "dir1", 0o750)
	if err != nil {
		t.Fatal(err)
	}
	f1, _, err := fs.Create(root, d1, "file1", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, f1, 0, []byte("file one content"), false); err != nil {
		t.Fatal(err)
	}
	if err := fs.Commit(f1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Symlink(root, d1, "ln", "../dir1/file1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link(root, f1, fs.Root(), "hard1"); err != nil {
		t.Fatal(err)
	}
	// A removed file and a removed directory must stay gone.
	if _, _, err := fs.Create(root, d1, "doomed", 0o600, true); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(root, d1, "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Mkdir(root, fs.Root(), "doomeddir", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(root, fs.Root(), "doomeddir"); err != nil {
		t.Fatal(err)
	}
	// Rename across directories, and attribute surgery.
	if err := fs.Rename(root, d1, "file1", fs.Root(), "renamed1"); err != nil {
		t.Fatal(err)
	}
	mode := uint32(0o604)
	size := uint64(4)
	if _, err := fs.SetAttrs(root, f1, SetAttr{Mode: &mode, Size: &size}); err != nil {
		t.Fatal(err)
	}
	wantAttr, err := fs.GetAttr(f1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, ds2 := newDiskFS(t, dir, diskstore.Options{})
	defer ds2.Close()
	if got := fs2.LastReplay(); got.Records == 0 {
		t.Fatalf("LastReplay = %+v, want replayed records", got)
	}

	// The tree: /renamed1 (was dir1/file1), /hard1 (same id), /dir1/ln.
	id, attr, err := fs2.Lookup(root, fs2.Root(), "renamed1")
	if err != nil {
		t.Fatal(err)
	}
	if id != f1 {
		t.Fatalf("renamed1 id = %d, want %d (ids persist)", id, f1)
	}
	if attr.Mode != 0o604 || attr.Size != 4 || attr.Nlink != 2 {
		t.Fatalf("replayed attr = %+v, want mode 0604, size 4, nlink 2", attr)
	}
	if attr.UID != wantAttr.UID || !attr.Mtime.Equal(wantAttr.Mtime) || !attr.Ctime.Equal(wantAttr.Ctime) {
		t.Fatalf("replayed attr %+v differs from pre-close %+v", attr, wantAttr)
	}
	hid, _, err := fs2.Lookup(root, fs2.Root(), "hard1")
	if err != nil || hid != f1 {
		t.Fatalf("hard1 = (%d, %v), want id %d", hid, err, f1)
	}
	data, _, err := fs2.Read(root, f1, 0, 100)
	if err != nil || string(data) != "file" {
		t.Fatalf("replayed content = %q err=%v, want the 4 truncated bytes", data, err)
	}
	d1b, _, err := fs2.Lookup(root, fs2.Root(), "dir1")
	if err != nil || d1b != d1 {
		t.Fatalf("dir1 = (%d, %v), want id %d", d1b, err, d1)
	}
	lnID, _, err := fs2.Lookup(root, d1b, "ln")
	if err != nil {
		t.Fatal(err)
	}
	target, err := fs2.Readlink(lnID)
	if err != nil || target != "../dir1/file1" {
		t.Fatalf("readlink = (%q, %v)", target, err)
	}
	for _, gone := range []struct {
		dir  FileID
		name string
	}{{d1b, "doomed"}, {fs2.Root(), "doomeddir"}, {d1b, "file1"}} {
		if _, _, err := fs2.Lookup(root, gone.dir, gone.name); err == nil {
			t.Fatalf("%q resurrected by replay", gone.name)
		}
	}

	// New ids must not collide with replayed ones.
	nid, _, err := fs2.Create(root, fs2.Root(), "post-replay", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if nid == f1 || nid == d1 {
		t.Fatalf("post-replay id %d collides with a replayed id", nid)
	}
}

// TestDiskCommitSurvivesCrash is the acceptance invariant: after a
// real crash (Restart on the disk path), acknowledged COMMIT data is
// intact and an uncommitted user-space-buffered write is gone.
func TestDiskCommitSurvivesCrash(t *testing.T) {
	fs, ds := newDiskFS(t, t.TempDir(), diskstore.Options{AutoFlushBytes: -1})
	defer ds.Close()
	id, _, err := fs.Create(root, fs.Root(), "f", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, id, 0, []byte("durable"), false); err != nil {
		t.Fatal(err)
	}
	if err := fs.Commit(id); err != nil {
		t.Fatal(err)
	}
	// Uncommitted unstable overwrite: buffered in the WAL's user-space
	// buffer (auto-flush disabled), lost by the crash.
	if _, err := fs.Write(root, id, 0, []byte("VOLATILE--"), false); err != nil {
		t.Fatal(err)
	}
	fs.Restart()
	data, _, err := fs.Read(root, id, 0, 100)
	if err != nil || string(data) != "durable" {
		t.Fatalf("post-crash read = %q err=%v, want the committed image", data, err)
	}
}

// TestDiskVerifierFromEpoch: the write verifier is derived from the
// WAL epoch, so it changes on every crash AND every clean reopen, and
// two FS instances over the same epoch agree (replayed clients and a
// reopened server must compare equal verifiers).
func TestDiskVerifierFromEpoch(t *testing.T) {
	dir := t.TempDir()
	fs, ds := newDiskFS(t, dir, diskstore.Options{})
	v1 := fs.Verifier()
	fs.Restart()
	v2 := fs.Verifier()
	if v2 == v1 {
		t.Fatal("verifier unchanged across crash")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, ds2 := newDiskFS(t, dir, diskstore.Options{})
	defer ds2.Close()
	v3 := fs2.Verifier()
	if v3 == v1 || v3 == v2 {
		t.Fatal("verifier repeated across reopen")
	}
	// Same epoch → same verifier: mint again without a restart.
	if fs2.Verifier() != v3 {
		t.Fatal("verifier not stable within one boot")
	}
}

// TestDiskRestartConcurrentWrites exercises the crash-replay swap
// under concurrent mutation: in-flight writes may land in the old
// orphaned state or fail with ErrIO, but the FS must stay consistent
// and committed-before-crash data must survive.
func TestDiskRestartConcurrentWrites(t *testing.T) {
	fs, ds := newDiskFS(t, t.TempDir(), diskstore.Options{})
	defer ds.Close()
	id, _, err := fs.Create(root, fs.Root(), "f", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(root, id, 0, []byte("committed"), false); err != nil {
		t.Fatal(err)
	}
	if err := fs.Commit(id); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := bytes.Repeat([]byte("w"), 512)
		for i := 0; i < 200; i++ {
			fs.Write(root, id, 9+uint64(i)*512, buf, false) //nolint:errcheck
		}
	}()
	fs.Restart()
	<-done
	data, _, err := fs.Read(root, id, 0, 9)
	if err != nil || string(data) != "committed" {
		t.Fatalf("post-crash read = %q err=%v", data, err)
	}
	// The FS keeps serving writes after the swap.
	if _, err := fs.Write(root, id, 0, []byte("COMMITTED"), true); err != nil {
		t.Fatal(err)
	}
}
