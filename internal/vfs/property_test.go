package vfs

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Property: after any sequence of renames among a fixed set of names,
// exactly the original number of files exist and each is reachable
// under exactly one name.
func TestQuickRenamePreservesFiles(t *testing.T) {
	f := func(moves []uint16) bool {
		fs := New()
		cred := Cred{UID: 0}
		const n = 6
		for i := 0; i < n; i++ {
			if _, _, err := fs.Create(cred, fs.Root(), fmt.Sprintf("f%d", i), 0o644, true); err != nil {
				return false
			}
		}
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("f%d", i)
		}
		for _, mv := range moves {
			from := int(mv) % n
			to := int(mv>>4) % n
			if from == to {
				continue
			}
			// Rename replaces the target; track survivors.
			if err := fs.Rename(cred, fs.Root(), names[from], fs.Root(), names[to]); err != nil {
				// Source may already have been consumed by a
				// previous replace; that is ErrNotFound.
				if err != ErrNotFound {
					return false
				}
			}
		}
		// Every listed entry must resolve, and nlink accounting
		// must be consistent.
		ents, _, err := fs.ReadDir(cred, fs.Root(), 0, 0)
		if err != nil {
			return false
		}
		for _, e := range ents {
			if _, err := fs.GetAttr(e.FileID); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: link/unlink sequences keep nlink equal to the number of
// directory entries referencing the file.
func TestQuickHardLinkAccounting(t *testing.T) {
	f := func(ops []bool) bool {
		fs := New()
		cred := Cred{UID: 0}
		id, _, err := fs.Create(cred, fs.Root(), "base", 0o644, true)
		if err != nil {
			return false
		}
		liveNames := map[string]bool{"base": true}
		next := 0
		for _, add := range ops {
			if add {
				name := fmt.Sprintf("l%d", next)
				next++
				if err := fs.Link(cred, id, fs.Root(), name); err != nil {
					return false
				}
				liveNames[name] = true
			} else {
				for name := range liveNames {
					delete(liveNames, name)
					if err := fs.Remove(cred, fs.Root(), name); err != nil {
						return false
					}
					break
				}
			}
			if len(liveNames) == 0 {
				// File fully unlinked: must be gone.
				if _, err := fs.GetAttr(id); err == nil {
					return false
				}
				return true
			}
			attr, err := fs.GetAttr(id)
			if err != nil {
				return false
			}
			if int(attr.Nlink) != len(liveNames) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
