package vfs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSeedFromHostAndDumpToHost(t *testing.T) {
	src := t.TempDir()
	if err := os.MkdirAll(filepath.Join(src, "sub/deep"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "top.txt"), []byte("top"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "sub/deep/leaf.bin"), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "sub/run.sh"), []byte("#!/bin/sh\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink("/sfs/host:abc", filepath.Join(src, "link")); err != nil {
		t.Fatal(err)
	}

	fs := New()
	cred := Cred{UID: 0}
	if err := fs.SeedFromHost(cred, src); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(cred, "top.txt")
	if err != nil || string(data) != "top" {
		t.Fatalf("top.txt: %q %v", data, err)
	}
	data, err = fs.ReadFile(cred, "sub/deep/leaf.bin")
	if err != nil || len(data) != 3 {
		t.Fatalf("leaf: %v %v", data, err)
	}
	id, _, err := fs.Resolve(cred, "sub/run.sh")
	if err != nil {
		t.Fatal(err)
	}
	attr, _ := fs.GetAttr(id)
	if attr.Mode&0o100 == 0 {
		t.Fatal("executable bit lost")
	}
	_, external, err := fs.Resolve(cred, "link")
	if err != nil || external != "/sfs/host:abc" {
		t.Fatalf("symlink: %q %v", external, err)
	}

	// Round trip back to the host.
	dst := t.TempDir()
	if err := fs.DumpToHost(cred, dst); err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(filepath.Join(dst, "sub/deep/leaf.bin"))
	if err != nil || len(back) != 3 {
		t.Fatalf("dumped leaf: %v %v", back, err)
	}
	target, err := os.Readlink(filepath.Join(dst, "link"))
	if err != nil || target != "/sfs/host:abc" {
		t.Fatalf("dumped symlink: %q %v", target, err)
	}
}
