package secchan

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/sunrpc"
	"repro/internal/xdr"
)

// segRWC is an in-memory transport that also accepts vectored writes,
// standing in for netsim.Conn so the plaintext zero-copy path runs.
type segRWC struct {
	*bytes.Buffer
	segWrites int
}

func (s *segRWC) Close() error { return nil }

func (s *segRWC) WriteSegments(segs [][]byte) (int, int, error) {
	n := 0
	for _, sg := range segs {
		m, err := s.Buffer.Write(sg)
		n += m
		if err != nil {
			return n, 0, err
		}
	}
	s.segWrites++
	return n, 0, nil
}

var _ sunrpc.SegmentWriter = (*segRWC)(nil)

func gatherPair(t testing.TB) (cw, sr *Conn, wire *segRWC) {
	t.Helper()
	wire = &segRWC{Buffer: &bytes.Buffer{}}
	keyCS := bytes.Repeat([]byte{0x11}, keyHalf)
	keySC := bytes.Repeat([]byte{0x22}, keyHalf)
	cw, err := newConn(wire, keyCS, keySC, true)
	if err != nil {
		t.Fatal(err)
	}
	sr, err = newConn(wire, keyCS, keySC, false)
	if err != nil {
		t.Fatal(err)
	}
	return cw, sr, wire
}

// split chops p into segments at the given cut points.
func split(p []byte, cuts ...int) [][]byte {
	var segs [][]byte
	prev := 0
	for _, c := range cuts {
		segs = append(segs, p[prev:c])
		prev = c
	}
	return append(segs, p[prev:])
}

// A record sealed from segments must be byte-identical on the wire to
// the same plaintext sealed through the legacy Write funnel — the
// receiver cannot tell which path the sender used.
func TestWriteSegmentsMatchesWrite(t *testing.T) {
	plain := make([]byte, 8192+100)
	for i := range plain {
		plain[i] = byte(i * 31)
	}
	flatW, _, flatWire := gatherPair(t)
	if _, err := flatW.Write(plain); err != nil {
		t.Fatal(err)
	}
	gatherW, sr, gatherWire := gatherPair(t)
	n, copied, err := gatherW.WriteSegments(split(plain, 4, 100, 100+8192))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(plain) {
		t.Fatalf("WriteSegments n = %d, want %d", n, len(plain))
	}
	if copied != 4+len(plain)+20 {
		t.Fatalf("enc-on copied = %d, want sealed record length %d", copied, 4+len(plain)+20)
	}
	if !bytes.Equal(flatWire.Bytes(), gatherWire.Bytes()) {
		t.Fatal("gathered seal produced different ciphertext than legacy Write")
	}
	got := make([]byte, len(plain))
	if _, err := io.ReadFull(sr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatal("receiver decoded different plaintext")
	}
}

// With encryption off and a vectored transport, sealing stages zero
// bytes: header, borrowed segments, and MAC go down as segments.
func TestWriteSegmentsPlaintextVectored(t *testing.T) {
	SetEncryption(false)
	defer SetEncryption(true)
	cw, sr, wire := gatherPair(t)
	plain := bytes.Repeat([]byte{0x5c}, 8192)
	n, copied, err := cw.WriteSegments(split(plain, 1024, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(plain) || copied != 0 {
		t.Fatalf("vectored plaintext: n=%d copied=%d, want n=%d copied=0", n, copied, len(plain))
	}
	if wire.segWrites == 0 {
		t.Fatal("plaintext path did not use the transport's vectored write")
	}
	got := make([]byte, len(plain))
	if _, err := io.ReadFull(sr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatal("receiver decoded different plaintext")
	}
}

// Interleaving gathered and legacy writes on one channel must keep
// the key stream aligned in every mode combination.
func TestWriteSegmentsInterleavesWithWrite(t *testing.T) {
	for _, enc := range []bool{true, false} {
		SetEncryption(enc)
		cw, sr, _ := gatherPair(t)
		var want []byte
		for i := 0; i < 6; i++ {
			p := bytes.Repeat([]byte{byte(0x40 + i)}, 600*(i+1))
			var err error
			if i%2 == 0 {
				_, _, err = cw.WriteSegments(split(p, len(p)/3))
			} else {
				_, err = cw.Write(p)
			}
			if err != nil {
				t.Fatalf("enc=%v record %d: %v", enc, i, err)
			}
			want = append(want, p...)
		}
		got := make([]byte, len(want))
		if _, err := io.ReadFull(sr, got); err != nil {
			t.Fatalf("enc=%v: %v", enc, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("enc=%v: interleaved records decoded wrong", enc)
		}
	}
	SetEncryption(true)
}

// The gathered seal path must stay allocation-free: it is the per-RPC
// reply path, and PR 1's zero-alloc discipline is an acceptance
// criterion for this refactor too. Hard fail, same pattern as
// TestWarmReadHitPathZeroAlloc.
func TestSealGatherZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race")
	}
	cw, _, wire := gatherPair(t)
	payload := make([]byte, 8192)
	hdr := make([]byte, 96)
	segs := [][]byte{hdr, payload}
	// Warm the scratch buffers.
	if _, _, err := cw.WriteSegments(segs); err != nil {
		t.Fatal(err)
	}
	wire.Buffer.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		wire.Buffer.Reset()
		if _, _, err := cw.WriteSegments(segs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("gathered seal allocated %.1f times per record, want 0", allocs)
	}
}

// Concurrent gathered writes on one Conn must serialize cleanly: the
// MAC key pull, key-stream advance, and raw write all happen under
// wmu, so every record must still open. Run under -race this is the
// stress test for the new write path's locking.
func TestConcurrentGatherWritesRace(t *testing.T) {
	cw, sr, _ := gatherPair(t)
	const (
		writers = 8
		each    = 25
		recLen  = 2048
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := bytes.Repeat([]byte{byte(w)}, recLen)
			for i := 0; i < each; i++ {
				if i%3 == 0 {
					if _, err := cw.Write(p); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if _, _, err := cw.WriteSegments(split(p, 512, 1500)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every record must open with a valid MAC; counts per fill byte
	// must match what the writers sent.
	counts := make(map[byte]int)
	buf := make([]byte, recLen)
	for r := 0; r < writers*each; r++ {
		if _, err := io.ReadFull(sr, buf); err != nil {
			t.Fatalf("record %d: %v", r, err)
		}
		for _, b := range buf[1:] {
			if b != buf[0] {
				t.Fatalf("record %d interleaved: %x vs %x", r, b, buf[0])
			}
		}
		counts[buf[0]]++
	}
	for w := 0; w < writers; w++ {
		if counts[byte(w)] != each {
			t.Fatalf("writer %d: %d records arrived, want %d", w, counts[byte(w)], each)
		}
	}
}

// BenchmarkSealGather measures the gathered seal of one NFS-READ-sized
// reply (headers + borrowed 8KB payload) — the hot server reply path.
func BenchmarkSealGather(b *testing.B) {
	cw, _, wire := gatherPair(b)
	payload := make([]byte, 8192)
	hdr := make([]byte, 96)
	segs := [][]byte{hdr, payload}
	b.ReportAllocs()
	b.SetBytes(8192 + 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.Buffer.Reset()
		if _, _, err := cw.WriteSegments(segs); err != nil {
			b.Fatal(err)
		}
	}
}

// readReplyEncoder builds the encoder state a READ reply has at the
// moment sunrpc hands it to the transport: owned RPC/NFS headers plus
// a borrowed 8KB data block.
func readReplyEncoder(e *xdr.Encoder, data []byte) {
	e.Reset()
	e.SetGather(true)
	e.PutUint32(7)    // xid
	e.PutUint32(1)    // msgReply
	e.PutUint32(0)    // accepted
	e.PutUint32(0)    // verf flavor
	e.PutUint32(0)    // verf len
	e.PutUint32(0)    // accept success
	e.PutUint32(0)    // status OK
	e.PutOpaque(data) // the borrowed payload
}

// BenchmarkReadReplyGather measures the full reply wire path an 8KB
// READ takes with gather on: record marking via WriteRecordEncoder
// straight into the secure channel's fused seal.
func BenchmarkReadReplyGather(b *testing.B) {
	cw, _, wire := gatherPair(b)
	data := make([]byte, 8192)
	e := xdr.GetEncoder()
	defer xdr.PutEncoder(e)
	b.ReportAllocs()
	b.SetBytes(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.Buffer.Reset()
		readReplyEncoder(e, data)
		if err := sunrpc.WriteRecordEncoder(cw, e); err != nil {
			b.Fatal(err)
		}
	}
}

// The end-to-end gathered reply path — encode with a borrowed payload,
// frame, seal, transport — must be allocation-free. Hard fail.
func TestReadReplyGatherZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race")
	}
	cw, _, wire := gatherPair(t)
	data := make([]byte, 8192)
	e := xdr.GetEncoder()
	defer xdr.PutEncoder(e)
	readReplyEncoder(e, data)
	if err := sunrpc.WriteRecordEncoder(cw, e); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		wire.Buffer.Reset()
		readReplyEncoder(e, data)
		if err := sunrpc.WriteRecordEncoder(cw, e); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("gathered reply path allocated %.1f times per record, want 0", allocs)
	}
}
