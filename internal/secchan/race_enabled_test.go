//go:build race

package secchan

// raceEnabled reports whether the race detector is active. Under -race
// sync.Pool deliberately drops items at random to widen interleavings,
// so pooled paths cannot be asserted allocation-free there.
const raceEnabled = true
