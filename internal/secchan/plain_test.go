package secchan

import (
	"errors"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto/prng"
)

func testRNG(seed string) *prng.Generator { return prng.NewSeeded([]byte(seed)) }

func TestPlainConnectAccept(t *testing.T) {
	sk, _, _ := testKeys(t)
	path := core.MakePath("ro.example.com", sk.PublicKey.Bytes())
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		req, err := ReadConnect(c2)
		if err != nil || req.Service != ServiceFileRO {
			return
		}
		AcceptPlain(c2, sk.PublicKey.Bytes()) //nolint:errcheck
	}()
	if _, err := ClientConnectPlain(c1, ServiceFileRO, path); err != nil {
		t.Fatal(err)
	}
}

func TestPlainConnectWrongKey(t *testing.T) {
	sk, _, ok := testKeys(t)
	path := core.MakePath("ro.example.com", sk.PublicKey.Bytes())
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		if _, err := ReadConnect(c2); err != nil {
			return
		}
		AcceptPlain(c2, ok.PublicKey.Bytes()) //nolint:errcheck
	}()
	if _, err := ClientConnectPlain(c1, ServiceFileRO, path); !errors.Is(err, ErrHostIDMismatch) {
		t.Fatalf("got %v, want ErrHostIDMismatch", err)
	}
}

func TestPlainConnectRevoked(t *testing.T) {
	sk, _, _ := testKeys(t)
	path := core.MakePath("ro.example.com", sk.PublicKey.Bytes())
	cert, err := core.NewRevocation(sk, "ro.example.com", testRNG("plain-rev"))
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		if _, err := ReadConnect(c2); err != nil {
			return
		}
		RejectRevoked(c2, cert) //nolint:errcheck
	}()
	got, err := ClientConnectPlain(c1, ServiceFileRO, path)
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("got %v, want ErrRevoked", err)
	}
	if got == nil {
		t.Fatal("certificate not returned")
	}
}

func TestReadConnectRejectsBadTag(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := ReadConnect(c2)
		errCh <- err
	}()
	if err := writeMsg(c1, ConnectRequest{Tag: "NOT_SFS", Extensions: []string{}}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("bad tag accepted")
	}
}
