package secchan

import (
	"bytes"
	"io"
	"testing"
)

// benchRWC adapts a bytes.Buffer to the io.ReadWriteCloser the
// channel wants. Seal and open run in one goroutine, so no locking.
type benchRWC struct{ *bytes.Buffer }

func (benchRWC) Close() error { return nil }

// benchPair returns a client Conn and a server Conn sharing one
// in-memory transport: what the client seals, the server opens.
func benchPair(b *testing.B) (*Conn, *Conn, *bytes.Buffer) {
	b.Helper()
	buf := &bytes.Buffer{}
	keyCS := bytes.Repeat([]byte{0x11}, keyHalf)
	keySC := bytes.Repeat([]byte{0x22}, keyHalf)
	cw, err := newConn(benchRWC{buf}, keyCS, keySC, true)
	if err != nil {
		b.Fatal(err)
	}
	sr, err := newConn(benchRWC{buf}, keyCS, keySC, false)
	if err != nil {
		b.Fatal(err)
	}
	return cw, sr, buf
}

// BenchmarkSealOpen measures one NFS-READ-sized record through the
// full seal (MAC + encrypt) and open (decrypt + verify) path — the
// per-RPC cost of the secure channel.
func BenchmarkSealOpen(b *testing.B) {
	cw, sr, _ := benchPair(b)
	payload := make([]byte, 8192)
	out := make([]byte, len(payload))
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cw.Write(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(sr, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePathSeal isolates the client's per-chunk sealing cost
// on the write path: one WRITE-sized record — an 8 KB coalesced chunk
// plus RPC/XDR framing — MAC'd, encrypted, and framed into the
// channel. With the pooled wire buffers this stays at ≤1 allocation
// per record.
func BenchmarkWritePathSeal(b *testing.B) {
	cw, _, buf := benchPair(b)
	record := make([]byte, 8192+128)
	b.ReportAllocs()
	b.SetBytes(int64(len(record)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := cw.Write(record); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeal isolates the sealing half (server reply path).
func BenchmarkSeal(b *testing.B) {
	cw, _, buf := benchPair(b)
	payload := make([]byte, 8192)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := cw.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}
