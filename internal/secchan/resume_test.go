package secchan

import (
	"crypto/sha1"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto/prng"
)

// echoCheck pushes one message each way over an established pair.
func echoCheck(t *testing.T, cc, sc *Conn) {
	t.Helper()
	msg := []byte("resumed channel payload")
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 64)
		n, err := sc.Read(buf)
		if err != nil {
			done <- err
			return
		}
		_, err = sc.Write(buf[:n])
		done <- err
	}()
	if _, err := cc.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := cc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != string(msg) {
		t.Fatalf("echo mismatch: %q", buf[:n])
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// serveHello answers one hello on c2: resume from cache when possible,
// full handshake otherwise (including the fallback after a miss).
func serveHello(t *testing.T, c2 io.ReadWriteCloser, cache *ResumeCache, seed string) (*Conn, *Info, bool, error) {
	t.Helper()
	sk, _, _ := testKeys(t)
	rng := prng.NewSeeded([]byte("server-" + seed))
	hello, err := ReadHello(c2)
	if err != nil {
		return nil, nil, false, err
	}
	if hello.Resume != nil {
		conn, info, hit, err := AcceptResume(c2, hello.Resume, cache, rng)
		if err != nil || hit {
			return conn, info, true, err
		}
		// Miss: the client now falls back to SFS_CONNECT.
		req, err := ReadConnect(c2)
		if err != nil {
			return nil, nil, false, err
		}
		conn, info, err = ServerHandshakeSession(c2, req, sk, rng, cache)
		return conn, info, false, err
	}
	conn, info, err := ServerHandshakeSession(c2, hello.Connect, sk, rng, cache)
	return conn, info, false, err
}

// resumePair establishes a full session against cache, closes it, and
// reconnects with the minted ticket.
func resumePair(t *testing.T, cache *ResumeCache, seed string) (cc, sc *Conn, ci, si *Info, resumed bool) {
	t.Helper()
	sk, tk, _ := testKeys(t)
	path := core.MakePath("server.example.com", sk.PublicKey.Bytes())

	// Full handshake first: mints the ticket, seeds the cache.
	c1, c2 := net.Pipe()
	type srvRes struct {
		conn    *Conn
		info    *Info
		resumed bool
		err     error
	}
	ch := make(chan srvRes, 1)
	go func() {
		conn, info, r, err := serveHello(t, c2, cache, seed+"-full")
		ch <- srvRes{conn, info, r, err}
	}()
	rng := prng.NewSeeded([]byte("client-" + seed))
	fcc, finfo, _, err := ClientHandshake(c1, ServiceFile, path, tk, rng)
	if err != nil {
		t.Fatal(err)
	}
	fres := <-ch
	if fres.err != nil {
		t.Fatal(fres.err)
	}
	if finfo.Ticket == nil {
		t.Fatal("full handshake minted no ticket")
	}
	fcc.Close()
	fres.conn.Close()

	// Reconnect with the ticket.
	r1, r2 := net.Pipe()
	t.Cleanup(func() { r1.Close(); r2.Close() })
	go func() {
		conn, info, r, err := serveHello(t, r2, cache, seed+"-resume")
		ch <- srvRes{conn, info, r, err}
	}()
	cc, ci, _, err = ClientHandshakeResume(r1, ServiceFile, path, tk, rng, finfo.Ticket)
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.err != nil {
		t.Fatal(res.err)
	}
	return cc, res.conn, ci, res.info, res.resumed
}

func TestResumeRoundTrip(t *testing.T) {
	cache := NewResumeCache(1<<16, time.Hour)
	before := chanStats.rabinDecrypts.Load()
	cc, sc, ci, si, resumed := resumePair(t, cache, "roundtrip")
	if !resumed {
		t.Fatal("reconnect did not resume")
	}
	// The full handshake costs two decrypts (one per side in-process);
	// the resumption must add zero.
	if got := chanStats.rabinDecrypts.Load() - before; got != 2 {
		t.Fatalf("rabin decrypts across full+resume = %d, want 2 (resume must be free)", got)
	}
	if ci.SessionID != si.SessionID {
		t.Fatal("resumed session IDs disagree")
	}
	if ci.Ticket == nil {
		t.Fatal("resumed session minted no client ticket")
	}
	if ci.Ticket.SessionID() != ci.SessionID {
		t.Fatal("fresh ticket names the wrong session")
	}
	echoCheck(t, cc, sc)
	st := cache.Stats()
	if st.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.Hits)
	}
	// The resumed session's next ticket replaced the consumed entry.
	if st.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1 (single-use + reinsert)", st.Entries)
	}
}

func TestResumeRekeysSession(t *testing.T) {
	cache := NewResumeCache(1<<16, time.Hour)
	_, _, ci, _, _ := resumePair(t, cache, "rekey")
	// Establish once more: three distinct session IDs prove each
	// connection got fresh key material.
	sk, _, _ := testKeys(t)
	_ = sk
	cc2, sc2, ci2, _, resumed := resumePair(t, NewResumeCache(1<<16, time.Hour), "rekey2")
	if !resumed {
		t.Fatal("second pair did not resume")
	}
	if ci.SessionID == ci2.SessionID {
		t.Fatal("independent sessions share a session ID")
	}
	cc2.Close()
	sc2.Close()
}

func TestResumeMissFallsBack(t *testing.T) {
	sk, tk, _ := testKeys(t)
	path := core.MakePath("server.example.com", sk.PublicKey.Bytes())
	// Empty cache: the server has never seen this session (restart).
	cache := NewResumeCache(1<<16, time.Hour)
	bogus := &ResumeTicket{}
	copy(bogus.sessionID[:], []byte("no such session id.."))

	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	type srvRes struct {
		conn    *Conn
		resumed bool
		err     error
	}
	ch := make(chan srvRes, 1)
	go func() {
		conn, _, r, err := serveHello(t, c2, cache, "miss")
		ch <- srvRes{conn, r, err}
	}()
	rng := prng.NewSeeded([]byte("client-miss"))
	cc, info, _, err := ClientHandshakeResume(c1, ServiceFile, path, tk, rng, bogus)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	res := <-ch
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.resumed {
		t.Fatal("server claims a resume for an unknown session")
	}
	if info.Ticket == nil {
		t.Fatal("fallback handshake minted no ticket")
	}
	echoCheck(t, cc, res.conn)
	if st := cache.Stats(); st.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1", st.Misses)
	}
}

func TestResumeTicketExpiry(t *testing.T) {
	cache := NewResumeCache(1<<16, time.Minute)
	now := time.Unix(1000, 0)
	cache.now = func() time.Time { return now }
	var sid [sha1.Size]byte
	var rms [keyHalf]byte
	copy(sid[:], []byte("expiring session id."))
	cache.put(sid, rms, resumeBinding{})
	now = now.Add(2 * time.Minute)
	if _, ok := cache.take(sid, resumeBinding{}); ok {
		t.Fatal("expired ticket resumed")
	}
	st := cache.Stats()
	if st.Expired != 1 || st.Hits != 0 {
		t.Fatalf("expired=%d hits=%d, want 1/0", st.Expired, st.Hits)
	}
	if st.Entries != 0 {
		t.Fatal("expired entry retained")
	}
}

func TestResumeCacheEviction(t *testing.T) {
	// Budget for exactly 4 entries.
	cache := NewResumeCache(4*resumeEntryBytes, time.Hour)
	var rms [keyHalf]byte
	sid := func(i byte) (s [sha1.Size]byte) { s[0] = i; return }
	for i := byte(0); i < 4; i++ {
		cache.put(sid(i), rms, resumeBinding{})
	}
	if st := cache.Stats(); st.Evictions != 0 || st.Entries != 4 {
		t.Fatalf("premature eviction: %+v", st)
	}
	// A fifth entry must evict one; CLOCK clears reference bits on the
	// first sweep and evicts the first unreferenced entry (entry 0).
	cache.put(sid(4), rms, resumeBinding{})
	st := cache.Stats()
	if st.Evictions != 1 || st.Entries != 4 {
		t.Fatalf("eviction did not bound the cache: %+v", st)
	}
	if st.Bytes > 4*resumeEntryBytes {
		t.Fatalf("accounted bytes %d exceed budget", st.Bytes)
	}
	if _, ok := cache.take(sid(0), resumeBinding{}); ok {
		t.Fatal("CLOCK kept the stale entry")
	}
	if _, ok := cache.take(sid(4), resumeBinding{}); !ok {
		t.Fatal("fresh entry missing after eviction")
	}
}

func TestResumeSingleUse(t *testing.T) {
	cache := NewResumeCache(1<<16, time.Hour)
	var sid [sha1.Size]byte
	var rms [keyHalf]byte
	sid[0] = 7
	cache.put(sid, rms, resumeBinding{})
	if _, ok := cache.take(sid, resumeBinding{}); !ok {
		t.Fatal("first take missed")
	}
	if _, ok := cache.take(sid, resumeBinding{}); ok {
		t.Fatal("ticket replayed: second take hit")
	}
}

func TestResumeCacheRingNoLeak(t *testing.T) {
	// Regression: a steady-state take/put cycle stays under the byte
	// budget, so eviction never runs — consumed entries must still leave
	// the CLOCK ring, or every resumption leaks a dead slot forever.
	cache := NewResumeCache(1<<20, time.Hour)
	var rms [keyHalf]byte
	sid := func(i int) (s [sha1.Size]byte) {
		s[0], s[1], s[2], s[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		return
	}
	cache.put(sid(0), rms, resumeBinding{})
	for i := 1; i <= 10000; i++ {
		if _, ok := cache.take(sid(i-1), resumeBinding{}); !ok {
			t.Fatalf("cycle %d: take missed", i)
		}
		cache.put(sid(i), rms, resumeBinding{})
	}
	cache.mu.Lock()
	ring, entries := len(cache.ring), len(cache.entries)
	cache.mu.Unlock()
	if ring != entries {
		t.Fatalf("ring holds %d slots for %d live entries (dead-slot leak)", ring, entries)
	}
	if entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	if st := cache.Stats(); st.Bytes != resumeEntryBytes {
		t.Fatalf("accounted bytes = %d, want %d", st.Bytes, resumeEntryBytes)
	}
}

func TestResumeBindingMismatch(t *testing.T) {
	// A ticket minted for one endpoint must not resume another: any
	// (hostID, location, service) drift is a miss and consumes the
	// single-use entry.
	cache := NewResumeCache(1<<16, time.Hour)
	var rms [keyHalf]byte
	bound := resumeBinding{location: "server.example.com", service: ServiceFile}
	bound.hostID[0] = 1
	sid := func(i byte) (s [sha1.Size]byte) { s[0] = i; return }

	other := bound
	other.service = ServiceAuth
	cache.put(sid(1), rms, bound)
	if _, ok := cache.take(sid(1), other); ok {
		t.Fatal("ticket redeemed for a different service")
	}
	if _, ok := cache.take(sid(1), bound); ok {
		t.Fatal("binding miss did not consume the single-use entry")
	}

	other = bound
	other.hostID[0] = 2
	cache.put(sid(2), rms, bound)
	if _, ok := cache.take(sid(2), other); ok {
		t.Fatal("ticket redeemed for a different hostID")
	}

	cache.put(sid(3), rms, bound)
	if _, ok := cache.take(sid(3), bound); !ok {
		t.Fatal("matching binding missed")
	}
	st := cache.Stats()
	if st.BindingMiss != 2 {
		t.Fatalf("binding misses = %d, want 2", st.BindingMiss)
	}
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

func TestRejectBusy(t *testing.T) {
	sk, tk, _ := testKeys(t)
	path := core.MakePath("server.example.com", sk.PublicKey.Bytes())
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	go func() {
		if _, err := ReadConnect(c2); err != nil {
			return
		}
		RejectBusy(c2) //nolint:errcheck
	}()
	rng := prng.NewSeeded([]byte("busy-client"))
	_, _, _, err := ClientHandshake(c1, ServiceFile, path, tk, rng)
	if !errors.Is(err, ErrServerBusy) {
		t.Fatalf("got %v, want ErrServerBusy", err)
	}
}

func TestClientConnectPlainErrors(t *testing.T) {
	sk, _, _ := testKeys(t)
	path := core.MakePath("server.example.com", sk.PublicKey.Bytes())
	cases := []struct {
		name  string
		serve func(io.ReadWriter)
		want  error
	}{
		{"nosuch", func(c io.ReadWriter) { RejectNoSuchFS(c) }, ErrNoSuchFS},                                  //nolint:errcheck
		{"busy", func(c io.ReadWriter) { RejectBusy(c) }, ErrServerBusy},                                      //nolint:errcheck
		{"wrongkey", func(c io.ReadWriter) { AcceptPlain(c, otherKey.PublicKey.Bytes()) }, ErrHostIDMismatch}, //nolint:errcheck
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c1, c2 := net.Pipe()
			t.Cleanup(func() { c1.Close(); c2.Close() })
			go func() {
				if _, err := ReadConnect(c2); err != nil {
					return
				}
				tc.serve(c2)
			}()
			if _, err := ClientConnectPlain(c1, ServiceFileRO, path); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestReadHelloRoutesBothTags(t *testing.T) {
	sk, tk, _ := testKeys(t)
	path := core.MakePath("server.example.com", sk.PublicKey.Bytes())
	// Connect hello.
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	go ClientConnectPlain(c1, ServiceFile, path) //nolint:errcheck
	hello, err := ReadHello(c2)
	if err != nil {
		t.Fatal(err)
	}
	if hello.Connect == nil || hello.Resume != nil {
		t.Fatal("connect hello misrouted")
	}
	// Resume hello.
	r1, r2 := net.Pipe()
	t.Cleanup(func() { r1.Close(); r2.Close() })
	go func() {
		rng := prng.NewSeeded([]byte("hello-resume"))
		ClientHandshakeResume(r1, ServiceFile, path, tk, rng, &ResumeTicket{}) //nolint:errcheck
	}()
	hello, err = ReadHello(r2)
	if err != nil {
		t.Fatal(err)
	}
	if hello.Resume == nil || hello.Connect != nil {
		t.Fatal("resume hello misrouted")
	}
	if hello.Resume.Location != path.Location {
		t.Fatalf("resume hello location %q", hello.Resume.Location)
	}
	RejectResume(r2) //nolint:errcheck
}
