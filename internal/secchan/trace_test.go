package secchan

import (
	"testing"

	"repro/internal/stats"
)

// Stage timing on the seal path must cost nothing when tracing is off
// (one atomic load, no clock read, no accumulator write) and must stay
// allocation-free even when it is on — the timing is two monotonic
// reads and one atomic add. Hard fail, like the other zero-alloc
// tests; the CI latency smoke runs this as its overhead assertion.
func TestSealPathStageTimingZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race")
	}
	if stats.StageTimingOn() {
		t.Fatal("stage timing already on at test start (leaked ring?)")
	}
	cw, _, wire := gatherPair(t)
	payload := make([]byte, 8192)
	hdr := make([]byte, 96)
	segs := [][]byte{hdr, payload}
	if _, _, err := cw.WriteSegments(segs); err != nil { // warm scratch buffers
		t.Fatal(err)
	}

	for _, on := range []bool{false, true} {
		ring := stats.NewTraceRing(4)
		ring.SetEnabled(on)
		before := cw.SealWorkNS()
		allocs := testing.AllocsPerRun(100, func() {
			wire.Buffer.Reset()
			if _, _, err := cw.WriteSegments(segs); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("tracing=%v: seal path allocated %.1f times per record, want 0", on, allocs)
		}
		if on && cw.SealWorkNS() == before {
			t.Fatal("tracing on: seal-work accumulator did not advance")
		}
		if !on && cw.SealWorkNS() != before {
			t.Fatal("tracing off: seal-work accumulator advanced")
		}
		ring.SetEnabled(false)
	}
}
