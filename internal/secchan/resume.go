package secchan

// Session resumption (DESIGN.md §14). A full handshake costs the
// server a Rabin private-key decrypt; under a reconnect storm that
// public-key work is the bottleneck. Resumption lets a client that
// already proved the server's key once re-establish a channel with
// three SHA-1 computations and no public-key operations:
//
//  1. at the end of every handshake — full or resumed — both sides
//     derive a resume master secret from the session keys,
//
//     RMS = SHA-1("ResumeMaster", KeyCS, KeySC),
//
//     and the server caches it under the session ID (bounded CLOCK
//     cache, byte budget + TTL);
//  2. to reconnect, the client sends SFS_RESUME carrying the old
//     session ID and a fresh nonce N_C in the clear; on a cache hit
//     the server answers its own nonce N_S and both sides rekey:
//
//     KeyCS' = SHA-1("ResumeKCS", RMS, N_C, N_S)
//     KeySC' = SHA-1("ResumeKSC", RMS, N_C, N_S)
//
//     with the new session ID computed by the usual SessionInfo
//     formula. Key material therefore never outlives a connection —
//     every resumption mints fresh channel keys — and an attacker who
//     observes or replays the clear-text hello cannot MAC a single
//     record without the RMS. On a cache miss the server answers
//     "miss" and the client falls back to a full SFS_CONNECT on the
//     same connection, so a restarted server costs one extra round
//     trip, never a failed mount.
//
// Tickets are single-use: the server consumes the cache entry on hit
// and inserts a new one for the rekeyed session, so a stolen ticket
// races its owner at most once and the cache never accumulates dead
// sessions. Each entry is bound to the (hostID, location, service)
// the session was established for; a resumption claiming any other
// endpoint is treated as a miss, so a ticket cannot be redeemed
// against a different served FS on the same master. Forward secrecy
// is coarser than a full handshake's — the RMS lives in server memory
// for the cache TTL — which is the same tradeoff TLS session tickets
// make; the TTL and byte budget bound it.

import (
	"crypto/sha1"
	"errors"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/stats"
)

// Resume response status codes.
const (
	resumeOK   = 0
	resumeMiss = 1
)

// ResumeRequest is the clear-text resumption hello: the SFS_CONNECT
// announcement fields plus the session being resumed and the client's
// rekey nonce.
type ResumeRequest struct {
	Tag        string // "SFS_RESUME"
	Service    uint32
	Version    uint32
	Location   string
	HostID     [core.HostIDSize]byte
	SessionID  [sha1.Size]byte
	NonceC     [keyHalf]byte
	Extensions []string
}

// resumeResponse answers a resumption hello: the server's rekey nonce
// on a hit, or a miss telling the client to fall back to SFS_CONNECT
// on the same connection.
type resumeResponse struct {
	Status uint32
	NonceS [keyHalf]byte
}

// ResumeTicket is the client's half of a cached session: everything
// needed to reconnect without public-key work. The secret never
// leaves the struct; callers treat tickets as opaque and replace them
// wholesale after every handshake (each established session, full or
// resumed, mints a fresh one in Info.Ticket).
type ResumeTicket struct {
	sessionID [sha1.Size]byte
	rms       [keyHalf]byte
}

// SessionID names the cached session this ticket resumes.
func (t *ResumeTicket) SessionID() [sha1.Size]byte { return t.sessionID }

// resumeMaster derives the resume master secret from a session's
// channel keys.
func resumeMaster(cs, sc []byte) (rms [keyHalf]byte) {
	h := sha1.New()
	h.Write([]byte("ResumeMaster"))
	h.Write(cs)
	h.Write(sc)
	h.Sum(rms[:0])
	return rms
}

// resumeKeys rekeys a resumed session: fresh per-direction keys from
// the RMS and both nonces, session ID by the usual formula.
func resumeKeys(rms [keyHalf]byte, nonceC, nonceS [keyHalf]byte) (cs, sc [keyHalf]byte, sessionID [sha1.Size]byte) {
	kcs := sha1.New()
	kcs.Write([]byte("ResumeKCS"))
	kcs.Write(rms[:])
	kcs.Write(nonceC[:])
	kcs.Write(nonceS[:])
	kcs.Sum(cs[:0])
	ksc := sha1.New()
	ksc.Write([]byte("ResumeKSC"))
	ksc.Write(rms[:])
	ksc.Write(nonceC[:])
	ksc.Write(nonceS[:])
	ksc.Sum(sc[:0])
	sid := sha1.New()
	sid.Write([]byte("SessionInfo"))
	sid.Write(cs[:])
	sid.Write(sc[:])
	sid.Sum(sessionID[:0])
	return cs, sc, sessionID
}

// mintTicket builds the next connection's ticket from an established
// session's keys.
func mintTicket(sessionID [sha1.Size]byte, cs, sc []byte) *ResumeTicket {
	return &ResumeTicket{sessionID: sessionID, rms: resumeMaster(cs, sc)}
}

// ---------------------------------------------------------------------
// Server-side session cache.

// resumeEntryBytes is the accounting cost of one cache entry: the
// 40 secret bytes plus struct, map-bucket, and ring overhead. The
// location string is accounted on top since its length is
// peer-influenced. The budget is a memory bound, not an exact
// science; what matters is that N entries cost O(N) accounted bytes.
const resumeEntryBytes = 128

// resumeBinding ties a cached session to the endpoint it was
// established for. take() requires the resuming client to present the
// same (hostID, location, service) triple, so a ticket minted against
// one served FS cannot be redeemed while claiming another.
type resumeBinding struct {
	hostID   [core.HostIDSize]byte
	location string
	service  uint32
}

type resumeEntry struct {
	sid     [sha1.Size]byte
	rms     [keyHalf]byte
	binding resumeBinding
	expires time.Time
	cost    int64
	idx     int  // position in ring, maintained across swap-removal
	ref     bool // CLOCK reference bit
}

// ResumeCache is the server's bounded session cache: session ID →
// resume master secret, CLOCK-evicted under a byte budget, entries
// expiring after a TTL. All methods are safe for concurrent use.
type ResumeCache struct {
	mu      sync.Mutex
	max     int64
	ttl     time.Duration
	entries map[[sha1.Size]byte]*resumeEntry
	ring    []*resumeEntry // CLOCK ring; every live entry, nothing else
	hand    int
	bytes   int64
	now     func() time.Time // injectable for expiry tests

	hits, misses, expired stats.Counter
	inserts, evictions    stats.Counter
	bindingMiss           stats.Counter
}

// NewResumeCache builds a cache holding at most maxBytes of accounted
// entries whose tickets expire after ttl. maxBytes <= 0 selects 1 MiB;
// ttl <= 0 selects one hour (the paper's temp-key cadence).
func NewResumeCache(maxBytes int64, ttl time.Duration) *ResumeCache {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	if maxBytes < resumeEntryBytes {
		maxBytes = resumeEntryBytes
	}
	if ttl <= 0 {
		ttl = time.Hour
	}
	return &ResumeCache{
		max:     maxBytes,
		ttl:     ttl,
		entries: make(map[[sha1.Size]byte]*resumeEntry),
		now:     time.Now,
	}
}

// put caches a freshly established session bound to its endpoint.
func (c *ResumeCache) put(sid [sha1.Size]byte, rms [keyHalf]byte, binding resumeBinding) {
	if c == nil {
		return
	}
	cost := int64(resumeEntryBytes + len(binding.location))
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[sid]; ok {
		e.rms = rms
		e.binding = binding
		e.expires = c.now().Add(c.ttl)
		e.ref = true
		c.bytes += cost - e.cost
		e.cost = cost
		return
	}
	for c.bytes+cost > c.max && c.evictOne() {
	}
	e := &resumeEntry{
		sid: sid, rms: rms, binding: binding,
		expires: c.now().Add(c.ttl), cost: cost,
		idx: len(c.ring), ref: true,
	}
	c.entries[sid] = e
	c.ring = append(c.ring, e)
	c.bytes += cost
	c.inserts.Inc()
}

// removeLocked unlinks e from the map and swap-removes it from the
// CLOCK ring in O(1), so consumed tickets never linger as dead slots
// (the ring holds exactly the live entries at all times). Approximate
// CLOCK order is fine — the swapped-in entry keeps its reference bit.
func (c *ResumeCache) removeLocked(e *resumeEntry) {
	delete(c.entries, e.sid)
	last := len(c.ring) - 1
	moved := c.ring[last]
	c.ring[e.idx] = moved
	moved.idx = e.idx
	c.ring[last] = nil
	c.ring = c.ring[:last]
	c.bytes -= e.cost
	// The hand is re-clamped at the top of evictOne's sweep.
}

// evictOne advances the CLOCK hand to the first unreferenced entry and
// evicts it. Reports whether an entry was freed.
func (c *ResumeCache) evictOne() bool {
	for pass := 0; pass <= 2*len(c.ring); pass++ {
		if len(c.ring) == 0 {
			return false
		}
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		e := c.ring[c.hand]
		if e.ref {
			e.ref = false
			c.hand++
			continue
		}
		c.removeLocked(e)
		c.evictions.Inc()
		return true
	}
	return false
}

// take consumes the entry for sid if present, unexpired, and bound to
// the same endpoint the caller presents. Tickets are single-use: any
// lookup — hit, expired, or binding mismatch — removes the entry (the
// resumed session's new ticket is inserted by the caller).
func (c *ResumeCache) take(sid [sha1.Size]byte, binding resumeBinding) (rms [keyHalf]byte, ok bool) {
	if c == nil {
		return rms, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.entries[sid]
	if !found {
		c.misses.Inc()
		return rms, false
	}
	c.removeLocked(e)
	if c.now().After(e.expires) {
		c.expired.Inc()
		c.misses.Inc()
		return rms, false
	}
	if e.binding != binding {
		c.bindingMiss.Inc()
		c.misses.Inc()
		return rms, false
	}
	c.hits.Inc()
	return e.rms, true
}

// ResumeCacheStats is the JSON form of a cache's counters.
type ResumeCacheStats struct {
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Expired     uint64 `json:"expired,omitempty"`
	BindingMiss uint64 `json:"binding_misses,omitempty"`
	Inserts     uint64 `json:"inserts"`
	Evictions   uint64 `json:"evictions"`
}

// Stats captures the cache's counters.
func (c *ResumeCache) Stats() ResumeCacheStats {
	if c == nil {
		return ResumeCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResumeCacheStats{
		Entries:     len(c.entries),
		Bytes:       c.bytes,
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Expired:     c.expired.Load(),
		BindingMiss: c.bindingMiss.Load(),
		Inserts:     c.inserts.Load(),
		Evictions:   c.evictions.Load(),
	}
}

// ---------------------------------------------------------------------
// Wire protocol.

// Hello is a parsed clear-text client hello: exactly one of Connect
// and Resume is non-nil.
type Hello struct {
	Connect *ConnectRequest
	Resume  *ResumeRequest
}

// ReadHello reads the client's clear-text hello — a full SFS_CONNECT
// announcement or an SFS_RESUME resumption — so the server master can
// route resumptions around the negotiation pool.
func ReadHello(conn io.Reader) (*Hello, error) {
	buf, err := readRecordPooled(conn)
	if err != nil {
		return nil, err
	}
	defer putMsgBuf(buf)
	tag, err := peekTag(buf.b)
	if err != nil {
		return nil, err
	}
	switch tag {
	case "SFS_CONNECT":
		var req ConnectRequest
		if err := unmarshalMsg(buf.b, &req); err != nil {
			return nil, err
		}
		return &Hello{Connect: &req}, nil
	case "SFS_RESUME":
		var req ResumeRequest
		if err := unmarshalMsg(buf.b, &req); err != nil {
			return nil, err
		}
		return &Hello{Resume: &req}, nil
	default:
		return nil, errors.New("secchan: bad hello tag")
	}
}

// RejectResume answers a resumption hello with a miss, telling the
// client to fall back to a full SFS_CONNECT on the same connection.
// Servers use it when the session is unknown, the pathname is revoked
// or not served, or resumption is disabled.
func RejectResume(conn io.Writer) error {
	return writeMsg(conn, resumeResponse{Status: resumeMiss})
}

// AcceptResume answers a resumption hello from cache. On a hit it
// completes the rekey, caches the resumed session's next ticket, and
// returns the established channel with hit = true; no public-key work
// runs. On a miss (or nil cache) it sends the miss response and
// returns hit = false with no error — the caller then reads the
// client's fallback SFS_CONNECT from the same connection.
func AcceptResume(conn io.ReadWriteCloser, req *ResumeRequest, cache *ResumeCache, rng *prng.Generator) (*Conn, *Info, bool, error) {
	binding := resumeBinding{hostID: req.HostID, location: req.Location, service: req.Service}
	rms, ok := cache.take(req.SessionID, binding)
	if !ok {
		return nil, nil, false, RejectResume(conn)
	}
	var resp resumeResponse
	resp.Status = resumeOK
	copy(resp.NonceS[:], rng.Bytes(keyHalf))
	cs, sc, sid := resumeKeys(rms, req.NonceC, resp.NonceS)
	if err := writeMsg(conn, resp); err != nil {
		chanStats.handshakeF.Inc()
		return nil, nil, false, err
	}
	sec, err := newConn(conn, cs[:], sc[:], false)
	if err != nil {
		chanStats.handshakeF.Inc()
		return nil, nil, false, err
	}
	cache.put(sid, resumeMaster(cs[:], sc[:]), binding)
	var hostID core.HostID
	copy(hostID[:], req.HostID[:])
	info := &Info{
		SessionID: sid, Location: req.Location, HostID: hostID,
		Service: req.Service, Version: req.Version, Extensions: req.Extensions,
	}
	chanStats.handshakes.Inc()
	chanStats.resumes.Inc()
	return sec, info, true, nil
}

// ClientHandshakeResume establishes a secure channel like
// ClientHandshake but first offers ticket for resumption. When the
// server still holds the session the channel comes up with one SHA-1
// mix and no Rabin operations; otherwise the client falls back to the
// full handshake on the same connection. A nil ticket is exactly
// ClientHandshake. The returned Info.Ticket is the fresh ticket for
// the next reconnect in either case.
func ClientHandshakeResume(conn io.ReadWriteCloser, service uint32, path core.Path, tempKey *rabin.PrivateKey, rng *prng.Generator, ticket *ResumeTicket, extensions ...string) (*Conn, *Info, *core.PathRevoke, error) {
	if ticket == nil {
		return ClientHandshake(conn, service, path, tempKey, rng, extensions...)
	}
	if extensions == nil {
		extensions = []string{}
	}
	req := ResumeRequest{
		Tag: "SFS_RESUME", Service: service, Version: 1,
		Location: path.Location, HostID: path.HostID,
		SessionID: ticket.sessionID, Extensions: extensions,
	}
	copy(req.NonceC[:], rng.Bytes(keyHalf))
	if err := writeMsg(conn, req); err != nil {
		chanStats.handshakeF.Inc()
		return nil, nil, nil, err
	}
	var resp resumeResponse
	if err := readMsg(conn, &resp); err != nil {
		chanStats.handshakeF.Inc()
		return nil, nil, nil, err
	}
	switch resp.Status {
	case resumeOK:
	case resumeMiss:
		// The server no longer holds the session (restart, expiry,
		// eviction): complete a full handshake on the same connection.
		chanStats.resumeMisses.Inc()
		return ClientHandshake(conn, service, path, tempKey, rng, extensions...)
	default:
		chanStats.handshakeF.Inc()
		return nil, nil, nil, errors.New("secchan: bad resume status")
	}
	cs, sc, sid := resumeKeys(ticket.rms, req.NonceC, resp.NonceS)
	sec, err := newConn(conn, cs[:], sc[:], true)
	if err != nil {
		chanStats.handshakeF.Inc()
		return nil, nil, nil, err
	}
	info := &Info{
		SessionID: sid, Location: path.Location, HostID: path.HostID,
		Service: service, Version: req.Version, Extensions: extensions,
		Ticket: mintTicket(sid, cs[:], sc[:]),
	}
	chanStats.handshakes.Inc()
	chanStats.resumes.Inc()
	return sec, info, nil, nil
}
