package secchan

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/sunrpc"
	"repro/internal/xdr"
)

var (
	keysOnce  sync.Once
	serverKey *rabin.PrivateKey
	tempKey   *rabin.PrivateKey
	otherKey  *rabin.PrivateKey
)

func testKeys(t testing.TB) (*rabin.PrivateKey, *rabin.PrivateKey, *rabin.PrivateKey) {
	t.Helper()
	keysOnce.Do(func() {
		g := prng.NewSeeded([]byte("secchan-test"))
		var err error
		if serverKey, err = rabin.GenerateKey(g, 768); err != nil {
			t.Fatal(err)
		}
		if tempKey, err = rabin.GenerateKey(g, 768); err != nil {
			t.Fatal(err)
		}
		if otherKey, err = rabin.GenerateKey(g, 768); err != nil {
			t.Fatal(err)
		}
	})
	return serverKey, tempKey, otherKey
}

func TestOversizedHandshakeRecordRejected(t *testing.T) {
	// Hostile record headers must be rejected from the length field
	// alone — including n near 2^31-1, which would overflow a naive
	// total+n check on 32-bit platforms and panic with a negative
	// slice bound.
	for _, n := range []uint32{maxHandshakeMsg + 1, 0x7fffffff} {
		hdr := []byte{
			byte(0x80 | n>>24&0x7f), byte(n >> 16), byte(n >> 8), byte(n),
		}
		if _, err := readRecordPooled(bytes.NewReader(hdr)); err == nil {
			t.Fatalf("record of claimed length %d accepted", n)
		}
	}
	// A second fragment pushing the running total past the bound is
	// rejected too.
	var buf bytes.Buffer
	buf.Write([]byte{0x00, 0x00, 0xff, 0xff}) // 64 KiB - 1, more follows
	buf.Write(make([]byte, 0xffff))
	buf.Write([]byte{0x80, 0x00, 0x00, 0x02}) // +2 crosses maxHandshakeMsg
	buf.Write([]byte{0, 0})
	if _, err := readRecordPooled(&buf); err == nil {
		t.Fatal("fragmented record exceeding the bound accepted")
	}
}

// handshakePair runs both sides of the handshake over a pipe.
func handshakePair(t *testing.T, seed string) (client, server *Conn, ci, si *Info) {
	t.Helper()
	sk, tk, _ := testKeys(t)
	path := core.MakePath("server.example.com", sk.PublicKey.Bytes())
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })

	type srvRes struct {
		conn *Conn
		info *Info
		err  error
	}
	ch := make(chan srvRes, 1)
	go func() {
		rng := prng.NewSeeded([]byte("server-" + seed))
		req, err := ReadConnect(c2)
		if err != nil {
			ch <- srvRes{err: err}
			return
		}
		conn, info, err := ServerHandshake(c2, req, sk, rng)
		ch <- srvRes{conn: conn, info: info, err: err}
	}()
	rng := prng.NewSeeded([]byte("client-" + seed))
	cc, cinfo, _, err := ClientHandshake(c1, ServiceFile, path, tk, rng)
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.err != nil {
		t.Fatal(res.err)
	}
	return cc, res.conn, cinfo, res.info
}

func TestHandshakeAndEcho(t *testing.T) {
	cc, sc, ci, si := handshakePair(t, "echo")
	if ci.SessionID != si.SessionID {
		t.Fatal("session IDs disagree")
	}
	if si.Service != ServiceFile {
		t.Fatalf("server saw service %d", si.Service)
	}
	msg := []byte("sealed RPC payload")
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 100)
		n, err := sc.Read(buf)
		if err != nil {
			done <- err
			return
		}
		if !bytes.Equal(buf[:n], msg) {
			done <- errors.New("server read wrong bytes")
			return
		}
		_, err = sc.Write([]byte("reply"))
		done <- err
	}()
	if _, err := cc.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	n, err := cc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "reply" {
		t.Fatalf("client read %q", buf[:n])
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	sk, tk, ok := testKeys(t)
	// Pathname names otherKey, but the server will answer with
	// serverKey: HostID check must fail.
	path := core.MakePath("server.example.com", ok.PublicKey.Bytes())
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		rng := prng.NewSeeded([]byte("srv-wrong"))
		req, err := ReadConnect(c2)
		if err != nil {
			return
		}
		ServerHandshake(c2, req, sk, rng) //nolint:errcheck
	}()
	rng := prng.NewSeeded([]byte("cl-wrong"))
	_, _, _, err := ClientHandshake(c1, ServiceFile, path, tk, rng)
	if !errors.Is(err, ErrHostIDMismatch) {
		t.Fatalf("got %v, want ErrHostIDMismatch", err)
	}
}

func TestCiphertextLooksRandom(t *testing.T) {
	cc, sc, _, _ := handshakePair(t, "random")
	_ = sc
	// Intercept what goes on the wire by wrapping: simplest check —
	// encrypting the same plaintext twice yields different bytes
	// (stream advances), and plaintext never appears.
	var wire bytes.Buffer
	tap := &Conn{raw: nopCloser{&wire}, send: cc.send, encrypt: true}
	msg := []byte("THE-SECRET-PLAINTEXT")
	tap.Write(msg) //nolint:errcheck
	first := append([]byte(nil), wire.Bytes()...)
	wire.Reset()
	tap.Write(msg) //nolint:errcheck
	second := wire.Bytes()
	if bytes.Contains(first, msg) || bytes.Contains(second, msg) {
		t.Fatal("plaintext visible on the wire")
	}
	if bytes.Equal(first, second) {
		t.Fatal("identical ciphertexts for repeated plaintext")
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error                 { return nil }
func (n nopCloser) Read(p []byte) (int, error) { return 0, io.EOF }

func TestTamperingDetected(t *testing.T) {
	sk, tk, _ := testKeys(t)
	path := core.MakePath("server.example.com", sk.PublicKey.Bytes())
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	srvCh := make(chan *Conn, 1)
	go func() {
		rng := prng.NewSeeded([]byte("srv-tamper"))
		req, _ := ReadConnect(c2)
		conn, _, err := ServerHandshake(c2, req, sk, rng)
		if err != nil {
			srvCh <- nil
			return
		}
		srvCh <- conn
	}()
	rng := prng.NewSeeded([]byte("cl-tamper"))
	cc, _, _, err := ClientHandshake(c1, ServiceFile, path, tk, rng)
	if err != nil {
		t.Fatal(err)
	}
	sconn := <-srvCh
	if sconn == nil {
		t.Fatal("server handshake failed")
	}
	// Client writes a record; we flip one bit in flight by writing
	// a corrupted copy directly on the raw pipe instead.
	raw := make(chan []byte, 1)
	go func() {
		// Capture the sealed record.
		var buf bytes.Buffer
		tap := &Conn{raw: nopCloser{&buf}, send: cc.send}
		tap.Write([]byte("payload")) //nolint:errcheck
		rec := buf.Bytes()
		rec[5] ^= 0x01
		raw <- rec
	}()
	rec := <-raw
	go c1.Write(rec) //nolint:errcheck
	buf := make([]byte, 64)
	if _, err := sconn.Read(buf); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("got %v, want ErrBadMAC", err)
	}
}

func TestRevocationResponse(t *testing.T) {
	sk, tk, _ := testKeys(t)
	path := core.MakePath("revoked.example.com", sk.PublicKey.Bytes())
	g := prng.NewSeeded([]byte("rev"))
	cert, err := core.NewRevocation(sk, "revoked.example.com", g)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		if _, err := ReadConnect(c2); err != nil {
			return
		}
		RejectRevoked(c2, cert) //nolint:errcheck
	}()
	rng := prng.NewSeeded([]byte("cl-rev"))
	_, _, gotCert, err := ClientHandshake(c1, ServiceFile, path, tk, rng)
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("got %v, want ErrRevoked", err)
	}
	if gotCert == nil || !gotCert.IsRevocation() {
		t.Fatal("revocation certificate not returned")
	}
}

func TestBogusRevocationRejected(t *testing.T) {
	sk, tk, ok := testKeys(t)
	// Server returns a revocation signed by a DIFFERENT key: the
	// HostID won't match the requested one, so the client must not
	// treat the pathname as revoked.
	path := core.MakePath("victim.example.com", sk.PublicKey.Bytes())
	g := prng.NewSeeded([]byte("bogus"))
	cert, err := core.NewRevocation(ok, "victim.example.com", g)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		if _, err := ReadConnect(c2); err != nil {
			return
		}
		RejectRevoked(c2, cert) //nolint:errcheck
	}()
	rng := prng.NewSeeded([]byte("cl-bogus"))
	_, _, _, err = ClientHandshake(c1, ServiceFile, path, tk, rng)
	if err == nil || errors.Is(err, ErrRevoked) {
		t.Fatalf("bogus revocation produced %v", err)
	}
}

func TestNoSuchFS(t *testing.T) {
	sk, tk, _ := testKeys(t)
	path := core.MakePath("elsewhere.example.com", sk.PublicKey.Bytes())
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		if _, err := ReadConnect(c2); err != nil {
			return
		}
		RejectNoSuchFS(c2) //nolint:errcheck
	}()
	rng := prng.NewSeeded([]byte("cl-nosuch"))
	_, _, _, err := ClientHandshake(c1, ServiceFile, path, tk, rng)
	if !errors.Is(err, ErrNoSuchFS) {
		t.Fatalf("got %v, want ErrNoSuchFS", err)
	}
}

func TestRPCOverSecureChannel(t *testing.T) {
	cc, sc, _, _ := handshakePair(t, "rpc")
	srv := sunrpc.NewServer()
	srv.Register(7, 1, func(proc uint32, _ sunrpc.OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
		var s string
		if err := args.Decode(&s); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		return s + "!", nil
	})
	go srv.ServeConn(sc) //nolint:errcheck
	cl := sunrpc.NewClient(cc)
	defer cl.Close()
	var out string
	if err := cl.Call(7, 1, 0, sunrpc.NoAuth(), "encrypted rpc", &out); err != nil {
		t.Fatal(err)
	}
	if out != "encrypted rpc!" {
		t.Fatalf("got %q", out)
	}
}

func TestNoEncryptionModeInteroperates(t *testing.T) {
	SetEncryption(false)
	defer SetEncryption(true)
	cc, sc, _, _ := handshakePair(t, "noenc")
	go func() {
		buf := make([]byte, 64)
		n, err := sc.Read(buf)
		if err != nil {
			return
		}
		sc.Write(buf[:n]) //nolint:errcheck
	}()
	if _, err := cc.Write([]byte("clear but MACed")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := cc.Read(buf)
	if err != nil || string(buf[:n]) != "clear but MACed" {
		t.Fatalf("round trip: %q %v", buf[:n], err)
	}
}
