package secchan

// Channel-layer observability. Conns are per-connection and
// short-lived relative to a daemon, so the counters are process-wide
// package globals: every sealed and opened record in the process
// lands here, which is exactly the granularity the daemons' -stats
// snapshot wants. All increments are atomic adds on the seal/open
// hot path — no allocations (the seal-path ReportAllocs benchmarks
// stay at 0 allocs/op).

import "repro/internal/stats"

var chanStats struct {
	seals, opens           stats.Counter
	sealPlain, sealCipher  stats.Counter
	openPlain, openCipher  stats.Counter
	macDrops               stats.Counter
	handshakes, handshakeF stats.Counter
	// rabinDecrypts counts private-key decrypt operations on the
	// handshake paths — the public-key cost a resumption avoids. The
	// login-storm figure asserts this stays flat across a resumed
	// reconnect wave.
	rabinDecrypts stats.Counter
	// resumes counts handshakes established via session resumption
	// (each end of an in-process pair increments once, like
	// handshakes); resumeMisses counts client-side fallbacks to the
	// full handshake after the server forgot the session.
	resumes, resumeMisses stats.Counter
}

// Snapshot is the JSON form of the package-wide channel counters.
// Cipher bytes include the per-record length header and MAC trailer;
// plain bytes are payload only, so cipher−plain is the channel's
// framing overhead. MACDrops counts records rejected by MAC
// verification — with a stream-position-keyed MAC this is where
// replayed, reordered, or tampered records land (the channel's
// replay window is the cipher stream itself; see DESIGN.md §3).
type Snapshot struct {
	Seals          uint64 `json:"seals"`
	Opens          uint64 `json:"opens"`
	SealPlainBytes uint64 `json:"seal_plain_bytes"`
	SealWireBytes  uint64 `json:"seal_wire_bytes"`
	OpenPlainBytes uint64 `json:"open_plain_bytes"`
	OpenWireBytes  uint64 `json:"open_wire_bytes"`
	MACDrops       uint64 `json:"mac_drops"`
	Handshakes     uint64 `json:"handshakes"`
	HandshakeFails uint64 `json:"handshake_fails,omitempty"`
	RabinDecrypts  uint64 `json:"rabin_decrypts"`
	Resumes        uint64 `json:"resumes"`
	ResumeMisses   uint64 `json:"resume_misses,omitempty"`
}

// StatsSnapshot captures the process-wide channel counters.
func StatsSnapshot() Snapshot {
	return Snapshot{
		Seals:          chanStats.seals.Load(),
		Opens:          chanStats.opens.Load(),
		SealPlainBytes: chanStats.sealPlain.Load(),
		SealWireBytes:  chanStats.sealCipher.Load(),
		OpenPlainBytes: chanStats.openPlain.Load(),
		OpenWireBytes:  chanStats.openCipher.Load(),
		MACDrops:       chanStats.macDrops.Load(),
		Handshakes:     chanStats.handshakes.Load(),
		HandshakeFails: chanStats.handshakeF.Load(),
		RabinDecrypts:  chanStats.rabinDecrypts.Load(),
		Resumes:        chanStats.resumes.Load(),
		ResumeMisses:   chanStats.resumeMisses.Load(),
	}
}

// RabinDecrypts returns the process-wide count of handshake-path
// Rabin private-key decrypts — the counter the login-storm figure and
// CI smoke assert stays flat across a resumed reconnect wave.
func RabinDecrypts() uint64 { return chanStats.rabinDecrypts.Load() }
