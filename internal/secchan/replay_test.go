package secchan

import (
	"bytes"
	"errors"
	"testing"
)

// captureConn records sealed records without delivering them.
type captureConn struct {
	bytes.Buffer
}

func (c *captureConn) Close() error { return nil }

// TestReplayRejected verifies that a recorded record cannot be
// replayed: the MAC key is drawn from the stream position, so the same
// bytes presented at a later position fail authentication. This is
// the channel's freshness/replay-prevention guarantee (paper §2.1.2).
func TestReplayRejected(t *testing.T) {
	keyCS := make([]byte, 20)
	keySC := make([]byte, 20)
	for i := range keyCS {
		keyCS[i] = byte(i)
		keySC[i] = byte(i + 100)
	}
	sender, err := newConn(&captureConn{}, keyCS, keySC, true)
	if err != nil {
		t.Fatal(err)
	}
	cap1 := sender.raw.(*captureConn)
	if _, err := sender.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	rec1 := append([]byte(nil), cap1.Bytes()...)

	// Receiver accepts the record at position 0...
	mk := func(wire []byte) *Conn {
		rc, err := newConn(&replayConn{data: wire}, keyCS, keySC, false)
		if err != nil {
			t.Fatal(err)
		}
		return rc
	}
	recv := mk(rec1)
	buf := make([]byte, 64)
	n, err := recv.Read(buf)
	if err != nil || string(buf[:n]) != "first" {
		t.Fatalf("legit record: %q %v", buf[:n], err)
	}
	// ...but replaying the identical bytes as the *second* record
	// fails: the stream has advanced.
	recv2 := mk(append(append([]byte(nil), rec1...), rec1...))
	if _, err := recv2.Read(buf); err != nil {
		t.Fatalf("first copy: %v", err)
	}
	if _, err := recv2.Read(buf); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("replay produced %v, want ErrBadMAC", err)
	}
}

// TestRecordsCannotBeReordered: swapping two sealed records breaks
// both positions.
func TestRecordsCannotBeReordered(t *testing.T) {
	keyCS := make([]byte, 20)
	keySC := make([]byte, 20)
	for i := range keyCS {
		keyCS[i] = byte(i * 3)
		keySC[i] = byte(i * 5)
	}
	capture := &captureConn{}
	sender, err := newConn(capture, keyCS, keySC, true)
	if err != nil {
		t.Fatal(err)
	}
	// Two records of equal length so lengths can't save us.
	if _, err := sender.Write([]byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	lenOne := capture.Len()
	if _, err := sender.Write([]byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), capture.Bytes()...)
	swapped := append(append([]byte(nil), wire[lenOne:]...), wire[:lenOne]...)
	recv, err := newConn(&replayConn{data: swapped}, keyCS, keySC, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := recv.Read(buf); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("reordered records produced %v, want ErrBadMAC", err)
	}
}

type replayConn struct {
	data []byte
	off  int
}

func (r *replayConn) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, errors.New("eof")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *replayConn) Write(p []byte) (int, error) { return len(p), nil }
func (r *replayConn) Close() error                { return nil }
