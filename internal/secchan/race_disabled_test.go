//go:build !race

package secchan

const raceEnabled = false
