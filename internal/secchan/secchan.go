// Package secchan implements SFS's low-level secure channel: the key
// negotiation protocol of paper §3.1.1 (Figure 3) and the encrypted,
// MACed record framing of §3.1.3.
//
// Connection establishment proceeds in the clear:
//
//  1. the client announces the Location and HostID it wants, plus the
//     service (file server or authserver) and protocol extensions;
//  2. the server responds with its public key K_S — or with a signed
//     revocation certificate for that HostID;
//  3. the client checks SHA-1("HostInfo", Location, K_S, ...) against
//     the pathname's HostID. A matching key is the correct key, by the
//     collision resistance of SHA-1; no external trust is involved.
//
// Key negotiation then provides forward secrecy: the client sends a
// short-lived public key K_C' and the key halves k_C1, k_C2 encrypted
// under K_S; the server replies with k_S1, k_S2 encrypted under K_C'.
// Both sides compute
//
//	KeyCS = SHA-1("KCS", K_S, k_S1, K_C', k_C1)
//	KeySC = SHA-1("KSC", K_S, k_S2, K_C', k_C2)
//
// and use one 20-byte ARC4 stream per direction. Every record's MAC
// is keyed with 32 bytes pulled from that direction's stream (bytes
// never used for encryption), computed over the length and plaintext,
// and the length, message, and MAC are all encrypted. An attacker who
// later compromises the server's long-lived key cannot decrypt
// recorded sessions: the client discards K_C' regularly.
package secchan

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/crypto/arc4"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/crypto/sha1mac"
	"repro/internal/stats"
	"repro/internal/sunrpc"
	"repro/internal/xdr"
)

// Services a client can request from the server master, which
// dispatches connections by service, version, and pathname (§3.2).
const (
	ServiceFile = 1
	ServiceAuth = 2
	// ServiceFileRO selects the read-only dialect (§2.4): servers
	// prove file system contents with precomputed signatures.
	ServiceFileRO = 3
)

// Connect response status codes.
const (
	connectOK      = 0
	connectRevoked = 1
	connectNoSuch  = 2
	// connectBusy is the admission-control fast-reject: the server's
	// negotiation pool and backlog are full, so it sheds the handshake
	// immediately instead of queuing it unboundedly (DESIGN.md §14).
	connectBusy = 3
)

// Errors.
var (
	// ErrHostIDMismatch means the server presented a key that does
	// not hash to the requested HostID: a wrong or malicious server.
	ErrHostIDMismatch = errors.New("secchan: server key does not match HostID")
	// ErrRevoked means the server answered with a valid revocation
	// certificate for the requested HostID.
	ErrRevoked = errors.New("secchan: self-certifying pathname has been revoked")
	// ErrNoSuchFS means the server does not serve the requested
	// pathname.
	ErrNoSuchFS = errors.New("secchan: server does not serve this file system")
	// ErrBadMAC means record authentication failed; the channel is
	// dead.
	ErrBadMAC = errors.New("secchan: message authentication failed")
	// ErrServerBusy means the server shed the handshake at admission:
	// its negotiation pool and backlog are saturated. The client may
	// retry with backoff.
	ErrServerBusy = errors.New("secchan: server is at handshake capacity")
)

const keyHalf = 20 // bytes per key half

// ConnectRequest is the clear-text connection announcement.
type ConnectRequest struct {
	Tag        string // "SFS_CONNECT"
	Service    uint32
	Version    uint32
	Location   string
	HostID     [core.HostIDSize]byte
	Extensions []string
}

// connectResponse carries the server key or a revocation certificate.
type connectResponse struct {
	Status     uint32
	ServerKey  []byte
	Revocation []byte // marshaled core.PathRevoke when Status == connectRevoked
}

// keyNegRequest is the client half of Figure 3 step 3.
type keyNegRequest struct {
	Tag       string // "SFS_KEYNEG"
	TempKey   []byte // K_C' canonical encoding
	KeyHalves []byte // {k_C1, k_C2} encrypted under K_S
}

// keyNegResponse is the server half, step 4.
type keyNegResponse struct {
	KeyHalves []byte // {k_S1, k_S2} encrypted under K_C'
}

// Info describes an established channel.
type Info struct {
	// SessionID = SHA-1("SessionInfo", KeyCS, KeySC); user
	// authentication binds signatures to it (§3.1.2).
	SessionID [sha1.Size]byte
	// Location and HostID of the server end.
	Location string
	HostID   core.HostID
	// Service the client requested.
	Service uint32
	// Version the client requested.
	Version uint32
	// Extensions from the connect request.
	Extensions []string
	// Ticket resumes this session on the next reconnect without
	// public-key work (client side only; nil on the server side and on
	// plain connects). Every established session mints a fresh one.
	Ticket *ResumeTicket
}

func sessionKeys(serverKey, tempKey []byte, cHalves, sHalves []byte) (cs, sc [keyHalf]byte, sessionID [sha1.Size]byte) {
	kcs := sha1.New()
	kcs.Write([]byte("KCS"))
	kcs.Write(serverKey)
	kcs.Write(sHalves[:keyHalf])
	kcs.Write(tempKey)
	kcs.Write(cHalves[:keyHalf])
	copy(cs[:], kcs.Sum(nil))
	ksc := sha1.New()
	ksc.Write([]byte("KSC"))
	ksc.Write(serverKey)
	ksc.Write(sHalves[keyHalf:])
	ksc.Write(tempKey)
	ksc.Write(cHalves[keyHalf:])
	copy(sc[:], ksc.Sum(nil))
	sid := sha1.New()
	sid.Write([]byte("SessionInfo"))
	sid.Write(cs[:])
	sid.Write(sc[:])
	copy(sessionID[:], sid.Sum(nil))
	return cs, sc, sessionID
}

// maxHandshakeMsg bounds one clear-text handshake message. Connect
// and key-negotiation messages are a few hundred bytes (keys and
// encrypted halves); revocation certificates stay well under this.
// The tight bound doubles as storm hardening: a hostile peer cannot
// make the server stage megabytes before the handshake even starts.
const maxHandshakeMsg = 64 << 10

// writeMsg marshals one handshake message through a pooled encoder
// straight into the record-framing path — no per-message marshal
// buffer (the handshake allocation budget is tracked by
// BenchmarkHandshake/BenchmarkResume).
func writeMsg(w io.Writer, v interface{}) error {
	e := xdr.GetEncoder()
	err := e.Encode(v)
	if err == nil {
		err = sunrpc.WriteRecordEncoder(w, e)
	}
	xdr.PutEncoder(e)
	return err
}

// msgBuf is pooled scratch for reading one handshake record.
type msgBuf struct{ b []byte }

var msgBufPool = sync.Pool{
	New: func() interface{} { return &msgBuf{b: make([]byte, 512)} },
}

func putMsgBuf(m *msgBuf) {
	if cap(m.b) <= maxHandshakeMsg {
		msgBufPool.Put(m)
	}
}

// readRecordPooled reads one record-marked handshake message into
// pooled scratch. The caller must putMsgBuf the result after decoding
// (the XDR decoder copies, so nothing retains the scratch).
func readRecordPooled(r io.Reader) (*msgBuf, error) {
	m := msgBufPool.Get().(*msgBuf)
	hdr := m.b[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		putMsgBuf(m)
		return nil, err
	}
	h := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
	total := 0
	for {
		n := int(h & 0x7fffffff)
		// Bound n before any arithmetic: on 32-bit platforms total+n
		// could wrap negative and slip past a combined check.
		if n > maxHandshakeMsg || total > maxHandshakeMsg-n {
			putMsgBuf(m)
			return nil, errors.New("secchan: oversized handshake message")
		}
		if cap(m.b) < total+n {
			grown := make([]byte, total+n)
			copy(grown, m.b[:total])
			m.b = grown
		}
		m.b = m.b[:total+n]
		if _, err := io.ReadFull(r, m.b[total:]); err != nil {
			putMsgBuf(m)
			return nil, err
		}
		total += n
		if h&0x80000000 != 0 { // last fragment: the only case writeMsg emits
			return m, nil
		}
		var fh [4]byte
		if _, err := io.ReadFull(r, fh[:]); err != nil {
			putMsgBuf(m)
			return nil, err
		}
		h = uint32(fh[0])<<24 | uint32(fh[1])<<16 | uint32(fh[2])<<8 | uint32(fh[3])
	}
}

// peekTag decodes the leading XDR string of a hello message so the
// reader can pick the right struct before unmarshaling.
func peekTag(b []byte) (string, error) {
	var tag string
	if err := xdr.NewDecoder(b).Decode(&tag); err != nil {
		return "", err
	}
	return tag, nil
}

// unmarshalMsg decodes a whole handshake message from pooled scratch.
func unmarshalMsg(b []byte, v interface{}) error {
	return xdr.Unmarshal(b, v)
}

func readMsg(r io.Reader, v interface{}) error {
	m, err := readRecordPooled(r)
	if err != nil {
		return err
	}
	err = unmarshalMsg(m.b, v)
	putMsgBuf(m)
	return err
}

// ClientHandshake establishes a secure channel to the server for path.
// tempKey is the client's short-lived key K_C'; callers regenerate it
// on an interval (hourly in the paper) for forward secrecy. If the
// server answers with a valid revocation certificate, the returned
// error is ErrRevoked and the certificate is returned for the agent.
func ClientHandshake(conn io.ReadWriteCloser, service uint32, path core.Path, tempKey *rabin.PrivateKey, rng *prng.Generator, extensions ...string) (*Conn, *Info, *core.PathRevoke, error) {
	c, info, cert, err := clientHandshake(conn, service, path, tempKey, rng, extensions...)
	if err != nil {
		chanStats.handshakeF.Inc()
	} else {
		chanStats.handshakes.Inc()
	}
	return c, info, cert, err
}

func clientHandshake(conn io.ReadWriteCloser, service uint32, path core.Path, tempKey *rabin.PrivateKey, rng *prng.Generator, extensions ...string) (*Conn, *Info, *core.PathRevoke, error) {
	if extensions == nil {
		extensions = []string{}
	}
	req := ConnectRequest{
		Tag: "SFS_CONNECT", Service: service, Version: 1,
		Location: path.Location, HostID: path.HostID, Extensions: extensions,
	}
	if err := writeMsg(conn, req); err != nil {
		return nil, nil, nil, err
	}
	var resp connectResponse
	if err := readMsg(conn, &resp); err != nil {
		return nil, nil, nil, err
	}
	switch resp.Status {
	case connectOK:
	case connectRevoked:
		cert, id, err := core.ParsePathRevoke(resp.Revocation)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("secchan: server sent invalid revocation: %w", err)
		}
		if id != path.HostID {
			return nil, nil, nil, errors.New("secchan: revocation is for a different HostID")
		}
		return nil, nil, cert, ErrRevoked
	case connectNoSuch:
		return nil, nil, nil, ErrNoSuchFS
	case connectBusy:
		return nil, nil, nil, ErrServerBusy
	default:
		return nil, nil, nil, fmt.Errorf("secchan: bad connect status %d", resp.Status)
	}
	// Verify the key against the pathname: this is the entire trust
	// decision.
	if core.ComputeHostID(path.Location, resp.ServerKey) != path.HostID {
		return nil, nil, nil, ErrHostIDMismatch
	}
	serverPub, err := rabin.ParsePublicKey(resp.ServerKey)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("secchan: server key: %w", err)
	}
	// Key negotiation.
	cHalves := rng.Bytes(2 * keyHalf)
	encC, err := serverPub.Encrypt(rng, cHalves)
	if err != nil {
		return nil, nil, nil, err
	}
	tempPub := tempKey.PublicKey.Bytes()
	if err := writeMsg(conn, keyNegRequest{Tag: "SFS_KEYNEG", TempKey: tempPub, KeyHalves: encC}); err != nil {
		return nil, nil, nil, err
	}
	var negResp keyNegResponse
	if err := readMsg(conn, &negResp); err != nil {
		return nil, nil, nil, err
	}
	chanStats.rabinDecrypts.Inc()
	sHalves, err := tempKey.Decrypt(negResp.KeyHalves)
	if err != nil || len(sHalves) != 2*keyHalf {
		return nil, nil, nil, errors.New("secchan: bad server key halves")
	}
	cs, sc, sid := sessionKeys(resp.ServerKey, tempPub, cHalves, sHalves)
	sec, err := newConn(conn, cs[:], sc[:], true)
	if err != nil {
		return nil, nil, nil, err
	}
	info := &Info{
		SessionID: sid, Location: path.Location, HostID: path.HostID,
		Service: service, Version: req.Version, Extensions: extensions,
		Ticket: mintTicket(sid, cs[:], sc[:]),
	}
	return sec, info, nil, nil
}

// ClientConnectPlain performs the connect exchange without key
// negotiation: it announces the pathname, receives the server's
// public key, and verifies it against the HostID. The read-only
// dialect uses this — its data is self-certifying block by block, so
// no secure channel is needed, and replicas hold no private key.
func ClientConnectPlain(conn io.ReadWriter, service uint32, path core.Path, extensions ...string) (*core.PathRevoke, error) {
	if extensions == nil {
		extensions = []string{}
	}
	req := ConnectRequest{
		Tag: "SFS_CONNECT", Service: service, Version: 1,
		Location: path.Location, HostID: path.HostID, Extensions: extensions,
	}
	if err := writeMsg(conn, req); err != nil {
		return nil, err
	}
	var resp connectResponse
	if err := readMsg(conn, &resp); err != nil {
		return nil, err
	}
	switch resp.Status {
	case connectOK:
	case connectRevoked:
		cert, id, err := core.ParsePathRevoke(resp.Revocation)
		if err != nil {
			return nil, fmt.Errorf("secchan: server sent invalid revocation: %w", err)
		}
		if id != path.HostID {
			return nil, errors.New("secchan: revocation is for a different HostID")
		}
		return cert, ErrRevoked
	case connectNoSuch:
		return nil, ErrNoSuchFS
	case connectBusy:
		return nil, ErrServerBusy
	default:
		return nil, fmt.Errorf("secchan: bad connect status %d", resp.Status)
	}
	if core.ComputeHostID(path.Location, resp.ServerKey) != path.HostID {
		return nil, ErrHostIDMismatch
	}
	return nil, nil
}

// AcceptPlain answers a connect request with the server's public key
// and no key negotiation (read-only dialect).
func AcceptPlain(conn io.Writer, serverKey []byte) error {
	return writeMsg(conn, connectResponse{Status: connectOK, ServerKey: serverKey, Revocation: []byte{}})
}

// KeySource supplies the private key serving a (Location, HostID)
// pair, or nil if this server does not serve it. The server master
// uses it to dispatch by self-certifying pathname.
type KeySource func(location string, hostID core.HostID) *rabin.PrivateKey

// RevocationSource optionally supplies a revocation certificate for a
// HostID, letting servers "get the word out fast" about revoked
// pathnames (§2.6). May be nil.
type RevocationSource func(hostID core.HostID) *core.PathRevoke

// ReadConnect reads the client's clear-text connect announcement so a
// server master can decide how to dispatch the connection.
func ReadConnect(conn io.Reader) (*ConnectRequest, error) {
	var req ConnectRequest
	if err := readMsg(conn, &req); err != nil {
		return nil, err
	}
	if req.Tag != "SFS_CONNECT" {
		return nil, errors.New("secchan: bad connect tag")
	}
	return &req, nil
}

// RejectNoSuchFS tells the client this server does not serve the
// requested file system.
func RejectNoSuchFS(conn io.Writer) error {
	return writeMsg(conn, connectResponse{Status: connectNoSuch, ServerKey: []byte{}, Revocation: []byte{}})
}

// RejectRevoked answers the connect with a revocation certificate.
func RejectRevoked(conn io.Writer, cert *core.PathRevoke) error {
	return writeMsg(conn, connectResponse{Status: connectRevoked, ServerKey: []byte{}, Revocation: cert.Marshal()})
}

// RejectBusy sheds the connect at admission: the server's negotiation
// pool and backlog are full. The client sees ErrServerBusy.
func RejectBusy(conn io.Writer) error {
	return writeMsg(conn, connectResponse{Status: connectBusy, ServerKey: []byte{}, Revocation: []byte{}})
}

// ServerHandshake completes the server side of connection setup for a
// connect request that the caller has matched to priv.
func ServerHandshake(conn io.ReadWriteCloser, req *ConnectRequest, priv *rabin.PrivateKey, rng *prng.Generator) (*Conn, *Info, error) {
	return ServerHandshakeSession(conn, req, priv, rng, nil)
}

// ServerHandshakeSession is ServerHandshake with a resumption cache:
// the established session's resume secret is cached so the client's
// next reconnect can skip the Rabin decrypt. A nil cache disables
// resumption for this session.
func ServerHandshakeSession(conn io.ReadWriteCloser, req *ConnectRequest, priv *rabin.PrivateKey, rng *prng.Generator, cache *ResumeCache) (*Conn, *Info, error) {
	c, info, err := serverHandshake(conn, req, priv, rng, cache)
	if err != nil {
		chanStats.handshakeF.Inc()
	} else {
		chanStats.handshakes.Inc()
	}
	return c, info, err
}

func serverHandshake(conn io.ReadWriteCloser, req *ConnectRequest, priv *rabin.PrivateKey, rng *prng.Generator, cache *ResumeCache) (*Conn, *Info, error) {
	pub := priv.PublicKey.Bytes()
	if err := writeMsg(conn, connectResponse{Status: connectOK, ServerKey: pub, Revocation: []byte{}}); err != nil {
		return nil, nil, err
	}
	var neg keyNegRequest
	if err := readMsg(conn, &neg); err != nil {
		return nil, nil, err
	}
	if neg.Tag != "SFS_KEYNEG" {
		return nil, nil, errors.New("secchan: bad keyneg tag")
	}
	chanStats.rabinDecrypts.Inc()
	cHalves, err := priv.Decrypt(neg.KeyHalves)
	if err != nil || len(cHalves) != 2*keyHalf {
		return nil, nil, errors.New("secchan: bad client key halves")
	}
	tempPub, err := rabin.ParsePublicKey(neg.TempKey)
	if err != nil {
		return nil, nil, fmt.Errorf("secchan: client temp key: %w", err)
	}
	sHalves := rng.Bytes(2 * keyHalf)
	encS, err := tempPub.Encrypt(rng, sHalves)
	if err != nil {
		return nil, nil, err
	}
	if err := writeMsg(conn, keyNegResponse{KeyHalves: encS}); err != nil {
		return nil, nil, err
	}
	cs, sc, sid := sessionKeys(pub, neg.TempKey, cHalves, sHalves)
	sec, err := newConn(conn, cs[:], sc[:], false)
	if err != nil {
		return nil, nil, err
	}
	cache.put(sid, resumeMaster(cs[:], sc[:]),
		resumeBinding{hostID: req.HostID, location: req.Location, service: req.Service})
	var hostID core.HostID
	copy(hostID[:], req.HostID[:])
	info := &Info{
		SessionID: sid, Location: req.Location, HostID: hostID,
		Service: req.Service, Version: req.Version, Extensions: req.Extensions,
	}
	return sec, info, nil
}

// Conn is an established secure channel. It implements
// io.ReadWriteCloser with record semantics compatible with the RPC
// layer's record marking: each Write seals one record; Read serves
// decrypted bytes in order.
type Conn struct {
	raw     io.ReadWriteCloser
	encrypt bool // captured from the package mode at construction

	wmu        sync.Mutex
	send       *arc4.Cipher
	sealBuf    []byte // sealed-record scratch, guarded by wmu
	sendMacKey [sha1mac.KeySize]byte
	wsegs      [][]byte           // segment scratch for WriteSegments, guarded by wmu
	sendHdr    [4]byte            // record-length header for the vectored path
	sendMac    [sha1mac.Size]byte // MAC staging for the vectored path

	rmu        sync.Mutex
	recv       *arc4.Cipher
	openBuf    []byte // opened-record scratch, guarded by rmu
	recvMacKey [sha1mac.KeySize]byte
	readBuf    []byte // unread tail of the current record (aliases openBuf)
	readErr    error

	// Stage-tracing work ledgers (DESIGN.md §13): cumulative
	// nanoseconds of seal (MAC + encrypt + staging, excluding the
	// transport write) and open (decrypt + MAC verify, excluding the
	// transport reads) work on this channel. Only accumulated while
	// stats.StageTimingOn() — one atomic load per record otherwise —
	// and read by the RPC layer as deltas around one record.
	sealNS atomic.Int64
	openNS atomic.Int64
}

// SealWorkNS returns the cumulative seal work on this channel in
// nanoseconds (sunrpc.SealTimer).
func (c *Conn) SealWorkNS() int64 { return c.sealNS.Load() }

// OpenWorkNS returns the cumulative open work on this channel in
// nanoseconds (sunrpc.OpenTimer).
func (c *Conn) OpenWorkNS() int64 { return c.openNS.Load() }

// maxRetainedBuf caps the scratch a Conn keeps between records, so one
// oversized record cannot pin its buffer for the channel's lifetime.
const maxRetainedBuf = 1 << 20

// mode toggles payload encryption for subsequently created channels —
// captured per Conn at construction, so flipping it never races with
// live channels. It reproduces the "SFS w/o encryption" configuration
// of the paper's Figure 5: a package-level benchmark knob, not a
// production mode.
var mode atomic.Bool

func init() { mode.Store(true) }

// SetEncryption toggles payload encryption for subsequently created
// channels (integrity MACs always remain). Benchmarks use this to
// reproduce the paper's "SFS w/o encryption" rows.
func SetEncryption(on bool) { mode.Store(on) }

// EncryptionEnabled reports the current mode.
func EncryptionEnabled() bool { return mode.Load() }

func newConn(raw io.ReadWriteCloser, keyCS, keySC []byte, isClient bool) (*Conn, error) {
	csCipher, err := arc4.New(keyCS)
	if err != nil {
		return nil, err
	}
	scCipher, err := arc4.New(keySC)
	if err != nil {
		return nil, err
	}
	c := &Conn{raw: raw, encrypt: mode.Load()}
	if isClient {
		c.send, c.recv = csCipher, scCipher
	} else {
		c.send, c.recv = scCipher, csCipher
	}
	return c, nil
}

// sized returns buf resized to n, growing it only when needed; ret
// receives the buffer to retain for the next record (nil when n is too
// large to keep).
func sized(buf []byte, n int) (rec, ret []byte) {
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	rec = buf[:n]
	if n > maxRetainedBuf {
		return rec, nil
	}
	return rec, rec
}

// Write seals p as one record: MAC keyed from the stream, over the
// length and plaintext; then length, payload, and MAC encrypted. The
// sealed record is staged in a per-channel scratch buffer, so the
// underlying transport must not retain the slice it is handed.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var sealT0 time.Time
	if stats.StageTimingOn() {
		sealT0 = time.Now()
	}
	c.send.KeyStreamInto(c.sendMacKey[:])
	mac := sha1mac.Sum(c.sendMacKey[:], p)
	rec, ret := sized(c.sealBuf, 4+len(p)+sha1mac.Size)
	c.sealBuf = ret
	rec[0] = byte(len(p) >> 24)
	rec[1] = byte(len(p) >> 16)
	rec[2] = byte(len(p) >> 8)
	rec[3] = byte(len(p))
	copy(rec[4:], p)
	copy(rec[4+len(p):], mac[:])
	if c.encrypt {
		c.send.XORKeyStream(rec, rec)
	} else {
		// Keep the stream position aligned with the peer.
		c.send.Skip(len(rec))
	}
	if !sealT0.IsZero() {
		c.sealNS.Add(int64(time.Since(sealT0)))
	}
	if _, err := c.raw.Write(rec); err != nil {
		return 0, err
	}
	// Wire-copy accounting for the legacy funnel: staging p into the
	// record buffer is one full pass over the payload. Only records big
	// enough to contain payload-class opaques count, so handshake and
	// header-only traffic does not dilute the copies-per-payload ratio.
	if len(p) >= legacyCopyMin {
		stats.NoteWireCopied(uint64(len(p)))
	}
	chanStats.seals.Inc()
	chanStats.sealPlain.Add(uint64(len(p)))
	chanStats.sealCipher.Add(uint64(len(rec)))
	return len(p), nil
}

// legacyCopyMin is the record size from which the legacy Write path
// charges its staging copy to the wire-copy accounting: large enough
// to exclude handshake and header-only records, well below one
// payload-carrying 8KB READ/WRITE record.
const legacyCopyMin = 4096

// WriteSegments seals the concatenation of segs as one record without
// requiring a contiguous plaintext (sunrpc.SegmentWriter). The MAC
// streams over the segments; then:
//
//   - encryption on: the record is sealed in place — each plaintext
//     byte is staged into the framing buffer by the same XOR pass that
//     encrypts it (arc4's dst≠src form), so framing costs one fused
//     copy+encrypt pass total, not a copy pass plus a crypto pass.
//   - encryption off: the header, borrowed segments, and MAC go to
//     the transport vectored, zero staging copies, when the transport
//     is itself a SegmentWriter (the keystream is skipped to stay
//     aligned with the peer).
//
// Segments must stay immutable until WriteSegments returns. copied
// reports the bytes staged through the framing buffer (the sealed
// record length when encrypting, 0 on the vectored plaintext path).
func (c *Conn) WriteSegments(segs [][]byte) (int, int, error) {
	plen := 0
	for _, s := range segs {
		plen += len(s)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var sealT0 time.Time
	if stats.StageTimingOn() {
		sealT0 = time.Now()
	}
	c.send.KeyStreamInto(c.sendMacKey[:])
	mac := sha1mac.SumVec(c.sendMacKey[:], segs)
	reclen := 4 + plen + sha1mac.Size
	sw, vectored := c.raw.(sunrpc.SegmentWriter)
	copied := 0
	var err error
	if c.encrypt || !vectored {
		rec, ret := sized(c.sealBuf, reclen)
		c.sealBuf = ret
		rec[0] = byte(plen >> 24)
		rec[1] = byte(plen >> 16)
		rec[2] = byte(plen >> 8)
		rec[3] = byte(plen)
		if c.encrypt {
			c.send.XORKeyStream(rec[:4], rec[:4])
			pos := 4
			for _, s := range segs {
				c.send.XORKeyStream(rec[pos:pos+len(s)], s)
				pos += len(s)
			}
			copy(rec[pos:], mac[:])
			c.send.XORKeyStream(rec[pos:], rec[pos:])
		} else {
			pos := 4
			for _, s := range segs {
				pos += copy(rec[pos:], s)
			}
			copy(rec[pos:], mac[:])
			c.send.Skip(reclen)
		}
		copied = reclen
		if !sealT0.IsZero() {
			c.sealNS.Add(int64(time.Since(sealT0)))
		}
		if vectored {
			// Hand the sealed record down as a single segment: the
			// transport's staging-copy charge does not apply — the
			// fused seal pass above already was the staging.
			ws := append(c.wsegs[:0], rec)
			c.wsegs = ws
			_, _, err = sw.WriteSegments(ws)
			ws[0] = nil
		} else {
			_, err = c.raw.Write(rec)
		}
	} else {
		c.sendHdr[0] = byte(plen >> 24)
		c.sendHdr[1] = byte(plen >> 16)
		c.sendHdr[2] = byte(plen >> 8)
		c.sendHdr[3] = byte(plen)
		c.sendMac = mac
		c.send.Skip(reclen)
		if !sealT0.IsZero() {
			c.sealNS.Add(int64(time.Since(sealT0)))
		}
		ws := append(c.wsegs[:0], c.sendHdr[:])
		ws = append(ws, segs...)
		ws = append(ws, c.sendMac[:])
		c.wsegs = ws
		_, _, err = sw.WriteSegments(ws)
		for i := range ws {
			ws[i] = nil
		}
	}
	if err != nil {
		return 0, copied, err
	}
	chanStats.seals.Inc()
	chanStats.sealPlain.Add(uint64(plen))
	chanStats.sealCipher.Add(uint64(reclen))
	return plen, copied, nil
}

// MaxRecord bounds a sealed record's plaintext.
const MaxRecord = 64 << 20

// Read returns decrypted bytes, unsealing the next record when the
// buffer is empty.
func (c *Conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.readErr != nil {
		return 0, c.readErr
	}
	for len(c.readBuf) == 0 {
		if err := c.readRecord(); err != nil {
			c.readErr = err
			return 0, err
		}
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

// readRecord opens the next record into the per-channel scratch
// buffer. It only runs once the previous record is fully consumed
// (readBuf empty), so reusing openBuf is safe: Read hands callers
// copies, never the scratch itself.
func (c *Conn) readRecord() error {
	c.recv.KeyStreamInto(c.recvMacKey[:])
	var hdr [4]byte
	if _, err := io.ReadFull(c.raw, hdr[:]); err != nil {
		return err
	}
	if c.encrypt {
		c.recv.XORKeyStream(hdr[:], hdr[:])
	} else {
		c.recv.Skip(4)
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n < 0 || n > MaxRecord {
		chanStats.macDrops.Inc()
		return ErrBadMAC // garbled length ≈ tampering
	}
	body, ret := sized(c.openBuf, n+sha1mac.Size)
	c.openBuf = ret
	if _, err := io.ReadFull(c.raw, body); err != nil {
		return err
	}
	// The open work proper — decrypt + MAC verify — is timed for the
	// stage-tracing ledger; the transport reads above are wire wait,
	// not open work.
	var openT0 time.Time
	if stats.StageTimingOn() {
		openT0 = time.Now()
	}
	if c.encrypt {
		c.recv.XORKeyStream(body, body)
	} else {
		c.recv.Skip(len(body))
	}
	payload, mac := body[:n], body[n:]
	ok := sha1mac.Verify(c.recvMacKey[:], payload, mac)
	if !openT0.IsZero() {
		c.openNS.Add(int64(time.Since(openT0)))
	}
	if !ok {
		chanStats.macDrops.Inc()
		return ErrBadMAC
	}
	chanStats.opens.Inc()
	chanStats.openPlain.Add(uint64(n))
	chanStats.openCipher.Add(uint64(len(body) + 4))
	c.readBuf = payload
	return nil
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.raw.Close() }
