package secchan

// Handshake-path benchmarks: the per-connection setup cost the
// login-storm figure scales up. BenchmarkHandshake is the full key
// negotiation (two Rabin decrypts per connection, both ends
// in-process); BenchmarkResume is the resumption rekey — no
// public-key work, so the gap between the two is the storm capacity
// resumption buys. Both report allocations so the pooled
// writeMsg/readMsg scratch is tracked like the seal path's.

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto/prng"
)

func BenchmarkHandshake(b *testing.B) {
	sk, tk, _ := testKeys(b)
	path := core.MakePath("server.example.com", sk.PublicKey.Bytes())
	srng := prng.NewSeeded([]byte("bench-hs-server"))
	crng := prng.NewSeeded([]byte("bench-hs-client"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c1, c2 := net.Pipe()
		done := make(chan error, 1)
		go func() {
			req, err := ReadConnect(c2)
			if err != nil {
				done <- err
				return
			}
			_, _, err = ServerHandshake(c2, req, sk, srng)
			done <- err
		}()
		if _, _, _, err := ClientHandshake(c1, ServiceFile, path, tk, crng); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		c1.Close()
		c2.Close()
	}
}

func BenchmarkResume(b *testing.B) {
	sk, tk, _ := testKeys(b)
	path := core.MakePath("server.example.com", sk.PublicKey.Bytes())
	cache := NewResumeCache(1<<20, time.Hour)
	srng := prng.NewSeeded([]byte("bench-rs-server"))
	crng := prng.NewSeeded([]byte("bench-rs-client"))

	// Seed: one full handshake mints the first ticket. Wait for the
	// server side to return before resuming — the cache insert happens
	// after its final write, so racing ahead would see a miss.
	c1, c2 := net.Pipe()
	sdone := make(chan error, 1)
	go func() {
		req, err := ReadConnect(c2)
		if err != nil {
			sdone <- err
			return
		}
		_, _, err = ServerHandshakeSession(c2, req, sk, srng, cache)
		sdone <- err
	}()
	_, info, _, err := ClientHandshake(c1, ServiceFile, path, tk, crng)
	if err != nil {
		b.Fatal(err)
	}
	if err := <-sdone; err != nil {
		b.Fatal(err)
	}
	c1.Close()
	c2.Close()
	ticket := info.Ticket

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, r2 := net.Pipe()
		done := make(chan error, 1)
		go func() {
			hello, err := ReadHello(r2)
			if err != nil {
				done <- err
				return
			}
			_, _, _, err = AcceptResume(r2, hello.Resume, cache, srng)
			done <- err
		}()
		_, ninfo, _, err := ClientHandshakeResume(r1, ServiceFile, path, tk, crng, ticket)
		if err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		// Tickets chain: each resumption mints the next one.
		ticket = ninfo.Ticket
		r1.Close()
		r2.Close()
	}
}
