// Package lab assembles complete SFS deployments — server master,
// authservers, file systems, client daemons, and agents — on loopback
// TCP. Integration tests, the example programs, and the benchmark
// harness all build their worlds with it.
package lab

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/authserv"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/secchan"
	"repro/internal/server"
	"repro/internal/sfsro"
	"repro/internal/vfs"
)

// KeyBits is the key size used by lab worlds. Real deployments used
// 1024-bit keys; 768 keeps handshakes fast while exercising identical
// code paths.
const KeyBits = 768

// World is one self-contained SFS deployment.
type World struct {
	RNG    *prng.Generator
	Server *server.Server

	mu         sync.Mutex
	listeners  []net.Listener
	locs       map[string]string // Location -> TCP address
	served     map[string]*Served
	roRegistry *sfsro.Registry
}

// Served describes one file system in the world.
type Served struct {
	Location string
	Path     core.Path
	Key      *rabin.PrivateKey
	FS       *vfs.FS
	Auth     *authserv.Server
	DB       *authserv.DB
}

// NewWorld starts a server master listening on loopback.
func NewWorld(seed string) (*World, error) {
	rng := prng.NewSeeded([]byte("lab-" + seed))
	w := &World{
		RNG:    rng,
		Server: server.New(rng),
		locs:   make(map[string]string),
		served: make(map[string]*Served),
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	w.listeners = append(w.listeners, l)
	go w.Server.ListenAndServe(l) //nolint:errcheck
	return w, nil
}

// Close shuts the world's listeners down.
func (w *World) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, l := range w.listeners {
		l.Close()
	}
}

// addr returns the master's address.
func (w *World) addr() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.listeners[0].Addr().String()
}

// ServeFS creates a key pair, substrate file system, and authserver
// for location and registers them with the server master. leaseMS
// enables the SFS caching extensions.
func (w *World) ServeFS(location string, leaseMS uint32) (*Served, error) {
	return w.ServeFSOn(location, leaseMS, vfs.New())
}

// ServeFSOn is ServeFS with a caller-built substrate file system —
// the hook tests use to serve a disk-backed (storage/diskstore) FS
// whose Restart crashes and replays for real.
func (w *World) ServeFSOn(location string, leaseMS uint32, fs *vfs.FS) (*Served, error) {
	key, err := rabin.GenerateKey(w.RNG, KeyBits)
	if err != nil {
		return nil, err
	}
	path := core.MakePath(location, key.PublicKey.Bytes())
	auth := authserv.New(path.String(), w.RNG)
	db := authserv.NewDB("local", true)
	auth.AddDB(db)
	if _, err := w.Server.Serve(server.ServedConfig{
		Location: location, Key: key, FS: fs, Auth: auth, LeaseMS: leaseMS,
	}); err != nil {
		return nil, err
	}
	s := &Served{Location: location, Path: path, Key: key, FS: fs, Auth: auth, DB: db}
	w.mu.Lock()
	w.locs[location] = w.listeners[0].Addr().String()
	w.served[location] = s
	w.mu.Unlock()
	return s, nil
}

// ServeReadOnly publishes a signed database through the world's
// server master under the read-only dialect and returns its
// self-certifying pathname. The master never sees the private key;
// only the signed database is installed.
func (w *World) ServeReadOnly(db *sfsro.DB) (core.Path, error) {
	w.mu.Lock()
	if w.roRegistry == nil {
		w.roRegistry = sfsro.NewRegistry()
		w.Server.RegisterExtension(secchan.ServiceFileRO, w.roRegistry.HandleConn)
	}
	reg := w.roRegistry
	w.mu.Unlock()
	rep, err := sfsro.NewReplica(db)
	if err != nil {
		return core.Path{}, err
	}
	reg.Add(rep)
	p := rep.Path()
	w.mu.Lock()
	w.locs[p.Location] = w.listeners[0].Addr().String()
	w.mu.Unlock()
	return p, nil
}

// Dial implements the client Dialer over the world's location map.
func (w *World) Dial(location string) (net.Conn, error) {
	w.mu.Lock()
	addr, ok := w.locs[location]
	w.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("lab: unknown location %q", location)
	}
	return net.Dial("tcp", addr)
}

// ClientOptions tune NewClient.
type ClientOptions struct {
	// EnhancedCaching enables the SFS attribute/access caching
	// extensions (the default client configuration).
	EnhancedCaching bool
	// AttrTimeout is the fallback cache TTL when enhanced caching
	// is off.
	AttrTimeout time.Duration
	// Seed differentiates RNGs of multiple clients.
	Seed string
}

// NewClient starts a client daemon wired to this world.
func (w *World) NewClient(opts ClientOptions) (*client.Client, error) {
	return client.New(client.Config{
		Dial:            w.Dial,
		RNG:             prng.NewSeeded([]byte("lab-client-" + opts.Seed)),
		TempKeyBits:     KeyBits,
		EnhancedCaching: opts.EnhancedCaching,
		AttrTimeout:     opts.AttrTimeout,
	})
}

// NewUser creates a key pair and agent for a user, registers the user
// with the served file system's authserver, and attaches the agent to
// cl. Returns the agent.
func (w *World) NewUser(cl *client.Client, s *Served, user string, uid uint32, password string) (*agent.Agent, error) {
	key, err := rabin.GenerateKey(w.RNG, KeyBits)
	if err != nil {
		return nil, err
	}
	err = s.Auth.Register(s.DB, user, uid, []uint32{uid}, authserv.RegisterOptions{
		Password: password, PrivateKey: key, EksCost: 4,
	})
	if err != nil {
		return nil, err
	}
	a := agent.New(user, w.RNG)
	a.AddKey(key)
	cl.RegisterAgent(user, a)
	return a, nil
}

// NewAnonymousUser attaches a keyless agent: all accesses proceed with
// anonymous permissions.
func (w *World) NewAnonymousUser(cl *client.Client, user string) *agent.Agent {
	a := agent.New(user, w.RNG)
	cl.RegisterAgent(user, a)
	return a
}
