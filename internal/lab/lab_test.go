package lab

import (
	"testing"

	"repro/internal/vfs"
)

func TestWorldAssembly(t *testing.T) {
	w, err := NewWorld("lab-test")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s, err := w.ServeFS("a.example.com", 30000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Path.Location != "a.example.com" {
		t.Fatalf("path location %q", s.Path.Location)
	}
	// Dialing a known location works; unknown fails.
	c, err := w.Dial("a.example.com")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := w.Dial("unknown.example.com"); err == nil {
		t.Fatal("unknown location dialed")
	}

	cl, err := w.NewClient(ClientOptions{EnhancedCaching: true, Seed: "t"})
	if err != nil {
		t.Fatal(err)
	}
	a, err := w.NewUser(cl, s, "u", 1000, "pw")
	if err != nil {
		t.Fatal(err)
	}
	if a.User() != "u" {
		t.Fatalf("agent user %q", a.User())
	}
	if len(a.Keys()) != 1 {
		t.Fatalf("agent has %d keys", len(a.Keys()))
	}
	// The registered user can reach the served file system.
	if err := s.FS.WriteFile(vfs.Cred{UID: 0}, "f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := cl.ReadFile("u", s.Path.String()+"/f")
	if err != nil || string(data) != "x" {
		t.Fatalf("read: %q %v", data, err)
	}
	// Password fetch works against the world's authserver (the user
	// was registered with SRP data).
	rec, ok := s.DB.ByName("u")
	if !ok || len(rec.SRPVerifier) == 0 {
		t.Fatal("user not registered with SRP data")
	}
	// Anonymous users attach without keys.
	anon := w.NewAnonymousUser(cl, "guest")
	if len(anon.Keys()) != 0 {
		t.Fatal("anonymous agent has keys")
	}
}

func TestTwoServersOneWorld(t *testing.T) {
	w, err := NewWorld("lab-two")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s1, err := w.ServeFS("one.example.com", 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := w.ServeFS("two.example.com", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Path.HostID == s2.Path.HostID {
		t.Fatal("two servers share a HostID")
	}
}
