// Package xdr implements the External Data Representation standard
// (RFC 1832) used by every wire protocol in this repository.
//
// SFS defines all of its cryptographic and file-system messages as XDR
// data structures and computes hashes and public-key functions over the
// raw marshaled bytes (paper §3.2). This package therefore provides a
// deterministic, reflection-based encoder and decoder for Go values:
//
//	bool              -> XDR bool (4 bytes)
//	int32/uint32      -> 4-byte big endian
//	int64/uint64      -> 8-byte big endian ("hyper")
//	string            -> variable-length opaque with length prefix
//	[]byte            -> variable-length opaque
//	[N]byte           -> fixed-length opaque
//	[]T               -> variable-length array
//	[N]T              -> fixed-length array
//	*T                -> XDR optional-data (bool followed by T if set)
//	struct            -> fields in declaration order
//
// Types may instead implement Marshaler/Unmarshaler for union types and
// other representations XDR cannot express structurally.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
)

// MaxElements bounds the length accepted for any variable-length item
// while decoding, protecting servers from memory-exhaustion attacks by
// malformed length prefixes.
const MaxElements = 16 << 20

var (
	// ErrTrailingBytes is reported by Unmarshal when input remains
	// after the top-level value has been decoded.
	ErrTrailingBytes = errors.New("xdr: trailing bytes after value")
	// ErrTooLong is reported when a decoded length prefix exceeds
	// MaxElements or an encoded item exceeds a declared bound.
	ErrTooLong = errors.New("xdr: length exceeds maximum")
)

// Marshaler is implemented by types that encode themselves.
type Marshaler interface {
	MarshalXDR(e *Encoder) error
}

// Unmarshaler is implemented by types that decode themselves.
type Unmarshaler interface {
	UnmarshalXDR(d *Decoder) error
}

// Marshal returns the XDR encoding of v.
func Marshal(v interface{}) ([]byte, error) {
	e := &Encoder{}
	if err := e.Encode(v); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

// MustMarshal is Marshal for values the caller knows to be encodable,
// such as fixed protocol structures. It panics on error.
func MustMarshal(v interface{}) []byte {
	b, err := Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("xdr: MustMarshal: %v", err))
	}
	return b
}

// Unmarshal decodes data into v, which must be a non-nil pointer.
// The entire input must be consumed.
func Unmarshal(data []byte, v interface{}) error {
	d := NewDecoder(data)
	if err := d.Decode(v); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return ErrTrailingBytes
	}
	return nil
}

// BorrowThreshold is the opaque size at and above which a gathering
// Encoder borrows the caller's slice instead of copying it, and at
// which the wire-copy accounting classifies bytes as payload. Below
// it, the bookkeeping costs more than the memcpy it would save.
const BorrowThreshold = 1024

// borrowMark splices one borrowed slice into the owned buffer: the
// bytes of b belong between buf[:off] and buf[off:]. Offsets rather
// than owned sub-slices survive buf reallocation.
type borrowMark struct {
	off int
	b   []byte
}

// An Encoder appends XDR-encoded values to an internal buffer.
// The zero value is ready for use.
//
// In gather mode (SetGather), large opaques are spliced in by
// reference instead of copied: Segments returns the encoding as an
// ordered segment list mixing owned ranges and borrowed slices.
// Ownership rule: a borrowed slice must stay immutable until the
// segments have been consumed (flushed to the transport, or the
// encoder Reset/returned to the pool). Mutating a borrow in that
// window corrupts the record — on a secure channel the receiver's
// MAC check fails and the channel dies.
type Encoder struct {
	buf    []byte
	gather bool
	marks  []borrowMark
	segs   [][]byte // scratch for Segments

	// Wire-copy accounting, reset with the encoder: bytes of
	// payload-class opaques (>= BorrowThreshold) encountered, how many
	// of them were copied into buf, and how many were borrowed.
	payload  uint64
	copied   uint64
	borrowed uint64
}

// SetGather toggles gather mode for subsequent Put calls. Turning it
// on mid-encode is fine; turning it off with borrows pending does not
// flatten them.
func (e *Encoder) SetGather(on bool) { e.gather = on }

// Bytes returns the encoded bytes accumulated so far. The returned
// slice aliases the encoder's buffer. It must not be used while
// borrowed segments are pending — the owned buffer alone is not the
// encoding — so it panics then; use Segments instead.
func (e *Encoder) Bytes() []byte {
	if len(e.marks) > 0 {
		panic("xdr: Bytes on an encoder with borrowed segments; use Segments")
	}
	return e.buf
}

// Segments returns the encoding as an ordered segment list: owned
// ranges of the internal buffer interleaved with borrowed slices.
// The returned slice and its owned segments alias the encoder and are
// invalidated by the next Put/Encode/Reset; borrowed segments alias
// their callers' memory (see the ownership rule on Encoder).
func (e *Encoder) Segments() [][]byte {
	e.segs = e.segs[:0]
	prev := 0
	for _, m := range e.marks {
		if m.off > prev {
			e.segs = append(e.segs, e.buf[prev:m.off])
		}
		e.segs = append(e.segs, m.b)
		prev = m.off
	}
	if len(e.buf) > prev || len(e.segs) == 0 {
		e.segs = append(e.segs, e.buf[prev:])
	}
	return e.segs
}

// PayloadBytes returns how many payload-class opaque bytes
// (>= BorrowThreshold) were encoded since the last Reset.
func (e *Encoder) PayloadBytes() uint64 { return e.payload }

// CopiedBytes returns how many payload-class bytes were copied into
// the owned buffer (zero when every large opaque was borrowed).
func (e *Encoder) CopiedBytes() uint64 { return e.copied }

// BorrowedBytes returns how many payload-class bytes were borrowed.
func (e *Encoder) BorrowedBytes() uint64 { return e.borrowed }

// Reset empties the encoder, retaining its buffer for reuse and
// dropping any borrowed-slice references. Bytes previously returned
// by Bytes or Segments are invalidated. Gather mode is retained.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	for i := range e.marks {
		e.marks[i].b = nil
	}
	e.marks = e.marks[:0]
	for i := range e.segs {
		e.segs[i] = nil
	}
	e.segs = e.segs[:0]
	e.payload, e.copied, e.borrowed = 0, 0, 0
}

// encoderPool recycles Encoders for the hot wire path: one RPC needs
// one encoder for the call or reply, and the marshaled bytes are
// always copied into a framed record before the encoder is released.
var encoderPool = sync.Pool{New: func() interface{} { return &Encoder{} }}

// maxPooledBuf bounds the scratch retained by a pooled encoder so one
// huge record (e.g. a 64 MB READ) cannot pin memory forever.
const maxPooledBuf = 1 << 20

// GetEncoder returns an empty Encoder from the package pool, with
// gather mode off.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.gather = false
	e.Reset()
	return e
}

// poisonOnPut enables the use-after-put debug mode: PutEncoder
// overwrites the encoder's entire buffer capacity with PoisonByte, so
// any slice obtained from Bytes/Segments and illegally retained past
// PutEncoder reads as garbage instead of silently aliasing the next
// record. Enabled by the XDR_POISON environment variable or
// SetPoisonOnPut; costs a memset per put, so it is off by default.
var poisonOnPut atomic.Bool

// PoisonByte is the fill value of the poison-on-put debug mode.
const PoisonByte = 0xDB

func init() {
	if os.Getenv("XDR_POISON") != "" {
		poisonOnPut.Store(true)
	}
}

// SetPoisonOnPut toggles the poison-on-put debug mode at runtime
// (tests use this; deployments use the XDR_POISON environment
// variable).
func SetPoisonOnPut(on bool) { poisonOnPut.Store(on) }

// PutEncoder returns e to the pool. The caller must not touch e or
// any slice returned by e.Bytes() or e.Segments() afterwards: the
// buffer is recycled by the next GetEncoder (and poisoned first when
// the debug mode is on). Borrowed-slice references are dropped here
// so a pooled encoder never pins caller memory.
func PutEncoder(e *Encoder) {
	e.Reset() // drops borrow and segment references
	if poisonOnPut.Load() {
		b := e.buf[:cap(e.buf)]
		for i := range b {
			b[i] = PoisonByte
		}
	}
	if cap(e.buf) > maxPooledBuf {
		return
	}
	encoderPool.Put(e)
}

// Len returns the number of bytes encoded so far, borrowed segments
// included.
func (e *Encoder) Len() int { return len(e.buf) + int(e.borrowed) }

// PutUint32 appends a 4-byte big-endian value.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// PutUint64 appends an 8-byte big-endian value.
func (e *Encoder) PutUint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// PutBool appends an XDR boolean.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFixedOpaque appends b with zero padding to a 4-byte boundary and
// no length prefix. In gather mode, payload-class slices
// (>= BorrowThreshold) are borrowed by reference — see the ownership
// rule on Encoder — with only the padding owned; otherwise the bytes
// are copied into the buffer and tallied as a wire copy.
func (e *Encoder) PutFixedOpaque(b []byte) {
	if len(b) >= BorrowThreshold {
		e.payload += uint64(len(b))
		if e.gather {
			e.borrowed += uint64(len(b))
			e.marks = append(e.marks, borrowMark{off: len(e.buf), b: b})
			for i := len(b); i%4 != 0; i++ {
				e.buf = append(e.buf, 0)
			}
			return
		}
		e.copied += uint64(len(b))
	}
	e.buf = append(e.buf, b...)
	for i := len(b); i%4 != 0; i++ {
		e.buf = append(e.buf, 0)
	}
}

// PutOpaque appends a variable-length opaque: length prefix, bytes,
// padding.
func (e *Encoder) PutOpaque(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.PutFixedOpaque(b)
}

// PutString appends an XDR string.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	for i := len(s); i%4 != 0; i++ {
		e.buf = append(e.buf, 0)
	}
}

// Encode appends the XDR encoding of v.
func (e *Encoder) Encode(v interface{}) error {
	if m, ok := v.(Marshaler); ok {
		return m.MarshalXDR(e)
	}
	return e.encodeValue(reflect.ValueOf(v))
}

func (e *Encoder) encodeValue(rv reflect.Value) error {
	if !rv.IsValid() {
		return errors.New("xdr: cannot encode invalid value")
	}
	if rv.CanInterface() {
		if m, ok := rv.Interface().(Marshaler); ok {
			return m.MarshalXDR(e)
		}
		if rv.CanAddr() {
			if m, ok := rv.Addr().Interface().(Marshaler); ok {
				return m.MarshalXDR(e)
			}
		}
	}
	switch rv.Kind() {
	case reflect.Bool:
		e.PutBool(rv.Bool())
	case reflect.Int8, reflect.Int16, reflect.Int32:
		e.PutUint32(uint32(int32(rv.Int())))
	case reflect.Uint8, reflect.Uint16, reflect.Uint32:
		e.PutUint32(uint32(rv.Uint()))
	case reflect.Int, reflect.Int64:
		e.PutUint64(uint64(rv.Int()))
	case reflect.Uint, reflect.Uint64:
		e.PutUint64(rv.Uint())
	case reflect.Float64:
		e.PutUint64(math.Float64bits(rv.Float()))
	case reflect.String:
		if rv.Len() > MaxElements {
			return ErrTooLong
		}
		e.PutString(rv.String())
	case reflect.Slice:
		if rv.Len() > MaxElements {
			return ErrTooLong
		}
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			e.PutOpaque(rv.Bytes())
			return nil
		}
		e.PutUint32(uint32(rv.Len()))
		for i := 0; i < rv.Len(); i++ {
			if err := e.encodeValue(rv.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Array:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			b := make([]byte, rv.Len())
			reflect.Copy(reflect.ValueOf(b), rv)
			e.PutFixedOpaque(b)
			return nil
		}
		for i := 0; i < rv.Len(); i++ {
			if err := e.encodeValue(rv.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Ptr:
		if rv.IsNil() {
			e.PutBool(false)
			return nil
		}
		e.PutBool(true)
		return e.encodeValue(rv.Elem())
	case reflect.Struct:
		t := rv.Type()
		for i := 0; i < rv.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue // unexported
			}
			if err := e.encodeValue(rv.Field(i)); err != nil {
				return fmt.Errorf("xdr: field %s.%s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
	default:
		return fmt.Errorf("xdr: unsupported type %s", rv.Type())
	}
	return nil
}

// A Decoder reads XDR values from a byte slice.
type Decoder struct {
	buf []byte
	off int

	// borrow lets decoded []byte fields alias the input buffer for
	// payload-class opaques (>= BorrowThreshold) instead of copying.
	// Only safe when the input buffer outlives every decoded value —
	// client-side reply records are freshly allocated per record, so
	// always safe there; server-side packet buffers are pooled, so
	// handlers opt in only when they consume the bytes synchronously.
	borrow bool

	// Wire-copy accounting for payload-class opaques, mirroring the
	// Encoder's: bytes copied out versus borrowed.
	copied   uint64
	borrowed uint64

	// ctx is the opaque per-record context (see SetCtx).
	ctx interface{}
}

// NewDecoder returns a Decoder reading from data.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// SetCtx attaches an opaque per-record context to the decoder — the
// RPC layer's stage clock rides here through handler signatures that
// only see the Decoder. Storing a pointer in the interface does not
// allocate.
func (d *Decoder) SetCtx(v interface{}) { d.ctx = v }

// Ctx returns the context set by SetCtx, nil if none.
func (d *Decoder) Ctx() interface{} { return d.ctx }

// SetBorrow toggles borrow mode for subsequently decoded []byte
// fields (see the field comment for the safety rule).
func (d *Decoder) SetBorrow(on bool) { d.borrow = on }

// CopiedBytes returns how many payload-class opaque bytes were copied
// out of the input buffer while decoding.
func (d *Decoder) CopiedBytes() uint64 { return d.copied }

// BorrowedBytes returns how many payload-class opaque bytes were
// handed out as aliases of the input buffer.
func (d *Decoder) BorrowedBytes() uint64 { return d.borrowed }

// Remaining reports how many undecoded bytes remain.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Uint32 decodes a 4-byte big-endian value.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Uint64 decodes an 8-byte big-endian value.
func (d *Decoder) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Bool decodes an XDR boolean; any nonzero discriminant is an error.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("xdr: invalid bool discriminant %d", v)
}

// FixedOpaque decodes n bytes plus padding. The result aliases the
// decoder's buffer.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 || n > MaxElements {
		return nil, ErrTooLong
	}
	padded := (n + 3) &^ 3
	if d.Remaining() < padded {
		return nil, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off : d.off+n]
	for _, p := range d.buf[d.off+n : d.off+padded] {
		if p != 0 {
			return nil, errors.New("xdr: nonzero padding")
		}
	}
	d.off += padded
	return b, nil
}

// Opaque decodes a variable-length opaque.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	return d.FixedOpaque(int(n))
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Decode reads the next value into v, a non-nil pointer.
func (d *Decoder) Decode(v interface{}) error {
	if u, ok := v.(Unmarshaler); ok {
		return u.UnmarshalXDR(d)
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return errors.New("xdr: Decode target must be a non-nil pointer")
	}
	return d.decodeValue(rv.Elem())
}

func (d *Decoder) decodeValue(rv reflect.Value) error {
	if rv.CanAddr() {
		if u, ok := rv.Addr().Interface().(Unmarshaler); ok {
			return u.UnmarshalXDR(d)
		}
	}
	switch rv.Kind() {
	case reflect.Bool:
		v, err := d.Bool()
		if err != nil {
			return err
		}
		rv.SetBool(v)
	case reflect.Int8, reflect.Int16, reflect.Int32:
		v, err := d.Uint32()
		if err != nil {
			return err
		}
		rv.SetInt(int64(int32(v)))
	case reflect.Uint8, reflect.Uint16, reflect.Uint32:
		v, err := d.Uint32()
		if err != nil {
			return err
		}
		rv.SetUint(uint64(v))
	case reflect.Int, reflect.Int64:
		v, err := d.Uint64()
		if err != nil {
			return err
		}
		rv.SetInt(int64(v))
	case reflect.Uint, reflect.Uint64:
		v, err := d.Uint64()
		if err != nil {
			return err
		}
		rv.SetUint(v)
	case reflect.Float64:
		v, err := d.Uint64()
		if err != nil {
			return err
		}
		rv.SetFloat(math.Float64frombits(v))
	case reflect.String:
		s, err := d.String()
		if err != nil {
			return err
		}
		rv.SetString(s)
	case reflect.Slice:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			b, err := d.Opaque()
			if err != nil {
				return err
			}
			if len(b) >= BorrowThreshold {
				if d.borrow {
					d.borrowed += uint64(len(b))
					rv.SetBytes(b)
					return nil
				}
				d.copied += uint64(len(b))
			}
			c := make([]byte, len(b))
			copy(c, b)
			rv.SetBytes(c)
			return nil
		}
		n, err := d.Uint32()
		if err != nil {
			return err
		}
		if n > MaxElements {
			return ErrTooLong
		}
		s := reflect.MakeSlice(rv.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := d.decodeValue(s.Index(i)); err != nil {
				return err
			}
		}
		rv.Set(s)
	case reflect.Array:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			b, err := d.FixedOpaque(rv.Len())
			if err != nil {
				return err
			}
			reflect.Copy(rv, reflect.ValueOf(b))
			return nil
		}
		for i := 0; i < rv.Len(); i++ {
			if err := d.decodeValue(rv.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Ptr:
		present, err := d.Bool()
		if err != nil {
			return err
		}
		if !present {
			rv.Set(reflect.Zero(rv.Type()))
			return nil
		}
		nv := reflect.New(rv.Type().Elem())
		if err := d.decodeValue(nv.Elem()); err != nil {
			return err
		}
		rv.Set(nv)
	case reflect.Struct:
		t := rv.Type()
		for i := 0; i < rv.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue
			}
			if err := d.decodeValue(rv.Field(i)); err != nil {
				return fmt.Errorf("xdr: field %s.%s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
	default:
		return fmt.Errorf("xdr: unsupported type %s", rv.Type())
	}
	return nil
}
