// Package xdr implements the External Data Representation standard
// (RFC 1832) used by every wire protocol in this repository.
//
// SFS defines all of its cryptographic and file-system messages as XDR
// data structures and computes hashes and public-key functions over the
// raw marshaled bytes (paper §3.2). This package therefore provides a
// deterministic, reflection-based encoder and decoder for Go values:
//
//	bool              -> XDR bool (4 bytes)
//	int32/uint32      -> 4-byte big endian
//	int64/uint64      -> 8-byte big endian ("hyper")
//	string            -> variable-length opaque with length prefix
//	[]byte            -> variable-length opaque
//	[N]byte           -> fixed-length opaque
//	[]T               -> variable-length array
//	[N]T              -> fixed-length array
//	*T                -> XDR optional-data (bool followed by T if set)
//	struct            -> fields in declaration order
//
// Types may instead implement Marshaler/Unmarshaler for union types and
// other representations XDR cannot express structurally.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"sync"
)

// MaxElements bounds the length accepted for any variable-length item
// while decoding, protecting servers from memory-exhaustion attacks by
// malformed length prefixes.
const MaxElements = 16 << 20

var (
	// ErrTrailingBytes is reported by Unmarshal when input remains
	// after the top-level value has been decoded.
	ErrTrailingBytes = errors.New("xdr: trailing bytes after value")
	// ErrTooLong is reported when a decoded length prefix exceeds
	// MaxElements or an encoded item exceeds a declared bound.
	ErrTooLong = errors.New("xdr: length exceeds maximum")
)

// Marshaler is implemented by types that encode themselves.
type Marshaler interface {
	MarshalXDR(e *Encoder) error
}

// Unmarshaler is implemented by types that decode themselves.
type Unmarshaler interface {
	UnmarshalXDR(d *Decoder) error
}

// Marshal returns the XDR encoding of v.
func Marshal(v interface{}) ([]byte, error) {
	e := &Encoder{}
	if err := e.Encode(v); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

// MustMarshal is Marshal for values the caller knows to be encodable,
// such as fixed protocol structures. It panics on error.
func MustMarshal(v interface{}) []byte {
	b, err := Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("xdr: MustMarshal: %v", err))
	}
	return b
}

// Unmarshal decodes data into v, which must be a non-nil pointer.
// The entire input must be consumed.
func Unmarshal(data []byte, v interface{}) error {
	d := NewDecoder(data)
	if err := d.Decode(v); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return ErrTrailingBytes
	}
	return nil
}

// An Encoder appends XDR-encoded values to an internal buffer.
// The zero value is ready for use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded bytes accumulated so far. The returned
// slice aliases the encoder's buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset empties the encoder, retaining its buffer for reuse. Bytes
// previously returned by Bytes are invalidated.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// encoderPool recycles Encoders for the hot wire path: one RPC needs
// one encoder for the call or reply, and the marshaled bytes are
// always copied into a framed record before the encoder is released.
var encoderPool = sync.Pool{New: func() interface{} { return &Encoder{} }}

// maxPooledBuf bounds the scratch retained by a pooled encoder so one
// huge record (e.g. a 64 MB READ) cannot pin memory forever.
const maxPooledBuf = 1 << 20

// GetEncoder returns an empty Encoder from the package pool.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns e to the pool. The caller must not touch e or
// any slice returned by e.Bytes() afterwards.
func PutEncoder(e *Encoder) {
	if cap(e.buf) > maxPooledBuf {
		return
	}
	encoderPool.Put(e)
}

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// PutUint32 appends a 4-byte big-endian value.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// PutUint64 appends an 8-byte big-endian value.
func (e *Encoder) PutUint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// PutBool appends an XDR boolean.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFixedOpaque appends b with zero padding to a 4-byte boundary and
// no length prefix.
func (e *Encoder) PutFixedOpaque(b []byte) {
	e.buf = append(e.buf, b...)
	for i := len(b); i%4 != 0; i++ {
		e.buf = append(e.buf, 0)
	}
}

// PutOpaque appends a variable-length opaque: length prefix, bytes,
// padding.
func (e *Encoder) PutOpaque(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.PutFixedOpaque(b)
}

// PutString appends an XDR string.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	for i := len(s); i%4 != 0; i++ {
		e.buf = append(e.buf, 0)
	}
}

// Encode appends the XDR encoding of v.
func (e *Encoder) Encode(v interface{}) error {
	if m, ok := v.(Marshaler); ok {
		return m.MarshalXDR(e)
	}
	return e.encodeValue(reflect.ValueOf(v))
}

func (e *Encoder) encodeValue(rv reflect.Value) error {
	if !rv.IsValid() {
		return errors.New("xdr: cannot encode invalid value")
	}
	if rv.CanInterface() {
		if m, ok := rv.Interface().(Marshaler); ok {
			return m.MarshalXDR(e)
		}
		if rv.CanAddr() {
			if m, ok := rv.Addr().Interface().(Marshaler); ok {
				return m.MarshalXDR(e)
			}
		}
	}
	switch rv.Kind() {
	case reflect.Bool:
		e.PutBool(rv.Bool())
	case reflect.Int8, reflect.Int16, reflect.Int32:
		e.PutUint32(uint32(int32(rv.Int())))
	case reflect.Uint8, reflect.Uint16, reflect.Uint32:
		e.PutUint32(uint32(rv.Uint()))
	case reflect.Int, reflect.Int64:
		e.PutUint64(uint64(rv.Int()))
	case reflect.Uint, reflect.Uint64:
		e.PutUint64(rv.Uint())
	case reflect.Float64:
		e.PutUint64(math.Float64bits(rv.Float()))
	case reflect.String:
		if rv.Len() > MaxElements {
			return ErrTooLong
		}
		e.PutString(rv.String())
	case reflect.Slice:
		if rv.Len() > MaxElements {
			return ErrTooLong
		}
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			e.PutOpaque(rv.Bytes())
			return nil
		}
		e.PutUint32(uint32(rv.Len()))
		for i := 0; i < rv.Len(); i++ {
			if err := e.encodeValue(rv.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Array:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			b := make([]byte, rv.Len())
			reflect.Copy(reflect.ValueOf(b), rv)
			e.PutFixedOpaque(b)
			return nil
		}
		for i := 0; i < rv.Len(); i++ {
			if err := e.encodeValue(rv.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Ptr:
		if rv.IsNil() {
			e.PutBool(false)
			return nil
		}
		e.PutBool(true)
		return e.encodeValue(rv.Elem())
	case reflect.Struct:
		t := rv.Type()
		for i := 0; i < rv.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue // unexported
			}
			if err := e.encodeValue(rv.Field(i)); err != nil {
				return fmt.Errorf("xdr: field %s.%s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
	default:
		return fmt.Errorf("xdr: unsupported type %s", rv.Type())
	}
	return nil
}

// A Decoder reads XDR values from a byte slice.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a Decoder reading from data.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Remaining reports how many undecoded bytes remain.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Uint32 decodes a 4-byte big-endian value.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Uint64 decodes an 8-byte big-endian value.
func (d *Decoder) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Bool decodes an XDR boolean; any nonzero discriminant is an error.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("xdr: invalid bool discriminant %d", v)
}

// FixedOpaque decodes n bytes plus padding. The result aliases the
// decoder's buffer.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 || n > MaxElements {
		return nil, ErrTooLong
	}
	padded := (n + 3) &^ 3
	if d.Remaining() < padded {
		return nil, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off : d.off+n]
	for _, p := range d.buf[d.off+n : d.off+padded] {
		if p != 0 {
			return nil, errors.New("xdr: nonzero padding")
		}
	}
	d.off += padded
	return b, nil
}

// Opaque decodes a variable-length opaque.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	return d.FixedOpaque(int(n))
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Decode reads the next value into v, a non-nil pointer.
func (d *Decoder) Decode(v interface{}) error {
	if u, ok := v.(Unmarshaler); ok {
		return u.UnmarshalXDR(d)
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return errors.New("xdr: Decode target must be a non-nil pointer")
	}
	return d.decodeValue(rv.Elem())
}

func (d *Decoder) decodeValue(rv reflect.Value) error {
	if rv.CanAddr() {
		if u, ok := rv.Addr().Interface().(Unmarshaler); ok {
			return u.UnmarshalXDR(d)
		}
	}
	switch rv.Kind() {
	case reflect.Bool:
		v, err := d.Bool()
		if err != nil {
			return err
		}
		rv.SetBool(v)
	case reflect.Int8, reflect.Int16, reflect.Int32:
		v, err := d.Uint32()
		if err != nil {
			return err
		}
		rv.SetInt(int64(int32(v)))
	case reflect.Uint8, reflect.Uint16, reflect.Uint32:
		v, err := d.Uint32()
		if err != nil {
			return err
		}
		rv.SetUint(uint64(v))
	case reflect.Int, reflect.Int64:
		v, err := d.Uint64()
		if err != nil {
			return err
		}
		rv.SetInt(int64(v))
	case reflect.Uint, reflect.Uint64:
		v, err := d.Uint64()
		if err != nil {
			return err
		}
		rv.SetUint(v)
	case reflect.Float64:
		v, err := d.Uint64()
		if err != nil {
			return err
		}
		rv.SetFloat(math.Float64frombits(v))
	case reflect.String:
		s, err := d.String()
		if err != nil {
			return err
		}
		rv.SetString(s)
	case reflect.Slice:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			b, err := d.Opaque()
			if err != nil {
				return err
			}
			c := make([]byte, len(b))
			copy(c, b)
			rv.SetBytes(c)
			return nil
		}
		n, err := d.Uint32()
		if err != nil {
			return err
		}
		if n > MaxElements {
			return ErrTooLong
		}
		s := reflect.MakeSlice(rv.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := d.decodeValue(s.Index(i)); err != nil {
				return err
			}
		}
		rv.Set(s)
	case reflect.Array:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			b, err := d.FixedOpaque(rv.Len())
			if err != nil {
				return err
			}
			reflect.Copy(rv, reflect.ValueOf(b))
			return nil
		}
		for i := 0; i < rv.Len(); i++ {
			if err := d.decodeValue(rv.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Ptr:
		present, err := d.Bool()
		if err != nil {
			return err
		}
		if !present {
			rv.Set(reflect.Zero(rv.Type()))
			return nil
		}
		nv := reflect.New(rv.Type().Elem())
		if err := d.decodeValue(nv.Elem()); err != nil {
			return err
		}
		rv.Set(nv)
	case reflect.Struct:
		t := rv.Type()
		for i := 0; i < rv.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue
			}
			if err := d.decodeValue(rv.Field(i)); err != nil {
				return fmt.Errorf("xdr: field %s.%s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
	default:
		return fmt.Errorf("xdr: unsupported type %s", rv.Type())
	}
	return nil
}
