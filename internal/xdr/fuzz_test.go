package xdr

import (
	"testing"
	"testing/quick"
)

// Random bytes fed to the decoder must fail cleanly, never panic or
// spin — servers decode attacker-supplied bytes.
func TestQuickDecodeRobustness(t *testing.T) {
	type deep struct {
		A    uint32
		Name string
		Opt  *struct {
			X    int64
			Blob []byte
		}
		List []struct {
			Tag  [4]byte
			Vals []uint32
		}
	}
	f := func(junk []byte) bool {
		var out deep
		// Any result is fine as long as it returns.
		_ = Unmarshal(junk, &out)
		d := NewDecoder(junk)
		_, _ = d.Opaque()
		_, _ = d.String()
		_, _ = d.Bool()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Encodings of valid values always decode to the same value even when
// embedded among other fields (framing property).
func TestQuickFramingComposition(t *testing.T) {
	type pair struct {
		First  []byte
		Second string
		Third  uint64
	}
	f := func(a []byte, b string, c uint64) bool {
		in := pair{First: a, Second: b, Third: c}
		if a == nil {
			in.First = []byte{}
		}
		enc, err := Marshal(in)
		if err != nil {
			return false
		}
		var out pair
		if err := Unmarshal(enc, &out); err != nil {
			return false
		}
		return string(out.First) == string(in.First) && out.Second == b && out.Third == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
