package xdr

import (
	"testing"
)

// benchMsg is shaped like the hot wire structures: a fixed header of
// integers, an authenticator-style opaque, and an NFS READ-sized
// payload.
type benchMsg struct {
	XID    uint32
	Prog   uint32
	Vers   uint32
	Proc   uint32
	Flavor uint32
	Body   []byte
	Offset uint64
	Data   []byte
}

// BenchmarkEncodeDecodeRoundTrip measures the full marshal/unmarshal
// cycle of a READ-reply-sized message, the per-RPC cost the pooled
// encoder path is meant to keep allocation-light.
func BenchmarkEncodeDecodeRoundTrip(b *testing.B) {
	msg := benchMsg{
		XID: 7, Prog: 100003, Vers: 3, Proc: 6, Flavor: 390041,
		Body:   []byte{0, 0, 0, 1},
		Offset: 1 << 20,
		Data:   make([]byte, 8192),
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(msg.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		if err := e.Encode(msg); err != nil {
			b.Fatal(err)
		}
		var out benchMsg
		if err := Unmarshal(e.Bytes(), &out); err != nil {
			b.Fatal(err)
		}
		PutEncoder(e)
	}
}

// BenchmarkEncodeOnly isolates the encode half (the server reply
// path: one pooled encoder per dispatched call).
func BenchmarkEncodeOnly(b *testing.B) {
	msg := benchMsg{
		XID: 7, Prog: 100003, Vers: 3, Proc: 6, Flavor: 390041,
		Body:   []byte{0, 0, 0, 1},
		Offset: 1 << 20,
		Data:   make([]byte, 8192),
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(msg.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		if err := e.Encode(msg); err != nil {
			b.Fatal(err)
		}
		PutEncoder(e)
	}
}
