package xdr

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, in, out interface{}) {
	t.Helper()
	b, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal(%#v): %v", in, err)
	}
	if len(b)%4 != 0 {
		t.Fatalf("Marshal(%#v): length %d not a multiple of 4", in, len(b))
	}
	if err := Unmarshal(b, out); err != nil {
		t.Fatalf("Unmarshal(%x): %v", b, err)
	}
	got := reflect.ValueOf(out).Elem().Interface()
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip: got %#v, want %#v", got, in)
	}
}

func TestScalars(t *testing.T) {
	var b bool
	roundTrip(t, true, &b)
	roundTrip(t, false, &b)
	var i32 int32
	roundTrip(t, int32(-5), &i32)
	roundTrip(t, int32(math.MaxInt32), &i32)
	var u32 uint32
	roundTrip(t, uint32(0xdeadbeef), &u32)
	var i64 int64
	roundTrip(t, int64(math.MinInt64), &i64)
	var u64 uint64
	roundTrip(t, uint64(math.MaxUint64), &u64)
	var f float64
	roundTrip(t, 3.14159, &f)
}

func TestStringEncoding(t *testing.T) {
	b, err := Marshal("hi")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 0, 2, 'h', 'i', 0, 0}
	if !bytes.Equal(b, want) {
		t.Fatalf("got %x, want %x", b, want)
	}
	var s string
	roundTrip(t, "", &s)
	roundTrip(t, "abcd", &s)
	roundTrip(t, "abcde", &s)
}

func TestOpaque(t *testing.T) {
	var v []byte
	roundTrip(t, []byte{1, 2, 3}, &v)
	roundTrip(t, []byte{}, &v)
	var a [20]byte
	in := [20]byte{1, 2, 3, 19: 9}
	roundTrip(t, in, &a)
	b := MustMarshal(in)
	if len(b) != 20 {
		t.Fatalf("fixed [20]byte encoded to %d bytes, want 20", len(b))
	}
}

func TestFixedOpaquePadding(t *testing.T) {
	var a [3]byte
	b := MustMarshal([3]byte{1, 2, 3})
	if len(b) != 4 {
		t.Fatalf("fixed [3]byte encoded to %d bytes, want 4", len(b))
	}
	if err := Unmarshal(b, &a); err != nil {
		t.Fatal(err)
	}
	// Nonzero padding must be rejected.
	b[3] = 1
	if err := Unmarshal(b, &a); err == nil {
		t.Fatal("nonzero padding accepted")
	}
}

type inner struct {
	A uint32
	B string
}

type outer struct {
	X    int64
	Name string
	In   inner
	List []inner
	Opt  *inner
	Raw  []byte
	Tag  [4]byte
}

func TestStructRoundTrip(t *testing.T) {
	in := outer{
		X:    -77,
		Name: "struct",
		In:   inner{A: 9, B: "nested"},
		List: []inner{{A: 1, B: "x"}, {A: 2, B: "yy"}},
		Opt:  &inner{A: 3, B: "opt"},
		Raw:  []byte{0xca, 0xfe},
		Tag:  [4]byte{'t', 'a', 'g', '!'},
	}
	var out outer
	roundTrip(t, in, &out)
}

func TestOptionalNil(t *testing.T) {
	in := outer{List: []inner{}, Raw: []byte{}}
	var out outer
	roundTrip(t, in, &out)
	if out.Opt != nil {
		t.Fatal("nil optional decoded as non-nil")
	}
}

func TestUnexportedFieldsSkipped(t *testing.T) {
	type mixed struct {
		A uint32
		b uint32 //nolint:unused // tests that unexported fields are skipped
		C uint32
	}
	in := mixed{A: 1, C: 3}
	b := MustMarshal(in)
	if len(b) != 8 {
		t.Fatalf("got %d bytes, want 8", len(b))
	}
	var out mixed
	if err := Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != 1 || out.C != 3 {
		t.Fatalf("got %+v", out)
	}
}

func TestTrailingBytes(t *testing.T) {
	b := MustMarshal(uint32(1))
	b = append(b, 0, 0, 0, 0)
	var v uint32
	if err := Unmarshal(b, &v); err != ErrTrailingBytes {
		t.Fatalf("got %v, want ErrTrailingBytes", err)
	}
}

func TestTruncatedInput(t *testing.T) {
	in := outer{Name: "truncate-me", Raw: []byte{1, 2, 3, 4, 5}}
	b := MustMarshal(in)
	for n := 0; n < len(b); n++ {
		var out outer
		if err := Unmarshal(b[:n], &out); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestHugeLengthRejected(t *testing.T) {
	e := &Encoder{}
	e.PutUint32(0xffffffff)
	var v []byte
	if err := Unmarshal(e.Bytes(), &v); err == nil {
		t.Fatal("huge opaque length accepted")
	}
	var s []uint32
	if err := Unmarshal(e.Bytes(), &s); err == nil {
		t.Fatal("huge array length accepted")
	}
}

func TestInvalidBool(t *testing.T) {
	e := &Encoder{}
	e.PutUint32(2)
	var v bool
	if err := Unmarshal(e.Bytes(), &v); err == nil {
		t.Fatal("bool discriminant 2 accepted")
	}
}

func TestDeterminism(t *testing.T) {
	in := outer{Name: "det", List: []inner{{A: 5}}, Raw: []byte{9}}
	a := MustMarshal(in)
	b := MustMarshal(in)
	if !bytes.Equal(a, b) {
		t.Fatal("marshaling is not deterministic")
	}
}

// quick-check property: every randomly generated structure round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(x int64, s string, raw []byte, list []uint32, opt bool) bool {
		type msg struct {
			X    int64
			S    string
			Raw  []byte
			List []uint32
			Opt  *uint32
		}
		in := msg{X: x, S: s, Raw: raw, List: list}
		if raw == nil {
			in.Raw = []byte{}
		}
		if list == nil {
			in.List = []uint32{}
		}
		if opt {
			v := uint32(len(s))
			in.Opt = &v
		}
		b, err := Marshal(in)
		if err != nil {
			return false
		}
		var out msg
		if err := Unmarshal(b, &out); err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

type custom struct {
	kind uint32
	data string
}

func (c custom) MarshalXDR(e *Encoder) error {
	e.PutUint32(c.kind)
	if c.kind == 1 {
		e.PutString(c.data)
	}
	return nil
}

func (c *custom) UnmarshalXDR(d *Decoder) error {
	k, err := d.Uint32()
	if err != nil {
		return err
	}
	c.kind = k
	if k == 1 {
		s, err := d.String()
		if err != nil {
			return err
		}
		c.data = s
	}
	return nil
}

func TestCustomMarshaler(t *testing.T) {
	in := custom{kind: 1, data: "union arm"}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out custom
	if err := Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
	// Union arm 0 carries no body.
	in0 := custom{kind: 0}
	b0 := MustMarshal(in0)
	if len(b0) != 4 {
		t.Fatalf("arm 0 encoded to %d bytes, want 4", len(b0))
	}
}

func TestCustomMarshalerInsideStruct(t *testing.T) {
	type holder struct {
		Before uint32
		C      custom
		After  uint32
	}
	in := holder{Before: 1, C: custom{kind: 1, data: "inner"}, After: 2}
	b := MustMarshal(in)
	var out holder
	if err := Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func BenchmarkMarshalStruct(b *testing.B) {
	in := outer{
		X:    -77,
		Name: "struct",
		In:   inner{A: 9, B: "nested"},
		List: []inner{{A: 1, B: "x"}, {A: 2, B: "yy"}},
		Raw:  bytes.Repeat([]byte{0xab}, 512),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalStruct(b *testing.B) {
	in := outer{Name: "struct", Raw: bytes.Repeat([]byte{0xab}, 512), List: []inner{}}
	data := MustMarshal(in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out outer
		if err := Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}
