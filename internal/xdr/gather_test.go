package xdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

// flatten joins an encoder's segments into one contiguous byte slice,
// the reference form a gathered encoding is compared against.
func flatten(e *Encoder) []byte {
	var out []byte
	for _, s := range e.Segments() {
		out = append(out, s...)
	}
	return out
}

// A gathered encoding must be byte-identical to the flat encoding of
// the same Put sequence, across segment boundaries, odd padding, and
// zero-length opaques.
func TestGatherFlatEquivalence(t *testing.T) {
	big := make([]byte, BorrowThreshold+5) // odd length: forces padding after a borrow
	for i := range big {
		big[i] = byte(i * 7)
	}
	big2 := make([]byte, 4*BorrowThreshold)
	for i := range big2 {
		big2[i] = byte(i * 13)
	}
	puts := []func(e *Encoder){
		func(e *Encoder) { e.PutUint32(0xdeadbeef) },
		func(e *Encoder) { e.PutOpaque(nil) },            // zero-length opaque
		func(e *Encoder) { e.PutOpaque(big) },            // borrowed, odd padding
		func(e *Encoder) { e.PutOpaque([]byte("tiny")) }, // below threshold, owned
		func(e *Encoder) { e.PutFixedOpaque(big2) },      // borrowed, aligned
		func(e *Encoder) { e.PutString("hello") },
		func(e *Encoder) { e.PutOpaque(big2) }, // adjacent borrows
		func(e *Encoder) { e.PutFixedOpaque(big) },
		func(e *Encoder) { e.PutUint64(42) },
	}

	var flat, gather Encoder
	gather.SetGather(true)
	for _, put := range puts {
		put(&flat)
		put(&gather)
	}
	want := flat.Bytes()
	got := flatten(&gather)
	if !bytes.Equal(want, got) {
		t.Fatalf("gathered encoding differs: flat %d bytes, gathered %d bytes", len(want), len(got))
	}
	if gather.Len() != flat.Len() {
		t.Fatalf("Len mismatch: gather %d, flat %d", gather.Len(), flat.Len())
	}
	if gather.BorrowedBytes() == 0 || gather.CopiedBytes() != 0 {
		t.Fatalf("gather accounting: borrowed=%d copied=%d, want borrowed>0 copied=0",
			gather.BorrowedBytes(), gather.CopiedBytes())
	}
	wantPayload := uint64(2*len(big) + 2*len(big2))
	if flat.PayloadBytes() != wantPayload || flat.CopiedBytes() != wantPayload {
		t.Fatalf("flat accounting: payload=%d copied=%d, want both %d",
			flat.PayloadBytes(), flat.CopiedBytes(), wantPayload)
	}
}

// Reflection-encoded structs carrying payload-class []byte fields
// borrow in gather mode and still produce identical bytes.
func TestGatherReflectionEquivalence(t *testing.T) {
	type readRes struct {
		Status uint32
		Count  uint32
		EOF    bool
		Data   []byte
	}
	v := readRes{Status: 0, Count: 8192, EOF: false, Data: bytes.Repeat([]byte{0xa5}, 8192)}

	var flat, gather Encoder
	gather.SetGather(true)
	if err := flat.Encode(&v); err != nil {
		t.Fatal(err)
	}
	if err := gather.Encode(&v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(flat.Bytes(), flatten(&gather)) {
		t.Fatal("reflection gathered encoding differs from flat")
	}
	if gather.BorrowedBytes() != 8192 {
		t.Fatalf("borrowed = %d, want 8192", gather.BorrowedBytes())
	}
	// The borrow really is a borrow: the segment list must alias v.Data.
	found := false
	for _, s := range gather.Segments() {
		if len(s) == len(v.Data) && &s[0] == &v.Data[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("no segment aliases the caller's Data slice; payload was copied")
	}
}

// Bytes() must refuse to serve a partial encoding while borrows are
// pending — the owned buffer alone is not the record.
func TestBytesPanicsWithBorrows(t *testing.T) {
	var e Encoder
	e.SetGather(true)
	e.PutOpaque(make([]byte, BorrowThreshold))
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes() with pending borrows did not panic")
		}
	}()
	_ = e.Bytes()
}

// Reset and PutEncoder must drop borrowed-slice references so pooled
// encoders never pin caller memory, and GetEncoder must hand back an
// encoder with gather off.
func TestResetDropsBorrows(t *testing.T) {
	e := GetEncoder()
	e.SetGather(true)
	e.PutOpaque(make([]byte, BorrowThreshold))
	e.Reset()
	if len(e.marks) != 0 || e.borrowed != 0 || e.Len() != 0 {
		t.Fatalf("Reset left marks=%d borrowed=%d len=%d", len(e.marks), e.borrowed, e.Len())
	}
	if !e.gather {
		t.Fatal("Reset must retain gather mode")
	}
	PutEncoder(e)
	if g := GetEncoder(); g.gather {
		t.Fatal("GetEncoder returned an encoder with gather on")
	}
}

// Regression for the Bytes() aliasing hazard: a slice retained past
// PutEncoder must read as poison under the debug mode, proving the
// use-after-put is detectable instead of silently corrupting the next
// record that recycles the buffer.
func TestPoisonOnPutCatchesUseAfterPut(t *testing.T) {
	SetPoisonOnPut(true)
	defer SetPoisonOnPut(false)

	e := GetEncoder()
	e.PutUint32(0x01020304)
	leaked := e.Bytes()
	PutEncoder(e)

	for i, b := range leaked {
		if b != PoisonByte {
			t.Fatalf("leaked[%d] = %#x after PutEncoder, want poison %#x — use-after-put undetected", i, b, PoisonByte)
		}
	}
}

// Decoder borrow mode: payload-class []byte fields alias the input
// buffer; small fields are still copied; borrow off copies everything.
func TestDecoderBorrow(t *testing.T) {
	type msg struct {
		Small []byte
		Big   []byte
	}
	in := msg{Small: []byte("abc"), Big: bytes.Repeat([]byte{7}, BorrowThreshold)}
	enc := MustMarshal(in)

	d := NewDecoder(enc)
	d.SetBorrow(true)
	var out msg
	if err := d.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if d.BorrowedBytes() != uint64(len(in.Big)) || d.CopiedBytes() != 0 {
		t.Fatalf("borrow accounting: borrowed=%d copied=%d", d.BorrowedBytes(), d.CopiedBytes())
	}
	// Big aliases enc; Small must not (below threshold).
	enc[len(enc)-1] ^= 0xff // last byte of Big's padding-free payload region
	if out.Big[len(out.Big)-1] == in.Big[len(in.Big)-1] {
		t.Fatal("Big does not alias the input buffer in borrow mode")
	}
	out.Small[0] = 'z'
	if enc[4] == 'z' { // first opaque's first payload byte
		t.Fatal("Small aliases the input buffer; sub-threshold fields must copy")
	}

	d2 := NewDecoder(MustMarshal(in))
	var out2 msg
	if err := d2.Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if d2.CopiedBytes() != uint64(len(in.Big)) || d2.BorrowedBytes() != 0 {
		t.Fatalf("no-borrow accounting: borrowed=%d copied=%d", d2.BorrowedBytes(), d2.CopiedBytes())
	}
}

// Property check: for random segment mixes straddling the borrow
// threshold, gather and flat encoders agree byte-for-byte and the
// result round-trips through the decoder.
func TestQuickGatherFlatEquivalence(t *testing.T) {
	f := func(chunks [][]byte, grow []byte) bool {
		// Stretch some chunks past the threshold so borrows happen.
		for i := range chunks {
			if i%2 == 0 && len(chunks[i]) > 0 {
				for len(chunks[i]) < BorrowThreshold+len(chunks[i])%7 {
					chunks[i] = append(chunks[i], chunks[i]...)
				}
			}
		}
		var flat, gather Encoder
		gather.SetGather(true)
		for i, c := range chunks {
			if i%3 == 0 {
				flat.PutFixedOpaque(c)
				gather.PutFixedOpaque(c)
			} else {
				flat.PutOpaque(c)
				gather.PutOpaque(c)
			}
			flat.PutUint32(uint32(i))
			gather.PutUint32(uint32(i))
		}
		flat.PutOpaque(grow)
		gather.PutOpaque(grow)
		return bytes.Equal(flat.Bytes(), flatten(&gather))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
