package bench

// The scalability figure: C concurrent client daemons, each over its
// own secure channel, running a mixed 8 KB read/write workload against
// ONE sfssd — the experiment behind the sharded server hot path. The
// paper never plots this (its evaluation is single-client), but the
// north star is a server for many users, so aggregate throughput vs
// client count is the figure that keeps the locking honest: with the
// old process-wide locks the curve was flat.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/secchan"
	"repro/internal/vfs"
)

// SFSCluster is one SFS server with N independent client daemons.
type SFSCluster struct {
	sv      *sfsServer
	Clients []*client.Client
}

// NewSFSCluster boots the full SFS stack (encryption and enhanced
// caching on) with n client daemons, each with its own channel keys.
func NewSFSCluster(fs *vfs.FS, n int) (*SFSCluster, error) {
	return newSFSClusterOpts(fs, n, SFSOptions{Encrypt: true, EnhancedCaching: true})
}

// newSFSClusterOpts is NewSFSCluster with explicit ablation knobs —
// the warm-read figure uses it to boot clusters with the data cache
// enabled.
func newSFSClusterOpts(fs *vfs.FS, n int, opts SFSOptions) (*SFSCluster, error) {
	sv, err := startSFSServer(fs, opts)
	if err != nil {
		return nil, err
	}
	c := &SFSCluster{sv: sv}
	for i := 0; i < n; i++ {
		cl, err := sv.newClient(fmt.Sprintf("bench-scal-client-%d", i), opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Clients = append(c.Clients, cl)
	}
	return c, nil
}

// Base returns the self-certifying pathname of the served root.
func (c *SFSCluster) Base() string { return c.sv.base }

// ServerStats snapshots the server-side NFS counters (which now carry
// the vfs lock-shard and lease-stripe contention numbers too).
func (c *SFSCluster) ServerStats() (nfs.ServerStats, bool) {
	return c.sv.master.NFSStats(c.sv.location)
}

// Close tears the cluster down.
func (c *SFSCluster) Close() {
	secchan.SetEncryption(true)
	c.sv.ln.Close()
}

// ScalPoint is one measured point of the scalability curve.
type ScalPoint struct {
	Clients int
	Elapsed time.Duration
	// Bytes moved across all clients (reads + writes).
	Bytes int64
	// RPCs that crossed all wires during the run.
	RPCs uint64
}

// MBps is the aggregate throughput across the cluster.
func (p ScalPoint) MBps() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Bytes) / 1e6 / p.Elapsed.Seconds()
}

// RPCps is the aggregate server RPC rate.
func (p ScalPoint) RPCps() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.RPCs) / p.Elapsed.Seconds()
}

// workingSetChunks is each client's file size in 8 KB chunks. Small
// enough to stay cache-resident (the experiment measures locking, not
// the disk model), large enough that reads and writes spread across
// offsets.
const workingSetChunks = 32

// ScalabilityPoint runs the mixed 8 KB read/write workload —
// alternating writes and reads over a per-client file with a COMMIT
// every 16 operations — with `clients` concurrent client daemons
// moving bytesPerClient each, and returns the aggregate measurements
// plus the server counter snapshot.
func ScalabilityPoint(clients int, bytesPerClient int64) (ScalPoint, nfs.ServerStats, error) {
	fs := vfs.New()
	fs.SetDisk(netsim.NewDisk())
	cluster, err := NewSFSCluster(fs, clients)
	if err != nil {
		return ScalPoint{}, nfs.ServerStats{}, err
	}
	defer cluster.Close()

	const chunk = 8192
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte(i * 13)
	}

	// Priming (untimed): every client creates and fills its own file
	// so the timed region measures steady-state data-path traffic,
	// not cold creates.
	files := make([]*client.File, clients)
	for i, cl := range cluster.Clients {
		f, err := cl.Create("bench", fmt.Sprintf("%s/scal-%d.bin", cluster.Base(), i), 0o644)
		if err != nil {
			return ScalPoint{}, nfs.ServerStats{}, err
		}
		for c := 0; c < workingSetChunks; c++ {
			if _, err := f.WriteAt(buf, uint64(c*chunk)); err != nil {
				return ScalPoint{}, nfs.ServerStats{}, err
			}
		}
		if err := f.Sync(); err != nil {
			return ScalPoint{}, nfs.ServerStats{}, err
		}
		files[i] = f
	}
	rpcsBefore, err := cluster.totalRPCs()
	if err != nil {
		return ScalPoint{}, nfs.ServerStats{}, err
	}

	ops := int(bytesPerClient / chunk)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range files {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := files[i]
			for op := 0; op < ops; op++ {
				// Offsets rotate through the working set, write and
				// read pointers deliberately out of phase.
				if op%2 == 0 {
					off := uint64((op / 2 % workingSetChunks) * chunk)
					if _, err := f.WriteAt(buf, off); err != nil {
						errs[i] = err
						return
					}
				} else {
					off := uint64(((op/2 + workingSetChunks/2) % workingSetChunks) * chunk)
					rd := make([]byte, chunk)
					if _, err := f.ReadAt(rd, off); err != nil {
						errs[i] = err
						return
					}
				}
				if op%16 == 15 {
					if err := f.Sync(); err != nil {
						errs[i] = err
						return
					}
				}
			}
			errs[i] = f.Sync()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return ScalPoint{}, nfs.ServerStats{}, fmt.Errorf("client %d: %w", i, err)
		}
	}
	rpcsAfter, err := cluster.totalRPCs()
	if err != nil {
		return ScalPoint{}, nfs.ServerStats{}, err
	}
	ss, _ := cluster.ServerStats()
	return ScalPoint{
		Clients: clients,
		Elapsed: elapsed,
		Bytes:   int64(ops) * chunk * int64(clients),
		RPCs:    rpcsAfter - rpcsBefore,
	}, ss, nil
}

// totalRPCs sums wire RPCs across all the cluster's clients.
func (c *SFSCluster) totalRPCs() (uint64, error) {
	var total uint64
	for _, cl := range c.Clients {
		st, err := cl.Stats("bench", c.sv.base)
		if err != nil {
			return 0, err
		}
		total += st.Calls
	}
	return total, nil
}

// FigScalability measures the scalability curve: aggregate throughput
// and RPC rate of the mixed 8 KB read/write workload at 1, 2, 4, 8,
// and 16 concurrent clients against one server.
func FigScalability(opts Options) (*Figure, error) {
	counts := []int{1, 2, 4, 8, 16}
	per := int64(4 << 20)
	if opts.Quick {
		counts = []int{1, 2, 4}
		per = 1 << 20
	}
	fig := &Figure{
		ID:    "Scalability",
		Title: fmt.Sprintf("aggregate SFS throughput vs concurrent clients (mixed 8 KB r/w, %d KB per client)", per>>10),
	}
	for _, n := range counts {
		p, ss, err := ScalabilityPoint(n, per)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d clients", n)
		if n == 1 {
			label = "1 client"
		}
		fig.Rows = append(fig.Rows,
			FigureRow{Stack: label, Phase: "throughput", Value: p.MBps(), Unit: "MB/s", RPCs: p.RPCs},
			FigureRow{Stack: label, Phase: "rpc rate", Value: p.RPCps(), Unit: "RPC/s", RPCs: p.RPCs},
		)
		if fig.Counters == nil {
			fig.Counters = make(map[string]nfs.ServerStats)
		}
		fig.Counters[label] = ss
	}
	fig.render(opts.out())
	return fig, nil
}
