package bench

// The warm-read figure: what the client data block cache (PR 5) buys
// on a sequential re-read, and what coherence costs when another
// client rewrites the file. The paper's client caches only attributes
// and access rights — its data path pays a READ per 8 KB chunk
// forever — so this figure has no paper reference numbers; the
// cacheless ablation row stands in for the paper's client.

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/stats"
	"repro/internal/vfs"
)

// warmCacheBytes sizes the data cache for the warm figure: large
// enough that the whole benchmark file stays resident.
const warmCacheBytes = 16 << 20

const warmChunk = 8192

// seqReadFile reads size bytes of f sequentially in 8 KB chunks.
func seqReadFile(f *client.File, size int64) error {
	buf := make([]byte, warmChunk)
	for off := int64(0); off < size; off += warmChunk {
		if _, err := f.ReadAt(buf, uint64(off)); err != nil {
			return err
		}
	}
	return nil
}

// seqWriteFile fills f with size bytes of pattern v.
func seqWriteFile(f *client.File, size int64, v byte) error {
	buf := bytes.Repeat([]byte{v}, warmChunk)
	for off := int64(0); off < size; off += warmChunk {
		if _, err := f.WriteAt(buf, uint64(off)); err != nil {
			return err
		}
	}
	return f.Sync()
}

// FigWarmRead measures the data cache end to end with two client
// daemons on one server: a cold sequential read, the warm re-read
// (which must cross the wire zero times), the re-read after the other
// client rewrites the file (invalidation callbacks having dropped the
// cached blocks), a cacheless ablation row, and a warm scalability
// point with several clients re-reading their working sets at once.
func FigWarmRead(opts Options) (*Figure, error) {
	size := int64(4 << 20)
	scalClients, scalLoops := 4, 4
	if opts.Quick {
		size = 1 << 20
		scalClients, scalLoops = 2, 2
	}
	fig := &Figure{
		ID:    "Warm read",
		Title: fmt.Sprintf("client data cache: %d MB sequential re-read in 8 KB chunks", size>>20),
	}

	stats.ResetWireCopy()
	fs := vfs.New()
	fs.SetDisk(netsim.NewDisk())
	copts := SFSOptions{Encrypt: true, EnhancedCaching: true, DataCacheBytes: warmCacheBytes}
	cluster, err := newSFSClusterOpts(fs, 2, copts)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	reader, writer := cluster.Clients[0], cluster.Clients[1]
	base := cluster.Base()
	path := base + "/warm.bin"

	// The writer creates and fills the file so the reader's first
	// pass is genuinely cold — nothing the reader wrote itself.
	wf, err := writer.Create("bench", path, 0o644)
	if err != nil {
		return nil, err
	}
	if err := seqWriteFile(wf, size, 'a'); err != nil {
		return nil, err
	}
	rf, err := reader.Open("bench", path)
	if err != nil {
		return nil, err
	}

	readerStats := func() (nfs.Stats, error) { return reader.Stats("bench", base) }
	measure := func(stack, phase string) error {
		before, err := readerStats()
		if err != nil {
			return err
		}
		start := time.Now()
		if err := seqReadFile(rf, size); err != nil {
			return fmt.Errorf("%s/%s: %w", stack, phase, err)
		}
		elapsed := time.Since(start)
		after, err := readerStats()
		if err != nil {
			return err
		}
		fig.Rows = append(fig.Rows, FigureRow{
			Stack: stack, Phase: phase,
			Value: Result{Elapsed: elapsed, Bytes: size}.MBps(), Unit: "MB/s",
			RPCs: after.Calls - before.Calls,
		})
		return nil
	}

	const cached = "SFS (data cache)"
	if err := measure(cached, "cold read"); err != nil {
		return nil, err
	}
	if err := measure(cached, "warm re-read"); err != nil {
		return nil, err
	}

	// Remote rewrite: the server's invalidation callback must reach
	// the reader before the re-read, or we would time a stale cache.
	before, err := readerStats()
	if err != nil {
		return nil, err
	}
	if err := seqWriteFile(wf, size, 'b'); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := readerStats()
		if err != nil {
			return nil, err
		}
		if st.Invals > before.Invals {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: no invalidation callback after remote rewrite")
		}
		time.Sleep(time.Millisecond)
	}
	if err := measure(cached, "re-read after remote write"); err != nil {
		return nil, err
	}

	// Ablation: a third daemon on the same server with the cache off
	// re-reads the same file — every pass pays its READs, the
	// behaviour the paper's client has.
	nocacheCl, err := cluster.sv.newClient("bench-warm-nocache", SFSOptions{
		Encrypt: true, EnhancedCaching: true,
	})
	if err != nil {
		return nil, err
	}
	nf, err := nocacheCl.Open("bench", path)
	if err != nil {
		return nil, err
	}
	if err := seqReadFile(nf, size); err != nil {
		return nil, err
	}
	ncBefore, err := nocacheCl.Stats("bench", base)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := seqReadFile(nf, size); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	ncAfter, err := nocacheCl.Stats("bench", base)
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, FigureRow{
		Stack: "SFS w/o data cache", Phase: "warm re-read",
		Value: Result{Elapsed: elapsed, Bytes: size}.MBps(), Unit: "MB/s",
		RPCs: ncAfter.Calls - ncBefore.Calls,
	})

	if ss, ok := cluster.ServerStats(); ok {
		fig.Counters = map[string]nfs.ServerStats{cached: ss}
	}

	// Warm scalability: several clients re-reading their own cached
	// working sets concurrently — the all-hits path under load.
	p, err := warmReadPoint(scalClients, size/int64(scalClients), scalLoops)
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, FigureRow{
		Stack: fmt.Sprintf("%d clients warm", scalClients), Phase: "aggregate re-read",
		Value: p.MBps(), Unit: "MB/s", RPCs: p.RPCs,
	})

	fig.render(opts.out())
	return fig, nil
}

// warmReadPoint boots a cluster of `clients` daemons with the data
// cache on, primes each client's own file of perClient bytes, then
// times `loops` concurrent sequential re-read passes per client.
func warmReadPoint(clients int, perClient int64, loops int) (ScalPoint, error) {
	fs := vfs.New()
	fs.SetDisk(netsim.NewDisk())
	cluster, err := newSFSClusterOpts(fs, clients, SFSOptions{
		Encrypt: true, EnhancedCaching: true, DataCacheBytes: warmCacheBytes,
	})
	if err != nil {
		return ScalPoint{}, err
	}
	defer cluster.Close()

	files := make([]*client.File, clients)
	for i, cl := range cluster.Clients {
		f, err := cl.Create("bench", fmt.Sprintf("%s/warm-%d.bin", cluster.Base(), i), 0o644)
		if err != nil {
			return ScalPoint{}, err
		}
		if err := seqWriteFile(f, perClient, byte('a'+i%16)); err != nil {
			return ScalPoint{}, err
		}
		if err := seqReadFile(f, perClient); err != nil {
			return ScalPoint{}, err
		}
		files[i] = f
	}
	rpcsBefore, err := cluster.totalRPCs()
	if err != nil {
		return ScalPoint{}, err
	}
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range files {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for l := 0; l < loops; l++ {
				if err := seqReadFile(files[i], perClient); err != nil {
					errs[i] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return ScalPoint{}, fmt.Errorf("warm client %d: %w", i, err)
		}
	}
	rpcsAfter, err := cluster.totalRPCs()
	if err != nil {
		return ScalPoint{}, err
	}
	return ScalPoint{
		Clients: clients,
		Elapsed: elapsed,
		Bytes:   perClient * int64(loops) * int64(clients),
		RPCs:    rpcsAfter - rpcsBefore,
	}, nil
}
