package bench

import (
	"fmt"
	"time"

	"repro/internal/crypto/prng"
)

// Result is one measured phase on one stack.
type Result struct {
	Stack   string
	Phase   string
	Elapsed time.Duration
	// Bytes moved, when the phase is a transfer (0 otherwise).
	Bytes int64
	// RPCs that crossed the wire during the phase.
	RPCs uint64
}

// MBps returns throughput in Mbyte/s for transfer phases.
func (r Result) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// timed runs f and captures elapsed time and RPC delta.
func timed(st Stack, phase string, f func() error) (Result, error) {
	before := st.Stats().Calls
	start := time.Now()
	err := f()
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, fmt.Errorf("%s/%s: %w", st.Name(), phase, err)
	}
	return Result{
		Stack: st.Name(), Phase: phase, Elapsed: elapsed,
		RPCs: st.Stats().Calls - before,
	}, nil
}

// ---------------------------------------------------------------------
// Micro-benchmarks (Figure 5).

// LatencyMicro measures the paper's latency micro-benchmark: an
// unauthorized chown — a file system operation that always requires a
// remote RPC but never a disk access. It returns the per-operation
// latency.
func LatencyMicro(st Stack, iters int) (Result, error) {
	if err := st.WriteFile("latency-probe", []byte("x")); err != nil {
		return Result{}, err
	}
	// Warm caches and connections.
	for i := 0; i < 3; i++ {
		if err := st.ChownFail("latency-probe"); err != nil {
			return Result{}, err
		}
	}
	res, err := timed(st, "latency", func() error {
		for i := 0; i < iters; i++ {
			if err := st.ChownFail("latency-probe"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res.Elapsed /= time.Duration(iters)
	return res, nil
}

// ThroughputMicro measures streaming read bandwidth: sequentially
// reading a sparse file (no disk access) in 8 KB chunks, as the paper
// does with a sparse 1,000 Mbyte file. size is the sparse file size.
func ThroughputMicro(st Stack, size int64) (Result, error) {
	const chunk = 8192
	if err := st.WriteFile("sparse.bin", nil); err != nil {
		return Result{}, err
	}
	if err := st.Truncate("sparse.bin", uint64(size)); err != nil {
		return Result{}, err
	}
	f, err := st.Open("sparse.bin")
	if err != nil {
		return Result{}, err
	}
	buf := make([]byte, chunk)
	res, err := timed(st, "throughput", func() error {
		for off := int64(0); off < size; off += chunk {
			if _, err := f.ReadAt(buf, uint64(off)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res.Bytes = size
	return res, nil
}

// ---------------------------------------------------------------------
// Modified Andrew Benchmark (Figure 6).

// mabSource yields the benchmark's synthetic source tree:
// deterministic pseudo-text so the search phase has real work.
type mabTree struct {
	dirs  []string
	files map[string][]byte
}

func genMABTree() mabTree {
	g := prng.NewSeeded([]byte("mab-tree"))
	t := mabTree{files: make(map[string][]byte)}
	t.dirs = []string{"mab", "mab/src", "mab/include", "mab/lib", "mab/doc"}
	// ~70 small files, a few KB each — the phase-2 copy set.
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("mab/src/file%02d.c", i)
		t.files[name] = genSource(g, 2000+int(g.Uint32()%2000))
	}
	for i := 0; i < 15; i++ {
		name := fmt.Sprintf("mab/include/hdr%02d.h", i)
		t.files[name] = genSource(g, 800+int(g.Uint32()%800))
	}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("mab/doc/notes%d.txt", i)
		t.files[name] = genSource(g, 4000)
	}
	return t
}

// genSource emits n bytes of word-like text that never contains the
// search phase's needle.
func genSource(g *prng.Generator, n int) []byte {
	words := []string{"int", "return", "struct", "buffer", "cache", "lease",
		"server", "client", "handle", "commit", "offset{}", "attr;\n"}
	out := make([]byte, 0, n+8)
	for len(out) < n {
		out = append(out, words[g.Uint32()%uint32(len(words))]...)
		out = append(out, ' ')
	}
	return out
}

// compileBurn models the CPU work of compiling one translation unit.
// The constant is calibrated so the MAB compile phase on Local lands
// near the paper's ≈3 s (Figure 6) at the default unit count.
func compileBurn(d time.Duration) {
	deadline := time.Now().Add(d)
	x := uint64(1)
	for time.Now().Before(deadline) {
		x = x*6364136223846793005 + 1442695040888963407
	}
	_ = x
}

// MABPhases runs the five MAB phases on st and returns one Result per
// phase plus the total.
func MABPhases(st Stack) ([]Result, error) {
	tree := genMABTree()
	var results []Result

	// Phase 1: create directories.
	r, err := timed(st, "directories", func() error {
		for _, d := range tree.dirs {
			if err := st.Mkdir(d); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = append(results, r)

	// Phase 2: copy the files into the tree.
	names := sortedKeys(tree.files)
	r, err = timed(st, "copy", func() error {
		for _, name := range names {
			if err := st.WriteFile(name, tree.files[name]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = append(results, r)

	// Phase 3: stat every file (attribute collection).
	r, err = timed(st, "attributes", func() error {
		for pass := 0; pass < 4; pass++ {
			for _, name := range names {
				if err := st.Stat(name); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = append(results, r)

	// Phase 4: search every byte for a string that does not appear.
	r, err = timed(st, "search", func() error {
		for _, name := range names {
			data, err := st.ReadFile(name)
			if err != nil {
				return err
			}
			if contains(data, []byte("no-such-needle")) {
				return fmt.Errorf("needle unexpectedly found")
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = append(results, r)

	// Phase 5: compile — read each source, burn CPU, write an
	// object file.
	r, err = timed(st, "compile", func() error {
		for _, name := range names {
			if len(name) < 2 || name[len(name)-2:] != ".c" {
				continue
			}
			data, err := st.ReadFile(name)
			if err != nil {
				return err
			}
			compileBurn(56 * time.Millisecond)
			obj := name[:len(name)-2] + ".o"
			if err := st.WriteFile(obj, append(data, data...)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = append(results, r)

	total := Result{Stack: st.Name(), Phase: "total"}
	for _, p := range results {
		total.Elapsed += p.Elapsed
		total.RPCs += p.RPCs
	}
	results = append(results, total)
	return results, nil
}

func sortedKeys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func contains(data, needle []byte) bool {
	for i := 0; i+len(needle) <= len(data); i++ {
		match := true
		for j := range needle {
			if data[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Kernel compile (Figure 7).

// pageCache models the kernel buffer cache that sat above both sfscd
// and the NFS client in the paper's setup: file data is cached after
// the first read, but every subsequent open revalidates with a stat
// (close-to-open consistency). On plain NFS every revalidation is a
// GETATTR over the wire; with the SFS lease extension it is a local
// cache hit — the mechanism that lets SFS beat NFS 3 over TCP on the
// paper's kernel compile despite higher raw latency.
type pageCache struct {
	st      Stack
	entries map[string]pageEntry
}

type pageEntry struct {
	data  []byte
	mtime int64
}

func newPageCache(st Stack) *pageCache {
	return &pageCache{st: st, entries: make(map[string]pageEntry)}
}

// open returns the file's contents, revalidating a cached copy by
// modification time.
func (c *pageCache) open(path string) ([]byte, error) {
	mtime, err := c.st.StatMtime(path)
	if err != nil {
		return nil, err
	}
	if e, ok := c.entries[path]; ok && e.mtime == mtime {
		return e.data, nil
	}
	data, err := c.st.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c.entries[path] = pageEntry{data: data, mtime: mtime}
	return data, nil
}

// Header count in the synthetic kernel source tree; every unit
// includes a large subset, as real kernel sources do.
const compileHeaders = 40

// CompileWorkload models compiling the GENERIC FreeBSD kernel: units
// translation units, each of which opens its source plus the shared
// header set through the page cache, burns CPU, and writes an object
// file; finally the objects are linked into a kernel image. burn is
// the CPU time per unit — with units=100 and burn=110ms the Local
// stack lands near 1/10th of the paper's 140 s run.
func CompileWorkload(st Stack, units int, burn time.Duration) (Result, error) {
	g := prng.NewSeeded([]byte("kernel"))
	if err := st.Mkdir("kernel"); err != nil {
		return Result{}, err
	}
	if err := st.Mkdir("kernel/sys"); err != nil {
		return Result{}, err
	}
	if err := st.Mkdir("kernel/compile"); err != nil {
		return Result{}, err
	}
	headers := make([]string, compileHeaders)
	for i := range headers {
		headers[i] = fmt.Sprintf("kernel/sys/hdr%02d.h", i)
		if err := st.WriteFile(headers[i], genSource(g, 1500)); err != nil {
			return Result{}, err
		}
	}
	srcs := make([]string, units)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("kernel/unit%03d.c", i)
		if err := st.WriteFile(srcs[i], genSource(g, 8000)); err != nil {
			return Result{}, err
		}
	}
	cache := newPageCache(st)
	res, err := timed(st, "compile", func() error {
		var objs []string
		for _, src := range srcs {
			data, err := cache.open(src)
			if err != nil {
				return err
			}
			// Preprocess: open every header through the page
			// cache (data cached after the first unit; attribute
			// revalidation on every open).
			for _, h := range headers {
				if _, err := cache.open(h); err != nil {
					return err
				}
			}
			compileBurn(burn)
			obj := "kernel/compile/" + src[len("kernel/"):len(src)-2] + ".o"
			if err := st.WriteFile(obj, data[:len(data)/2]); err != nil {
				return err
			}
			objs = append(objs, obj)
		}
		// Link: read all objects, write the kernel.
		var image []byte
		for _, obj := range objs {
			data, err := cache.open(obj)
			if err != nil {
				return err
			}
			image = append(image, data[:256]...)
		}
		return st.WriteFile("kernel/compile/kernel", image)
	})
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Sprite LFS benchmarks (Figures 8 and 9).

// SpriteSmall runs the small-file benchmark: create, read, and unlink
// n files of size bytes each, flushing after the write phase.
func SpriteSmall(st Stack, n, size int) ([]Result, error) {
	if err := st.Mkdir("small"); err != nil {
		return nil, err
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("small/f%04d", i)
	}
	var results []Result
	r, err := timed(st, "create", func() error {
		for _, name := range names {
			if err := st.WriteFile(name, payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = append(results, r)

	r, err = timed(st, "read", func() error {
		for _, name := range names {
			if _, err := st.ReadFile(name); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = append(results, r)

	r, err = timed(st, "unlink", func() error {
		for _, name := range names {
			if err := st.Remove(name); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = append(results, r)
	return results, nil
}

// SpriteLarge runs the large-file benchmark on a file of size bytes
// in 8 KB chunks: sequential write, sequential read, random write,
// random read, sequential read again; data is flushed after each
// write phase.
func SpriteLarge(st Stack, size int64) ([]Result, error) {
	const chunk = 8192
	g := prng.NewSeeded([]byte("sprite-large"))
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	nChunks := size / chunk
	// Random offsets: a permutation so every chunk is touched once.
	perm := make([]int64, nChunks)
	for i := range perm {
		perm[i] = int64(i)
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := int(g.Uint32() % uint32(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}

	f, err := st.Create("large.bin")
	if err != nil {
		return nil, err
	}
	var results []Result
	phases := []struct {
		name string
		run  func() error
	}{
		{"seq write", func() error {
			for off := int64(0); off < size; off += chunk {
				if _, err := f.WriteAt(buf, uint64(off)); err != nil {
					return err
				}
			}
			return f.Sync()
		}},
		{"seq read", func() error {
			for off := int64(0); off < size; off += chunk {
				if _, err := f.ReadAt(buf, uint64(off)); err != nil {
					return err
				}
			}
			return nil
		}},
		{"rand write", func() error {
			for _, i := range perm {
				if _, err := f.WriteAt(buf, uint64(i*chunk)); err != nil {
					return err
				}
			}
			return f.Sync()
		}},
		{"rand read", func() error {
			for _, i := range perm {
				if _, err := f.ReadAt(buf, uint64(i*chunk)); err != nil {
					return err
				}
			}
			return nil
		}},
		{"seq read again", func() error {
			for off := int64(0); off < size; off += chunk {
				if _, err := f.ReadAt(buf, uint64(off)); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	for _, ph := range phases {
		r, err := timed(st, ph.name, ph.run)
		if err != nil {
			return nil, err
		}
		r.Bytes = size
		results = append(results, r)
	}
	return results, nil
}
