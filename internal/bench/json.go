package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/nfs"
)

// jsonFigure is the on-disk schema of a BENCH_*.json file. The schema
// is documented in EXPERIMENTS.md; keep the two in sync.
type jsonFigure struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Quick records whether the figure ran with shrunken workloads,
	// so trajectory tooling never compares quick rows to full rows.
	Quick bool      `json:"quick"`
	Rows  []jsonRow `json:"rows"`
	// Counters carries each remote stack's server-side NFS counter
	// snapshot (per-procedure calls and latency, write stability,
	// COMMIT batches, transport totals), keyed by stack label.
	Counters map[string]nfs.ServerStats `json:"counters,omitempty"`
	// Latency carries the latency-attribution figure's per-stage
	// client/server distributions (p50/p95/p99 per stage), keyed by
	// storage mode ("mem", "disk").
	Latency map[string]LatencyMode `json:"latency,omitempty"`
	// Login carries the connection-storm figure's session-establishment
	// detail: rates, Rabin-decrypt counters, per-session memory, the
	// server's handshake stats, and the eksblowfish ablation.
	Login *LoginStats `json:"login,omitempty"`
}

type jsonRow struct {
	Stack string  `json:"stack"`
	Phase string  `json:"phase"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Paper is the paper's reference number in the same unit, or 0
	// when the paper gives only a bar chart.
	Paper float64 `json:"paper,omitempty"`
	RPCs  uint64  `json:"rpcs"`
}

// Slug derives the BENCH_ file stem from the figure ID: lower-cased,
// with runs of non-alphanumerics collapsed to single dashes
// ("Figure 9 (write-behind ablation)" -> "figure-9-write-behind-ablation").
func (f *Figure) Slug() string {
	out := make([]byte, 0, len(f.ID))
	dash := false
	for i := 0; i < len(f.ID); i++ {
		c := f.ID[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
			fallthrough
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
			dash = false
		default:
			if !dash && len(out) > 0 {
				out = append(out, '-')
				dash = true
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '-' {
		out = out[:len(out)-1]
	}
	return string(out)
}

// WriteJSON writes the figure to dir/BENCH_<slug>.json and returns the
// path. quick must reflect the Options the figure ran with.
func (f *Figure) WriteJSON(dir string, quick bool) (string, error) {
	jf := jsonFigure{ID: f.ID, Title: f.Title, Quick: quick, Counters: f.Counters, Latency: f.Latency, Login: f.Login}
	for _, r := range f.Rows {
		jf.Rows = append(jf.Rows, jsonRow{
			Stack: r.Stack, Phase: r.Phase,
			Value: r.Value, Unit: r.Unit,
			Paper: r.Paper, RPCs: r.RPCs,
		})
	}
	data, err := json.MarshalIndent(&jf, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+f.Slug()+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: %w", err)
	}
	return path, nil
}
