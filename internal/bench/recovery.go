package bench

// The recovery figure: the first figure to run the full SFS stack
// over the durable disk store (storage/diskstore) and crash it for
// real. One client writes and COMMITs a file (acknowledged stable),
// streams unstable writes into a second file, and the server then
// dies mid write-behind pipeline — the WAL drops its user-space
// buffer and closes without a final sync, the kill -9 model — and
// reopens, replaying the surviving journal. The figure hard-asserts
// the durability contract of RFC 1813 §4.8: every byte whose COMMIT
// was acknowledged is still there (verified through a second client
// whose reads must cross the wire), and the unstable tail is repaired
// by the verifier/retransmission path, exercised here against a real
// failure for the first time. Replay throughput (MB/s over the
// journal bytes) is the recovery-cost headline.
//
// Unlike the paper-reproduction figures this one installs no netsim
// disk: the fsyncs are real, so absolute numbers vary with the host's
// storage. The invariants (zero acknowledged-COMMIT loss, retransmit
// repairs the tail) are hardware-independent.

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/nfs"
	"repro/internal/storage/diskstore"
	"repro/internal/vfs"
)

// FigRecovery runs the crash-recovery experiment and returns the
// figure committed as BENCH_recovery.json.
func FigRecovery(opts Options) (*Figure, error) {
	committedSize := int64(8 << 20)
	inflightSize := int64(2 << 20)
	if opts.Quick {
		committedSize = 512 << 10
		inflightSize = 256 << 10
	}
	fig := &Figure{
		ID: "Recovery",
		Title: fmt.Sprintf("disk store crash recovery: %d KB committed + %d KB in-flight, kill -9, WAL replay",
			committedSize>>10, inflightSize>>10),
	}

	dir, err := os.MkdirTemp("", "sfs-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ds, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		return nil, err
	}
	fs, err := vfs.NewWithStores(ds, ds)
	if err != nil {
		return nil, err
	}
	cluster, err := newSFSClusterOpts(fs, 2, SFSOptions{Encrypt: true, EnhancedCaching: true})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	writer, verifier := cluster.Clients[0], cluster.Clients[1]
	base := cluster.Base()
	const label = "SFS (disk store)"

	// Phase 1: write and COMMIT a file. Once Sync returns, the server
	// has acknowledged the COMMIT — these bytes must survive anything.
	committed := bytes.Repeat([]byte("durable!"), int(committedSize)/8)
	cf, err := writer.Create("bench", base+"/committed.bin", 0o644)
	if err != nil {
		return nil, err
	}
	before := clientRPCs(writer, base)
	start := time.Now()
	if err := writeChunks(cf, committed); err != nil {
		return nil, err
	}
	if err := cf.Sync(); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	fig.Rows = append(fig.Rows, FigureRow{
		Stack: label, Phase: "write+commit",
		Value: Result{Elapsed: elapsed, Bytes: committedSize}.MBps(), Unit: "MB/s",
		RPCs: clientRPCs(writer, base) - before,
	})

	// Phase 2: stream unstable writes — the write-behind pipeline
	// acknowledges them as UNSTABLE and nothing COMMITs — then crash.
	// Flush retires the in-flight WRITEs without committing, so the
	// crash lands in the exact window the verifier scheme exists for:
	// after the unstable acknowledgments, before any COMMIT.
	inflight := bytes.Repeat([]byte("tailbyte"), int(inflightSize)/8)
	inf, err := writer.Create("bench", base+"/inflight.bin", 0o644)
	if err != nil {
		return nil, err
	}
	if err := writeChunks(inf, inflight); err != nil {
		return nil, err
	}
	if err := inf.Flush(); err != nil {
		return nil, err
	}
	oldVerf := fs.Verifier()
	start = time.Now()
	fs.Restart() // disk store: real crash (torn WAL tail) + replay
	restartElapsed := time.Since(start)
	if fs.Verifier() == oldVerf {
		return nil, fmt.Errorf("recovery: verifier unchanged across crash")
	}
	replay := fs.LastReplay()
	fig.Rows = append(fig.Rows,
		FigureRow{Stack: label, Phase: "crash+replay", Value: restartElapsed.Seconds(), Unit: "s"},
		FigureRow{Stack: label, Phase: "wal replay", Value: replay.MBps(), Unit: "MB/s"},
		FigureRow{Stack: label, Phase: "replay records", Value: float64(replay.Records), Unit: "records"},
	)

	// Phase 3: the client COMMITs the in-flight file, sees the
	// verifier change, and retransmits every dirty range.
	before = clientRPCs(writer, base)
	start = time.Now()
	if err := inf.Sync(); err != nil {
		return nil, fmt.Errorf("recovery: post-crash sync: %w", err)
	}
	elapsed = time.Since(start)
	fig.Rows = append(fig.Rows, FigureRow{
		Stack: label, Phase: "post-crash sync",
		Value: elapsed.Seconds(), Unit: "s",
		RPCs: clientRPCs(writer, base) - before,
	})

	// Hard assertions, through the second client so every read
	// crosses the wire instead of any writer-side state.
	got, err := verifier.ReadFile("bench", base+"/committed.bin")
	if err != nil {
		return nil, fmt.Errorf("recovery: committed file unreadable after crash: %w", err)
	}
	if !bytes.Equal(got, committed) {
		return nil, fmt.Errorf("recovery: acknowledged COMMIT lost data: got %d bytes, want %d",
			len(got), committedSize)
	}
	got, err = verifier.ReadFile("bench", base+"/inflight.bin")
	if err != nil {
		return nil, fmt.Errorf("recovery: in-flight file unreadable after retransmit: %w", err)
	}
	if !bytes.Equal(got, inflight) {
		return nil, fmt.Errorf("recovery: retransmission did not repair in-flight file: got %d bytes, want %d",
			len(got), inflightSize)
	}
	fig.Rows = append(fig.Rows, FigureRow{
		Stack: label, Phase: "acked commits lost", Value: 0, Unit: "bytes",
	})

	if ss, ok := cluster.ServerStats(); ok {
		fig.Counters = map[string]nfs.ServerStats{label: ss}
	}
	fig.render(opts.out())
	return fig, nil
}

// writeChunks streams data through the write-behind pipeline in 64 KB
// application writes.
func writeChunks(f *client.File, data []byte) error {
	const chunk = 64 << 10
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := f.WriteAt(data[off:end], uint64(off)); err != nil {
			return err
		}
	}
	return nil
}

// clientRPCs reads cl's wire call counter, tolerating errors as zero
// (a stats failure should not abort the figure mid-crash).
func clientRPCs(cl *client.Client, base string) uint64 {
	st, err := cl.Stats("bench", base)
	if err != nil {
		return 0
	}
	return st.Calls
}
