package bench

// The recovery figure: the first figure to run the full SFS stack
// over the durable disk store (storage/diskstore) and crash it for
// real. One client writes and COMMITs a file (acknowledged stable),
// streams unstable writes into a second file, and the server then
// dies mid write-behind pipeline — the WAL drops its user-space
// buffer and closes without a final sync, the kill -9 model — and
// reopens, replaying the surviving journal. The figure hard-asserts
// the durability contract of RFC 1813 §4.8: every byte whose COMMIT
// was acknowledged is still there (verified through a second client
// whose reads must cross the wire), and the unstable tail is repaired
// by the verifier/retransmission path, exercised here against a real
// failure for the first time. Replay throughput (MB/s over the
// journal bytes) is the recovery-cost headline.
//
// Unlike the paper-reproduction figures this one installs no netsim
// disk: the fsyncs are real, so absolute numbers vary with the host's
// storage. The invariants (zero acknowledged-COMMIT loss, retransmit
// repairs the tail) are hardware-independent.

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/nfs"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/vfs"
)

// FigRecovery runs the crash-recovery experiment and returns the
// figure committed as BENCH_recovery.json.
func FigRecovery(opts Options) (*Figure, error) {
	committedSize := int64(8 << 20)
	inflightSize := int64(2 << 20)
	if opts.Quick {
		committedSize = 512 << 10
		inflightSize = 256 << 10
	}
	fig := &Figure{
		ID: "Recovery",
		Title: fmt.Sprintf("disk store crash recovery: %d KB committed + %d KB in-flight, kill -9, WAL replay",
			committedSize>>10, inflightSize>>10),
	}

	dir, err := os.MkdirTemp("", "sfs-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ds, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		return nil, err
	}
	fs, err := vfs.NewWithStores(ds, ds)
	if err != nil {
		return nil, err
	}
	cluster, err := newSFSClusterOpts(fs, 2, SFSOptions{Encrypt: true, EnhancedCaching: true})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	writer, verifier := cluster.Clients[0], cluster.Clients[1]
	base := cluster.Base()
	const label = "SFS (disk store)"

	// Phase 1: write and COMMIT a file. Once Sync returns, the server
	// has acknowledged the COMMIT — these bytes must survive anything.
	committed := bytes.Repeat([]byte("durable!"), int(committedSize)/8)
	cf, err := writer.Create("bench", base+"/committed.bin", 0o644)
	if err != nil {
		return nil, err
	}
	before := clientRPCs(writer, base)
	start := time.Now()
	if err := writeChunks(cf, committed); err != nil {
		return nil, err
	}
	if err := cf.Sync(); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	fig.Rows = append(fig.Rows, FigureRow{
		Stack: label, Phase: "write+commit",
		Value: Result{Elapsed: elapsed, Bytes: committedSize}.MBps(), Unit: "MB/s",
		RPCs: clientRPCs(writer, base) - before,
	})

	// Phase 2: stream unstable writes — the write-behind pipeline
	// acknowledges them as UNSTABLE and nothing COMMITs — then crash.
	// Flush retires the in-flight WRITEs without committing, so the
	// crash lands in the exact window the verifier scheme exists for:
	// after the unstable acknowledgments, before any COMMIT.
	inflight := bytes.Repeat([]byte("tailbyte"), int(inflightSize)/8)
	inf, err := writer.Create("bench", base+"/inflight.bin", 0o644)
	if err != nil {
		return nil, err
	}
	if err := writeChunks(inf, inflight); err != nil {
		return nil, err
	}
	if err := inf.Flush(); err != nil {
		return nil, err
	}
	oldVerf := fs.Verifier()
	start = time.Now()
	fs.Restart() // disk store: real crash (torn WAL tail) + replay
	restartElapsed := time.Since(start)
	if fs.Verifier() == oldVerf {
		return nil, fmt.Errorf("recovery: verifier unchanged across crash")
	}
	replay := fs.LastReplay()
	fig.Rows = append(fig.Rows,
		FigureRow{Stack: label, Phase: "crash+replay", Value: restartElapsed.Seconds(), Unit: "s"},
		FigureRow{Stack: label, Phase: "wal replay", Value: replay.MBps(), Unit: "MB/s"},
		FigureRow{Stack: label, Phase: "replay records", Value: float64(replay.Records), Unit: "records"},
	)

	// Phase 3: the client COMMITs the in-flight file, sees the
	// verifier change, and retransmits every dirty range.
	before = clientRPCs(writer, base)
	start = time.Now()
	if err := inf.Sync(); err != nil {
		return nil, fmt.Errorf("recovery: post-crash sync: %w", err)
	}
	elapsed = time.Since(start)
	fig.Rows = append(fig.Rows, FigureRow{
		Stack: label, Phase: "post-crash sync",
		Value: elapsed.Seconds(), Unit: "s",
		RPCs: clientRPCs(writer, base) - before,
	})

	// Hard assertions, through the second client so every read
	// crosses the wire instead of any writer-side state.
	got, err := verifier.ReadFile("bench", base+"/committed.bin")
	if err != nil {
		return nil, fmt.Errorf("recovery: committed file unreadable after crash: %w", err)
	}
	if !bytes.Equal(got, committed) {
		return nil, fmt.Errorf("recovery: acknowledged COMMIT lost data: got %d bytes, want %d",
			len(got), committedSize)
	}
	got, err = verifier.ReadFile("bench", base+"/inflight.bin")
	if err != nil {
		return nil, fmt.Errorf("recovery: in-flight file unreadable after retransmit: %w", err)
	}
	if !bytes.Equal(got, inflight) {
		return nil, fmt.Errorf("recovery: retransmission did not repair in-flight file: got %d bytes, want %d",
			len(got), inflightSize)
	}
	fig.Rows = append(fig.Rows, FigureRow{
		Stack: label, Phase: "acked commits lost", Value: 0, Unit: "bytes",
	})

	if ss, ok := cluster.ServerStats(); ok {
		fig.Counters = map[string]nfs.ServerStats{label: ss}
	}

	// Phase 4: bounded recovery at scale (DESIGN.md §15). The same
	// working set rewritten N times grows the journal N-fold, so
	// journal-only replay scales with history while checkpointed
	// replay stays O(working set + tail).
	if err := recoveryAtScale(fig, opts); err != nil {
		return nil, err
	}
	fig.render(opts.out())
	return fig, nil
}

// recoveryAtScale appends the checkpointing and paging rows: replay
// time vs history depth with and without checkpoints, and a
// larger-than-RAM store whose reads must verify byte-identical while
// residency stays under the hot budget.
func recoveryAtScale(fig *Figure, opts Options) error {
	rounds := 10
	roundBytes := 4 << 20
	hot := uint64(2 << 20)
	coldFiles, coldFileBytes := 32, 1<<20 // 16x the hot budget
	if opts.Quick {
		roundBytes = 256 << 10
		hot = 128 << 10
		coldFiles, coldFileBytes = 16, 64<<10 // 8x the hot budget
	}
	const label = "SFS (disk store)"

	journal1, _, err := replayAfterHistory(1, roundBytes, false)
	if err != nil {
		return err
	}
	journalN, _, err := replayAfterHistory(rounds, roundBytes, false)
	if err != nil {
		return err
	}
	ckptN, ckptStats, err := replayAfterHistory(rounds, roundBytes, true)
	if err != nil {
		return err
	}
	if ckptStats.TailRecords > uint64(roundBytes/(64<<10))+8 {
		return fmt.Errorf("recovery: checkpointed tail has %d records — compaction is not bounding the journal", ckptStats.TailRecords)
	}
	speedup := journalN.Seconds() / ckptN.Seconds()
	fig.Rows = append(fig.Rows,
		FigureRow{Stack: label, Phase: "replay 1x history (journal only)", Value: journal1.Seconds() * 1000, Unit: "ms"},
		FigureRow{Stack: label, Phase: fmt.Sprintf("replay %dx history (journal only)", rounds), Value: journalN.Seconds() * 1000, Unit: "ms"},
		FigureRow{Stack: label, Phase: fmt.Sprintf("replay %dx history (checkpointed)", rounds), Value: ckptN.Seconds() * 1000, Unit: "ms"},
		FigureRow{Stack: label, Phase: "checkpoint replay speedup", Value: speedup, Unit: "x"},
		FigureRow{Stack: label, Phase: "checkpoint image load", Value: ckptStats.CheckpointMBps(), Unit: "MB/s"},
	)

	// Larger-than-RAM: a dataset several times the hot budget, served
	// through the cold-extent pager after a checkpointed reboot.
	resident, faults, err := largerThanRAM(hot, coldFiles, coldFileBytes)
	if err != nil {
		return err
	}
	fig.Rows = append(fig.Rows,
		FigureRow{Stack: label, Phase: "larger-than-RAM dataset", Value: float64(coldFiles * coldFileBytes), Unit: "bytes"},
		FigureRow{Stack: label, Phase: "larger-than-RAM hot budget", Value: float64(hot), Unit: "bytes"},
		FigureRow{Stack: label, Phase: "larger-than-RAM resident", Value: float64(resident), Unit: "bytes"},
		FigureRow{Stack: label, Phase: "larger-than-RAM faults", Value: float64(faults), Unit: "faults"},
	)
	return nil
}

// replayAfterHistory rewrites one working set `rounds` times
// (committing each round), optionally checkpointing after each round,
// then closes the store and measures a cold reopen's replay.
func replayAfterHistory(rounds, roundBytes int, checkpoint bool) (time.Duration, storage.ReplayStats, error) {
	dir, err := os.MkdirTemp("", "sfs-recovery-scale-")
	if err != nil {
		return 0, storage.ReplayStats{}, err
	}
	defer os.RemoveAll(dir)
	ds, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		return 0, storage.ReplayStats{}, err
	}
	fs, err := vfs.NewWithStores(ds, ds)
	if err != nil {
		return 0, storage.ReplayStats{}, err
	}
	cred := vfs.Cred{UID: 0}
	id, _, err := fs.Create(cred, fs.Root(), "workset", 0o644, true)
	if err != nil {
		return 0, storage.ReplayStats{}, err
	}
	chunk := bytes.Repeat([]byte("history!"), 8<<10) // 64 KB
	for r := 0; r < rounds; r++ {
		for off := 0; off < roundBytes; off += len(chunk) {
			if _, err := fs.Write(cred, id, uint64(off), chunk, false); err != nil {
				return 0, storage.ReplayStats{}, err
			}
		}
		if err := fs.Commit(id); err != nil {
			return 0, storage.ReplayStats{}, err
		}
		if checkpoint {
			if _, err := fs.Checkpoint(); err != nil {
				return 0, storage.ReplayStats{}, err
			}
		}
	}
	if err := ds.Close(); err != nil {
		return 0, storage.ReplayStats{}, err
	}

	start := time.Now()
	ds2, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		return 0, storage.ReplayStats{}, err
	}
	fs2, err := vfs.NewWithStores(ds2, ds2)
	if err != nil {
		return 0, storage.ReplayStats{}, err
	}
	elapsed := time.Since(start)
	rs := fs2.LastReplay()
	// Spot-check the working set survived whichever path replayed it.
	got, _, err := fs2.Read(cred, id, 0, 8)
	if err != nil || !bytes.Equal(got, []byte("history!")) {
		return 0, rs, fmt.Errorf("recovery: working set corrupt after reopen: %q, %v", got, err)
	}
	return elapsed, rs, ds2.Close()
}

// largerThanRAM builds a dataset of files×fileBytes over a pager
// budgeted to hot bytes, checkpoints, reopens, and reads every byte
// back through the cold-extent path, verifying content and that
// residency stayed under budget.
func largerThanRAM(hot uint64, files, fileBytes int) (resident, faults uint64, err error) {
	dir, err := os.MkdirTemp("", "sfs-recovery-ram-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	open := func() (*vfs.FS, *diskstore.Store, error) {
		ds, err := diskstore.Open(dir, diskstore.Options{HotBytes: hot})
		if err != nil {
			return nil, nil, err
		}
		fs, err := vfs.NewWithStores(ds, ds)
		if err != nil {
			ds.Close()
			return nil, nil, err
		}
		return fs, ds, nil
	}
	fs, ds, err := open()
	if err != nil {
		return 0, 0, err
	}
	cred := vfs.Cred{UID: 0}
	pattern := func(i int) []byte {
		p := bytes.Repeat([]byte{byte(i), byte(i >> 8), 0x5f, byte(^i)}, fileBytes/4)
		return p
	}
	ids := make([]vfs.FileID, files)
	for i := 0; i < files; i++ {
		id, _, err := fs.Create(cred, fs.Root(), fmt.Sprintf("cold-%03d", i), 0o644, true)
		if err != nil {
			return 0, 0, err
		}
		if _, err := fs.Write(cred, id, 0, pattern(i), false); err != nil {
			return 0, 0, err
		}
		ids[i] = id
	}
	if err := fs.Commit(ids[0]); err != nil {
		return 0, 0, err
	}
	if _, err := fs.Checkpoint(); err != nil {
		return 0, 0, err
	}
	if err := ds.Close(); err != nil {
		return 0, 0, err
	}

	fs, ds, err = open()
	if err != nil {
		return 0, 0, err
	}
	defer ds.Close()
	for i := 0; i < files; i++ {
		want := pattern(i)
		for off := 0; off < fileBytes; off += 64 << 10 {
			n := uint32(64 << 10)
			if fileBytes-off < int(n) {
				n = uint32(fileBytes - off)
			}
			got, _, err := fs.Read(cred, ids[i], uint64(off), n)
			if err != nil {
				return 0, 0, fmt.Errorf("recovery: cold read %d@%d: %w", ids[i], off, err)
			}
			if !bytes.Equal(got, want[off:off+int(n)]) {
				return 0, 0, fmt.Errorf("recovery: cold extent %d@%d not byte-identical after paging", ids[i], off)
			}
		}
		st := fs.StorageStats()
		if st == nil || st.Pager == nil {
			return 0, 0, fmt.Errorf("recovery: disk store reports no pager stats")
		}
		if st.Pager.ResidentBytes > hot {
			return 0, 0, fmt.Errorf("recovery: resident %d bytes exceeds -hot-bytes %d", st.Pager.ResidentBytes, hot)
		}
	}
	st := fs.StorageStats()
	return st.Pager.ResidentBytes, st.Pager.Faults, nil
}

// writeChunks streams data through the write-behind pipeline in 64 KB
// application writes.
func writeChunks(f *client.File, data []byte) error {
	const chunk = 64 << 10
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := f.WriteAt(data[off:end], uint64(off)); err != nil {
			return err
		}
	}
	return nil
}

// clientRPCs reads cl's wire call counter, tolerating errors as zero
// (a stats failure should not abort the figure mid-crash).
func clientRPCs(cl *client.Client, base string) uint64 {
	st, err := cl.Stats("bench", base)
	if err != nil {
		return 0
	}
	return st.Calls
}
