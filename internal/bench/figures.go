package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/stats"
	"repro/internal/vfs"
)

// StackKind names one benchmarkable configuration.
type StackKind string

// The configurations of the paper's evaluation.
const (
	KindLocal      StackKind = "local"
	KindNFSUDP     StackKind = "nfs-udp"
	KindNFSTCP     StackKind = "nfs-tcp"
	KindSFS        StackKind = "sfs"
	KindSFSNoEnc   StackKind = "sfs-noenc"
	KindSFSNoCache StackKind = "sfs-nocache"
)

// Build constructs a fresh stack of the given kind over its own
// substrate file system with the calibrated disk model. The
// process-wide wire-copy ledger (DESIGN.md §12) is reset here so each
// stack's counter snapshot covers exactly its own traffic.
func Build(kind StackKind) (Stack, error) {
	stats.ResetWireCopy()
	fs := vfs.New()
	fs.SetDisk(netsim.NewDisk())
	switch kind {
	case KindLocal:
		return NewLocal(fs), nil
	case KindNFSUDP:
		return NewNFS(fs, "udp", netsim.NFSUDP())
	case KindNFSTCP:
		return NewNFS(fs, "tcp", netsim.NFSTCP())
	case KindSFS:
		return NewSFS(fs, SFSOptions{Encrypt: true, EnhancedCaching: true})
	case KindSFSNoEnc:
		return NewSFS(fs, SFSOptions{Encrypt: false, EnhancedCaching: true})
	case KindSFSNoCache:
		return NewSFS(fs, SFSOptions{Encrypt: true, EnhancedCaching: false})
	default:
		return nil, fmt.Errorf("bench: unknown stack kind %q", kind)
	}
}

// Options scales the experiments.
type Options struct {
	// Quick shrinks workload sizes for fast smoke runs; reported
	// shapes still hold, absolute numbers shrink.
	Quick bool
	// Out receives the rendered tables (nil discards them).
	Out io.Writer
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// FigureRow is one line of a rendered figure: measured value plus the
// paper's reference number where the paper states one.
type FigureRow struct {
	Stack string
	Phase string
	// Measured value and unit ("us", "MB/s", "s").
	Value float64
	Unit  string
	// Paper is the paper's reported value in the same unit, or 0
	// when the paper gives only a bar chart.
	Paper float64
	RPCs  uint64
}

// Figure is one reproduced table/figure.
type Figure struct {
	ID    string
	Title string
	Rows  []FigureRow
	// Counters holds each remote stack's server-side NFS counter
	// snapshot, taken after its workloads ran — the raw per-procedure
	// and write-stability numbers behind the Rows.
	Counters map[string]nfs.ServerStats
	// Latency holds the latency-attribution figure's per-stage
	// client/server distributions, keyed by storage mode ("mem",
	// "disk"). Nil for every other figure.
	Latency map[string]LatencyMode
	// Login holds the connection-storm figure's session-establishment
	// detail (DESIGN.md §14). Nil for every other figure.
	Login *LoginStats
}

// noteCounters records st's server-side counter snapshot under label
// (usually the stack name; ablations use their row label). Stacks
// without a server (Local) record nothing.
func (f *Figure) noteCounters(label string, st Stack) {
	ss, ok := st.ServerStats()
	if !ok {
		return
	}
	if f.Counters == nil {
		f.Counters = make(map[string]nfs.ServerStats)
	}
	f.Counters[label] = ss
}

func (f *Figure) render(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "%-26s %-16s %12s %12s %8s\n", "stack", "phase", "measured", "paper", "RPCs")
	for _, r := range f.Rows {
		paper := "-"
		if r.Paper != 0 {
			paper = fmt.Sprintf("%.1f %s", r.Paper, r.Unit)
		}
		fmt.Fprintf(w, "%-26s %-16s %9.1f %s %12s %8d\n",
			r.Stack, r.Phase, r.Value, r.Unit, paper, r.RPCs)
	}
}

// Fig5 reproduces Figure 5: micro-benchmarks for basic operations —
// the latency of an unauthorized chown and the throughput of a sparse
// sequential read, for NFS/UDP, NFS/TCP, SFS, and SFS w/o encryption.
func Fig5(opts Options) (*Figure, error) {
	iters := 500
	size := int64(64 << 20)
	if opts.Quick {
		iters, size = 100, 16<<20
	}
	fig := &Figure{ID: "Figure 5", Title: "micro-benchmarks for basic operations"}
	paperLat := map[StackKind]float64{KindNFSUDP: 200, KindNFSTCP: 220, KindSFS: 790, KindSFSNoEnc: 770}
	paperTput := map[StackKind]float64{KindNFSUDP: 9.3, KindNFSTCP: 7.6, KindSFS: 4.1, KindSFSNoEnc: 7.1}
	for _, kind := range []StackKind{KindNFSUDP, KindNFSTCP, KindSFS, KindSFSNoEnc} {
		st, err := Build(kind)
		if err != nil {
			return nil, err
		}
		lat, err := LatencyMicro(st, iters)
		if err != nil {
			st.Close()
			return nil, err
		}
		fig.Rows = append(fig.Rows, FigureRow{
			Stack: st.Name(), Phase: "latency",
			Value: float64(lat.Elapsed.Microseconds()), Unit: "us",
			Paper: paperLat[kind], RPCs: lat.RPCs,
		})
		tput, err := ThroughputMicro(st, size)
		if err != nil {
			st.Close()
			return nil, err
		}
		fig.Rows = append(fig.Rows, FigureRow{
			Stack: st.Name(), Phase: "throughput",
			Value: tput.MBps(), Unit: "MB/s",
			Paper: paperTput[kind], RPCs: tput.RPCs,
		})
		fig.noteCounters(st.Name(), st)
		st.Close()
	}
	fig.render(opts.out())
	return fig, nil
}

// Fig6 reproduces Figure 6: the Modified Andrew Benchmark phases on
// Local, NFS/UDP, NFS/TCP, and SFS, plus the paper's enhanced-caching
// ablation (SFS without leases/access caching, total 6.6 s vs 5.9 s).
func Fig6(opts Options) (*Figure, error) {
	fig := &Figure{ID: "Figure 6", Title: "Modified Andrew Benchmark (wall seconds per phase)"}
	paperTotal := map[StackKind]float64{
		KindNFSUDP: 5.3, KindSFS: 5.9, KindSFSNoCache: 6.6,
	}
	kinds := []StackKind{KindLocal, KindNFSUDP, KindNFSTCP, KindSFS, KindSFSNoCache}
	if opts.Quick {
		kinds = []StackKind{KindLocal, KindNFSUDP, KindSFS}
	}
	for _, kind := range kinds {
		st, err := Build(kind)
		if err != nil {
			return nil, err
		}
		results, err := MABPhases(st)
		if err != nil {
			st.Close()
			return nil, err
		}
		for _, r := range results {
			row := FigureRow{
				Stack: st.Name(), Phase: r.Phase,
				Value: r.Elapsed.Seconds(), Unit: "s", RPCs: r.RPCs,
			}
			if r.Phase == "total" {
				row.Paper = paperTotal[kind]
			}
			fig.Rows = append(fig.Rows, row)
		}
		fig.noteCounters(st.Name(), st)
		st.Close()
	}
	fig.render(opts.out())
	return fig, nil
}

// Fig7 reproduces Figure 7: compiling the GENERIC FreeBSD kernel.
// The workload is scaled: the paper's Local run takes 140 s; the
// default here runs 1/10th of the units so Local lands near 14 s, and
// Quick shrinks further. Ratios between stacks are the reproduced
// quantity.
func Fig7(opts Options) (*Figure, error) {
	units, burn := 100, 110*time.Millisecond
	scale := 10.0
	if opts.Quick {
		units, burn = 20, 55*time.Millisecond
		scale = 70.0
	}
	fig := &Figure{ID: "Figure 7", Title: fmt.Sprintf("GENERIC kernel compile (scaled 1/%g; paper values also scaled)", scale)}
	paper := map[StackKind]float64{
		KindLocal: 140, KindNFSUDP: 178, KindNFSTCP: 207, KindSFS: 197,
	}
	kinds := []StackKind{KindLocal, KindNFSUDP, KindNFSTCP, KindSFS, KindSFSNoEnc}
	if opts.Quick {
		kinds = []StackKind{KindLocal, KindNFSUDP, KindSFS}
	}
	for _, kind := range kinds {
		st, err := Build(kind)
		if err != nil {
			return nil, err
		}
		r, err := CompileWorkload(st, units, burn)
		if err != nil {
			st.Close()
			return nil, err
		}
		fig.Rows = append(fig.Rows, FigureRow{
			Stack: st.Name(), Phase: "compile",
			Value: r.Elapsed.Seconds(), Unit: "s",
			Paper: paper[kind] / scale, RPCs: r.RPCs,
		})
		fig.noteCounters(st.Name(), st)
		st.Close()
	}
	fig.render(opts.out())
	return fig, nil
}

// Fig8 reproduces Figure 8: the Sprite LFS small-file benchmark
// (create/read/unlink 1,000 1 KB files), including the paper's note
// that SFS without attribute caching loses ≈1 s on the create phase.
func Fig8(opts Options) (*Figure, error) {
	n := 1000
	if opts.Quick {
		n = 200
	}
	fig := &Figure{ID: "Figure 8", Title: fmt.Sprintf("Sprite LFS small-file benchmark (%d x 1 KB files)", n)}
	kinds := []StackKind{KindLocal, KindNFSUDP, KindNFSTCP, KindSFS, KindSFSNoCache}
	if opts.Quick {
		kinds = []StackKind{KindLocal, KindNFSUDP, KindSFS}
	}
	for _, kind := range kinds {
		st, err := Build(kind)
		if err != nil {
			return nil, err
		}
		results, err := SpriteSmall(st, n, 1024)
		if err != nil {
			st.Close()
			return nil, err
		}
		for _, r := range results {
			fig.Rows = append(fig.Rows, FigureRow{
				Stack: st.Name(), Phase: r.Phase,
				Value: r.Elapsed.Seconds(), Unit: "s", RPCs: r.RPCs,
			})
		}
		fig.noteCounters(st.Name(), st)
		st.Close()
	}
	fig.render(opts.out())
	return fig, nil
}

// Fig9 reproduces Figure 9: the Sprite LFS large-file benchmark
// (sequential/random writes and reads of a 40,000 KB file in 8 KB
// chunks).
func Fig9(opts Options) (*Figure, error) {
	size := int64(40000 << 10)
	if opts.Quick {
		size = 8 << 20
	}
	fig := &Figure{ID: "Figure 9", Title: fmt.Sprintf("Sprite LFS large-file benchmark (%d MB file, 8 KB chunks)", size>>20)}
	kinds := []StackKind{KindLocal, KindNFSUDP, KindNFSTCP, KindSFS, KindSFSNoEnc}
	if opts.Quick {
		kinds = []StackKind{KindLocal, KindNFSUDP, KindSFS}
	}
	for _, kind := range kinds {
		st, err := Build(kind)
		if err != nil {
			return nil, err
		}
		results, err := SpriteLarge(st, size)
		if err != nil {
			st.Close()
			return nil, err
		}
		for _, r := range results {
			fig.Rows = append(fig.Rows, FigureRow{
				Stack: st.Name(), Phase: r.Phase,
				Value: r.Elapsed.Seconds(), Unit: "s", RPCs: r.RPCs,
			})
		}
		fig.noteCounters(st.Name(), st)
		st.Close()
	}
	fig.render(opts.out())
	return fig, nil
}

// FigWriteBehind is the write-behind ablation companion to Figure 9:
// the sequential-write phase of the Sprite LFS large-file benchmark on
// the full SFS stack at three window depths — disabled (one
// synchronous WRITE per chunk, the pre-pipeline client), window 1, and
// the default window 8 with verified COMMIT batching.
func FigWriteBehind(opts Options) (*Figure, error) {
	size := int64(40000 << 10)
	if opts.Quick {
		size = 8 << 20
	}
	fig := &Figure{
		ID:    "Figure 9 (write-behind ablation)",
		Title: fmt.Sprintf("SFS sequential write of a %d MB file vs write-behind window", size>>20),
	}
	const chunk = 8192
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	for _, w := range []struct {
		label  string
		window int
	}{
		{"window 0 (serial)", -1},
		{"window 1", 1},
		{"window 8 (default)", 0},
	} {
		stats.ResetWireCopy()
		fs := vfs.New()
		fs.SetDisk(netsim.NewDisk())
		st, err := NewSFS(fs, SFSOptions{
			Encrypt: true, EnhancedCaching: true, WriteBehind: w.window,
		})
		if err != nil {
			return nil, err
		}
		f, err := st.Create("large.bin")
		if err != nil {
			st.Close()
			return nil, err
		}
		r, err := timed(st, "seq write", func() error {
			for off := int64(0); off < size; off += chunk {
				if _, err := f.WriteAt(buf, uint64(off)); err != nil {
					return err
				}
			}
			return f.Sync()
		})
		fig.noteCounters(w.label, st)
		st.Close()
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, FigureRow{
			Stack: w.label, Phase: "seq write",
			Value: r.Elapsed.Seconds(), Unit: "s", RPCs: r.RPCs,
		})
	}
	fig.render(opts.out())
	return fig, nil
}

// All runs every figure in order.
func All(opts Options) ([]*Figure, error) {
	var figs []*Figure
	for _, f := range []func(Options) (*Figure, error){Fig5, Fig6, Fig7, Fig8, Fig9, FigWriteBehind} {
		fig, err := f(opts)
		if err != nil {
			return figs, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// RowFor returns the row for (stack, phase), for tests and
// EXPERIMENTS.md tooling.
func (f *Figure) RowFor(stack, phase string) (FigureRow, bool) {
	for _, r := range f.Rows {
		if r.Stack == stack && r.Phase == phase {
			return r, true
		}
	}
	return FigureRow{}, false
}

// FigureSpec is one entry of the figure registry: the -fig key the
// CLI accepts, the ID the figure's output carries (whose slug names
// the committed BENCH_<slug>.json), and the runner itself.
type FigureSpec struct {
	Key string
	ID  string
	Run func(Options) (*Figure, error)
}

// Registry lists every figure in canonical run order. cmd/sfsbench
// drives -fig and -list from it, so registering a figure here is the
// only step a new experiment needs to become runnable and listable.
var Registry = []FigureSpec{
	{Key: "5", ID: "Figure 5", Run: Fig5},
	{Key: "6", ID: "Figure 6", Run: Fig6},
	{Key: "7", ID: "Figure 7", Run: Fig7},
	{Key: "8", ID: "Figure 8", Run: Fig8},
	{Key: "9", ID: "Figure 9", Run: Fig9},
	{Key: "wb", ID: "Figure 9 (write-behind ablation)", Run: FigWriteBehind},
	{Key: "scal", ID: "Scalability", Run: FigScalability},
	{Key: "warm", ID: "Warm read", Run: FigWarmRead},
	{Key: "recovery", ID: "Recovery", Run: FigRecovery},
	{Key: "latency", ID: "Latency", Run: FigLatency},
	{Key: "login", ID: "Login-storm", Run: FigLogin},
}

// SlugForID derives the BENCH_ file stem for a figure ID without
// running the figure (the -list path).
func SlugForID(id string) string { return (&Figure{ID: id}).Slug() }
