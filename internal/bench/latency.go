package bench

// The latency-attribution figure: where does an SFS RPC's time go?
// The full stack runs the Figure 5-style serial 8 KB workload — one
// READ at a time (read-ahead off) and one WRITE+COMMIT at a time
// (write-behind off) — with stage tracing enabled on both ends, then
// reports the per-stage p50/p95/p99 from the client's and the
// server's span histograms (DESIGN.md §13). Two modes: "mem" serves
// from the memory store behind the calibrated netsim disk (fsync
// stage structurally zero), "disk" serves from the WAL-backed disk
// store with real fsyncs (fsync stage nonzero, absolute numbers vary
// with the host's storage). The committed JSON is the paper-style
// answer to "encryption vs wire vs disk": the seal/open stages are
// the crypto cost, wire is the round trip, fsync is durability.

import (
	"fmt"
	"os"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/storage/diskstore"
	"repro/internal/vfs"
)

// LatencyMode is one mode's pair of stage distributions in the
// latency figure: the client's view of its RPCs and the server's view
// of the same stream, correlated in aggregate (spans pair by xid in
// the trace rings).
type LatencyMode struct {
	Client stats.StageSetSnapshot `json:"client"`
	Server stats.StageSetSnapshot `json:"server"`
}

// FigLatency runs the latency-attribution experiment in both storage
// modes and returns the figure committed as BENCH_latency.json.
func FigLatency(opts Options) (*Figure, error) {
	iters := 200
	if opts.Quick {
		iters = 25
	}
	fig := &Figure{
		ID:    "Latency",
		Title: fmt.Sprintf("per-stage RPC latency attribution (%d serial 8 KB reads + writes, mem vs disk store)", iters),
	}
	for _, mode := range []string{"mem", "disk"} {
		if err := latencyMode(fig, mode, iters); err != nil {
			return nil, err
		}
	}
	fig.render(opts.out())
	return fig, nil
}

// latencyMode runs the workload on one storage backend and folds the
// stage snapshots and summary rows into fig.
func latencyMode(fig *Figure, mode string, iters int) error {
	stats.ResetWireCopy()
	var fs *vfs.FS
	switch mode {
	case "mem":
		fs = vfs.New()
		fs.SetDisk(netsim.NewDisk())
	case "disk":
		// Like the recovery figure, the disk mode installs no netsim
		// disk: the WAL fsyncs are real, so the fsync stage measures
		// the host's storage.
		dir, err := os.MkdirTemp("", "sfs-latency-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		ds, err := diskstore.Open(dir, diskstore.Options{})
		if err != nil {
			return err
		}
		fs, err = vfs.NewWithStores(ds, ds)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("bench: unknown latency mode %q", mode)
	}
	st, err := NewSFS(fs, SFSOptions{
		Encrypt: true, EnhancedCaching: true,
		NoReadAhead: true, WriteBehind: -1,
		TraceSpans: 4 * iters,
	})
	if err != nil {
		return err
	}
	defer st.Close()

	buf := make([]byte, 8192)
	for i := range buf {
		buf[i] = byte(i * 13)
	}
	f, err := st.Create("lat.bin")
	if err != nil {
		return err
	}
	// Serial durable writes: each iteration is one WRITE RPC followed
	// by one COMMIT RPC — in disk mode every COMMIT waits on the WAL.
	for i := 0; i < iters; i++ {
		if _, err := f.WriteAt(buf, uint64(i)*8192); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
	}
	// Serial reads: read-ahead is off, so each iteration is exactly
	// one READ RPC round trip.
	rbuf := make([]byte, 8192)
	for i := 0; i < iters; i++ {
		if _, err := f.ReadAt(rbuf, uint64(i)*8192); err != nil {
			return err
		}
	}

	sfs := st.(*sfsStack)
	var lm LatencyMode
	for _, m := range sfs.cl.StatsSnapshot().Mounts {
		if m.Stages != nil && m.Stages.Total.Count > 0 {
			lm.Client = *m.Stages
		}
	}
	if ss, ok := st.ServerStats(); ok {
		lm.Server = ss.RPC.Stages
	}
	if fig.Latency == nil {
		fig.Latency = make(map[string]LatencyMode)
	}
	fig.Latency[mode] = lm

	label := "SFS (" + mode + " store)"
	for _, side := range []struct {
		name string
		st   stats.StageStat
	}{
		{"client", lm.Client.Total}, {"server", lm.Server.Total},
	} {
		fig.Rows = append(fig.Rows,
			FigureRow{Stack: label, Phase: side.name + " p50", Value: float64(side.st.P50), Unit: "us", RPCs: side.st.Count},
			FigureRow{Stack: label, Phase: side.name + " p95", Value: float64(side.st.P95), Unit: "us", RPCs: side.st.Count},
			FigureRow{Stack: label, Phase: side.name + " p99", Value: float64(side.st.P99), Unit: "us", RPCs: side.st.Count},
		)
	}
	fig.noteCounters(label, st)
	// The counters block would otherwise embed the whole span ring
	// (hundreds of raw spans): introspection, not a result, and it
	// would swamp the committed JSON. Keep the recorded count, drop
	// the dump — the distributions live in fig.Latency.
	if ss, ok := fig.Counters[label]; ok {
		ss.RPC.Trace.Spans = nil
		fig.Counters[label] = ss
	}
	return nil
}
