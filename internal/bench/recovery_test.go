package bench

import "testing"

// TestFigRecoveryShape runs the crash-recovery figure in Quick mode
// and asserts its invariants: the verifier changed (enforced inside
// FigRecovery), zero acknowledged-COMMIT bytes lost, a non-empty WAL
// replay, a retransmitting post-crash sync, and the storage counter
// block in the figure's counter snapshot.
func TestFigRecoveryShape(t *testing.T) {
	fig, err := FigRecovery(Options{Quick: true})
	if err != nil {
		t.Fatalf("FigRecovery: %v", err)
	}
	const label = "SFS (disk store)"
	lost, ok := fig.RowFor(label, "acked commits lost")
	if !ok {
		t.Fatal("missing 'acked commits lost' row")
	}
	if lost.Value != 0 {
		t.Fatalf("acked commits lost = %v bytes, want 0", lost.Value)
	}
	replay, ok := fig.RowFor(label, "replay records")
	if !ok || replay.Value <= 0 {
		t.Fatalf("replay records row = %+v (ok=%v), want a positive count", replay, ok)
	}
	sync, ok := fig.RowFor(label, "post-crash sync")
	if !ok || sync.RPCs == 0 {
		t.Fatalf("post-crash sync row = %+v (ok=%v), want retransmission RPCs", sync, ok)
	}
	ss, ok := fig.Counters[label]
	if !ok {
		t.Fatal("missing server counter snapshot")
	}
	if ss.Storage == nil {
		t.Fatal("counter snapshot has no storage block")
	}
	if ss.Storage.Kind != "disk" {
		t.Fatalf("storage kind = %q, want disk", ss.Storage.Kind)
	}
	if ss.Storage.Fsyncs == 0 {
		t.Fatal("storage fsyncs = 0, want > 0 (retransmitted COMMIT must fsync)")
	}
	if ss.Storage.ReplayRecords == 0 {
		t.Fatal("storage replay_records = 0, want > 0")
	}

	// Bounded-recovery rows (DESIGN.md §15). Byte-identical cold reads
	// and the residency bound are hard-asserted inside the figure; here
	// the rows just have to exist with sane values.
	speedup, ok := fig.RowFor(label, "checkpoint replay speedup")
	if !ok || speedup.Value <= 0 {
		t.Fatalf("checkpoint replay speedup row = %+v (ok=%v), want a positive ratio", speedup, ok)
	}
	for _, phase := range []string{
		"replay 1x history (journal only)",
		"replay 10x history (journal only)",
		"replay 10x history (checkpointed)",
		"checkpoint image load",
	} {
		if row, ok := fig.RowFor(label, phase); !ok || row.Value < 0 {
			t.Fatalf("row %q = %+v (ok=%v), want a non-negative value", phase, row, ok)
		}
	}
	dataset, ok := fig.RowFor(label, "larger-than-RAM dataset")
	if !ok {
		t.Fatal("missing 'larger-than-RAM dataset' row")
	}
	budget, ok := fig.RowFor(label, "larger-than-RAM hot budget")
	if !ok || budget.Value >= dataset.Value {
		t.Fatalf("hot budget %v vs dataset %v: the dataset must exceed the budget", budget.Value, dataset.Value)
	}
	res, ok := fig.RowFor(label, "larger-than-RAM resident")
	if !ok || res.Value > budget.Value {
		t.Fatalf("resident %v bytes (ok=%v) over hot budget %v", res.Value, ok, budget.Value)
	}
	if faults, ok := fig.RowFor(label, "larger-than-RAM faults"); !ok || faults.Value <= 0 {
		t.Fatalf("faults row = %+v (ok=%v), want demand faults", faults, ok)
	}
}
