package bench

import "testing"

// TestFigRecoveryShape runs the crash-recovery figure in Quick mode
// and asserts its invariants: the verifier changed (enforced inside
// FigRecovery), zero acknowledged-COMMIT bytes lost, a non-empty WAL
// replay, a retransmitting post-crash sync, and the storage counter
// block in the figure's counter snapshot.
func TestFigRecoveryShape(t *testing.T) {
	fig, err := FigRecovery(Options{Quick: true})
	if err != nil {
		t.Fatalf("FigRecovery: %v", err)
	}
	const label = "SFS (disk store)"
	lost, ok := fig.RowFor(label, "acked commits lost")
	if !ok {
		t.Fatal("missing 'acked commits lost' row")
	}
	if lost.Value != 0 {
		t.Fatalf("acked commits lost = %v bytes, want 0", lost.Value)
	}
	replay, ok := fig.RowFor(label, "replay records")
	if !ok || replay.Value <= 0 {
		t.Fatalf("replay records row = %+v (ok=%v), want a positive count", replay, ok)
	}
	sync, ok := fig.RowFor(label, "post-crash sync")
	if !ok || sync.RPCs == 0 {
		t.Fatalf("post-crash sync row = %+v (ok=%v), want retransmission RPCs", sync, ok)
	}
	ss, ok := fig.Counters[label]
	if !ok {
		t.Fatal("missing server counter snapshot")
	}
	if ss.Storage == nil {
		t.Fatal("counter snapshot has no storage block")
	}
	if ss.Storage.Kind != "disk" {
		t.Fatalf("storage kind = %q, want disk", ss.Storage.Kind)
	}
	if ss.Storage.Fsyncs == 0 {
		t.Fatal("storage fsyncs = 0, want > 0 (retransmitted COMMIT must fsync)")
	}
	if ss.Storage.ReplayRecords == 0 {
		t.Fatal("storage replay_records = 0, want > 0")
	}
}
