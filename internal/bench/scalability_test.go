package bench

import "testing"

// TestScalabilityClusterScales asserts the qualitative claim of the
// scalability figure with deliberately loose margins: the aggregate
// throughput of 4 concurrent clients against one server must clearly
// beat a single client's (the committed BENCH_scalability.json curve
// shows ~4x; the bar here is 1.5x so scheduler noise cannot flake
// it), and the server's sharded-lock counters must be live.
func TestScalabilityClusterScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const perClient = 1 << 20
	p1, _, err := ScalabilityPoint(1, perClient)
	if err != nil {
		t.Fatal(err)
	}
	p4, ss, err := ScalabilityPoint(4, perClient)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("1 client: %.2f MB/s, 4 clients: %.2f MB/s", p1.MBps(), p4.MBps())
	if p4.MBps() < 1.5*p1.MBps() {
		t.Errorf("4 clients reached only %.2f MB/s vs %.2f MB/s for one — server hot path serialized",
			p4.MBps(), p1.MBps())
	}
	if ss.VFSLocks.NodeLocks == 0 {
		t.Error("server counter snapshot carries no vfs lock stats")
	}
	if ss.Leases.Granted == 0 {
		t.Error("server counter snapshot carries no lease stats")
	}
	if p4.RPCs == 0 {
		t.Error("no RPCs counted across the cluster")
	}
}
