package bench

import (
	"testing"
)

// TestFigLoginShape is the CI login-storm smoke: the quick figure must
// produce both reconnect rates, do zero Rabin decrypts in the resumed
// phase (the whole point of resumption), resume faster than it fully
// negotiates, and carry the eks ablation.
func TestFigLoginShape(t *testing.T) {
	fig, err := FigLogin(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	ls := fig.Login
	if ls == nil {
		t.Fatal("figure has no login block")
	}
	if ls.RabinDecryptsResume != 0 {
		t.Fatalf("resumed phase performed %d Rabin decrypts, want 0", ls.RabinDecryptsResume)
	}
	if want := uint64(2 * ls.FullConns); ls.RabinDecryptsFull != want {
		t.Fatalf("full phase performed %d Rabin decrypts, want %d (2 per in-process connection)", ls.RabinDecryptsFull, want)
	}
	if ls.FullPerSec <= 0 || ls.ResumedPerSec <= 0 {
		t.Fatalf("non-positive rates: full=%.1f resumed=%.1f", ls.FullPerSec, ls.ResumedPerSec)
	}
	if ls.Speedup <= 1 {
		t.Fatalf("resumption slower than full negotiation (speedup %.2f)", ls.Speedup)
	}
	if ls.Handshakes.Resumed != uint64(ls.ResumedConns) {
		t.Fatalf("server resumed %d sessions, want %d", ls.Handshakes.Resumed, ls.ResumedConns)
	}
	if ls.MBPer10kSessions <= 0 {
		t.Fatalf("per-session memory %.3f MB/10k, want > 0", ls.MBPer10kSessions)
	}
	if len(ls.Eks) != 2 {
		t.Fatalf("quick eks ablation has %d points, want 2", len(ls.Eks))
	}
	// Higher cost must not be faster: the work factor is the knob.
	if ls.Eks[1].PerSec > ls.Eks[0].PerSec {
		t.Fatalf("eks cost %d ran faster than cost %d (%.1f > %.1f auth/s)",
			ls.Eks[1].Cost, ls.Eks[0].Cost, ls.Eks[1].PerSec, ls.Eks[0].PerSec)
	}
	// Rows: 4 storm rows plus one per eks point.
	if want := 4 + len(ls.Eks); len(fig.Rows) != want {
		t.Fatalf("figure has %d rows, want %d", len(fig.Rows), want)
	}
	if fig.Slug() != "login-storm" {
		t.Fatalf("slug %q, want login-storm", fig.Slug())
	}
}
