package bench

// The connection-storm figure: how fast can one SFS server establish
// sessions? Phase A reconnects with full key negotiations — every
// connection pays the Rabin decrypts, throttled by the negotiation
// pool. Phase B reconnects by session resumption (DESIGN.md §14) —
// one SHA-1 rekey per connection and zero public-key operations,
// which the figure asserts with the secure channel's Rabin-decrypt
// counter. A held-open phase measures per-session server memory from
// the heap delta across a block of live sessions, and an eksblowfish
// ablation sweeps the SRP password cost against authserver
// throughput: the work factor that makes stolen password files
// expensive to crack is paid on every password login, so it is also
// an admission-control knob.
//
// Like the recovery figure, the storm runs over raw loopback TCP with
// no netsim shaping: the quantities of interest — public-key cost,
// pool scheduling, per-session state — are all endpoint-side, and
// shaping a thousand short-lived connections would only measure the
// shaper.

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/authserv"
	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/secchan"
	"repro/internal/server"
	"repro/internal/sfsrpc"
	"repro/internal/sunrpc"
	"repro/internal/vfs"
)

// LoginStats is the committed detail block of BENCH_login-storm.json.
type LoginStats struct {
	Workers      int `json:"workers"`
	FullConns    int `json:"full_conns"`
	ResumedConns int `json:"resumed_conns"`

	FullPerSec    float64 `json:"full_logins_per_sec"`
	ResumedPerSec float64 `json:"resumed_logins_per_sec"`
	// Speedup is resumed over full reconnect rate; the acceptance bar
	// for this figure is >= 5.
	Speedup float64 `json:"resume_speedup"`

	// Rabin decrypt counts observed during each measured phase: the
	// full phase costs two per connection (both ends run in-process),
	// the resumed phase must cost zero.
	RabinDecryptsFull   uint64 `json:"rabin_decrypts_full"`
	RabinDecryptsResume uint64 `json:"rabin_decrypts_resume"`

	// Per-session server memory: heap growth across HeldSessions
	// concurrently live sessions, scaled to MB per 10k sessions.
	HeldSessions     int     `json:"held_sessions"`
	MBPer10kSessions float64 `json:"mb_per_10k_sessions"`

	// Handshakes is the server master's session-establishment block
	// after the storm; Secchan the channel-layer counters.
	Handshakes server.HandshakeStats `json:"handshakes"`
	Secchan    secchan.Snapshot      `json:"secchan"`

	// Eks is the password-cost ablation: SRP fetch exchanges per
	// second at each eksblowfish work factor.
	Eks []EksPoint `json:"eks_ablation"`
}

// EksPoint is one eksblowfish work factor's measured auth throughput.
type EksPoint struct {
	Cost      uint    `json:"cost"`
	Exchanges int     `json:"exchanges"`
	PerSec    float64 `json:"auths_per_sec"`
}

// loginKeyBits is the Rabin modulus for the storm. Unlike the file
// system figures — which shrink to 768 bits because channel setup is
// a one-off there — this figure measures the public-key work itself,
// so it uses the paper's deployed key size (sfskey's default).
const loginKeyBits = 1024

// loginServer is the storm target: a server master on raw loopback
// TCP with an explicit admission policy and no traffic shaping.
type loginServer struct {
	master *server.Server
	ln     net.Listener
	path   core.Path
}

func startLoginServer() (*loginServer, error) {
	rng := prng.NewSeeded([]byte("bench-login"))
	key, err := rabin.GenerateKey(rng, loginKeyBits)
	if err != nil {
		return nil, err
	}
	master := server.New(rng)
	// A deep backlog so the storm measures negotiation throughput, not
	// shed connections; the admission tests cover the fast-reject path.
	master.SetHandshakePolicy(server.HandshakePolicy{
		Backlog: 4096, Timeout: 30 * time.Second,
	})
	fs := vfs.New()
	path, err := master.Serve(server.ServedConfig{
		Location: "storm.example.com", Key: key, FS: fs,
	})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go master.ListenAndServe(l) //nolint:errcheck
	return &loginServer{master: master, ln: l, path: path}, nil
}

// seedTickets performs one uncounted full handshake per worker and
// returns the minted resumption tickets, waiting a beat for the
// server's post-handshake cache inserts to land so the first measured
// resumes hit.
func (sv *loginServer) seedTickets(workers int, tempKey *rabin.PrivateKey) ([]*secchan.ResumeTicket, error) {
	tickets := make([]*secchan.ResumeTicket, workers)
	for w := 0; w < workers; w++ {
		rng := prng.NewSeeded([]byte(fmt.Sprintf("storm-seed-%d", w)))
		sec, info, err := sv.connectFull(tempKey, rng)
		if err != nil {
			return nil, err
		}
		sec.Close()
		tickets[w] = info.Ticket
	}
	time.Sleep(10 * time.Millisecond)
	return tickets, nil
}

// storm runs total reconnects across workers concurrent clients and
// returns the elapsed wall time. With tickets each worker chains
// single-use resumption tickets from its seed; with nil tickets every
// connection negotiates in full. All workers share one temporary key:
// Rabin key operations are read-only, so this only removes keygen
// noise from the measurement.
func (sv *loginServer) storm(workers, total int, tempKey *rabin.PrivateKey, tickets []*secchan.ResumeTicket) (time.Duration, error) {
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	each := total / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := prng.NewSeeded([]byte(fmt.Sprintf("storm-%d", w)))
			var ticket *secchan.ResumeTicket
			if tickets != nil {
				ticket = tickets[w]
			}
			for i := 0; i < each; i++ {
				conn, err := net.Dial("tcp", sv.ln.Addr().String())
				if err != nil {
					errs <- err
					return
				}
				sec, info, _, err := secchan.ClientHandshakeResume(conn, secchan.ServiceFile, sv.path, tempKey, rng, ticket)
				if err != nil {
					errs <- err
					conn.Close()
					return
				}
				if tickets != nil {
					ticket = info.Ticket
				}
				sec.Close()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	return elapsed, nil
}

func (sv *loginServer) connectFull(tempKey *rabin.PrivateKey, rng *prng.Generator) (*secchan.Conn, *secchan.Info, error) {
	conn, err := net.Dial("tcp", sv.ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	sec, info, _, err := secchan.ClientHandshake(conn, secchan.ServiceFile, sv.path, tempKey, rng)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return sec, info, nil
}

// heldSessionsMB establishes held concurrent sessions, keeps them all
// open, and reports the server-process heap growth in MB per 10k
// sessions. Client and server share the process, so the figure is an
// upper bound on the server's share (channel state dominates: two
// ARC4 key schedules plus MAC state per side per session).
func (sv *loginServer) heldSessionsMB(held int, tempKey *rabin.PrivateKey) (float64, error) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	open := make([]*secchan.Conn, 0, held)
	defer func() {
		for _, c := range open {
			c.Close()
		}
	}()
	rng := prng.NewSeeded([]byte("storm-held"))
	for i := 0; i < held; i++ {
		sec, _, err := sv.connectFull(tempKey, rng)
		if err != nil {
			return 0, err
		}
		open = append(open, sec)
	}
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc <= m0.HeapAlloc {
		return 0, nil
	}
	perSession := float64(m1.HeapAlloc-m0.HeapAlloc) / float64(held)
	return perSession * 10000 / (1 << 20), nil
}

// eksAblation measures SRP password-login throughput at each
// eksblowfish work factor. Every exchange runs the full protocol —
// client-side password hashing at the registered cost, the SRP
// exchange, private-key decryption — over an in-memory pipe with a
// fresh key-service handler (the handler, like a real connection,
// serves one SRP exchange).
func eksAblation(costs []uint, exchanges int) ([]EksPoint, error) {
	rng := prng.NewSeeded([]byte("storm-eks"))
	userKey, err := rabin.GenerateKey(rng, 768)
	if err != nil {
		return nil, err
	}
	points := make([]EksPoint, 0, len(costs))
	for _, cost := range costs {
		auth := authserv.New("/sfs/storm", rng)
		db := authserv.NewDB("local", true)
		auth.AddDB(db)
		if err := auth.Register(db, "dm", 1000, []uint32{1000}, authserv.RegisterOptions{
			Password: "storm-pw", PrivateKey: userKey, EksCost: cost,
		}); err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < exchanges; i++ {
			c1, c2 := net.Pipe()
			rpc := sunrpc.NewServer()
			rpc.Register(sfsrpc.KeyProgram, sfsrpc.Version, auth.KeyServiceHandler())
			go rpc.ServeConn(c2) //nolint:errcheck
			cl := sunrpc.NewClient(c1)
			if _, err := authserv.FetchWithPassword(cl, "dm", "storm-pw", rng); err != nil {
				cl.Close()
				return nil, fmt.Errorf("bench: eks cost %d: %w", cost, err)
			}
			cl.Close()
			c2.Close()
		}
		elapsed := time.Since(start)
		points = append(points, EksPoint{
			Cost: cost, Exchanges: exchanges,
			PerSec: float64(exchanges) / elapsed.Seconds(),
		})
	}
	return points, nil
}

// FigLogin runs the connection-storm experiment and returns the
// figure committed as BENCH_login-storm.json.
func FigLogin(opts Options) (*Figure, error) {
	workers, full, resumed, held, exchanges := 8, 1600, 3200, 256, 20
	costs := []uint{2, 4, 6, 8}
	if opts.Quick {
		workers, full, resumed, held, exchanges = 4, 160, 320, 64, 5
		costs = []uint{2, 4}
	}
	fig := &Figure{
		ID: "Login-storm",
		Title: fmt.Sprintf("connection-storm session establishment (%d full + %d resumed reconnects, %d workers)",
			full, resumed, workers),
	}
	sv, err := startLoginServer()
	if err != nil {
		return nil, err
	}
	defer sv.ln.Close()
	tempKey, err := rabin.GenerateKey(prng.NewSeeded([]byte("storm-temp")), loginKeyBits)
	if err != nil {
		return nil, err
	}

	rabin0 := secchan.RabinDecrypts()
	fullElapsed, err := sv.storm(workers, full, tempKey, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: full-handshake storm: %w", err)
	}
	rabinFull := secchan.RabinDecrypts() - rabin0

	// Resumed phase: the seeds' decrypts land before the sample, so the
	// measured window must be Rabin-free.
	tickets, err := sv.seedTickets(workers, tempKey)
	if err != nil {
		return nil, fmt.Errorf("bench: seeding tickets: %w", err)
	}
	rabin1 := secchan.RabinDecrypts()
	resumedElapsed, err := sv.storm(workers, resumed, tempKey, tickets)
	if err != nil {
		return nil, fmt.Errorf("bench: resumed storm: %w", err)
	}
	rabinResume := secchan.RabinDecrypts() - rabin1

	mbPer10k, err := sv.heldSessionsMB(held, tempKey)
	if err != nil {
		return nil, fmt.Errorf("bench: held sessions: %w", err)
	}
	eks, err := eksAblation(costs, exchanges)
	if err != nil {
		return nil, err
	}

	ls := &LoginStats{
		Workers: workers, FullConns: full, ResumedConns: resumed,
		FullPerSec:    float64(full) / fullElapsed.Seconds(),
		ResumedPerSec: float64(resumed) / resumedElapsed.Seconds(),
		RabinDecryptsFull:   rabinFull,
		RabinDecryptsResume: rabinResume,
		HeldSessions:        held,
		MBPer10kSessions:    mbPer10k,
		Handshakes:          sv.master.StatsSnapshot().Handshakes,
		Secchan:             secchan.StatsSnapshot(),
		Eks:                 eks,
	}
	ls.Speedup = ls.ResumedPerSec / ls.FullPerSec
	fig.Login = ls

	fig.Rows = append(fig.Rows,
		FigureRow{Stack: "SFS", Phase: "full reconnect", Value: ls.FullPerSec, Unit: "logins/s", RPCs: uint64(full)},
		FigureRow{Stack: "SFS", Phase: "resumed reconnect", Value: ls.ResumedPerSec, Unit: "logins/s", RPCs: uint64(resumed)},
		FigureRow{Stack: "SFS", Phase: "resume speedup", Value: ls.Speedup, Unit: "x"},
		FigureRow{Stack: "SFS", Phase: "session memory", Value: ls.MBPer10kSessions, Unit: "MB/10k"},
	)
	for _, p := range eks {
		fig.Rows = append(fig.Rows, FigureRow{
			Stack: "authserv", Phase: fmt.Sprintf("eks cost %d", p.Cost),
			Value: p.PerSec, Unit: "auth/s", RPCs: uint64(p.Exchanges),
		})
	}
	fig.render(opts.out())
	return fig, nil
}
