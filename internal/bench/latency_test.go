package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stats"
)

// clientStages and serverStages partition the taxonomy: each span
// carries one side's stages, and their sums must reconcile to that
// side's span totals.
var clientStages = []string{"cli_encode", "cli_seal", "cli_write", "wire", "cli_decode"}
var serverStages = []string{"srv_open", "queue", "dispatch", "vfs", "fsync", "reply_seal", "reply_write"}

func stageSum(s stats.StageSetSnapshot, names []string) uint64 {
	var sum uint64
	for _, n := range names {
		sum += s.Stages[n].SumUS
	}
	return sum
}

// reconcile asserts the acceptance criterion: the per-stage sums add
// up to the span totals within 5% (the unattributed remainder is lock
// handoffs and scheduler gaps between stamps).
func reconcile(t *testing.T, label string, s stats.StageSetSnapshot, names []string) {
	t.Helper()
	total := s.Total.SumUS
	sum := stageSum(s, names)
	if total == 0 {
		t.Fatalf("%s: no spans recorded", label)
	}
	lo, hi := total*95/100, total*105/100
	if sum < lo || sum > hi {
		t.Fatalf("%s: stage sum %dus vs total %dus (outside 5%%)", label, sum, total)
	}
}

func TestFigLatencyShape(t *testing.T) {
	fig, err := FigLatency(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"mem", "disk"} {
		lm, ok := fig.Latency[mode]
		if !ok {
			t.Fatalf("mode %q missing from fig.Latency", mode)
		}
		reconcile(t, mode+" client", lm.Client, clientStages)
		reconcile(t, mode+" server", lm.Server, serverStages)
		// Client and server watch the same RPC stream; span counts of
		// the two rings must agree.
		if lm.Client.Total.Count != lm.Server.Total.Count {
			t.Fatalf("%s: client recorded %d spans, server %d",
				mode, lm.Client.Total.Count, lm.Server.Total.Count)
		}
		fsync := lm.Server.Stages["fsync"]
		switch mode {
		case "mem":
			// The memory store never implements ClockedStore, so the
			// fsync stage is structurally zero.
			if fsync.Count != 0 {
				t.Fatalf("mem mode recorded %d fsync stages", fsync.Count)
			}
		case "disk":
			// Every COMMIT (one per durable write iteration) waits on
			// the WAL; the stage must show up.
			if fsync.Count == 0 || fsync.SumUS == 0 {
				t.Fatalf("disk mode fsync stage empty: %+v", fsync)
			}
		}
		// The wire stage only exists client-side, the vfs/queue stages
		// only server-side — the two views must not bleed into each
		// other.
		if lm.Client.Stages["vfs"].Count != 0 || lm.Client.Stages["fsync"].Count != 0 {
			t.Fatalf("%s: server stages leaked into client spans", mode)
		}
		if lm.Server.Stages["wire"].Count != 0 || lm.Server.Stages["cli_encode"].Count != 0 {
			t.Fatalf("%s: client stages leaked into server spans", mode)
		}
	}
	// The figure rows carry derived quantiles for both modes.
	if _, ok := fig.RowFor("SFS (disk store)", "server p99"); !ok {
		t.Fatal("missing disk-store server p99 row")
	}

	// The committed JSON must round-trip the latency section.
	dir := t.TempDir()
	path, err := fig.WriteJSON(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_latency.json" {
		t.Fatalf("figure wrote %s, want BENCH_latency.json", filepath.Base(path))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var jf struct {
		Latency map[string]LatencyMode `json:"latency"`
	}
	if err := json.Unmarshal(data, &jf); err != nil {
		t.Fatal(err)
	}
	if jf.Latency["disk"].Server.Stages["fsync"].Count == 0 {
		t.Fatal("fsync stage lost in JSON round trip")
	}
}
