package bench

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/sunrpc"
)

// TestFig5WireCopyInvariant asserts the zero-copy wire path's headline
// claim (DESIGN.md §12) from the process-wide wire-copy counters over
// the Figure 5 throughput workload on the full SFS stack (encryption
// on): with gather enabled each 8KB payload byte is memcpy'd at most
// once end to end — the single fused copy+encrypt in the seal — and
// with gather disabled the legacy funnel pays at least 3 copies per
// byte (flat XDR append, record flatten, channel staging, decoder
// copy-out). CI's bench-smoke step runs exactly this test.
func TestFig5WireCopyInvariant(t *testing.T) {
	measure := func(t *testing.T) stats.WireCopyStats {
		st := buildOrSkip(t, KindSFS)
		// Reset after Build so handshake and mount traffic (none of it
		// payload-class anyway) cannot blur the workload's ratio.
		stats.ResetWireCopy()
		if _, err := ThroughputMicro(st, 4<<20); err != nil {
			t.Fatal(err)
		}
		return stats.WireCopySnapshot()
	}
	t.Run("gather", func(t *testing.T) {
		s := measure(t)
		if s.PayloadBytes == 0 {
			t.Fatal("workload moved no payload-class bytes; counters are not wired up")
		}
		if s.CopyRatio > 1.01 {
			t.Errorf("gather on: copy ratio %.3f (copied %d / payload %d), want <= 1.01",
				s.CopyRatio, s.BytesCopied, s.PayloadBytes)
		}
		// Per-record view: every payload-bearing record must land in
		// the <=1-copies bucket of the histogram.
		for _, b := range s.CopiesPerPayload.Buckets {
			if b.Lo > 1 {
				t.Errorf("%d records observed %d..%d copies per payload byte, want <= 1",
					b.Count, b.Lo, b.Hi)
			}
		}
	})
	t.Run("ablation", func(t *testing.T) {
		sunrpc.SetGather(false)
		defer sunrpc.SetGather(true)
		s := measure(t)
		if s.PayloadBytes == 0 {
			t.Fatal("workload moved no payload-class bytes; counters are not wired up")
		}
		if s.CopyRatio < 3 {
			t.Errorf("gather off: copy ratio %.3f (copied %d / payload %d), want >= 3 (legacy funnel)",
				s.CopyRatio, s.BytesCopied, s.PayloadBytes)
		}
	})
}
