// Package bench implements the paper's evaluation (§4): the four file
// system stacks under test (Local FFS stand-in, NFS 3 over UDP, NFS 3
// over TCP, and SFS with its ablation knobs), the workloads (null-RPC
// and streaming micro-benchmarks, the Modified Andrew Benchmark, a
// synthetic kernel compile, and the Sprite LFS small- and large-file
// benchmarks), and harness functions that regenerate every figure.
//
// Hardware-era costs come from internal/netsim; protocol behaviour
// (RPC counts, caching, crypto) is executed for real. EXPERIMENTS.md
// records paper-vs-measured numbers for each figure.
package bench

import (
	"fmt"
	"net"

	"repro/internal/agent"
	"repro/internal/authserv"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/secchan"
	"repro/internal/server"
	"repro/internal/sunrpc"
	"repro/internal/vfs"
)

// Stack abstracts one file system configuration under benchmark. All
// paths are relative to the stack's working root.
type Stack interface {
	Name() string
	// Mkdir creates a directory.
	Mkdir(path string) error
	// WriteFile creates path with data and flushes it to stable
	// storage, as the Sprite benchmarks require.
	WriteFile(path string, data []byte) error
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// Stat fetches attributes.
	Stat(path string) error
	// StatMtime fetches a file's modification time, for the
	// close-to-open revalidation the compile workload models.
	StatMtime(path string) (int64, error)
	// ReadDir lists a directory.
	ReadDir(path string) error
	// Remove unlinks a file.
	Remove(path string) error
	// ChownFail attempts an unauthorized chown; the paper's
	// latency micro-benchmark (always a round trip, never disk).
	ChownFail(path string) error
	// Truncate sets a file's size (sparse files for the streaming
	// micro-benchmark).
	Truncate(path string, size uint64) error
	// Open returns a handle for chunked I/O.
	Open(path string) (StackFile, error)
	// Create returns a writable handle.
	Create(path string) (StackFile, error)
	// Stats reports wire RPCs when the stack has a wire.
	Stats() nfs.Stats
	// ServerStats reports the server-side NFS counters (per-procedure
	// calls, write stability, COMMIT batches) when the stack has a
	// server; ok is false for the local baseline.
	ServerStats() (nfs.ServerStats, bool)
	// Close tears the stack down.
	Close()
}

// StackFile is an open file on a stack.
type StackFile interface {
	ReadAt(p []byte, off uint64) (int, error)
	WriteAt(p []byte, off uint64) (int, error)
	Sync() error
}

// ---------------------------------------------------------------------
// Local: the substrate file system driven directly (the paper's
// "Local" FFS rows).

type localStack struct {
	fs   *vfs.FS
	cred vfs.Cred
}

// NewLocal builds the local baseline over fs (install a netsim disk
// on fs for era-accurate timings).
func NewLocal(fs *vfs.FS) Stack {
	return &localStack{fs: fs, cred: vfs.Cred{UID: 0, GIDs: []uint32{0}}}
}

func (s *localStack) Name() string { return "Local" }

func (s *localStack) Mkdir(path string) error {
	_, err := s.fs.MkdirAll(s.cred, path, 0o755)
	return err
}

func (s *localStack) WriteFile(path string, data []byte) error {
	if err := s.fs.WriteFile(s.cred, path, data, 0o644); err != nil {
		return err
	}
	id, _, err := s.fs.Resolve(s.cred, path)
	if err != nil {
		return err
	}
	return s.fs.Commit(id)
}

func (s *localStack) ReadFile(path string) ([]byte, error) {
	return s.fs.ReadFile(s.cred, path)
}

func (s *localStack) Stat(path string) error {
	id, _, err := s.fs.Resolve(s.cred, path)
	if err != nil {
		return err
	}
	_, err = s.fs.GetAttr(id)
	return err
}

func (s *localStack) StatMtime(path string) (int64, error) {
	id, _, err := s.fs.Resolve(s.cred, path)
	if err != nil {
		return 0, err
	}
	attr, err := s.fs.GetAttr(id)
	if err != nil {
		return 0, err
	}
	return attr.Mtime.UnixNano(), nil
}

func (s *localStack) ReadDir(path string) error {
	id, _, err := s.fs.Resolve(s.cred, path)
	if err != nil {
		return err
	}
	_, _, err = s.fs.ReadDir(s.cred, id, 0, 0)
	return err
}

func (s *localStack) Remove(path string) error {
	dir, name := splitDirFile(path)
	dirID, _, err := s.fs.Resolve(s.cred, dir)
	if err != nil {
		return err
	}
	return s.fs.Remove(s.cred, dirID, name)
}

// ChownFail is the paper's latency probe: an unauthorized fchown on
// an already-open file — always a round trip for remote stacks, never
// a disk access. Stacks cache the resolved handle after the first
// call so steady-state cost is exactly one RPC.
func (s *localStack) ChownFail(path string) error {
	id, _, err := s.fs.Resolve(s.cred, path)
	if err != nil {
		return err
	}
	uid := uint32(12345)
	nonOwner := vfs.Cred{UID: 40000, GIDs: []uint32{40000}}
	if _, err := s.fs.SetAttrs(nonOwner, id, vfs.SetAttr{UID: &uid}); err == nil {
		return fmt.Errorf("bench: unauthorized chown unexpectedly succeeded")
	}
	return nil
}

type localFile struct {
	s  *localStack
	id vfs.FileID
}

func (s *localStack) Open(path string) (StackFile, error) {
	id, _, err := s.fs.Resolve(s.cred, path)
	if err != nil {
		return nil, err
	}
	return &localFile{s: s, id: id}, nil
}

func (s *localStack) Create(path string) (StackFile, error) {
	if err := s.fs.WriteFile(s.cred, path, nil, 0o644); err != nil {
		return nil, err
	}
	return s.Open(path)
}

func (f *localFile) ReadAt(p []byte, off uint64) (int, error) {
	data, _, err := f.s.fs.Read(f.s.cred, f.id, off, uint32(len(p)))
	if err != nil {
		return 0, err
	}
	return copy(p, data), nil
}

func (f *localFile) WriteAt(p []byte, off uint64) (int, error) {
	if _, err := f.s.fs.Write(f.s.cred, f.id, off, p, false); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (f *localFile) Sync() error { return f.s.fs.Commit(f.id) }

func (s *localStack) Truncate(path string, size uint64) error {
	id, _, err := s.fs.Resolve(s.cred, path)
	if err != nil {
		return err
	}
	_, err = s.fs.SetAttrs(s.cred, id, vfs.SetAttr{Size: &size})
	return err
}

func (s *localStack) Stats() nfs.Stats                     { return nfs.Stats{} }
func (s *localStack) ServerStats() (nfs.ServerStats, bool) { return nfs.ServerStats{}, false }
func (s *localStack) Close()                               {}

func splitDirFile(path string) (string, string) {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i], path[i+1:]
		}
	}
	return "", path
}

// ---------------------------------------------------------------------
// NFS 3 baseline over a shaped transport (UDP or TCP).

type nfsStack struct {
	name     string
	srv      *nfs.Server
	cl       *nfs.Client
	root     nfs.FH
	ln       net.Listener
	pc       net.PacketConn
	dirs     map[string]nfs.FH
	files    map[string]nfs.FH
	chownFH  nfs.FH
	nonOwner *nfs.Client
}

// NewNFS builds the kernel-NFS baseline over fs with the given
// transport ("udp" or "tcp") and netsim profile.
func NewNFS(fs *vfs.FS, transport string, profile netsim.Profile) (Stack, error) {
	srv := nfs.NewServer(fs, nfs.ServerConfig{})
	st := &nfsStack{srv: srv, dirs: make(map[string]nfs.FH), files: make(map[string]nfs.FH)}
	auth := func() sunrpc.OpaqueAuth { return sunrpc.UnixAuth(0, []uint32{0}) }
	switch transport {
	case "udp":
		st.name = "NFS 3 (UDP)"
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		st.pc = pc
		rpc := sunrpc.NewServer()
		rpc.Register(nfs.Program, nfs.Version, srv.Handler())
		go rpc.ServePacket(netsim.ShapePacketConn(pc, profile)) //nolint:errcheck
		conn, err := net.Dial("udp", pc.LocalAddr().String())
		if err != nil {
			return nil, err
		}
		shaped := netsim.Shape(conn, profile)
		st.cl = nfs.Dial(sunrpc.NewDatagramConn(shaped), nfs.ClientConfig{Auth: auth})
	case "tcp":
		st.name = "NFS 3 (TCP)"
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		st.ln = l
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				srv.ServeConn(netsim.Shape(c, profile))
			}
		}()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, err
		}
		st.cl = nfs.Dial(netsim.Shape(conn, profile), nfs.ClientConfig{Auth: auth})
	default:
		return nil, fmt.Errorf("bench: unknown transport %q", transport)
	}
	root, _, err := st.cl.MountRoot()
	if err != nil {
		st.Close()
		return nil, err
	}
	st.root = root
	return st, nil
}

func (s *nfsStack) Name() string { return s.name }

// walk resolves a directory path with LOOKUP RPCs, caching directory
// handles like a kernel dnlc would.
func (s *nfsStack) walk(path string) (nfs.FH, error) {
	if path == "" {
		return s.root, nil
	}
	if fh, ok := s.dirs[path]; ok {
		return fh, nil
	}
	dir, name := splitDirFile(path)
	parent, err := s.walk(dir)
	if err != nil {
		return nil, err
	}
	fh, _, err := s.cl.Lookup(parent, name)
	if err != nil {
		return nil, err
	}
	s.dirs[path] = fh
	return fh, nil
}

// lookupFile resolves a file, caching handles like the kernel's name
// cache (dnlc) so repeated opens cost one GETATTR, not a LOOKUP storm.
// Mutating operations drop the affected entries.
func (s *nfsStack) lookupFile(path string) (nfs.FH, error) {
	if fh, ok := s.files[path]; ok {
		return fh, nil
	}
	dir, name := splitDirFile(path)
	parent, err := s.walk(dir)
	if err != nil {
		return nil, err
	}
	fh, _, err := s.cl.Lookup(parent, name)
	if err != nil {
		return nil, err
	}
	s.files[path] = fh
	return fh, nil
}

func (s *nfsStack) Mkdir(path string) error {
	dir, name := splitDirFile(path)
	parent, err := s.walk(dir)
	if err != nil {
		return err
	}
	fh, _, err := s.cl.Mkdir(parent, name, 0o755)
	if err == nil {
		s.dirs[path] = fh
	}
	return err
}

func (s *nfsStack) WriteFile(path string, data []byte) error {
	f, err := s.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		return err
	}
	return f.Sync()
}

func (s *nfsStack) ReadFile(path string) ([]byte, error) {
	fh, err := s.lookupFile(path)
	if err != nil {
		return nil, err
	}
	// Close-to-open consistency: a kernel NFS client revalidates
	// attributes on every open, even with the handle cached.
	if _, err := s.cl.GetAttr(fh); err != nil {
		return nil, err
	}
	return s.cl.ReadAll(fh, 8192)
}

func (s *nfsStack) Stat(path string) error {
	fh, err := s.lookupFile(path)
	if err != nil {
		return err
	}
	_, err = s.cl.GetAttr(fh)
	return err
}

func (s *nfsStack) StatMtime(path string) (int64, error) {
	fh, err := s.lookupFile(path)
	if err != nil {
		return 0, err
	}
	attr, err := s.cl.GetAttr(fh)
	if err != nil {
		return 0, err
	}
	return int64(attr.Mtime), nil
}

func (s *nfsStack) ReadDir(path string) error {
	fh, err := s.walk(path)
	if err != nil {
		return err
	}
	_, _, err = s.cl.ReadDir(fh, 0, 1024)
	return err
}

func (s *nfsStack) Remove(path string) error {
	dir, name := splitDirFile(path)
	parent, err := s.walk(dir)
	if err != nil {
		return err
	}
	delete(s.files, path)
	return s.cl.Remove(parent, name)
}

func (s *nfsStack) ChownFail(path string) error {
	if s.chownFH == nil {
		fh, err := s.lookupFile(path)
		if err != nil {
			return err
		}
		s.chownFH = fh
		s.nonOwner = s.cl.WithAuth("nonowner", func() sunrpc.OpaqueAuth {
			return sunrpc.UnixAuth(40000, []uint32{40000})
		})
	}
	uid := uint32(12345)
	if _, err := s.nonOwner.SetAttr(nfs.SetAttrArgs{FH: s.chownFH, SetUID: &uid}); err == nil {
		return fmt.Errorf("bench: unauthorized chown unexpectedly succeeded")
	}
	return nil
}

type nfsFile struct {
	cl *nfs.Client
	fh nfs.FH
}

func (s *nfsStack) Open(path string) (StackFile, error) {
	fh, err := s.lookupFile(path)
	if err != nil {
		return nil, err
	}
	return &nfsFile{cl: s.cl, fh: fh}, nil
}

func (s *nfsStack) Create(path string) (StackFile, error) {
	dir, name := splitDirFile(path)
	parent, err := s.walk(dir)
	if err != nil {
		return nil, err
	}
	fh, _, err := s.cl.Create(parent, name, 0o644, false)
	if err != nil {
		return nil, err
	}
	s.files[path] = fh
	return &nfsFile{cl: s.cl, fh: fh}, nil
}

func (f *nfsFile) ReadAt(p []byte, off uint64) (int, error) {
	data, _, err := f.cl.Read(f.fh, off, uint32(len(p)))
	if err != nil {
		return 0, err
	}
	return copy(p, data), nil
}

func (f *nfsFile) WriteAt(p []byte, off uint64) (int, error) {
	n, err := f.cl.Write(f.fh, off, p, nfs.Unstable)
	return int(n), err
}

func (f *nfsFile) Sync() error { _, err := f.cl.Commit(f.fh); return err }

func (s *nfsStack) Truncate(path string, size uint64) error {
	fh, err := s.lookupFile(path)
	if err != nil {
		return err
	}
	_, err = s.cl.SetAttr(nfs.SetAttrArgs{FH: fh, SetSize: &size})
	return err
}

func (s *nfsStack) Stats() nfs.Stats { return s.cl.Stats() }

func (s *nfsStack) ServerStats() (nfs.ServerStats, bool) {
	return s.srv.StatsSnapshot(), true
}

func (s *nfsStack) Close() {
	if s.cl != nil {
		s.cl.Close()
	}
	if s.ln != nil {
		s.ln.Close()
	}
	if s.pc != nil {
		s.pc.Close()
	}
}

// ---------------------------------------------------------------------
// SFS: the full stack — client daemon, agent, secure channel, server
// master — over a shaped transport.

// SFSOptions are the ablation knobs of the paper's evaluation.
type SFSOptions struct {
	// Encrypt selects ARC4+MAC on the channel (the "SFS" vs "SFS
	// w/o encryption" rows). Both the real cipher and the netsim
	// cost model follow this switch.
	Encrypt bool
	// EnhancedCaching selects the attribute-lease and access-cache
	// extensions (the MAB ablation).
	EnhancedCaching bool
	// NoReadAhead disables the sequential-read pipeline, forcing
	// one READ at a time — the serial behaviour the pre-pipeline
	// client had (the Fig. 5 readahead ablation).
	NoReadAhead bool
	// WriteBehind sets the write-behind window (unstable WRITEs in
	// flight per file): 0 selects the default depth, negative
	// disables the pipeline — one synchronous WRITE per chunk, the
	// pre-pipeline behaviour (the Fig. 9 write-behind ablation).
	WriteBehind int
	// DataCacheBytes sizes the client data block cache for the
	// warm-read figure. Zero keeps the cache OFF — the opposite of
	// the client default — so figures 5–9 keep reproducing the
	// paper's cacheless client and their committed JSONs stay
	// comparable; only workloads that opt in measure the cache.
	DataCacheBytes int64
	// TraceSpans > 0 enables per-RPC stage tracing on both the server
	// and every client, with span rings of this capacity — the
	// latency-attribution figure's knob. Zero keeps tracing off so the
	// other figures measure the untraced hot path.
	TraceSpans int
}

// dataCacheBytes maps the bench knob (zero = off) onto the client
// knob (zero = default on, negative = off).
func dataCacheBytes(opt int64) int64 {
	if opt == 0 {
		return -1
	}
	return opt
}

type sfsStack struct {
	name      string
	cl        *client.Client
	master    *server.Server
	location  string
	base      string
	ln        net.Listener
	opts      SFSOptions
	chownFile *client.File
}

// readAheadDepth maps the ablation switch to the client knob.
func readAheadDepth(disabled bool) int {
	if disabled {
		return -1
	}
	return 0 // default depth
}

// sfsServer is the server half of an SFS deployment — master, auth
// database, shaped listener — shared between the single-client stack
// (NewSFS) and the multi-client scalability cluster (NewSFSCluster).
type sfsServer struct {
	master   *server.Server
	ln       net.Listener
	location string
	base     string
	profile  netsim.Profile
	userKey  *rabin.PrivateKey
	rng      *prng.Generator
}

// startSFSServer boots the SFS server side over fs.
func startSFSServer(fs *vfs.FS, opts SFSOptions) (*sfsServer, error) {
	secchan.SetEncryption(opts.Encrypt)
	profile := netsim.SFS(opts.Encrypt)
	rng := prng.NewSeeded([]byte("bench-sfs"))
	key, err := rabin.GenerateKey(rng, 768)
	if err != nil {
		return nil, err
	}
	userKey, err := rabin.GenerateKey(rng, 768)
	if err != nil {
		return nil, err
	}
	master := server.New(rng)
	leaseMS := uint32(0)
	if opts.EnhancedCaching {
		leaseMS = 60000
	}
	path := core.MakePath("bench.example.com", key.PublicKey.Bytes())
	auth := authserv.New(path.String(), rng)
	db := authserv.NewDB("local", true)
	auth.AddDB(db)
	if err := auth.Register(db, "bench", 0, []uint32{0}, authserv.RegisterOptions{PrivateKey: userKey}); err != nil {
		return nil, err
	}
	if _, err := master.Serve(server.ServedConfig{
		Location: "bench.example.com", Key: key, FS: fs,
		Auth: auth, LeaseMS: leaseMS, TraceSpans: opts.TraceSpans,
	}); err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go master.ListenAndServe(netsim.ShapeListener(l, profile)) //nolint:errcheck
	return &sfsServer{
		master: master, ln: l, location: "bench.example.com",
		base: path.String(), profile: profile, userKey: userKey, rng: rng,
	}, nil
}

// newClient connects one client daemon to the server, with its own
// temporary key and agents. seed names the client's deterministic RNG
// so cluster members key their channels independently.
func (sv *sfsServer) newClient(seed string, opts SFSOptions) (*client.Client, error) {
	cl, err := client.New(client.Config{
		Dial: func(string) (net.Conn, error) {
			c, err := net.Dial("tcp", sv.ln.Addr().String())
			if err != nil {
				return nil, err
			}
			return netsim.Shape(c, sv.profile), nil
		},
		RNG:             prng.NewSeeded([]byte(seed)),
		TempKeyBits:     768,
		EnhancedCaching: opts.EnhancedCaching,
		ReadAhead:       readAheadDepth(opts.NoReadAhead),
		WriteBehind:     opts.WriteBehind,
		DataCacheBytes:  dataCacheBytes(opts.DataCacheBytes),
		TraceSpans:      opts.TraceSpans,
	})
	if err != nil {
		return nil, err
	}
	// The benchmark user authenticates as root through the agent;
	// a second keyless agent exercises unauthorized operations.
	benchAgent := agent.New("bench", sv.rng)
	benchAgent.AddKey(sv.userKey)
	cl.RegisterAgent("bench", benchAgent)
	cl.RegisterAgent("nonowner", agent.New("nonowner", sv.rng))
	return cl, nil
}

// NewSFS builds the full SFS stack over fs.
func NewSFS(fs *vfs.FS, opts SFSOptions) (Stack, error) {
	sv, err := startSFSServer(fs, opts)
	if err != nil {
		return nil, err
	}
	cl, err := sv.newClient("bench-sfs-client", opts)
	if err != nil {
		sv.ln.Close()
		return nil, err
	}
	name := "SFS"
	switch {
	case !opts.Encrypt:
		name = "SFS w/o encryption"
	case !opts.EnhancedCaching:
		name = "SFS w/o enhanced caching"
	}
	return &sfsStack{
		name: name, cl: cl, master: sv.master, location: sv.location,
		base: sv.base, ln: sv.ln, opts: opts,
	}, nil
}

func (s *sfsStack) Name() string           { return s.name }
func (s *sfsStack) abs(path string) string { return s.base + "/" + path }

func (s *sfsStack) Mkdir(path string) error {
	return s.cl.Mkdir("bench", s.abs(path), 0o755)
}

func (s *sfsStack) WriteFile(path string, data []byte) error {
	f, err := s.cl.Create("bench", s.abs(path), 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		return err
	}
	return f.Sync()
}

func (s *sfsStack) ReadFile(path string) ([]byte, error) {
	return s.cl.ReadFile("bench", s.abs(path))
}

func (s *sfsStack) Stat(path string) error {
	_, err := s.cl.Stat("bench", s.abs(path))
	return err
}

func (s *sfsStack) StatMtime(path string) (int64, error) {
	attr, err := s.cl.Stat("bench", s.abs(path))
	if err != nil {
		return 0, err
	}
	return int64(attr.Mtime), nil
}

func (s *sfsStack) ReadDir(path string) error {
	_, err := s.cl.ReadDir("bench", s.abs(path))
	return err
}

func (s *sfsStack) Remove(path string) error {
	return s.cl.Remove("bench", s.abs(path))
}

func (s *sfsStack) ChownFail(path string) error {
	// "nonowner" is a keyless agent: its accesses carry the
	// anonymous authentication number, so the fchown of a
	// root-owned file fails at the server after a full secure round
	// trip. The open handle is cached: steady state is one RPC.
	if s.chownFile == nil {
		f, err := s.cl.Open("nonowner", s.abs(path))
		if err != nil {
			return err
		}
		s.chownFile = f
	}
	if err := s.chownFile.Chown(12345); err == nil {
		return fmt.Errorf("bench: unauthorized chown unexpectedly succeeded")
	}
	return nil
}

func (s *sfsStack) Truncate(path string, size uint64) error {
	return s.cl.Truncate("bench", s.abs(path), size)
}

type sfsFile struct{ f *client.File }

func (s *sfsStack) Open(path string) (StackFile, error) {
	f, err := s.cl.Open("bench", s.abs(path))
	if err != nil {
		return nil, err
	}
	return &sfsFile{f: f}, nil
}

func (s *sfsStack) Create(path string) (StackFile, error) {
	f, err := s.cl.Create("bench", s.abs(path), 0o644)
	if err != nil {
		return nil, err
	}
	return &sfsFile{f: f}, nil
}

func (f *sfsFile) ReadAt(p []byte, off uint64) (int, error)  { return f.f.ReadAt(p, off) }
func (f *sfsFile) WriteAt(p []byte, off uint64) (int, error) { return f.f.WriteAt(p, off) }
func (f *sfsFile) Sync() error                               { return f.f.Sync() }
func (f *sfsFile) Truncate(size uint64) error {
	return fmt.Errorf("bench: truncate through open sfs file unsupported")
}

func (s *sfsStack) Stats() nfs.Stats {
	st, err := s.cl.Stats("bench", s.base)
	if err != nil {
		return nfs.Stats{}
	}
	return st
}

func (s *sfsStack) ServerStats() (nfs.ServerStats, bool) {
	return s.master.NFSStats(s.location)
}

func (s *sfsStack) Close() {
	secchan.SetEncryption(true)
	s.ln.Close()
}
