package bench

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/netsim"
	nfspkg "repro/internal/nfs"
	"repro/internal/vfs"
)

// These tests assert the qualitative claims of the paper's evaluation
// — who wins, roughly by how much — using the Quick workload sizes.
// Absolute numbers live in EXPERIMENTS.md; the assertions here are
// deliberately loose so scheduler noise cannot flake them.

func buildOrSkip(t *testing.T, kind StackKind) Stack {
	t.Helper()
	st, err := Build(kind)
	if err != nil {
		t.Fatalf("Build(%s): %v", kind, err)
	}
	t.Cleanup(st.Close)
	return st
}

func TestStacksBasicOps(t *testing.T) {
	for _, kind := range []StackKind{KindLocal, KindNFSUDP, KindNFSTCP, KindSFS, KindSFSNoEnc, KindSFSNoCache} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			st := buildOrSkip(t, kind)
			if err := st.Mkdir("d"); err != nil {
				t.Fatal(err)
			}
			if err := st.WriteFile("d/f", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			data, err := st.ReadFile("d/f")
			if err != nil || string(data) != "hello" {
				t.Fatalf("read back: %q %v", data, err)
			}
			if err := st.Stat("d/f"); err != nil {
				t.Fatal(err)
			}
			if err := st.ReadDir("d"); err != nil {
				t.Fatal(err)
			}
			if err := st.ChownFail("d/f"); err != nil {
				t.Fatal(err)
			}
			if err := st.Truncate("d/f", 100); err != nil {
				t.Fatal(err)
			}
			if err := st.Remove("d/f"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFig5LatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	measure := func(kind StackKind) time.Duration {
		st := buildOrSkip(t, kind)
		// Take the best of three short runs: on a loaded 1-CPU
		// machine a single mean can absorb a scheduling blip.
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			r, err := LatencyMicro(st, 50)
			if err != nil {
				t.Fatal(err)
			}
			if r.Elapsed < best {
				best = r.Elapsed
			}
		}
		return best
	}
	nfsUDP := measure(KindNFSUDP)
	sfs := measure(KindSFS)
	sfsNoEnc := measure(KindSFSNoEnc)
	// The paper: SFS ≈ 4x NFS latency; encryption ≈ 20 µs of it.
	if sfs < 2*nfsUDP {
		t.Errorf("SFS latency %v not clearly above NFS %v", sfs, nfsUDP)
	}
	if sfs > 10*nfsUDP {
		t.Errorf("SFS latency %v implausibly above NFS %v", sfs, nfsUDP)
	}
	// Encryption costs only ~20 µs of the ~800 µs total, so the two
	// configurations should be close; fail only on a gross inversion.
	if sfsNoEnc > sfs*3/2 {
		t.Errorf("disabling encryption made latency much worse: %v vs %v", sfsNoEnc, sfs)
	}
}

func TestFig5ThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	measure := func(kind StackKind) float64 {
		st := buildOrSkip(t, kind)
		r, err := ThroughputMicro(st, 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		return r.MBps()
	}
	nfsUDP := measure(KindNFSUDP)
	sfs := measure(KindSFS)
	sfsNoEnc := measure(KindSFSNoEnc)
	// NFS beats SFS; removing encryption recovers a chunk of it.
	if sfs >= nfsUDP {
		t.Errorf("SFS throughput %.1f not below NFS %.1f", sfs, nfsUDP)
	}
	if sfsNoEnc <= sfs {
		t.Errorf("encryption shows no throughput cost: %.1f vs %.1f", sfsNoEnc, sfs)
	}
}

func TestFig5ReadAheadAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	measure := func(noRA bool) float64 {
		fs := vfs.New()
		fs.SetDisk(netsim.NewDisk())
		st, err := NewSFS(fs, SFSOptions{Encrypt: true, EnhancedCaching: true, NoReadAhead: noRA})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		r, err := ThroughputMicro(st, 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		return r.MBps()
	}
	serial := measure(true)
	pipelined := measure(false)
	t.Logf("sequential 8KB reads: %.2f MB/s serial, %.2f MB/s with readahead", serial, pipelined)
	// Pipelining overlaps per-RPC latency; it must not be slower, and
	// on the shaped link it should win clearly.
	if pipelined <= serial {
		t.Errorf("readahead shows no benefit: %.2f vs %.2f MB/s", pipelined, serial)
	}
}

func TestFig6MABShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(kind StackKind) time.Duration {
		st := buildOrSkip(t, kind)
		results, err := MABPhases(st)
		if err != nil {
			t.Fatal(err)
		}
		return results[len(results)-1].Elapsed // total
	}
	local := run(KindLocal)
	nfsUDP := run(KindNFSUDP)
	sfs := run(KindSFS)
	noCache := run(KindSFSNoCache)
	// Ordering: Local < NFS < SFS < SFS-without-enhanced-caching.
	if local >= nfsUDP {
		t.Errorf("Local (%v) not faster than NFS (%v)", local, nfsUDP)
	}
	if sfs >= noCache {
		t.Errorf("enhanced caching not helping: %v vs %v", sfs, noCache)
	}
	// The paper: SFS only ~11%% slower than NFS on MAB. Allow a wide
	// band but require the same ballpark (under 2x).
	if sfs > 2*nfsUDP {
		t.Errorf("SFS MAB total %v more than 2x NFS %v", sfs, nfsUDP)
	}
}

func TestFig8SpriteSmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(kind StackKind) map[string]time.Duration {
		st := buildOrSkip(t, kind)
		results, err := SpriteSmall(st, 100, 1024)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]time.Duration{}
		for _, r := range results {
			out[r.Phase] = r.Elapsed
		}
		return out
	}
	nfs := run(KindNFSUDP)
	sfs := run(KindSFS)
	// Read phase: SFS pays its latency (paper: 3x slower).
	if sfs["read"] <= nfs["read"] {
		t.Errorf("SFS read (%v) not above NFS (%v)", sfs["read"], nfs["read"])
	}
	// Unlink: dominated by synchronous disk writes; within 2x.
	ratio := float64(sfs["unlink"]) / float64(nfs["unlink"])
	if ratio > 2 || ratio < 0.5 {
		t.Errorf("unlink should be disk-bound on both: NFS %v, SFS %v", nfs["unlink"], sfs["unlink"])
	}
	// Create: attribute caching keeps SFS within 2x of NFS.
	if float64(sfs["create"]) > 2*float64(nfs["create"]) {
		t.Errorf("SFS create (%v) more than 2x NFS (%v)", sfs["create"], nfs["create"])
	}
}

func TestFig9SpriteLargeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(kind StackKind) map[string]time.Duration {
		st := buildOrSkip(t, kind)
		results, err := SpriteLarge(st, 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]time.Duration{}
		for _, r := range results {
			out[r.Phase] = r.Elapsed
		}
		return out
	}
	nfs := run(KindNFSUDP)
	sfs := run(KindSFS)
	noenc := run(KindSFSNoEnc)
	// Sequential write: SFS slower than NFS (paper +44%).
	if sfs["seq write"] <= nfs["seq write"] {
		t.Errorf("SFS seq write (%v) not above NFS (%v)", sfs["seq write"], nfs["seq write"])
	}
	// Sequential read: the biggest gap (paper +145%).
	if sfs["seq read"] <= nfs["seq read"] {
		t.Errorf("SFS seq read (%v) not above NFS (%v)", sfs["seq read"], nfs["seq read"])
	}
	// Disabling encryption recovers part of both.
	if noenc["seq read"] >= sfs["seq read"] {
		t.Errorf("no-enc seq read (%v) not below SFS (%v)", noenc["seq read"], sfs["seq read"])
	}
}

func TestFig9WriteBehindAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	measure := func(window int) time.Duration {
		fs := vfs.New()
		fs.SetDisk(netsim.NewDisk())
		st, err := NewSFS(fs, SFSOptions{Encrypt: true, EnhancedCaching: true, WriteBehind: window})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		f, err := st.Create("large.bin")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8192)
		r, err := timed(st, "seq write", func() error {
			for off := int64(0); off < 4<<20; off += 8192 {
				if _, err := f.WriteAt(buf, uint64(off)); err != nil {
					return err
				}
			}
			return f.Sync()
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Elapsed
	}
	serial := measure(-1)   // one synchronous WRITE per chunk
	pipelined := measure(0) // default window of 8 unstable WRITEs
	t.Logf("sequential 8KB writes: %v serial, %v with write-behind", serial, pipelined)
	// Write-behind overlaps per-RPC latency across the window; it must
	// not be slower, and on the shaped link it should win clearly.
	if pipelined >= serial {
		t.Errorf("write-behind shows no benefit: %v vs %v", pipelined, serial)
	}
}

// TestFigWarmReadShape asserts the warm-read figure's claims from its
// own rows: the warm re-read crosses the wire zero times and is far
// faster than the cold pass, while both the cacheless ablation and the
// post-invalidation re-read pay READs again. CI's bench-smoke step
// runs exactly this test.
func TestFigWarmReadShape(t *testing.T) {
	fig, err := FigWarmRead(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	const cached = "SFS (data cache)"
	cold, ok := fig.RowFor(cached, "cold read")
	if !ok {
		t.Fatal("no cold read row")
	}
	warm, ok := fig.RowFor(cached, "warm re-read")
	if !ok {
		t.Fatal("no warm re-read row")
	}
	if warm.RPCs != 0 {
		t.Errorf("warm re-read issued %d RPCs, want 0", warm.RPCs)
	}
	if warm.Value <= 5*cold.Value {
		t.Errorf("warm re-read %.1f MB/s not >5x cold %.1f MB/s", warm.Value, cold.Value)
	}
	inval, ok := fig.RowFor(cached, "re-read after remote write")
	if !ok {
		t.Fatal("no post-invalidation row")
	}
	if inval.RPCs == 0 {
		t.Error("re-read after remote write cost no RPCs — invalidation did not drop the blocks")
	}
	nocache, ok := fig.RowFor("SFS w/o data cache", "warm re-read")
	if !ok {
		t.Fatal("no ablation row")
	}
	if nocache.RPCs == 0 {
		t.Error("cacheless re-read cost no RPCs")
	}
}

// TestFig8RPCEconomics asserts the mechanism behind Figure 8's create
// phase from the server's own counters: writing a fresh 1 KB file
// costs SFS exactly 2 server RPCs (CREATE plus one FILE_SYNC WRITE —
// the small-file sync shortcut), while the NFS baseline pays 3
// (CREATE, unstable WRITE, COMMIT).
func TestFig8RPCEconomics(t *testing.T) {
	run := func(kind StackKind) uint64 {
		st := buildOrSkip(t, kind)
		// A warm-up file primes the mount, handle caches, and access
		// checks so the measured file shows steady-state cost.
		data := make([]byte, 1024)
		if err := st.WriteFile("warm", data); err != nil {
			t.Fatal(err)
		}
		ss, ok := st.ServerStats()
		if !ok {
			t.Fatalf("%s: stack reports no server stats", kind)
		}
		before := ss.TotalCalls()
		if err := st.WriteFile("f", data); err != nil {
			t.Fatal(err)
		}
		ss, _ = st.ServerStats()
		return ss.TotalCalls() - before
	}
	if got := run(KindSFS); got != 2 {
		t.Errorf("SFS 1 KB create = %d server RPCs, want 2 (CREATE + FILE_SYNC WRITE)", got)
	}
	if got := run(KindNFSUDP); got != 3 {
		t.Errorf("NFS 1 KB create = %d server RPCs, want 3 (CREATE + WRITE + COMMIT)", got)
	}
}

func TestFigureSlugAndJSON(t *testing.T) {
	f := &Figure{
		ID:    "Figure 9 (write-behind ablation)",
		Title: "t",
		Rows:  []FigureRow{{Stack: "window 8", Phase: "seq write", Value: 1.5, Unit: "s", RPCs: 7}},
		Counters: map[string]nfspkg.ServerStats{
			"window 8": {SyncWrites: 1, Commits: 2},
		},
	}
	if got := f.Slug(); got != "figure-9-write-behind-ablation" {
		t.Fatalf("Slug = %q", got)
	}
	dir := t.TempDir()
	path, err := f.WriteJSON(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back jsonFigure
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != f.ID || !back.Quick || len(back.Rows) != 1 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	r := back.Rows[0]
	if r.Stack != "window 8" || r.Value != 1.5 || r.RPCs != 7 || r.Paper != 0 {
		t.Fatalf("row mismatch: %+v", r)
	}
	c, ok := back.Counters["window 8"]
	if !ok || c.SyncWrites != 1 || c.Commits != 2 {
		t.Fatalf("counters did not round-trip: %+v", back.Counters)
	}
}

func TestCachingAblationRPCCounts(t *testing.T) {
	// The mechanism behind Figures 6 and 8: enhanced caching cuts
	// wire RPCs. Measured without netsim noise by comparing counts.
	count := func(kind StackKind) uint64 {
		st := buildOrSkip(t, kind)
		if err := st.WriteFile("f", []byte("x")); err != nil {
			t.Fatal(err)
		}
		before := st.Stats().Calls
		for i := 0; i < 30; i++ {
			if err := st.Stat("f"); err != nil {
				t.Fatal(err)
			}
		}
		return st.Stats().Calls - before
	}
	with := count(KindSFS)
	without := count(KindSFSNoCache)
	if with >= without {
		t.Errorf("enhanced caching did not reduce RPCs: %d vs %d", with, without)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Bytes: 10_000_000, Elapsed: time.Second}
	if got := r.MBps(); got < 9.9 || got > 10.1 {
		t.Fatalf("MBps = %v", got)
	}
	if (Result{}).MBps() != 0 {
		t.Fatal("zero result MBps")
	}
}

func TestFigureRowLookup(t *testing.T) {
	f := Figure{Rows: []FigureRow{{Stack: "SFS", Phase: "latency", Value: 1}}}
	if _, ok := f.RowFor("SFS", "latency"); !ok {
		t.Fatal("RowFor missed")
	}
	if _, ok := f.RowFor("SFS", "nope"); ok {
		t.Fatal("RowFor false positive")
	}
}

func TestMABTreeDeterministic(t *testing.T) {
	a := genMABTree()
	b := genMABTree()
	if len(a.files) != len(b.files) {
		t.Fatal("tree size differs")
	}
	for name, data := range a.files {
		if string(b.files[name]) != string(data) {
			t.Fatalf("file %s differs between generations", name)
		}
	}
}

func TestGenSourceHasNoNeedle(t *testing.T) {
	g := genMABTree()
	for name, data := range g.files {
		if contains(data, []byte("no-such-needle")) {
			t.Fatalf("%s contains the search needle", name)
		}
	}
}
