package stats

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the log₂ bucketing contract:
// 0 is its own bucket, each power of two starts a new bucket, and the
// top bucket absorbs the tail.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21},
		{1<<21 - 1, 21},
		{1 << 62, 63},    // lower bound of the clamp bucket
		{1<<63 + 42, 63}, // would be bucket 64; clamped
		{^uint64(0), 63}, // max value clamps too
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Bounds must tile the value space: Hi(i)+1 == Lo(i+1).
	for i := 0; i < NumBuckets-1; i++ {
		_, hi := BucketBounds(i)
		lo, _ := BucketBounds(i + 1)
		if hi+1 != lo {
			t.Errorf("bucket %d hi=%d, bucket %d lo=%d: not contiguous", i, hi, i+1, lo)
		}
	}
	if _, hi := BucketBounds(NumBuckets - 1); hi != ^uint64(0) {
		t.Errorf("top bucket hi = %d, want MaxUint64", hi)
	}
	// Every observed value must fall inside its bucket's bounds.
	var h Histogram
	for _, v := range []uint64{0, 1, 3, 4, 1000, 1 << 40, ^uint64(0)} {
		h.Observe(v)
		lo, hi := BucketBounds(BucketOf(v))
		if v < lo || v > hi {
			t.Errorf("value %d outside bucket bounds [%d, %d]", v, lo, hi)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d, want 7", h.Count())
	}
}

func TestHistogramSnapshotAndQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket [8,15]
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket [512,1023]
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 90*10+10*1000 {
		t.Fatalf("snapshot count=%d sum=%d", s.Count, s.Sum)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("want 2 populated buckets, got %v", s.Buckets)
	}
	if q := s.Quantile(0.5); q != 15 {
		t.Errorf("p50 = %d, want 15 (hi of [8,15])", q)
	}
	if q := s.Quantile(0.99); q != 1023 {
		t.Errorf("p99 = %d, want 1023 (hi of [512,1023])", q)
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

// TestConcurrentIncrementAndSnapshot hammers every primitive from
// many goroutines while snapshots are taken concurrently. It is part
// of the tier-1 race target (go test -race ./internal/stats): the
// assertions matter less than the detector seeing readers and
// writers overlap.
func TestConcurrentIncrementAndSnapshot(t *testing.T) {
	const (
		workers = 8
		iters   = 2000
	)
	var (
		c       Counter
		g       Gauge
		h       Histogram
		ring    = NewTraceRing(64)
		writers sync.WaitGroup
		readers sync.WaitGroup
		stop    = make(chan struct{})
	)
	ring.SetEnabled(true)
	// Snapshot readers racing the writers.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.Load()
				_ = g.Snapshot()
				_ = h.Snapshot()
				_ = ring.Snapshot()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Inc()
				h.Observe(uint64(i))
				ring.Record(Span{XID: uint32(w*iters + i), DurUS: int64(i)})
				g.Dec()
			}
		}(w)
	}
	// Writers finish, then stop the readers.
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := c.Load(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if g.Load() != 0 {
		t.Errorf("gauge settled at %d, want 0", g.Load())
	}
	if g.Max() < 1 || g.Max() > workers {
		t.Errorf("gauge max = %d, want in [1, %d]", g.Max(), workers)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	ts := ring.Snapshot()
	if ts.Recorded != workers*iters {
		t.Errorf("ring recorded = %d, want %d", ts.Recorded, workers*iters)
	}
	if len(ts.Spans) != 64 {
		t.Errorf("ring kept %d spans, want 64", len(ts.Spans))
	}
}

// TestHotPathAllocFree asserts the zero-allocation contract the
// ReportAllocs benchmarks measure, so a regression fails `go test`
// and not just an eyeballed benchmark run.
func TestHotPathAllocFree(t *testing.T) {
	var (
		c    Counter
		g    Gauge
		h    Histogram
		ring = NewTraceRing(16)
	)
	ring.SetEnabled(true)
	cases := []struct {
		name string
		f    func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Inc+Dec", func() { g.Inc(); g.Dec() }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"Histogram.ObserveDuration", func() { h.ObserveDuration(3 * time.Millisecond) }},
		{"TraceRing.Record", func() { ring.Record(Span{XID: 7, DurUS: 9}) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(100, c.f); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", c.name, n)
		}
	}
}

func TestTraceRingDisabledIsNoop(t *testing.T) {
	ring := NewTraceRing(4)
	ring.Record(Span{XID: 1})
	if s := ring.Snapshot(); s.Recorded != 0 || len(s.Spans) != 0 {
		t.Fatalf("disabled ring recorded %+v", s)
	}
	ring.SetEnabled(true)
	for i := 0; i < 6; i++ {
		ring.Record(Span{XID: uint32(i)})
	}
	s := ring.Snapshot()
	if s.Recorded != 6 || len(s.Spans) != 4 {
		t.Fatalf("ring snapshot %+v", s)
	}
	// Oldest-first: xids 2,3,4,5 survive.
	for i, sp := range s.Spans {
		if sp.XID != uint32(i+2) {
			t.Fatalf("span %d has xid %d, want %d", i, sp.XID, i+2)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	var c Counter
	c.Add(41)
	h := Handler(func() any {
		return map[string]any{"demo": map[string]uint64{"counter": c.Load()}}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["demo"]["counter"] != 41 {
		t.Fatalf("stats endpoint returned %v", got)
	}
	// pprof is mounted.
	resp2, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp2.StatusCode)
	}
}
