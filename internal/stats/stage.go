package stats

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Stage names one segment of an RPC's life, from the client encoding
// the call to the client decoding the reply. The client and the server
// each record the stages they can observe directly; a span therefore
// carries either the client-side stages (cli_*, wire) or the
// server-side ones (srv_open .. reply_write), never both — the two
// sides are correlated offline by xid.
type Stage int

// The stage taxonomy (DESIGN.md §13). Client side: cli_encode is the
// XDR marshaling of the call, cli_seal the secure-channel MAC+encrypt,
// cli_write the record framing and transport write (on a shaped
// transport this includes the sender-side wire model), wire the gap
// between the write returning and the reply record being delivered
// (network round trip plus the server's entire turnaround), and
// cli_decode the reply open (MAC verify + decrypt) plus XDR decode.
// Server side: srv_open is the record open work (decrypt + MAC verify,
// excluding idle wait for bytes), queue the wait between the record
// being read and a dispatch worker picking it up, dispatch the RPC
// decode + NFS handler + reply XDR encode (minus the vfs and fsync
// stages nested inside it), vfs the substrate data path (minus fsync),
// fsync the WAL group-commit wait (disk store only — structurally zero
// on the memory store), reply_seal the reply MAC+encrypt, and
// reply_write the reply framing and transport write.
const (
	StageCliEncode Stage = iota
	StageCliSeal
	StageCliWrite
	StageSrvOpen
	StageQueue
	StageDispatch
	StageVFS
	StageFsync
	StageReplySeal
	StageReplyWrite
	StageWire
	StageCliDecode
	// Handshake stages (DESIGN.md §14): hs_queue is the wait for a
	// negotiation-pool slot, hs_crypto the key-negotiation work itself
	// (the Rabin decrypt on a full handshake, one SHA-1 mix on a
	// resumption). They appear only in the server master's
	// connection-establishment spans, never in RPC spans.
	StageHSQueue
	StageHSCrypto
	NumStages
)

// StageNames indexes Stage values to their wire/JSON names.
var StageNames = [NumStages]string{
	"cli_encode", "cli_seal", "cli_write",
	"srv_open", "queue", "dispatch", "vfs", "fsync",
	"reply_seal", "reply_write",
	"wire", "cli_decode",
	"hs_queue", "hs_crypto",
}

// stageTimers counts enabled trace rings process-wide. Layers that
// cannot see a per-request clock (the secure channel's seal and open
// paths) consult it with one atomic load before reading the monotonic
// clock, keeping the tracing-off cost at exactly that load.
var stageTimers atomic.Int64

// StageTimingOn reports whether any trace ring in the process is
// enabled — the cheap gate for fine-grained stage timing.
func StageTimingOn() bool { return stageTimers.Load() > 0 }

// A StageClock accumulates per-stage durations for one RPC. It is
// allocated only when tracing is on; every method is safe on a nil
// receiver, so instrumentation points cost a nil check when tracing
// is off. A clock is owned by one goroutine at a time (handed off with
// proper synchronization at queue boundaries); it is not
// concurrency-safe.
type StageClock struct {
	// Span is filled progressively: identity fields as they are
	// decoded, Stages and DurUS at Finish.
	Span Span

	ns      [NumStages]int64
	t0      time.Time
	tWrite  time.Time
	tArrive time.Time
}

// NewStageClock starts a clock: t0 anchors the span's total and Start
// records the wall time for offline correlation.
func NewStageClock() *StageClock {
	now := time.Now()
	return &StageClock{t0: now, Span: Span{Start: now.UnixMicro()}}
}

// Now returns the current time for a later End, or the zero time on a
// nil clock (End then ignores it).
func (c *StageClock) Now() time.Time {
	if c == nil {
		return time.Time{}
	}
	return time.Now()
}

// End charges the time since t to stage st.
func (c *StageClock) End(st Stage, t time.Time) {
	if c == nil || t.IsZero() {
		return
	}
	c.ns[st] += int64(time.Since(t))
}

// Add charges ns nanoseconds to stage st.
func (c *StageClock) Add(st Stage, ns int64) {
	if c == nil || ns <= 0 {
		return
	}
	c.ns[st] += ns
}

// Get returns the nanoseconds charged to st so far (0 on nil).
func (c *StageClock) Get(st Stage) int64 {
	if c == nil {
		return 0
	}
	return c.ns[st]
}

// MarkWrite stamps the moment the call record finished writing — the
// start of the client-observed wire gap.
func (c *StageClock) MarkWrite() {
	if c != nil {
		c.tWrite = time.Now()
	}
}

// MarkWriteAt is MarkWrite with a caller-captured completion time —
// used when the stamp is taken before the lock that publishes it.
func (c *StageClock) MarkWriteAt(t time.Time) {
	if c != nil && !t.IsZero() {
		c.tWrite = t
	}
}

// MarkArrive stamps the reply record's delivery, charging the gap
// since MarkWrite to the wire stage. openNS (the channel-open work
// that ran inside record delivery) is moved from wire to cli_decode,
// where that MAC-verify/decrypt cost belongs.
func (c *StageClock) MarkArrive(openNS int64) {
	if c == nil {
		return
	}
	c.tArrive = time.Now()
	if !c.tWrite.IsZero() {
		if d := int64(c.tArrive.Sub(c.tWrite)) - openNS; d > 0 {
			c.ns[StageWire] += d
		}
	}
	if openNS > 0 {
		c.ns[StageCliDecode] += openNS
	}
}

// FinishClient seals a client-side span: total = (arrival − start) +
// whatever ran after arrival (decode), so time the reply spent parked
// in a future before the application collected it is not charged.
func (c *StageClock) FinishClient(decodeNS int64) *Span {
	if c == nil {
		return nil
	}
	c.ns[StageCliDecode] += decodeNS
	total := decodeNS
	if !c.tArrive.IsZero() {
		total += int64(c.tArrive.Sub(c.t0))
	} else {
		total += int64(time.Since(c.t0)) - decodeNS
	}
	return c.finish(total)
}

// FinishServer seals a server-side span: total = the open work that
// ran inside record delivery plus everything from record-read to the
// reply write completing.
func (c *StageClock) FinishServer() *Span {
	if c == nil {
		return nil
	}
	return c.finish(c.ns[StageSrvOpen] + int64(time.Since(c.t0)))
}

// finish converts the nanosecond ledger to the span's microsecond
// stage array and total.
func (c *StageClock) finish(totalNS int64) *Span {
	for i := 0; i < int(NumStages); i++ {
		c.Span.Stages[i] = c.ns[i] / 1e3
	}
	if totalNS < 0 {
		totalNS = 0
	}
	c.Span.DurUS = totalNS / 1e3
	return &c.Span
}

// RestartAt re-anchors the clock's total at t (the server side anchors
// at the moment the record finished reading, not at clock allocation).
func (c *StageClock) RestartAt(t time.Time) {
	if c != nil && !t.IsZero() {
		c.t0 = t
	}
}

// A StageSet aggregates spans into one log₂ latency histogram per
// stage plus one for span totals. Observes are atomic; a StageSet can
// be shared by every connection of a server.
type StageSet struct {
	total  Histogram
	stages [NumStages]Histogram
}

// Record folds one finished span into the histograms. Stages the span
// never touched (zero) are skipped, so e.g. the fsync histogram counts
// only operations that actually waited on the WAL.
func (s *StageSet) Record(sp *Span) {
	if s == nil || sp == nil {
		return
	}
	s.total.Observe(uint64(sp.DurUS))
	for i := 0; i < int(NumStages); i++ {
		if v := sp.Stages[i]; v > 0 {
			s.stages[i].Observe(uint64(v))
		}
	}
}

// StageStat is one stage's distribution in a snapshot, microseconds.
type StageStat struct {
	Count  uint64  `json:"count"`
	SumUS  uint64  `json:"sum_us"`
	MeanUS float64 `json:"mean_us,omitempty"`
	P50    uint64  `json:"p50_us"`
	P95    uint64  `json:"p95_us"`
	P99    uint64  `json:"p99_us"`
}

func stageStat(h *Histogram) StageStat {
	hs := h.Snapshot()
	return StageStat{
		Count: hs.Count, SumUS: hs.Sum, MeanUS: hs.Mean,
		P50: hs.P50, P95: hs.P95, P99: hs.P99,
	}
}

// StageSetSnapshot is the JSON form of a StageSet: the total-latency
// distribution plus every stage that recorded at least one span.
type StageSetSnapshot struct {
	Total  StageStat            `json:"total"`
	Stages map[string]StageStat `json:"stages,omitempty"`
}

// Snapshot captures the set.
func (s *StageSet) Snapshot() StageSetSnapshot {
	out := StageSetSnapshot{Total: stageStat(&s.total)}
	for i := 0; i < int(NumStages); i++ {
		st := stageStat(&s.stages[i])
		if st.Count == 0 {
			continue
		}
		if out.Stages == nil {
			out.Stages = make(map[string]StageStat, int(NumStages))
		}
		out.Stages[StageNames[i]] = st
	}
	return out
}

// Table renders the snapshot as aligned human-readable columns —
// derived quantiles instead of raw bucket dumps — for the daemons'
// stats commands. One row per recorded stage, in pipeline order, plus
// a total row.
func (s StageSetSnapshot) Table() string {
	var b strings.Builder
	row := func(name string, st StageStat) {
		fmt.Fprintf(&b, "%-12s %8d %10.1f %8d %8d %8d\n",
			name, st.Count, st.MeanUS, st.P50, st.P95, st.P99)
	}
	fmt.Fprintf(&b, "%-12s %8s %10s %8s %8s %8s\n",
		"stage", "count", "mean_us", "p50_us", "p95_us", "p99_us")
	for i := 0; i < int(NumStages); i++ {
		if st, ok := s.Stages[StageNames[i]]; ok {
			row(StageNames[i], st)
		}
	}
	row("total", s.Total)
	return b.String()
}

// Waterfall renders a span's nonzero stages as one compact log token,
// e.g. "vfs=120us fsync=3400us" — the body of the slow-span log line.
func (s *Span) Waterfall() string {
	var b strings.Builder
	for i := 0; i < int(NumStages); i++ {
		if v := s.Stages[i]; v > 0 {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%dus", StageNames[i], v)
		}
	}
	return b.String()
}
