package stats

// Wire-copy accounting for the zero-copy wire path (DESIGN.md §12).
// Process-wide by design: a daemon runs exactly one wire role (sfssd
// serves, sfscd mounts), and the counters answer one question — how
// many times is a payload byte touched between the vfs/datacache
// buffer and the socket?
//
// Classification: an opaque of xdr.BorrowThreshold bytes or more is
// "payload" (8KB READ/WRITE data blocks; handshake and header traffic
// never reaches the threshold). Payload bytes are tallied once, at
// the encode side; every layer that memcpy's payload-class bytes —
// flat xdr append, record flatten, secchan staging or fused seal,
// decoder copy-out — adds to the copied counter. The per-record
// histogram observes round(copied/payload), so "≤1 copy per 8KB READ
// with encryption on" is a bucket assertion, not a vibe.

// wireCopy holds the package-global wire-copy counters.
var wireCopy struct {
	payload  Counter
	copied   Counter
	borrowed Counter
	copies   Histogram // copies-per-payload-byte ratio, per record
}

// NoteWirePayload records n payload-class bytes entering the wire
// path (counted once, at encode time).
func NoteWirePayload(n uint64) { wireCopy.payload.Add(n) }

// NoteWireCopied records n payload-class bytes crossing a memcpy.
func NoteWireCopied(n uint64) { wireCopy.copied.Add(n) }

// NoteWireBorrowed records n payload-class bytes passed by reference.
func NoteWireBorrowed(n uint64) { wireCopy.borrowed.Add(n) }

// ObserveWireCopies records one record's copies-per-payload ratio
// (rounded to the nearest integer) in the histogram. Records with no
// payload are not observed.
func ObserveWireCopies(copied, payload uint64) {
	if payload == 0 {
		return
	}
	wireCopy.copies.Observe((copied + payload/2) / payload)
}

// WireCopyStats is the JSON form of the wire-copy counters.
type WireCopyStats struct {
	PayloadBytes     uint64       `json:"wire_payload_bytes"`
	BytesCopied      uint64       `json:"wire_bytes_copied"`
	BytesBorrowed    uint64       `json:"wire_bytes_borrowed"`
	CopiesPerPayload HistSnapshot `json:"copies_per_payload"`
	// CopyRatio = BytesCopied / PayloadBytes: average times each
	// payload byte was memcpy'd end to end. The Fig 5 invariant is
	// ratio ≤ 1.01 with gather on + encryption on, ≥ 3 with gather off.
	CopyRatio float64 `json:"copy_ratio"`
}

// WireCopySnapshot captures the process-wide wire-copy counters.
func WireCopySnapshot() WireCopyStats {
	s := WireCopyStats{
		PayloadBytes:     wireCopy.payload.Load(),
		BytesCopied:      wireCopy.copied.Load(),
		BytesBorrowed:    wireCopy.borrowed.Load(),
		CopiesPerPayload: wireCopy.copies.Snapshot(),
	}
	if s.PayloadBytes > 0 {
		s.CopyRatio = float64(s.BytesCopied) / float64(s.PayloadBytes)
	}
	return s
}

// ResetWireCopy zeroes the wire-copy counters. Tests and bench runs
// use this to scope the copy-ratio invariant to one workload.
func ResetWireCopy() {
	wireCopy.payload.Store(0)
	wireCopy.copied.Store(0)
	wireCopy.borrowed.Store(0)
	wireCopy.copies.Reset()
}
