package stats

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// EnableContentionProfiles turns on the runtime's mutex and block
// profilers so /debug/pprof/mutex and /debug/pprof/block show where
// goroutines wait — the ground truth behind the sharded-lock
// contention counters. mutexFraction samples 1/n of mutex contention
// events (runtime.SetMutexProfileFraction); blockRateNs records
// blocking events lasting at least that many nanoseconds
// (runtime.SetBlockProfileRate). Zero for either leaves that profiler
// off. The daemons call this when -stats is set; profiling costs a
// few percent, which an operator who asked for a stats endpoint has
// opted into.
func EnableContentionProfiles(mutexFraction, blockRateNs int) {
	if mutexFraction > 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRateNs > 0 {
		runtime.SetBlockProfileRate(blockRateNs)
	}
}

// Handler returns an http.Handler serving the observability surface:
//
//	/stats         — indented JSON of snapshot()
//	/debug/pprof/  — the stdlib profiler endpoints
//
// snapshot is called per request; it should return a
// JSON-marshalable value (the daemons return a map of subsystem
// snapshots).
func Handler(snapshot func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snapshot()) //nolint:errcheck
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("endpoints: /stats /debug/pprof/\n")) //nolint:errcheck
	})
	return mux
}

// Serve listens on addr and serves Handler(snapshot) until the
// returned listener is closed. Used by the daemons' -stats flag.
func Serve(addr string, snapshot func() any) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(l, Handler(snapshot)) //nolint:errcheck
	return l, nil
}
