// Package stats is the repo's observability substrate: atomic
// counters, gauges, log₂-bucketed histograms, and a fixed-capacity
// trace ring, all stdlib-only and allocation-free on the hot path
// (verified by the package's ReportAllocs benchmarks and
// testing.AllocsPerRun tests).
//
// The primitives are plain structs meant to be embedded by value in a
// subsystem's metrics block; incrementing one is a single atomic
// RMW. Snapshots (which may allocate) convert the live state into
// JSON-marshalable values; every subsystem exposes a typed
// *Snapshot() method and the daemons compose those into the JSON
// document served at the -stats address (see DESIGN.md §7 for the
// naming scheme and schema).
package stats

import "sync/atomic"

// Counter is a monotonically increasing event count. The zero value
// is ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Store overwrites the count; only reset paths (test scoping of
// process-wide counters) should use it.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Gauge is an instantaneous level — queue depth, busy workers,
// window occupancy — with a high-watermark. The zero value is ready
// to use.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Inc raises the level by one and updates the high-watermark.
func (g *Gauge) Inc() {
	n := g.v.Add(1)
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the highest level ever observed via Inc.
func (g *Gauge) Max() int64 { return g.max.Load() }

// GaugeSnapshot is the JSON form of a Gauge.
type GaugeSnapshot struct {
	Now int64 `json:"now"`
	Max int64 `json:"max"`
}

// Snapshot captures the gauge.
func (g *Gauge) Snapshot() GaugeSnapshot {
	return GaugeSnapshot{Now: g.Load(), Max: g.Max()}
}
