package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil StageClock must absorb every call — that is the whole
// tracing-off contract of the instrumentation points.
func TestStageClockNilSafe(t *testing.T) {
	var c *StageClock
	c.End(StageVFS, c.Now())
	c.Add(StageFsync, 100)
	c.MarkWrite()
	c.MarkWriteAt(time.Now())
	c.MarkArrive(10)
	c.RestartAt(time.Now())
	if c.Get(StageVFS) != 0 {
		t.Fatal("nil clock returned nonzero stage")
	}
	if c.FinishClient(5) != nil || c.FinishServer() != nil {
		t.Fatal("nil clock finished to a span")
	}
}

func TestStageClockLedger(t *testing.T) {
	c := NewStageClock()
	c.Add(StageCliEncode, 3_000_000) // 3ms
	c.Add(StageCliSeal, 2_000_000)
	c.Add(StageCliEncode, 1_000_000) // accumulates
	if got := c.Get(StageCliEncode); got != 4_000_000 {
		t.Fatalf("Get(cli_encode) = %d, want 4ms", got)
	}
	c.Add(StageVFS, -5) // negative charges are dropped
	if c.Get(StageVFS) != 0 {
		t.Fatal("negative Add was recorded")
	}
	c.MarkWrite()
	time.Sleep(2 * time.Millisecond)
	c.MarkArrive(1_000_000)
	sp := c.FinishClient(500_000)
	if sp.Stages[StageCliEncode] != 4000 {
		t.Fatalf("span cli_encode = %dus, want 4000", sp.Stages[StageCliEncode])
	}
	// MarkArrive moves the open work out of wire and into cli_decode,
	// which also absorbs the decode time handed to FinishClient.
	if sp.Stages[StageCliDecode] != 1500 {
		t.Fatalf("span cli_decode = %dus, want 1500", sp.Stages[StageCliDecode])
	}
	if sp.Stages[StageWire] <= 0 {
		t.Fatal("wire stage empty after MarkWrite/MarkArrive")
	}
	if sp.DurUS <= 0 {
		t.Fatal("span total empty")
	}
	if sp.Start == 0 {
		t.Fatal("wall-clock start not stamped")
	}
}

func TestStageClockServerTotalIncludesOpen(t *testing.T) {
	c := NewStageClock()
	c.RestartAt(time.Now().Add(-10 * time.Millisecond))
	c.Add(StageSrvOpen, 5_000_000)
	sp := c.FinishServer()
	// total = open work + time since the (re-anchored) record read.
	if sp.DurUS < 14_000 {
		t.Fatalf("server total = %dus, want >= 15ms-ish", sp.DurUS)
	}
}

func TestStageSetRecordAndSnapshot(t *testing.T) {
	var s StageSet
	sp := &Span{DurUS: 1000}
	sp.Stages[StageVFS] = 600
	sp.Stages[StageFsync] = 400
	s.Record(sp)
	s.Record(sp)
	snap := s.Snapshot()
	if snap.Total.Count != 2 || snap.Total.SumUS != 2000 {
		t.Fatalf("total = %+v, want count 2 sum 2000", snap.Total)
	}
	if st, ok := snap.Stages["vfs"]; !ok || st.Count != 2 || st.SumUS != 1200 {
		t.Fatalf("vfs stage = %+v", snap.Stages["vfs"])
	}
	// Stages the span never touched must not appear at all.
	if _, ok := snap.Stages["cli_seal"]; ok {
		t.Fatal("untouched stage appeared in snapshot")
	}
	if st := snap.Stages["fsync"]; st.P50 == 0 {
		t.Fatal("derived p50 missing from stage snapshot")
	}
	tbl := snap.Table()
	if !strings.Contains(tbl, "fsync") || !strings.Contains(tbl, "p99_us") {
		t.Fatalf("table missing rows/header:\n%s", tbl)
	}
}

func TestSpanWaterfall(t *testing.T) {
	sp := Span{}
	sp.Stages[StageVFS] = 120
	sp.Stages[StageFsync] = 3400
	got := sp.Waterfall()
	if got != "vfs=120us fsync=3400us" {
		t.Fatalf("waterfall = %q", got)
	}
}

// Enabling and disabling rings must keep the process-wide stage-timer
// refcount balanced: redundant SetEnabled calls may not double-count.
func TestStageTimerRefcount(t *testing.T) {
	if StageTimingOn() {
		t.Fatal("stage timing on at test start (leaked ring?)")
	}
	a, b := NewTraceRing(4), NewTraceRing(4)
	a.SetEnabled(true)
	a.SetEnabled(true) // redundant
	b.SetEnabled(true)
	if !StageTimingOn() {
		t.Fatal("stage timing off with rings enabled")
	}
	a.SetEnabled(false)
	if !StageTimingOn() {
		t.Fatal("disabling one of two rings turned timing off")
	}
	b.SetEnabled(false)
	b.SetEnabled(false) // redundant
	if StageTimingOn() {
		t.Fatal("stage timing still on with every ring disabled")
	}
}

// The ring must wrap: after more records than capacity, the snapshot
// holds the most recent capacity spans, oldest first.
func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(4)
	r.SetEnabled(true)
	defer r.SetEnabled(false)
	for i := 1; i <= 10; i++ {
		r.Record(Span{XID: uint32(i)})
	}
	snap := r.Snapshot()
	if snap.Recorded != 10 || len(snap.Spans) != 4 {
		t.Fatalf("recorded=%d spans=%d, want 10/4", snap.Recorded, len(snap.Spans))
	}
	for i, sp := range snap.Spans {
		if want := uint32(7 + i); sp.XID != want {
			t.Fatalf("span[%d].XID = %d, want %d", i, sp.XID, want)
		}
	}
}

// Concurrent Record, Snapshot, and enable/disable toggling — the
// -race run is the assertion.
func TestTraceRingConcurrentRecordSnapshotToggle(t *testing.T) {
	r := NewTraceRing(8)
	r.SetEnabled(true)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sp := Span{XID: uint32(g<<16 | i), DurUS: int64(i)}
				sp.Stages[StageVFS] = int64(i)
				r.Record(sp)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r.Snapshot()
			r.SetEnabled(i%2 == 0)
		}
		close(stop)
	}()
	wg.Wait()
	r.SetEnabled(false)
	// Refcount must come back to zero whatever the toggling order was.
	if StageTimingOn() {
		t.Fatal("stage timers leaked by concurrent toggling")
	}
}

func TestTraceRingSlowLog(t *testing.T) {
	r := NewTraceRing(4)
	r.SetEnabled(true)
	defer r.SetEnabled(false)
	var mu sync.Mutex
	var got []Span
	r.SetSlowLog(time.Millisecond, func(sp Span) {
		mu.Lock()
		got = append(got, sp)
		mu.Unlock()
	})
	r.Record(Span{XID: 1, DurUS: 500})  // below threshold
	r.Record(Span{XID: 2, DurUS: 1000}) // at threshold
	r.Record(Span{XID: 3, DurUS: 9000})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].XID != 2 || got[1].XID != 3 {
		t.Fatalf("slow log got %+v, want xids 2,3", got)
	}
}
