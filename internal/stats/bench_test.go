package stats

import (
	"testing"
	"time"
)

// The acceptance bar for the instrumentation layer: 0 allocs/op on
// every primitive that sits on an RPC hot path.

func BenchmarkStatsCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkStatsCounterAddParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(8192)
		}
	})
}

func BenchmarkStatsGaugeIncDec(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Inc()
		g.Dec()
	}
}

func BenchmarkStatsHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkStatsHistogramObserveDuration(b *testing.B) {
	var h Histogram
	d := 250 * time.Microsecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(d)
	}
}

func BenchmarkStatsHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(0)
		for pb.Next() {
			h.Observe(v)
			v += 977
		}
	})
}

func BenchmarkStatsTraceRecordEnabled(b *testing.B) {
	ring := NewTraceRing(256)
	ring.SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ring.Record(Span{XID: uint32(i), Prog: 100003, Proc: 7, DurUS: 120})
	}
}

func BenchmarkStatsTraceRecordDisabled(b *testing.B) {
	ring := NewTraceRing(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ring.Record(Span{XID: uint32(i)})
	}
}
