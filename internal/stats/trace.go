package stats

import (
	"sync"
	"sync/atomic"
)

// Span is one completed RPC dispatch, tagged with the wire xid so a
// snapshot can be correlated with a packet capture or a client-side
// log line. DurUS is the dispatch-to-reply time in microseconds.
type Span struct {
	XID   uint32 `json:"xid"`
	Prog  uint32 `json:"prog"`
	Vers  uint32 `json:"vers"`
	Proc  uint32 `json:"proc"`
	DurUS int64  `json:"dur_us"`
	Err   bool   `json:"err,omitempty"`
}

// TraceRing keeps the last N spans in a fixed ring. Recording is
// allocation-free and a no-op while disabled (a single atomic load),
// so the ring can stay wired into the dispatch path permanently and
// be switched on by the -stats listener. When enabled, Record takes a
// short mutex — spans are for introspection, not the fast path's
// steady state.
type TraceRing struct {
	enabled atomic.Bool
	mu      sync.Mutex
	spans   []Span
	next    int
	total   uint64
}

// NewTraceRing returns a ring holding the most recent n spans.
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 1
	}
	return &TraceRing{spans: make([]Span, n)}
}

// SetEnabled switches recording on or off.
func (t *TraceRing) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether spans are being recorded.
func (t *TraceRing) Enabled() bool { return t.enabled.Load() }

// Record stores s if the ring is enabled.
func (t *TraceRing) Record(s Span) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	t.spans[t.next] = s
	t.next = (t.next + 1) % len(t.spans)
	t.total++
	t.mu.Unlock()
}

// TraceSnapshot is the JSON form of a TraceRing: how many spans were
// ever recorded, and the most recent ones oldest-first.
type TraceSnapshot struct {
	Recorded uint64 `json:"recorded"`
	Spans    []Span `json:"spans,omitempty"`
}

// Snapshot returns the buffered spans, oldest first.
func (t *TraceRing) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceSnapshot{Recorded: t.total}
	n := len(t.spans)
	if t.total < uint64(n) {
		out.Spans = append(out.Spans, t.spans[:t.next]...)
		return out
	}
	out.Spans = append(out.Spans, t.spans[t.next:]...)
	out.Spans = append(out.Spans, t.spans[:t.next]...)
	return out
}
