package stats

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed RPC, tagged with the wire xid so a snapshot
// can be correlated with a packet capture or the peer's span for the
// same call. DurUS is the span's total in microseconds; Stages is the
// per-stage breakdown (same unit, indexed by Stage) filled when the
// span came from a StageClock, all zeros for plain duration-only
// records.
type Span struct {
	XID  uint32 `json:"xid"`
	Prog uint32 `json:"prog"`
	Vers uint32 `json:"vers"`
	Proc uint32 `json:"proc"`
	// Start is the span's wall-clock start in microseconds since the
	// Unix epoch (stage clocks run on the monotonic clock; this one
	// field anchors them in real time).
	Start int64 `json:"start_us,omitempty"`
	// Principal is the authenticated caller: the SFS authentication
	// number (or unix uid on the plain-NFS baseline), 0 for anonymous.
	Principal uint32 `json:"principal,omitempty"`
	// Bytes counts the wire bytes this RPC moved (call + reply records).
	Bytes uint64 `json:"bytes,omitempty"`
	DurUS int64  `json:"dur_us"`
	// Stages is the per-stage microsecond breakdown, indexed by Stage.
	Stages [NumStages]int64 `json:"stages_us,omitempty"`
	Err    bool             `json:"err,omitempty"`
}

// TraceRing keeps the last N spans in a fixed ring. Recording is
// allocation-free and a no-op while disabled (a single atomic load),
// so the ring can stay wired into the dispatch path permanently and
// be switched on by the -stats listener. When enabled, Record takes a
// short mutex — spans are for introspection, not the fast path's
// steady state.
type TraceRing struct {
	enabled atomic.Bool
	mu      sync.Mutex
	spans   []Span
	next    int
	total   uint64

	// Slow-span log: spans at or above slowUS microseconds are handed
	// to emit (outside the ring lock). Configured once at startup.
	slowUS atomic.Int64
	emitMu sync.Mutex
	emit   func(Span)
}

// NewTraceRing returns a ring holding the most recent n spans.
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 1
	}
	return &TraceRing{spans: make([]Span, n)}
}

// SetEnabled switches recording on or off. Enabled rings are counted
// process-wide (StageTimingOn) so layers without a per-request clock
// know to time their work.
func (t *TraceRing) SetEnabled(on bool) {
	if t.enabled.CompareAndSwap(!on, on) {
		if on {
			stageTimers.Add(1)
		} else {
			stageTimers.Add(-1)
		}
	}
}

// Enabled reports whether spans are being recorded.
func (t *TraceRing) Enabled() bool { return t.enabled.Load() }

// SetSlowLog arranges for every recorded span with a total at or
// above threshold to be passed to emit — the "-trace-slow" waterfall
// log. A zero threshold or nil emit disables it.
func (t *TraceRing) SetSlowLog(threshold time.Duration, emit func(Span)) {
	t.emitMu.Lock()
	t.emit = emit
	t.emitMu.Unlock()
	if threshold <= 0 || emit == nil {
		t.slowUS.Store(0)
		return
	}
	t.slowUS.Store(threshold.Microseconds())
}

// Record stores s if the ring is enabled.
func (t *TraceRing) Record(s Span) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	t.spans[t.next] = s
	t.next = (t.next + 1) % len(t.spans)
	t.total++
	t.mu.Unlock()
	if slow := t.slowUS.Load(); slow > 0 && s.DurUS >= slow {
		t.emitMu.Lock()
		emit := t.emit
		t.emitMu.Unlock()
		if emit != nil {
			emit(s)
		}
	}
}

// TraceSnapshot is the JSON form of a TraceRing: how many spans were
// ever recorded, and the most recent ones oldest-first.
type TraceSnapshot struct {
	Recorded uint64 `json:"recorded"`
	Spans    []Span `json:"spans,omitempty"`
}

// Snapshot returns the buffered spans, oldest first.
func (t *TraceRing) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceSnapshot{Recorded: t.total}
	n := len(t.spans)
	if t.total < uint64(n) {
		out.Spans = append(out.Spans, t.spans[:t.next]...)
		return out
	}
	out.Spans = append(out.Spans, t.spans[t.next:]...)
	out.Spans = append(out.Spans, t.spans[:t.next]...)
	return out
}
