package stats

import (
	"math/bits"
	"time"
)

// NumBuckets is the number of log₂ buckets in a Histogram. Bucket 0
// holds the value 0; bucket i (i ≥ 1) holds values in
// [2^(i-1), 2^i-1]; the last bucket additionally absorbs everything
// above its lower bound.
const NumBuckets = 64

// Histogram is a log₂-bucketed distribution. Observe is a pair of
// atomic adds — no locks, no allocations — so it can sit on the RPC
// dispatch path. Units are the caller's choice; the repo's latency
// histograms use microseconds (ObserveDuration).
type Histogram struct {
	count   Counter
	sum     Counter
	buckets [NumBuckets]Counter
}

// BucketOf returns the bucket index Observe(v) lands in.
func BucketOf(v uint64) int {
	b := bits.Len64(v) // 0 for 0, i for [2^(i-1), 2^i-1]
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketBounds returns the inclusive [lo, hi] range of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	lo = 1 << (i - 1)
	if i == NumBuckets-1 {
		return lo, ^uint64(0)
	}
	return lo, 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[BucketOf(v)].Inc()
	h.count.Inc()
	h.sum.Add(v)
}

// ObserveDuration records a duration in microseconds; negative
// durations clamp to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.Observe(uint64(us))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Observes; only reset paths (test scoping) should use it.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Bucket is one populated histogram bucket in a snapshot.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistSnapshot is the JSON form of a Histogram: totals plus only the
// populated buckets. Taken while writers are active it is a
// consistent-enough view (each field is atomically read; cross-field
// skew is bounded by in-flight observations).
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean,omitempty"`
	// Derived quantiles (upper bound of the log₂ bucket where the
	// cumulative count crosses the mark), so humans and dashboards read
	// latency without post-processing the bucket dump.
	P50     uint64   `json:"p50,omitempty"`
	P95     uint64   `json:"p95,omitempty"`
	P99     uint64   `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			lo, hi := BucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	s.P50, s.P95, s.P99 = s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the snapshot's
// buckets, returning the upper bound of the bucket where the
// cumulative count crosses q. Zero if the snapshot is empty.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return b.Hi
		}
	}
	return s.Buckets[len(s.Buckets)-1].Hi
}
