package keyfile

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := prng.NewSeeded([]byte("keyfile"))
	key, err := rabin.GenerateKey(g, 512)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "k.sfs")
	if err := Save(path, key); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("key file mode %o, want 0600", info.Mode().Perm())
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.PublicKey.Equal(&key.PublicKey) {
		t.Fatal("loaded key differs")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty":   "",
		"text":    "not a key\n",
		"badhex":  "sfs-rabin-private-v1:zzzz\n",
		"badbody": "sfs-rabin-private-v1:deadbeef\n",
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); err == nil {
			t.Errorf("%s: garbage accepted", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}
