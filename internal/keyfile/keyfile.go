// Package keyfile persists Rabin key pairs for the command-line
// tools. The format is a single hex line tagged with a version, with
// restrictive file permissions — tools that want password protection
// wrap the key with authserv.SealKey instead.
package keyfile

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/crypto/rabin"
)

const header = "sfs-rabin-private-v1:"

// Save writes priv to path with mode 0600.
func Save(path string, priv *rabin.PrivateKey) error {
	data := header + hex.EncodeToString(priv.PrivateBytes()) + "\n"
	return os.WriteFile(path, []byte(data), 0o600)
}

// Load reads a key written by Save.
func Load(path string) (*rabin.PrivateKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := strings.TrimSpace(string(data))
	if !strings.HasPrefix(s, header) {
		return nil, errors.New("keyfile: not an SFS private key file")
	}
	raw, err := hex.DecodeString(strings.TrimPrefix(s, header))
	if err != nil {
		return nil, fmt.Errorf("keyfile: %w", err)
	}
	return rabin.ParsePrivateKey(raw)
}
