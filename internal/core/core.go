// Package core implements SFS's central idea: self-certifying
// pathnames (paper §2.2) and the self-authenticating revocation
// machinery built on them (paper §2.6).
//
// Every SFS file system is accessible under a pathname of the form
//
//	/sfs/Location:HostID
//
// Location tells a client where to look for the file system's server
// (a DNS name or IP address); HostID tells the client how to certify a
// secure channel to that server. HostID is a SHA-1 hash of the
// server's Location and public key, so the pathname itself suffices to
// communicate securely with the server: no key management inside the
// file system is needed. HostIDs are spelled in base 32 using digits
// and lower-case letters, omitting "l", "1", "0" and "o" to avoid
// confusion.
package core

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"strings"

	"repro/internal/xdr"
)

// Root is the directory under which all remote SFS file systems live.
const Root = "/sfs"

// HostIDSize is the size of a HostID in bytes (SHA-1 output).
const HostIDSize = sha1.Size

// HostID identifies a (Location, public key) pair. It effectively
// specifies a unique, verifiable public key: no computationally
// bounded attacker can produce two public keys with the same HostID.
type HostID [HostIDSize]byte

// hostInfo is the XDR structure hashed into a HostID.
type hostInfo struct {
	Tag      string // "HostInfo"
	Location string
	Key      []byte
}

// ComputeHostID derives the HostID for a server at location with the
// given canonical public key encoding. Following the paper, the input
// to SHA-1 is duplicated: any collision of the duplicated-input hash
// is also a collision of plain SHA-1, so duplication cannot harm
// security and could conceivably help if simple SHA-1 falls to
// cryptanalysis.
func ComputeHostID(location string, publicKey []byte) HostID {
	one := xdr.MustMarshal(hostInfo{Tag: "HostInfo", Location: location, Key: publicKey})
	h := sha1.New()
	h.Write(one)
	h.Write(one)
	var id HostID
	copy(id[:], h.Sum(nil))
	return id
}

// base32Alphabet spells HostIDs: 32 digits and lower-case letters,
// omitting "l" (lower-case L), "1" (one), "0" and "o".
const base32Alphabet = "23456789abcdefghijkmnpqrstuvwxyz"

var base32Rev = func() [256]int8 {
	var rev [256]int8
	for i := range rev {
		rev[i] = -1
	}
	for i := 0; i < len(base32Alphabet); i++ {
		rev[base32Alphabet[i]] = int8(i)
	}
	return rev
}()

// encodedIDLen is the length of a base-32 encoded HostID: 160 bits in
// 5-bit digits.
const encodedIDLen = (HostIDSize*8 + 4) / 5 // 32

// String encodes the HostID in SFS base 32.
func (id HostID) String() string {
	var sb strings.Builder
	sb.Grow(encodedIDLen)
	var acc uint32
	var bits uint
	for _, b := range id {
		acc = acc<<8 | uint32(b)
		bits += 8
		for bits >= 5 {
			bits -= 5
			sb.WriteByte(base32Alphabet[acc>>bits&31])
		}
	}
	// 160 = 32*5 exactly: no leftover bits.
	return sb.String()
}

// ParseHostID decodes a base-32 HostID string.
func ParseHostID(s string) (HostID, error) {
	var id HostID
	if len(s) != encodedIDLen {
		return id, fmt.Errorf("core: HostID must be %d characters, got %d", encodedIDLen, len(s))
	}
	var acc uint32
	var bits uint
	j := 0
	for i := 0; i < len(s); i++ {
		v := base32Rev[s[i]]
		if v < 0 {
			return id, fmt.Errorf("core: invalid HostID character %q", s[i])
		}
		acc = acc<<5 | uint32(v)
		bits += 5
		if bits >= 8 {
			bits -= 8
			id[j] = byte(acc >> bits)
			j++
		}
	}
	return id, nil
}

// Path is a parsed self-certifying pathname.
type Path struct {
	// Location names the server: a DNS hostname or IP address.
	Location string
	// HostID certifies the server's public key.
	HostID HostID
	// Rest is the path on the remote server, without a leading
	// slash; empty for the file system root.
	Rest string
}

// ErrNotSelfCertifying is returned by Parse for names under /sfs that
// are not of the Location:HostID form — these are the names agents
// resolve with dynamic symbolic links (paper §2.3).
var ErrNotSelfCertifying = errors.New("core: not a self-certifying pathname")

// ParseName parses the first component of a name relative to /sfs
// (i.e. "Location:HostID") into a Path with empty Rest.
func ParseName(name string) (Path, error) {
	var p Path
	colon := strings.LastIndexByte(name, ':')
	if colon < 0 {
		return p, ErrNotSelfCertifying
	}
	loc, idStr := name[:colon], name[colon+1:]
	if err := ValidateLocation(loc); err != nil {
		return p, ErrNotSelfCertifying
	}
	id, err := ParseHostID(idStr)
	if err != nil {
		return p, ErrNotSelfCertifying
	}
	p.Location = loc
	p.HostID = id
	return p, nil
}

// Parse parses a full self-certifying pathname such as
// "/sfs/sfs.lcs.mit.edu:vefvsv5wd4hz9isc3rb2x648ish742hy/pub/links".
func Parse(pathname string) (Path, error) {
	var p Path
	if pathname != Root && !strings.HasPrefix(pathname, Root+"/") {
		return p, fmt.Errorf("core: %q is not under %s", pathname, Root)
	}
	rest := strings.TrimPrefix(pathname, Root)
	rest = strings.TrimPrefix(rest, "/")
	if rest == "" {
		return p, ErrNotSelfCertifying
	}
	var first string
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		first, rest = rest[:i], rest[i+1:]
	} else {
		first, rest = rest, ""
	}
	p, err := ParseName(first)
	if err != nil {
		return p, err
	}
	p.Rest = strings.Trim(rest, "/")
	return p, nil
}

// Name returns the Location:HostID form of the path's first component.
func (p Path) Name() string {
	return p.Location + ":" + p.HostID.String()
}

// String returns the full self-certifying pathname.
func (p Path) String() string {
	s := Root + "/" + p.Name()
	if p.Rest != "" {
		s += "/" + p.Rest
	}
	return s
}

// Root returns the path with Rest cleared — the mount point itself.
func (p Path) Root() Path {
	p.Rest = ""
	return p
}

// ValidateLocation performs a light syntactic check on a Location: a
// non-empty DNS name or IP address with no path separators or colons.
func ValidateLocation(loc string) error {
	if loc == "" {
		return errors.New("core: empty location")
	}
	if len(loc) > 255 {
		return errors.New("core: location too long")
	}
	for i := 0; i < len(loc); i++ {
		c := loc[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_':
		default:
			return fmt.Errorf("core: invalid location character %q", c)
		}
	}
	return nil
}

// MakePath constructs the self-certifying pathname for a server at
// location with the given public key encoding.
func MakePath(location string, publicKey []byte) Path {
	return Path{Location: location, HostID: ComputeHostID(location, publicKey)}
}
