package core

import (
	"errors"
	"fmt"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/xdr"
)

// RevokedTarget is the symlink destination used for revoked and
// blocked self-certifying pathnames. Accessing a revoked path results
// in a file-not-found error, but users who investigate can easily
// notice that the pathname has actually been revoked (paper §2.6).
const RevokedTarget = ":REVOKED:"

// pathMessage is the signed body shared by revocation certificates and
// forwarding pointers. A revocation certificate is
//
//	{ K, Sign_{K^-1}("PathRevoke", Location, K, NULL) }
//
// and a forwarding pointer carries a new self-certifying pathname in
// place of NULL. A revocation certificate always overrules a
// forwarding pointer for the same HostID.
type pathMessage struct {
	Tag      string // "PathRevoke"
	Location string
	Key      []byte
	Target   *string // nil for revocation, new pathname for forwarding
}

// PathRevoke is a self-authenticating certificate that revokes or
// forwards a self-certifying pathname. Because it is verifiable from
// its own contents, anyone may distribute it — certification
// authorities need not check the identity of people submitting
// revocations.
type PathRevoke struct {
	Location string
	Key      []byte
	Target   *string
	Sig      rabin.Signature
}

// NewRevocation creates a revocation certificate for the pathname
// served by key at location. Key revocation happens only by
// permission of the file server's owner: it requires the private key.
func NewRevocation(priv *rabin.PrivateKey, location string, rng *prng.Generator) (*PathRevoke, error) {
	return newPathMessage(priv, location, nil, rng)
}

// NewForward creates a forwarding pointer from the pathname served by
// key at location to a new self-certifying pathname. Servers use
// forwarding pointers when they change domain names or keys and the
// old key is still trustworthy.
func NewForward(priv *rabin.PrivateKey, location string, target Path, rng *prng.Generator) (*PathRevoke, error) {
	t := target.String()
	return newPathMessage(priv, location, &t, rng)
}

func newPathMessage(priv *rabin.PrivateKey, location string, target *string, rng *prng.Generator) (*PathRevoke, error) {
	if err := ValidateLocation(location); err != nil {
		return nil, err
	}
	pub := priv.PublicKey.Bytes()
	body := xdr.MustMarshal(pathMessage{Tag: "PathRevoke", Location: location, Key: pub, Target: target})
	sig, err := priv.SignMessage(rng, body)
	if err != nil {
		return nil, err
	}
	return &PathRevoke{Location: location, Key: pub, Target: target, Sig: *sig}, nil
}

// IsRevocation reports whether r revokes (rather than forwards) its
// pathname.
func (r *PathRevoke) IsRevocation() bool { return r.Target == nil }

// HostID returns the HostID the certificate applies to, derived from
// the embedded Location and key.
func (r *PathRevoke) HostID() HostID {
	return ComputeHostID(r.Location, r.Key)
}

// Verify checks the certificate's self-authentication: the signature
// must verify under the embedded key. It returns the HostID the
// certificate revokes or forwards.
func (r *PathRevoke) Verify() (HostID, error) {
	var id HostID
	pub, err := rabin.ParsePublicKey(r.Key)
	if err != nil {
		return id, fmt.Errorf("core: revocation key: %w", err)
	}
	body := xdr.MustMarshal(pathMessage{Tag: "PathRevoke", Location: r.Location, Key: r.Key, Target: r.Target})
	if err := pub.VerifyMessage(body, &r.Sig); err != nil {
		return id, errors.New("core: revocation signature invalid")
	}
	if r.Target != nil {
		if _, err := Parse(*r.Target); err != nil {
			return id, fmt.Errorf("core: forwarding target: %w", err)
		}
	}
	return r.HostID(), nil
}

// ForwardTarget returns the parsed target of a forwarding pointer.
func (r *PathRevoke) ForwardTarget() (Path, error) {
	if r.Target == nil {
		return Path{}, errors.New("core: certificate is a revocation, not a forwarding pointer")
	}
	return Parse(*r.Target)
}

// Marshal returns the certificate's wire encoding.
func (r *PathRevoke) Marshal() []byte { return xdr.MustMarshal(*r) }

// ParsePathRevoke decodes and verifies a certificate from its wire
// encoding, returning the certificate and the HostID it governs.
func ParsePathRevoke(b []byte) (*PathRevoke, HostID, error) {
	var r PathRevoke
	var id HostID
	if err := xdr.Unmarshal(b, &r); err != nil {
		return nil, id, fmt.Errorf("core: bad revocation encoding: %w", err)
	}
	id, err := r.Verify()
	if err != nil {
		return nil, id, err
	}
	return &r, id, nil
}
