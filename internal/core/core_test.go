package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHostIDDeterministic(t *testing.T) {
	a := ComputeHostID("sfs.lcs.mit.edu", []byte("key"))
	b := ComputeHostID("sfs.lcs.mit.edu", []byte("key"))
	if a != b {
		t.Fatal("HostID not deterministic")
	}
}

func TestHostIDBindsLocationAndKey(t *testing.T) {
	base := ComputeHostID("host.example.com", []byte("key"))
	if ComputeHostID("other.example.com", []byte("key")) == base {
		t.Fatal("HostID ignores location")
	}
	if ComputeHostID("host.example.com", []byte("key2")) == base {
		t.Fatal("HostID ignores key")
	}
}

func TestBase32Alphabet(t *testing.T) {
	if len(base32Alphabet) != 32 {
		t.Fatalf("alphabet has %d characters", len(base32Alphabet))
	}
	for _, banned := range "l1o0" {
		if strings.ContainsRune(base32Alphabet, banned) {
			t.Errorf("alphabet contains confusable %q", banned)
		}
	}
	seen := map[rune]bool{}
	for _, c := range base32Alphabet {
		if seen[c] {
			t.Errorf("duplicate alphabet character %q", c)
		}
		seen[c] = true
	}
}

func TestHostIDStringRoundTrip(t *testing.T) {
	f := func(id HostID) bool {
		s := id.String()
		if len(s) != encodedIDLen {
			return false
		}
		got, err := ParseHostID(s)
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseHostIDErrors(t *testing.T) {
	if _, err := ParseHostID("short"); err == nil {
		t.Fatal("short HostID accepted")
	}
	bad := strings.Repeat("2", encodedIDLen-1) + "l" // banned char
	if _, err := ParseHostID(bad); err == nil {
		t.Fatal("banned character accepted")
	}
	upper := strings.Repeat("A", encodedIDLen)
	if _, err := ParseHostID(upper); err == nil {
		t.Fatal("upper-case HostID accepted")
	}
}

func TestParsePath(t *testing.T) {
	id := ComputeHostID("sfs.lcs.mit.edu", []byte("k"))
	name := "/sfs/sfs.lcs.mit.edu:" + id.String() + "/pub/links/verisign"
	p, err := Parse(name)
	if err != nil {
		t.Fatal(err)
	}
	if p.Location != "sfs.lcs.mit.edu" {
		t.Errorf("location = %q", p.Location)
	}
	if p.HostID != id {
		t.Error("HostID mismatch")
	}
	if p.Rest != "pub/links/verisign" {
		t.Errorf("rest = %q", p.Rest)
	}
	if p.String() != name {
		t.Errorf("String() = %q, want %q", p.String(), name)
	}
}

func TestParsePathRoot(t *testing.T) {
	id := ComputeHostID("host", []byte("k"))
	p, err := Parse("/sfs/host:" + id.String())
	if err != nil {
		t.Fatal(err)
	}
	if p.Rest != "" {
		t.Errorf("rest = %q, want empty", p.Rest)
	}
	if p.Root() != p {
		t.Error("Root() of a root path differs")
	}
}

func TestParsePathErrors(t *testing.T) {
	id := ComputeHostID("h", []byte("k")).String()
	cases := []string{
		"/etc/passwd",
		"/sfs",
		"/sfs/",
		"/sfs/nocolonhere",
		"/sfs/host:" + strings.Repeat("x", 10),
		"/sfs/:" + id,
		"/sfs/bad host:" + id,
		"/sfs/host:" + strings.ToUpper(id),
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded", c)
		}
	}
}

func TestParseNameNotSelfCertifying(t *testing.T) {
	// Human-readable names under /sfs are resolved by agents, not
	// parsed as self-certifying.
	if _, err := ParseName("verisign"); err != ErrNotSelfCertifying {
		t.Fatalf("got %v, want ErrNotSelfCertifying", err)
	}
}

func TestMakePathConsistent(t *testing.T) {
	key := []byte("public key bytes")
	p := MakePath("server.example.com", key)
	if p.HostID != ComputeHostID("server.example.com", key) {
		t.Fatal("MakePath HostID mismatch")
	}
	rt, err := Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name() != p.Name() {
		t.Fatal("round trip through string failed")
	}
}

func TestValidateLocation(t *testing.T) {
	good := []string{"a", "host.example.com", "10.0.0.1", "my-host_2"}
	for _, g := range good {
		if err := ValidateLocation(g); err != nil {
			t.Errorf("ValidateLocation(%q) = %v", g, err)
		}
	}
	bad := []string{"", "host/../../etc", "host:port", "host name", strings.Repeat("x", 300)}
	for _, b := range bad {
		if err := ValidateLocation(b); err == nil {
			t.Errorf("ValidateLocation(%q) succeeded", b)
		}
	}
}

func TestHostIDCaseSensitivity(t *testing.T) {
	// Locations are used verbatim: the HostID for a differently-
	// cased location differs, so clients cannot be confused by case
	// games.
	if ComputeHostID("Host", []byte("k")) == ComputeHostID("host", []byte("k")) {
		t.Fatal("location case ignored in HostID")
	}
}
