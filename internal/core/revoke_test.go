package core

import (
	"sync"
	"testing"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
)

var (
	revKeyOnce sync.Once
	revKey     *rabin.PrivateKey
	revKey2    *rabin.PrivateKey
)

func revTestKeys(t *testing.T) (*rabin.PrivateKey, *rabin.PrivateKey) {
	t.Helper()
	revKeyOnce.Do(func() {
		g := prng.NewSeeded([]byte("revoke-test"))
		var err error
		revKey, err = rabin.GenerateKey(g, 512)
		if err != nil {
			t.Fatal(err)
		}
		revKey2, err = rabin.GenerateKey(g, 512)
		if err != nil {
			t.Fatal(err)
		}
	})
	return revKey, revKey2
}

func TestRevocationRoundTrip(t *testing.T) {
	k, _ := revTestKeys(t)
	g := prng.NewSeeded([]byte("r1"))
	rev, err := NewRevocation(k, "compromised.example.com", g)
	if err != nil {
		t.Fatal(err)
	}
	if !rev.IsRevocation() {
		t.Fatal("revocation reports as forwarding pointer")
	}
	wire := rev.Marshal()
	got, id, err := ParsePathRevoke(wire)
	if err != nil {
		t.Fatal(err)
	}
	want := ComputeHostID("compromised.example.com", k.PublicKey.Bytes())
	if id != want {
		t.Fatal("revocation HostID mismatch")
	}
	if !got.IsRevocation() {
		t.Fatal("parsed certificate lost revocation-ness")
	}
}

func TestForwardingPointer(t *testing.T) {
	k, k2 := revTestKeys(t)
	g := prng.NewSeeded([]byte("f1"))
	target := MakePath("new-home.example.com", k2.PublicKey.Bytes())
	fwd, err := NewForward(k, "old-home.example.com", target, g)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.IsRevocation() {
		t.Fatal("forwarding pointer reports as revocation")
	}
	_, id, err := ParsePathRevoke(fwd.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if id != ComputeHostID("old-home.example.com", k.PublicKey.Bytes()) {
		t.Fatal("forward HostID mismatch")
	}
	got, err := fwd.ForwardTarget()
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != target.Name() {
		t.Fatalf("target = %q, want %q", got.Name(), target.Name())
	}
}

func TestRevocationHasNoForwardTarget(t *testing.T) {
	k, _ := revTestKeys(t)
	g := prng.NewSeeded([]byte("r2"))
	rev, _ := NewRevocation(k, "h.example.com", g)
	if _, err := rev.ForwardTarget(); err == nil {
		t.Fatal("ForwardTarget succeeded on a revocation")
	}
}

func TestTamperedRevocationRejected(t *testing.T) {
	k, _ := revTestKeys(t)
	g := prng.NewSeeded([]byte("r3"))
	rev, _ := NewRevocation(k, "h.example.com", g)

	// Change the location: the signature must no longer verify, so
	// an attacker cannot transplant a revocation onto a different
	// pathname.
	tampered := *rev
	tampered.Location = "other.example.com"
	if _, err := tampered.Verify(); err == nil {
		t.Fatal("location-tampered certificate verified")
	}

	// Convert a revocation into a forwarding pointer: also caught.
	k2target := MakePath("evil.example.com", []byte("evil key"))
	s := k2target.String()
	tampered2 := *rev
	tampered2.Target = &s
	if _, err := tampered2.Verify(); err == nil {
		t.Fatal("revocation converted to forwarding pointer verified")
	}

	// Corrupt the signature root.
	tampered3 := *rev
	tampered3.Sig.Root = append([]byte(nil), rev.Sig.Root...)
	tampered3.Sig.Root[0] ^= 1
	if _, err := tampered3.Verify(); err == nil {
		t.Fatal("signature-corrupted certificate verified")
	}
}

func TestWrongKeyCannotRevoke(t *testing.T) {
	k, k2 := revTestKeys(t)
	g := prng.NewSeeded([]byte("r4"))
	// k2 signs a revocation naming k's location, but the embedded
	// key is k2's: the HostID it revokes is its own, not k's.
	rev, err := NewRevocation(k2, "victim.example.com", g)
	if err != nil {
		t.Fatal(err)
	}
	id, err := rev.Verify()
	if err != nil {
		t.Fatal(err)
	}
	victimID := ComputeHostID("victim.example.com", k.PublicKey.Bytes())
	if id == victimID {
		t.Fatal("attacker revoked someone else's HostID")
	}
}

func TestForwardToGarbageRejected(t *testing.T) {
	k, _ := revTestKeys(t)
	g := prng.NewSeeded([]byte("r5"))
	bad := "not-a-self-certifying-path"
	fwd, err := newPathMessage(k, "h.example.com", &bad, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fwd.Verify(); err == nil {
		t.Fatal("forwarding pointer to garbage verified")
	}
}

func TestParsePathRevokeGarbage(t *testing.T) {
	if _, _, err := ParsePathRevoke([]byte("garbage")); err == nil {
		t.Fatal("garbage revocation parsed")
	}
}
