package core

import (
	"testing"
	"testing/quick"
)

// Property: every (valid location, key bytes) pair yields a pathname
// that parses back to the same Location and HostID.
func TestQuickPathRoundTrip(t *testing.T) {
	locs := []string{"a", "host.example.com", "10.1.2.3", "x-y_z.example.org"}
	f := func(pick uint8, key []byte) bool {
		loc := locs[int(pick)%len(locs)]
		p := MakePath(loc, key)
		got, err := Parse(p.String())
		if err != nil {
			return false
		}
		return got.Location == loc && got.HostID == p.HostID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pathnames with a Rest component round-trip too.
func TestQuickPathRestRoundTrip(t *testing.T) {
	f := func(key []byte, a, b uint8) bool {
		rest := ""
		switch a % 3 {
		case 1:
			rest = "pub"
		case 2:
			rest = "pub/links/verisign"
		}
		p := MakePath("host.example.com", key)
		p.Rest = rest
		got, err := Parse(p.String())
		if err != nil {
			return false
		}
		return got.Rest == rest && got.Name() == p.Name()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct keys essentially never collide on HostID, and the
// base-32 encoding is injective over random IDs.
func TestQuickHostIDInjective(t *testing.T) {
	f := func(k1, k2 []byte) bool {
		if string(k1) == string(k2) {
			return true
		}
		a := ComputeHostID("h", k1)
		b := ComputeHostID("h", k2)
		if a == b {
			return false // SHA-1 collision: not today
		}
		return a.String() != b.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
