package sfsro

import (
	"net"
	"testing"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/secchan"
	"repro/internal/vfs"
)

// buildNamedDB makes a tiny signed database for a location.
func buildNamedDB(t *testing.T, location, marker string, key *rabin.PrivateKey) *DB {
	t.Helper()
	fs := vfs.New()
	if err := fs.WriteFile(vfs.Cred{UID: 0}, "id.txt", []byte(marker), 0o644); err != nil {
		t.Fatal(err)
	}
	g := prng.NewSeeded([]byte("registry-" + location))
	db, err := BuildFromVFS(fs, location, key, 1, time.Hour, g, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestRegistryDispatchByHostID verifies that one replica machine can
// mirror several publishers' databases, routing each connect by the
// HostID in the self-certifying pathname.
func TestRegistryDispatchByHostID(t *testing.T) {
	key1, evil := roKeys(t)
	g := prng.NewSeeded([]byte("registry-key2"))
	key2, err := rabin.GenerateKey(g, 512)
	if err != nil {
		t.Fatal(err)
	}
	db1 := buildNamedDB(t, "one.example.com", "first publisher", key1)
	db2 := buildNamedDB(t, "two.example.com", "second publisher", key2)

	reg := NewRegistry()
	for _, db := range []*DB{db1, db2} {
		rep, err := NewReplica(db)
		if err != nil {
			t.Fatal(err)
		}
		reg.Add(rep)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				req, err := secchan.ReadConnect(conn)
				if err != nil {
					conn.Close()
					return
				}
				reg.HandleConn(conn, req)
			}(conn)
		}
	}()

	fetch := func(db *DB, want string) {
		rep, _ := NewReplica(db)
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		cl, err := DialClient(conn, rep.Path(), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		data, err := cl.ReadFile("id.txt")
		if err != nil || string(data) != want {
			t.Fatalf("fetch %s: %q %v", want, data, err)
		}
	}
	fetch(db1, "first publisher")
	fetch(db2, "second publisher")

	// A HostID the registry does not mirror is refused.
	evilDB := buildNamedDB(t, "three.example.com", "x", evil)
	rep3, _ := NewReplica(evilDB)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DialClient(conn, rep3.Path(), 0); err == nil {
		t.Fatal("unmirrored HostID served")
	}
}
