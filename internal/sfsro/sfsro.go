// Package sfsro implements the SFS read-only dialect (paper §2.4,
// §3.2): a protocol that lets servers prove the contents of public,
// read-only file systems using precomputed digital signatures.
//
// The dialect makes the amount of cryptographic computation required
// from read-only servers proportional to the file system's size and
// rate of change rather than to the number of clients connecting. It
// also frees read-only servers from keeping any on-line copies of
// their private keys, which in turn allows read-only file systems to
// be replicated on untrusted machines — the configuration SFS
// certification authorities use, since they must sustain high
// integrity, availability, and performance.
//
// The database is a content-addressed hash tree:
//
//   - file data is split into blocks, each named by its SHA-1 hash;
//   - a file inode lists its block hashes;
//   - a directory lists (name, child-hash) pairs in sorted order;
//   - the root structure carries the root directory's hash, a version
//     number, and a validity interval, and is signed offline by the
//     file system's private key.
//
// A client verifies the one signature on the root, then checks every
// fetched blob against the hash that named it. Any replica, however
// untrusted, can serve the database: tampering is detected block by
// block.
package sfsro

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// BlockSize is the data block granularity.
const BlockSize = 8192

// Hash names a blob.
type Hash [sha1.Size]byte

func hashOf(kind string, data []byte) Hash {
	h := sha1.New()
	h.Write([]byte(kind))
	h.Write(data)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Blob kinds.
const (
	kindData  = "ro-data"
	kindInode = "ro-inode"
	kindDir   = "ro-dir"
)

// Inode describes one read-only file.
type Inode struct {
	Type   uint32 // vfs-compatible: 1 reg, 2 dir, 5 symlink
	Mode   uint32
	Size   uint64
	Target string // symlink target
	Blocks []Hash // file data blocks, or the directory blob
}

// File types in Inode.Type.
const (
	TypeReg     = 1
	TypeDir     = 2
	TypeSymlink = 5
)

// DirEntry is one directory entry.
type DirEntry struct {
	Name  string
	Inode Hash
}

// Dir is a directory blob: entries sorted by name.
type Dir struct {
	Entries []DirEntry
}

// Root is the signed head of a database.
type Root struct {
	Tag      string // "SFSRO"
	Location string
	RootDir  Hash   // hash of the root directory's inode
	Version  uint64 // monotonic; prevents rollback to older trees
	IssuedAt int64  // unix seconds
	TTL      uint32 // validity in seconds
}

// SignedRoot carries the root and its offline signature.
type SignedRoot struct {
	Root Root
	Key  []byte // public key (checked against the pathname HostID)
	Sig  rabin.Signature
}

// DB is a content-addressed database plus its signed root. The zero
// value is not usable; build one with a Builder or decode a marshaled
// database.
type DB struct {
	Signed SignedRoot
	Blobs  map[Hash][]byte
}

// wireDB is the serialized database (what sfsrodb writes and replicas
// load).
type wireDB struct {
	Signed SignedRoot
	Hashes []Hash
	Blobs  [][]byte
}

// Marshal serializes the database for distribution to replicas.
func (db *DB) Marshal() []byte {
	w := wireDB{Signed: db.Signed}
	hashes := make([]Hash, 0, len(db.Blobs))
	for h := range db.Blobs {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool {
		for k := range hashes[i] {
			if hashes[i][k] != hashes[j][k] {
				return hashes[i][k] < hashes[j][k]
			}
		}
		return false
	})
	for _, h := range hashes {
		w.Hashes = append(w.Hashes, h)
		w.Blobs = append(w.Blobs, db.Blobs[h])
	}
	if w.Hashes == nil {
		w.Hashes = []Hash{}
		w.Blobs = [][]byte{}
	}
	return xdr.MustMarshal(w)
}

// ParseDB loads a serialized database. Replicas need not trust the
// source: clients verify everything end to end.
func ParseDB(data []byte) (*DB, error) {
	var w wireDB
	if err := xdr.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("sfsro: bad database encoding: %w", err)
	}
	if len(w.Hashes) != len(w.Blobs) {
		return nil, errors.New("sfsro: hash/blob count mismatch")
	}
	db := &DB{Signed: w.Signed, Blobs: make(map[Hash][]byte, len(w.Hashes))}
	for i, h := range w.Hashes {
		db.Blobs[h] = w.Blobs[i]
	}
	return db, nil
}

// Builder accumulates a read-only tree.
type Builder struct {
	location string
	priv     *rabin.PrivateKey
	version  uint64
	ttl      uint32
	blobs    map[Hash][]byte
}

// NewBuilder starts a database for the file system served by priv at
// location. version should increase with each published snapshot.
func NewBuilder(location string, priv *rabin.PrivateKey, version uint64, ttl time.Duration) *Builder {
	return &Builder{
		location: location,
		priv:     priv,
		version:  version,
		ttl:      uint32(ttl / time.Second),
		blobs:    make(map[Hash][]byte),
	}
}

func (b *Builder) put(kind string, data []byte) Hash {
	h := hashOf(kind, data)
	b.blobs[h] = data
	return h
}

// AddFile stores file contents and returns the inode hash.
func (b *Builder) AddFile(data []byte, mode uint32) Hash {
	ino := Inode{Type: TypeReg, Mode: mode, Size: uint64(len(data))}
	for off := 0; off < len(data) || off == 0; off += BlockSize {
		end := off + BlockSize
		if end > len(data) {
			end = len(data)
		}
		ino.Blocks = append(ino.Blocks, b.put(kindData, data[off:end]))
		if end == len(data) {
			break
		}
	}
	return b.put(kindInode, xdr.MustMarshal(ino))
}

// AddSymlink stores a symbolic link inode (targets may be
// self-certifying pathnames — this is how certification authorities
// publish their links).
func (b *Builder) AddSymlink(target string) Hash {
	ino := Inode{Type: TypeSymlink, Mode: 0o777, Size: uint64(len(target)), Target: target}
	return b.put(kindInode, xdr.MustMarshal(ino))
}

// AddDir stores a directory mapping names to inode hashes and returns
// the directory's inode hash.
func (b *Builder) AddDir(entries map[string]Hash) Hash {
	d := Dir{}
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d.Entries = append(d.Entries, DirEntry{Name: n, Inode: entries[n]})
	}
	if d.Entries == nil {
		d.Entries = []DirEntry{}
	}
	dirBlob := b.put(kindDir, xdr.MustMarshal(d))
	ino := Inode{Type: TypeDir, Mode: 0o755, Blocks: []Hash{dirBlob}}
	return b.put(kindInode, xdr.MustMarshal(ino))
}

// Sign finalizes the database with rootDir as the root directory
// inode. This is the only private-key operation; it happens offline,
// and the resulting database can be copied to untrusted replicas.
func (b *Builder) Sign(rootDir Hash, rng *prng.Generator, now time.Time) (*DB, error) {
	root := Root{
		Tag: "SFSRO", Location: b.location, RootDir: rootDir,
		Version: b.version, IssuedAt: now.Unix(), TTL: b.ttl,
	}
	sig, err := b.priv.SignMessage(rng, xdr.MustMarshal(root))
	if err != nil {
		return nil, err
	}
	return &DB{
		Signed: SignedRoot{Root: root, Key: b.priv.PublicKey.Bytes(), Sig: *sig},
		Blobs:  b.blobs,
	}, nil
}

// BuildFromVFS snapshots an entire substrate file system into a
// database (the sfsrodb tool's core).
func BuildFromVFS(fs *vfs.FS, location string, priv *rabin.PrivateKey, version uint64, ttl time.Duration, rng *prng.Generator, now time.Time) (*DB, error) {
	b := NewBuilder(location, priv, version, ttl)
	cred := vfs.Cred{UID: 0}
	var walk func(dir vfs.FileID) (Hash, error)
	walk = func(dir vfs.FileID) (Hash, error) {
		ents, _, err := fs.ReadDir(cred, dir, 0, 0)
		if err != nil {
			return Hash{}, err
		}
		entries := make(map[string]Hash, len(ents))
		for _, e := range ents {
			attr, err := fs.GetAttr(e.FileID)
			if err != nil {
				return Hash{}, err
			}
			switch attr.Type {
			case vfs.TypeDir:
				h, err := walk(e.FileID)
				if err != nil {
					return Hash{}, err
				}
				entries[e.Name] = h
			case vfs.TypeSymlink:
				target, err := fs.Readlink(e.FileID)
				if err != nil {
					return Hash{}, err
				}
				entries[e.Name] = b.AddSymlink(target)
			default:
				data, _, err := fs.Read(cred, e.FileID, 0, uint32(attr.Size))
				if err != nil {
					return Hash{}, err
				}
				entries[e.Name] = b.AddFile(data, attr.Mode)
			}
		}
		return b.AddDir(entries), nil
	}
	rootDir, err := walk(fs.Root())
	if err != nil {
		return nil, err
	}
	return b.Sign(rootDir, rng, now)
}

// VerifyRoot checks a signed root against the self-certifying
// pathname it claims to serve: the embedded key must hash to the
// pathname's HostID and the signature must verify. It returns the
// root on success.
func VerifyRoot(sr *SignedRoot, p core.Path, now time.Time) (*Root, error) {
	if sr.Root.Tag != "SFSRO" {
		return nil, errors.New("sfsro: bad root tag")
	}
	if sr.Root.Location != p.Location {
		return nil, errors.New("sfsro: root is for a different location")
	}
	if core.ComputeHostID(sr.Root.Location, sr.Key) != p.HostID {
		return nil, errors.New("sfsro: key does not match pathname HostID")
	}
	pub, err := rabin.ParsePublicKey(sr.Key)
	if err != nil {
		return nil, err
	}
	if err := pub.VerifyMessage(xdr.MustMarshal(sr.Root), &sr.Sig); err != nil {
		return nil, errors.New("sfsro: root signature invalid")
	}
	issued := time.Unix(sr.Root.IssuedAt, 0)
	if now.Before(issued.Add(-time.Minute)) {
		return nil, errors.New("sfsro: root issued in the future")
	}
	if sr.Root.TTL > 0 && now.After(issued.Add(time.Duration(sr.Root.TTL)*time.Second)) {
		return nil, errors.New("sfsro: root has expired")
	}
	r := sr.Root
	return &r, nil
}

// Get fetches and verifies a blob by hash from the database.
func (db *DB) Get(kind string, h Hash) ([]byte, error) {
	blob, ok := db.Blobs[h]
	if !ok {
		return nil, errors.New("sfsro: blob not found")
	}
	if hashOf(kind, blob) != h {
		return nil, errors.New("sfsro: blob hash mismatch")
	}
	return blob, nil
}
