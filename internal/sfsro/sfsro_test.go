package sfsro

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/vfs"
)

var (
	roOnce sync.Once
	roKey  *rabin.PrivateKey
	evilK  *rabin.PrivateKey
)

func roKeys(t testing.TB) (*rabin.PrivateKey, *rabin.PrivateKey) {
	t.Helper()
	roOnce.Do(func() {
		g := prng.NewSeeded([]byte("sfsro-test"))
		var err error
		if roKey, err = rabin.GenerateKey(g, 512); err != nil {
			t.Fatal(err)
		}
		if evilK, err = rabin.GenerateKey(g, 512); err != nil {
			t.Fatal(err)
		}
	})
	return roKey, evilK
}

func buildTestDB(t testing.TB, version uint64) *DB {
	t.Helper()
	key, _ := roKeys(t)
	fs := vfs.New()
	cred := vfs.Cred{UID: 0}
	if err := fs.WriteFile(cred, "pub/readme.txt", []byte("welcome to the CA"), 0o644); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("block!"), 4096) // > 2 blocks
	if err := fs.WriteFile(cred, "pub/big.bin", big, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.SymlinkAt(cred, "links/mit", "/sfs/mit.example.com:aaaa"); err != nil {
		t.Fatal(err)
	}
	g := prng.NewSeeded([]byte("builder"))
	db, err := BuildFromVFS(fs, "ca.example.com", key, version, time.Hour, g, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func dialTestReplica(t *testing.T, db *DB, minVersion uint64) (*Client, error) {
	t.Helper()
	rep, err := NewReplica(db)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go rep.ListenAndServe(l) //nolint:errcheck
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialClient(conn, rep.Path(), minVersion)
	if err != nil {
		return nil, err
	}
	t.Cleanup(func() { cl.Close() })
	return cl, nil
}

func TestBuildAndReadBack(t *testing.T) {
	db := buildTestDB(t, 1)
	cl, err := dialTestReplica(t, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("pub/readme.txt")
	if err != nil || string(got) != "welcome to the CA" {
		t.Fatalf("readme: %q %v", got, err)
	}
	big, err := cl.ReadFile("pub/big.bin")
	if err != nil || len(big) != 6*4096 {
		t.Fatalf("big: %d bytes %v", len(big), err)
	}
	target, err := cl.ReadLink("links/mit")
	if err != nil || target != "/sfs/mit.example.com:aaaa" {
		t.Fatalf("symlink: %q %v", target, err)
	}
	ents, err := cl.ReadDir("pub")
	if err != nil || len(ents) != 2 {
		t.Fatalf("readdir: %d %v", len(ents), err)
	}
	if _, err := cl.ReadFile("pub/missing"); err != ErrNotFound {
		t.Fatalf("missing: %v", err)
	}
}

func TestDBSerializationRoundTrip(t *testing.T) {
	db := buildTestDB(t, 1)
	data := db.Marshal()
	got, err := ParseDB(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Blobs) != len(db.Blobs) {
		t.Fatalf("blob count %d vs %d", len(got.Blobs), len(db.Blobs))
	}
	// Round-tripped database still serves clients.
	cl, err := dialTestReplica(t, got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFile("pub/readme.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestTamperedBlobDetected(t *testing.T) {
	db := buildTestDB(t, 1)
	// An untrusted replica flips a byte in some data blob.
	for h, blob := range db.Blobs {
		if len(blob) > 0 && blob[0] == 'w' { // the readme
			mut := bytes.Clone(blob)
			mut[0] = 'W'
			db.Blobs[h] = mut
			break
		}
	}
	cl, err := dialTestReplica(t, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFile("pub/readme.txt"); err != ErrVerify {
		t.Fatalf("got %v, want ErrVerify", err)
	}
}

func TestWrongKeyRootRejected(t *testing.T) {
	_, evil := roKeys(t)
	db := buildTestDB(t, 1)
	// The attacker re-signs the root with their own key. The
	// client asked for the pathname derived from the real key, so
	// the HostID check fails at connect.
	g := prng.NewSeeded([]byte("evil"))
	evilDB, err := BuildFromVFS(vfs.New(), "ca.example.com", evil, 99, time.Hour, g, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(evilDB)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go rep.ListenAndServe(l) //nolint:errcheck
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	realPath := core.MakePath("ca.example.com", db.Signed.Key)
	if _, err := DialClient(conn, realPath, 0); err == nil {
		t.Fatal("client accepted a replica serving a different key")
	}
}

func TestRollbackDetected(t *testing.T) {
	old := buildTestDB(t, 1)
	if _, err := dialTestReplica(t, old, 5); err != ErrRollback {
		t.Fatalf("got %v, want ErrRollback", err)
	}
}

func TestExpiredRootRejected(t *testing.T) {
	key, _ := roKeys(t)
	g := prng.NewSeeded([]byte("expired"))
	fs := vfs.New()
	db, err := BuildFromVFS(fs, "ca.example.com", key, 1, time.Second,
		g, time.Now().Add(-time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dialTestReplica(t, db, 0); err == nil {
		t.Fatal("expired root accepted")
	}
}

func TestVersionMonotonicAcrossSnapshots(t *testing.T) {
	db1 := buildTestDB(t, 1)
	db2 := buildTestDB(t, 2)
	cl, err := dialTestReplica(t, db2, db1.Signed.Root.Version)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Version() != 2 {
		t.Fatalf("version %d", cl.Version())
	}
}

func TestEmptyDirectory(t *testing.T) {
	key, _ := roKeys(t)
	g := prng.NewSeeded([]byte("empty"))
	db, err := BuildFromVFS(vfs.New(), "ca.example.com", key, 1, time.Hour, g, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := dialTestReplica(t, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := cl.ReadDir("")
	if err != nil || len(ents) != 0 {
		t.Fatalf("root listing: %d %v", len(ents), err)
	}
}

func TestDeduplication(t *testing.T) {
	key, _ := roKeys(t)
	fs := vfs.New()
	cred := vfs.Cred{UID: 0}
	same := bytes.Repeat([]byte("dedup"), 2000)
	fs.WriteFile(cred, "a", same, 0o644) //nolint:errcheck
	fs.WriteFile(cred, "b", same, 0o644) //nolint:errcheck
	g := prng.NewSeeded([]byte("dedup"))
	db, err := BuildFromVFS(fs, "ca.example.com", key, 1, time.Hour, g, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// Content addressing dedups identical files: blobs ≈ blocks of
	// one copy + inode + dirs, well under two full copies.
	var dataBytes int
	for _, b := range db.Blobs {
		dataBytes += len(b)
	}
	if dataBytes > len(same)+4096 {
		t.Fatalf("no deduplication: %d bytes stored for %d-byte content", dataBytes, len(same))
	}
}
