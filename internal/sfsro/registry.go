package sfsro

import (
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/secchan"
)

// Registry serves multiple read-only databases behind one server
// master, dispatching connect requests by HostID — the deployment
// where one replica machine mirrors several publishers' file systems.
type Registry struct {
	mu       sync.RWMutex
	replicas map[core.HostID]*Replica
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{replicas: make(map[core.HostID]*Replica)}
}

// Add installs (or replaces) the replica for its database's pathname.
func (r *Registry) Add(rep *Replica) {
	p := rep.Path()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replicas[p.HostID] = rep
}

// HandleConn is a server.ExtensionHandler: it routes the connection to
// the replica serving the requested HostID.
func (r *Registry) HandleConn(conn net.Conn, req *secchan.ConnectRequest) {
	var hostID core.HostID
	copy(hostID[:], req.HostID[:])
	r.mu.RLock()
	rep := r.replicas[hostID]
	r.mu.RUnlock()
	if rep == nil {
		secchan.RejectNoSuchFS(conn) //nolint:errcheck
		conn.Close()
		return
	}
	rep.HandleConn(conn, req)
}
