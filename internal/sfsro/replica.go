package sfsro

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/secchan"
	"repro/internal/sfsrpc"
	"repro/internal/sunrpc"
	"repro/internal/xdr"
)

// Read-only protocol procedures.
const (
	ProcGetRoot = 1
	ProcGetData = 2
)

type getDataArgs struct {
	Hash Hash
}

type getDataRes struct {
	Found bool
	Blob  []byte
}

// Replica serves a read-only database. It holds no private key: it
// can run on an entirely untrusted machine, because clients verify
// the signed root and every blob hash themselves.
type Replica struct {
	mu   sync.RWMutex
	db   *DB
	path core.Path
	logf func(format string, args ...interface{})
}

// SetLogf installs a log.Printf-shaped hook for single-line
// structured accept/close connection logging (nil disables it, the
// default — what sfsrodb serve -quiet restores).
func (r *Replica) SetLogf(f func(format string, args ...interface{})) {
	r.mu.Lock()
	r.logf = f
	r.mu.Unlock()
}

func (r *Replica) logConn(format string, args ...interface{}) {
	r.mu.RLock()
	f := r.logf
	r.mu.RUnlock()
	if f != nil {
		f(format, args...)
	}
}

// meteredConn counts bytes both ways and fires a one-shot hook on
// close, feeding the replica's close log line.
type meteredConn struct {
	net.Conn
	in, out atomic.Uint64
	once    sync.Once
	onClose func(in, out uint64)
}

func (c *meteredConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c *meteredConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

func (c *meteredConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(func() {
		if c.onClose != nil {
			c.onClose(c.in.Load(), c.out.Load())
		}
	})
	return err
}

// NewReplica wraps a database. The replica serves exactly the
// pathname the database's signed root names.
func NewReplica(db *DB) (*Replica, error) {
	p := core.MakePath(db.Signed.Root.Location, db.Signed.Key)
	return &Replica{db: db, path: p}, nil
}

// Path returns the self-certifying pathname the replica serves.
func (r *Replica) Path() core.Path {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.path
}

// SetDB atomically installs a newer database snapshot (the publisher
// pushes these; version numbers prevent rollback on the client side).
func (r *Replica) SetDB(db *DB) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.db = db
	r.path = core.MakePath(db.Signed.Root.Location, db.Signed.Key)
}

// handler serves the RO RPC program.
func (r *Replica) handler() sunrpc.Handler {
	return func(proc uint32, _ sunrpc.OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
		switch proc {
		case ProcGetRoot:
			r.mu.RLock()
			defer r.mu.RUnlock()
			return r.db.Signed, nil
		case ProcGetData:
			var a getDataArgs
			if err := args.Decode(&a); err != nil {
				return nil, sunrpc.ErrGarbageArgs
			}
			r.mu.RLock()
			blob, ok := r.db.Blobs[a.Hash]
			r.mu.RUnlock()
			if !ok {
				return getDataRes{Found: false, Blob: []byte{}}, nil
			}
			return getDataRes{Found: true, Blob: blob}, nil
		default:
			return nil, sunrpc.ErrProcUnavail
		}
	}
}

// HandleConn runs the read-only dialect on one raw connection that
// has already had its connect request read (server-master extension
// entry point).
func (r *Replica) HandleConn(conn net.Conn, req *secchan.ConnectRequest) {
	start := time.Now()
	peer := "?"
	if a := conn.RemoteAddr(); a != nil {
		peer = a.String()
	}
	r.logConn("accept peer=%s dialect=file-ro location=%s", peer, req.Location)
	mc := &meteredConn{Conn: conn}
	mc.onClose = func(in, out uint64) {
		r.logConn("close peer=%s dialect=file-ro dur=%s in=%d out=%d",
			peer, time.Since(start).Round(time.Microsecond), in, out)
	}
	conn = mc
	r.mu.RLock()
	path := r.path
	key := r.db.Signed.Key
	r.mu.RUnlock()
	var hostID core.HostID
	copy(hostID[:], req.HostID[:])
	if hostID != path.HostID || req.Location != path.Location {
		secchan.RejectNoSuchFS(conn) //nolint:errcheck
		conn.Close()
		return
	}
	if err := secchan.AcceptPlain(conn, key); err != nil {
		conn.Close()
		return
	}
	rpc := sunrpc.NewServer()
	rpc.Register(sfsrpc.ROProgram, sfsrpc.Version, r.handler())
	go func() {
		rpc.ServeConn(conn) //nolint:errcheck
		conn.Close()        // fire the close log even when the peer vanishes
	}()
}

// ListenAndServe runs a standalone replica (the untrusted-mirror
// deployment) on l.
func (r *Replica) ListenAndServe(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func(conn net.Conn) {
			req, err := secchan.ReadConnect(conn)
			if err != nil {
				conn.Close()
				return
			}
			r.HandleConn(conn, req)
		}(conn)
	}
}

// Client reads a read-only file system, verifying everything.
type Client struct {
	path core.Path
	rpc  *sunrpc.Client
	root *Root
	// minVersion guards against rollback across reconnects.
	minVersion uint64
	now        func() time.Time
}

// Errors.
var (
	ErrVerify   = errors.New("sfsro: verification failed")
	ErrNotFound = errors.New("sfsro: no such file")
	ErrRollback = errors.New("sfsro: server presented an older version")
)

// DialClient connects to a replica over conn, fetches the signed
// root, and verifies it against the self-certifying pathname. A
// minVersion of 0 accepts any version; pass the last seen version to
// detect rollback.
func DialClient(conn net.Conn, path core.Path, minVersion uint64) (*Client, error) {
	if _, err := secchan.ClientConnectPlain(conn, secchan.ServiceFileRO, path.Root()); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{path: path.Root(), rpc: sunrpc.NewClient(conn), minVersion: minVersion, now: time.Now}
	if err := c.refreshRoot(); err != nil {
		c.rpc.Close()
		return nil, err
	}
	return c, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }

// Version returns the verified database version.
func (c *Client) Version() uint64 { return c.root.Version }

func (c *Client) refreshRoot() error {
	var sr SignedRoot
	if err := c.rpc.Call(sfsrpc.ROProgram, sfsrpc.Version, ProcGetRoot, sunrpc.NoAuth(), nil, &sr); err != nil {
		return err
	}
	root, err := VerifyRoot(&sr, c.path, c.now())
	if err != nil {
		return err
	}
	if root.Version < c.minVersion {
		return ErrRollback
	}
	c.root = root
	return nil
}

// fetch retrieves and verifies one blob.
func (c *Client) fetch(kind string, h Hash) ([]byte, error) {
	var res getDataRes
	if err := c.rpc.Call(sfsrpc.ROProgram, sfsrpc.Version, ProcGetData, sunrpc.NoAuth(), getDataArgs{Hash: h}, &res); err != nil {
		return nil, err
	}
	if !res.Found {
		return nil, ErrNotFound
	}
	if hashOf(kind, res.Blob) != h {
		return nil, ErrVerify
	}
	return res.Blob, nil
}

func (c *Client) inode(h Hash) (*Inode, error) {
	blob, err := c.fetch(kindInode, h)
	if err != nil {
		return nil, err
	}
	var ino Inode
	if err := xdr.Unmarshal(blob, &ino); err != nil {
		return nil, ErrVerify
	}
	return &ino, nil
}

func (c *Client) dir(ino *Inode) (*Dir, error) {
	if ino.Type != TypeDir || len(ino.Blocks) != 1 {
		return nil, ErrVerify
	}
	blob, err := c.fetch(kindDir, ino.Blocks[0])
	if err != nil {
		return nil, err
	}
	var d Dir
	if err := xdr.Unmarshal(blob, &d); err != nil {
		return nil, ErrVerify
	}
	return &d, nil
}

// lookup walks a slash-separated path from the root to an inode.
func (c *Client) lookup(path string) (*Inode, error) {
	ino, err := c.inode(c.root.RootDir)
	if err != nil {
		return nil, err
	}
	for _, comp := range splitPath(path) {
		d, err := c.dir(ino)
		if err != nil {
			return nil, err
		}
		var next *Hash
		for i := range d.Entries {
			if d.Entries[i].Name == comp {
				next = &d.Entries[i].Inode
				break
			}
		}
		if next == nil {
			return nil, ErrNotFound
		}
		ino, err = c.inode(*next)
		if err != nil {
			return nil, err
		}
	}
	return ino, nil
}

func splitPath(p string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			if s := p[start:i]; s != "" && s != "." {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	return out
}

// Stat returns the inode at path.
func (c *Client) Stat(path string) (*Inode, error) { return c.lookup(path) }

// Done is closed when the replica connection fails.
func (c *Client) Done() <-chan struct{} { return c.rpc.Done() }

// RootHash returns the verified root directory inode hash.
func (c *Client) RootHash() Hash { return c.root.RootDir }

// InodeByHash fetches and verifies the inode named by h. The hash is
// the handle currency of read-only mounts.
func (c *Client) InodeByHash(h Hash) (*Inode, error) { return c.inode(h) }

// DirEntries fetches and verifies the directory blob of a directory
// inode.
func (c *Client) DirEntries(ino *Inode) ([]DirEntry, error) {
	d, err := c.dir(ino)
	if err != nil {
		return nil, err
	}
	return d.Entries, nil
}

// ReadInodeAt reads up to count bytes of a regular file's verified
// data starting at off.
func (c *Client) ReadInodeAt(ino *Inode, off uint64, count uint32) ([]byte, bool, error) {
	if ino.Type != TypeReg {
		return nil, false, ErrNotFound
	}
	if off >= ino.Size {
		return []byte{}, true, nil
	}
	end := off + uint64(count)
	if end > ino.Size {
		end = ino.Size
	}
	out := make([]byte, 0, end-off)
	for i := int(off / BlockSize); i < len(ino.Blocks) && uint64(i)*BlockSize < end; i++ {
		blob, err := c.fetch(kindData, ino.Blocks[i])
		if err != nil {
			return nil, false, err
		}
		blockStart := uint64(i) * BlockSize
		from := uint64(0)
		if off > blockStart {
			from = off - blockStart
		}
		to := uint64(len(blob))
		if blockStart+to > end {
			to = end - blockStart
		}
		if from > to {
			break
		}
		out = append(out, blob[from:to]...)
	}
	return out, end == ino.Size, nil
}

// ReadFile returns the verified contents of the file at path.
func (c *Client) ReadFile(path string) ([]byte, error) {
	ino, err := c.lookup(path)
	if err != nil {
		return nil, err
	}
	if ino.Type != TypeReg {
		return nil, ErrNotFound
	}
	out := make([]byte, 0, ino.Size)
	for _, bh := range ino.Blocks {
		blob, err := c.fetch(kindData, bh)
		if err != nil {
			return nil, err
		}
		out = append(out, blob...)
	}
	if uint64(len(out)) != ino.Size {
		return nil, ErrVerify
	}
	return out, nil
}

// ReadLink returns the target of the symbolic link at path.
func (c *Client) ReadLink(path string) (string, error) {
	ino, err := c.lookup(path)
	if err != nil {
		return "", err
	}
	if ino.Type != TypeSymlink {
		return "", ErrNotFound
	}
	return ino.Target, nil
}

// ReadDir lists the directory at path.
func (c *Client) ReadDir(path string) ([]DirEntry, error) {
	ino, err := c.lookup(path)
	if err != nil {
		return nil, err
	}
	d, err := c.dir(ino)
	if err != nil {
		return nil, err
	}
	return d.Entries, nil
}
