package authserv

// Authserver observability: how many authentication requests each
// Server validated and how they fared, plus the SRP password-login
// rounds of the key service. Per-instance (one authserver per served
// realm), snapshotted into the daemon's -stats JSON.

import "repro/internal/stats"

type serverMetrics struct {
	attempts stats.Counter // Validate calls
	failures stats.Counter // bad signature / bad message / unknown key
	okUser   stats.Counter // mapped to a registered user
	okGuest  stats.Counter // valid key, no record, guest credentials

	srpInits    stats.Counter // SRP exchanges started
	srpConfirms stats.Counter // exchanges completed with a matching M1
	srpFails    stats.Counter // unknown user, bad A, or failed confirm
}

// Stats is the JSON form of an authserver's counters.
type Stats struct {
	Attempts    uint64 `json:"attempts"`
	Failures    uint64 `json:"failures"`
	OKUser      uint64 `json:"ok_user"`
	OKGuest     uint64 `json:"ok_guest,omitempty"`
	SRPInits    uint64 `json:"srp_inits"`
	SRPConfirms uint64 `json:"srp_confirms"`
	SRPFails    uint64 `json:"srp_fails"`
}

// StatsSnapshot captures the authserver's counters.
func (s *Server) StatsSnapshot() Stats {
	return Stats{
		Attempts:    s.met.attempts.Load(),
		Failures:    s.met.failures.Load(),
		OKUser:      s.met.okUser.Load(),
		OKGuest:     s.met.okGuest.Load(),
		SRPInits:    s.met.srpInits.Load(),
		SRPConfirms: s.met.srpConfirms.Load(),
		SRPFails:    s.met.srpFails.Load(),
	}
}
