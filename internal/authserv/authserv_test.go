package authserv

import (
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/sfsrpc"
	"repro/internal/sunrpc"
)

const testCost = 4 // keep eksblowfish fast in tests

var (
	akOnce sync.Once
	userK  *rabin.PrivateKey
	introK *rabin.PrivateKey
)

func userKeys(t testing.TB) (*rabin.PrivateKey, *rabin.PrivateKey) {
	t.Helper()
	akOnce.Do(func() {
		g := prng.NewSeeded([]byte("authserv-test"))
		var err error
		if userK, err = rabin.GenerateKey(g, 512); err != nil {
			t.Fatal(err)
		}
		if introK, err = rabin.GenerateKey(g, 512); err != nil {
			t.Fatal(err)
		}
	})
	return userK, introK
}

func newTestServer(t testing.TB) (*Server, *DB) {
	t.Helper()
	g := prng.NewSeeded([]byte("authserv-server"))
	s := New("/sfs/server.example.com:"+core.ComputeHostID("server.example.com", []byte("k")).String(), g)
	db := NewDB("local", true)
	s.AddDB(db)
	return s, db
}

func register(t testing.TB, s *Server, db *DB, user string, uid uint32, k *rabin.PrivateKey, password string) {
	t.Helper()
	err := s.Register(db, user, uid, []uint32{uid}, RegisterOptions{
		Password: password, PrivateKey: k, EksCost: testCost,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func makeAuthInfo(session byte) sfsrpc.AuthInfo {
	var sid [20]byte
	sid[0] = session
	return sfsrpc.NewAuthInfo("server.example.com",
		core.ComputeHostID("server.example.com", []byte("k")), sid)
}

func signLogin(t testing.TB, k *rabin.PrivateKey, ai sfsrpc.AuthInfo, seq uint32) []byte {
	t.Helper()
	g := prng.NewSeeded([]byte{byte(seq), 0x55})
	req := sfsrpc.SignedAuthReq{Tag: "SignedAuthReq", AuthID: ai.AuthID(), SeqNo: seq}
	sig, err := k.Sign(g, req.Digest())
	if err != nil {
		t.Fatal(err)
	}
	m := sfsrpc.AuthMsg{UserKey: k.PublicKey.Bytes(), Req: req, Sig: *sig}
	return m.Marshal()
}

func TestValidateMapsKeyToCredentials(t *testing.T) {
	uk, _ := userKeys(t)
	s, db := newTestServer(t)
	register(t, s, db, "dm", 1000, uk, "")
	ai := makeAuthInfo(1)
	res := s.Validate(sfsrpc.ValidateArgs{AuthInfo: ai, SeqNo: 3, AuthMsg: signLogin(t, uk, ai, 3)})
	if !res.OK {
		t.Fatal("valid login rejected")
	}
	if res.Creds.User != "dm" || res.Creds.UID != 1000 {
		t.Fatalf("credentials %+v", res.Creds)
	}
	if res.SeqNo != 3 || res.AuthID != ai.AuthID() {
		t.Fatal("echoed AuthID/SeqNo wrong")
	}
}

func TestValidateUnknownKeyRejected(t *testing.T) {
	uk, ik := userKeys(t)
	s, db := newTestServer(t)
	register(t, s, db, "dm", 1000, uk, "")
	ai := makeAuthInfo(1)
	res := s.Validate(sfsrpc.ValidateArgs{AuthInfo: ai, SeqNo: 1, AuthMsg: signLogin(t, ik, ai, 1)})
	if res.OK {
		t.Fatal("unknown key accepted")
	}
}

func TestGuestCredentials(t *testing.T) {
	uk, ik := userKeys(t)
	s, db := newTestServer(t)
	register(t, s, db, "dm", 1000, uk, "")
	s.SetGuestCredentials(&sfsrpc.Credentials{User: "guest", UID: 32000, GIDs: []uint32{32000}})
	ai := makeAuthInfo(1)
	res := s.Validate(sfsrpc.ValidateArgs{AuthInfo: ai, SeqNo: 1, AuthMsg: signLogin(t, ik, ai, 1)})
	if !res.OK || res.Creds.User != "guest" {
		t.Fatalf("guest login: %+v", res)
	}
}

func TestValidateRejectsWrongSession(t *testing.T) {
	uk, _ := userKeys(t)
	s, db := newTestServer(t)
	register(t, s, db, "dm", 1000, uk, "")
	res := s.Validate(sfsrpc.ValidateArgs{
		AuthInfo: makeAuthInfo(2), SeqNo: 1, AuthMsg: signLogin(t, uk, makeAuthInfo(1), 1),
	})
	if res.OK {
		t.Fatal("cross-session replay accepted")
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	s, _ := newTestServer(t)
	res := s.Validate(sfsrpc.ValidateArgs{AuthInfo: makeAuthInfo(1), SeqNo: 1, AuthMsg: []byte("junk")})
	if res.OK {
		t.Fatal("garbage accepted")
	}
}

func TestDBPrecedence(t *testing.T) {
	uk, _ := userKeys(t)
	s, db := newTestServer(t)
	register(t, s, db, "dm", 1000, uk, "")
	// A second database with the same key but different creds: the
	// first database must win.
	db2 := NewDB("second", true)
	db2.Put(UserRecord{User: "dm2", UID: 2000, GIDs: []uint32{2000}, PublicKey: uk.PublicKey.Bytes()}) //nolint:errcheck
	s.AddDB(db2)
	ai := makeAuthInfo(1)
	res := s.Validate(sfsrpc.ValidateArgs{AuthInfo: ai, SeqNo: 1, AuthMsg: signLogin(t, uk, ai, 1)})
	if res.Creds.UID != 1000 {
		t.Fatalf("precedence broken: %+v", res.Creds)
	}
}

func TestReadOnlyDBRejectsWrites(t *testing.T) {
	db := NewDB("ro", false)
	if err := db.Put(UserRecord{User: "x"}); err != ErrReadOnly {
		t.Fatalf("got %v, want ErrReadOnly", err)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	uk, _ := userKeys(t)
	s, db := newTestServer(t)
	register(t, s, db, "dm", 1000, uk, "")
	err := s.Register(db, "dm", 1001, nil, RegisterOptions{PrivateKey: uk})
	if err != ErrUserExists {
		t.Fatalf("got %v, want ErrUserExists", err)
	}
}

func TestExportImportPublic(t *testing.T) {
	uk, _ := userKeys(t)
	s, db := newTestServer(t)
	register(t, s, db, "dm", 1000, uk, "secret password")
	data := db.ExportPublic()
	imported, err := ImportPublic(data)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := imported.ByKey(uk.PublicKey.Bytes())
	if !ok {
		t.Fatal("imported DB missing user")
	}
	if len(rec.SRPVerifier) > 0 || len(rec.EncPrivKey) > 0 || len(rec.SRPSalt) > 0 {
		t.Fatal("public export leaked password material")
	}
	// The imported database works for validation on another server.
	s2 := New("/sfs/other:xxxx", prng.NewSeeded([]byte("s2")))
	s2.AddDB(imported)
	ai := makeAuthInfo(9)
	res := s2.Validate(sfsrpc.ValidateArgs{AuthInfo: ai, SeqNo: 1, AuthMsg: signLogin(t, uk, ai, 1)})
	if !res.OK || res.Creds.UID != 1000 {
		t.Fatalf("imported DB validation: %+v", res)
	}
}

func TestSealOpenKey(t *testing.T) {
	uk, _ := userKeys(t)
	g := prng.NewSeeded([]byte("seal"))
	passKey := g.Bytes(20)
	sealed, err := SealKey(passKey, uk, g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenKey(passKey, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !got.PublicKey.Equal(&uk.PublicKey) {
		t.Fatal("unsealed key differs")
	}
	// Wrong key fails.
	wrong := g.Bytes(20)
	if _, err := OpenKey(wrong, sealed); err == nil {
		t.Fatal("wrong password key opened the seal")
	}
	// Tampering fails.
	sealed[len(sealed)/2] ^= 1
	if _, err := OpenKey(passKey, sealed); err == nil {
		t.Fatal("tampered seal opened")
	}
}

func dialKeyService(t *testing.T, s *Server) *sunrpc.Client {
	t.Helper()
	c1, c2 := net.Pipe()
	rpc := sunrpc.NewServer()
	rpc.Register(sfsrpc.KeyProgram, sfsrpc.Version, s.KeyServiceHandler())
	go rpc.ServeConn(c2) //nolint:errcheck
	cl := sunrpc.NewClient(c1)
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestFetchWithPassword(t *testing.T) {
	uk, _ := userKeys(t)
	s, db := newTestServer(t)
	register(t, s, db, "dm", 1000, uk, "red sox beat yankees")
	cl := dialKeyService(t, s)
	g := prng.NewSeeded([]byte("fetch"))
	res, err := FetchWithPassword(cl, "dm", "red sox beat yankees", g)
	if err != nil {
		t.Fatal(err)
	}
	if res.SelfPath != s.SelfPath() {
		t.Fatalf("self path %q", res.SelfPath)
	}
	if res.PrivateKey == nil || !res.PrivateKey.PublicKey.Equal(&uk.PublicKey) {
		t.Fatal("private key not recovered")
	}
}

func TestFetchWrongPassword(t *testing.T) {
	uk, _ := userKeys(t)
	s, db := newTestServer(t)
	register(t, s, db, "dm", 1000, uk, "right password")
	cl := dialKeyService(t, s)
	g := prng.NewSeeded([]byte("fetch-wrong"))
	if _, err := FetchWithPassword(cl, "dm", "wrong password", g); err == nil {
		t.Fatal("wrong password succeeded")
	}
}

func TestFetchUnknownUser(t *testing.T) {
	s, _ := newTestServer(t)
	cl := dialKeyService(t, s)
	g := prng.NewSeeded([]byte("fetch-nouser"))
	if _, err := FetchWithPassword(cl, "nobody", "pw", g); err != ErrNoUser {
		t.Fatalf("got %v, want ErrNoUser", err)
	}
}

func TestValidateHandlerOverRPC(t *testing.T) {
	uk, _ := userKeys(t)
	s, db := newTestServer(t)
	register(t, s, db, "dm", 1000, uk, "")
	c1, c2 := net.Pipe()
	rpc := sunrpc.NewServer()
	rpc.Register(sfsrpc.AuthProgram, sfsrpc.Version, s.ValidateHandler())
	go rpc.ServeConn(c2) //nolint:errcheck
	cl := sunrpc.NewClient(c1)
	defer cl.Close()
	ai := makeAuthInfo(1)
	var res sfsrpc.ValidateRes
	err := cl.Call(sfsrpc.AuthProgram, sfsrpc.Version, sfsrpc.ProcLogin, sunrpc.NoAuth(),
		sfsrpc.ValidateArgs{AuthInfo: ai, SeqNo: 4, AuthMsg: signLogin(t, uk, ai, 4)}, &res)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Creds.User != "dm" {
		t.Fatalf("RPC validate: %+v", res)
	}
}
