// Package authserv implements the SFS authentication server (paper
// §2.5): the per-server daemon that translates user-authentication
// requests into credentials and manages users' keys.
//
// authserv consults one or more databases mapping public keys to
// users. Databases are writable or read-only; read-only databases can
// be imported from other servers (a department can maintain all its
// users centrally and export the database to separately-administered
// file servers without trusting them). Every writable database has
// two halves:
//
//   - a public half — public keys and credentials, safe to export to
//     the world, containing nothing with which an attacker could
//     verify a guessed password; and
//   - a private half — SRP verifiers and encrypted private keys,
//     needed only by servers users authenticate *servers* against.
//
// Passwords are transformed with eksblowfish so that even an attacker
// holding the private half pays ~1 CPU-second per candidate password
// (paper §2.5.2).
package authserv

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/crypto/blowfish"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/crypto/srp"
	"repro/internal/sfsrpc"
	"repro/internal/xdr"
)

// Errors.
var (
	ErrNoUser     = errors.New("authserv: no such user")
	ErrUserExists = errors.New("authserv: user already registered")
	ErrReadOnly   = errors.New("authserv: database is read-only")
	ErrBadAuth    = errors.New("authserv: authentication failed")
)

// keyFP fingerprints a public key for indexing.
type keyFP [sha1.Size]byte

func fingerprint(pub []byte) keyFP { return sha1.Sum(pub) }

// UserRecord is one user's entry. Public fields are safe to export;
// the SRP verifier and encrypted private key form the private half.
type UserRecord struct {
	User      string
	UID       uint32
	GIDs      []uint32
	PublicKey []byte

	// Private half (password authentication, paper §2.4):
	SRPSalt     []byte
	SRPVerifier []byte
	EksSalt     []byte
	EksCost     uint32
	EncPrivKey  []byte
}

// publicHalf strips the fields an attacker could use for off-line
// guessing.
func (u *UserRecord) publicHalf() UserRecord {
	return UserRecord{User: u.User, UID: u.UID, GIDs: u.GIDs, PublicKey: u.PublicKey}
}

// DB is one key database.
type DB struct {
	name     string
	writable bool

	mu     sync.RWMutex
	byKey  map[keyFP]*UserRecord
	byName map[string]*UserRecord
}

// NewDB creates an empty database.
func NewDB(name string, writable bool) *DB {
	return &DB{
		name:     name,
		writable: writable,
		byKey:    make(map[keyFP]*UserRecord),
		byName:   make(map[string]*UserRecord),
	}
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// Put inserts or replaces a record.
func (db *DB) Put(rec UserRecord) error {
	if !db.writable {
		return ErrReadOnly
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.put(rec)
	return nil
}

func (db *DB) put(rec UserRecord) {
	if old, ok := db.byName[rec.User]; ok {
		delete(db.byKey, fingerprint(old.PublicKey))
	}
	r := rec
	db.byName[rec.User] = &r
	db.byKey[fingerprint(rec.PublicKey)] = &r
}

// ByKey looks a record up by public key.
func (db *DB) ByKey(pub []byte) (*UserRecord, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.byKey[fingerprint(pub)]
	if !ok {
		return nil, false
	}
	cp := *r
	return &cp, true
}

// ByName looks a record up by user name.
func (db *DB) ByName(user string) (*UserRecord, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.byName[user]
	if !ok {
		return nil, false
	}
	cp := *r
	return &cp, true
}

// exportRecords is the XDR container for database export.
type exportRecords struct {
	Name    string
	Records []UserRecord
}

// ExportPublic serializes the public half of the database: safe to
// serve to the world over SFS itself.
func (db *DB) ExportPublic() []byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := exportRecords{Name: db.name}
	names := make([]string, 0, len(db.byName))
	for n := range db.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.Records = append(out.Records, db.byName[n].publicHalf())
	}
	if out.Records == nil {
		out.Records = []UserRecord{}
	}
	return xdr.MustMarshal(out)
}

// Names returns the registered user names in sorted order.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.byName))
	for n := range db.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ExportFull serializes the complete database, private half included,
// for the authserver's own durable storage. Never export this off the
// server.
func (db *DB) ExportFull() []byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := exportRecords{Name: db.name}
	names := make([]string, 0, len(db.byName))
	for n := range db.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.Records = append(out.Records, *db.byName[n])
	}
	if out.Records == nil {
		out.Records = []UserRecord{}
	}
	return xdr.MustMarshal(out)
}

// ImportFull restores a database saved with ExportFull as a writable
// database.
func ImportFull(data []byte) (*DB, error) {
	var in exportRecords
	if err := xdr.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("authserv: bad database export: %w", err)
	}
	db := NewDB(in.Name, true)
	for _, rec := range in.Records {
		db.put(rec)
	}
	return db, nil
}

// ImportPublic builds a read-only database from an exported public
// half. authserv keeps such local copies and continues to function
// when the origin server is unreachable (paper §2.5.2).
func ImportPublic(data []byte) (*DB, error) {
	var in exportRecords
	if err := xdr.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("authserv: bad database export: %w", err)
	}
	db := NewDB(in.Name, false)
	for _, rec := range in.Records {
		if len(rec.SRPVerifier) > 0 || len(rec.EncPrivKey) > 0 {
			// A public export must not carry password
			// material; refuse rather than propagate it.
			return nil, errors.New("authserv: export contains private data")
		}
		db.put(rec)
	}
	return db, nil
}

// Server is the authserver: an ordered list of databases plus the
// self-certifying pathname it hands to password clients.
type Server struct {
	met serverMetrics

	mu         sync.RWMutex
	dbs        []*DB
	selfPath   string // the file server's self-certifying pathname
	rng        *prng.Generator
	guestCreds *sfsrpc.Credentials
}

// New creates an authserver whose SRP clients will be told the file
// server lives at selfPath.
func New(selfPath string, rng *prng.Generator) *Server {
	if rng == nil {
		rng = prng.New()
	}
	return &Server{selfPath: selfPath, rng: rng}
}

// AddDB appends a database; earlier databases take precedence.
func (s *Server) AddDB(db *DB) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dbs = append(s.dbs, db)
}

// SetGuestCredentials configures the credentials handed to valid
// logins whose key is found in no database. Nil (the default)
// rejects such logins.
func (s *Server) SetGuestCredentials(c *sfsrpc.Credentials) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.guestCreds = c
}

// SelfPath returns the file server's self-certifying pathname.
func (s *Server) SelfPath() string { return s.selfPath }

// lookupKey searches databases in order.
func (s *Server) lookupKey(pub []byte) (*UserRecord, bool) {
	s.mu.RLock()
	dbs := s.dbs
	s.mu.RUnlock()
	for _, db := range dbs {
		if r, ok := db.ByKey(pub); ok {
			return r, true
		}
	}
	return nil, false
}

// lookupName searches databases in order.
func (s *Server) lookupName(user string) (*UserRecord, *DB, bool) {
	s.mu.RLock()
	dbs := s.dbs
	s.mu.RUnlock()
	for _, db := range dbs {
		if r, ok := db.ByName(user); ok {
			return r, db, true
		}
	}
	return nil, nil, false
}

// Validate checks an authentication request against the databases and
// returns credentials (paper §3.1.2): verify the signature, check the
// signed AuthID, then map the public key to credentials.
func (s *Server) Validate(args sfsrpc.ValidateArgs) sfsrpc.ValidateRes {
	s.met.attempts.Inc()
	msg, err := sfsrpc.ParseAuthMsg(args.AuthMsg)
	if err != nil {
		s.met.failures.Inc()
		return sfsrpc.ValidateRes{}
	}
	pub, err := msg.Verify(args.AuthInfo, args.SeqNo)
	if err != nil {
		s.met.failures.Inc()
		return sfsrpc.ValidateRes{}
	}
	rec, ok := s.lookupKey(pub.Bytes())
	if !ok {
		s.mu.RLock()
		guest := s.guestCreds
		s.mu.RUnlock()
		if guest == nil {
			s.met.failures.Inc()
			return sfsrpc.ValidateRes{}
		}
		s.met.okGuest.Inc()
		return sfsrpc.ValidateRes{OK: true, Creds: *guest, AuthID: msg.Req.AuthID, SeqNo: msg.Req.SeqNo}
	}
	s.met.okUser.Inc()
	return sfsrpc.ValidateRes{
		OK:     true,
		Creds:  sfsrpc.Credentials{User: rec.User, UID: rec.UID, GIDs: rec.GIDs},
		AuthID: msg.Req.AuthID,
		SeqNo:  msg.Req.SeqNo,
	}
}

// NameOfID returns the user (or group) name behind a numeric ID, for
// the libsfs ID-mapping service (paper §3.3). Groups share the user
// namespace in this reproduction (each user's primary group carries
// the user's name). Empty when unknown.
func (s *Server) NameOfID(id uint32, group bool) string {
	s.mu.RLock()
	dbs := s.dbs
	s.mu.RUnlock()
	for _, db := range dbs {
		db.mu.RLock()
		for _, rec := range db.byName {
			if !group && rec.UID == id {
				name := rec.User
				db.mu.RUnlock()
				return name
			}
			if group {
				for _, g := range rec.GIDs {
					if g == id {
						name := rec.User
						db.mu.RUnlock()
						return name
					}
				}
			}
		}
		db.mu.RUnlock()
	}
	return ""
}

// RegisterOptions controls Register.
type RegisterOptions struct {
	// Password enables SRP password authentication and, when
	// PrivateKey is also set, stores an encrypted copy of the
	// private key retrievable with the password (paper §2.4).
	Password string
	// PrivateKey is the user's key pair; its public half is always
	// stored. The private half is stored only encrypted, and only
	// when Password is set.
	PrivateKey *rabin.PrivateKey
	// EksCost overrides the eksblowfish work factor (0 = default).
	EksCost uint
}

// Register adds a user to db with the given Unix credentials.
func (s *Server) Register(db *DB, user string, uid uint32, gids []uint32, opts RegisterOptions) error {
	if opts.PrivateKey == nil {
		return errors.New("authserv: registration requires a key pair")
	}
	if _, ok := db.ByName(user); ok {
		return ErrUserExists
	}
	if gids == nil {
		gids = []uint32{}
	}
	rec := UserRecord{
		User: user, UID: uid, GIDs: gids,
		PublicKey: opts.PrivateKey.PublicKey.Bytes(),
	}
	if opts.Password != "" {
		cost := opts.EksCost
		if cost == 0 {
			cost = blowfish.DefaultCost
		}
		rec.EksCost = uint32(cost)
		rec.EksSalt = s.rng.Bytes(16)
		secret, err := blowfish.PasswordHash(cost, rec.EksSalt, []byte(opts.Password))
		if err != nil {
			return err
		}
		rec.SRPSalt = s.rng.Bytes(16)
		rec.SRPVerifier = srp.Verifier(rec.SRPSalt, secret)
		passKey, err := blowfish.PasswordKey(cost, rec.EksSalt, []byte(opts.Password))
		if err != nil {
			return err
		}
		sealed, err := SealKey(passKey, opts.PrivateKey, s.rng)
		if err != nil {
			return err
		}
		rec.EncPrivKey = sealed
	}
	return db.Put(rec)
}
