package authserv

import (
	"errors"

	"repro/internal/crypto/arc4"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/crypto/sha1mac"
	"repro/internal/xdr"
)

// sealedKey is the stored form of an encrypted private key.
type sealedKey struct {
	Nonce  []byte // freshens the stream per sealing
	Cipher []byte
	MAC    []byte
}

// SealBytes encrypts-and-MACs plain under a 20-byte key: an ARC4
// stream keyed by key||nonce provides the MAC key (32 bytes) and the
// encryption keystream.
func SealBytes(key, plain []byte, rng *prng.Generator) ([]byte, error) {
	nonce := rng.Bytes(16)
	stream, err := arc4.New(append(append([]byte{}, key...), nonce...))
	if err != nil {
		return nil, err
	}
	macKey := stream.KeyStream(sha1mac.KeySize)
	mac := sha1mac.Sum(macKey, plain)
	ct := make([]byte, len(plain))
	stream.XORKeyStream(ct, plain)
	return xdr.MustMarshal(sealedKey{Nonce: nonce, Cipher: ct, MAC: mac[:]}), nil
}

// OpenBytes inverts SealBytes, failing cleanly on a wrong key or
// tampered ciphertext.
func OpenBytes(key, sealed []byte) ([]byte, error) {
	var sk sealedKey
	if err := xdr.Unmarshal(sealed, &sk); err != nil {
		return nil, errors.New("authserv: bad sealed encoding")
	}
	stream, err := arc4.New(append(append([]byte{}, key...), sk.Nonce...))
	if err != nil {
		return nil, err
	}
	macKey := stream.KeyStream(sha1mac.KeySize)
	plain := make([]byte, len(sk.Cipher))
	stream.XORKeyStream(plain, sk.Cipher)
	if !sha1mac.Verify(macKey, plain, sk.MAC) {
		return nil, ErrBadAuth
	}
	return plain, nil
}

// SealKey encrypts a private key under a 20-byte password-derived key
// (blowfish.PasswordKey). The server stores only this sealed form;
// decrypting it requires the expensive password transformation, so the
// password never becomes server-verifiable data beyond the SRP
// verifier.
func SealKey(passKey []byte, priv *rabin.PrivateKey, rng *prng.Generator) ([]byte, error) {
	return SealBytes(passKey, priv.PrivateBytes(), rng)
}

// OpenKey decrypts a sealed private key; it fails cleanly on a wrong
// password key or tampered ciphertext.
func OpenKey(passKey, sealed []byte) (*rabin.PrivateKey, error) {
	plain, err := OpenBytes(passKey, sealed)
	if err != nil {
		return nil, err
	}
	return rabin.ParsePrivateKey(plain)
}
