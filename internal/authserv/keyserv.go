package authserv

import (
	"errors"

	"repro/internal/crypto/blowfish"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/crypto/srp"
	"repro/internal/sfsrpc"
	"repro/internal/sunrpc"
	"repro/internal/xdr"
)

// Key service procedures (sfsrpc.KeyProgram). The service runs over a
// secure channel to the server, but the channel alone proves nothing
// about the server to a first-time user — SRP does that, letting a
// user with only a password securely download the server's
// self-certifying pathname and an encrypted copy of her private key
// (paper §2.4).
const (
	ProcSRPInit    = 1
	ProcSRPConfirm = 2
)

// Status codes for the key service.
const (
	keyOK     = 0
	keyNoUser = 1
	keyDenied = 2
)

type srpInitArgs struct {
	User string
	A    []byte
}

type srpInitRes struct {
	Status  uint32
	SRPSalt []byte
	EksSalt []byte
	EksCost uint32
	B       []byte
}

type srpConfirmArgs struct {
	M1 []byte
}

type srpConfirmRes struct {
	Status uint32
	M2     []byte
	// Sealed is the bundle below, sealed under the SRP session key.
	Sealed []byte
}

// srpBundle is what a password login downloads.
type srpBundle struct {
	SelfPath   string // the file server's self-certifying pathname
	EncPrivKey []byte // user's private key, still password-encrypted
}

// KeyServiceHandler returns a per-connection RPC handler for the key
// service. Each connection runs at most one SRP exchange; a fresh
// handler must be installed per accepted connection.
func (s *Server) KeyServiceHandler() sunrpc.Handler {
	var state *srp.Server
	var user *UserRecord
	return func(proc uint32, _ sunrpc.OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
		switch proc {
		case ProcSRPInit:
			var a srpInitArgs
			if err := args.Decode(&a); err != nil {
				return nil, sunrpc.ErrGarbageArgs
			}
			s.met.srpInits.Inc()
			rec, _, ok := s.lookupName(a.User)
			if !ok || rec.SRPVerifier == nil {
				s.met.srpFails.Inc()
				// Deliberately indistinguishable timing would
				// require a dummy exchange; we return a
				// distinct status, as real SFS logs and rate-
				// limits on-line guessing instead (§2.4 fn 3).
				return srpInitRes{Status: keyNoUser, SRPSalt: []byte{}, EksSalt: []byte{}, B: []byte{}}, nil
			}
			srv, b, err := srp.NewServer(s.rng, rec.SRPVerifier, a.A)
			if err != nil {
				s.met.srpFails.Inc()
				return srpInitRes{Status: keyDenied, SRPSalt: []byte{}, EksSalt: []byte{}, B: []byte{}}, nil
			}
			state, user = srv, rec
			return srpInitRes{
				Status: keyOK, SRPSalt: rec.SRPSalt,
				EksSalt: rec.EksSalt, EksCost: rec.EksCost, B: b,
			}, nil
		case ProcSRPConfirm:
			var a srpConfirmArgs
			if err := args.Decode(&a); err != nil {
				return nil, sunrpc.ErrGarbageArgs
			}
			if state == nil {
				s.met.srpFails.Inc()
				return srpConfirmRes{Status: keyDenied, M2: []byte{}, Sealed: []byte{}}, nil
			}
			m2, key, err := state.Confirm(a.M1)
			state = nil
			if err != nil {
				s.met.srpFails.Inc()
				return srpConfirmRes{Status: keyDenied, M2: []byte{}, Sealed: []byte{}}, nil
			}
			enc := user.EncPrivKey
			if enc == nil {
				enc = []byte{}
			}
			bundle := xdr.MustMarshal(srpBundle{SelfPath: s.selfPath, EncPrivKey: enc})
			sealed, err := SealBytes(key, bundle, s.rng)
			if err != nil {
				s.met.srpFails.Inc()
				return srpConfirmRes{Status: keyDenied, M2: []byte{}, Sealed: []byte{}}, nil
			}
			s.met.srpConfirms.Inc()
			return srpConfirmRes{Status: keyOK, M2: m2, Sealed: sealed}, nil
		default:
			return nil, sunrpc.ErrProcUnavail
		}
	}
}

// ValidateHandler returns the RPC handler the file server calls to
// validate login requests (server↔authserver RPC, Figure 4 steps 4-5).
func (s *Server) ValidateHandler() sunrpc.Handler {
	return func(proc uint32, _ sunrpc.OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
		if proc != sfsrpc.ProcLogin {
			return nil, sunrpc.ErrProcUnavail
		}
		var a sfsrpc.ValidateArgs
		if err := args.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		return s.Validate(a), nil
	}
}

// FetchResult is what FetchWithPassword returns: everything a user
// needs to reach their files from anywhere given only a password.
type FetchResult struct {
	// SelfPath is the server's self-certifying pathname, downloaded
	// over the SRP-authenticated exchange.
	SelfPath string
	// PrivateKey is the user's key pair, decrypted locally with the
	// password. Nil if the user registered none.
	PrivateKey *rabin.PrivateKey
}

// FetchWithPassword performs the sfskey client side of the SRP
// exchange over an established RPC connection: negotiate a strong
// session key from the weak password, download the self-certifying
// pathname and encrypted private key, and decrypt the key locally.
// The server never sees password-equivalent data.
func FetchWithPassword(cl *sunrpc.Client, user, password string, rng *prng.Generator) (*FetchResult, error) {
	sc, a, err := srp.NewClient(rng, nil)
	if err != nil {
		return nil, err
	}
	var initRes srpInitRes
	if err := cl.Call(sfsrpc.KeyProgram, sfsrpc.Version, ProcSRPInit, sunrpc.NoAuth(),
		srpInitArgs{User: user, A: a}, &initRes); err != nil {
		return nil, err
	}
	if initRes.Status != keyOK {
		return nil, ErrNoUser
	}
	secret, err := blowfish.PasswordHash(uint(initRes.EksCost), initRes.EksSalt, []byte(password))
	if err != nil {
		return nil, err
	}
	sc.SetSecret(secret)
	m1, err := sc.React(initRes.SRPSalt, initRes.B)
	if err != nil {
		return nil, err
	}
	var confRes srpConfirmRes
	if err := cl.Call(sfsrpc.KeyProgram, sfsrpc.Version, ProcSRPConfirm, sunrpc.NoAuth(),
		srpConfirmArgs{M1: m1}, &confRes); err != nil {
		return nil, err
	}
	if confRes.Status != keyOK {
		return nil, ErrBadAuth
	}
	key, err := sc.Finish(confRes.M2)
	if err != nil {
		return nil, err
	}
	plain, err := OpenBytes(key, confRes.Sealed)
	if err != nil {
		return nil, err
	}
	var bundle srpBundle
	if err := xdr.Unmarshal(plain, &bundle); err != nil {
		return nil, errors.New("authserv: bad bundle from server")
	}
	res := &FetchResult{SelfPath: bundle.SelfPath}
	if len(bundle.EncPrivKey) > 0 {
		passKey, err := blowfish.PasswordKey(uint(initRes.EksCost), initRes.EksSalt, []byte(password))
		if err != nil {
			return nil, err
		}
		priv, err := OpenKey(passKey, bundle.EncPrivKey)
		if err != nil {
			return nil, err
		}
		res.PrivateKey = priv
	}
	return res, nil
}
