package client_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/client"
	"repro/internal/crypto/prng"
	"repro/internal/lab"
	"repro/internal/nfs"
	"repro/internal/vfs"
)

func TestSymlinkLoopBounded(t *testing.T) {
	_, s, cl := newWorld(t, "loop")
	cl.RegisterAgent("u", agent.New("u", nil))
	// Two absolute symlinks pointing at each other across the same
	// mount: resolution must stop with ErrLoopLimit, not hang.
	base := s.Path.String()
	if err := s.FS.SymlinkAt(rootCred(), "a", base+"/b"); err != nil {
		t.Fatal(err)
	}
	if err := s.FS.SymlinkAt(rootCred(), "b", base+"/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFile("u", base+"/a"); !errors.Is(err, client.ErrLoopLimit) {
		t.Fatalf("got %v, want ErrLoopLimit", err)
	}
}

func TestAgentLinkLoopBounded(t *testing.T) {
	_, _, cl := newWorld(t, "agentloop")
	a := agent.New("u", nil)
	cl.RegisterAgent("u", a)
	a.Symlink("x", "/sfs/y")
	a.Symlink("y", "/sfs/x")
	if _, err := cl.ReadFile("u", "/sfs/x"); !errors.Is(err, client.ErrLoopLimit) {
		t.Fatalf("got %v, want ErrLoopLimit", err)
	}
}

func TestAccessAPI(t *testing.T) {
	w, s, cl := newWorld(t, "access")
	if _, err := w.NewUser(cl, s, "u", 1000, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.FS.WriteFile(rootCred(), "f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Access("u", s.Path.String()+"/f", nfs.AccessRead|nfs.AccessModify)
	if err != nil {
		t.Fatal(err)
	}
	if got&nfs.AccessRead == 0 {
		t.Fatal("read access not granted on 0644 file")
	}
	if got&nfs.AccessModify != 0 {
		t.Fatal("write access granted to non-owner")
	}
}

func TestLstatVsStat(t *testing.T) {
	_, s, cl := newWorld(t, "lstat")
	cl.RegisterAgent("u", agent.New("u", nil))
	if err := s.FS.WriteFile(rootCred(), "real", []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.FS.SymlinkAt(rootCred(), "alias", "real"); err != nil {
		t.Fatal(err)
	}
	base := s.Path.String()
	st, err := cl.Stat("u", base+"/alias")
	if err != nil || st.Type != nfs.TypeReg {
		t.Fatalf("Stat through link: %+v %v", st, err)
	}
	lst, err := cl.Lstat("u", base+"/alias")
	if err != nil || lst.Type != nfs.TypeSymlink {
		t.Fatalf("Lstat of link: %+v %v", lst, err)
	}
	target, err := cl.ReadLink("u", base+"/alias")
	if err != nil || target != "real" {
		t.Fatalf("ReadLink: %q %v", target, err)
	}
}

func TestChmodTruncate(t *testing.T) {
	w, s, cl := newWorld(t, "chmod")
	if _, err := w.NewUser(cl, s, "root", 0, ""); err != nil {
		t.Fatal(err)
	}
	base := s.Path.String()
	if err := cl.WriteFile("root", base+"/f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Chmod("root", base+"/f", 0o600); err != nil {
		t.Fatal(err)
	}
	st, _ := cl.Stat("root", base+"/f")
	if st.Mode != 0o600 {
		t.Fatalf("mode %o", st.Mode)
	}
	if err := cl.Truncate("root", base+"/f", 4); err != nil {
		t.Fatal(err)
	}
	data, _ := cl.ReadFile("root", base+"/f")
	if string(data) != "0123" {
		t.Fatalf("truncated data %q", data)
	}
}

func TestTempKeyRotation(t *testing.T) {
	// A client with a tiny TempKeyLife must rotate the short-lived
	// key between mounts and still work.
	w, err := lab.NewWorld("rotate")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s, err := w.ServeFS("rot.example.com", 30000)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := w.ServeFS("rot2.example.com", 30000)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.New(client.Config{
		Dial:            w.Dial,
		RNG:             prng.NewSeeded([]byte("rotate-client")),
		TempKeyBits:     lab.KeyBits,
		TempKeyLife:     time.Millisecond, // rotate on every connect
		EnhancedCaching: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.RegisterAgent("u", agent.New("u", nil))
	if err := s.FS.WriteFile(vfs.Cred{UID: 0}, "f", []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s2.FS.WriteFile(vfs.Cred{UID: 0}, "f", []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFile("u", s.Path.String()+"/f"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := cl.ReadFile("u", s2.Path.String()+"/f"); err != nil {
		t.Fatal(err)
	}
}

func TestRemountAfterConnectionDrop(t *testing.T) {
	_, s, cl := newWorld(t, "redial")
	cl.RegisterAgent("u", agent.New("u", nil))
	if err := s.FS.WriteFile(rootCred(), "f", []byte("persist"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := s.Path.String()
	if _, err := cl.ReadFile("u", base+"/f"); err != nil {
		t.Fatal(err)
	}
	// Kill the world's listeners and bring up a fresh one at the
	// same registry entry: the client should reconnect on demand
	// after the old connection fails. We approximate by simply
	// verifying repeated access keeps working over the live mount.
	for i := 0; i < 3; i++ {
		if _, err := cl.ReadFile("u", base+"/f"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrossServerRenameRefused(t *testing.T) {
	w, s1, cl := newWorld(t, "xrename")
	s2, err := w.ServeFS("second.example.com", 30000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.NewUser(cl, s1, "root", 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteFile("root", s1.Path.String()+"/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	err = cl.Rename("root", s1.Path.String()+"/f", s2.Path.String()+"/f")
	if err == nil {
		t.Fatal("cross-server rename succeeded")
	}
}
