package client

import (
	"errors"
	"io"
	"testing"

	"repro/internal/nfs"
)

// zeroWriteView acknowledges every write with zero bytes and no error
// — the degenerate server behaviour that used to spin the serial write
// loop forever.
type zeroWriteView struct{ View }

func (zeroWriteView) Write(nfs.FH, uint64, []byte, uint32) (uint32, error) {
	return 0, nil
}

func TestWriteAtZeroProgress(t *testing.T) {
	f := &File{node: &node{view: zeroWriteView{}, fh: nfs.FH{1}}}
	n, err := f.WriteAt(make([]byte, 100), 0)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
	if n != 0 {
		t.Fatalf("n = %d, want 0", n)
	}
}
