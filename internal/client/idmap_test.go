package client_test

import (
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/crypto/prng"
	"repro/internal/lab"
	"repro/internal/vfs"
)

// TestUserNameMapping exercises the libsfs ID-mapping convention
// (paper §3.3): remote names are prefixed with "%", unless client and
// server agree on the ID.
func TestUserNameMapping(t *testing.T) {
	w, err := lab.NewWorld("idmap")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	s, err := w.ServeFS("idmap.example.com", 30000)
	if err != nil {
		t.Fatal(err)
	}
	// Client A: no local idea of uid 1000 → "%dm".
	clA, err := w.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "idmap-a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.NewUser(clA, s, "dm", 1000, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.FS.WriteFile(vfs.Cred{UID: 1000, GIDs: []uint32{1000}}, "f", []byte("x"), 0o644); err != nil {
		// Root creates parent dirs; create directly under root as uid 1000
		// requires write permission — fall back to root-created file chowned.
		if err := s.FS.WriteFile(vfs.Cred{UID: 0}, "f", []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		id, _, _ := s.FS.Resolve(vfs.Cred{UID: 0}, "f")
		uid := uint32(1000)
		if _, err := s.FS.SetAttrs(vfs.Cred{UID: 0}, id, vfs.SetAttr{UID: &uid}); err != nil {
			t.Fatal(err)
		}
	}
	path := s.Path.String() + "/f"
	attr, err := clA.Stat("dm", path)
	if err != nil {
		t.Fatal(err)
	}
	name, err := clA.UserName("dm", path, attr.UID)
	if err != nil {
		t.Fatal(err)
	}
	if name != "%dm" {
		t.Fatalf("unmatched client got %q, want %%dm", name)
	}

	// Client B: same LAN convention — local table agrees → "dm".
	clB, err := client.New(client.Config{
		Dial:            w.Dial,
		RNG:             prng.NewSeeded([]byte("idmap-b")),
		TempKeyBits:     lab.KeyBits,
		EnhancedCaching: true,
		LocalUsers:      map[uint32]string{1000: "dm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.NewAnonymousUser(clB, "dm")
	name, err = clB.UserName("dm", path, attr.UID)
	if err != nil {
		t.Fatal(err)
	}
	if name != "dm" {
		t.Fatalf("matched client got %q, want dm", name)
	}

	// Unknown IDs come back numeric.
	name, err = clA.UserName("dm", path, 4242)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(name, "4242") {
		t.Fatalf("unknown uid mapped to %q", name)
	}
}
