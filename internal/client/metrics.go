package client

// Client-side I/O pipeline observability: how well the read-ahead
// window is hiding latency, how full the write-behind coalescing
// chunks run, and how much dirty data had to be retransmitted after a
// server reboot changed the write verifier. One ioStats belongs to
// one Client and is shared by every mount and open File; all hot-path
// updates are single atomic operations.

import "repro/internal/stats"

type ioStats struct {
	// Read-ahead pipeline.
	raHits   stats.Counter // reads served by an already-issued READ future
	raMisses stats.Counter // serial fallbacks + pipeline startups
	raChunks stats.Counter // speculative READs issued

	// Write-behind pipeline.
	wbChunks    stats.Counter   // unstable WRITE chunks issued
	wbBytes     stats.Counter   // payload bytes across those chunks
	wbWindowOcc stats.Histogram // window length after each issue
	retransOps  stats.Counter   // dirty ranges re-sent after verifier change
	retransB    stats.Counter   // bytes across those ranges
	syncSmall   stats.Counter   // Syncs satisfied by one FILE_SYNC WRITE (no COMMIT)
}

// discardIO sinks updates from Files whose node carries no mount
// (never the case for Files made by Open/Create, but cheap to guard).
var discardIO ioStats

func (f *File) stats() *ioStats {
	if f.node.mount == nil || f.node.mount.io == nil {
		return &discardIO
	}
	return f.node.mount.io
}

// IOStats is the JSON form of a client's pipeline counters.
// ChunkFillRatio is WriteBehindBytes over the capacity of the issued
// chunks (chunks × 8 KB): 1.0 means every chunk left full, the
// coalescing buffer doing its job.
type IOStats struct {
	ReadAheadHits   uint64 `json:"readahead_hits"`
	ReadAheadMisses uint64 `json:"readahead_misses"`
	ReadAheadChunks uint64 `json:"readahead_chunks_issued"`

	WriteBehindChunks  uint64             `json:"writebehind_chunks"`
	WriteBehindBytes   uint64             `json:"writebehind_bytes"`
	ChunkFillRatio     float64            `json:"chunk_fill_ratio"`
	WindowOccupancy    stats.HistSnapshot `json:"window_occupancy"`
	RetransmittedOps   uint64             `json:"retransmitted_ops"`
	RetransmittedBytes uint64             `json:"retransmitted_bytes"`
	SyncSmallWrites    uint64             `json:"sync_small_writes"`
}

// IOStats captures the client's pipeline counters.
func (c *Client) IOStats() IOStats {
	m := &c.io
	st := IOStats{
		ReadAheadHits:      m.raHits.Load(),
		ReadAheadMisses:    m.raMisses.Load(),
		ReadAheadChunks:    m.raChunks.Load(),
		WriteBehindChunks:  m.wbChunks.Load(),
		WriteBehindBytes:   m.wbBytes.Load(),
		WindowOccupancy:    m.wbWindowOcc.Snapshot(),
		RetransmittedOps:   m.retransOps.Load(),
		RetransmittedBytes: m.retransB.Load(),
		SyncSmallWrites:    m.syncSmall.Load(),
	}
	if st.WriteBehindChunks > 0 {
		st.ChunkFillRatio = float64(st.WriteBehindBytes) / float64(st.WriteBehindChunks*wireChunk)
	}
	return st
}

// MountStats is one mounted file system's connection-wide RPC/cache
// counters, labeled by its self-certifying root.
type MountStats struct {
	Path     string `json:"path"`
	ReadOnly bool   `json:"read_only,omitempty"`
	Calls    uint64 `json:"calls"`
	AttrHits uint64 `json:"attr_hits"`
	AccHits  uint64 `json:"access_hits"`
	Invals   uint64 `json:"invalidations"`
	// Data block cache (PR 5): hits avoided a READ RPC entirely;
	// bytes_cached is the current occupancy; singleflight_shared
	// counts cold reads that rode another reader's RPC.
	DataHits           uint64 `json:"data_hits"`
	DataMisses         uint64 `json:"data_misses"`
	DataBytesCached    uint64 `json:"data_bytes_cached"`
	DataEvictions      uint64 `json:"data_evictions"`
	SingleFlightShared uint64 `json:"singleflight_shared"`
	CacheLocks         uint64 `json:"cache_locks"`
	CacheContended     uint64 `json:"cache_contended"`
	// Stages is the client-observed per-stage latency breakdown of
	// this mount's RPCs (present only when tracing is enabled).
	Stages *stats.StageSetSnapshot `json:"stages,omitempty"`
}

// mountStats snapshots every live mount's counters.
func (c *Client) mountStats() []MountStats {
	c.mu.Lock()
	mounts := make([]*mount, 0, len(c.mounts))
	for _, m := range c.mounts {
		mounts = append(mounts, m)
	}
	c.mu.Unlock()
	out := make([]MountStats, 0, len(mounts))
	for _, m := range mounts {
		var st MountStats
		st.Path = m.path.String()
		var ns View
		if m.ro != nil {
			st.ReadOnly = true
			ns = m.ro
		} else {
			ns = m.base
		}
		s := ns.Stats()
		st.Calls, st.AttrHits, st.AccHits, st.Invals = s.Calls, s.AttrHits, s.AccessHits, s.Invals
		st.DataHits, st.DataMisses, st.DataBytesCached = s.DataHits, s.DataMisses, s.DataBytesCached
		st.DataEvictions, st.SingleFlightShared = s.Evictions, s.SingleFlightShared
		st.CacheLocks, st.CacheContended = s.CacheLocks, s.CacheContended
		if m.base != nil {
			st.Stages = m.base.StageSnapshot()
		}
		out = append(out, st)
	}
	return out
}

// TotalRPCs sums the RPCs sent across every live mount — what the
// sfscd shell's -v mode diffs around each command to report "N RPCs".
func (c *Client) TotalRPCs() uint64 {
	var n uint64
	for _, m := range c.mountStats() {
		n += m.Calls
	}
	return n
}

// Snapshot is the sfscd "stats" command / -stats endpoint view of the
// client: pipeline counters plus per-mount RPC and cache totals.
type Snapshot struct {
	IO     IOStats      `json:"io"`
	Mounts []MountStats `json:"mounts,omitempty"`
	// WireCopy is the process-wide zero-copy wire path accounting
	// (DESIGN.md §12): on the client it mostly reflects borrowed WRITE
	// args on the way out and borrowed READ reply data on the way in.
	WireCopy stats.WireCopyStats `json:"wire_copy"`
}

// StatsSnapshot captures the whole client.
func (c *Client) StatsSnapshot() Snapshot {
	return Snapshot{IO: c.IOStats(), Mounts: c.mountStats(), WireCopy: stats.WireCopySnapshot()}
}
