// Package client implements the SFS client (sfscd, paper §2.3, §3.3):
// the daemon that automounts remote file systems under /sfs, sets up
// secure channels, authenticates users through their agents, and
// relays file system operations.
//
// The client is stripped of any notion of administrative realm: it has
// no site-specific configuration. When a user references a
// self-certifying pathname under /sfs, the client contacts the named
// Location, verifies that the server's public key hashes to the
// pathname's HostID, and transparently mounts the file system there.
// Names that are not self-certifying are handed to the user's agent,
// which may resolve them through dynamic symbolic links and
// certification paths. Each user's agent also vets every new HostID
// against revocation certificates and blocks.
package client

import (
	"errors"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/nfs"
	"repro/internal/secchan"
	"repro/internal/sfsro"
	"repro/internal/sfsrpc"
	"repro/internal/stats"
	"repro/internal/sunrpc"
)

// Dialer opens a transport to the server at an SFS Location.
type Dialer func(location string) (net.Conn, error)

// Errors.
var (
	ErrNoAgent   = errors.New("client: user has no agent")
	ErrNotSFS    = errors.New("client: path is not under /sfs")
	ErrNotFound  = errors.New("client: file not found")
	ErrLoopLimit = errors.New("client: too many levels of symbolic links")
)

// Config tunes a client.
type Config struct {
	// Dial connects to servers; required.
	Dial Dialer
	// RNG; nil uses an environment-seeded generator.
	RNG *prng.Generator
	// TempKeyBits sizes the short-lived key used for forward
	// secrecy (default 768).
	TempKeyBits int
	// TempKeyLife bounds how long one short-lived key is used
	// before regeneration (default 1 hour, as in the paper).
	TempKeyLife time.Duration
	// EnhancedCaching enables the SFS attribute/access caching
	// extensions (default on; benchmarks disable it to reproduce
	// the paper's ablation).
	EnhancedCaching bool
	// AttrTimeout is the fallback attribute TTL when enhanced
	// caching is off (plain NFS-style); zero disables caching.
	AttrTimeout time.Duration
	// ReadAhead is the depth of the sequential-read pipeline: how
	// many READ RPCs stay in flight on one channel. Zero selects
	// nfs.DefaultReadAhead; negative disables pipelining.
	ReadAhead int
	// WriteBehind is the depth of the write-behind pipeline: how
	// many unstable WRITE RPCs stay in flight per open file. Zero
	// selects nfs.DefaultWriteBehind; negative disables write-behind
	// (every WriteAt waits for its WRITE reply, as before).
	WriteBehind int
	// DataCacheBytes bounds each mount's lease-coherent data block
	// cache (shared by all users of the mount, served per principal).
	// Zero selects nfs.DefaultDataCacheBytes; negative disables data
	// caching.
	DataCacheBytes int64
	// ReadDirPage is the number of directory entries requested per
	// READDIR page. Zero selects 256.
	ReadDirPage int
	// LocalUsers is the client machine's own uid→name table, used
	// by the libsfs "%name" convention: when client and server
	// agree on an ID's name, the percent prefix is dropped.
	LocalUsers map[uint32]string
	// TraceSpans, when > 0, enables per-RPC stage tracing on every
	// mount with a span ring of that capacity.
	TraceSpans int
	// TraceSlow emits a one-line stage waterfall through TraceLogf for
	// every traced RPC slower than this. Zero disables the slow log.
	TraceSlow time.Duration
	// TraceLogf receives slow-span log lines; nil falls back to the
	// standard logger.
	TraceLogf func(format string, args ...interface{})
}

// mount is one automounted remote file system: read-write over a
// secure channel, or read-only over the self-certifying sfsro dialect.
type mount struct {
	path core.Path // root (Rest == "")
	base *nfs.Client
	info *secchan.Info
	root nfs.FH
	// ro is set for read-only mounts; base/info are then nil and
	// every user shares the one verified view.
	ro *roView

	// io points at the owning Client's pipeline counters, so Files
	// opened through this mount can update them without holding a
	// Client reference.
	io *ioStats

	mu    sync.Mutex
	seq   uint32
	users map[string]*nfs.Client // per-user authenticated views
}

// Client is the SFS client daemon.
type Client struct {
	cfg Config
	rng *prng.Generator

	keyMu      sync.Mutex
	tempKey    *rabin.PrivateKey
	tempKeyAge time.Time

	io ioStats // pipeline counters shared by every mount

	mu       sync.Mutex
	agents   map[string]*agent.Agent
	mounts   map[core.HostID]*mount
	accessed map[string]map[string]bool // user -> referenced /sfs names
	// tickets holds the latest resumption ticket per server, so a
	// reconnect (the mount was dropped when its connection died) skips
	// the Rabin handshake when the server still remembers the session.
	tickets map[core.HostID]*secchan.ResumeTicket
}

// New creates a client.
func New(cfg Config) (*Client, error) {
	if cfg.Dial == nil {
		return nil, errors.New("client: Config.Dial is required")
	}
	if cfg.RNG == nil {
		cfg.RNG = prng.New()
	}
	if cfg.TempKeyBits == 0 {
		cfg.TempKeyBits = 768
	}
	if cfg.TempKeyLife == 0 {
		cfg.TempKeyLife = time.Hour
	}
	c := &Client{
		cfg:      cfg,
		rng:      cfg.RNG,
		agents:   make(map[string]*agent.Agent),
		mounts:   make(map[core.HostID]*mount),
		accessed: make(map[string]map[string]bool),
		tickets:  make(map[core.HostID]*secchan.ResumeTicket),
	}
	if err := c.rotateTempKey(); err != nil {
		return nil, err
	}
	return c, nil
}

// rotateTempKey regenerates the short-lived key K_C'.
func (c *Client) rotateTempKey() error {
	k, err := rabin.GenerateKey(c.rng, c.cfg.TempKeyBits)
	if err != nil {
		return err
	}
	c.keyMu.Lock()
	c.tempKey = k
	c.tempKeyAge = time.Now()
	c.keyMu.Unlock()
	return nil
}

func (c *Client) currentTempKey() (*rabin.PrivateKey, error) {
	c.keyMu.Lock()
	stale := time.Since(c.tempKeyAge) > c.cfg.TempKeyLife
	k := c.tempKey
	c.keyMu.Unlock()
	if stale {
		if err := c.rotateTempKey(); err != nil {
			return nil, err
		}
		c.keyMu.Lock()
		k = c.tempKey
		c.keyMu.Unlock()
	}
	return k, nil
}

// RegisterAgent attaches a user's agent to this client and wires the
// agent's resolver to the file system, letting certification paths
// and revocation directories live on SFS itself.
func (c *Client) RegisterAgent(user string, a *agent.Agent) {
	c.mu.Lock()
	c.agents[user] = a
	if c.accessed[user] == nil {
		c.accessed[user] = make(map[string]bool)
	}
	c.mu.Unlock()
	a.SetResolver(&agentResolver{c: c, user: user})
}

// agentOf returns the user's agent.
func (c *Client) agentOf(user string) (*agent.Agent, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.agents[user]
	if !ok {
		return nil, ErrNoAgent
	}
	return a, nil
}

// agentResolver adapts the client for agent callbacks.
type agentResolver struct {
	c    *Client
	user string
}

func (r *agentResolver) ReadLink(path string) (string, error) {
	return r.c.ReadLink(r.user, path)
}

func (r *agentResolver) ReadFile(path string) ([]byte, error) {
	return r.c.ReadFile(r.user, path)
}

// getMount returns (automounting if needed) the mount for path's
// root. Mounts are shared between users: two users who name the same
// HostID are asking for the same public key, so sharing the cache is
// safe (paper §5.1).
func (c *Client) getMount(p core.Path) (*mount, error) {
	c.mu.Lock()
	m, ok := c.mounts[p.HostID]
	ticket := c.tickets[p.HostID]
	c.mu.Unlock()
	if ok {
		return m, nil
	}
	tempKey, err := c.currentTempKey()
	if err != nil {
		return nil, err
	}
	raw, err := c.cfg.Dial(p.Location)
	if err != nil {
		return nil, fmt.Errorf("client: dialing %s: %w", p.Location, err)
	}
	// A reconnect presents the previous session's ticket; the channel
	// then comes up without public-key work when the server still
	// holds the session, and falls back to the full handshake on the
	// same connection otherwise.
	sec, info, _, err := secchan.ClientHandshakeResume(raw, secchan.ServiceFile, p.Root(), tempKey, c.rng, ticket)
	if err != nil && ticket != nil {
		c.mu.Lock()
		if c.tickets[p.HostID] == ticket {
			delete(c.tickets, p.HostID)
		}
		c.mu.Unlock()
	}
	if errors.Is(err, secchan.ErrNoSuchFS) {
		// Not served read-write here: try the read-only dialect —
		// how certification-authority replicas are reached.
		raw.Close()
		return c.getROMount(p)
	}
	if err != nil {
		raw.Close()
		return nil, err
	}
	clCfg := nfs.ClientConfig{
		UseLeases:      c.cfg.EnhancedCaching,
		AccessCache:    c.cfg.EnhancedCaching,
		AttrTimeout:    c.cfg.AttrTimeout,
		ReadAhead:      c.cfg.ReadAhead,
		WriteBehind:    c.cfg.WriteBehind,
		DataCacheBytes: c.cfg.DataCacheBytes,
		TraceSpans:     c.cfg.TraceSpans,
	}
	base := nfs.Dial(sec, clCfg)
	if ring := base.TraceRing(); ring != nil && c.cfg.TraceSlow > 0 {
		logf := c.cfg.TraceLogf
		if logf == nil {
			logf = log.Printf
		}
		loc := p.Location
		ring.SetSlowLog(c.cfg.TraceSlow, func(sp stats.Span) {
			logf("slow rpc: server=%s proc=%s xid=%d principal=%d bytes=%d total=%dus %s",
				loc, nfs.ProcName(sp.Proc), sp.XID, sp.Principal, sp.Bytes, sp.DurUS, sp.Waterfall())
		})
	}
	root, _, err := base.MountRoot()
	if err != nil {
		base.Close()
		return nil, err
	}
	m = &mount{path: p.Root(), base: base, info: info, root: root, io: &c.io, users: make(map[string]*nfs.Client)}
	c.mu.Lock()
	if info.Ticket != nil {
		c.tickets[p.HostID] = info.Ticket
	}
	if exist, ok := c.mounts[p.HostID]; ok {
		c.mu.Unlock()
		base.Close()
		return exist, nil
	}
	c.mounts[p.HostID] = m
	c.mu.Unlock()
	// Drop the mount when the connection dies so the next access
	// reconnects.
	go func() {
		<-base.Done()
		c.mu.Lock()
		if c.mounts[p.HostID] == m {
			delete(c.mounts, p.HostID)
		}
		c.mu.Unlock()
	}()
	return m, nil
}

// getROMount connects with the read-only dialect: a plain transport,
// a verified signed root, per-blob hash verification.
func (c *Client) getROMount(p core.Path) (*mount, error) {
	raw, err := c.cfg.Dial(p.Location)
	if err != nil {
		return nil, err
	}
	rocl, err := sfsro.DialClient(raw, p.Root(), 0)
	if err != nil {
		return nil, err
	}
	view := newROView(rocl)
	m := &mount{path: p.Root(), ro: view, root: view.rootFH(), io: &c.io, users: make(map[string]*nfs.Client)}
	c.mu.Lock()
	if exist, ok := c.mounts[p.HostID]; ok {
		c.mu.Unlock()
		rocl.Close()
		return exist, nil
	}
	c.mounts[p.HostID] = m
	c.mu.Unlock()
	go func() {
		<-rocl.Done()
		c.mu.Lock()
		if c.mounts[p.HostID] == m {
			delete(c.mounts, p.HostID)
		}
		c.mu.Unlock()
	}()
	return m, nil
}

// viewFor returns the user's authenticated view of a mount, running
// the login protocol on first access (paper §3.1.2, Figure 4).
// Read-only mounts need no authentication: everyone shares the one
// verified view.
func (c *Client) viewFor(m *mount, user string) (View, error) {
	if m.ro != nil {
		return m.ro, nil
	}
	m.mu.Lock()
	if v, ok := m.users[user]; ok {
		m.mu.Unlock()
		return v, nil
	}
	m.mu.Unlock()

	a, err := c.agentOf(user)
	if err != nil {
		return nil, err
	}
	ai := sfsrpc.NewAuthInfo(m.info.Location, m.info.HostID, m.info.SessionID)
	authNo := uint32(0)
	for attempt := 0; ; attempt++ {
		m.mu.Lock()
		m.seq++
		seq := m.seq
		m.mu.Unlock()
		msg, ok := a.Authenticate(ai, seq, "sfscd:"+user, attempt)
		if !ok {
			break // agent declines; proceed anonymously
		}
		var res sfsrpc.LoginRes
		err := m.base.Call(sfsrpc.AuthProgram, sfsrpc.Version, sfsrpc.ProcLogin,
			sfsrpc.LoginArgs{SeqNo: seq, AuthMsg: msg}, &res)
		if err != nil {
			return nil, err
		}
		if res.Status == sfsrpc.LoginOK {
			authNo = res.AuthNo
			break
		}
		if res.Status == sfsrpc.LoginNo {
			break
		}
	}
	no := authNo
	v := m.base.WithAuth(user, func() sunrpc.OpaqueAuth { return sunrpc.SFSAuth(no) })
	m.mu.Lock()
	if exist, ok := m.users[user]; ok {
		m.mu.Unlock()
		return exist, nil
	}
	m.users[user] = v
	m.mu.Unlock()
	return v, nil
}

// node is a resolved file: the view to talk through and the handle.
type node struct {
	view  View
	mount *mount
	fh    nfs.FH
	attr  nfs.Fattr
}

const maxWalkDepth = 24

// resolve walks an absolute path under /sfs for a user, following
// agent links, certification paths, forwarding pointers, and
// symbolic links (including secure links to other servers).
// If followLast is false, a final symbolic link is returned rather
// than followed (lstat semantics, needed by ReadLink).
func (c *Client) resolve(user, path string, followLast bool, depth int) (*node, error) {
	if depth > maxWalkDepth {
		return nil, ErrLoopLimit
	}
	if path == core.Root || path == core.Root+"/" {
		return nil, ErrNotFound // /sfs itself is synthesized, not a server
	}
	if !strings.HasPrefix(path, core.Root+"/") {
		return nil, ErrNotSFS
	}
	a, err := c.agentOf(user)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimPrefix(path, core.Root+"/")
	var first, rest string
	if i := strings.IndexByte(trimmed, '/'); i >= 0 {
		first, rest = trimmed[:i], trimmed[i+1:]
	} else {
		first = trimmed
	}
	p, err := core.ParseName(first)
	if errors.Is(err, core.ErrNotSelfCertifying) {
		// Hand the name to the agent: dynamic links and
		// certification paths (paper §2.3).
		target, err := a.LookupName(first)
		if err != nil {
			return nil, ErrNotFound
		}
		if rest != "" {
			target = strings.TrimSuffix(target, "/") + "/" + rest
		}
		return c.resolve(user, target, followLast, depth+1)
	}
	if err != nil {
		return nil, err
	}
	// Revocation / blocking / forwarding checks.
	if redirect, err := a.CheckPath(p); err != nil {
		return nil, err
	} else if redirect != nil {
		target := redirect.String()
		if rest != "" {
			target = strings.TrimSuffix(target, "/") + "/" + rest
		}
		return c.resolve(user, target, followLast, depth+1)
	}
	m, err := c.getMount(p)
	if err != nil {
		return nil, err
	}
	view, err := c.viewFor(m, user)
	if err != nil {
		return nil, err
	}
	c.noteAccess(user, p.Name())

	// Walk the remaining components.
	cur := m.root
	curAttr, err := view.GetAttr(cur)
	if err != nil {
		return nil, err
	}
	comps := splitComponents(rest)
	for i, comp := range comps {
		fh, attr, err := view.Lookup(cur, comp)
		if err != nil {
			return nil, err
		}
		if attr.Type == nfs.TypeSymlink {
			last := i == len(comps)-1
			if last && !followLast {
				return &node{view: view, mount: m, fh: fh, attr: attr}, nil
			}
			target, err := view.Readlink(fh)
			if err != nil {
				return nil, err
			}
			remain := strings.Join(comps[i+1:], "/")
			if strings.HasPrefix(target, "/") {
				// Absolute: a secure link into /sfs or out of
				// this server entirely.
				if remain != "" {
					target = strings.TrimSuffix(target, "/") + "/" + remain
				}
				return c.resolve(user, target, followLast, depth+1)
			}
			// Relative: continue from the current directory.
			rebuilt := core.Path{Location: p.Location, HostID: p.HostID,
				Rest: joinRest(comps[:i], target, remain)}
			return c.resolve(user, rebuilt.String(), followLast, depth+1)
		}
		cur, curAttr = fh, attr
	}
	return &node{view: view, mount: m, fh: cur, attr: curAttr}, nil
}

func splitComponents(rest string) []string {
	var out []string
	for _, s := range strings.Split(rest, "/") {
		if s != "" && s != "." {
			out = append(out, s)
		}
	}
	return out
}

func joinRest(prefix []string, target, remain string) string {
	parts := append(append([]string(nil), prefix...), strings.Split(target, "/")...)
	if remain != "" {
		parts = append(parts, strings.Split(remain, "/")...)
	}
	// Normalize "..": resolve lexically within the mount.
	var stack []string
	for _, p := range parts {
		switch p {
		case "", ".":
		case "..":
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		default:
			stack = append(stack, p)
		}
	}
	return strings.Join(stack, "/")
}

func (c *Client) noteAccess(user, name string) {
	c.mu.Lock()
	if c.accessed[user] == nil {
		c.accessed[user] = make(map[string]bool)
	}
	c.accessed[user][name] = true
	c.mu.Unlock()
}

// ListSFS returns the names visible to user in a directory listing of
// /sfs: the agent's dynamic links plus the self-certifying pathnames
// this user has actually referenced. Names other users have accessed
// stay hidden, so file-name completion cannot trick a user into the
// wrong HostID (paper §2.3).
func (c *Client) ListSFS(user string) []string {
	var names []string
	if a, err := c.agentOf(user); err == nil {
		for name := range a.Links() {
			names = append(names, name)
		}
	}
	c.mu.Lock()
	for name := range c.accessed[user] {
		names = append(names, name)
	}
	c.mu.Unlock()
	return names
}
