package client_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/lab"
	"repro/internal/storage/diskstore"
	"repro/internal/vfs"
)

// setupWriter provisions a user with a private writable directory and
// returns the user name and the directory's absolute client path.
func setupWriter(t *testing.T, w *lab.World, s *lab.Served, cl *client.Client, name string, uid uint32) (string, string) {
	t.Helper()
	if _, err := w.NewUser(cl, s, name, uid, ""); err != nil {
		t.Fatal(err)
	}
	dir := "home/" + name
	if _, err := s.FS.MkdirAll(rootCred(), dir, 0o755); err != nil {
		t.Fatal(err)
	}
	id, _, err := s.FS.Resolve(rootCred(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FS.SetAttrs(rootCred(), id, vfs.SetAttr{UID: &uid}); err != nil {
		t.Fatal(err)
	}
	return name, s.Path.String() + "/" + dir
}

// TestDeferredWriteErrorSurfaces revokes write permission after the
// file is open, so in-flight unstable WRITEs start failing server-side
// while WriteAt keeps accepting data locally. The pipeline must latch
// the rejection and report it at a later WriteAt or at Sync — never
// swallow it.
func TestDeferredWriteErrorSurfaces(t *testing.T) {
	w, s, cl := newWorld(t, "wberr")
	user, dir := setupWriter(t, w, s, cl, "wberr", 3100)
	path := dir + "/f.bin"
	f, err := cl.Create(user, path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Server-side chmod to read-only: every WRITE from here on is
	// rejected with a permission error, but the client learns that
	// only from the deferred replies.
	id, _, err := s.FS.Resolve(rootCred(), "home/wberr/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	mode := uint32(0o444)
	if _, err := s.FS.SetAttrs(rootCred(), id, vfs.SetAttr{Mode: &mode}); err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 8192)
	var werr error
	for i := 0; i < 16 && werr == nil; i++ {
		_, werr = f.WriteAt(chunk, uint64(i*len(chunk)))
	}
	if werr == nil {
		// Everything fit the window without a retire; the error must
		// then surface at Sync.
		werr = f.Sync()
	}
	if werr == nil {
		t.Fatal("rejected writes reported no error at WriteAt or Sync")
	}
	if !strings.Contains(werr.Error(), "perm") && !strings.Contains(werr.Error(), "access") {
		t.Fatalf("unexpected deferred error: %v", werr)
	}
	f.Close() //nolint:errcheck // pipeline already failed; only the report above matters
}

// TestWriteRetransmitAcrossServerRestart acknowledges a batch of
// unstable WRITEs, reboots the server (discarding them and changing
// the write verifier), then Syncs: the client must notice the verifier
// change at COMMIT and retransmit every dirty range, ending with the
// data stable — the scenario RFC 1813 §4.8 verifiers exist for.
//
// The scenario runs against both storage backends: on the default
// in-memory store Restart is the test-only shadow-revert hook; on the
// disk store it is a real crash — the WAL tears off its user-space
// buffer (auto-flush disabled so the unstable batch is actually
// lost), reopens with a bumped epoch, and replays.
func TestWriteRetransmitAcrossServerRestart(t *testing.T) {
	t.Run("mem", func(t *testing.T) { testWriteRetransmit(t, vfs.New()) })
	t.Run("disk", func(t *testing.T) {
		ds, err := diskstore.Open(t.TempDir(), diskstore.Options{AutoFlushBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ds.Close() })
		fs, err := vfs.NewWithStores(ds, ds)
		if err != nil {
			t.Fatal(err)
		}
		testWriteRetransmit(t, fs)
	})
}

func testWriteRetransmit(t *testing.T, fs *vfs.FS) {
	w, err := lab.NewWorld("wbverf")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	s, err := w.ServeFSOn("server.example.com", 30000, fs)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := w.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "wbverf"})
	if err != nil {
		t.Fatal(err)
	}
	user, dir := setupWriter(t, w, s, cl, "wbverf", 3200)
	path := dir + "/big.bin"
	f, err := cl.Create(user, path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KB, 8 chunks
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Flush retires every in-flight WRITE: the server has acknowledged
	// all 64 KB as unstable, nothing is committed yet.
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulated server crash+reboot: uncommitted data reverts, the
	// boot verifier changes.
	s.FS.Restart()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// The retransmitted data must now be stable: it survives another
	// reboot.
	s.FS.Restart()
	got, err := cl.ReadFile(user, path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("post-restart readback: %d bytes, want %d", len(got), len(data))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWriteSyncCloseOneFile hammers a single File from many
// goroutines mixing WriteAt, Sync, and a final Close — the write-behind
// window, dirty-range ledger, and chunk pool must stay consistent under
// the race detector, and every byte must land.
func TestConcurrentWriteSyncCloseOneFile(t *testing.T) {
	w, s, cl := newWorld(t, "wbrace")
	user, dir := setupWriter(t, w, s, cl, "wbrace", 3300)
	path := dir + "/shared.bin"
	f, err := cl.Create(user, path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const region = 64 << 10 // per-worker byte range, 8 chunks each
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('a' + i)}, 8192)
			base := uint64(i * region)
			for off := 0; off < region; off += len(payload) {
				if _, err := f.WriteAt(payload, base+uint64(off)); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", i, err)
					return
				}
			}
			if err := f.Sync(); err != nil {
				errs <- fmt.Errorf("worker %d sync: %w", i, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile(user, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != workers*region {
		t.Fatalf("file is %d bytes, want %d", len(got), workers*region)
	}
	for i := 0; i < workers; i++ {
		want := byte('a' + i)
		for off := i * region; off < (i+1)*region; off++ {
			if got[off] != want {
				t.Fatalf("byte %d = %q, want %q", off, got[off], want)
			}
		}
	}
	_ = s
}

// TestMixedReadWriteOneChannel interleaves write-behind pipelines and
// readahead pipelines from many goroutines on one secure channel: some
// goroutines stream writes to private files, others stream reads of a
// shared file, and one goroutine alternates reads and writes on a
// single File (which forces the two pipelines to drain each other).
func TestMixedReadWriteOneChannel(t *testing.T) {
	w, s, cl := newWorld(t, "wbmix")
	user, dir := setupWriter(t, w, s, cl, "wbmix", 3400)
	big := bytes.Repeat([]byte("fedcba9876543210"), 4096) // 64 KB
	if err := s.FS.WriteFile(rootCred(), "home/wbmix/big.bin", big, 0o644); err != nil {
		t.Fatal(err)
	}
	const writers = 2
	const readers = 2
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers+1)
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			path := fmt.Sprintf("%s/w%d.bin", dir, i)
			f, err := cl.Create(user, path, 0o644)
			if err != nil {
				errs <- err
				return
			}
			payload := bytes.Repeat([]byte{byte('0' + i)}, 8192)
			for off := 0; off < 64<<10; off += len(payload) {
				if _, err := f.WriteAt(payload, uint64(off)); err != nil {
					errs <- fmt.Errorf("writer %d: %w", i, err)
					return
				}
			}
			if err := f.Close(); err != nil {
				errs <- fmt.Errorf("writer %d close: %w", i, err)
			}
		}()
	}
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				got, err := cl.ReadFile(user, dir+"/big.bin")
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", i, err)
					return
				}
				if !bytes.Equal(got, big) {
					errs <- fmt.Errorf("reader %d: corrupted read of %d bytes", i, len(got))
					return
				}
			}
		}()
	}
	// Read/write alternation on one File: every ReadAt must drain the
	// write window first and still see the freshest bytes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		f, err := cl.Create(user, dir+"/rw.bin", 0o644)
		if err != nil {
			errs <- err
			return
		}
		defer f.Close() //nolint:errcheck
		buf := make([]byte, 8192)
		for j := 0; j < 8; j++ {
			payload := bytes.Repeat([]byte{byte('A' + j)}, 8192)
			if _, err := f.WriteAt(payload, 0); err != nil {
				errs <- fmt.Errorf("rw write %d: %w", j, err)
				return
			}
			if _, err := f.ReadAt(buf, 0); err != nil {
				errs <- fmt.Errorf("rw read %d: %w", j, err)
				return
			}
			if !bytes.Equal(buf, payload) {
				errs <- fmt.Errorf("rw iteration %d: read stale data %q", j, buf[:8])
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	_ = w
}
