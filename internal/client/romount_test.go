package client_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/crypto/rabin"
	"repro/internal/lab"
	"repro/internal/nfs"
	"repro/internal/sfsro"
	"repro/internal/vfs"
)

// buildROWorld publishes a read-only database through a lab world and
// returns its self-certifying path.
func buildROWorld(t *testing.T, seed string) (*lab.World, *sfsro.DB, string) {
	t.Helper()
	w, err := lab.NewWorld(seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	key, err := rabin.GenerateKey(w.RNG, lab.KeyBits)
	if err != nil {
		t.Fatal(err)
	}
	src := vfs.New()
	cred := vfs.Cred{UID: 0}
	if err := src.WriteFile(cred, "links/target", []byte("unused"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := src.WriteFile(cred, "pub/catalog.txt", []byte("read-only, verified"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := src.SymlinkAt(cred, "pub/alias", "catalog.txt"); err != nil {
		t.Fatal(err)
	}
	db, err := sfsro.BuildFromVFS(src, "ca.example.com", key, 1, time.Hour, w.RNG, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.ServeReadOnly(db)
	if err != nil {
		t.Fatal(err)
	}
	return w, db, p.String()
}

func TestReadOnlyMountThroughClient(t *testing.T) {
	w, _, base := buildROWorld(t, "romount")
	cl, err := w.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "romount"})
	if err != nil {
		t.Fatal(err)
	}
	w.NewAnonymousUser(cl, "u")

	// Ordinary path operations work through /sfs, fully verified.
	data, err := cl.ReadFile("u", base+"/pub/catalog.txt")
	if err != nil || string(data) != "read-only, verified" {
		t.Fatalf("read: %q %v", data, err)
	}
	// Relative symlinks inside the RO tree resolve.
	data, err = cl.ReadFile("u", base+"/pub/alias")
	if err != nil || string(data) != "read-only, verified" {
		t.Fatalf("through symlink: %q %v", data, err)
	}
	ents, err := cl.ReadDir("u", base+"/pub")
	if err != nil || len(ents) != 2 {
		t.Fatalf("readdir: %d %v", len(ents), err)
	}
	attr, err := cl.Stat("u", base+"/pub/catalog.txt")
	if err != nil || attr.Type != nfs.TypeReg {
		t.Fatalf("stat: %+v %v", attr, err)
	}
	if attr.Mode&0o222 != 0 {
		t.Fatal("read-only file reports writable mode bits")
	}
	// pwd works on RO mounts too.
	pwd, err := cl.SelfPath("u", base+"/pub")
	if err != nil || pwd != base {
		t.Fatalf("SelfPath: %q %v", pwd, err)
	}
}

func TestReadOnlyMountRefusesWrites(t *testing.T) {
	w, _, base := buildROWorld(t, "rowrite")
	cl, err := w.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "rowrite"})
	if err != nil {
		t.Fatal(err)
	}
	w.NewAnonymousUser(cl, "u")
	if err := cl.WriteFile("u", base+"/pub/new.txt", []byte("nope")); !errors.Is(err, nfs.Error(nfs.ErrROFS)) {
		t.Fatalf("write: %v, want EROFS", err)
	}
	if err := cl.Remove("u", base+"/pub/catalog.txt"); !errors.Is(err, nfs.Error(nfs.ErrROFS)) {
		t.Fatalf("remove: %v, want EROFS", err)
	}
	if err := cl.Mkdir("u", base+"/pub/d", 0o755); !errors.Is(err, nfs.Error(nfs.ErrROFS)) {
		t.Fatalf("mkdir: %v, want EROFS", err)
	}
	if err := cl.Chmod("u", base+"/pub/catalog.txt", 0o777); !errors.Is(err, nfs.Error(nfs.ErrROFS)) {
		t.Fatalf("chmod: %v, want EROFS", err)
	}
}

func TestCertificationPathOnReadOnlyCA(t *testing.T) {
	// The paper's deployment: the CA's links live on a read-only,
	// replicated file system; a certification path points at it and
	// the target is a normal read-write server.
	w, err := lab.NewWorld("roca")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	target, err := w.ServeFS("target.example.com", 30000)
	if err != nil {
		t.Fatal(err)
	}
	if err := target.FS.WriteFile(vfs.Cred{UID: 0}, "pub/data", []byte("via RO CA"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Build the CA database carrying a secure link to the target.
	key, err := rabin.GenerateKey(w.RNG, lab.KeyBits)
	if err != nil {
		t.Fatal(err)
	}
	src := vfs.New()
	if err := src.SymlinkAt(vfs.Cred{UID: 0}, "links/target", target.Path.String()); err != nil {
		t.Fatal(err)
	}
	db, err := sfsro.BuildFromVFS(src, "roca.example.com", key, 1, time.Hour, w.RNG, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	caPath, err := w.ServeReadOnly(db)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := w.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "roca"})
	if err != nil {
		t.Fatal(err)
	}
	a := w.NewAnonymousUser(cl, "u")
	a.SetCertPaths([]string{caPath.String() + "/links"})
	data, err := cl.ReadFile("u", "/sfs/target/pub/data")
	if err != nil || string(data) != "via RO CA" {
		t.Fatalf("via read-only CA: %q %v", data, err)
	}
}
