package client_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/nfs"
	"repro/internal/vfs"
)

// world caches one lab deployment across tests in this file; each test
// uses distinct users/files.
func newWorld(t *testing.T, seed string) (*lab.World, *lab.Served, *client.Client) {
	t.Helper()
	w, err := lab.NewWorld(seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	s, err := w.ServeFS("server.example.com", 30000)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := w.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w, s, cl
}

func rootCred() vfs.Cred { return vfs.Cred{UID: 0, GIDs: []uint32{0}} }

func TestEndToEndReadWrite(t *testing.T) {
	w, s, cl := newWorld(t, "e2e")
	if _, err := w.NewUser(cl, s, "alice", 1000, ""); err != nil {
		t.Fatal(err)
	}
	// Server-side: a world-writable playground.
	if _, err := s.FS.MkdirAll(rootCred(), "home/alice", 0o755); err != nil {
		t.Fatal(err)
	}
	id, _, _ := s.FS.Lookup(rootCred(), s.FS.Root(), "home")
	_ = id
	aliceDir, _, err := s.FS.Lookup(rootCred(), id, "alice")
	if err != nil {
		t.Fatal(err)
	}
	uid := uint32(1000)
	if _, err := s.FS.SetAttrs(rootCred(), aliceDir, vfs.SetAttr{UID: &uid}); err != nil {
		t.Fatal(err)
	}

	base := s.Path.String()
	path := base + "/home/alice/notes.txt"
	if err := cl.WriteFile("alice", path, []byte("my notes, secured")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("alice", path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "my notes, secured" {
		t.Fatalf("got %q", got)
	}
	// Attributes carry ownership: the file was created as alice.
	attr, err := cl.Stat("alice", path)
	if err != nil {
		t.Fatal(err)
	}
	if attr.UID != 1000 {
		t.Fatalf("file uid %d, want 1000", attr.UID)
	}
}

func TestAnonymousAccessRestricted(t *testing.T) {
	w, s, cl := newWorld(t, "anon")
	w.NewAnonymousUser(cl, "nobody")
	// Root-owned 0644 file: anonymous can read, not write.
	if err := s.FS.WriteFile(rootCred(), "pub/readme", []byte("public"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := s.Path.String()
	got, err := cl.ReadFile("nobody", base+"/pub/readme")
	if err != nil || string(got) != "public" {
		t.Fatalf("anonymous read: %q %v", got, err)
	}
	if err := cl.WriteFile("nobody", base+"/pub/readme", []byte("defaced")); err == nil {
		t.Fatal("anonymous write succeeded")
	}
	// A 0600 file is unreadable anonymously.
	if err := s.FS.WriteFile(rootCred(), "pub/secret", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFile("nobody", base+"/pub/secret"); err == nil {
		t.Fatal("anonymous read of 0600 file succeeded")
	}
}

func TestUnknownUserFallsBackToAnonymous(t *testing.T) {
	w, s, cl := newWorld(t, "fallback")
	// mallory has a key but is not registered with the authserver.
	other, err := lab.NewWorld("fallback-other")
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	_ = other
	a := agent.New("mallory", nil)
	cl.RegisterAgent("mallory", a)
	w.NewAnonymousUser(cl, "unused")
	if err := s.FS.WriteFile(rootCred(), "pub/open", []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("mallory", s.Path.String()+"/pub/open")
	if err != nil || string(got) != "hi" {
		t.Fatalf("fallback read: %q %v", got, err)
	}
}

func TestDynamicAgentLinks(t *testing.T) {
	w, s, cl := newWorld(t, "links")
	a, err := w.NewUser(cl, s, "alice", 1000, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FS.WriteFile(rootCred(), "pub/hello", []byte("via link"), 0o644); err != nil {
		t.Fatal(err)
	}
	a.Symlink("work", s.Path.String())
	got, err := cl.ReadFile("alice", "/sfs/work/pub/hello")
	if err != nil || string(got) != "via link" {
		t.Fatalf("through dynamic link: %q %v", got, err)
	}
	// Another user does not see alice's link.
	w.NewAnonymousUser(cl, "bob")
	if _, err := cl.ReadFile("bob", "/sfs/work/pub/hello"); err == nil {
		t.Fatal("bob resolved alice's private link")
	}
}

func TestSecureLinksAcrossServers(t *testing.T) {
	w, s1, cl := newWorld(t, "securelink")
	s2, err := w.ServeFS("other.example.com", 30000)
	if err != nil {
		t.Fatal(err)
	}
	w.NewAnonymousUser(cl, "u")
	if err := s2.FS.WriteFile(rootCred(), "data/file", []byte("on server two"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Server 1 carries a symlink to server 2's self-certifying path.
	if err := s1.FS.SymlinkAt(rootCred(), "links/other", s2.Path.String()+"/data"); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("u", s1.Path.String()+"/links/other/file")
	if err != nil || string(got) != "on server two" {
		t.Fatalf("secure link: %q %v", got, err)
	}
}

func TestCertificationPathResolution(t *testing.T) {
	w, ca, cl := newWorld(t, "certpath")
	target, err := w.ServeFS("target.example.com", 30000)
	if err != nil {
		t.Fatal(err)
	}
	a := w.NewAnonymousUser(cl, "u")
	// The CA serves symlinks: verisign-style certification.
	if err := target.FS.WriteFile(rootCred(), "pub/catalog", []byte("certified data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ca.FS.SymlinkAt(rootCred(), "links/target", target.Path.String()); err != nil {
		t.Fatal(err)
	}
	a.SetCertPaths([]string{ca.Path.String() + "/links"})
	got, err := cl.ReadFile("u", "/sfs/target/pub/catalog")
	if err != nil || string(got) != "certified data" {
		t.Fatalf("certification path: %q %v", got, err)
	}
}

func TestRelativeSymlinksInsideMount(t *testing.T) {
	_, s, cl := newWorld(t, "relative")
	if err := s.FS.WriteFile(rootCred(), "a/real.txt", []byte("content"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.FS.SymlinkAt(rootCred(), "a/alias", "real.txt"); err != nil {
		t.Fatal(err)
	}
	if err := s.FS.SymlinkAt(rootCred(), "b/up", "../a/real.txt"); err != nil {
		t.Fatal(err)
	}
	cl.RegisterAgent("relly", agent.New("relly", nil))
	base := s.Path.String()
	got, err := cl.ReadFile("relly", base+"/a/alias")
	if err != nil || string(got) != "content" {
		t.Fatalf("relative symlink: %q %v", got, err)
	}
	got, err = cl.ReadFile("relly", base+"/b/up")
	if err != nil || string(got) != "content" {
		t.Fatalf("dotdot symlink: %q %v", got, err)
	}
}

func TestDirectoryOperations(t *testing.T) {
	w, s, cl := newWorld(t, "dirops")
	if _, err := w.NewUser(cl, s, "root", 0, ""); err != nil {
		t.Fatal(err)
	}
	base := s.Path.String()
	if err := cl.Mkdir("root", base+"/proj", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"a.go", "b.go", "c.go"} {
		if err := cl.WriteFile("root", base+"/proj/"+f, []byte(f)); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := cl.ReadDir("root", base+"/proj")
	if err != nil || len(ents) != 3 {
		t.Fatalf("readdir: %d entries, %v", len(ents), err)
	}
	if err := cl.Rename("root", base+"/proj/a.go", base+"/proj/z.go"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat("root", base+"/proj/a.go"); err == nil {
		t.Fatal("renamed file still present")
	}
	if err := cl.Remove("root", base+"/proj/z.go"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove("root", base+"/proj/b.go"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove("root", base+"/proj/c.go"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Rmdir("root", base+"/proj"); err != nil {
		t.Fatal(err)
	}
}

func TestSelfPathIsPwd(t *testing.T) {
	w, s, cl := newWorld(t, "pwd")
	if _, err := w.NewUser(cl, s, "u", 1000, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.FS.WriteFile(rootCred(), "d/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := cl.SelfPath("u", s.Path.String()+"/d")
	if err != nil {
		t.Fatal(err)
	}
	if got != s.Path.String() {
		t.Fatalf("SelfPath = %q, want %q", got, s.Path.String())
	}
	if !strings.HasPrefix(got, "/sfs/server.example.com:") {
		t.Fatalf("SelfPath shape: %q", got)
	}
}

func TestWrongHostIDRefused(t *testing.T) {
	w, s, cl := newWorld(t, "wrongid")
	w.NewAnonymousUser(cl, "u")
	// Build a pathname with the right location but a HostID for a
	// different key: connection must fail, nothing mounted.
	bogus := core.MakePath(s.Location, []byte("not the real key"))
	if _, err := cl.ReadFile("u", bogus.String()+"/anything"); err == nil {
		t.Fatal("client accepted a server whose key does not match the HostID")
	}
}

func TestRevokedPathRefused(t *testing.T) {
	w, s, cl := newWorld(t, "revoked")
	a := w.NewAnonymousUser(cl, "u")
	if err := s.FS.WriteFile(rootCred(), "f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Works before revocation.
	if _, err := cl.ReadFile("u", s.Path.String()+"/f"); err != nil {
		t.Fatal(err)
	}
	cert, err := core.NewRevocation(s.Key, s.Location, w.RNG)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddRevocation(cert); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFile("u", s.Path.String()+"/f"); !errors.Is(err, agent.ErrRevoked) {
		t.Fatalf("got %v, want agent.ErrRevoked", err)
	}
}

func TestForwardingPointerFollowed(t *testing.T) {
	w, oldS, cl := newWorld(t, "forward")
	newS, err := w.ServeFS("new-home.example.com", 30000)
	if err != nil {
		t.Fatal(err)
	}
	a := w.NewAnonymousUser(cl, "u")
	if err := newS.FS.WriteFile(rootCred(), "d/f", []byte("moved here"), 0o644); err != nil {
		t.Fatal(err)
	}
	fwd, err := core.NewForward(oldS.Key, oldS.Location, newS.Path, w.RNG)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddRevocation(fwd); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("u", oldS.Path.String()+"/d/f")
	if err != nil || string(got) != "moved here" {
		t.Fatalf("forwarded read: %q %v", got, err)
	}
}

func TestServerServesRevocationAtConnect(t *testing.T) {
	w, s, cl := newWorld(t, "srv-revoke")
	w.NewAnonymousUser(cl, "u")
	cert, err := core.NewRevocation(s.Key, s.Location, w.RNG)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Server.AddRevocation(cert); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFile("u", s.Path.String()+"/f"); err == nil {
		t.Fatal("revoked-at-connect pathname accessible")
	}
}

func TestTwoUsersShareMountSafely(t *testing.T) {
	w, s, cl := newWorld(t, "share")
	if _, err := w.NewUser(cl, s, "alice", 1000, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := w.NewUser(cl, s, "bob", 1001, ""); err != nil {
		t.Fatal(err)
	}
	// Alice's private file.
	if err := s.FS.WriteFile(rootCred(), "home/alice/secret", []byte("alice only"), 0o600); err != nil {
		t.Fatal(err)
	}
	id, _, err2 := s.FS.Lookup(rootCred(), s.FS.Root(), "home")
	if err2 != nil {
		t.Fatal(err2)
	}
	ad, _, err2 := s.FS.Lookup(rootCred(), id, "alice")
	if err2 != nil {
		t.Fatal(err2)
	}
	fid, _, err2 := s.FS.Lookup(rootCred(), ad, "secret")
	if err2 != nil {
		t.Fatal(err2)
	}
	uid := uint32(1000)
	if _, err := s.FS.SetAttrs(rootCred(), fid, vfs.SetAttr{UID: &uid}); err != nil {
		t.Fatal(err)
	}
	base := s.Path.String()
	got, err3 := cl.ReadFile("alice", base+"/home/alice/secret")
	if err3 != nil || string(got) != "alice only" {
		t.Fatalf("alice read: %q %v", got, err3)
	}
	// Bob, over the same mount and shared cache, is refused.
	if _, err := cl.ReadFile("bob", base+"/home/alice/secret"); err == nil {
		t.Fatal("bob read alice's 0600 file through the shared mount")
	}
}

func TestListSFSPerUserViews(t *testing.T) {
	w, s, cl := newWorld(t, "listsfs")
	a, err := w.NewUser(cl, s, "alice", 1000, "")
	if err != nil {
		t.Fatal(err)
	}
	w.NewAnonymousUser(cl, "bob")
	a.Symlink("myserver", s.Path.String())
	if err := s.FS.WriteFile(rootCred(), "f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFile("alice", s.Path.String()+"/f"); err != nil {
		t.Fatal(err)
	}
	aliceNames := cl.ListSFS("alice")
	if len(aliceNames) < 2 {
		t.Fatalf("alice sees %v", aliceNames)
	}
	// Bob has accessed nothing: sees nothing, so completion cannot
	// lead him to HostIDs others referenced.
	if names := cl.ListSFS("bob"); len(names) != 0 {
		t.Fatalf("bob sees %v", names)
	}
}

func TestLargeFileChunking(t *testing.T) {
	w, s, cl := newWorld(t, "large")
	if _, err := w.NewUser(cl, s, "root", 0, ""); err != nil {
		t.Fatal(err)
	}
	base := s.Path.String()
	want := bytes.Repeat([]byte("0123456789abcdef"), 16384) // 256 KB
	if err := cl.WriteFile("root", base+"/big.bin", want); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("root", base+"/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("large file corrupted: %d vs %d bytes", len(got), len(want))
	}
	attr, _ := cl.Stat("root", base+"/big.bin")
	if attr.Size != uint64(len(want)) {
		t.Fatalf("size %d", attr.Size)
	}
}

func TestCachingReducesWireCalls(t *testing.T) {
	w, s, cl := newWorld(t, "cache")
	if _, err := w.NewUser(cl, s, "u", 1000, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.FS.WriteFile(rootCred(), "f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := s.Path.String() + "/f"
	if _, err := cl.Stat("u", path); err != nil {
		t.Fatal(err)
	}
	st1, _ := cl.Stats("u", path)
	for i := 0; i < 20; i++ {
		if _, err := cl.Stat("u", path); err != nil {
			t.Fatal(err)
		}
	}
	st2, _ := cl.Stats("u", path)
	if st2.AttrHits <= st1.AttrHits {
		t.Fatalf("no cache hits: %+v -> %+v", st1, st2)
	}
}

func TestNotSFSPathRejected(t *testing.T) {
	_, _, cl := newWorld(t, "notsfs")
	cl.RegisterAgent("u", agent.New("u", nil))
	if _, err := cl.ReadFile("u", "/etc/passwd"); !errors.Is(err, client.ErrNotSFS) {
		t.Fatalf("got %v, want ErrNotSFS", err)
	}
}

func TestNoAgentRejected(t *testing.T) {
	_, s, cl := newWorld(t, "noagent")
	if _, err := cl.ReadFile("ghost", s.Path.String()+"/f"); !errors.Is(err, client.ErrNoAgent) {
		t.Fatalf("got %v, want ErrNoAgent", err)
	}
}

func TestFileStreaming(t *testing.T) {
	w, s, cl := newWorld(t, "stream")
	if _, err := w.NewUser(cl, s, "root", 0, ""); err != nil {
		t.Fatal(err)
	}
	base := s.Path.String()
	f, err := cl.Create("root", base+"/s.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("part one, ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("part two")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	g, err := cl.Open("root", base+"/s.txt")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _ := g.Read(buf)
	if string(buf[:n]) != "part one, part two" {
		t.Fatalf("streamed read: %q", buf[:n])
	}
	var whole bytes.Buffer
	g.Seek(0)
	for {
		n, err := g.Read(buf)
		whole.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if whole.String() != "part one, part two" {
		t.Fatalf("loop read: %q", whole.String())
	}
	_ = nfs.Fattr{}
}
