package client_test

import (
	"net"
	"sort"
	"testing"

	"repro/internal/client"
	"repro/internal/crypto/prng"
	"repro/internal/lab"
)

// TestReadDirPageBoundaries pins the Config.ReadDirPage knob at its
// boundary values: a one-entry page (maximum paging, every entry a
// READDIR round trip), a page larger than the directory (single
// round trip), and zero/negative (fall back to the default 256).
// Every configuration must return the identical, complete listing.
func TestReadDirPageBoundaries(t *testing.T) {
	w, err := lab.NewWorld("readdirpage")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	s, err := w.ServeFS("server.example.com", 30000)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a.txt", "b.txt", "c.txt", "d.txt", "e.txt"}
	for _, name := range names {
		if _, _, err := s.FS.Create(rootCred(), s.FS.Root(), name, 0o644, true); err != nil {
			t.Fatal(err)
		}
	}
	dir := s.Path.String()

	newPagedClient := func(seed string, page int) *client.Client {
		cl, err := client.New(client.Config{
			Dial:            func(string) (net.Conn, error) { return w.Dial("server.example.com") },
			RNG:             prng.NewSeeded([]byte("readdirpage-" + seed)),
			TempKeyBits:     lab.KeyBits,
			EnhancedCaching: true,
			ReadDirPage:     page,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.NewAnonymousUser(cl, "anon")
		return cl
	}

	var want []string
	for _, tc := range []struct {
		label string
		page  int
	}{
		{"page1", 1},             // one entry per READDIR
		{"page64", 64},           // page ≥ directory size
		{"default", 0},           // zero selects 256
		{"negative-default", -7}, // ≤0 selects 256 too
	} {
		t.Run(tc.label, func(t *testing.T) {
			cl := newPagedClient(tc.label, tc.page)
			ents, err := cl.ReadDir("anon", dir)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, e := range ents {
				got = append(got, e.Name)
			}
			sort.Strings(got)
			if want == nil {
				want = got
				for _, name := range names {
					if sort.SearchStrings(got, name) >= len(got) || got[sort.SearchStrings(got, name)] != name {
						t.Fatalf("listing %v missing %q", got, name)
					}
				}
				return
			}
			if len(got) != len(want) {
				t.Fatalf("page=%d listing %v, want %v", tc.page, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("page=%d listing %v, want %v", tc.page, got, want)
				}
			}
		})
	}
}
