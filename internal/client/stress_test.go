package client_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/vfs"
)

// TestConcurrentUsersOneMount hammers a single shared mount from
// several users concurrently — the shared attribute cache, per-user
// access caches, and authentication tables must all hold up under the
// race detector.
func TestConcurrentUsersOneMount(t *testing.T) {
	w, s, cl := newWorld(t, "stress")
	const users = 4
	for i := 0; i < users; i++ {
		name := fmt.Sprintf("u%d", i)
		if _, err := w.NewUser(cl, s, name, uint32(1000+i), ""); err != nil {
			t.Fatal(err)
		}
		dir := fmt.Sprintf("home/u%d", i)
		if _, err := s.FS.MkdirAll(rootCred(), dir, 0o755); err != nil {
			t.Fatal(err)
		}
		id, _, _ := s.FS.Resolve(rootCred(), dir)
		uid := uint32(1000 + i)
		if _, err := s.FS.SetAttrs(rootCred(), id, vfs.SetAttr{UID: &uid}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FS.WriteFile(rootCred(), "shared.txt", []byte("everyone reads this"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := s.Path.String()
	var wg sync.WaitGroup
	errs := make(chan error, users*40)
	for i := 0; i < users; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			user := fmt.Sprintf("u%d", i)
			home := fmt.Sprintf("%s/home/u%d", base, i)
			for j := 0; j < 10; j++ {
				if _, err := cl.ReadFile(user, base+"/shared.txt"); err != nil {
					errs <- fmt.Errorf("%s read shared: %w", user, err)
					return
				}
				own := fmt.Sprintf("%s/f%d", home, j)
				if err := cl.WriteFile(user, own, []byte(user)); err != nil {
					errs <- fmt.Errorf("%s write: %w", user, err)
					return
				}
				if _, err := cl.Stat(user, own); err != nil {
					errs <- fmt.Errorf("%s stat: %w", user, err)
					return
				}
				if _, err := cl.ReadDir(user, home); err != nil {
					errs <- fmt.Errorf("%s readdir: %w", user, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Cross-check isolation after the storm: each file is owned by
	// its writer.
	for i := 0; i < users; i++ {
		attr, err := cl.Stat("u0", fmt.Sprintf("%s/home/u%d/f0", base, i))
		if err != nil {
			t.Fatal(err)
		}
		if attr.UID != uint32(1000+i) {
			t.Errorf("home/u%d/f0 owned by %d", i, attr.UID)
		}
	}
}
