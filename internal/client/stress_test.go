package client_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/vfs"
)

// TestConcurrentRPCPipelineOneChannel drives many goroutines through
// the concurrent dispatch pipeline of a single secure channel: all
// users share one mount, hence one transport, with replies completing
// out of order. Every read-back carries a unique tag, so a reply
// matched to the wrong call (XID confusion) or a credential tagged to
// the wrong principal surfaces as wrong data or a missing permission
// error.
func TestConcurrentRPCPipelineOneChannel(t *testing.T) {
	w, s, cl := newWorld(t, "pipeline")
	const users = 3
	const workersPerUser = 2
	const iters = 8
	for i := 0; i < users; i++ {
		name := fmt.Sprintf("p%d", i)
		uid := uint32(2000 + i)
		if _, err := w.NewUser(cl, s, name, uid, ""); err != nil {
			t.Fatal(err)
		}
		// A private directory only its owner may enter, holding a
		// secret: the cross-talk probe.
		if _, err := s.FS.MkdirAll(rootCred(), "priv", 0o755); err != nil {
			t.Fatal(err)
		}
		dir := fmt.Sprintf("priv/p%d", i)
		if _, err := s.FS.MkdirAll(rootCred(), dir, 0o700); err != nil {
			t.Fatal(err)
		}
		if err := s.FS.WriteFile(rootCred(), dir+"/secret", []byte(name+" only"), 0o600); err != nil {
			t.Fatal(err)
		}
		sid, _, err := s.FS.Resolve(rootCred(), dir+"/secret")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.FS.SetAttrs(rootCred(), sid, vfs.SetAttr{UID: &uid}); err != nil {
			t.Fatal(err)
		}
		id, _, err := s.FS.Resolve(rootCred(), dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.FS.SetAttrs(rootCred(), id, vfs.SetAttr{UID: &uid}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.FS.MkdirAll(rootCred(), "pub", 0o777); err != nil {
			t.Fatal(err)
		}
	}
	// A multi-chunk file so concurrent pipelined ReadAlls interleave
	// many READs on the channel at once.
	big := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KB
	if err := s.FS.WriteFile(rootCred(), "pub/big.bin", big, 0o644); err != nil {
		t.Fatal(err)
	}
	base := s.Path.String()
	var wg sync.WaitGroup
	errs := make(chan error, users*workersPerUser)
	for u := 0; u < users; u++ {
		for g := 0; g < workersPerUser; g++ {
			u, g := u, g
			wg.Add(1)
			go func() {
				defer wg.Done()
				user := fmt.Sprintf("p%d", u)
				other := fmt.Sprintf("p%d", (u+1)%users)
				for i := 0; i < iters; i++ {
					// Unique payload per (user, goroutine, iteration):
					// a cross-matched reply cannot reproduce it.
					tag := fmt.Sprintf("%s-g%d-i%d", user, g, i)
					own := fmt.Sprintf("%s/pub/%s.txt", base, tag)
					if err := cl.WriteFile(user, own, []byte(tag)); err != nil {
						errs <- fmt.Errorf("%s write: %w", tag, err)
						return
					}
					got, err := cl.ReadFile(user, own)
					if err != nil {
						errs <- fmt.Errorf("%s read back: %w", tag, err)
						return
					}
					if string(got) != tag {
						errs <- fmt.Errorf("reply cross-talk: wrote %q, read %q", tag, got)
						return
					}
					// Own secret must open; the neighbour's must not.
					if _, err := cl.ReadFile(user, fmt.Sprintf("%s/priv/%s/secret", base, user)); err != nil {
						errs <- fmt.Errorf("%s own secret: %w", tag, err)
						return
					}
					if _, err := cl.ReadFile(user, fmt.Sprintf("%s/priv/%s/secret", base, other)); err == nil {
						errs <- fmt.Errorf("credential cross-talk: %s read %s's secret", user, other)
						return
					} else if !strings.Contains(err.Error(), "perm") && !strings.Contains(err.Error(), "access") {
						errs <- fmt.Errorf("%s probe unexpected error: %w", tag, err)
						return
					}
					// Pipelined multi-chunk read interleaved with
					// everyone else's RPCs on the same channel.
					data, err := cl.ReadFile(user, base+"/pub/big.bin")
					if err != nil {
						errs <- fmt.Errorf("%s big read: %w", tag, err)
						return
					}
					if !bytes.Equal(data, big) {
						errs <- fmt.Errorf("%s big read corrupted: %d bytes", tag, len(data))
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentUsersOneMount hammers a single shared mount from
// several users concurrently — the shared attribute cache, per-user
// access caches, and authentication tables must all hold up under the
// race detector.
func TestConcurrentUsersOneMount(t *testing.T) {
	w, s, cl := newWorld(t, "stress")
	const users = 4
	for i := 0; i < users; i++ {
		name := fmt.Sprintf("u%d", i)
		if _, err := w.NewUser(cl, s, name, uint32(1000+i), ""); err != nil {
			t.Fatal(err)
		}
		dir := fmt.Sprintf("home/u%d", i)
		if _, err := s.FS.MkdirAll(rootCred(), dir, 0o755); err != nil {
			t.Fatal(err)
		}
		id, _, _ := s.FS.Resolve(rootCred(), dir)
		uid := uint32(1000 + i)
		if _, err := s.FS.SetAttrs(rootCred(), id, vfs.SetAttr{UID: &uid}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FS.WriteFile(rootCred(), "shared.txt", []byte("everyone reads this"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := s.Path.String()
	var wg sync.WaitGroup
	errs := make(chan error, users*40)
	for i := 0; i < users; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			user := fmt.Sprintf("u%d", i)
			home := fmt.Sprintf("%s/home/u%d", base, i)
			for j := 0; j < 10; j++ {
				if _, err := cl.ReadFile(user, base+"/shared.txt"); err != nil {
					errs <- fmt.Errorf("%s read shared: %w", user, err)
					return
				}
				own := fmt.Sprintf("%s/f%d", home, j)
				if err := cl.WriteFile(user, own, []byte(user)); err != nil {
					errs <- fmt.Errorf("%s write: %w", user, err)
					return
				}
				if _, err := cl.Stat(user, own); err != nil {
					errs <- fmt.Errorf("%s stat: %w", user, err)
					return
				}
				if _, err := cl.ReadDir(user, home); err != nil {
					errs <- fmt.Errorf("%s readdir: %w", user, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Cross-check isolation after the storm: each file is owned by
	// its writer.
	for i := 0; i < users; i++ {
		attr, err := cl.Stat("u0", fmt.Sprintf("%s/home/u%d/f0", base, i))
		if err != nil {
			t.Fatal(err)
		}
		if attr.UID != uint32(1000+i) {
			t.Errorf("home/u%d/f0 owned by %d", i, attr.UID)
		}
	}
}
