package client

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/nfs"
)

// File is an open file: a handle plus the authenticated view it was
// opened through. It supports streaming reads and writes at a cursor,
// pipelines sequential reads when the view supports asynchronous RPCs,
// and gathers writes into a write-behind window of unstable WRITEs
// committed in one verifier-checked batch by Sync. All methods are
// safe for concurrent use.
type File struct {
	node *node

	mu     sync.Mutex
	off    uint64
	ra     readahead
	wb     writebehind
	wrote  bool // any write issued; Close then commits
	closed bool
}

// asyncView is the optional view capability that enables read-ahead:
// issuing a READ without waiting for the reply. The NFS client over a
// secure channel implements it; the read-only verifying view does not
// and falls back to serial reads.
type asyncView interface {
	ReadStart(fh nfs.FH, offset uint64, count uint32) (func() ([]byte, bool, error), error)
	ReadAheadDepth() int
}

var _ asyncView = (*nfs.Client)(nil)

// asyncWriteView is the write-side capability: issuing an unstable
// WRITE without waiting for the reply, for the write-behind window.
type asyncWriteView interface {
	WriteStart(fh nfs.FH, offset uint64, data []byte, stable uint32) (func() (uint32, uint64, error), error)
	WriteBehindDepth() int
}

var _ asyncWriteView = (*nfs.Client)(nil)

// readahead is the sequential-read pipeline of one open file: a window
// of outstanding READ futures at consecutive offsets, guarded by the
// File's mutex.
type readahead struct {
	chunk   uint32 // read size the window was built with
	head    uint64 // offset the next popped future was issued at
	issued  uint64 // next offset to issue
	lastEnd uint64 // where the previous read stopped (sequential detector)
	window  []func() ([]byte, bool, error)
}

// drain finishes every outstanding future, discarding results. Futures
// must not be abandoned: each holds a reply slot on the channel.
func (ra *readahead) drain() {
	for _, fin := range ra.window {
		fin() //nolint:errcheck // discarding speculative replies
	}
	ra.window = ra.window[:0]
}

// wireChunk is the transfer size of the write pipeline: the 8 KB the
// paper's large-file benchmark moves per WRITE.
const wireChunk = 8192

// maxCommitRetries bounds the retransmit-and-recommit loop when the
// server keeps rebooting under one Sync.
const maxCommitRetries = 5

// chunkPool recycles write-behind chunk buffers. A chunk lives from
// the WriteAt that copies caller bytes into it until the COMMIT that
// proves those bytes stable (retransmission after a server reboot
// needs the data), then returns here.
var chunkPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, wireChunk)
	return &b
}}

func getChunk() []byte  { return (*chunkPool.Get().(*[]byte))[:0] }
func putChunk(b []byte) { chunkPool.Put(&b) }

// wbWrite is one issued, not yet acknowledged unstable WRITE.
type wbWrite struct {
	fin func() (uint32, uint64, error)
	off uint64
	buf []byte
}

// wbRange is acknowledged unstable data awaiting a verified COMMIT.
type wbRange struct {
	off uint64
	buf []byte
}

// writebehind is the asynchronous write pipeline of one open file:
// caller bytes are copied into pooled wire-sized chunks, issued as
// unstable WRITE futures (at most WriteBehindDepth outstanding), and
// retained on the dirty list until a COMMIT whose verifier matches
// the WRITE replies proves them stable (RFC 1813 §4.8). Guarded by
// the File's mutex.
type writebehind struct {
	buf      []byte    // coalescing buffer, cap wireChunk; nil when unused
	bufOff   uint64    // file offset of buf[0]
	window   []wbWrite // issued, reply not yet awaited — oldest first
	dirty    []wbRange // acknowledged unstable, awaiting verified COMMIT
	verf     uint64    // verifier of the most recent WRITE reply
	verfOK   bool
	mismatch bool  // WRITE replies disagreed: server restarted mid-stream
	err      error // deferred failure for the next WriteAt/Sync/Close
}

func (wb *writebehind) fail(err error) {
	if wb.err == nil {
		wb.err = err
	}
}

// takeErr reports and clears the deferred error.
func (wb *writebehind) takeErr() error {
	err := wb.err
	wb.err = nil
	return err
}

// active reports whether unflushed writes exist that a read or sync
// must push to the server first.
func (wb *writebehind) active() bool {
	return len(wb.buf) > 0 || len(wb.window) > 0
}

// issueChunk sends the coalescing buffer as one unstable WRITE future.
// Only transport-level failures are returned; a server-side rejection
// surfaces later, when the future is retired.
func (f *File) issueChunk(av asyncWriteView) error {
	buf := f.wb.buf
	if len(buf) == 0 {
		return nil
	}
	off := f.wb.bufOff
	f.wb.buf = nil
	// Never two outstanding WRITEs over the same byte range: the
	// server dispatches concurrently and could apply them in either
	// order.
	for _, w := range f.wb.window {
		if off < w.off+uint64(len(w.buf)) && w.off < off+uint64(len(buf)) {
			f.retireAll()
			break
		}
	}
	for len(f.wb.window) >= av.WriteBehindDepth() {
		f.retireOldest()
	}
	fin, err := av.WriteStart(f.node.fh, off, buf, nfs.Unstable)
	if err != nil {
		putChunk(buf)
		return err
	}
	f.wb.window = append(f.wb.window, wbWrite{fin: fin, off: off, buf: buf})
	ios := f.stats()
	ios.wbChunks.Inc()
	ios.wbBytes.Add(uint64(len(buf)))
	ios.wbWindowOcc.Observe(uint64(len(f.wb.window)))
	return nil
}

// retireOldest awaits the oldest outstanding WRITE. A successful chunk
// moves to the dirty list; a failure is latched for the next caller.
func (f *File) retireOldest() {
	w := f.wb.window[0]
	f.wb.window = f.wb.window[1:]
	n, verf, err := w.fin()
	if err == nil && int(n) < len(w.buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		putChunk(w.buf)
		f.wb.fail(err)
		return
	}
	if f.wb.verfOK && verf != f.wb.verf {
		f.wb.mismatch = true
	}
	f.wb.verf, f.wb.verfOK = verf, true
	f.wb.dirty = append(f.wb.dirty, wbRange{off: w.off, buf: w.buf})
}

func (f *File) retireAll() {
	for len(f.wb.window) > 0 {
		f.retireOldest()
	}
}

// flush pushes every buffered and in-flight write to the server and
// waits for the replies, without committing.
func (f *File) flush(av asyncWriteView) error {
	if err := f.issueChunk(av); err != nil {
		return err
	}
	f.retireAll()
	return nil
}

// discard recycles every pipeline buffer: after a COMMIT proved the
// data stable, or on an error path once the failure is reported and
// the pipeline's contents can no longer be guaranteed.
func (f *File) discard() {
	for _, w := range f.wb.window {
		w.fin() //nolint:errcheck // futures hold reply slots
		putChunk(w.buf)
	}
	f.wb.window = f.wb.window[:0]
	for _, r := range f.wb.dirty {
		putChunk(r.buf)
	}
	f.wb.dirty = f.wb.dirty[:0]
	if f.wb.buf != nil {
		putChunk(f.wb.buf)
		f.wb.buf = nil
	}
	f.wb.mismatch = false
	f.wb.verfOK = false
}

// retransmit re-sends every dirty range after a verifier change told
// us the server rebooted and dropped its unstable data.
func (f *File) retransmit(av asyncWriteView) error {
	f.wb.mismatch = false
	f.wb.verfOK = false
	ios := f.stats()
	for _, r := range f.wb.dirty {
		ios.retransOps.Inc()
		ios.retransB.Add(uint64(len(r.buf)))
		fin, err := av.WriteStart(f.node.fh, r.off, r.buf, nfs.Unstable)
		if err != nil {
			return err
		}
		n, verf, err := fin()
		if err == nil && int(n) < len(r.buf) {
			err = io.ErrShortWrite
		}
		if err != nil {
			return err
		}
		if f.wb.verfOK && verf != f.wb.verf {
			f.wb.mismatch = true
		}
		f.wb.verf, f.wb.verfOK = verf, true
	}
	return nil
}

// Stat resolves path (following symbolic links) and returns its
// attributes.
func (c *Client) Stat(user, path string) (nfs.Fattr, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return nfs.Fattr{}, err
	}
	return n.view.GetAttr(n.fh)
}

// Lstat is Stat without following a final symbolic link.
func (c *Client) Lstat(user, path string) (nfs.Fattr, error) {
	n, err := c.resolve(user, path, false, 0)
	if err != nil {
		return nfs.Fattr{}, err
	}
	return n.attr, nil
}

// Open resolves path to an open file.
func (c *Client) Open(user, path string) (*File, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return nil, err
	}
	return &File{node: n}, nil
}

// Access checks permissions on path for user (the ACCESS RPC, served
// from the access cache when enabled).
func (c *Client) Access(user, path string, mode uint32) (uint32, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return 0, err
	}
	return n.view.Access(n.fh, mode)
}

// resolveParent resolves the directory part of path and returns the
// final name component.
func (c *Client) resolveParent(user, path string) (*node, string, error) {
	trimmed := strings.TrimSuffix(path, "/")
	i := strings.LastIndexByte(trimmed, '/')
	if i <= 0 {
		return nil, "", ErrNotSFS
	}
	dir, name := trimmed[:i], trimmed[i+1:]
	if name == "" {
		return nil, "", errors.New("client: empty file name")
	}
	n, err := c.resolve(user, dir, true, 0)
	if err != nil {
		return nil, "", err
	}
	return n, name, nil
}

// Create makes (or truncates) a regular file and returns it open.
func (c *Client) Create(user, path string, mode uint32) (*File, error) {
	dir, name, err := c.resolveParent(user, path)
	if err != nil {
		return nil, err
	}
	fh, attr, err := dir.view.Create(dir.fh, name, mode, false)
	if err != nil {
		return nil, err
	}
	return &File{node: &node{view: dir.view, mount: dir.mount, fh: fh, attr: attr}}, nil
}

// Mkdir creates a directory.
func (c *Client) Mkdir(user, path string, mode uint32) error {
	dir, name, err := c.resolveParent(user, path)
	if err != nil {
		return err
	}
	_, _, err = dir.view.Mkdir(dir.fh, name, mode)
	return err
}

// Symlink creates a symbolic link at path pointing to target. A
// target that is a self-certifying pathname forms a secure link
// (paper §2.4).
func (c *Client) Symlink(user, path, target string) error {
	dir, name, err := c.resolveParent(user, path)
	if err != nil {
		return err
	}
	_, _, err = dir.view.Symlink(dir.fh, name, target)
	return err
}

// ReadLink returns the target of the symbolic link at path.
func (c *Client) ReadLink(user, path string) (string, error) {
	n, err := c.resolve(user, path, false, 0)
	if err != nil {
		return "", err
	}
	if n.attr.Type != nfs.TypeSymlink {
		return "", errors.New("client: not a symbolic link")
	}
	return n.view.Readlink(n.fh)
}

// Remove unlinks a file.
func (c *Client) Remove(user, path string) error {
	dir, name, err := c.resolveParent(user, path)
	if err != nil {
		return err
	}
	return dir.view.Remove(dir.fh, name)
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(user, path string) error {
	dir, name, err := c.resolveParent(user, path)
	if err != nil {
		return err
	}
	return dir.view.Rmdir(dir.fh, name)
}

// Rename moves from to to. Both must resolve into the same mount.
func (c *Client) Rename(user, from, to string) error {
	fromDir, fromName, err := c.resolveParent(user, from)
	if err != nil {
		return err
	}
	toDir, toName, err := c.resolveParent(user, to)
	if err != nil {
		return err
	}
	if fromDir.mount != toDir.mount {
		return errors.New("client: cross-server rename")
	}
	return fromDir.view.Rename(fromDir.fh, fromName, toDir.fh, toName)
}

// readDirPage reports the configured READDIR page size.
func (c *Client) readDirPage() uint32 {
	if c.cfg.ReadDirPage > 0 {
		return uint32(c.cfg.ReadDirPage)
	}
	return 256
}

// ReadDir lists a directory.
func (c *Client) ReadDir(user, path string) ([]nfs.Entry, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return nil, err
	}
	page := c.readDirPage()
	var out []nfs.Entry
	cookie := uint64(0)
	for {
		ents, eof, err := n.view.ReadDir(n.fh, cookie, page)
		if err != nil {
			return nil, err
		}
		out = append(out, ents...)
		if len(ents) > 0 {
			cookie = ents[len(ents)-1].Cookie
		}
		if eof {
			return out, nil
		}
	}
}

// ReadFile returns the entire contents of the file at path.
func (c *Client) ReadFile(user, path string) ([]byte, error) {
	f, err := c.Open(user, path)
	if err != nil {
		return nil, err
	}
	return f.node.view.ReadAll(f.node.fh, 8192)
}

// WriteFile creates path with the given contents. The data is flushed
// to the server (so any handle observes it) but not committed; call
// Sync on an open File for stability.
func (c *Client) WriteFile(user, path string, data []byte) error {
	f, err := c.Create(user, path, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		return err
	}
	return f.Flush()
}

// Truncate sets the file size.
func (c *Client) Truncate(user, path string, size uint64) error {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return err
	}
	_, err = n.view.SetAttr(nfs.SetAttrArgs{FH: n.fh, SetSize: &size})
	return err
}

// Chmod changes permission bits.
func (c *Client) Chmod(user, path string, mode uint32) error {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return err
	}
	_, err = n.view.SetAttr(nfs.SetAttrArgs{FH: n.fh, SetMode: &mode})
	return err
}

// SelfPath returns the full self-certifying pathname of the mount
// containing path — what pwd prints inside an SFS file system, the
// basis of secure bookmarks (paper §2.4).
func (c *Client) SelfPath(user, path string) (string, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return "", err
	}
	return n.mount.path.String(), nil
}

// Stats returns RPC/cache statistics for the mount containing path.
func (c *Client) Stats(user, path string) (nfs.Stats, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return nfs.Stats{}, err
	}
	return n.view.Stats(), nil
}

// Attr returns the attributes the file was opened with.
func (f *File) Attr() nfs.Fattr { return f.node.attr }

// ReadAt reads up to len(p) bytes at offset off. Sequential reads
// through a view that supports asynchronous RPCs are pipelined: a
// window of READs stays in flight so each call usually finds its data
// already on the wire (the paper's Figure 5 workload).
func (f *File) ReadAt(p []byte, off uint64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.readAt(p, off)
}

func (f *File) readAt(p []byte, off uint64) (int, error) {
	// A read must observe every write issued before it; the server
	// dispatches out of order, so wait for in-flight WRITEs first.
	// (Acknowledged dirty data is already applied server-side and
	// need not block reads.)
	if f.wb.active() {
		if av, ok := f.node.view.(asyncWriteView); ok {
			if err := f.flush(av); err != nil {
				return 0, err
			}
			if err := f.wb.takeErr(); err != nil {
				return 0, err
			}
		}
	}
	if av, ok := f.node.view.(asyncView); ok && len(p) > 0 {
		if depth := av.ReadAheadDepth(); depth > 1 {
			return f.readAtPipelined(av, depth, p, off)
		}
	}
	return f.readAtSerial(p, off)
}

func (f *File) readAtSerial(p []byte, off uint64) (int, error) {
	data, eof, err := f.node.view.Read(f.node.fh, off, uint32(len(p)))
	if err != nil {
		return 0, err
	}
	n := copy(p, data)
	f.ra.lastEnd = off + uint64(n)
	if eof && n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *File) readAtPipelined(av asyncView, depth int, p []byte, off uint64) (int, error) {
	count := uint32(len(p))
	ra := &f.ra
	ios := f.stats()
	if len(ra.window) > 0 && (ra.chunk != count || ra.head != off) {
		ra.drain() // request shape changed: speculation is useless
	}
	if len(ra.window) == 0 {
		if off != ra.lastEnd {
			// Non-sequential access: stay serial, but remember the
			// position so a following sequential read starts the pipe.
			ios.raMisses.Inc()
			return f.readAtSerial(p, off)
		}
		// Pipeline startup: this read still pays a full round trip.
		ios.raMisses.Inc()
		ra.chunk, ra.head, ra.issued = count, off, off
	} else {
		ios.raHits.Inc()
	}
	for len(ra.window) < depth {
		fin, err := av.ReadStart(f.node.fh, ra.issued, count)
		if err != nil {
			ra.drain()
			return 0, err
		}
		ra.window = append(ra.window, fin)
		ra.issued += uint64(count)
		ios.raChunks.Inc()
	}
	fin := ra.window[0]
	ra.window = ra.window[1:]
	data, eof, err := fin()
	if err != nil {
		ra.drain()
		return 0, err
	}
	n := copy(p, data)
	ra.head = off + uint64(count)
	ra.lastEnd = off + uint64(n)
	if eof || n < int(count) {
		// Final or short chunk: outstanding speculative READs target
		// offsets the caller will not ask for next.
		ra.drain()
	}
	if eof && n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Read reads from the cursor.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.readAt(p, f.off)
	f.off += uint64(n)
	if n == 0 && err == nil {
		err = io.EOF
	}
	return n, err
}

// WriteAt writes p at offset off (unstable; call Sync for stability).
// Through a view with asynchronous RPCs the write goes behind: p is
// copied into pooled wire-sized chunks — adjacent small writes
// coalesce into full chunks — and up to Config.WriteBehind unstable
// WRITEs ride the channel at once, so the call usually returns before
// the server acknowledges. A deferred RPC failure is reported by the
// next WriteAt, Sync, or Close.
func (f *File) WriteAt(p []byte, off uint64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeAt(p, off)
}

func (f *File) writeAt(p []byte, off uint64) (int, error) {
	f.wrote = true
	// Reads still in the pipeline were issued before this write and
	// could return stale data to a later sequential read.
	f.ra.drain()
	av, ok := f.node.view.(asyncWriteView)
	if !ok || av.WriteBehindDepth() < 1 || len(p) == 0 {
		return f.writeAtSerial(p, off)
	}
	if err := f.wb.takeErr(); err != nil {
		return 0, err
	}
	written := 0
	for written < len(p) {
		o := off + uint64(written)
		if len(f.wb.buf) > 0 && f.wb.bufOff+uint64(len(f.wb.buf)) != o {
			// Non-adjacent write: flush the partial chunk first.
			if err := f.issueChunk(av); err != nil {
				return written, err
			}
		}
		if f.wb.buf == nil {
			f.wb.buf = getChunk()
		}
		if len(f.wb.buf) == 0 {
			f.wb.bufOff = o
		}
		n := wireChunk - len(f.wb.buf)
		if rest := len(p) - written; n > rest {
			n = rest
		}
		f.wb.buf = append(f.wb.buf, p[written:written+n]...)
		written += n
		if len(f.wb.buf) == wireChunk {
			if err := f.issueChunk(av); err != nil {
				return written, err
			}
		}
	}
	if err := f.wb.takeErr(); err != nil {
		return written, err
	}
	return written, nil
}

// writeAtSerial is the synchronous path: views without asynchronous
// RPCs, or write-behind disabled (Config.WriteBehind < 0).
func (f *File) writeAtSerial(p []byte, off uint64) (int, error) {
	const chunk = 32 << 10
	written := 0
	for written < len(p) {
		end := written + chunk
		if end > len(p) {
			end = len(p)
		}
		n, err := f.node.view.Write(f.node.fh, off+uint64(written), p[written:end], nfs.Unstable)
		written += int(n)
		if err != nil {
			return written, err
		}
		if n == 0 {
			// A server acknowledging zero bytes without error would
			// spin this loop forever.
			return written, io.ErrShortWrite
		}
	}
	return written, nil
}

// Write writes at the cursor.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.writeAt(p, f.off)
	f.off += uint64(n)
	return n, err
}

// Seek sets the cursor (whence 0 only).
func (f *File) Seek(off uint64) {
	f.mu.Lock()
	f.off = off
	f.mu.Unlock()
}

// Flush pushes buffered write-behind data to the server and waits for
// the acknowledgments, without forcing stability: a fresh handle then
// observes the data, but only Sync guarantees it survives a server
// reboot.
func (f *File) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	av, ok := f.node.view.(asyncWriteView)
	if !ok {
		return nil
	}
	if err := f.flush(av); err != nil {
		return err
	}
	return f.wb.takeErr()
}

// Sync commits unstable writes to stable storage: outstanding
// write-behind chunks are flushed, then one COMMIT covers the whole
// batch. If the COMMIT's verifier does not match the WRITE replies'
// the server rebooted and lost unstable data, and every dirty range
// is retransmitted before committing again — the same stability
// guarantee the synchronous path gives, paid once per Sync instead of
// per WRITE. A file whose writes still fit the one unsent coalescing
// chunk skips COMMIT entirely: the chunk goes out FILE_SYNC, saving a
// round trip on small-file creates.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sync()
}

func (f *File) sync() error {
	av, _ := f.node.view.(asyncWriteView)
	if av != nil && av.WriteBehindDepth() >= 1 {
		if f.wb.err == nil && len(f.wb.window) == 0 && len(f.wb.dirty) == 0 && len(f.wb.buf) > 0 {
			return f.syncSmall(av)
		}
		if err := f.flush(av); err != nil {
			f.discard()
			return err
		}
	}
	if err := f.wb.takeErr(); err != nil {
		f.discard()
		return err
	}
	for attempt := 0; ; attempt++ {
		verf, err := f.node.view.Commit(f.node.fh)
		if err != nil {
			f.discard()
			return err
		}
		if len(f.wb.dirty) == 0 || (!f.wb.mismatch && verf == f.wb.verf) {
			f.discard()
			return nil
		}
		// Verifier change: the server rebooted since a WRITE was
		// acknowledged, so its unstable data is gone (RFC 1813 §4.8).
		if attempt >= maxCommitRetries {
			f.discard()
			return nfs.Error(nfs.ErrIO)
		}
		if err := f.retransmit(av); err != nil {
			f.discard()
			return err
		}
	}
}

// syncSmall stabilizes a single still-unsent chunk with one FILE_SYNC
// WRITE instead of WRITE + COMMIT.
func (f *File) syncSmall(av asyncWriteView) error {
	buf, off := f.wb.buf, f.wb.bufOff
	f.wb.buf = nil
	f.stats().syncSmall.Inc()
	fin, err := av.WriteStart(f.node.fh, off, buf, nfs.FileSync)
	if err != nil {
		putChunk(buf)
		return err
	}
	n, _, err := fin()
	putChunk(buf)
	if err == nil && int(n) < len(buf) {
		err = io.ErrShortWrite
	}
	return err
}

// Close flushes and commits buffered writes (when the file was
// written to) and releases the read pipeline. Closing again is a
// no-op.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	var err error
	if f.wrote {
		err = f.sync()
	}
	f.ra.drain()
	return err
}

// Chmod changes the open file's permission bits — one RPC on the
// already-resolved handle, like fchmod/fchown on a file descriptor.
func (f *File) Chmod(mode uint32) error {
	_, err := f.node.view.SetAttr(nfs.SetAttrArgs{FH: f.node.fh, SetMode: &mode})
	return err
}

// Chown changes the open file's owner.
func (f *File) Chown(uid uint32) error {
	_, err := f.node.view.SetAttr(nfs.SetAttrArgs{FH: f.node.fh, SetUID: &uid})
	return err
}

// UserName maps a numeric user ID from attributes under path to a
// human-readable name via the libsfs ID-mapping service (paper §3.3).
// Names relative to the remote server are prefixed with "%"; when the
// client's own idea of the ID (Config.LocalUsers) agrees with the
// server's, the percent sign is omitted — e.g. on a LAN where client
// and server share accounts.
func (c *Client) UserName(user, path string, uid uint32) (string, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return "", err
	}
	names, _, err := n.view.IDNames([]uint32{uid}, nil)
	if err != nil {
		return "", err
	}
	remote := names[0]
	if remote == "" {
		return fmt.Sprintf("%d", uid), nil
	}
	if c.cfg.LocalUsers != nil && c.cfg.LocalUsers[uid] == remote {
		return remote, nil
	}
	return "%" + remote, nil
}
