package client

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/nfs"
)

// File is an open file: a handle plus the authenticated view it was
// opened through. It supports streaming reads and writes at a cursor,
// and pipelines sequential reads when the view supports asynchronous
// RPCs.
type File struct {
	node *node
	off  uint64
	ra   readahead
}

// asyncView is the optional view capability that enables read-ahead:
// issuing a READ without waiting for the reply. The NFS client over a
// secure channel implements it; the read-only verifying view does not
// and falls back to serial reads.
type asyncView interface {
	ReadStart(fh nfs.FH, offset uint64, count uint32) (func() ([]byte, bool, error), error)
	ReadAheadDepth() int
}

var _ asyncView = (*nfs.Client)(nil)

// readahead is the sequential-read pipeline of one open file: a window
// of outstanding READ futures at consecutive offsets. A File is not
// safe for concurrent use (it has a cursor), so the state needs no
// locking.
type readahead struct {
	chunk   uint32 // read size the window was built with
	head    uint64 // offset the next popped future was issued at
	issued  uint64 // next offset to issue
	lastEnd uint64 // where the previous read stopped (sequential detector)
	window  []func() ([]byte, bool, error)
}

// drain finishes every outstanding future, discarding results. Futures
// must not be abandoned: each holds a reply slot on the channel.
func (ra *readahead) drain() {
	for _, fin := range ra.window {
		fin() //nolint:errcheck // discarding speculative replies
	}
	ra.window = ra.window[:0]
}

// Stat resolves path (following symbolic links) and returns its
// attributes.
func (c *Client) Stat(user, path string) (nfs.Fattr, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return nfs.Fattr{}, err
	}
	return n.view.GetAttr(n.fh)
}

// Lstat is Stat without following a final symbolic link.
func (c *Client) Lstat(user, path string) (nfs.Fattr, error) {
	n, err := c.resolve(user, path, false, 0)
	if err != nil {
		return nfs.Fattr{}, err
	}
	return n.attr, nil
}

// Open resolves path to an open file.
func (c *Client) Open(user, path string) (*File, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return nil, err
	}
	return &File{node: n}, nil
}

// Access checks permissions on path for user (the ACCESS RPC, served
// from the access cache when enabled).
func (c *Client) Access(user, path string, mode uint32) (uint32, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return 0, err
	}
	return n.view.Access(n.fh, mode)
}

// resolveParent resolves the directory part of path and returns the
// final name component.
func (c *Client) resolveParent(user, path string) (*node, string, error) {
	trimmed := strings.TrimSuffix(path, "/")
	i := strings.LastIndexByte(trimmed, '/')
	if i <= 0 {
		return nil, "", ErrNotSFS
	}
	dir, name := trimmed[:i], trimmed[i+1:]
	if name == "" {
		return nil, "", errors.New("client: empty file name")
	}
	n, err := c.resolve(user, dir, true, 0)
	if err != nil {
		return nil, "", err
	}
	return n, name, nil
}

// Create makes (or truncates) a regular file and returns it open.
func (c *Client) Create(user, path string, mode uint32) (*File, error) {
	dir, name, err := c.resolveParent(user, path)
	if err != nil {
		return nil, err
	}
	fh, attr, err := dir.view.Create(dir.fh, name, mode, false)
	if err != nil {
		return nil, err
	}
	return &File{node: &node{view: dir.view, mount: dir.mount, fh: fh, attr: attr}}, nil
}

// Mkdir creates a directory.
func (c *Client) Mkdir(user, path string, mode uint32) error {
	dir, name, err := c.resolveParent(user, path)
	if err != nil {
		return err
	}
	_, _, err = dir.view.Mkdir(dir.fh, name, mode)
	return err
}

// Symlink creates a symbolic link at path pointing to target. A
// target that is a self-certifying pathname forms a secure link
// (paper §2.4).
func (c *Client) Symlink(user, path, target string) error {
	dir, name, err := c.resolveParent(user, path)
	if err != nil {
		return err
	}
	_, _, err = dir.view.Symlink(dir.fh, name, target)
	return err
}

// ReadLink returns the target of the symbolic link at path.
func (c *Client) ReadLink(user, path string) (string, error) {
	n, err := c.resolve(user, path, false, 0)
	if err != nil {
		return "", err
	}
	if n.attr.Type != nfs.TypeSymlink {
		return "", errors.New("client: not a symbolic link")
	}
	return n.view.Readlink(n.fh)
}

// Remove unlinks a file.
func (c *Client) Remove(user, path string) error {
	dir, name, err := c.resolveParent(user, path)
	if err != nil {
		return err
	}
	return dir.view.Remove(dir.fh, name)
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(user, path string) error {
	dir, name, err := c.resolveParent(user, path)
	if err != nil {
		return err
	}
	return dir.view.Rmdir(dir.fh, name)
}

// Rename moves from to to. Both must resolve into the same mount.
func (c *Client) Rename(user, from, to string) error {
	fromDir, fromName, err := c.resolveParent(user, from)
	if err != nil {
		return err
	}
	toDir, toName, err := c.resolveParent(user, to)
	if err != nil {
		return err
	}
	if fromDir.mount != toDir.mount {
		return errors.New("client: cross-server rename")
	}
	return fromDir.view.Rename(fromDir.fh, fromName, toDir.fh, toName)
}

// ReadDir lists a directory.
func (c *Client) ReadDir(user, path string) ([]nfs.Entry, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return nil, err
	}
	var out []nfs.Entry
	cookie := uint64(0)
	for {
		ents, eof, err := n.view.ReadDir(n.fh, cookie, 256)
		if err != nil {
			return nil, err
		}
		out = append(out, ents...)
		if len(ents) > 0 {
			cookie = ents[len(ents)-1].Cookie
		}
		if eof {
			return out, nil
		}
	}
}

// ReadFile returns the entire contents of the file at path.
func (c *Client) ReadFile(user, path string) ([]byte, error) {
	f, err := c.Open(user, path)
	if err != nil {
		return nil, err
	}
	return f.node.view.ReadAll(f.node.fh, 8192)
}

// WriteFile creates path with the given contents.
func (c *Client) WriteFile(user, path string, data []byte) error {
	f, err := c.Create(user, path, 0o644)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(data, 0)
	return err
}

// Truncate sets the file size.
func (c *Client) Truncate(user, path string, size uint64) error {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return err
	}
	_, err = n.view.SetAttr(nfs.SetAttrArgs{FH: n.fh, SetSize: &size})
	return err
}

// Chmod changes permission bits.
func (c *Client) Chmod(user, path string, mode uint32) error {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return err
	}
	_, err = n.view.SetAttr(nfs.SetAttrArgs{FH: n.fh, SetMode: &mode})
	return err
}

// SelfPath returns the full self-certifying pathname of the mount
// containing path — what pwd prints inside an SFS file system, the
// basis of secure bookmarks (paper §2.4).
func (c *Client) SelfPath(user, path string) (string, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return "", err
	}
	return n.mount.path.String(), nil
}

// Stats returns RPC/cache statistics for the mount containing path.
func (c *Client) Stats(user, path string) (nfs.Stats, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return nfs.Stats{}, err
	}
	return n.view.Stats(), nil
}

// Attr returns the attributes the file was opened with.
func (f *File) Attr() nfs.Fattr { return f.node.attr }

// ReadAt reads up to len(p) bytes at offset off. Sequential reads
// through a view that supports asynchronous RPCs are pipelined: a
// window of READs stays in flight so each call usually finds its data
// already on the wire (the paper's Figure 5 workload).
func (f *File) ReadAt(p []byte, off uint64) (int, error) {
	if av, ok := f.node.view.(asyncView); ok && len(p) > 0 {
		if depth := av.ReadAheadDepth(); depth > 1 {
			return f.readAtPipelined(av, depth, p, off)
		}
	}
	return f.readAtSerial(p, off)
}

func (f *File) readAtSerial(p []byte, off uint64) (int, error) {
	data, eof, err := f.node.view.Read(f.node.fh, off, uint32(len(p)))
	if err != nil {
		return 0, err
	}
	n := copy(p, data)
	f.ra.lastEnd = off + uint64(n)
	if eof && n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *File) readAtPipelined(av asyncView, depth int, p []byte, off uint64) (int, error) {
	count := uint32(len(p))
	ra := &f.ra
	if len(ra.window) > 0 && (ra.chunk != count || ra.head != off) {
		ra.drain() // request shape changed: speculation is useless
	}
	if len(ra.window) == 0 {
		if off != ra.lastEnd {
			// Non-sequential access: stay serial, but remember the
			// position so a following sequential read starts the pipe.
			return f.readAtSerial(p, off)
		}
		ra.chunk, ra.head, ra.issued = count, off, off
	}
	for len(ra.window) < depth {
		fin, err := av.ReadStart(f.node.fh, ra.issued, count)
		if err != nil {
			ra.drain()
			return 0, err
		}
		ra.window = append(ra.window, fin)
		ra.issued += uint64(count)
	}
	fin := ra.window[0]
	ra.window = ra.window[1:]
	data, eof, err := fin()
	if err != nil {
		ra.drain()
		return 0, err
	}
	n := copy(p, data)
	ra.head = off + uint64(count)
	ra.lastEnd = off + uint64(n)
	if eof || n < int(count) {
		// Final or short chunk: outstanding speculative READs target
		// offsets the caller will not ask for next.
		ra.drain()
	}
	if eof && n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Read reads from the cursor.
func (f *File) Read(p []byte) (int, error) {
	n, err := f.ReadAt(p, f.off)
	f.off += uint64(n)
	if n == 0 && err == nil {
		err = io.EOF
	}
	return n, err
}

// WriteAt writes p at offset off (unstable; call Sync for stability).
func (f *File) WriteAt(p []byte, off uint64) (int, error) {
	// Reads still in the pipeline were issued before this write and
	// could return stale data to a later sequential read.
	f.ra.drain()
	const chunk = 32 << 10
	written := 0
	for written < len(p) {
		end := written + chunk
		if end > len(p) {
			end = len(p)
		}
		n, err := f.node.view.Write(f.node.fh, off+uint64(written), p[written:end], nfs.Unstable)
		written += int(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Write writes at the cursor.
func (f *File) Write(p []byte) (int, error) {
	n, err := f.WriteAt(p, f.off)
	f.off += uint64(n)
	return n, err
}

// Seek sets the cursor (whence 0 only).
func (f *File) Seek(off uint64) { f.off = off }

// Sync commits unstable writes to stable storage.
func (f *File) Sync() error { return f.node.view.Commit(f.node.fh) }

// Chmod changes the open file's permission bits — one RPC on the
// already-resolved handle, like fchmod/fchown on a file descriptor.
func (f *File) Chmod(mode uint32) error {
	_, err := f.node.view.SetAttr(nfs.SetAttrArgs{FH: f.node.fh, SetMode: &mode})
	return err
}

// Chown changes the open file's owner.
func (f *File) Chown(uid uint32) error {
	_, err := f.node.view.SetAttr(nfs.SetAttrArgs{FH: f.node.fh, SetUID: &uid})
	return err
}

// UserName maps a numeric user ID from attributes under path to a
// human-readable name via the libsfs ID-mapping service (paper §3.3).
// Names relative to the remote server are prefixed with "%"; when the
// client's own idea of the ID (Config.LocalUsers) agrees with the
// server's, the percent sign is omitted — e.g. on a LAN where client
// and server share accounts.
func (c *Client) UserName(user, path string, uid uint32) (string, error) {
	n, err := c.resolve(user, path, true, 0)
	if err != nil {
		return "", err
	}
	names, _, err := n.view.IDNames([]uint32{uid}, nil)
	if err != nil {
		return "", err
	}
	remote := names[0]
	if remote == "" {
		return fmt.Sprintf("%d", uid), nil
	}
	if c.cfg.LocalUsers != nil && c.cfg.LocalUsers[uid] == remote {
		return remote, nil
	}
	return "%" + remote, nil
}
