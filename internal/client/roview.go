package client

import (
	"crypto/sha1"
	"encoding/binary"

	"repro/internal/nfs"
	"repro/internal/sfsro"
)

// roView adapts the read-only dialect (paper §2.4, §3.2) to the
// client's View interface, so sfscd mounts read-only file systems —
// typically certification authorities replicated on untrusted
// machines — under /sfs exactly like read-write ones. Handles are the
// content hashes of inodes; every fetched byte is verified against
// them, so the view is safe regardless of which replica serves it.
// All mutating operations fail with a read-only file system error.
type roView struct {
	cl *sfsro.Client
}

func newROView(cl *sfsro.Client) *roView { return &roView{cl: cl} }

var _ View = (*roView)(nil)

// rootFH returns the handle of the verified root directory.
func (v *roView) rootFH() nfs.FH { h := v.cl.RootHash(); return h[:] }

func toHash(fh nfs.FH) (sfsro.Hash, error) {
	var h sfsro.Hash
	if len(fh) != sha1.Size {
		return h, nfs.Error(nfs.ErrBadHandle)
	}
	copy(h[:], fh)
	return h, nil
}

// attrOf synthesizes wire attributes for a read-only inode: mode bits
// masked to read/execute, a stable FileID from the hash.
func attrOf(h sfsro.Hash, ino *sfsro.Inode) nfs.Fattr {
	a := nfs.Fattr{
		Type:   uint32(ino.Type),
		Mode:   ino.Mode &^ 0o222, // nothing is writable
		Nlink:  1,
		Size:   ino.Size,
		FileID: binary.BigEndian.Uint64(h[:8]),
	}
	if ino.Type == sfsro.TypeDir {
		a.Mode = 0o555
	}
	if ino.Type == sfsro.TypeSymlink {
		a.Size = uint64(len(ino.Target))
	}
	return a
}

func (v *roView) inode(fh nfs.FH) (sfsro.Hash, *sfsro.Inode, error) {
	h, err := toHash(fh)
	if err != nil {
		return h, nil, err
	}
	ino, err := v.cl.InodeByHash(h)
	if err != nil {
		return h, nil, roErr(err)
	}
	return h, ino, nil
}

func roErr(err error) error {
	switch err {
	case sfsro.ErrNotFound:
		return nfs.Error(nfs.ErrNoEnt)
	case sfsro.ErrVerify:
		return nfs.Error(nfs.ErrIO)
	default:
		return err
	}
}

func (v *roView) GetAttr(fh nfs.FH) (nfs.Fattr, error) {
	h, ino, err := v.inode(fh)
	if err != nil {
		return nfs.Fattr{}, err
	}
	return attrOf(h, ino), nil
}

func (v *roView) Lookup(dir nfs.FH, name string) (nfs.FH, nfs.Fattr, error) {
	_, ino, err := v.inode(dir)
	if err != nil {
		return nil, nfs.Fattr{}, err
	}
	ents, err := v.cl.DirEntries(ino)
	if err != nil {
		return nil, nfs.Fattr{}, roErr(err)
	}
	for _, e := range ents {
		if e.Name == name {
			child, err := v.cl.InodeByHash(e.Inode)
			if err != nil {
				return nil, nfs.Fattr{}, roErr(err)
			}
			return e.Inode[:], attrOf(e.Inode, child), nil
		}
	}
	return nil, nfs.Fattr{}, nfs.Error(nfs.ErrNoEnt)
}

func (v *roView) Access(fh nfs.FH, want uint32) (uint32, error) {
	// Everything readable, nothing writable, directories and
	// executables traversable.
	granted := want & (nfs.AccessRead | nfs.AccessLookup | nfs.AccessExecute)
	return granted, nil
}

func (v *roView) Readlink(fh nfs.FH) (string, error) {
	_, ino, err := v.inode(fh)
	if err != nil {
		return "", err
	}
	if ino.Type != sfsro.TypeSymlink {
		return "", nfs.Error(nfs.ErrInval)
	}
	return ino.Target, nil
}

func (v *roView) Read(fh nfs.FH, offset uint64, count uint32) ([]byte, bool, error) {
	_, ino, err := v.inode(fh)
	if err != nil {
		return nil, false, err
	}
	data, eof, err := v.cl.ReadInodeAt(ino, offset, count)
	if err != nil {
		return nil, false, roErr(err)
	}
	return data, eof, nil
}

func (v *roView) ReadDir(dir nfs.FH, cookie uint64, count uint32) ([]nfs.Entry, bool, error) {
	_, ino, err := v.inode(dir)
	if err != nil {
		return nil, false, err
	}
	ents, err := v.cl.DirEntries(ino)
	if err != nil {
		return nil, false, roErr(err)
	}
	out := make([]nfs.Entry, 0, len(ents))
	for i, e := range ents {
		if uint64(i) < cookie {
			continue
		}
		out = append(out, nfs.Entry{
			FileID: binary.BigEndian.Uint64(e.Inode[:8]),
			Name:   e.Name,
			Cookie: uint64(i) + 1,
			FH:     e.Inode[:],
		})
		if count > 0 && uint32(len(out)) >= count {
			return out, uint64(i+1) == uint64(len(ents)), nil
		}
	}
	return out, true, nil
}

func (v *roView) ReadAll(fh nfs.FH, chunk uint32) ([]byte, error) {
	var out []byte
	var off uint64
	for {
		data, eof, err := v.Read(fh, off, chunk)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		off += uint64(len(data))
		if eof || len(data) == 0 {
			return out, nil
		}
	}
}

func (v *roView) IDNames(uids, gids []uint32) ([]string, []string, error) {
	return nil, nil, nfs.Error(nfs.ErrNotSupp)
}

func (v *roView) Stats() nfs.Stats { return nfs.Stats{} }

// Mutations: a read-only file system.

var errROFS = nfs.Error(nfs.ErrROFS)

func (v *roView) SetAttr(nfs.SetAttrArgs) (nfs.Fattr, error) { return nfs.Fattr{}, errROFS }
func (v *roView) Write(nfs.FH, uint64, []byte, uint32) (uint32, error) {
	return 0, errROFS
}
func (v *roView) Create(nfs.FH, string, uint32, bool) (nfs.FH, nfs.Fattr, error) {
	return nil, nfs.Fattr{}, errROFS
}
func (v *roView) Mkdir(nfs.FH, string, uint32) (nfs.FH, nfs.Fattr, error) {
	return nil, nfs.Fattr{}, errROFS
}
func (v *roView) Symlink(nfs.FH, string, string) (nfs.FH, nfs.Fattr, error) {
	return nil, nfs.Fattr{}, errROFS
}
func (v *roView) Remove(nfs.FH, string) error                 { return errROFS }
func (v *roView) Rmdir(nfs.FH, string) error                  { return errROFS }
func (v *roView) Rename(nfs.FH, string, nfs.FH, string) error { return errROFS }
func (v *roView) Commit(nfs.FH) (uint64, error)               { return 0, nil }
