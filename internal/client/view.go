package client

import (
	"repro/internal/nfs"
)

// View is the file system interface the path walker and the file
// operations drive. The read-write client (*nfs.Client, over a secure
// channel) implements all of it; read-only mounts (the sfsro dialect)
// implement the read side and fail mutations with EROFS-style errors.
type View interface {
	GetAttr(fh nfs.FH) (nfs.Fattr, error)
	Lookup(dir nfs.FH, name string) (nfs.FH, nfs.Fattr, error)
	Access(fh nfs.FH, want uint32) (uint32, error)
	Readlink(fh nfs.FH) (string, error)
	Read(fh nfs.FH, offset uint64, count uint32) ([]byte, bool, error)
	ReadDir(dir nfs.FH, cookie uint64, count uint32) ([]nfs.Entry, bool, error)
	ReadAll(fh nfs.FH, chunk uint32) ([]byte, error)
	IDNames(uids, gids []uint32) ([]string, []string, error)
	Stats() nfs.Stats

	SetAttr(args nfs.SetAttrArgs) (nfs.Fattr, error)
	Write(fh nfs.FH, offset uint64, data []byte, stable uint32) (uint32, error)
	Create(dir nfs.FH, name string, mode uint32, exclusive bool) (nfs.FH, nfs.Fattr, error)
	Mkdir(dir nfs.FH, name string, mode uint32) (nfs.FH, nfs.Fattr, error)
	Symlink(dir nfs.FH, name, target string) (nfs.FH, nfs.Fattr, error)
	Remove(dir nfs.FH, name string) error
	Rmdir(dir nfs.FH, name string) error
	Rename(fromDir nfs.FH, fromName string, toDir nfs.FH, toName string) error
	// Commit flushes unstable writes and returns the server's write
	// verifier (RFC 1813 §4.8); views without unstable state return 0.
	Commit(fh nfs.FH) (uint64, error)
}

// compile-time check: the read-write client satisfies View.
var _ View = (*nfs.Client)(nil)
