package server

import (
	"net"
	"sync"
	"testing"

	"repro/internal/authserv"
	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/nfs"
	"repro/internal/secchan"
	"repro/internal/sunrpc"
	"repro/internal/vfs"
)

var (
	srvKeyOnce sync.Once
	srvKey     *rabin.PrivateKey
	srvUserKey *rabin.PrivateKey
)

func serverKeys(t testing.TB) (*rabin.PrivateKey, *rabin.PrivateKey) {
	t.Helper()
	srvKeyOnce.Do(func() {
		g := prng.NewSeeded([]byte("server-test"))
		var err error
		if srvKey, err = rabin.GenerateKey(g, 768); err != nil {
			t.Fatal(err)
		}
		if srvUserKey, err = rabin.GenerateKey(g, 768); err != nil {
			t.Fatal(err)
		}
	})
	return srvKey, srvUserKey
}

func TestEncCodecRoundTrip(t *testing.T) {
	codec, err := newEncCodec(make([]byte, 20))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []vfs.FileID{1, 2, 1 << 40, ^vfs.FileID(0)} {
		fh := codec.Encode(id)
		if len(fh) != 16 {
			t.Fatalf("handle length %d", len(fh))
		}
		got, err := codec.Decode(fh)
		if err != nil || got != id {
			t.Fatalf("decode(%d): %d %v", id, got, err)
		}
	}
}

func TestEncCodecHandlesNotGuessable(t *testing.T) {
	codec, _ := newEncCodec(make([]byte, 20))
	a := codec.Encode(1)
	b := codec.Encode(2)
	// Consecutive file IDs must not produce near-identical handles.
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 8 {
		t.Fatalf("handles for adjacent IDs share %d/16 bytes", same)
	}
	// A guessed/corrupted handle must be rejected.
	bad := append(nfs.FH(nil), a...)
	bad[3] ^= 0x10
	if _, err := codec.Decode(bad); err == nil {
		t.Fatal("corrupted handle accepted")
	}
	if _, err := codec.Decode(bad[:8]); err == nil {
		t.Fatal("short handle accepted")
	}
	// Different keys produce incompatible handles.
	codec2, _ := newEncCodec(append(make([]byte, 19), 1))
	if _, err := codec2.Decode(a); err == nil {
		t.Fatal("handle decoded under a different key")
	}
}

func TestSeqWindow(t *testing.T) {
	var w seqWindow
	if !w.accept(5) {
		t.Fatal("first seqno rejected")
	}
	if w.accept(5) {
		t.Fatal("replay accepted")
	}
	if !w.accept(6) || !w.accept(8) {
		t.Fatal("forward seqnos rejected")
	}
	if !w.accept(7) {
		t.Fatal("in-window out-of-order seqno rejected")
	}
	if w.accept(7) {
		t.Fatal("out-of-order replay accepted")
	}
	if !w.accept(100) {
		t.Fatal("big jump rejected")
	}
	if w.accept(8) {
		t.Fatal("stale seqno outside window accepted")
	}
	if w.accept(30) {
		t.Fatal("seqno far outside window accepted")
	}
}

func TestSeqWindowBoundary(t *testing.T) {
	var w seqWindow
	w.accept(100)
	if !w.accept(100 - 64) {
		t.Fatal("seqno exactly 64 back rejected")
	}
	if w.accept(100 - 65) {
		t.Fatal("seqno 65 back accepted")
	}
}

func TestServeValidation(t *testing.T) {
	key, _ := serverKeys(t)
	s := New(prng.NewSeeded([]byte("sv")))
	if _, err := s.Serve(ServedConfig{Location: "bad host!", Key: key, FS: vfs.New()}); err == nil {
		t.Fatal("bad location accepted")
	}
	if _, err := s.Serve(ServedConfig{Location: "ok.example.com", FS: vfs.New()}); err == nil {
		t.Fatal("missing key accepted")
	}
	if _, err := s.Serve(ServedConfig{Location: "ok.example.com", Key: key}); err == nil {
		t.Fatal("missing fs accepted")
	}
	p, err := s.Serve(ServedConfig{Location: "ok.example.com", Key: key, FS: vfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if p != core.MakePath("ok.example.com", key.PublicKey.Bytes()) {
		t.Fatal("returned pathname mismatch")
	}
	if _, err := s.Serve(ServedConfig{Location: "ok.example.com", Key: key, FS: vfs.New()}); err == nil {
		t.Fatal("duplicate serve accepted")
	}
	got, err := s.Path("ok.example.com")
	if err != nil || got != p {
		t.Fatalf("Path lookup: %v %v", got, err)
	}
	if _, err := s.Path("nowhere"); err == nil {
		t.Fatal("unknown location resolved")
	}
}

// dialServer handshakes a file-service connection to a test server.
func dialServer(t *testing.T, s *Server, path core.Path, service uint32) (*secchan.Conn, *secchan.Info) {
	t.Helper()
	c1, c2 := net.Pipe()
	go s.HandleConn(&pipeConn{c2})
	rng := prng.NewSeeded([]byte("dial-" + path.Location))
	tempKey, err := rabin.GenerateKey(rng, 768)
	if err != nil {
		t.Fatal(err)
	}
	sec, info, _, err := secchan.ClientHandshake(&pipeConn{c1}, service, path, tempKey, rng)
	if err != nil {
		t.Fatal(err)
	}
	return sec, info
}

// pipeConn adapts net.Pipe ends to net.Conn for HandleConn.
type pipeConn struct{ net.Conn }

func TestRevocationServedAtConnect(t *testing.T) {
	key, _ := serverKeys(t)
	g := prng.NewSeeded([]byte("rv"))
	s := New(g)
	path, err := s.Serve(ServedConfig{Location: "dead.example.com", Key: key, FS: vfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := core.NewRevocation(key, "dead.example.com", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddRevocation(cert); err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	go s.HandleConn(&pipeConn{c2})
	rng := prng.NewSeeded([]byte("rv-client"))
	tempKey, _ := rabin.GenerateKey(rng, 768)
	_, _, gotCert, err := secchan.ClientHandshake(&pipeConn{c1}, secchan.ServiceFile, path, tempKey, rng)
	if err != secchan.ErrRevoked {
		t.Fatalf("got %v, want ErrRevoked", err)
	}
	if gotCert == nil {
		t.Fatal("no certificate returned")
	}
}

func TestForwardingPointerNotServedAtConnect(t *testing.T) {
	key, other := serverKeys(t)
	g := prng.NewSeeded([]byte("fw"))
	s := New(g)
	fwd, err := core.NewForward(key, "moving.example.com",
		core.MakePath("new.example.com", other.PublicKey.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddRevocation(fwd); err == nil {
		t.Fatal("forwarding pointer accepted as connect revocation")
	}
}

func TestUnknownHostIDRejected(t *testing.T) {
	key, other := serverKeys(t)
	s := New(prng.NewSeeded([]byte("uk"))) // serves nothing for this id
	if _, err := s.Serve(ServedConfig{Location: "real.example.com", Key: key, FS: vfs.New()}); err != nil {
		t.Fatal(err)
	}
	bogus := core.MakePath("real.example.com", other.PublicKey.Bytes())
	c1, c2 := net.Pipe()
	go s.HandleConn(&pipeConn{c2})
	rng := prng.NewSeeded([]byte("uk-client"))
	tempKey, _ := rabin.GenerateKey(rng, 768)
	_, _, _, err := secchan.ClientHandshake(&pipeConn{c1}, secchan.ServiceFile, bogus, tempKey, rng)
	if err != secchan.ErrNoSuchFS {
		t.Fatalf("got %v, want ErrNoSuchFS", err)
	}
}

func TestLoginWithoutAuthserverSaysNo(t *testing.T) {
	key, _ := serverKeys(t)
	s := New(prng.NewSeeded([]byte("na")))
	path, err := s.Serve(ServedConfig{Location: "anon.example.com", Key: key, FS: vfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	sec, _ := dialServer(t, s, path, secchan.ServiceFile)
	cl := sunrpc.NewClient(sec)
	defer cl.Close()
	var res loginRes
	err = cl.Call(344442, 1, 1, sunrpc.NoAuth(), loginArgs{SeqNo: 1, AuthMsg: []byte{}}, &res)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 2 { // LoginNo
		t.Fatalf("status %d, want LoginNo", res.Status)
	}
}

type loginArgs struct {
	SeqNo   uint32
	AuthMsg []byte
}

type loginRes struct {
	Status uint32
	AuthNo uint32
}

func TestExtensionDispatch(t *testing.T) {
	key, _ := serverKeys(t)
	s := New(prng.NewSeeded([]byte("ext")))
	path, err := s.Serve(ServedConfig{Location: "ext.example.com", Key: key, FS: vfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	hit := make(chan uint32, 1)
	s.RegisterExtension(42, func(conn net.Conn, req *secchan.ConnectRequest) {
		hit <- req.Service
		secchan.RejectNoSuchFS(conn) //nolint:errcheck
		conn.Close()
	})
	c1, c2 := net.Pipe()
	go s.HandleConn(&pipeConn{c2})
	rng := prng.NewSeeded([]byte("ext-client"))
	tempKey, _ := rabin.GenerateKey(rng, 768)
	_, _, _, err = secchan.ClientHandshake(&pipeConn{c1}, 42, path, tempKey, rng)
	if err != secchan.ErrNoSuchFS {
		t.Fatalf("extension path: %v", err)
	}
	if got := <-hit; got != 42 {
		t.Fatalf("extension saw service %d", got)
	}
}

func TestAuthServiceOverConnection(t *testing.T) {
	key, userKey := serverKeys(t)
	g := prng.NewSeeded([]byte("auth-conn"))
	fsys := vfs.New()
	path := core.MakePath("files.example.com", key.PublicKey.Bytes())
	auth := authserv.New(path.String(), g)
	db := authserv.NewDB("local", true)
	auth.AddDB(db)
	if err := auth.Register(db, "dm", 1000, []uint32{1000}, authserv.RegisterOptions{
		Password: "pw", PrivateKey: userKey, EksCost: 4,
	}); err != nil {
		t.Fatal(err)
	}
	s := New(g)
	if _, err := s.Serve(ServedConfig{Location: "files.example.com", Key: key, FS: fsys, Auth: auth}); err != nil {
		t.Fatal(err)
	}
	sec, _ := dialServer(t, s, path, secchan.ServiceAuth)
	cl := sunrpc.NewClient(sec)
	defer cl.Close()
	res, err := authserv.FetchWithPassword(cl, "dm", "pw", prng.NewSeeded([]byte("fetch")))
	if err != nil {
		t.Fatal(err)
	}
	if res.SelfPath != path.String() {
		t.Fatalf("self path %q", res.SelfPath)
	}
}
