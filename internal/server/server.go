// Package server implements the SFS server side: the server master
// (sfssd) that accepts connections and dispatches them by service and
// self-certifying pathname, and the read-write file server that tags
// requests with credentials and relays them to the substrate file
// system (paper §3.2, §3.3).
//
// A single server master can serve multiple file systems, each under
// its own (Location, HostID) pair, alongside their authservers. For
// each incoming connection it reads the clear-text connect request,
// answers with a revocation certificate if one is installed for the
// requested HostID, completes the key-negotiation handshake otherwise,
// and hands the resulting secure channel to the subsystem selected by
// the request: the file service, the authserver key service, or any
// registered protocol extension (such as the read-only dialect) —
// "one can add new file system protocols to SFS without changing any
// of the existing software".
package server

import (
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/authserv"
	"repro/internal/core"
	"repro/internal/crypto/blowfish"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/nfs"
	"repro/internal/secchan"
	"repro/internal/sfsrpc"
	"repro/internal/stats"
	"repro/internal/sunrpc"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// encCodec hardens NFS file handles: it adds redundancy to the file ID
// and encrypts the result with Blowfish in CBC mode under a 20-byte
// key (paper §3.3). SFS handles are public — anonymous clients see
// them — so unlike plain NFS handles they must not be guessable.
type encCodec struct {
	ciph *blowfish.Cipher
}

func newEncCodec(key []byte) (*encCodec, error) {
	c, err := blowfish.New(key)
	if err != nil {
		return nil, err
	}
	return &encCodec{ciph: c}, nil
}

// Encode produces a 16-byte handle: CBC(fileID || check) where check
// is derived from the file ID, giving decode a redundancy test.
func (c *encCodec) Encode(id vfs.FileID) nfs.FH {
	var plain [16]byte
	binary.BigEndian.PutUint64(plain[:8], uint64(id))
	h := sha1.Sum(append([]byte("fh-check"), plain[:8]...))
	copy(plain[8:], h[:8])
	ct, err := c.ciph.EncryptCBC(plain[:])
	if err != nil {
		panic("server: CBC on aligned block failed: " + err.Error())
	}
	return ct
}

// Decode inverts Encode, rejecting handles whose redundancy does not
// check — guessed or corrupted handles.
func (c *encCodec) Decode(fh nfs.FH) (vfs.FileID, error) {
	if len(fh) != 16 {
		return 0, errors.New("server: bad handle length")
	}
	plain, err := c.ciph.DecryptCBC(fh)
	if err != nil {
		return 0, err
	}
	h := sha1.Sum(append([]byte("fh-check"), plain[:8]...))
	for i := 0; i < 8; i++ {
		if plain[8+i] != h[i] {
			return 0, errors.New("server: handle redundancy check failed")
		}
	}
	return vfs.FileID(binary.BigEndian.Uint64(plain[:8])), nil
}

// ServedConfig describes one file system to serve.
type ServedConfig struct {
	// Location is the server's DNS name or address as it appears in
	// self-certifying pathnames.
	Location string
	// Key is the server's long-lived private key.
	Key *rabin.PrivateKey
	// FS is the substrate file system.
	FS *vfs.FS
	// Auth validates user-authentication requests. Nil serves the
	// file system anonymously only.
	Auth *authserv.Server
	// LeaseMS is the attribute lease granted to clients
	// (0 disables the SFS caching extensions).
	LeaseMS uint32
	// AnonUID/AnonGID map anonymous access; zero values use
	// the substrate's nobody IDs.
	AnonCred *vfs.Cred
	// TraceSpans > 0 enables per-RPC stage tracing with an xid-tagged
	// span ring of this capacity.
	TraceSpans int
	// TraceSlow also enables tracing (with a default-sized ring when
	// TraceSpans is 0) and logs a one-line stage waterfall through the
	// master's logger for every RPC slower than this.
	TraceSlow time.Duration
}

// servedFS is one registered file system.
type servedFS struct {
	cfg  ServedConfig
	path core.Path
	nfss *nfs.Server
	anon vfs.Cred
}

// ExtensionHandler serves a non-file, non-auth service. It receives
// the raw connection right after the clear-text connect request so
// dialects that need no key negotiation (like the read-only protocol,
// whose replicas hold no private key) can run their own exchange. The
// handler owns the connection.
type ExtensionHandler func(conn net.Conn, req *secchan.ConnectRequest)

// Server is the server master.
type Server struct {
	rng *prng.Generator
	met masterMetrics

	// Negotiation pool (DESIGN.md §14): full handshakes — the ones
	// that cost a Rabin decrypt — run on hsSlots; hsInFlight counts
	// holders plus queued waiters for the admission bound. Resumed
	// handshakes bypass the pool entirely. The policy is fixed once
	// the master starts accepting connections.
	hsSlots    chan struct{}
	hsInFlight atomic.Int64
	hsWorkers  int
	hsBacklog  int
	hsTimeout  time.Duration
	resume     *secchan.ResumeCache

	logMu sync.Mutex
	logf  Logf

	mu     sync.RWMutex
	byHost map[core.HostID]*servedFS
	revs   map[core.HostID]*core.PathRevoke
	exts   map[uint32]ExtensionHandler
}

// HandshakePolicy tunes connection admission (sfssd's knobs).
type HandshakePolicy struct {
	// Workers bounds concurrent full key negotiations (the Rabin
	// decrypts). 0 selects NumCPU.
	Workers int
	// Backlog bounds connections queued for a worker beyond the pool;
	// arrivals past workers+backlog are fast-rejected with a busy
	// status. 0 selects 16×workers; negative allows no queue.
	Backlog int
	// Timeout is the per-connection negotiation deadline: a peer that
	// stalls mid-handshake is cut off and its pool slot freed. 0
	// disables the deadline.
	Timeout time.Duration
	// ResumeCacheBytes budgets the session-resumption cache. 0 selects
	// 1 MiB; negative disables resumption.
	ResumeCacheBytes int64
	// ResumeTTL bounds a cached session's lifetime. 0 selects 1 hour.
	ResumeTTL time.Duration
}

// SetHandshakePolicy replaces the admission policy. Call before the
// master starts accepting connections.
func (s *Server) SetHandshakePolicy(p HandshakePolicy) {
	if p.Workers <= 0 {
		p.Workers = runtime.NumCPU()
	}
	switch {
	case p.Backlog == 0:
		p.Backlog = 16 * p.Workers
	case p.Backlog < 0:
		p.Backlog = 0
	}
	s.hsWorkers = p.Workers
	s.hsBacklog = p.Backlog
	s.hsTimeout = p.Timeout
	s.hsSlots = make(chan struct{}, p.Workers)
	if p.ResumeCacheBytes < 0 {
		s.resume = nil
	} else {
		s.resume = secchan.NewResumeCache(p.ResumeCacheBytes, p.ResumeTTL)
	}
}

// New creates an empty server master with the default handshake
// policy (NumCPU negotiation workers, 16× backlog, no deadline,
// 1 MiB resumption cache).
func New(rng *prng.Generator) *Server {
	if rng == nil {
		rng = prng.New()
	}
	s := &Server{
		rng:    rng,
		byHost: make(map[core.HostID]*servedFS),
		revs:   make(map[core.HostID]*core.PathRevoke),
		exts:   make(map[uint32]ExtensionHandler),
	}
	s.SetHandshakePolicy(HandshakePolicy{})
	return s
}

// Serve registers a file system and returns its self-certifying
// pathname. Anyone with a domain name and a key pair can do this —
// no authority need be consulted (paper §2.1.3).
func (s *Server) Serve(cfg ServedConfig) (core.Path, error) {
	if err := core.ValidateLocation(cfg.Location); err != nil {
		return core.Path{}, err
	}
	if cfg.Key == nil || cfg.FS == nil {
		return core.Path{}, errors.New("server: config requires a key and a file system")
	}
	path := core.MakePath(cfg.Location, cfg.Key.PublicKey.Bytes())
	// The file-handle key is derived from the server's private key
	// so handles stay stable across restarts.
	fhKeyD := sha1.Sum(append([]byte("fh-key"), cfg.Key.PrivateBytes()...))
	codec, err := newEncCodec(fhKeyD[:])
	if err != nil {
		return core.Path{}, err
	}
	anon := vfs.Anonymous
	if cfg.AnonCred != nil {
		anon = *cfg.AnonCred
	}
	sfs := &servedFS{cfg: cfg, path: path, anon: anon}
	nfsCfg := nfs.ServerConfig{
		LeaseMS:    cfg.LeaseMS,
		Callbacks:  cfg.LeaseMS > 0,
		Codec:      codec,
		Creds:      func(sunrpc.OpaqueAuth) vfs.Cred { return anon },
		TraceSpans: cfg.TraceSpans,
	}
	if cfg.Auth != nil {
		nfsCfg.IDNames = cfg.Auth.NameOfID
	}
	sfs.nfss = nfs.NewServer(cfg.FS, nfsCfg)
	if cfg.TraceSpans > 0 || cfg.TraceSlow > 0 {
		ring := sfs.nfss.RPCMetrics().Trace
		ring.SetEnabled(true)
		if cfg.TraceSlow > 0 {
			loc := cfg.Location
			ring.SetSlowLog(cfg.TraceSlow, func(sp stats.Span) {
				s.logConn("slow rpc: location=%s proc=%s xid=%d principal=%d bytes=%d total=%dus %s",
					loc, nfs.ProcName(sp.Proc), sp.XID, sp.Principal, sp.Bytes, sp.DurUS, sp.Waterfall())
			})
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byHost[path.HostID]; dup {
		return core.Path{}, errors.New("server: file system already served")
	}
	s.byHost[path.HostID] = sfs
	return path, nil
}

// AddRevocation installs a revocation certificate the server will
// answer connects with — an unreliable but fast way to get the word
// out about a revoked pathname (paper §2.6).
func (s *Server) AddRevocation(cert *core.PathRevoke) error {
	id, err := cert.Verify()
	if err != nil {
		return err
	}
	if !cert.IsRevocation() {
		return errors.New("server: only revocations are served at connect")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revs[id] = cert
	return nil
}

// RegisterExtension installs a handler for an additional service
// number, e.g. the read-only dialect.
func (s *Server) RegisterExtension(service uint32, h ExtensionHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exts[service] = h
}

// ListenAndServe accepts connections until the listener closes.
func (s *Server) ListenAndServe(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.HandleConn(conn)
	}
}

// HandleConn runs the connect protocol on one raw connection and
// hands it to the selected subsystem. The connection is wrapped to
// meter bytes both ways, and a single structured log line is emitted
// at accept and at close (whichever subsystem ends up closing it).
//
// Admission control: resumption hellos are answered inline (no
// public-key work), while full handshakes must win a negotiation-pool
// slot — arrivals beyond the pool and its backlog are shed with a
// busy status, so a cold-connect storm degrades to queuing latency
// plus fast rejects instead of unbounded goroutines doing Rabin
// decrypts. A configurable deadline covers the whole negotiation so a
// stalled peer cannot pin a slot.
func (s *Server) HandleConn(rawConn net.Conn) {
	start := time.Now()
	s.met.accepts.Inc()
	s.met.active.Inc()
	peer := "?"
	if a := rawConn.RemoteAddr(); a != nil {
		peer = a.String()
	}
	dialect := "connect" // refined once the request is parsed
	cc := &countingConn{Conn: rawConn}
	cc.onClose = func(in, out uint64) {
		s.met.active.Dec()
		s.logConn("close peer=%s dialect=%s dur=%s in=%d out=%d",
			peer, dialect, durRound(time.Since(start)), in, out)
	}
	var conn net.Conn = cc
	if sw, ok := rawConn.(sunrpc.SegmentWriter); ok {
		conn = &countingSegConn{countingConn: cc, sw: sw}
	}
	s.armDeadline(conn)
	hello, err := secchan.ReadHello(conn)
	if err != nil {
		s.noteHSError(err)
		conn.Close()
		return
	}

	var req *secchan.ConnectRequest
	var sec *secchan.Conn
	var info *secchan.Info
	service := uint32(0)
	if r := hello.Resume; r != nil {
		dialect = serviceName(r.Service) + "-resume"
		s.logConn("accept peer=%s dialect=%s location=%s", peer, dialect, r.Location)
		var hostID core.HostID
		copy(hostID[:], r.HostID[:])
		s.mu.RLock()
		rev := s.revs[hostID]
		sfs := s.byHost[hostID]
		s.mu.RUnlock()
		resumable := rev == nil && sfs != nil && sfs.path.Location == r.Location &&
			(r.Service == secchan.ServiceFile || r.Service == secchan.ServiceAuth)
		if !resumable {
			// Deny without tipping state: the fallback SFS_CONNECT gets
			// the real answer (revocation certificate, nosuch, ...).
			if err := secchan.RejectResume(conn); err != nil {
				s.noteHSError(err)
				conn.Close()
				return
			}
			s.met.hsResumeMiss.Inc()
		} else {
			c, i, hit, err := secchan.AcceptResume(conn, r, s.resume, s.rng)
			if err != nil {
				s.noteHSError(err)
				s.met.hsFails.Inc()
				conn.Close()
				return
			}
			if hit {
				s.met.hsResumed.Inc()
				sec, info, service = c, i, r.Service
				s.recordHSSpan(0, time.Since(start))
			} else {
				s.met.hsResumeMiss.Inc()
			}
		}
		if sec == nil {
			// The client falls back to a full handshake on this same
			// connection.
			req, err = secchan.ReadConnect(conn)
			if err != nil {
				s.noteHSError(err)
				conn.Close()
				return
			}
		}
	} else {
		req = hello.Connect
		dialect = serviceName(req.Service)
		s.logConn("accept peer=%s dialect=%s location=%s", peer, dialect, req.Location)
	}

	if sec == nil {
		service = req.Service
		var hostID core.HostID
		copy(hostID[:], req.HostID[:])
		s.mu.RLock()
		rev := s.revs[hostID]
		sfs := s.byHost[hostID]
		ext := s.exts[req.Service]
		s.mu.RUnlock()
		if rev != nil {
			s.met.rejRevoked.Inc()
			secchan.RejectRevoked(conn, rev) //nolint:errcheck
			conn.Close()
			return
		}
		if ext != nil {
			// Protocol extensions (e.g. the read-only dialect) own the
			// connection from here; they run their own exchange.
			s.met.extConns.Inc()
			conn.SetDeadline(time.Time{}) //nolint:errcheck
			ext(conn, req)
			return
		}
		if sfs == nil || sfs.path.Location != req.Location {
			s.met.rejNoFS.Inc()
			secchan.RejectNoSuchFS(conn) //nolint:errcheck
			conn.Close()
			return
		}
		// Full key negotiation: one pool slot, deadline re-armed so
		// time spent queued is not charged against the handshake.
		queueWait, ok := s.acquireHS()
		if !ok {
			s.met.rejBusy.Inc()
			secchan.RejectBusy(conn) //nolint:errcheck
			conn.Close()
			return
		}
		s.armDeadline(conn)
		cryptoT0 := time.Now()
		sec, info, err = secchan.ServerHandshakeSession(conn, req, sfs.cfg.Key, s.rng, s.resume)
		s.releaseHS()
		if err != nil {
			s.noteHSError(err)
			s.met.hsFails.Inc()
			conn.Close()
			return
		}
		s.met.hsFull.Inc()
		s.recordHSSpan(queueWait, time.Since(cryptoT0))
	}

	conn.SetDeadline(time.Time{}) //nolint:errcheck
	s.mu.RLock()
	sfs := s.byHost[info.HostID]
	s.mu.RUnlock()
	if sfs == nil {
		sec.Close()
		return
	}
	switch service {
	case secchan.ServiceFile:
		s.serveFile(sec, info, sfs)
	case secchan.ServiceAuth:
		s.serveAuth(sec, sfs)
	default:
		sec.Close()
	}
}

// armDeadline (re)starts the negotiation deadline on conn.
func (s *Server) armDeadline(conn net.Conn) {
	if s.hsTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.hsTimeout)) //nolint:errcheck
	}
}

// noteHSError counts a negotiation failure caused by the handshake
// deadline expiring.
func (s *Server) noteHSError(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.met.hsTimeouts.Inc()
	}
}

// acquireHS admits a full handshake to the negotiation pool, blocking
// for a slot while the backlog allows it. It reports the time spent
// queued and whether admission succeeded; a false return means the
// caller must fast-reject.
func (s *Server) acquireHS() (time.Duration, bool) {
	if n := s.hsInFlight.Add(1); n > int64(s.hsWorkers+s.hsBacklog) {
		s.hsInFlight.Add(-1)
		return 0, false
	}
	select {
	case s.hsSlots <- struct{}{}:
		return 0, true
	default:
	}
	s.met.hsQueue.Inc()
	t0 := time.Now()
	s.hsSlots <- struct{}{}
	s.met.hsQueue.Dec()
	return time.Since(t0), true
}

// releaseHS returns a negotiation-pool slot.
func (s *Server) releaseHS() {
	<-s.hsSlots
	s.hsInFlight.Add(-1)
}

// seqWindow tracks which sequence numbers have appeared in a session,
// accepting out-of-order numbers within a reasonable window (paper
// §3.1.2 footnote 4) while rejecting replays.
type seqWindow struct {
	highest uint32
	recent  uint64 // bitmask of highest-1 .. highest-64
	started bool
}

// accept reports whether seq is fresh, and records it.
func (w *seqWindow) accept(seq uint32) bool {
	if !w.started {
		w.started = true
		w.highest = seq
		return true
	}
	switch {
	case seq == w.highest:
		return false
	case seq > w.highest:
		shift := seq - w.highest
		if shift >= 64 {
			w.recent = 0
		} else {
			w.recent = w.recent<<shift | 1<<(shift-1)
		}
		w.highest = seq
		return true
	default:
		back := w.highest - seq
		if back > 64 {
			return false // outside the window
		}
		bit := uint64(1) << (back - 1)
		if w.recent&bit != 0 {
			return false
		}
		w.recent |= bit
		return true
	}
}

// serveFile serves the read-write file protocol plus the user-
// authentication service on one secure channel.
func (s *Server) serveFile(sec *secchan.Conn, info *secchan.Info, sfs *servedFS) {
	authInfo := sfsrpc.NewAuthInfo(info.Location, info.HostID, info.SessionID)
	wantAuthID := authInfo.AuthID()

	var mu sync.Mutex
	authNos := map[uint32]vfs.Cred{}
	nextAuthNo := uint32(1)
	var seqs seqWindow

	sess := sfs.nfss.ServeConnWith(sec, func(rpc *sunrpc.Server, sess *nfs.Session) {
		// Credential tagging: the server, not the client, decides
		// what a given authentication number means.
		sess.SetCreds(func(a sunrpc.OpaqueAuth) vfs.Cred {
			no := sunrpc.AuthNumber(a)
			if no == 0 {
				return sfs.anon
			}
			mu.Lock()
			defer mu.Unlock()
			if c, ok := authNos[no]; ok {
				return c
			}
			return sfs.anon
		})
		rpc.Register(sfsrpc.AuthProgram, sfsrpc.Version, func(proc uint32, _ sunrpc.OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
			if proc != sfsrpc.ProcLogin {
				return nil, sunrpc.ErrProcUnavail
			}
			var la sfsrpc.LoginArgs
			if err := args.Decode(&la); err != nil {
				return nil, sunrpc.ErrGarbageArgs
			}
			s.met.logins.Inc()
			if sfs.cfg.Auth == nil {
				s.met.loginFails.Inc()
				return sfsrpc.LoginRes{Status: sfsrpc.LoginNo}, nil
			}
			res := sfs.cfg.Auth.Validate(sfsrpc.ValidateArgs{
				AuthInfo: authInfo, SeqNo: la.SeqNo, AuthMsg: la.AuthMsg,
			})
			if !res.OK {
				s.met.loginFails.Inc()
				return sfsrpc.LoginRes{Status: sfsrpc.LoginAgain}, nil
			}
			// The server itself re-checks what the authserver
			// echoes: the AuthID must match this session and the
			// sequence number must be fresh (paper §3.1.2).
			if res.AuthID != wantAuthID {
				s.met.loginFails.Inc()
				return sfsrpc.LoginRes{Status: sfsrpc.LoginAgain}, nil
			}
			mu.Lock()
			defer mu.Unlock()
			if !seqs.accept(res.SeqNo) {
				s.met.seqReplays.Inc()
				s.met.loginFails.Inc()
				return sfsrpc.LoginRes{Status: sfsrpc.LoginAgain}, nil
			}
			no := nextAuthNo
			nextAuthNo++
			authNos[no] = vfs.Cred{UID: res.Creds.UID, GIDs: res.Creds.GIDs}
			s.met.loginOK.Inc()
			return sfsrpc.LoginRes{Status: sfsrpc.LoginOK, AuthNo: no}, nil
		})
	})
	// Close the channel when the session dies, so the byte accounting
	// and close log fire even when the peer vanishes.
	go func() {
		<-sess.Done()
		sec.Close()
	}()
}

// serveAuth serves the sfskey management service (SRP password login
// and key fetch) on a secure channel.
func (s *Server) serveAuth(sec *secchan.Conn, sfs *servedFS) {
	if sfs.cfg.Auth == nil {
		sec.Close()
		return
	}
	rpc := sunrpc.NewServer()
	rpc.Register(sfsrpc.KeyProgram, sfsrpc.Version, sfs.cfg.Auth.KeyServiceHandler())
	go func() {
		rpc.ServeConn(sec) //nolint:errcheck
		sec.Close()        // fire the byte accounting / close log
	}()
}

// Path returns the self-certifying pathname of a served location, for
// convenience in tests and tools.
func (s *Server) Path(location string) (core.Path, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sfs := range s.byHost {
		if sfs.path.Location == location {
			return sfs.path, nil
		}
	}
	return core.Path{}, fmt.Errorf("server: location %q not served", location)
}
