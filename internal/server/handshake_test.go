package server

// Session-establishment tests (DESIGN.md §14): resumption through the
// master's front door, admission-control fast-rejects, the negotiation
// deadline freeing pool slots, resume-after-restart fallback, and a
// concurrent storm mixing full and resumed handshakes (a -race
// target — see tools_test.go).

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/secchan"
	"repro/internal/vfs"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// dialResume reconnects to a test server presenting a resumption
// ticket; the server decides hit or fallback.
func dialResume(t *testing.T, s *Server, path core.Path, service uint32, ticket *secchan.ResumeTicket) (*secchan.Conn, *secchan.Info) {
	t.Helper()
	c1, c2 := net.Pipe()
	go s.HandleConn(&pipeConn{c2})
	rng := prng.NewSeeded([]byte("redial-" + path.Location))
	tempKey, err := rabin.GenerateKey(rng, 768)
	if err != nil {
		t.Fatal(err)
	}
	sec, info, _, err := secchan.ClientHandshakeResume(&pipeConn{c1}, service, path, tempKey, rng, ticket)
	if err != nil {
		t.Fatal(err)
	}
	return sec, info
}

func TestResumeReconnectThroughMaster(t *testing.T) {
	key, _ := serverKeys(t)
	s := New(prng.NewSeeded([]byte("resume-master")))
	path, err := s.Serve(ServedConfig{Location: "resume.example.com", Key: key, FS: vfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	sec, info := dialServer(t, s, path, secchan.ServiceFile)
	if info.Ticket == nil {
		t.Fatal("full handshake minted no resumption ticket")
	}
	sec.Close()
	// The server caches the session just after its final handshake
	// write; an instant reconnect could miss (and harmlessly fall back),
	// but this test wants the hit path.
	waitFor(t, "ticket cached", func() bool { return s.resume.Stats().Entries == 1 })

	// Reconnect by resumption: zero Rabin decrypts, counted as resumed.
	rabin0 := secchan.RabinDecrypts()
	sec2, info2 := dialResume(t, s, path, secchan.ServiceFile, info.Ticket)
	defer sec2.Close()
	if d := secchan.RabinDecrypts() - rabin0; d != 0 {
		t.Fatalf("resumed reconnect performed %d Rabin decrypts, want 0", d)
	}
	if info2.SessionID == info.SessionID {
		t.Fatal("resumed session reused the old session ID")
	}
	if info2.Ticket == nil || info2.Ticket.SessionID() == info.Ticket.SessionID() {
		t.Fatal("resumed session did not mint a fresh ticket")
	}
	waitFor(t, "resumed counter", func() bool { return s.met.hsResumed.Load() == 1 })
	if got := s.met.hsFull.Load(); got != 1 {
		t.Fatalf("full handshakes %d, want 1", got)
	}
}

func TestResumeRevokedFallsBackToCertificate(t *testing.T) {
	key, _ := serverKeys(t)
	g := prng.NewSeeded([]byte("resume-rev"))
	s := New(g)
	path, err := s.Serve(ServedConfig{Location: "gone.example.com", Key: key, FS: vfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	_, info := dialServer(t, s, path, secchan.ServiceFile)
	cert, err := core.NewRevocation(key, "gone.example.com", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddRevocation(cert); err != nil {
		t.Fatal(err)
	}
	// The resume is denied without explanation; the fallback connect on
	// the same connection delivers the actual revocation certificate.
	c1, c2 := net.Pipe()
	go s.HandleConn(&pipeConn{c2})
	rng := prng.NewSeeded([]byte("resume-rev-client"))
	tempKey, _ := rabin.GenerateKey(rng, 768)
	_, _, gotCert, err := secchan.ClientHandshakeResume(&pipeConn{c1}, secchan.ServiceFile, path, tempKey, rng, info.Ticket)
	if err != secchan.ErrRevoked {
		t.Fatalf("got %v, want ErrRevoked", err)
	}
	if gotCert == nil {
		t.Fatal("no revocation certificate on the fallback path")
	}
}

func TestResumeAfterRestartFallsBack(t *testing.T) {
	key, _ := serverKeys(t)
	s1 := New(prng.NewSeeded([]byte("gen-one")))
	path, err := s1.Serve(ServedConfig{Location: "reboot.example.com", Key: key, FS: vfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	_, info := dialServer(t, s1, path, secchan.ServiceFile)

	// "Restart": a fresh master with the same key has an empty
	// resumption cache, so the ticket misses and the client completes a
	// full handshake on the same connection.
	s2 := New(prng.NewSeeded([]byte("gen-two")))
	if _, err := s2.Serve(ServedConfig{Location: "reboot.example.com", Key: key, FS: vfs.New()}); err != nil {
		t.Fatal(err)
	}
	sec, info2 := dialResume(t, s2, path, secchan.ServiceFile, info.Ticket)
	defer sec.Close()
	if info2.Ticket == nil {
		t.Fatal("fallback handshake minted no new ticket")
	}
	waitFor(t, "restart counters", func() bool {
		return s2.met.hsResumeMiss.Load() == 1 && s2.met.hsFull.Load() == 1
	})
	if got := s2.met.hsResumed.Load(); got != 0 {
		t.Fatalf("resumed %d sessions against an empty cache", got)
	}
}

// stallConn lets writes through but blocks every read until released,
// so a handshake wedges at a protocol-chosen point.
type stallConn struct {
	net.Conn
	unblock chan struct{}
}

func (c *stallConn) Read(p []byte) (int, error) {
	<-c.unblock
	return 0, io.EOF
}

func TestPoolSaturationFastRejects(t *testing.T) {
	key, _ := serverKeys(t)
	s := New(prng.NewSeeded([]byte("busy")))
	s.SetHandshakePolicy(HandshakePolicy{Workers: 1, Backlog: -1})
	path, err := s.Serve(ServedConfig{Location: "busy.example.com", Key: key, FS: vfs.New()})
	if err != nil {
		t.Fatal(err)
	}

	// First connection: sends its connect request, then never reads, so
	// the server wedges mid-negotiation holding the only pool slot.
	c1, c2 := net.Pipe()
	unblock := make(chan struct{})
	defer close(unblock)
	go s.HandleConn(&pipeConn{c2})
	go func() {
		rng := prng.NewSeeded([]byte("busy-staller"))
		tempKey, _ := rabin.GenerateKey(rng, 768)
		secchan.ClientHandshake(&stallConn{Conn: c1, unblock: unblock}, secchan.ServiceFile, path, tempKey, rng) //nolint:errcheck
	}()
	waitFor(t, "slot holder", func() bool { return s.hsInFlight.Load() == 1 })

	// Second connection: pool full, no backlog — fast-rejected.
	c3, c4 := net.Pipe()
	go s.HandleConn(&pipeConn{c4})
	rng := prng.NewSeeded([]byte("busy-victim"))
	tempKey, _ := rabin.GenerateKey(rng, 768)
	_, _, _, err = secchan.ClientHandshake(&pipeConn{c3}, secchan.ServiceFile, path, tempKey, rng)
	if err != secchan.ErrServerBusy {
		t.Fatalf("got %v, want ErrServerBusy", err)
	}
	if got := s.met.rejBusy.Load(); got != 1 {
		t.Fatalf("rejects_busy %d, want 1", got)
	}
	c1.Close()
	c3.Close()
}

func TestHandshakeTimeoutFreesSlot(t *testing.T) {
	key, _ := serverKeys(t)
	s := New(prng.NewSeeded([]byte("hsto")))
	s.SetHandshakePolicy(HandshakePolicy{Workers: 1, Backlog: -1, Timeout: 100 * time.Millisecond})
	path, err := s.Serve(ServedConfig{Location: "slow.example.com", Key: key, FS: vfs.New()})
	if err != nil {
		t.Fatal(err)
	}

	// A peer that stalls mid-negotiation is cut off by the deadline,
	// counted, and its pool slot freed.
	c1, c2 := net.Pipe()
	unblock := make(chan struct{})
	defer close(unblock)
	go s.HandleConn(&pipeConn{c2})
	go func() {
		rng := prng.NewSeeded([]byte("hsto-staller"))
		tempKey, _ := rabin.GenerateKey(rng, 768)
		secchan.ClientHandshake(&stallConn{Conn: c1, unblock: unblock}, secchan.ServiceFile, path, tempKey, rng) //nolint:errcheck
	}()
	waitFor(t, "handshake timeout", func() bool { return s.met.hsTimeouts.Load() >= 1 })
	waitFor(t, "slot release", func() bool { return s.hsInFlight.Load() == 0 })

	// With the slot back, a well-behaved client negotiates fine.
	sec, _ := dialServer(t, s, path, secchan.ServiceFile)
	sec.Close()
	waitFor(t, "full handshake after timeout", func() bool { return s.met.hsFull.Load() == 1 })
	c1.Close()
}

// TestHandshakeStorm races full negotiations and resumptions from many
// clients against one listener — the shape the -race CI step runs.
func TestHandshakeStorm(t *testing.T) {
	key, _ := serverKeys(t)
	s := New(prng.NewSeeded([]byte("storm")))
	s.SetHandshakePolicy(HandshakePolicy{Workers: 2, Backlog: 64, Timeout: 10 * time.Second})
	path, err := s.Serve(ServedConfig{Location: "storm.example.com", Key: key, FS: vfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go s.ListenAndServe(l) //nolint:errcheck

	const workers, iters = 4, 3
	tempKey, err := rabin.GenerateKey(prng.NewSeeded([]byte("storm-temp")), 768)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := prng.NewSeeded([]byte{byte('s'), byte(w)})
			var ticket *secchan.ResumeTicket
			for i := 0; i < iters; i++ {
				conn, err := net.Dial("tcp", l.Addr().String())
				if err != nil {
					errs <- err
					return
				}
				sec, info, _, err := secchan.ClientHandshakeResume(conn, secchan.ServiceFile, path, tempKey, rng, ticket)
				if err != nil {
					errs <- err
					conn.Close()
					return
				}
				ticket = info.Ticket
				sec.Close()
				// Give the server's post-handshake cache insert a beat so
				// the next reconnect hits rather than falling back.
				time.Sleep(5 * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every connection established a session — first per worker in
	// full, later ones by resumption (a rare lost race on the cache
	// insert falls back to full, which still establishes).
	waitFor(t, "storm counters", func() bool {
		m := &s.met
		return m.hsFull.Load()+m.hsResumed.Load() == workers*iters
	})
	if s.met.hsResumed.Load() == 0 {
		t.Fatal("storm never resumed a session")
	}
	if got := s.met.rejBusy.Load(); got != 0 {
		t.Fatalf("storm shed %d connections with a %d-deep backlog", got, 64)
	}
}
