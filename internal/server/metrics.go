package server

// Server-master observability: connection accounting at the front
// door (accepts, rejects, handshake failures), login-protocol
// outcomes including sequence-number replay drops, and single-line
// structured accept/close logging for sfssd. Per-location NFS
// counters live on each servedFS's nfs.Server and are aggregated
// into the master's snapshot.

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nfs"
	"repro/internal/secchan"
	"repro/internal/stats"
	"repro/internal/sunrpc"
)

type masterMetrics struct {
	accepts    stats.Counter
	active     stats.Gauge // connections between accept and close
	rejRevoked stats.Counter
	rejNoFS    stats.Counter
	hsFails    stats.Counter // key-negotiation handshakes that died
	extConns   stats.Counter // handed to protocol extensions

	// Session-establishment accounting (DESIGN.md §14).
	hsFull       stats.Counter // full key negotiations completed
	hsResumed    stats.Counter // sessions established by resumption
	hsResumeMiss stats.Counter // resume hellos answered with a miss
	rejBusy      stats.Counter // shed at admission (pool + backlog full)
	hsTimeouts   stats.Counter // negotiations cut off by the deadline
	hsQueue      stats.Gauge   // connections waiting for a pool slot
	hsStages     stats.StageSet

	logins     stats.Counter // login RPCs received
	loginOK    stats.Counter
	loginFails stats.Counter // any non-OK outcome
	seqReplays stats.Counter // rejected by the sequence-number window
}

// recordHSSpan folds one established session into the handshake stage
// histograms: hs_queue is the pool wait (zero for resumptions, which
// bypass the pool), hs_crypto the negotiation work itself.
func (s *Server) recordHSSpan(queueWait, crypto time.Duration) {
	var sp stats.Span
	sp.Stages[stats.StageHSQueue] = int64(queueWait / time.Microsecond)
	sp.Stages[stats.StageHSCrypto] = int64(crypto / time.Microsecond)
	sp.DurUS = int64((queueWait + crypto) / time.Microsecond)
	s.met.hsStages.Record(&sp)
}

// Logf is the logging hook: log.Printf-shaped. A nil hook (the
// default, and what -quiet restores) disables connection logging.
type Logf func(format string, args ...interface{})

// SetLogf installs the accept/close logging hook.
func (s *Server) SetLogf(f Logf) {
	s.logMu.Lock()
	s.logf = f
	s.logMu.Unlock()
}

func (s *Server) logConn(format string, args ...interface{}) {
	s.logMu.Lock()
	f := s.logf
	s.logMu.Unlock()
	if f != nil {
		f(format, args...)
	}
}

// countingConn wraps a raw connection to meter bytes both ways and
// fire a one-shot close hook — the "close" log line and the active
// gauge decrement — no matter which subsystem ends up owning the
// connection.
type countingConn struct {
	net.Conn
	in, out atomic.Uint64
	once    sync.Once
	onClose func(in, out uint64)
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

// countingSegConn additionally forwards vectored writes, so the
// metering wrapper does not hide the transport's SegmentWriter from
// the secure channel (which would silently re-route the zero-copy
// wire path of DESIGN.md §12 through the flat Write funnel). It is
// used only when the wrapped connection itself is a SegmentWriter.
type countingSegConn struct {
	*countingConn
	sw sunrpc.SegmentWriter
}

func (c *countingSegConn) WriteSegments(segs [][]byte) (int, int, error) {
	n, copied, err := c.sw.WriteSegments(segs)
	c.out.Add(uint64(n))
	return n, copied, err
}

func (c *countingConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(func() {
		if c.onClose != nil {
			c.onClose(c.in.Load(), c.out.Load())
		}
	})
	return err
}

// serviceName labels a connect request's service number for logs.
func serviceName(service uint32) string {
	switch service {
	case secchan.ServiceFile:
		return "file"
	case secchan.ServiceAuth:
		return "auth"
	case secchan.ServiceFileRO:
		return "file-ro"
	default:
		return "ext"
	}
}

// HandshakeStats is the session-establishment block of MasterStats:
// full vs resumed handshake counts, admission-control outcomes, pool
// queue depth (with high-water) and per-stage wait/crypto histograms,
// the resumption cache's hit/eviction counters, and the process heap
// high-water observed across snapshots — the per-session memory
// accounting the login-storm figure reads.
type HandshakeStats struct {
	Full        uint64                   `json:"full"`
	Resumed     uint64                   `json:"resumed"`
	ResumeMiss  uint64                   `json:"resume_miss"`
	RejectsBusy uint64                   `json:"rejects_busy"`
	Timeouts    uint64                   `json:"timeouts"`
	Queue       stats.GaugeSnapshot      `json:"queue"`
	Stages      stats.StageSetSnapshot   `json:"stages"`
	ResumeCache secchan.ResumeCacheStats `json:"resume_cache"`

	HeapInUse     uint64 `json:"heap_inuse_bytes"`
	HeapInUseMax  uint64 `json:"heap_inuse_max_bytes"`
	GoroutineNow  int    `json:"goroutines"`
	GoroutinesMax int64  `json:"goroutines_max"`
}

// MasterStats is the JSON form of the master's connection and login
// counters, with each served location's NFS-layer snapshot.
type MasterStats struct {
	Accepts        uint64              `json:"accepts"`
	Active         stats.GaugeSnapshot `json:"active"`
	RejectsRevoked uint64              `json:"rejects_revoked"`
	RejectsNoFS    uint64              `json:"rejects_nosuchfs"`
	HandshakeFails uint64              `json:"handshake_fails"`
	ExtConns       uint64              `json:"extension_conns"`

	Handshakes HandshakeStats `json:"handshakes"`

	Logins     uint64 `json:"logins"`
	LoginOK    uint64 `json:"login_ok"`
	LoginFails uint64 `json:"login_fails"`
	SeqReplays uint64 `json:"seq_replays"`

	Locations map[string]nfs.ServerStats `json:"locations,omitempty"`
}

// StatsSnapshot captures the master's counters and, per served
// location, its NFS server's.
func (s *Server) StatsSnapshot() MasterStats {
	m := &s.met
	st := MasterStats{
		Accepts:        m.accepts.Load(),
		Active:         m.active.Snapshot(),
		RejectsRevoked: m.rejRevoked.Load(),
		RejectsNoFS:    m.rejNoFS.Load(),
		HandshakeFails: m.hsFails.Load(),
		ExtConns:       m.extConns.Load(),
		Handshakes: HandshakeStats{
			Full:        m.hsFull.Load(),
			Resumed:     m.hsResumed.Load(),
			ResumeMiss:  m.hsResumeMiss.Load(),
			RejectsBusy: m.rejBusy.Load(),
			Timeouts:    m.hsTimeouts.Load(),
			Queue:       m.hsQueue.Snapshot(),
			Stages:      m.hsStages.Snapshot(),
			ResumeCache: s.resume.Stats(),
		},
		Logins:     m.logins.Load(),
		LoginOK:    m.loginOK.Load(),
		LoginFails: m.loginFails.Load(),
		SeqReplays: m.seqReplays.Load(),
	}
	st.Handshakes.HeapInUse, st.Handshakes.HeapInUseMax = sampleHeap()
	st.Handshakes.GoroutineNow = runtime.NumGoroutine()
	st.Handshakes.GoroutinesMax = noteGoroutineHigh(int64(st.Handshakes.GoroutineNow))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sfs := range s.byHost {
		if st.Locations == nil {
			st.Locations = make(map[string]nfs.ServerStats)
		}
		st.Locations[sfs.path.Location] = sfs.nfss.StatsSnapshot()
	}
	return st
}

// NFSStats returns one served location's NFS-layer counters — what
// the Fig 8 RPC-economics test asserts against.
func (s *Server) NFSStats(location string) (nfs.ServerStats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sfs := range s.byHost {
		if sfs.path.Location == location {
			return sfs.nfss.StatsSnapshot(), true
		}
	}
	return nfs.ServerStats{}, false
}

// heapHigh and goroutineHigh track process high-water marks across
// snapshots: sampling happens at snapshot time (ReadMemStats briefly
// stops the world, so it never runs on the per-handshake path), which
// is when the daemons' -stats command and the storm figure look.
var heapHigh, goroutineHigh atomic.Uint64

func sampleHeap() (now, max uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	now = ms.HeapInuse
	for {
		old := heapHigh.Load()
		if now <= old {
			return now, old
		}
		if heapHigh.CompareAndSwap(old, now) {
			return now, now
		}
	}
}

func noteGoroutineHigh(n int64) int64 {
	for {
		old := goroutineHigh.Load()
		if uint64(n) <= old {
			return int64(old)
		}
		if goroutineHigh.CompareAndSwap(old, uint64(n)) {
			return n
		}
	}
}

// durRound trims a duration for log lines.
func durRound(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return d.Round(time.Millisecond)
	default:
		return d.Round(time.Microsecond)
	}
}
