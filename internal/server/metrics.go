package server

// Server-master observability: connection accounting at the front
// door (accepts, rejects, handshake failures), login-protocol
// outcomes including sequence-number replay drops, and single-line
// structured accept/close logging for sfssd. Per-location NFS
// counters live on each servedFS's nfs.Server and are aggregated
// into the master's snapshot.

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nfs"
	"repro/internal/secchan"
	"repro/internal/stats"
	"repro/internal/sunrpc"
)

type masterMetrics struct {
	accepts    stats.Counter
	active     stats.Gauge // connections between accept and close
	rejRevoked stats.Counter
	rejNoFS    stats.Counter
	hsFails    stats.Counter // key-negotiation handshakes that died
	extConns   stats.Counter // handed to protocol extensions

	logins     stats.Counter // login RPCs received
	loginOK    stats.Counter
	loginFails stats.Counter // any non-OK outcome
	seqReplays stats.Counter // rejected by the sequence-number window
}

// Logf is the logging hook: log.Printf-shaped. A nil hook (the
// default, and what -quiet restores) disables connection logging.
type Logf func(format string, args ...interface{})

// SetLogf installs the accept/close logging hook.
func (s *Server) SetLogf(f Logf) {
	s.logMu.Lock()
	s.logf = f
	s.logMu.Unlock()
}

func (s *Server) logConn(format string, args ...interface{}) {
	s.logMu.Lock()
	f := s.logf
	s.logMu.Unlock()
	if f != nil {
		f(format, args...)
	}
}

// countingConn wraps a raw connection to meter bytes both ways and
// fire a one-shot close hook — the "close" log line and the active
// gauge decrement — no matter which subsystem ends up owning the
// connection.
type countingConn struct {
	net.Conn
	in, out atomic.Uint64
	once    sync.Once
	onClose func(in, out uint64)
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

// countingSegConn additionally forwards vectored writes, so the
// metering wrapper does not hide the transport's SegmentWriter from
// the secure channel (which would silently re-route the zero-copy
// wire path of DESIGN.md §12 through the flat Write funnel). It is
// used only when the wrapped connection itself is a SegmentWriter.
type countingSegConn struct {
	*countingConn
	sw sunrpc.SegmentWriter
}

func (c *countingSegConn) WriteSegments(segs [][]byte) (int, int, error) {
	n, copied, err := c.sw.WriteSegments(segs)
	c.out.Add(uint64(n))
	return n, copied, err
}

func (c *countingConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(func() {
		if c.onClose != nil {
			c.onClose(c.in.Load(), c.out.Load())
		}
	})
	return err
}

// serviceName labels a connect request's service number for logs.
func serviceName(service uint32) string {
	switch service {
	case secchan.ServiceFile:
		return "file"
	case secchan.ServiceAuth:
		return "auth"
	case secchan.ServiceFileRO:
		return "file-ro"
	default:
		return "ext"
	}
}

// MasterStats is the JSON form of the master's connection and login
// counters, with each served location's NFS-layer snapshot.
type MasterStats struct {
	Accepts        uint64              `json:"accepts"`
	Active         stats.GaugeSnapshot `json:"active"`
	RejectsRevoked uint64              `json:"rejects_revoked"`
	RejectsNoFS    uint64              `json:"rejects_nosuchfs"`
	HandshakeFails uint64              `json:"handshake_fails"`
	ExtConns       uint64              `json:"extension_conns"`

	Logins     uint64 `json:"logins"`
	LoginOK    uint64 `json:"login_ok"`
	LoginFails uint64 `json:"login_fails"`
	SeqReplays uint64 `json:"seq_replays"`

	Locations map[string]nfs.ServerStats `json:"locations,omitempty"`
}

// StatsSnapshot captures the master's counters and, per served
// location, its NFS server's.
func (s *Server) StatsSnapshot() MasterStats {
	m := &s.met
	st := MasterStats{
		Accepts:        m.accepts.Load(),
		Active:         m.active.Snapshot(),
		RejectsRevoked: m.rejRevoked.Load(),
		RejectsNoFS:    m.rejNoFS.Load(),
		HandshakeFails: m.hsFails.Load(),
		ExtConns:       m.extConns.Load(),
		Logins:         m.logins.Load(),
		LoginOK:        m.loginOK.Load(),
		LoginFails:     m.loginFails.Load(),
		SeqReplays:     m.seqReplays.Load(),
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sfs := range s.byHost {
		if st.Locations == nil {
			st.Locations = make(map[string]nfs.ServerStats)
		}
		st.Locations[sfs.path.Location] = sfs.nfss.StatsSnapshot()
	}
	return st
}

// NFSStats returns one served location's NFS-layer counters — what
// the Fig 8 RPC-economics test asserts against.
func (s *Server) NFSStats(location string) (nfs.ServerStats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sfs := range s.byHost {
		if sfs.path.Location == location {
			return sfs.nfss.StatsSnapshot(), true
		}
	}
	return nfs.ServerStats{}, false
}

// durRound trims a duration for log lines.
func durRound(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return d.Round(time.Millisecond)
	default:
		return d.Round(time.Microsecond)
	}
}
