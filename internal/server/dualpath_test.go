package server

import (
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/nfs"
	"repro/internal/secchan"
	"repro/internal/vfs"
)

// TestSameFSUnderTwoPathnames exercises §2.4's transition strategy:
// "SFS can serve two copies of the same file system under different
// self-certifying pathnames" — e.g. while a server changes domain
// names, the old and new pathnames both work and show the same data.
func TestSameFSUnderTwoPathnames(t *testing.T) {
	g := prng.NewSeeded([]byte("dualpath"))
	oldKey, err := rabin.GenerateKey(g, 768)
	if err != nil {
		t.Fatal(err)
	}
	newKey, err := rabin.GenerateKey(g, 768)
	if err != nil {
		t.Fatal(err)
	}
	shared := vfs.New()
	if err := shared.WriteFile(vfs.Cred{UID: 0}, "f", []byte("one fs, two names"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(g)
	oldPath, err := s.Serve(ServedConfig{Location: "old.example.com", Key: oldKey, FS: shared})
	if err != nil {
		t.Fatal(err)
	}
	newPath, err := s.Serve(ServedConfig{Location: "new.example.com", Key: newKey, FS: shared})
	if err != nil {
		t.Fatal(err)
	}
	if oldPath.HostID == newPath.HostID {
		t.Fatal("two keys produced one HostID")
	}
	for i, p := range []core.Path{oldPath, newPath} {
		c1, c2 := net.Pipe()
		go s.HandleConn(&pipeConn{c2})
		rng := prng.NewSeeded([]byte{byte(i), 'd'})
		tempKey, err := rabin.GenerateKey(rng, 768)
		if err != nil {
			t.Fatal(err)
		}
		sec, _, _, err := secchan.ClientHandshake(&pipeConn{c1}, secchan.ServiceFile, p, tempKey, rng)
		if err != nil {
			t.Fatalf("%s: %v", p.Location, err)
		}
		cl := nfs.Dial(sec, nfs.ClientConfig{})
		root, _, err := cl.MountRoot()
		if err != nil {
			t.Fatal(err)
		}
		fh, _, err := cl.Lookup(root, "f")
		if err != nil {
			t.Fatal(err)
		}
		data, _, err := cl.Read(fh, 0, 100)
		if err != nil || string(data) != "one fs, two names" {
			t.Fatalf("%s read: %q %v", p.Location, data, err)
		}
		cl.Close()
	}
}
