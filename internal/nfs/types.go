// Package nfs implements the NFS version 3 style file protocol that
// SFS clients and servers speak to each other and to the substrate
// file system (paper §3.3).
//
// The SFS read-write protocol is "virtually identical to NFS 3" with
// two extensions that lengthen cache lifetimes:
//
//  1. every file attribute structure returned by the server carries a
//     timeout field or lease, and
//  2. the server can call back to the client to invalidate entries
//     before the lease expires, without waiting for acknowledgment.
//
// The wire encoding here is XDR over ONC RPC, structurally mirroring
// RFC 1813 (procedures, arguments, post-op attributes) without
// claiming byte-compatibility with kernel NFS implementations — the
// kernel is replaced by internal/vfs in this reproduction, as recorded
// in DESIGN.md.
package nfs

import (
	"time"

	"repro/internal/vfs"
)

// Program and version numbers.
const (
	Program = 100003
	Version = 3
)

// Procedure numbers (RFC 1813), plus MOUNTROOT standing in for the
// separate MOUNT protocol.
const (
	ProcNull        = 0
	ProcGetAttr     = 1
	ProcSetAttr     = 2
	ProcLookup      = 3
	ProcAccess      = 4
	ProcReadlink    = 5
	ProcRead        = 6
	ProcWrite       = 7
	ProcCreate      = 8
	ProcMkdir       = 9
	ProcSymlink     = 10
	ProcRemove      = 12
	ProcRmdir       = 13
	ProcRename      = 14
	ProcLink        = 15
	ProcReadDir     = 16
	ProcFSInfo      = 19
	ProcCommit      = 21
	ProcMountRoot   = 100 // stands in for the MOUNT protocol
	ProcInvalidate  = 101 // SFS extension: server→client callback
	ProcGetAttrSync = 102 // GETATTR that bypasses the client cache
	// ProcIDNames maps numeric user/group IDs to names. NFS carries
	// bare numbers that mean nothing outside the server's realm;
	// libsfs queries this mapping so utilities can print "%user"
	// names relative to the remote file server (paper §3.3).
	ProcIDNames = 103
)

// Status codes (the subset of nfsstat3 this implementation produces).
const (
	OK             = 0
	ErrPerm        = 1
	ErrNoEnt       = 2
	ErrIO          = 5
	ErrAcces       = 13
	ErrExist       = 17
	ErrNotDir      = 20
	ErrIsDir       = 21
	ErrInval       = 22
	ErrNameTooLong = 63
	ErrNotEmpty    = 66
	ErrStale       = 70
	ErrROFS        = 30
	ErrBadHandle   = 10001
	ErrNotSupp     = 10004
	ErrServerFault = 10006
)

// Write stability levels.
const (
	Unstable = 0
	FileSync = 2
)

// Access bits for the ACCESS procedure.
const (
	AccessRead    = 0x01
	AccessLookup  = 0x02
	AccessModify  = 0x04
	AccessExtend  = 0x08
	AccessDelete  = 0x10
	AccessExecute = 0x20
)

// FH is an opaque file handle. Plain NFS handles are server-chosen
// bytes that must remain secret; SFS handles add redundancy and
// Blowfish encryption so they can be public (paper §3.3).
type FH []byte

// Fattr carries file attributes, the fattr3 of RFC 1813 extended with
// the SFS lease field.
type Fattr struct {
	Type   uint32
	Mode   uint32
	Nlink  uint32
	UID    uint32
	GID    uint32
	Size   uint64
	FileID uint64
	Atime  uint64 // nanoseconds since the epoch
	Mtime  uint64
	Ctime  uint64
	// LeaseMS is the SFS extension: how long, in milliseconds, the
	// client may cache these attributes without revalidation. Zero
	// means no caching promise (plain NFS 3 behaviour).
	LeaseMS uint32
}

// File types in Fattr.Type.
const (
	TypeReg     = 1
	TypeDir     = 2
	TypeSymlink = 5
)

// ModTime returns the modification time as a time.Time.
func (a Fattr) ModTime() time.Time { return time.Unix(0, int64(a.Mtime)) }

// fattrFromVFS converts substrate attributes to the wire form.
func fattrFromVFS(a vfs.Attr, leaseMS uint32) Fattr {
	var t uint32
	switch a.Type {
	case vfs.TypeReg:
		t = TypeReg
	case vfs.TypeDir:
		t = TypeDir
	case vfs.TypeSymlink:
		t = TypeSymlink
	}
	return Fattr{
		Type: t, Mode: a.Mode, Nlink: a.Nlink, UID: a.UID, GID: a.GID,
		Size: a.Size, FileID: uint64(a.FileID),
		Atime: uint64(a.Atime.UnixNano()), Mtime: uint64(a.Mtime.UnixNano()),
		Ctime:   uint64(a.Ctime.UnixNano()),
		LeaseMS: leaseMS,
	}
}

// SetAttrArgs selects attribute updates; zero Set* fields leave the
// attribute unchanged.
type SetAttrArgs struct {
	FH       FH
	SetMode  *uint32
	SetUID   *uint32
	SetGID   *uint32
	SetSize  *uint64
	SetMtime *uint64
	SetAtime *uint64
}

// Argument and result structures. Results follow the NFS convention
// of a status followed by post-operation attributes.

// FHArgs is the single-handle argument shared by several procedures.
type FHArgs struct{ FH FH }

// AttrRes is a status plus optional post-operation attributes.
type AttrRes struct {
	Status uint32
	Attr   *Fattr
}

// DirOpArgs names an entry within a directory.
type DirOpArgs struct {
	Dir  FH
	Name string
}

// LookupRes carries a resolved (or newly created) handle.
type LookupRes struct {
	Status uint32
	FH     FH
	Attr   *Fattr
	// DirAttr carries post-operation directory attributes on
	// mutating replies (NFS3's wcc_data), so clients can refresh
	// their directory cache instead of discarding it.
	DirAttr *Fattr
}

// AccessArgs requests an access check for a bitmask of operations.
type AccessArgs struct {
	FH     FH
	Access uint32
}

// AccessRes reports which requested access bits are granted.
type AccessRes struct {
	Status uint32
	Attr   *Fattr
	Access uint32
}

// ReadlinkRes returns a symbolic link's target.
type ReadlinkRes struct {
	Status uint32
	Target string
}

// ReadArgs requests count bytes at Offset.
type ReadArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// ReadRes returns file data with an end-of-file marker.
type ReadRes struct {
	Status uint32
	Attr   *Fattr
	Count  uint32
	EOF    bool
	Data   []byte
}

// WriteArgs stores Data at Offset with the given stability level.
type WriteArgs struct {
	FH     FH
	Offset uint64
	Stable uint32
	Data   []byte
}

// WriteRes acknowledges a write. Verf is the server's per-boot write
// verifier (RFC 1813 §4.8): a client holding unstable data compares it
// against the verifier COMMIT later returns, and retransmits when they
// differ — the server rebooted in between and may have lost the data.
type WriteRes struct {
	Status uint32
	Attr   *Fattr
	Count  uint32
	Verf   uint64
}

// CommitRes acknowledges a COMMIT: post-operation attributes plus the
// write verifier the committed data is now stable under.
type CommitRes struct {
	Status uint32
	Attr   *Fattr
	Verf   uint64
}

// CreateArgs creates a regular file, optionally exclusively.
type CreateArgs struct {
	Dir       FH
	Name      string
	Mode      uint32
	Exclusive bool
}

// MkdirArgs creates a directory.
type MkdirArgs struct {
	Dir  FH
	Name string
	Mode uint32
}

// SymlinkArgs creates a symbolic link to Target.
type SymlinkArgs struct {
	Dir    FH
	Name   string
	Target string
}

// RenameArgs moves FromName in FromDir to ToName in ToDir.
type RenameArgs struct {
	FromDir  FH
	FromName string
	ToDir    FH
	ToName   string
}

// LinkArgs creates a hard link to File at Dir/Name.
type LinkArgs struct {
	File FH
	Dir  FH
	Name string
}

// StatusRes is the reply of mutating procedures without a handle.
type StatusRes struct {
	Status uint32
	// DirAttr/DirAttr2 carry post-operation attributes of the
	// affected directories (both for RENAME), NFS3 wcc style.
	DirAttr  *Fattr
	DirAttr2 *Fattr
}

// ReadDirArgs pages through a directory from Cookie.
type ReadDirArgs struct {
	Dir    FH
	Cookie uint64
	Count  uint32 // max entries
}

// Entry is one directory entry, READDIRPLUS style (handle and
// attributes included).
type Entry struct {
	FileID uint64
	Name   string
	Cookie uint64
	FH     FH     // READDIRPLUS-style: handle included
	Attr   *Fattr // and attributes
}

// ReadDirRes returns a page of directory entries.
type ReadDirRes struct {
	Status  uint32
	Entries []Entry
	EOF     bool
}

// FSInfoRes reports server transfer limits.
type FSInfoRes struct {
	Status    uint32
	RTMax     uint32 // max read size
	WTMax     uint32 // max write size
	TimeDelta uint64
}

// MountRootRes returns the root file handle (the MOUNT protocol
// stand-in).
type MountRootRes struct {
	Status uint32
	Root   FH
	Attr   *Fattr
}

// InvalidateArgs is the SFS callback: the server tells the client that
// cached state for FH is no longer valid.
type InvalidateArgs struct {
	FH FH
}

// IDNamesArgs asks the server for the names behind numeric IDs.
type IDNamesArgs struct {
	UIDs []uint32
	GIDs []uint32
}

// IDNamesRes carries the names, parallel to the request; unknown IDs
// map to the empty string.
type IDNamesRes struct {
	Status     uint32
	UserNames  []string
	GroupNames []string
}

// statusFromErr maps substrate errors to wire status codes.
func statusFromErr(err error) uint32 {
	switch err {
	case nil:
		return OK
	case vfs.ErrNotFound:
		return ErrNoEnt
	case vfs.ErrExist:
		return ErrExist
	case vfs.ErrNotDir:
		return ErrNotDir
	case vfs.ErrIsDir:
		return ErrIsDir
	case vfs.ErrNotEmpty:
		return ErrNotEmpty
	case vfs.ErrPerm:
		return ErrAcces
	case vfs.ErrStale:
		return ErrStale
	case vfs.ErrNameTooLong:
		return ErrNameTooLong
	case vfs.ErrInval, vfs.ErrNotSymlink:
		return ErrInval
	default:
		return ErrIO
	}
}

// Error converts a non-OK wire status into a Go error.
type Error uint32

// Error satisfies the error interface.
func (e Error) Error() string {
	switch uint32(e) {
	case ErrPerm:
		return "nfs: operation not permitted"
	case ErrNoEnt:
		return "nfs: no such file or directory"
	case ErrIO:
		return "nfs: I/O error"
	case ErrAcces:
		return "nfs: permission denied"
	case ErrExist:
		return "nfs: file exists"
	case ErrNotDir:
		return "nfs: not a directory"
	case ErrIsDir:
		return "nfs: is a directory"
	case ErrInval:
		return "nfs: invalid argument"
	case ErrNameTooLong:
		return "nfs: name too long"
	case ErrNotEmpty:
		return "nfs: directory not empty"
	case ErrStale:
		return "nfs: stale file handle"
	case ErrROFS:
		return "nfs: read-only file system"
	case ErrBadHandle:
		return "nfs: bad file handle"
	case ErrNotSupp:
		return "nfs: operation not supported"
	default:
		return "nfs: server fault"
	}
}

// StatusErr returns nil for OK and an Error otherwise.
func StatusErr(status uint32) error {
	if status == OK {
		return nil
	}
	return Error(status)
}
