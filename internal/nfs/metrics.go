package nfs

// NFS-layer observability: per-procedure counters and latency
// histograms keyed by procedure *name* (the RPC layer one level down
// only knows numbers), write-stability accounting (unstable vs
// FILE_SYNC), and COMMIT batch sizes — the counters Fig 8's "2 RPCs
// per file vs NFS's 3" claim is asserted against. One ServerMetrics
// belongs to one Server and aggregates every session; the embedded
// sunrpc.Metrics block is shared with each session's per-connection
// RPC server so transport-level counters aggregate at the same
// granularity.

import (
	"sync"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/sunrpc"
	"repro/internal/vfs"
)

// procSlots: procedures 0..21 are standard NFSv3; 100..103 are the
// SFS extensions; one overflow slot catches anything else.
const (
	numStdProcs = 22
	numExtProcs = 4
	numSlots    = numStdProcs + numExtProcs + 1
)

var procNames = map[uint32]string{
	ProcNull: "null", ProcGetAttr: "getattr", ProcSetAttr: "setattr",
	ProcLookup: "lookup", ProcAccess: "access", ProcReadlink: "readlink",
	ProcRead: "read", ProcWrite: "write", ProcCreate: "create",
	ProcMkdir: "mkdir", ProcSymlink: "symlink", ProcRemove: "remove",
	ProcRmdir: "rmdir", ProcRename: "rename", ProcLink: "link",
	ProcReadDir: "readdir", ProcFSInfo: "fsinfo", ProcCommit: "commit",
	ProcMountRoot: "mountroot", ProcInvalidate: "invalidate",
	ProcGetAttrSync: "getattrsync", ProcIDNames: "idnames",
}

// ProcName returns the NFSv3/SFS name of proc, or "procN" for
// unnamed numbers.
func ProcName(proc uint32) string {
	if n, ok := procNames[proc]; ok {
		return n
	}
	return "proc" + uitoa(proc)
}

// uitoa is strconv.Itoa without the import churn for a uint32.
func uitoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func slotFor(proc uint32) int {
	switch {
	case proc < numStdProcs:
		return int(proc)
	case proc >= ProcMountRoot && proc <= ProcIDNames:
		return numStdProcs + int(proc-ProcMountRoot)
	default:
		return numSlots - 1
	}
}

// slotProc inverts slotFor for snapshot labeling.
func slotProc(slot int) (uint32, bool) {
	switch {
	case slot < numStdProcs:
		return uint32(slot), true
	case slot < numStdProcs+numExtProcs:
		return ProcMountRoot + uint32(slot-numStdProcs), true
	default:
		return 0, false // overflow slot
	}
}

type procStat struct {
	calls stats.Counter
	errs  stats.Counter // RPC-level failures (garbage args etc.), not NFS statuses
	lat   stats.Histogram
}

// ServerMetrics instruments one nfs.Server across all its sessions.
type ServerMetrics struct {
	procs [numSlots]procStat

	unstableWrites stats.Counter
	syncWrites     stats.Counter
	unstableBytes  stats.Counter
	syncBytes      stats.Counter
	commits        stats.Counter
	commitBatch    stats.Histogram // bytes acknowledged per COMMIT

	// Lease-table accounting: grants, callback fires, and how often a
	// stripe lock acquisition had to wait (the number that would
	// explode if the stripes were one global mutex again).
	leasesGranted        stats.Counter
	leaseBreaks          stats.Counter
	leaseStripeLocks     stats.Counter
	leaseStripeContended stats.Counter

	// pending tracks unstable bytes written per file since its last
	// COMMIT, so the batch histogram reflects what each COMMIT
	// actually flushed. Guarded by its own mutex: WRITE and COMMIT
	// race across sessions.
	pendingMu sync.Mutex
	pending   map[vfs.FileID]uint64

	rpc *sunrpc.Metrics // shared with every session's RPC server
}

func newServerMetrics(traceSpans int) *ServerMetrics {
	if traceSpans <= 0 {
		traceSpans = 256
	}
	return &ServerMetrics{
		pending: make(map[vfs.FileID]uint64),
		rpc:     sunrpc.NewMetricsSized(traceSpans),
	}
}

func (m *ServerMetrics) noteWrite(id vfs.FileID, n int, fileSync bool) {
	if fileSync {
		m.syncWrites.Inc()
		m.syncBytes.Add(uint64(n))
		return
	}
	m.unstableWrites.Inc()
	m.unstableBytes.Add(uint64(n))
	m.pendingMu.Lock()
	m.pending[id] += uint64(n)
	m.pendingMu.Unlock()
}

func (m *ServerMetrics) noteCommit(id vfs.FileID) {
	m.commits.Inc()
	m.pendingMu.Lock()
	batch := m.pending[id]
	delete(m.pending, id)
	m.pendingMu.Unlock()
	m.commitBatch.Observe(batch)
}

// ProcStat is one procedure's totals in a ServerStats snapshot.
type ProcStat struct {
	Calls   uint64             `json:"calls"`
	Errors  uint64             `json:"errors,omitempty"`
	Latency stats.HistSnapshot `json:"latency_us"`
}

// LeaseStats is the JSON form of the striped lease table's counters.
type LeaseStats struct {
	Granted         uint64 `json:"granted"`
	Breaks          uint64 `json:"breaks"`
	StripeLocks     uint64 `json:"stripe_locks"`
	StripeContended uint64 `json:"stripe_contended"`
}

// ServerStats is the JSON form of a server's NFS-layer counters.
type ServerStats struct {
	Procs            map[string]ProcStat    `json:"procs,omitempty"`
	UnstableWrites   uint64                 `json:"unstable_writes"`
	SyncWrites       uint64                 `json:"sync_writes"`
	UnstableBytes    uint64                 `json:"unstable_bytes"`
	SyncBytes        uint64                 `json:"sync_bytes"`
	Commits          uint64                 `json:"commits"`
	CommitBatchBytes stats.HistSnapshot     `json:"commit_batch_bytes"`
	Leases           LeaseStats             `json:"leases"`
	VFSLocks         vfs.LockStats          `json:"vfs_locks"`
	RPC              sunrpc.MetricsSnapshot `json:"rpc"`
	// Storage carries the durable store's WAL counters; nil (omitted)
	// for the default in-memory store, so memstore stats documents are
	// unchanged by the storage refactor.
	Storage *storage.Stats `json:"storage,omitempty"`
	// WireCopy is the process-wide zero-copy wire path accounting
	// (DESIGN.md §12): payload bytes entering the encode path, how
	// many were memcpy'd versus borrowed, and the per-record
	// copies-per-payload histogram. Process-wide, not per-server — a
	// daemon runs one wire role, and the bench harness snapshots it
	// per workload via stats.ResetWireCopy.
	WireCopy stats.WireCopyStats `json:"wire_copy"`
}

// TotalCalls sums the per-procedure call counts — the number the Fig
// 8 RPC-economics test asserts against.
func (st ServerStats) TotalCalls() uint64 {
	var n uint64
	for _, p := range st.Procs {
		n += p.Calls
	}
	return n
}

// StatsSnapshot captures the server's NFS-layer counters, including
// the shared transport metrics of all its sessions.
func (s *Server) StatsSnapshot() ServerStats {
	m := s.met
	st := ServerStats{
		UnstableWrites:   m.unstableWrites.Load(),
		SyncWrites:       m.syncWrites.Load(),
		UnstableBytes:    m.unstableBytes.Load(),
		SyncBytes:        m.syncBytes.Load(),
		Commits:          m.commits.Load(),
		CommitBatchBytes: m.commitBatch.Snapshot(),
		Leases: LeaseStats{
			Granted:         m.leasesGranted.Load(),
			Breaks:          m.leaseBreaks.Load(),
			StripeLocks:     m.leaseStripeLocks.Load(),
			StripeContended: m.leaseStripeContended.Load(),
		},
		VFSLocks: s.fs.LockStatsSnapshot(),
		RPC:      m.rpc.Snapshot(),
		Storage:  s.fs.StorageStats(),
		WireCopy: stats.WireCopySnapshot(),
	}
	for i := range m.procs {
		n := m.procs[i].calls.Load()
		if n == 0 {
			continue
		}
		if st.Procs == nil {
			st.Procs = make(map[string]ProcStat)
		}
		name := "other"
		if proc, ok := slotProc(i); ok {
			name = ProcName(proc)
		}
		st.Procs[name] = ProcStat{
			Calls:   n,
			Errors:  m.procs[i].errs.Load(),
			Latency: m.procs[i].lat.Snapshot(),
		}
	}
	return st
}

// RPCMetrics exposes the transport metrics block shared by the
// server's sessions (e.g. to enable trace-span recording).
func (s *Server) RPCMetrics() *sunrpc.Metrics { return s.met.rpc }
