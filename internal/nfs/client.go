package nfs

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/sunrpc"
	"repro/internal/xdr"
)

// ClientConfig selects the caching behaviour of a client.
type ClientConfig struct {
	// AttrTimeout is the client-side attribute cache lifetime when
	// the server grants no lease — standard NFS 3 behaviour. Zero
	// disables client-side attribute caching entirely.
	AttrTimeout time.Duration
	// UseLeases honors server-granted attribute leases, caching
	// attributes for the full lease instead of AttrTimeout. This is
	// the SFS enhanced-caching mode (paper §3.3).
	UseLeases bool
	// AccessCache caches ACCESS results per principal — the second
	// SFS caching enhancement.
	AccessCache bool
	// ReadAhead is the number of sequential READ RPCs kept in flight
	// on one channel (the paper's asynchronous RPC library keeps the
	// pipe full the same way, §3.2). Zero selects DefaultReadAhead;
	// negative disables pipelining entirely.
	ReadAhead int
	// WriteBehind is the number of unstable WRITE RPCs kept in
	// flight per open file — the mirror image of ReadAhead. Zero
	// selects DefaultWriteBehind; negative disables write-behind,
	// reverting to one synchronous WRITE per chunk.
	WriteBehind int
	// DataCacheBytes bounds the lease-coherent data block cache
	// shared by every view of the connection: 8 KB-aligned blocks,
	// valid only while the file's attribute entry is live, evicted
	// CLOCK-wise past the budget. Zero selects DefaultDataCacheBytes;
	// negative disables data caching. Without leases (or a nonzero
	// AttrTimeout) the cache never serves: block lifetime is bounded
	// by attribute lifetime, and there is none.
	DataCacheBytes int64
	// Auth supplies per-call credentials; nil means anonymous.
	Auth func() sunrpc.OpaqueAuth
	// TraceSpans, when > 0, enables client-side RPC stage tracing with
	// a span ring of that capacity (see stats.StageClock). Off (0), the
	// per-call cost is a single atomic load.
	TraceSpans int
}

// DefaultReadAhead is the pipelining depth used when ClientConfig
// leaves ReadAhead zero: deep enough to cover the bandwidth-delay
// product of the paper's 10 Mbit LAN at 8KB per READ.
const DefaultReadAhead = 8

// DefaultWriteBehind is the write-behind window used when
// ClientConfig leaves WriteBehind zero, matching the read side.
const DefaultWriteBehind = 8

// Stats counts the RPCs that actually crossed the wire, and the cache
// hits that avoided one. The paper attributes much of SFS's MAB
// performance to caching that "reduces the number of RPCs that need
// to travel over the network".
type Stats struct {
	Calls      uint64 // RPCs sent
	AttrHits   uint64 // GETATTRs avoided
	AccessHits uint64 // ACCESSes avoided
	Invals     uint64 // callbacks received

	DataHits           uint64 // READs served from the data block cache
	DataMisses         uint64 // cacheable READs that went to the wire
	DataBytesCached    uint64 // bytes currently held by the data cache
	Evictions          uint64 // blocks evicted past the byte budget
	SingleFlightShared uint64 // cold-block READs joined to another reader's flight
	CacheLocks         uint64 // cache lock acquisitions (read + write)
	CacheContended     uint64 // acquisitions that found the lock held
}

type attrEntry struct {
	attr    Fattr
	expires time.Time
}

type accessEntry struct {
	granted uint32 // bits known granted
	checked uint32 // bits known (granted or denied)
	expires time.Time
}

type nameEntry struct {
	fh      FH
	expires time.Time
}

// clientCore is the state shared by every per-user view of one
// connection: the transport, the attribute cache (safe to share
// between mutually distrustful users because the pathname's HostID
// already names the server key — the point of §5.1's AFS
// comparison), and the statistics.
type clientCore struct {
	cfg  ClientConfig
	peer *sunrpc.Client
	// traceRing/traceStages are the client-side tracing sinks (nil
	// unless ClientConfig.TraceSpans > 0).
	traceRing   *stats.TraceRing
	traceStages *stats.StageSet

	mu     sync.RWMutex
	attrs  map[string]attrEntry
	access map[string]accessEntry // keyed by principal + handle
	// names caches LOOKUP results under leases (dir handle + name →
	// child handle). Entries die with the directory's cached state:
	// any mutation or callback on the directory forgets them, so the
	// cache stays as consistent as the attribute cache.
	names map[string]nameEntry
	// dc caches file data blocks (nil when disabled); flights is the
	// single-flight table collapsing concurrent cold-block READs.
	dc      *dataCache
	flights map[string]*readFlight
	// invalEpoch advances on every forget and on truncation. A READ
	// reply may only populate the cache if the epoch it was issued
	// under is still current — otherwise an invalidation that raced
	// the RPC would be undone by a stale reply.
	invalEpoch atomic.Uint64

	calls      atomic.Uint64
	attrHits   atomic.Uint64
	accessHits atomic.Uint64
	invals     atomic.Uint64
	dataHits   atomic.Uint64
	dataMisses atomic.Uint64
	evictions  atomic.Uint64
	sfShared   atomic.Uint64
	cacheLocks atomic.Uint64
	contended  atomic.Uint64
}

// lock and rlock wrap the cache mutex with the same TryLock-first
// contention accounting the server's vfs_locks counters use: a failed
// try means another goroutine held the lock when we arrived.
func (core *clientCore) lock() {
	if !core.mu.TryLock() {
		core.contended.Add(1)
		core.mu.Lock()
	}
	core.cacheLocks.Add(1)
}

func (core *clientCore) rlock() {
	if !core.mu.TryRLock() {
		core.contended.Add(1)
		core.mu.RLock()
	}
	core.cacheLocks.Add(1)
}

// Client is one principal's view of a connection. Views created with
// WithAuth share the transport and attribute cache but carry their
// own credentials and access-cache namespace.
type Client struct {
	core *clientCore
	// principal namespaces the access cache; views for different
	// users must never share access-check results.
	principal string
	auth      func() sunrpc.OpaqueAuth
}

// Dial starts a client on conn. The connection also receives
// invalidation callbacks from SFS-enhanced servers.
func Dial(conn io.ReadWriteCloser, cfg ClientConfig) *Client {
	core := &clientCore{
		cfg:     cfg,
		attrs:   make(map[string]attrEntry),
		access:  make(map[string]accessEntry),
		names:   make(map[string]nameEntry),
		flights: make(map[string]*readFlight),
	}
	if cfg.DataCacheBytes >= 0 {
		max := cfg.DataCacheBytes
		if max == 0 {
			max = DefaultDataCacheBytes
		}
		core.dc = &dataCache{
			max:   max,
			files: make(map[string]map[uint64]*dataBlock),
			auth:  make(map[string]map[string]struct{}),
		}
	}
	cb := sunrpc.NewServer()
	cb.Register(Program, Version, func(proc uint32, _ sunrpc.OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
		if proc != ProcInvalidate {
			return nil, sunrpc.ErrProcUnavail
		}
		var a InvalidateArgs
		if err := args.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		core.invals.Add(1)
		core.forget(a.FH)
		return StatusRes{Status: OK}, nil
	})
	core.peer = sunrpc.NewPeer(conn, cb)
	if cfg.TraceSpans > 0 {
		core.traceRing, core.traceStages = core.peer.EnableTrace(cfg.TraceSpans)
	}
	auth := cfg.Auth
	if auth == nil {
		auth = sunrpc.NoAuth
	}
	return &Client{core: core, principal: "", auth: auth}
}

// TraceRing returns the client-side span ring, or nil when tracing is
// off. The caller may attach a slow-span log to it (TraceRing.SetSlowLog).
func (c *Client) TraceRing() *stats.TraceRing { return c.core.traceRing }

// StageSnapshot returns the client-side per-stage latency histograms,
// or nil when tracing is off.
func (c *Client) StageSnapshot() *stats.StageSetSnapshot {
	if c.core.traceStages == nil {
		return nil
	}
	s := c.core.traceStages.Snapshot()
	return &s
}

// WithAuth returns a view of the same connection for another
// principal: shared transport, shared attribute cache, separate
// access cache and credentials.
func (c *Client) WithAuth(principal string, auth func() sunrpc.OpaqueAuth) *Client {
	if auth == nil {
		auth = sunrpc.NoAuth
	}
	return &Client{core: c.core, principal: principal, auth: auth}
}

// Close tears down the transport (affects all views).
func (c *Client) Close() error { return c.core.peer.Close() }

// Done is closed when the transport fails.
func (c *Client) Done() <-chan struct{} { return c.core.peer.Done() }

// Stats returns a snapshot of the connection-wide counters.
func (c *Client) Stats() Stats {
	st := Stats{
		Calls:              c.core.calls.Load(),
		AttrHits:           c.core.attrHits.Load(),
		AccessHits:         c.core.accessHits.Load(),
		Invals:             c.core.invals.Load(),
		DataHits:           c.core.dataHits.Load(),
		DataMisses:         c.core.dataMisses.Load(),
		Evictions:          c.core.evictions.Load(),
		SingleFlightShared: c.core.sfShared.Load(),
		CacheLocks:         c.core.cacheLocks.Load(),
		CacheContended:     c.core.contended.Load(),
	}
	if c.core.dc != nil {
		st.DataBytesCached = uint64(c.core.dc.size.Load())
	}
	return st
}

func (c *Client) call(proc uint32, args, res interface{}) error {
	c.core.calls.Add(1)
	return c.core.peer.Call(Program, Version, proc, c.auth(), args, res)
}

// forget drops cached state for a handle across all principals,
// including any name-cache entries under it (when it is a directory)
// and every cached data block: attribute-entry lifetime bounds block
// lifetime, so this one choke point is the cache's whole coherence
// protocol. The epoch bump fences in-flight READ replies.
func (core *clientCore) forget(fh FH) {
	core.lock()
	core.invalEpoch.Add(1)
	delete(core.attrs, string(fh))
	if core.dc != nil {
		core.dc.dropFileLocked(string(fh))
	}
	for k := range core.access {
		if len(k) >= len(fh) && k[len(k)-len(fh):] == string(fh) {
			delete(core.access, k)
		}
	}
	prefix := string(fh) + "\x00"
	for k := range core.names {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(core.names, k)
		}
	}
	core.mu.Unlock()
}

func nameKey(dir FH, name string) string { return string(dir) + "\x00" + name }

// dropName removes one name-cache entry.
func (core *clientCore) dropName(dir FH, name string) {
	core.lock()
	delete(core.names, nameKey(dir, name))
	core.mu.Unlock()
}

// refreshDir applies post-operation directory attributes from a
// mutating reply (NFS3 wcc_data): when present the directory's
// attribute entry is refreshed in place; when absent the whole
// directory state is dropped.
func (c *Client) refreshDir(dir FH, attr *Fattr) {
	if attr == nil {
		c.core.forget(dir)
		return
	}
	c.remember(dir, attr)
}

func (c *Client) accessKey(fh FH) string { return c.principal + "\x00" + string(fh) }

// remember stores attributes under the cache policy: the server lease
// when enabled and granted, else the fixed client timeout.
func (c *Client) remember(fh FH, attr *Fattr) {
	if attr == nil {
		c.core.forget(fh)
		return
	}
	ttl := c.ttlFor(attr)
	if ttl <= 0 {
		return
	}
	c.core.lock()
	c.core.attrs[string(fh)] = attrEntry{attr: *attr, expires: time.Now().Add(ttl)}
	c.core.mu.Unlock()
}

func (c *Client) ttlFor(attr *Fattr) time.Duration {
	if c.core.cfg.UseLeases && attr != nil && attr.LeaseMS > 0 {
		return time.Duration(attr.LeaseMS) * time.Millisecond
	}
	return c.core.cfg.AttrTimeout
}

// MountRoot fetches the root file handle.
func (c *Client) MountRoot() (FH, Fattr, error) {
	var res MountRootRes
	if err := c.call(ProcMountRoot, nil, &res); err != nil {
		return nil, Fattr{}, err
	}
	if err := StatusErr(res.Status); err != nil {
		return nil, Fattr{}, err
	}
	c.remember(res.Root, res.Attr)
	return res.Root, deref(res.Attr), nil
}

func deref(a *Fattr) Fattr {
	if a == nil {
		return Fattr{}
	}
	return *a
}

// GetAttr returns attributes, from cache when fresh.
func (c *Client) GetAttr(fh FH) (Fattr, error) {
	c.core.rlock()
	if e, ok := c.core.attrs[string(fh)]; ok && time.Now().Before(e.expires) {
		c.core.mu.RUnlock()
		c.core.attrHits.Add(1)
		return e.attr, nil
	}
	c.core.mu.RUnlock()
	var res AttrRes
	if err := c.call(ProcGetAttr, FHArgs{FH: fh}, &res); err != nil {
		return Fattr{}, err
	}
	if err := StatusErr(res.Status); err != nil {
		return Fattr{}, err
	}
	c.remember(fh, res.Attr)
	return deref(res.Attr), nil
}

// SetAttr applies attribute changes.
func (c *Client) SetAttr(args SetAttrArgs) (Fattr, error) {
	var res AttrRes
	if err := c.call(ProcSetAttr, args, &res); err != nil {
		return Fattr{}, err
	}
	if err := StatusErr(res.Status); err != nil {
		c.core.forget(args.FH)
		return Fattr{}, err
	}
	if args.SetSize != nil {
		// Truncation keeps the attributes (the reply's are fresh) but
		// not the bytes.
		c.core.dropFileBlocks(args.FH)
	}
	c.remember(args.FH, res.Attr)
	return deref(res.Attr), nil
}

// Lookup resolves name in dir. In lease mode, repeat lookups are
// served from the name cache together with the attribute cache, so a
// warm pathname walk needs no RPCs at all.
func (c *Client) Lookup(dir FH, name string) (FH, Fattr, error) {
	if c.core.cfg.UseLeases {
		key := nameKey(dir, name)
		c.core.rlock()
		if e, ok := c.core.names[key]; ok && time.Now().Before(e.expires) {
			if a, ok := c.core.attrs[string(e.fh)]; ok && time.Now().Before(a.expires) {
				c.core.mu.RUnlock()
				c.core.attrHits.Add(1)
				return e.fh, a.attr, nil
			}
		}
		c.core.mu.RUnlock()
	}
	var res LookupRes
	if err := c.call(ProcLookup, DirOpArgs{Dir: dir, Name: name}, &res); err != nil {
		return nil, Fattr{}, err
	}
	if err := StatusErr(res.Status); err != nil {
		return nil, Fattr{}, err
	}
	c.remember(res.FH, res.Attr)
	if c.core.cfg.UseLeases {
		if ttl := c.ttlFor(res.Attr); ttl > 0 {
			c.core.lock()
			c.core.names[nameKey(dir, name)] = nameEntry{fh: res.FH, expires: time.Now().Add(ttl)}
			c.core.mu.Unlock()
		}
	}
	return res.FH, deref(res.Attr), nil
}

// Access checks permission bits, using the per-principal access cache
// when enabled.
func (c *Client) Access(fh FH, want uint32) (uint32, error) {
	if c.core.cfg.AccessCache {
		key := c.accessKey(fh)
		c.core.rlock()
		if e, ok := c.core.access[key]; ok && time.Now().Before(e.expires) && e.checked&want == want {
			granted := e.granted & want
			c.core.mu.RUnlock()
			c.core.accessHits.Add(1)
			return granted, nil
		}
		c.core.mu.RUnlock()
	}
	var res AccessRes
	if err := c.call(ProcAccess, AccessArgs{FH: fh, Access: want}, &res); err != nil {
		return 0, err
	}
	if err := StatusErr(res.Status); err != nil {
		return 0, err
	}
	c.remember(fh, res.Attr)
	if c.core.cfg.AccessCache {
		if ttl := c.ttlFor(res.Attr); ttl > 0 {
			key := c.accessKey(fh)
			c.core.lock()
			e := c.core.access[key]
			e.granted |= res.Access & want
			e.granted &^= want &^ res.Access
			e.checked |= want
			e.expires = time.Now().Add(ttl)
			c.core.access[key] = e
			c.core.mu.Unlock()
		}
	}
	return res.Access, nil
}

// Readlink fetches a symbolic link target.
func (c *Client) Readlink(fh FH) (string, error) {
	var res ReadlinkRes
	if err := c.call(ProcReadlink, FHArgs{FH: fh}, &res); err != nil {
		return "", err
	}
	if err := StatusErr(res.Status); err != nil {
		return "", err
	}
	return res.Target, nil
}

// Read fetches up to count bytes at offset. With the data cache
// enabled, single-block requests are served from memory while the
// file's attribute entry is live; cold full blocks go through the
// single-flight table so concurrent readers cost one READ. The
// returned slice may alias the cache — callers must not modify it.
func (c *Client) Read(fh FH, offset uint64, count uint32) ([]byte, bool, error) {
	core := c.core
	if core.dc != nil && blockSpan(offset, count) {
		if data, eof, ok := c.dataLookup(fh, offset, count); ok {
			core.dataHits.Add(1)
			return data, eof, nil
		}
		core.dataMisses.Add(1)
		if offset%DataBlockSize == 0 && count == DataBlockSize {
			return c.readShared(fh, offset)
		}
	}
	epoch := core.invalEpoch.Load()
	data, eof, err := c.readWire(fh, offset, count)
	if err == nil {
		c.populate(fh, offset, data, eof, epoch)
	}
	return data, eof, err
}

// readWire is the uncached READ round trip.
func (c *Client) readWire(fh FH, offset uint64, count uint32) ([]byte, bool, error) {
	var res ReadRes
	if err := c.call(ProcRead, ReadArgs{FH: fh, Offset: offset, Count: count}, &res); err != nil {
		return nil, false, err
	}
	if err := StatusErr(res.Status); err != nil {
		return nil, false, err
	}
	c.remember(fh, res.Attr)
	return res.Data, res.EOF, nil
}

// readShared reads one cold full block through the single-flight
// table: the first caller becomes the leader and issues the RPC,
// later callers block on its flight and share the reply.
func (c *Client) readShared(fh FH, offset uint64) ([]byte, bool, error) {
	core := c.core
	key := flightKey(c.principal, fh, offset/DataBlockSize)
	core.lock()
	if fl, ok := core.flights[key]; ok {
		core.mu.Unlock()
		core.sfShared.Add(1)
		<-fl.done
		return fl.data, fl.eof, fl.err
	}
	fl := &readFlight{done: make(chan struct{})}
	core.flights[key] = fl
	epoch := core.invalEpoch.Load()
	core.mu.Unlock()
	data, eof, err := c.readWire(fh, offset, DataBlockSize)
	if err == nil {
		c.populate(fh, offset, data, eof, epoch)
	}
	fl.data, fl.eof, fl.err = data, eof, err
	core.lock()
	delete(core.flights, key)
	core.mu.Unlock()
	close(fl.done)
	return data, eof, err
}

// ReadAheadDepth reports the configured pipelining depth: how many
// READ RPCs a sequential reader should keep outstanding. 1 means
// serial.
func (c *Client) ReadAheadDepth() int {
	d := c.core.cfg.ReadAhead
	if d == 0 {
		return DefaultReadAhead
	}
	if d < 1 {
		return 1
	}
	return d
}

// ReadStart issues an asynchronous READ and returns a future that
// yields its result. Multiple futures may be outstanding on the same
// channel — XIDs match replies to calls — which is how sequential
// reads overlap server work with wire time. Every future returned
// must be called exactly once, or the reply slot leaks. Cache-warm
// requests return an immediate future with no RPC; completions of
// cold full-block reads populate the cache, so the read-ahead
// pipeline doubles as the cache filler. Futures must be finished in
// the order they were started when several cover the same blocks.
func (c *Client) ReadStart(fh FH, offset uint64, count uint32) (func() ([]byte, bool, error), error) {
	core := c.core
	if core.dc != nil && blockSpan(offset, count) {
		if data, eof, ok := c.dataLookup(fh, offset, count); ok {
			core.dataHits.Add(1)
			return func() ([]byte, bool, error) { return data, eof, nil }, nil
		}
		core.dataMisses.Add(1)
		if offset%DataBlockSize == 0 && count == DataBlockSize {
			return c.readStartShared(fh, offset)
		}
	}
	epoch := core.invalEpoch.Load()
	fin, err := c.readStartWire(fh, offset, count)
	if err != nil || core.dc == nil {
		return fin, err
	}
	return func() ([]byte, bool, error) {
		data, eof, err := fin()
		if err == nil {
			c.populate(fh, offset, data, eof, epoch)
		}
		return data, eof, err
	}, nil
}

// readStartWire is the uncached asynchronous READ.
func (c *Client) readStartWire(fh FH, offset uint64, count uint32) (func() ([]byte, bool, error), error) {
	c.core.calls.Add(1)
	ch, err := c.core.peer.Start(Program, Version, ProcRead, c.auth(), ReadArgs{FH: fh, Offset: offset, Count: count})
	if err != nil {
		return nil, err
	}
	return func() ([]byte, bool, error) {
		var res ReadRes
		if err := c.core.peer.Finish(ch, &res); err != nil {
			return nil, false, err
		}
		if err := StatusErr(res.Status); err != nil {
			return nil, false, err
		}
		c.remember(fh, res.Attr)
		return res.Data, res.EOF, nil
	}, nil
}

// readStartShared is ReadStart's single-flight path for cold full
// blocks. The leader's future resolves the flight; joiners' futures
// wait on it. Deadlock-free as long as callers finish futures in
// start order: a joiner can only exist after its leader's flight was
// registered, so wait-for cycles between pipelines are impossible.
func (c *Client) readStartShared(fh FH, offset uint64) (func() ([]byte, bool, error), error) {
	core := c.core
	key := flightKey(c.principal, fh, offset/DataBlockSize)
	core.lock()
	if fl, ok := core.flights[key]; ok {
		core.mu.Unlock()
		core.sfShared.Add(1)
		return func() ([]byte, bool, error) {
			<-fl.done
			return fl.data, fl.eof, fl.err
		}, nil
	}
	fl := &readFlight{done: make(chan struct{})}
	core.flights[key] = fl
	epoch := core.invalEpoch.Load()
	core.mu.Unlock()
	resolve := func(data []byte, eof bool, err error) {
		fl.data, fl.eof, fl.err = data, eof, err
		core.lock()
		delete(core.flights, key)
		core.mu.Unlock()
		close(fl.done)
	}
	fin, err := c.readStartWire(fh, offset, DataBlockSize)
	if err != nil {
		resolve(nil, false, err)
		return nil, err
	}
	return func() ([]byte, bool, error) {
		data, eof, err := fin()
		if err == nil {
			c.populate(fh, offset, data, eof, epoch)
		}
		resolve(data, eof, err)
		return data, eof, err
	}, nil
}

// sizeHint returns the file's cached size, if fresh.
func (c *Client) sizeHint(fh FH) (uint64, bool) {
	c.core.rlock()
	defer c.core.mu.RUnlock()
	if e, ok := c.core.attrs[string(fh)]; ok && time.Now().Before(e.expires) {
		return e.attr.Size, true
	}
	return 0, false
}

// Write stores data at offset with the given stability. Acknowledged
// bytes are folded into the data cache so re-reads of freshly written
// data stay off the wire.
func (c *Client) Write(fh FH, offset uint64, data []byte, stable uint32) (uint32, error) {
	epoch := c.core.invalEpoch.Load()
	var res WriteRes
	if err := c.call(ProcWrite, WriteArgs{FH: fh, Offset: offset, Stable: stable, Data: data}, &res); err != nil {
		return 0, err
	}
	if err := StatusErr(res.Status); err != nil {
		c.core.forget(fh)
		return 0, err
	}
	c.remember(fh, res.Attr)
	c.noteWrite(fh, offset, data, epoch, false)
	return res.Count, nil
}

// WriteBehindDepth reports the configured write pipelining depth: how
// many unstable WRITEs a writer should keep outstanding per file. 0
// means write-behind is disabled (serial synchronous writes).
func (c *Client) WriteBehindDepth() int {
	d := c.core.cfg.WriteBehind
	if d == 0 {
		return DefaultWriteBehind
	}
	if d < 0 {
		return 0
	}
	return d
}

// WriteStart issues an asynchronous WRITE and returns a future that
// yields the acknowledged byte count and the server's write verifier.
// The data is fully serialized onto the wire buffer before WriteStart
// returns, so the caller may reuse its slice immediately. As with
// ReadStart, every future returned must eventually be called, or the
// reply slot leaks.
func (c *Client) WriteStart(fh FH, offset uint64, data []byte, stable uint32) (func() (uint32, uint64, error), error) {
	epoch := c.core.invalEpoch.Load()
	c.core.calls.Add(1)
	ch, err := c.core.peer.Start(Program, Version, ProcWrite, c.auth(), WriteArgs{FH: fh, Offset: offset, Stable: stable, Data: data})
	if err != nil {
		return nil, err
	}
	// The cache copy is taken before WriteStart returns: write-behind
	// recycles its pooled chunks as soon as it regains control, so
	// the future must not look at data.
	var cached []byte
	if c.core.dc != nil && len(data) > 0 {
		cached = append([]byte(nil), data...)
	}
	return func() (uint32, uint64, error) {
		var res WriteRes
		if err := c.core.peer.Finish(ch, &res); err != nil {
			return 0, 0, err
		}
		if err := StatusErr(res.Status); err != nil {
			c.core.forget(fh)
			return 0, 0, err
		}
		c.remember(fh, res.Attr)
		if cached != nil {
			c.noteWrite(fh, offset, cached, epoch, true)
		}
		return res.Count, res.Verf, nil
	}, nil
}

// Create makes a regular file.
func (c *Client) Create(dir FH, name string, mode uint32, exclusive bool) (FH, Fattr, error) {
	var res LookupRes
	if err := c.call(ProcCreate, CreateArgs{Dir: dir, Name: name, Mode: mode, Exclusive: exclusive}, &res); err != nil {
		return nil, Fattr{}, err
	}
	c.core.dropName(dir, name)
	if err := StatusErr(res.Status); err != nil {
		c.core.forget(dir)
		return nil, Fattr{}, err
	}
	c.refreshDir(dir, res.DirAttr)
	c.remember(res.FH, res.Attr)
	return res.FH, deref(res.Attr), nil
}

// Mkdir makes a directory.
func (c *Client) Mkdir(dir FH, name string, mode uint32) (FH, Fattr, error) {
	var res LookupRes
	if err := c.call(ProcMkdir, MkdirArgs{Dir: dir, Name: name, Mode: mode}, &res); err != nil {
		return nil, Fattr{}, err
	}
	c.core.dropName(dir, name)
	if err := StatusErr(res.Status); err != nil {
		c.core.forget(dir)
		return nil, Fattr{}, err
	}
	c.refreshDir(dir, res.DirAttr)
	c.remember(res.FH, res.Attr)
	return res.FH, deref(res.Attr), nil
}

// Symlink creates a symbolic link.
func (c *Client) Symlink(dir FH, name, target string) (FH, Fattr, error) {
	var res LookupRes
	if err := c.call(ProcSymlink, SymlinkArgs{Dir: dir, Name: name, Target: target}, &res); err != nil {
		return nil, Fattr{}, err
	}
	c.core.dropName(dir, name)
	if err := StatusErr(res.Status); err != nil {
		c.core.forget(dir)
		return nil, Fattr{}, err
	}
	c.refreshDir(dir, res.DirAttr)
	c.remember(res.FH, res.Attr)
	return res.FH, deref(res.Attr), nil
}

// Remove unlinks a file.
func (c *Client) Remove(dir FH, name string) error {
	var res StatusRes
	if err := c.call(ProcRemove, DirOpArgs{Dir: dir, Name: name}, &res); err != nil {
		return err
	}
	c.core.dropName(dir, name)
	if err := StatusErr(res.Status); err != nil {
		c.core.forget(dir)
		return err
	}
	c.refreshDir(dir, res.DirAttr)
	return nil
}

// Rmdir removes a directory.
func (c *Client) Rmdir(dir FH, name string) error {
	var res StatusRes
	if err := c.call(ProcRmdir, DirOpArgs{Dir: dir, Name: name}, &res); err != nil {
		return err
	}
	c.core.dropName(dir, name)
	if err := StatusErr(res.Status); err != nil {
		c.core.forget(dir)
		return err
	}
	c.refreshDir(dir, res.DirAttr)
	return nil
}

// Rename moves a name.
func (c *Client) Rename(fromDir FH, fromName string, toDir FH, toName string) error {
	var res StatusRes
	if err := c.call(ProcRename, RenameArgs{FromDir: fromDir, FromName: fromName, ToDir: toDir, ToName: toName}, &res); err != nil {
		return err
	}
	c.core.dropName(fromDir, fromName)
	c.core.dropName(toDir, toName)
	if err := StatusErr(res.Status); err != nil {
		c.core.forget(fromDir)
		c.core.forget(toDir)
		return err
	}
	c.refreshDir(fromDir, res.DirAttr)
	c.refreshDir(toDir, res.DirAttr2)
	return nil
}

// Link creates a hard link.
func (c *Client) Link(file, dir FH, name string) error {
	var res StatusRes
	if err := c.call(ProcLink, LinkArgs{File: file, Dir: dir, Name: name}, &res); err != nil {
		return err
	}
	c.core.dropName(dir, name)
	c.core.forget(file)
	if err := StatusErr(res.Status); err != nil {
		c.core.forget(dir)
		return err
	}
	c.refreshDir(dir, res.DirAttr)
	return nil
}

// ReadDir lists entries after cookie.
func (c *Client) ReadDir(dir FH, cookie uint64, count uint32) ([]Entry, bool, error) {
	var res ReadDirRes
	if err := c.call(ProcReadDir, ReadDirArgs{Dir: dir, Cookie: cookie, Count: count}, &res); err != nil {
		return nil, false, err
	}
	if err := StatusErr(res.Status); err != nil {
		return nil, false, err
	}
	for _, e := range res.Entries {
		c.remember(e.FH, e.Attr)
	}
	return res.Entries, res.EOF, nil
}

// Commit flushes unstable writes and returns the write verifier the
// data is now stable under. Callers holding unstable data compare it
// with the verifier their WRITE replies carried: a difference means
// the server rebooted in between and the data must be retransmitted.
func (c *Client) Commit(fh FH) (uint64, error) {
	var res CommitRes
	if err := c.call(ProcCommit, FHArgs{FH: fh}, &res); err != nil {
		return 0, err
	}
	if err := StatusErr(res.Status); err != nil {
		return 0, err
	}
	c.remember(fh, res.Attr)
	return res.Verf, nil
}

// Null performs a no-op round trip, for latency measurement.
func (c *Client) Null() error {
	return c.call(ProcNull, nil, &struct{}{})
}

// IDNames maps numeric IDs to the server's user and group names (the
// libsfs mapping service). Unknown IDs come back as empty strings.
func (c *Client) IDNames(uids, gids []uint32) ([]string, []string, error) {
	if uids == nil {
		uids = []uint32{}
	}
	if gids == nil {
		gids = []uint32{}
	}
	var res IDNamesRes
	if err := c.call(ProcIDNames, IDNamesArgs{UIDs: uids, GIDs: gids}, &res); err != nil {
		return nil, nil, err
	}
	if err := StatusErr(res.Status); err != nil {
		return nil, nil, err
	}
	return res.UserNames, res.GroupNames, nil
}

// Call issues a raw RPC on the shared transport with this view's
// credentials; the SFS client uses it for the login protocol that
// shares the file connection.
func (c *Client) Call(prog, vers, proc uint32, args, res interface{}) error {
	c.core.calls.Add(1)
	return c.core.peer.Call(prog, vers, proc, c.auth(), args, res)
}

// ReadAll reads an entire file in chunked RPCs. With read-ahead
// enabled it keeps a window of READs in flight, using the cached file
// size (when fresh) to presize the result and avoid issuing past EOF.
func (c *Client) ReadAll(fh FH, chunk uint32) ([]byte, error) {
	depth := c.ReadAheadDepth()
	if depth <= 1 {
		return c.readAllSerial(fh, chunk)
	}

	size, sizeKnown := c.sizeHint(fh)
	var out []byte
	if sizeKnown && size < 1<<30 {
		out = make([]byte, 0, size)
	}

	// First chunk serial when the size is unknown: most files fit in
	// one chunk, and the reply's attributes usually populate the hint
	// for the rest.
	if !sizeKnown {
		data, eof, err := c.Read(fh, 0, chunk)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		if eof || len(data) == 0 {
			return out, nil
		}
		if uint64(len(data)) < uint64(chunk) {
			return c.readAllTail(fh, chunk, out)
		}
		size, sizeKnown = c.sizeHint(fh)
	}

	window := make([]func() ([]byte, bool, error), 0, depth)
	drain := func() {
		for _, fin := range window {
			fin() //nolint:errcheck // unwanted speculative replies
		}
		window = window[:0]
	}

	next := uint64(len(out)) // next offset to issue
	canIssue := func() bool { return !sizeKnown || next < size }
	issue := func() error {
		fin, err := c.ReadStart(fh, next, chunk)
		if err != nil {
			return err
		}
		window = append(window, fin)
		next += uint64(chunk)
		return nil
	}

	for len(window) < depth && canIssue() {
		if err := issue(); err != nil {
			drain()
			return nil, err
		}
	}
	for len(window) > 0 {
		fin := window[0]
		window = window[1:]
		data, eof, err := fin()
		if err != nil {
			drain()
			return nil, err
		}
		out = append(out, data...)
		if eof || len(data) == 0 {
			drain()
			return out, nil
		}
		if uint64(len(data)) < uint64(chunk) {
			// Short read without EOF: the speculative later READs
			// fetched the wrong offsets; finish serially.
			drain()
			return c.readAllTail(fh, chunk, out)
		}
		if canIssue() {
			if err := issue(); err != nil {
				drain()
				return nil, err
			}
		}
	}
	// The window drained without an EOF reply (the size hint was stale
	// or exact): confirm the tail serially.
	return c.readAllTail(fh, chunk, out)
}

// readAllTail continues a partially assembled read serially.
func (c *Client) readAllTail(fh FH, chunk uint32, out []byte) ([]byte, error) {
	for {
		data, eof, err := c.Read(fh, uint64(len(out)), chunk)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		if eof || len(data) == 0 {
			return out, nil
		}
	}
}

func (c *Client) readAllSerial(fh FH, chunk uint32) ([]byte, error) {
	return c.readAllTail(fh, chunk, nil)
}
