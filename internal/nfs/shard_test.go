package nfs

// Tests for the striped lease table and the no-RPC-under-lock rule:
// a stalled client must only ever stall its own invalidation
// goroutine, never a writer on another session, and the lease
// bookkeeping must hold up under concurrent attach/detach/invalidate
// (run these with -race).

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vfs"
)

// stallableConn passes writes through until Stall is called, then
// blocks them until the test finishes — simulating a client that
// stopped draining its connection while the server has callbacks to
// push at it. net.Pipe has no buffer, so one undrained callback would
// block the writing goroutine exactly like a zero-window TCP peer.
type stallableConn struct {
	io.ReadWriteCloser
	stalled atomic.Bool
	release chan struct{}
}

func newStallableConn(c io.ReadWriteCloser) *stallableConn {
	return &stallableConn{ReadWriteCloser: c, release: make(chan struct{})}
}

func (c *stallableConn) Stall() { c.stalled.Store(true) }

func (c *stallableConn) Write(p []byte) (int, error) {
	if c.stalled.Load() {
		<-c.release
		return 0, io.ErrClosedPipe
	}
	return c.ReadWriteCloser.Write(p)
}

// TestStalledSessionDoesNotBlockWriters is the regression test for
// lease-break callbacks escaping every server lock: before the lease
// table was striped and callbacks moved to detached goroutines, a
// client that stopped reading could wedge any writer that needed to
// invalidate a lease the stalled client held.
func TestStalledSessionDoesNotBlockWriters(t *testing.T) {
	fs := vfs.New()
	srv := NewServer(fs, sfsServerConfig())

	// Session A: acquires leases, then goes deaf.
	a1, a2 := net.Pipe()
	aConn := newStallableConn(a2)
	sessA := srv.ServeConn(aConn)
	defer sessA.Close()
	defer close(aConn.release)
	clA := Dial(a1, ClientConfig{Auth: rootAuth, UseLeases: true})
	defer clA.Close()

	// Session B: the writer that must not be affected.
	b1, b2 := net.Pipe()
	sessB := srv.ServeConn(b2)
	defer sessB.Close()
	clB := Dial(b1, ClientConfig{Auth: rootAuth, UseLeases: true})
	defer clB.Close()

	rootA, _, err := clA.MountRoot()
	if err != nil {
		t.Fatal(err)
	}
	fh, _, err := clA.Create(rootA, "f", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clA.GetAttr(fh); err != nil { // lease on f for session A
		t.Fatal(err)
	}
	rootB, _, err := clB.MountRoot()
	if err != nil {
		t.Fatal(err)
	}
	fhB, _, err := clB.Lookup(rootB, "f")
	if err != nil {
		t.Fatal(err)
	}

	aConn.Stall()

	// B's write triggers an invalidation callback to the now-deaf A.
	// The callback goroutine blocks forever; the write must not.
	done := make(chan error, 1)
	go func() {
		if _, err := clB.Write(fhB, 0, []byte("x"), FileSync); err != nil {
			done <- err
			return
		}
		// Unrelated traffic on the same server must flow too.
		_, _, err := clB.Create(rootB, "g", 0o644, true)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked behind a stalled session's callback")
	}

	st := srv.StatsSnapshot()
	if st.Leases.Granted == 0 {
		t.Fatal("no leases granted — test exercised nothing")
	}
	if st.Leases.Breaks == 0 {
		t.Fatal("no lease break recorded for the stalled session")
	}
}

// TestConcurrentLeaseAttachDetachInvalidate hammers the striped lease
// table from many goroutines: grants and invalidations on overlapping
// files race against whole sessions detaching. Run with -race; the
// assertion here is only that nothing deadlocks and the table drains.
func TestConcurrentLeaseAttachDetachInvalidate(t *testing.T) {
	fs := vfs.New()
	srv := NewServer(fs, sfsServerConfig())

	const nSessions = 4
	sessions := make([]*Session, nSessions)
	for i := range sessions {
		c1, c2 := net.Pipe()
		sessions[i] = srv.ServeConn(c2)
		// Drain the client side so callback writes never block.
		go io.Copy(io.Discard, c1) //nolint:errcheck
		defer c1.Close()
	}

	const nFiles = 100 // spans several stripes and collides within them
	ids := make([]vfs.FileID, nFiles)
	root := fs.Root()
	for i := range ids {
		id, _, err := fs.Create(vfs.Cred{UID: 0}, root, "f"+uitoa(uint32(i)), 0o644, true)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, sess := range sessions {
		sess := sess
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				srv.grantLease(sess, ids[i%nFiles])
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				srv.invalidate(nil, ids[i%nFiles], ids[(i+nFiles/2)%nFiles])
			}
		}()
	}
	// Sessions detach (and new grants keep landing) while the above runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, sess := range sessions[:nSessions/2] {
			time.Sleep(10 * time.Millisecond)
			srv.dropSession(sess)
		}
	}()

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Invalidating everything leaves the table empty.
	srv.invalidate(nil, ids...)
	for i := range srv.leases {
		ls := &srv.leases[i]
		ls.mu.Lock()
		n := len(ls.m)
		ls.mu.Unlock()
		if n != 0 {
			t.Fatalf("stripe %d still holds %d lease entries", i, n)
		}
	}
	if srv.StatsSnapshot().Leases.StripeLocks == 0 {
		t.Fatal("stripe lock counter never moved")
	}
}
