package nfs

import (
	"net"
	"testing"

	"repro/internal/vfs"
)

// benchWritePair is newPair for benchmarks: a server and client joined
// by an in-process pipe, with an 8 KB-chunk test file created.
func benchWritePair(b *testing.B) (*Client, FH) {
	b.Helper()
	fs := vfs.New()
	srv := NewServer(fs, ServerConfig{})
	c1, c2 := net.Pipe()
	sess := srv.ServeConn(c2)
	b.Cleanup(func() { sess.Close() })
	cl := Dial(c1, ClientConfig{Auth: rootAuth})
	b.Cleanup(func() { cl.Close() })
	root, _, err := cl.MountRoot()
	if err != nil {
		b.Fatal(err)
	}
	fh, _, err := cl.Create(root, "bench.bin", 0o644, true)
	if err != nil {
		b.Fatal(err)
	}
	return cl, fh
}

// BenchmarkWritePathSerial measures one synchronous unstable 8 KB
// WRITE RPC round trip — the per-chunk cost the pre-pipeline client
// paid, and the client-side allocation budget of the write path
// (pooled wire buffers keep it flat).
func BenchmarkWritePathSerial(b *testing.B) {
	cl, fh := benchWritePair(b)
	payload := make([]byte, 8192)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Write(fh, 0, payload, Unstable); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePathPipelined measures the same WRITE with a window of
// 8 in flight — the write-behind shape: WriteStart serializes and
// sends, the future collects the reply a window later.
func BenchmarkWritePathPipelined(b *testing.B) {
	cl, fh := benchWritePair(b)
	payload := make([]byte, 8192)
	const window = DefaultWriteBehind
	fins := make([]func() (uint32, uint64, error), 0, window)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(fins) == window {
			if _, _, err := fins[0](); err != nil {
				b.Fatal(err)
			}
			fins = fins[1:]
		}
		fin, err := cl.WriteStart(fh, uint64(i%window)*8192, payload, Unstable)
		if err != nil {
			b.Fatal(err)
		}
		fins = append(fins, fin)
	}
	for _, fin := range fins {
		if _, _, err := fin(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePathSyncBatch measures a whole write-behind batch the
// way Sync issues it: 8 pipelined unstable WRITEs followed by one
// COMMIT covering them.
func BenchmarkWritePathSyncBatch(b *testing.B) {
	cl, fh := benchWritePair(b)
	payload := make([]byte, 8192)
	const window = DefaultWriteBehind
	b.ReportAllocs()
	b.SetBytes(int64(len(payload) * window))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var fins [window]func() (uint32, uint64, error)
		for j := 0; j < window; j++ {
			fin, err := cl.WriteStart(fh, uint64(j)*8192, payload, Unstable)
			if err != nil {
				b.Fatal(err)
			}
			fins[j] = fin
		}
		for _, fin := range fins {
			if _, _, err := fin(); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := cl.Commit(fh); err != nil {
			b.Fatal(err)
		}
	}
}
