package nfs

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/sunrpc"
	"repro/internal/vfs"
)

func rootAuth() sunrpc.OpaqueAuth { return sunrpc.UnixAuth(0, []uint32{0}) }

func newPair(t *testing.T, srvCfg ServerConfig, clCfg ClientConfig) (*vfs.FS, *Server, *Client) {
	t.Helper()
	fs := vfs.New()
	srv := NewServer(fs, srvCfg)
	c1, c2 := net.Pipe()
	sess := srv.ServeConn(c2)
	t.Cleanup(func() { sess.Close() })
	if clCfg.Auth == nil {
		clCfg.Auth = rootAuth
	}
	cl := Dial(c1, clCfg)
	t.Cleanup(func() { cl.Close() })
	return fs, srv, cl
}

func sfsServerConfig() ServerConfig {
	return ServerConfig{LeaseMS: 60000, Callbacks: true}
}

func sfsClientConfig() ClientConfig {
	return ClientConfig{UseLeases: true, AccessCache: true, AttrTimeout: 3 * time.Second}
}

func TestMountAndBasicOps(t *testing.T) {
	_, _, cl := newPair(t, ServerConfig{}, ClientConfig{})
	root, attr, err := cl.MountRoot()
	if err != nil {
		t.Fatal(err)
	}
	if attr.Type != TypeDir {
		t.Fatal("root is not a dir")
	}
	fh, _, err := cl.Create(root, "f.txt", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Write(fh, 0, []byte("hello over the wire"), Unstable); err != nil {
		t.Fatal(err)
	}
	got, eof, err := cl.Read(fh, 0, 100)
	if err != nil || !eof {
		t.Fatalf("read: %v eof=%v", err, eof)
	}
	if string(got) != "hello over the wire" {
		t.Fatalf("got %q", got)
	}
	lfh, lattr, err := cl.Lookup(root, "f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lfh, fh) || lattr.Size != 19 {
		t.Fatalf("lookup: %x size=%d", lfh, lattr.Size)
	}
}

func TestErrorsMapped(t *testing.T) {
	_, _, cl := newPair(t, ServerConfig{}, ClientConfig{})
	root, _, _ := cl.MountRoot()
	if _, _, err := cl.Lookup(root, "missing"); !errors.Is(err, Error(ErrNoEnt)) {
		t.Fatalf("lookup missing: %v", err)
	}
	cl.Create(root, "f", 0o644, true) //nolint:errcheck
	if _, _, err := cl.Create(root, "f", 0o644, true); !errors.Is(err, Error(ErrExist)) {
		t.Fatalf("exclusive create: %v", err)
	}
	if err := cl.Rmdir(root, "f"); !errors.Is(err, Error(ErrNotDir)) {
		t.Fatalf("rmdir on file: %v", err)
	}
	if _, _, err := cl.Lookup(FH("bogus handle..................."), "x"); err == nil {
		t.Fatal("bogus handle accepted")
	}
}

func TestDirOpsOverWire(t *testing.T) {
	_, _, cl := newPair(t, ServerConfig{}, ClientConfig{})
	root, _, _ := cl.MountRoot()
	d, _, err := cl.Mkdir(root, "dir", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "c"} {
		if _, _, err := cl.Create(d, n, 0o644, true); err != nil {
			t.Fatal(err)
		}
	}
	ents, eof, err := cl.ReadDir(d, 0, 100)
	if err != nil || !eof || len(ents) != 3 {
		t.Fatalf("readdir: %d entries eof=%v err=%v", len(ents), eof, err)
	}
	// READDIRPLUS-style handles and attrs present.
	for _, e := range ents {
		if len(e.FH) == 0 || e.Attr == nil {
			t.Fatalf("entry %q missing fh/attr", e.Name)
		}
	}
	if err := cl.Rename(d, "a", root, "a-moved"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove(d, "b"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove(d, "c"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Rmdir(root, "dir"); err != nil {
		t.Fatal(err)
	}
}

func TestSymlinkOverWire(t *testing.T) {
	_, _, cl := newPair(t, ServerConfig{}, ClientConfig{})
	root, _, _ := cl.MountRoot()
	fh, attr, err := cl.Symlink(root, "link", "/sfs/host:abc/file")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Type != TypeSymlink {
		t.Fatal("wrong type")
	}
	target, err := cl.Readlink(fh)
	if err != nil || target != "/sfs/host:abc/file" {
		t.Fatalf("readlink: %q %v", target, err)
	}
}

func TestSetAttrOverWire(t *testing.T) {
	_, _, cl := newPair(t, ServerConfig{}, ClientConfig{})
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	cl.Write(fh, 0, []byte("0123456789"), Unstable) //nolint:errcheck
	sz := uint64(4)
	attr, err := cl.SetAttr(SetAttrArgs{FH: fh, SetSize: &sz})
	if err != nil || attr.Size != 4 {
		t.Fatalf("truncate: %+v %v", attr, err)
	}
	mode := uint32(0o600)
	attr, err = cl.SetAttr(SetAttrArgs{FH: fh, SetMode: &mode})
	if err != nil || attr.Mode != 0o600 {
		t.Fatalf("chmod: %+v %v", attr, err)
	}
}

func TestCredentialEnforcementOverWire(t *testing.T) {
	fsys, _, cl := newPair(t, ServerConfig{}, ClientConfig{
		Auth: func() sunrpc.OpaqueAuth { return sunrpc.UnixAuth(1001, []uint32{1001}) },
	})
	// Server-side: make a root-owned 0600 file.
	id, _, err := fsys.Create(vfs.Cred{UID: 0}, fsys.Root(), "secret", 0o600, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Write(vfs.Cred{UID: 0}, id, 0, []byte("top"), false); err != nil {
		t.Fatal(err)
	}
	root, _, _ := cl.MountRoot()
	fh, _, err := cl.Lookup(root, "secret")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read(fh, 0, 10); !errors.Is(err, Error(ErrAcces)) {
		t.Fatalf("unauthorized read: %v", err)
	}
}

func TestAttrCachingReducesRPCs(t *testing.T) {
	_, _, cl := newPair(t, sfsServerConfig(), sfsClientConfig())
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	before := cl.Stats().Calls
	for i := 0; i < 10; i++ {
		if _, err := cl.GetAttr(fh); err != nil {
			t.Fatal(err)
		}
	}
	st := cl.Stats()
	if st.Calls != before {
		t.Fatalf("leased GETATTRs went over the wire: %d calls", st.Calls-before)
	}
	if st.AttrHits < 10 {
		t.Fatalf("attr hits = %d", st.AttrHits)
	}
}

func TestNoCachingWithoutLeases(t *testing.T) {
	_, _, cl := newPair(t, ServerConfig{}, ClientConfig{}) // plain NFS, AttrTimeout 0
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	before := cl.Stats().Calls
	for i := 0; i < 5; i++ {
		cl.GetAttr(fh) //nolint:errcheck
	}
	if got := cl.Stats().Calls - before; got != 5 {
		t.Fatalf("expected 5 wire GETATTRs, got %d", got)
	}
}

func TestAccessCache(t *testing.T) {
	_, _, cl := newPair(t, sfsServerConfig(), sfsClientConfig())
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	if _, err := cl.Access(fh, AccessRead); err != nil {
		t.Fatal(err)
	}
	before := cl.Stats().Calls
	for i := 0; i < 10; i++ {
		got, err := cl.Access(fh, AccessRead)
		if err != nil {
			t.Fatal(err)
		}
		if got&AccessRead == 0 {
			t.Fatal("cached access lost the grant")
		}
	}
	if cl.Stats().Calls != before {
		t.Fatal("cached ACCESS checks went over the wire")
	}
}

func TestInvalidationCallback(t *testing.T) {
	fsys := vfs.New()
	srv := NewServer(fsys, sfsServerConfig())
	mk := func() *Client {
		a, b := net.Pipe()
		srv.ServeConn(b)
		cl := Dial(a, ClientConfig{UseLeases: true, AccessCache: true, Auth: rootAuth})
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	cl1, cl2 := mk(), mk()
	root1, _, err := cl1.MountRoot()
	if err != nil {
		t.Fatal(err)
	}
	root2, _, _ := cl2.MountRoot()
	fh1, _, _ := cl1.Create(root1, "shared", 0o666, true)
	// Client 2 caches the attributes.
	fh2, _, err := cl2.Lookup(root2, "shared")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.GetAttr(fh2); err != nil {
		t.Fatal(err)
	}
	// Client 1 writes; server should call back to client 2. Earlier
	// directory operations may already have produced callbacks, so
	// wait for the file-level one by polling the cache contents.
	before := cl2.Stats().Invals
	if _, err := cl1.Write(fh1, 0, []byte("invalidate me"), Unstable); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for cl2.Stats().Invals == before {
		if time.Now().After(deadline) {
			t.Fatal("no invalidation callback arrived")
		}
		time.Sleep(time.Millisecond)
	}
	// Next GetAttr must go to the server and see the new size. The
	// write-callback races only with itself here: poll until the
	// stale entry is gone.
	deadline = time.Now().Add(2 * time.Second)
	for {
		attr, err := cl2.GetAttr(fh2)
		if err != nil {
			t.Fatal(err)
		}
		if attr.Size == 13 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale size %d after invalidation", attr.Size)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMutationInvalidatesOwnCache(t *testing.T) {
	_, _, cl := newPair(t, sfsServerConfig(), sfsClientConfig())
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	cl.GetAttr(fh) //nolint:errcheck
	if _, err := cl.Write(fh, 0, []byte("xyz"), Unstable); err != nil {
		t.Fatal(err)
	}
	attr, err := cl.GetAttr(fh)
	if err != nil || attr.Size != 3 {
		t.Fatalf("size %d err %v after write", attr.Size, err)
	}
}

func TestReadAllChunks(t *testing.T) {
	_, _, cl := newPair(t, ServerConfig{}, ClientConfig{})
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "big", 0o644, true)
	want := bytes.Repeat([]byte("0123456789abcdef"), 1000) // 16 KB
	if _, err := cl.Write(fh, 0, want, Unstable); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadAll(fh, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ReadAll returned %d bytes, want %d", len(got), len(want))
	}
}

func TestWriteSizeLimit(t *testing.T) {
	_, _, cl := newPair(t, ServerConfig{MaxIO: 1024}, ClientConfig{})
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	if _, err := cl.Write(fh, 0, make([]byte, 2048), Unstable); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestStaleAfterRemove(t *testing.T) {
	_, _, cl := newPair(t, ServerConfig{}, ClientConfig{})
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	if err := cl.Remove(root, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetAttr(fh); !errors.Is(err, Error(ErrStale)) {
		t.Fatalf("got %v, want stale", err)
	}
}

func TestCommit(t *testing.T) {
	fsys, _, cl := newPair(t, ServerConfig{}, ClientConfig{})
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	if _, err := cl.Write(fh, 0, []byte("unstable"), Unstable); err != nil {
		t.Fatal(err)
	}
	verf, err := cl.Commit(fh)
	if err != nil {
		t.Fatal(err)
	}
	if verf != fsys.Verifier() {
		t.Fatalf("commit verifier %x, server boot verifier %x", verf, fsys.Verifier())
	}
}

func TestUDPHandlerMode(t *testing.T) {
	fsys := vfs.New()
	srv := NewServer(fsys, ServerConfig{})
	rpc := sunrpc.NewServer()
	rpc.Register(Program, Version, srv.Handler())
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go rpc.ServePacket(pc) //nolint:errcheck
	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := Dial(sunrpc.NewDatagramConn(conn), ClientConfig{Auth: rootAuth})
	defer cl.Close()
	root, _, err := cl.MountRoot()
	if err != nil {
		t.Fatal(err)
	}
	fh, _, err := cl.Create(root, "udp.txt", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Write(fh, 0, []byte("datagram"), Unstable); err != nil {
		t.Fatal(err)
	}
	data, _, err := cl.Read(fh, 0, 100)
	if err != nil || string(data) != "datagram" {
		t.Fatalf("read over UDP: %q %v", data, err)
	}
}

func TestPlainCodecRoundTrip(t *testing.T) {
	c := PlainCodec{}
	fh := c.Encode(12345)
	id, err := c.Decode(fh)
	if err != nil || id != 12345 {
		t.Fatalf("round trip: %d %v", id, err)
	}
	if _, err := c.Decode(FH("short")); err == nil {
		t.Fatal("short handle accepted")
	}
}

func BenchmarkNullRPC(b *testing.B) {
	fsys := vfs.New()
	srv := NewServer(fsys, ServerConfig{})
	c1, c2 := net.Pipe()
	srv.ServeConn(c2)
	cl := Dial(c1, ClientConfig{Auth: rootAuth})
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Null(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead8K(b *testing.B) {
	fsys := vfs.New()
	srv := NewServer(fsys, ServerConfig{})
	c1, c2 := net.Pipe()
	srv.ServeConn(c2)
	cl := Dial(c1, ClientConfig{Auth: rootAuth})
	defer cl.Close()
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	cl.Write(fh, 0, make([]byte, 8192), Unstable) //nolint:errcheck
	b.SetBytes(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Read(fh, 0, 8192); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWriteStartPipelined(t *testing.T) {
	fsys, _, cl := newPair(t, ServerConfig{}, ClientConfig{})
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	// Issue a whole window of unstable WRITEs before finishing any
	// future, then collect the replies in order.
	payload := []byte("0123456789abcdef")
	var fins []func() (uint32, uint64, error)
	for i := 0; i < 8; i++ {
		fin, err := cl.WriteStart(fh, uint64(i*len(payload)), payload, Unstable)
		if err != nil {
			t.Fatal(err)
		}
		fins = append(fins, fin)
	}
	for i, fin := range fins {
		n, verf, err := fin()
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if n != uint32(len(payload)) {
			t.Fatalf("write %d: short count %d", i, n)
		}
		if verf != fsys.Verifier() {
			t.Fatalf("write %d: verifier %x, server boot verifier %x", i, verf, fsys.Verifier())
		}
	}
	got, err := cl.ReadAll(fh, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat(payload, 8)) {
		t.Fatalf("readback %d bytes mismatched", len(got))
	}
}

func TestWriteVerifierChangesAcrossRestart(t *testing.T) {
	fsys, _, cl := newPair(t, ServerConfig{}, ClientConfig{})
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	fin, err := cl.WriteStart(fh, 0, []byte("before"), Unstable)
	if err != nil {
		t.Fatal(err)
	}
	_, verf1, err := fin()
	if err != nil {
		t.Fatal(err)
	}
	// A simulated server reboot discards the uncommitted write and
	// bumps the boot verifier; both WRITE and COMMIT must expose the
	// new one so the client knows to retransmit.
	fsys.Restart()
	fin, err = cl.WriteStart(fh, 0, []byte("after!"), Unstable)
	if err != nil {
		t.Fatal(err)
	}
	_, verf2, err := fin()
	if err != nil {
		t.Fatal(err)
	}
	if verf1 == verf2 {
		t.Fatalf("verifier did not change across restart: %x", verf1)
	}
	cverf, err := cl.Commit(fh)
	if err != nil {
		t.Fatal(err)
	}
	if cverf != verf2 {
		t.Fatalf("commit verifier %x != post-restart write verifier %x", cverf, verf2)
	}
}
