package nfs

// Tests for the client data block cache: warm re-reads must cost zero
// RPCs, coherence must ride the attribute machinery (remote write →
// callback → fresh bytes), eviction must respect the byte budget, the
// single-flight table must collapse concurrent cold reads, cache hits
// must stay per-principal, and the warm hit path must not allocate.

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vfs"
)

// dataCachePair builds a leased server and one client with the data
// cache enabled at the given budget (0 = default).
func dataCachePair(t *testing.T, budget int64) (*Server, *Client) {
	t.Helper()
	fsys := vfs.New()
	srv := NewServer(fsys, sfsServerConfig())
	return srv, dataCacheClient(t, srv, budget)
}

// dataCacheClient attaches one more leased client to srv.
func dataCacheClient(t *testing.T, srv *Server, budget int64) *Client {
	t.Helper()
	a, b := net.Pipe()
	srv.ServeConn(b)
	cl := Dial(a, ClientConfig{
		UseLeases: true, AccessCache: true, Auth: rootAuth,
		DataCacheBytes: budget,
	})
	t.Cleanup(func() { cl.Close() })
	return cl
}

// fillPattern writes n bytes of a deterministic pattern through cl.
func fillPattern(t *testing.T, cl *Client, fh FH, n int) []byte {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i>>8) ^ byte(i)
	}
	for off := 0; off < n; off += DataBlockSize {
		end := off + DataBlockSize
		if end > n {
			end = n
		}
		if _, err := cl.Write(fh, uint64(off), data[off:end], Unstable); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Commit(fh); err != nil {
		t.Fatal(err)
	}
	return data
}

// TestWarmSequentialRereadZeroRPCs is the acceptance bar: after one
// cold sequential read of a 1 MB file, re-reading it must be served
// entirely from the data cache — zero RPCs of any kind.
func TestWarmSequentialRereadZeroRPCs(t *testing.T) {
	srv, reader := dataCachePair(t, 0)
	writer := dataCacheClient(t, srv, 0)
	const size = 1 << 20

	rootW, _, err := writer.MountRoot()
	if err != nil {
		t.Fatal(err)
	}
	fhW, _, err := writer.Create(rootW, "warm.bin", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	want := fillPattern(t, writer, fhW, size)

	rootR, _, err := reader.MountRoot()
	if err != nil {
		t.Fatal(err)
	}
	fh, _, err := reader.Lookup(rootR, "warm.bin")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := reader.ReadAll(fh, DataBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, want) {
		t.Fatalf("cold read corrupted: %d vs %d bytes", len(cold), len(want))
	}
	st1 := reader.Stats()
	warm, err := reader.ReadAll(fh, DataBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	st2 := reader.Stats()
	if !bytes.Equal(warm, want) {
		t.Fatalf("warm read corrupted: %d vs %d bytes", len(warm), len(want))
	}
	if got := st2.Calls - st1.Calls; got != 0 {
		t.Fatalf("warm re-read issued %d RPCs, want 0", got)
	}
	if st2.DataHits-st1.DataHits != size/DataBlockSize {
		t.Fatalf("warm re-read hit %d blocks, want %d", st2.DataHits-st1.DataHits, size/DataBlockSize)
	}
	if st2.DataBytesCached != size {
		t.Fatalf("cache holds %d bytes, want %d", st2.DataBytesCached, size)
	}
}

// TestDataCacheReadYourWrites: write-behind completions populate the
// cache, so reading freshly written data never touches the wire; a
// partial aligned overwrite merges with the cached tail.
func TestDataCacheReadYourWrites(t *testing.T) {
	_, cl := dataCachePair(t, 0)
	root, _, _ := cl.MountRoot()
	fh, _, err := cl.Create(root, "ryw.bin", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	block := bytes.Repeat([]byte{'A'}, DataBlockSize)
	fin, err := cl.WriteStart(fh, 0, block, Unstable)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fin(); err != nil {
		t.Fatal(err)
	}
	st1 := cl.Stats()
	got, eof, err := cl.Read(fh, 0, DataBlockSize)
	if err != nil || !eof {
		t.Fatalf("read back: %v eof=%v", err, eof)
	}
	if !bytes.Equal(got, block) {
		t.Fatal("read-your-writes bytes differ")
	}
	if d := cl.Stats().Calls - st1.Calls; d != 0 {
		t.Fatalf("reading freshly written block cost %d RPCs, want 0", d)
	}

	// Partial aligned overwrite merges into the cached block.
	if _, err := cl.Write(fh, 0, []byte("BB"), Unstable); err != nil {
		t.Fatal(err)
	}
	st2 := cl.Stats()
	got, _, err = cl.Read(fh, 0, DataBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("BB"), block[2:]...)
	if !bytes.Equal(got, want) {
		t.Fatal("merged block content wrong")
	}
	if d := cl.Stats().Calls - st2.Calls; d != 0 {
		t.Fatalf("reading merged block cost %d RPCs, want 0", d)
	}

	// An unaligned write cannot merge: it drops the block, and the
	// next read goes back to the wire.
	if _, err := cl.Write(fh, 100, []byte("xyz"), Unstable); err != nil {
		t.Fatal(err)
	}
	st3 := cl.Stats()
	if _, _, err := cl.Read(fh, 0, DataBlockSize); err != nil {
		t.Fatal(err)
	}
	if d := cl.Stats().Calls - st3.Calls; d != 1 {
		t.Fatalf("read after unaligned write cost %d RPCs, want 1", d)
	}
}

// TestDataCacheRemoteWriteInvalidation is the stale-read scenario:
// client 2 has a file cached, client 1 overwrites it, the server's
// callback drops client 2's blocks, and the re-read returns the new
// bytes.
func TestDataCacheRemoteWriteInvalidation(t *testing.T) {
	srv, cl2 := dataCachePair(t, 0)
	cl1 := dataCacheClient(t, srv, 0)
	root1, _, err := cl1.MountRoot()
	if err != nil {
		t.Fatal(err)
	}
	fh1, _, err := cl1.Create(root1, "shared.bin", 0o666, true)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{'o'}, DataBlockSize)
	if _, err := cl1.Write(fh1, 0, old, FileSync); err != nil {
		t.Fatal(err)
	}

	root2, _, _ := cl2.MountRoot()
	fh2, _, err := cl2.Lookup(root2, "shared.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := cl2.Read(fh2, 0, DataBlockSize)
	if err != nil || !bytes.Equal(got, old) {
		t.Fatalf("prime read: %v", err)
	}
	if got, _, _ := cl2.Read(fh2, 0, DataBlockSize); !bytes.Equal(got, old) {
		t.Fatal("warm read differs")
	}

	before := cl2.Stats().Invals
	fresh := bytes.Repeat([]byte{'n'}, DataBlockSize)
	if _, err := cl1.Write(fh1, 0, fresh, FileSync); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for cl2.Stats().Invals == before {
		if time.Now().After(deadline) {
			t.Fatal("no invalidation callback arrived")
		}
		time.Sleep(time.Millisecond)
	}
	// The callback dropped attrs and blocks together; polling covers
	// the write racing its own callback.
	for {
		got, _, err := cl2.Read(fh2, 0, DataBlockSize)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, fresh) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale bytes served after invalidation: %q...", got[:8])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDataCacheEviction: a tiny budget stays bounded and evicts
// CLOCK-wise; re-reading an evicted block goes back to the wire.
func TestDataCacheEviction(t *testing.T) {
	const budget = 2 * DataBlockSize
	_, cl := dataCachePair(t, budget)
	root, _, _ := cl.MountRoot()
	fh, _, err := cl.Create(root, "evict.bin", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	fillPattern(t, cl, fh, 6*DataBlockSize)
	st := cl.Stats()
	if st.DataBytesCached > budget {
		t.Fatalf("cache %d bytes over its %d budget", st.DataBytesCached, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under a 2-block budget")
	}
	// 6 blocks passed through a 2-block cache: at least one early
	// block must be gone, so a full re-read needs the wire again.
	st1 := cl.Stats()
	if _, err := cl.ReadAll(fh, DataBlockSize); err != nil {
		t.Fatal(err)
	}
	if d := cl.Stats().Calls - st1.Calls; d == 0 {
		t.Fatal("re-read of evicted range cost no RPCs")
	}
}

// TestDataCacheTruncate: SETATTR with a size keeps attributes but
// drops the file's bytes, so reads see the new length immediately.
func TestDataCacheTruncate(t *testing.T) {
	_, cl := dataCachePair(t, 0)
	root, _, _ := cl.MountRoot()
	fh, _, err := cl.Create(root, "trunc.bin", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	fillPattern(t, cl, fh, DataBlockSize)
	if got, _, _ := cl.Read(fh, 0, DataBlockSize); len(got) != DataBlockSize {
		t.Fatalf("warm read %d bytes", len(got))
	}
	size := uint64(10)
	if _, err := cl.SetAttr(SetAttrArgs{FH: fh, SetSize: &size}); err != nil {
		t.Fatal(err)
	}
	if st := cl.Stats(); st.DataBytesCached != 0 {
		t.Fatalf("truncate left %d bytes cached", st.DataBytesCached)
	}
	got, eof, err := cl.Read(fh, 0, DataBlockSize)
	if err != nil || !eof || len(got) != 10 {
		t.Fatalf("read after truncate: %d bytes eof=%v err=%v", len(got), eof, err)
	}
}

// TestSingleFlightSharesColdRead: a reader arriving while a cold
// block's READ is in flight joins it instead of issuing its own RPC.
func TestSingleFlightSharesColdRead(t *testing.T) {
	srv, cl := dataCachePair(t, 0)
	writer := dataCacheClient(t, srv, 0)
	rootW, _, _ := writer.MountRoot()
	fhW, _, err := writer.Create(rootW, "cold.bin", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	want := fillPattern(t, writer, fhW, DataBlockSize)

	root, _, _ := cl.MountRoot()
	fh, _, err := cl.Lookup(root, "cold.bin")
	if err != nil {
		t.Fatal(err)
	}
	st1 := cl.Stats()
	// Leader: starts the READ but does not finish it yet, so the
	// flight stays open.
	fin, err := cl.ReadStart(fh, 0, DataBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		data []byte
		err  error
	}
	joined := make(chan res, 1)
	go func() {
		data, _, err := cl.Read(fh, 0, DataBlockSize)
		joined <- res{data, err}
	}()
	// The joiner registers on the flight before blocking; wait for
	// that, then let the leader finish.
	deadline := time.Now().Add(2 * time.Second)
	for cl.Stats().SingleFlightShared == st1.SingleFlightShared {
		if time.Now().After(deadline) {
			t.Fatal("second reader never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	data, _, err := fin()
	if err != nil || !bytes.Equal(data, want) {
		t.Fatalf("leader read: %v", err)
	}
	r := <-joined
	if r.err != nil || !bytes.Equal(r.data, want) {
		t.Fatalf("joiner read: %v", r.err)
	}
	st2 := cl.Stats()
	if d := st2.Calls - st1.Calls; d != 1 {
		t.Fatalf("two concurrent cold reads cost %d RPCs, want 1", d)
	}
	if st2.SingleFlightShared != st1.SingleFlightShared+1 {
		t.Fatalf("singleflight shared %d, want 1 more", st2.SingleFlightShared)
	}
}

// TestDataCacheDisabled: a negative budget turns the cache off and
// every read pays its RPC.
func TestDataCacheDisabled(t *testing.T) {
	_, cl := dataCachePair(t, -1)
	root, _, _ := cl.MountRoot()
	fh, _, err := cl.Create(root, "off.bin", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	fillPattern(t, cl, fh, DataBlockSize)
	st1 := cl.Stats()
	for i := 0; i < 3; i++ {
		if _, _, err := cl.Read(fh, 0, DataBlockSize); err != nil {
			t.Fatal(err)
		}
	}
	st2 := cl.Stats()
	if d := st2.Calls - st1.Calls; d != 3 {
		t.Fatalf("disabled cache cost %d RPCs for 3 reads, want 3", d)
	}
	if st2.DataHits != 0 || st2.DataBytesCached != 0 {
		t.Fatalf("disabled cache recorded hits: %+v", st2)
	}
}

// TestDataCachePerPrincipal: blocks are stored connection-wide but
// served only to principals that have proven access over the wire —
// another view's first read must pay its own RPC (where the server
// checks its credentials), and only then may it hit.
func TestDataCachePerPrincipal(t *testing.T) {
	_, cl := dataCachePair(t, 0)
	root, _, _ := cl.MountRoot()
	fh, _, err := cl.Create(root, "shared.bin", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	want := fillPattern(t, cl, fh, DataBlockSize)
	if _, _, err := cl.Read(fh, 0, DataBlockSize); err != nil {
		t.Fatal(err)
	}

	other := cl.WithAuth("other", rootAuth)
	st1 := cl.Stats()
	got, _, err := other.Read(fh, 0, DataBlockSize)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("other principal read: %v", err)
	}
	if d := cl.Stats().Calls - st1.Calls; d != 1 {
		t.Fatalf("other principal's first read cost %d RPCs, want 1 (must not ride the cache)", d)
	}
	st2 := cl.Stats()
	if _, _, err := other.Read(fh, 0, DataBlockSize); err != nil {
		t.Fatal(err)
	}
	if d := cl.Stats().Calls - st2.Calls; d != 0 {
		t.Fatalf("other principal's second read cost %d RPCs, want 0", d)
	}
}

// TestDataCacheStressRace hammers one file from concurrent readers, a
// local writer, and a remote writer whose server callbacks invalidate
// mid-flight, all under a 3-block budget so eviction churns. Written
// for the race detector. Invariants: every read observes some
// complete write (uniform block fill, full length) and the local
// writer always reads its own last write back.
func TestDataCacheStressRace(t *testing.T) {
	const (
		blocks      = 8
		localBlocks = 4 // blocks [0,4) are the local writer's territory
		iters       = 300
	)
	srv, cl := dataCachePair(t, 3*DataBlockSize)
	remote := dataCacheClient(t, srv, 0)

	root, _, _ := cl.MountRoot()
	fh, _, err := cl.Create(root, "stress.bin", 0o666, true)
	if err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < blocks; blk++ {
		buf := bytes.Repeat([]byte{byte(blk + 1)}, DataBlockSize)
		if _, err := cl.Write(fh, uint64(blk)*DataBlockSize, buf, Unstable); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Commit(fh); err != nil {
		t.Fatal(err)
	}
	rootR, _, _ := remote.MountRoot()
	fhR, _, err := remote.Lookup(rootR, "stress.bin")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var failed atomic.Bool
	fail := func(format string, args ...interface{}) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}

	// Readers: any block, any version, but never torn and never
	// short.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters && !failed.Load(); i++ {
				blk := (i*7 + seed*3) % blocks
				data, _, err := cl.Read(fh, uint64(blk)*DataBlockSize, DataBlockSize)
				if err != nil {
					fail("reader: %v", err)
					return
				}
				if len(data) != DataBlockSize {
					fail("reader: short block %d: %d bytes", blk, len(data))
					return
				}
				for _, b := range data {
					if b != data[0] {
						fail("torn read in block %d: %x vs %x", blk, b, data[0])
						return
					}
				}
			}
		}(r)
	}

	// Local writer: owns blocks [0,localBlocks) exclusively, so
	// read-your-writes must hold for it even while callbacks from the
	// remote writer drop the whole file's cached state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters && !failed.Load(); i++ {
			blk := i % localBlocks
			v := byte(10 + i%40)
			buf := bytes.Repeat([]byte{v}, DataBlockSize)
			if _, err := cl.Write(fh, uint64(blk)*DataBlockSize, buf, Unstable); err != nil {
				fail("local writer: %v", err)
				return
			}
			data, _, err := cl.Read(fh, uint64(blk)*DataBlockSize, DataBlockSize)
			if err != nil {
				fail("local writer read-back: %v", err)
				return
			}
			if len(data) != DataBlockSize || data[0] != v || data[DataBlockSize-1] != v {
				fail("read-your-writes violated: block %d wrote %x read %x (%d bytes)",
					blk, v, data[0], len(data))
				return
			}
		}
	}()

	// Remote writer: blocks [localBlocks, blocks), each write firing
	// an invalidation callback into cl.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/3 && !failed.Load(); i++ {
			blk := localBlocks + i%(blocks-localBlocks)
			buf := bytes.Repeat([]byte{byte(100 + i%40)}, DataBlockSize)
			if _, err := remote.Write(fhR, uint64(blk)*DataBlockSize, buf, FileSync); err != nil {
				fail("remote writer: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	if failed.Load() {
		return
	}

	// Post-callback freshness, deterministically: a final remote
	// write must become visible to cl within the callback window.
	final := bytes.Repeat([]byte{0xEE}, DataBlockSize)
	if _, err := remote.Write(fhR, uint64(localBlocks)*DataBlockSize, final, FileSync); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		data, _, err := cl.Read(fh, uint64(localBlocks)*DataBlockSize, DataBlockSize)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(data, final) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("remote write never became visible: reading %x", data[0])
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkWarmRead measures the data-cache hit path: one 8 KB block,
// already cached, read in a loop. ReportAllocs keeps the zero-alloc
// property visible in bench-smoke output.
func BenchmarkWarmRead(b *testing.B) {
	fsys := vfs.New()
	srv := NewServer(fsys, sfsServerConfig())
	a, conn := net.Pipe()
	srv.ServeConn(conn)
	cl := Dial(a, ClientConfig{UseLeases: true, AccessCache: true, Auth: rootAuth})
	defer cl.Close()
	root, _, err := cl.MountRoot()
	if err != nil {
		b.Fatal(err)
	}
	fh, _, err := cl.Create(root, "bench.bin", 0o644, true)
	if err != nil {
		b.Fatal(err)
	}
	block := bytes.Repeat([]byte{'w'}, DataBlockSize)
	if _, err := cl.Write(fh, 0, block, FileSync); err != nil {
		b.Fatal(err)
	}
	if _, _, err := cl.Read(fh, 0, DataBlockSize); err != nil {
		b.Fatal(err)
	}
	calls := cl.Stats().Calls
	b.ReportAllocs()
	b.SetBytes(DataBlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, _, err := cl.Read(fh, 0, DataBlockSize)
		if err != nil || len(data) != DataBlockSize {
			b.Fatalf("warm read: %v (%d bytes)", err, len(data))
		}
	}
	b.StopTimer()
	if d := cl.Stats().Calls - calls; d != 0 {
		b.Fatalf("warm benchmark loop issued %d RPCs, want 0", d)
	}
}

// TestWarmReadHitPathZeroAlloc is the hard-fail twin of
// BenchmarkWarmRead: a cache hit must not allocate, or the warm read
// path gains a per-block GC tax that the benchmark would only report.
func TestWarmReadHitPathZeroAlloc(t *testing.T) {
	_, cl := dataCachePair(t, 0)
	root, _, _ := cl.MountRoot()
	fh, _, err := cl.Create(root, "hot.bin", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	fillPattern(t, cl, fh, DataBlockSize)
	if _, _, err := cl.Read(fh, 0, DataBlockSize); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, _, err := cl.Read(fh, 0, DataBlockSize); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm hit path allocates %.1f allocs/op, want 0", avg)
	}
}
