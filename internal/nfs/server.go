package nfs

import (
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/sunrpc"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// HandleCodec converts between substrate file IDs and wire handles.
// The plain codec produces guessable handles (the weakness the paper
// warns about in kernel NFS); the SFS server installs an encrypting
// codec from internal/server.
type HandleCodec interface {
	Encode(id vfs.FileID) FH
	Decode(fh FH) (vfs.FileID, error)
}

// PlainCodec is the baseline codec: a 32-byte handle whose first 8
// bytes are the file ID, the rest constant — like a factory-installed
// NFS server without fsirand.
type PlainCodec struct{}

// Encode implements HandleCodec.
func (PlainCodec) Encode(id vfs.FileID) FH {
	fh := make(FH, 32)
	binary.BigEndian.PutUint64(fh, uint64(id))
	copy(fh[8:], "nfs3-plain-handle-pad...")
	return fh
}

// Decode implements HandleCodec.
func (PlainCodec) Decode(fh FH) (vfs.FileID, error) {
	if len(fh) != 32 {
		return 0, errors.New("nfs: bad handle length")
	}
	return vfs.FileID(binary.BigEndian.Uint64(fh)), nil
}

// CredFunc maps an RPC authenticator to substrate credentials.
type CredFunc func(sunrpc.OpaqueAuth) vfs.Cred

// UnixCreds is the baseline NFS credential mapping: trust AUTH_UNIX.
func UnixCreds(a sunrpc.OpaqueAuth) vfs.Cred {
	if uid, gids, ok := sunrpc.ParseUnixAuth(a); ok {
		return vfs.Cred{UID: uid, GIDs: gids}
	}
	return vfs.Anonymous
}

// ServerConfig carries the tunables distinguishing the plain NFS 3
// baseline from the SFS-enhanced server.
type ServerConfig struct {
	// LeaseMS enables the SFS attribute-lease extension when > 0.
	LeaseMS uint32
	// Callbacks enables server→client invalidations before lease
	// expiry. Meaningless without LeaseMS.
	Callbacks bool
	// Codec converts handles; nil means PlainCodec.
	Codec HandleCodec
	// Creds maps authenticators to credentials; nil means UnixCreds.
	Creds CredFunc
	// MaxIO bounds read/write transfer sizes; 0 means 64 KiB.
	MaxIO uint32
	// IDNames maps a numeric user/group ID to a name for the libsfs
	// mapping service (paper §3.3). Nil disables the service.
	IDNames func(uid uint32, group bool) string
	// TraceSpans sizes the xid-tagged trace ring; 0 means 256.
	TraceSpans int
}

// NumLeaseStripes is the number of stripes in the lease table,
// matching vfs.NumShards so a file's lease bookkeeping and its node
// lock have the same collision odds under concurrent clients.
const NumLeaseStripes = 64

// leaseStripe is one stripe of the lease table. Leases shard by
// FileID — not by session — because the write path looks leases up by
// the file being mutated: WRITE on one file must never contend with
// lease bookkeeping for another. Each stripe's mutex guards only its
// slice of the map and is never held across an RPC; callbacks fire
// from fresh goroutines after the stripe is released.
type leaseStripe struct {
	mu sync.Mutex
	m  map[vfs.FileID]map[*Session]time.Time
}

// Server serves the NFS-style protocol over a vfs.FS.
type Server struct {
	fs    *vfs.FS
	cfg   ServerConfig
	codec HandleCodec
	creds CredFunc
	maxIO uint32

	// mu guards sessions only. Lease state lives in the striped
	// table below so the per-file hot path never crosses a global
	// lock; the only code that touches many stripes is session
	// teardown.
	mu       sync.Mutex
	sessions map[*Session]struct{}
	leases   [NumLeaseStripes]leaseStripe

	met *ServerMetrics
}

// leaseStripeOf returns the stripe holding id's leases.
func (s *Server) leaseStripeOf(id vfs.FileID) *leaseStripe {
	return &s.leases[uint64(id)&(NumLeaseStripes-1)]
}

// lockStripe locks one lease stripe, counting contention.
func (s *Server) lockStripe(ls *leaseStripe) {
	if !ls.mu.TryLock() {
		s.met.leaseStripeContended.Inc()
		ls.mu.Lock()
	}
	s.met.leaseStripeLocks.Inc()
}

// NewServer wraps fs with the given configuration.
func NewServer(fs *vfs.FS, cfg ServerConfig) *Server {
	s := &Server{
		fs:       fs,
		cfg:      cfg,
		codec:    cfg.Codec,
		creds:    cfg.Creds,
		maxIO:    cfg.MaxIO,
		sessions: make(map[*Session]struct{}),
		met:      newServerMetrics(cfg.TraceSpans),
	}
	for i := range s.leases {
		s.leases[i].m = make(map[vfs.FileID]map[*Session]time.Time)
	}
	if s.codec == nil {
		s.codec = PlainCodec{}
	}
	if s.creds == nil {
		s.creds = UnixCreds
	}
	if s.maxIO == 0 {
		s.maxIO = 64 << 10
	}
	return s
}

// Handler returns a stateless RPC handler for datagram transports
// (the NFS-over-UDP baseline), where no session exists and therefore
// no leases or callbacks apply.
func (s *Server) Handler() sunrpc.Handler {
	return func(proc uint32, cred sunrpc.OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
		return s.dispatch(nil, proc, cred, args)
	}
}

// Session is one client connection.
type Session struct {
	srv   *Server
	peer  *sunrpc.Client
	creds CredFunc // per-session override; nil uses the server's
}

// SetCreds overrides the credential mapping for this session. The SFS
// server installs a mapping from authentication numbers assigned by
// its login protocol.
func (sess *Session) SetCreds(f CredFunc) { sess.creds = f }

// ServeConn starts serving NFS calls on conn and returns the session.
// The connection is also used for invalidation callbacks.
func (s *Server) ServeConn(conn io.ReadWriteCloser) *Session {
	return s.ServeConnWith(conn, nil)
}

// ServeConnWith is ServeConn with a hook that may register additional
// RPC programs (e.g. the SFS user-authentication service) on the same
// connection before traffic starts.
func (s *Server) ServeConnWith(conn io.ReadWriteCloser, setup func(rpc *sunrpc.Server, sess *Session)) *Session {
	sess := &Session{srv: s}
	rpc := sunrpc.NewServer()
	rpc.SetMetrics(s.met.rpc) // one transport counter block across sessions
	rpc.Register(Program, Version, func(proc uint32, cred sunrpc.OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
		return s.dispatch(sess, proc, cred, args)
	})
	if setup != nil {
		setup(rpc, sess)
	}
	sess.peer = sunrpc.NewPeer(conn, rpc)
	s.mu.Lock()
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	go func() {
		<-sess.peer.Done()
		s.dropSession(sess)
	}()
	return sess
}

func (s *Server) dropSession(sess *Session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	for i := range s.leases {
		ls := &s.leases[i]
		s.lockStripe(ls)
		for id, m := range ls.m {
			delete(m, sess)
			if len(m) == 0 {
				delete(ls.m, id)
			}
		}
		ls.mu.Unlock()
	}
}

// Close shuts down the session.
func (sess *Session) Close() error { return sess.peer.Close() }

// Done is closed when the session's connection fails or is closed;
// the server master uses it to log connection teardown.
func (sess *Session) Done() <-chan struct{} { return sess.peer.Done() }

// grantLease records that sess may cache attributes of id.
func (s *Server) grantLease(sess *Session, id vfs.FileID) uint32 {
	if s.cfg.LeaseMS == 0 || sess == nil {
		return 0
	}
	if s.cfg.Callbacks {
		ls := s.leaseStripeOf(id)
		s.lockStripe(ls)
		m := ls.m[id]
		if m == nil {
			m = make(map[*Session]time.Time)
			ls.m[id] = m
		}
		m[sess] = time.Now().Add(time.Duration(s.cfg.LeaseMS) * time.Millisecond)
		ls.mu.Unlock()
		s.met.leasesGranted.Inc()
	}
	return s.cfg.LeaseMS
}

// invalidate notifies every session other than actor holding a live
// lease on id. The server does not wait for acknowledgments;
// consistency does not need to be perfect, just better than NFS 3
// (paper §3.3). Targets are collected under the lease stripes of the
// ids alone and the callbacks fire from fresh goroutines with no lock
// held — a stalled client can delay its own invalidation but never a
// writer or another session (see TestStalledSessionDoesNotBlockWriters).
func (s *Server) invalidate(actor *Session, ids ...vfs.FileID) {
	if !s.cfg.Callbacks || s.cfg.LeaseMS == 0 {
		return
	}
	now := time.Now()
	type target struct {
		sess *Session
		fh   FH
	}
	var targets []target
	for _, id := range ids {
		ls := s.leaseStripeOf(id)
		s.lockStripe(ls)
		m := ls.m[id]
		for sess, exp := range m {
			if sess == actor {
				continue
			}
			if exp.After(now) {
				targets = append(targets, target{sess, s.codec.Encode(id)})
			}
			delete(m, sess)
		}
		if m != nil && len(m) == 0 {
			delete(ls.m, id)
		}
		ls.mu.Unlock()
	}
	if len(targets) > 0 {
		s.met.leaseBreaks.Add(uint64(len(targets)))
	}
	for _, t := range targets {
		t := t
		go func() {
			//nolint:errcheck // fire and forget by design
			t.sess.peer.Call(Program, Version, ProcInvalidate, sunrpc.NoAuth(),
				InvalidateArgs{FH: t.fh}, &StatusRes{})
		}()
	}
}

// attrFor loads attributes and grants a lease in one step.
func (s *Server) attrFor(sess *Session, id vfs.FileID) *Fattr {
	a, err := s.fs.GetAttr(id)
	if err != nil {
		return nil
	}
	fa := fattrFromVFS(a, s.grantLease(sess, id))
	return &fa
}

// dispatch wraps dispatchProc with the per-procedure counters and
// latency histogram. The per-proc "errors" counter tracks RPC-level
// failures (garbage arguments, unknown procedures); NFS status
// errors are well-formed replies and count as calls only.
func (s *Server) dispatch(sess *Session, proc uint32, auth sunrpc.OpaqueAuth, d *xdr.Decoder) (interface{}, error) {
	ps := &s.met.procs[slotFor(proc)]
	start := time.Now()
	res, err := s.dispatchProc(sess, proc, auth, d)
	ps.lat.ObserveDuration(time.Since(start))
	ps.calls.Inc()
	if err != nil {
		ps.errs.Inc()
	}
	return res, err
}

func (s *Server) dispatchProc(sess *Session, proc uint32, auth sunrpc.OpaqueAuth, d *xdr.Decoder) (interface{}, error) {
	// The RPC layer parks the call's stage clock in the decoder's
	// context slot when tracing is on; nil otherwise, and every clock
	// method is a no-op on nil. The data-path procedures below charge
	// their substrate time to the vfs stage (with the WAL's fsync wait
	// split out by the clocked write/commit variants).
	clk, _ := d.Ctx().(*stats.StageClock)
	credFn := s.creds
	if sess != nil && sess.creds != nil {
		credFn = sess.creds
	}
	cred := credFn(auth)
	switch proc {
	case ProcNull:
		return struct{}{}, nil
	case ProcMountRoot:
		root := s.fs.Root()
		return MountRootRes{Status: OK, Root: s.codec.Encode(root), Attr: s.attrFor(sess, root)}, nil
	case ProcGetAttr, ProcGetAttrSync:
		var a FHArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		id, err := s.codec.Decode(a.FH)
		if err != nil {
			return AttrRes{Status: ErrBadHandle}, nil
		}
		if _, err := s.fs.GetAttr(id); err != nil {
			return AttrRes{Status: statusFromErr(err)}, nil
		}
		return AttrRes{Status: OK, Attr: s.attrFor(sess, id)}, nil
	case ProcSetAttr:
		var a SetAttrArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		return s.setattr(sess, cred, a), nil
	case ProcLookup:
		var a DirOpArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		dir, err := s.codec.Decode(a.Dir)
		if err != nil {
			return LookupRes{Status: ErrBadHandle}, nil
		}
		id, _, err := s.fs.Lookup(cred, dir, a.Name)
		if err != nil {
			return LookupRes{Status: statusFromErr(err)}, nil
		}
		// The client may cache the (dir, name) → handle binding, so
		// it must hold a lease on the directory too: mutations of
		// the directory then trigger a callback that clears the
		// name-cache entry.
		s.grantLease(sess, dir)
		return LookupRes{Status: OK, FH: s.codec.Encode(id), Attr: s.attrFor(sess, id)}, nil
	case ProcAccess:
		var a AccessArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		return s.access(sess, cred, a), nil
	case ProcReadlink:
		var a FHArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		id, err := s.codec.Decode(a.FH)
		if err != nil {
			return ReadlinkRes{Status: ErrBadHandle}, nil
		}
		target, err := s.fs.Readlink(id)
		if err != nil {
			return ReadlinkRes{Status: statusFromErr(err)}, nil
		}
		return ReadlinkRes{Status: OK, Target: target}, nil
	case ProcRead:
		var a ReadArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		id, err := s.codec.Decode(a.FH)
		if err != nil {
			return ReadRes{Status: ErrBadHandle}, nil
		}
		count := a.Count
		if count > s.maxIO {
			count = s.maxIO
		}
		tv := clk.Now()
		data, eof, err := s.fs.Read(cred, id, a.Offset, count)
		clk.End(stats.StageVFS, tv)
		if err != nil {
			return ReadRes{Status: statusFromErr(err)}, nil
		}
		// data is a fresh per-call snapshot taken under the node's
		// RLock (vfs.Read), so the reply encoder may borrow it
		// end-to-end: nothing mutates it after this return, which is
		// exactly the gather path's ownership rule (DESIGN.md §12).
		return ReadRes{Status: OK, Attr: s.attrFor(sess, id), Count: uint32(len(data)), EOF: eof, Data: data}, nil
	case ProcWrite:
		// WRITE data may alias the call record: both record sources
		// (fresh per-record stream buffers, pooled datagram packets
		// recycled only after dispatch returns) outlive this handler,
		// and fs.Write consumes the bytes synchronously — the store
		// copies them under the node lock before returning.
		d.SetBorrow(sunrpc.GatherEnabled())
		var a WriteArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		if n := d.BorrowedBytes(); n > 0 {
			stats.NoteWireBorrowed(n)
		}
		if n := d.CopiedBytes(); n > 0 {
			stats.NoteWireCopied(n)
		}
		id, err := s.codec.Decode(a.FH)
		if err != nil {
			return WriteRes{Status: ErrBadHandle}, nil
		}
		if uint32(len(a.Data)) > s.maxIO {
			return WriteRes{Status: ErrInval}, nil
		}
		// Verifier read before the write is applied: if a restart
		// slips in between, the stale verifier makes the client
		// retransmit data that actually survived — safe, where the
		// opposite order could claim lost data was kept.
		verf := s.fs.Verifier()
		var attr vfs.Attr
		if clk != nil {
			// vfs = the write's substrate time minus whatever the store
			// charged to the fsync stage while we were inside it.
			tv := time.Now()
			fsy0 := clk.Get(stats.StageFsync)
			attr, err = s.fs.WriteClocked(cred, id, a.Offset, a.Data, a.Stable == FileSync, clk)
			clk.Add(stats.StageVFS,
				int64(time.Since(tv))-(clk.Get(stats.StageFsync)-fsy0))
		} else {
			attr, err = s.fs.Write(cred, id, a.Offset, a.Data, a.Stable == FileSync)
		}
		if err != nil {
			return WriteRes{Status: statusFromErr(err)}, nil
		}
		s.met.noteWrite(id, len(a.Data), a.Stable == FileSync)
		s.invalidate(sess, id)
		fa := fattrFromVFS(attr, s.grantLease(sess, id))
		return WriteRes{Status: OK, Attr: &fa, Count: uint32(len(a.Data)), Verf: verf}, nil
	case ProcCreate:
		var a CreateArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		dir, err := s.codec.Decode(a.Dir)
		if err != nil {
			return LookupRes{Status: ErrBadHandle}, nil
		}
		id, _, err := s.fs.Create(cred, dir, a.Name, a.Mode, a.Exclusive)
		if err != nil {
			return LookupRes{Status: statusFromErr(err)}, nil
		}
		s.invalidate(sess, dir)
		return LookupRes{Status: OK, FH: s.codec.Encode(id), Attr: s.attrFor(sess, id), DirAttr: s.attrFor(sess, dir)}, nil
	case ProcMkdir:
		var a MkdirArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		dir, err := s.codec.Decode(a.Dir)
		if err != nil {
			return LookupRes{Status: ErrBadHandle}, nil
		}
		id, _, err := s.fs.Mkdir(cred, dir, a.Name, a.Mode)
		if err != nil {
			return LookupRes{Status: statusFromErr(err)}, nil
		}
		s.invalidate(sess, dir)
		return LookupRes{Status: OK, FH: s.codec.Encode(id), Attr: s.attrFor(sess, id), DirAttr: s.attrFor(sess, dir)}, nil
	case ProcSymlink:
		var a SymlinkArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		dir, err := s.codec.Decode(a.Dir)
		if err != nil {
			return LookupRes{Status: ErrBadHandle}, nil
		}
		id, _, err := s.fs.Symlink(cred, dir, a.Name, a.Target)
		if err != nil {
			return LookupRes{Status: statusFromErr(err)}, nil
		}
		s.invalidate(sess, dir)
		return LookupRes{Status: OK, FH: s.codec.Encode(id), Attr: s.attrFor(sess, id), DirAttr: s.attrFor(sess, dir)}, nil
	case ProcRemove:
		var a DirOpArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		dir, err := s.codec.Decode(a.Dir)
		if err != nil {
			return StatusRes{Status: ErrBadHandle}, nil
		}
		var victim vfs.FileID
		if id, _, err := s.fs.Lookup(cred, dir, a.Name); err == nil {
			victim = id
		}
		if err := s.fs.Remove(cred, dir, a.Name); err != nil {
			return StatusRes{Status: statusFromErr(err)}, nil
		}
		s.invalidate(sess, dir, victim)
		return StatusRes{Status: OK, DirAttr: s.attrFor(sess, dir)}, nil
	case ProcRmdir:
		var a DirOpArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		dir, err := s.codec.Decode(a.Dir)
		if err != nil {
			return StatusRes{Status: ErrBadHandle}, nil
		}
		if err := s.fs.Rmdir(cred, dir, a.Name); err != nil {
			return StatusRes{Status: statusFromErr(err)}, nil
		}
		s.invalidate(sess, dir)
		return StatusRes{Status: OK, DirAttr: s.attrFor(sess, dir)}, nil
	case ProcRename:
		var a RenameArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		from, err := s.codec.Decode(a.FromDir)
		if err != nil {
			return StatusRes{Status: ErrBadHandle}, nil
		}
		to, err := s.codec.Decode(a.ToDir)
		if err != nil {
			return StatusRes{Status: ErrBadHandle}, nil
		}
		if err := s.fs.Rename(cred, from, a.FromName, to, a.ToName); err != nil {
			return StatusRes{Status: statusFromErr(err)}, nil
		}
		s.invalidate(sess, from, to)
		return StatusRes{Status: OK, DirAttr: s.attrFor(sess, from), DirAttr2: s.attrFor(sess, to)}, nil
	case ProcLink:
		var a LinkArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		file, err := s.codec.Decode(a.File)
		if err != nil {
			return StatusRes{Status: ErrBadHandle}, nil
		}
		dir, err := s.codec.Decode(a.Dir)
		if err != nil {
			return StatusRes{Status: ErrBadHandle}, nil
		}
		if err := s.fs.Link(cred, file, dir, a.Name); err != nil {
			return StatusRes{Status: statusFromErr(err)}, nil
		}
		s.invalidate(sess, dir, file)
		return StatusRes{Status: OK, DirAttr: s.attrFor(sess, dir)}, nil
	case ProcReadDir:
		var a ReadDirArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		dir, err := s.codec.Decode(a.Dir)
		if err != nil {
			return ReadDirRes{Status: ErrBadHandle}, nil
		}
		ents, eof, err := s.fs.ReadDir(cred, dir, a.Cookie, int(a.Count))
		if err != nil {
			return ReadDirRes{Status: statusFromErr(err)}, nil
		}
		s.grantLease(sess, dir)
		out := make([]Entry, len(ents))
		for i, e := range ents {
			out[i] = Entry{
				FileID: uint64(e.FileID),
				Name:   e.Name,
				Cookie: e.Cookie,
				FH:     s.codec.Encode(e.FileID),
				Attr:   s.attrFor(sess, e.FileID),
			}
		}
		return ReadDirRes{Status: OK, Entries: out, EOF: eof}, nil
	case ProcIDNames:
		var a IDNamesArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		if s.cfg.IDNames == nil {
			return IDNamesRes{Status: ErrNotSupp, UserNames: []string{}, GroupNames: []string{}}, nil
		}
		res := IDNamesRes{Status: OK, UserNames: make([]string, len(a.UIDs)), GroupNames: make([]string, len(a.GIDs))}
		for i, uid := range a.UIDs {
			res.UserNames[i] = s.cfg.IDNames(uid, false)
		}
		for i, gid := range a.GIDs {
			res.GroupNames[i] = s.cfg.IDNames(gid, true)
		}
		return res, nil
	case ProcFSInfo:
		return FSInfoRes{Status: OK, RTMax: s.maxIO, WTMax: s.maxIO, TimeDelta: uint64(time.Millisecond)}, nil
	case ProcCommit:
		var a FHArgs
		if err := d.Decode(&a); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		id, err := s.codec.Decode(a.FH)
		if err != nil {
			return CommitRes{Status: ErrBadHandle}, nil
		}
		if clk != nil {
			tv := time.Now()
			fsy0 := clk.Get(stats.StageFsync)
			err = s.fs.CommitClocked(id, clk)
			clk.Add(stats.StageVFS,
				int64(time.Since(tv))-(clk.Get(stats.StageFsync)-fsy0))
		} else {
			err = s.fs.Commit(id)
		}
		if err != nil {
			return CommitRes{Status: statusFromErr(err)}, nil
		}
		s.met.noteCommit(id)
		// Verifier read after the flush: a restart racing the COMMIT
		// yields a verifier mismatch and a redundant retransmission
		// instead of a silently dropped stability promise.
		return CommitRes{Status: OK, Attr: s.attrFor(sess, id), Verf: s.fs.Verifier()}, nil
	default:
		return nil, sunrpc.ErrProcUnavail
	}
}

// access implements the ACCESS procedure: for each requested bit,
// report whether the credential holds the corresponding permission.
func (s *Server) access(sess *Session, cred vfs.Cred, a AccessArgs) AccessRes {
	id, err := s.codec.Decode(a.FH)
	if err != nil {
		return AccessRes{Status: ErrBadHandle}
	}
	if _, err := s.fs.GetAttr(id); err != nil {
		return AccessRes{Status: statusFromErr(err)}
	}
	var granted uint32
	checks := []struct {
		bit  uint32
		mode uint32
	}{
		{AccessRead, vfs.ModeRead},
		{AccessLookup, vfs.ModeExec},
		{AccessExecute, vfs.ModeExec},
		{AccessModify, vfs.ModeWrite},
		{AccessExtend, vfs.ModeWrite},
		{AccessDelete, vfs.ModeWrite},
	}
	for _, c := range checks {
		if a.Access&c.bit == 0 {
			continue
		}
		if s.fs.Access(cred, id, c.mode) == nil {
			granted |= c.bit
		}
	}
	return AccessRes{Status: OK, Attr: s.attrFor(sess, id), Access: granted}
}

func (s *Server) setattr(sess *Session, cred vfs.Cred, a SetAttrArgs) AttrRes {
	id, err := s.codec.Decode(a.FH)
	if err != nil {
		return AttrRes{Status: ErrBadHandle}
	}
	var sa vfs.SetAttr
	sa.Mode = a.SetMode
	sa.UID = a.SetUID
	sa.GID = a.SetGID
	sa.Size = a.SetSize
	if a.SetMtime != nil {
		t := time.Unix(0, int64(*a.SetMtime))
		sa.Mtime = &t
	}
	if a.SetAtime != nil {
		t := time.Unix(0, int64(*a.SetAtime))
		sa.Atime = &t
	}
	attr, err := s.fs.SetAttrs(cred, id, sa)
	if err != nil {
		return AttrRes{Status: statusFromErr(err)}
	}
	s.invalidate(sess, id)
	fa := fattrFromVFS(attr, s.grantLease(sess, id))
	return AttrRes{Status: OK, Attr: &fa}
}
