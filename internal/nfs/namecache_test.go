package nfs

import (
	"net"
	"testing"
	"time"

	"repro/internal/vfs"
)

func TestNameCacheServesWarmWalks(t *testing.T) {
	_, _, cl := newPair(t, sfsServerConfig(), sfsClientConfig())
	root, _, _ := cl.MountRoot()
	d, _, err := cl.Mkdir(root, "dir", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Create(d, "f", 0o644, true); err != nil {
		t.Fatal(err)
	}
	// Warm the path.
	if _, _, err := cl.Lookup(root, "dir"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Lookup(d, "f"); err != nil {
		t.Fatal(err)
	}
	before := cl.Stats().Calls
	for i := 0; i < 10; i++ {
		dd, _, err := cl.Lookup(root, "dir")
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Lookup(dd, "f"); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.Stats().Calls - before; got != 0 {
		t.Fatalf("warm walk sent %d RPCs over the wire", got)
	}
}

func TestNameCacheInvalidatedByOwnMutation(t *testing.T) {
	_, _, cl := newPair(t, sfsServerConfig(), sfsClientConfig())
	root, _, _ := cl.MountRoot()
	fh, _, _ := cl.Create(root, "f", 0o644, true)
	_ = fh
	if _, _, err := cl.Lookup(root, "f"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove(root, "f"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Lookup(root, "f"); err == nil {
		t.Fatal("stale name entry served after Remove")
	}
}

func TestNameCacheInvalidatedByCallback(t *testing.T) {
	fsys := vfs.New()
	srv := NewServer(fsys, sfsServerConfig())
	mk := func() *Client {
		a, b := net.Pipe()
		srv.ServeConn(b)
		cl := Dial(a, ClientConfig{UseLeases: true, AccessCache: true, Auth: rootAuth})
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	cl1, cl2 := mk(), mk()
	root1, _, _ := cl1.MountRoot()
	root2, _, _ := cl2.MountRoot()
	cl1.Create(root1, "old", 0o644, true) //nolint:errcheck
	// Client 2 warms its name cache.
	if _, _, err := cl2.Lookup(root2, "old"); err != nil {
		t.Fatal(err)
	}
	// Client 1 renames; client 2 should get a directory callback
	// and stop serving the stale name.
	if err := cl1.Rename(root1, "old", root1, "new"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, err := cl2.Lookup(root2, "old"); err != nil {
			break // stale entry gone, server says ENOENT
		}
		if time.Now().After(deadline) {
			t.Fatal("stale name served after rename callback")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNoNameCacheWithoutLeases(t *testing.T) {
	_, _, cl := newPair(t, ServerConfig{}, ClientConfig{})
	root, _, _ := cl.MountRoot()
	cl.Create(root, "f", 0o644, true) //nolint:errcheck
	cl.Lookup(root, "f")              //nolint:errcheck
	before := cl.Stats().Calls
	for i := 0; i < 5; i++ {
		cl.Lookup(root, "f") //nolint:errcheck
	}
	if got := cl.Stats().Calls - before; got != 5 {
		t.Fatalf("plain NFS mode cached lookups: %d wire calls, want 5", got)
	}
}
