package nfs

// Client-side data block cache (the last of the paper's §3.3 caching
// enhancements to land): 8 KB-aligned blocks keyed by (file handle,
// block number), bounded by a byte budget with CLOCK eviction, and
// coherent by construction — a block may only be served while the
// file's *attribute* entry is live, so every event that already drops
// attributes (invalidation callback, lease expiry, local mutation)
// silently revokes the file's data too. Misses on full blocks go
// through a single-flight table so N concurrent readers of one cold
// block issue one READ.

import (
	"encoding/binary"
	"sync/atomic"
	"time"
)

// DataBlockSize is the cache's block granularity. It matches the 8 KB
// wire chunk the read-ahead and write-behind pipelines already use, so
// pipeline completions populate whole blocks.
const DataBlockSize = 8192

// DefaultDataCacheBytes is the data cache budget when ClientConfig
// leaves DataCacheBytes zero: 1024 blocks, enough to hold the paper's
// working sets without pretending to be a kernel page cache.
const DefaultDataCacheBytes = 8 << 20

// dataBlock is one cached block. data is immutable once the block is
// published: updates replace the slice (copy-on-write) rather than
// writing into it, so readers may retain sub-slices after the lock is
// released. ref is the CLOCK reference bit; it is atomic so the warm
// hit path can set it under the read lock.
type dataBlock struct {
	fhKey string
	blk   uint64
	data  []byte
	ref   atomic.Bool
	idx   int // position in dataCache.ring
}

// dataCache is the connection-wide block store. All fields except the
// blocks' ref bits are guarded by clientCore.mu (write mode); size is
// atomic only so Stats can read it without the lock.
type dataCache struct {
	max   int64
	size  atomic.Int64
	files map[string]map[uint64]*dataBlock
	// auth records which principals have proven access to a file by
	// completing a READ or WRITE over the wire under their own
	// credentials. Blocks are shared connection-wide like attributes,
	// but *served* only to proven principals: the server checks
	// permissions per RPC, so a cache hit must never hand one user
	// bytes another user fetched (see TestTwoUsersShareMountSafely).
	auth map[string]map[string]struct{}
	ring []*dataBlock // CLOCK order (insertion order, swap-removed)
	hand int
}

// readFlight is one in-progress cold-block READ. The leader resolves
// data/eof/err and then closes done; joiners block on done and share
// the result, so a thundering herd on one block costs one RPC.
type readFlight struct {
	done chan struct{}
	data []byte
	eof  bool
	err  error
}

// flightKey identifies a (principal, file, block) triple in the
// single-flight table. The principal is part of the key so one user
// never rides another user's READ past the server's permission check.
func flightKey(principal string, fh FH, blk uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], blk)
	return principal + "\x00" + string(fh) + string(b[:])
}

// blockSpan reports whether a read request lies within one cache
// block — the only shape the cache can serve or single-flight.
func blockSpan(offset uint64, count uint32) bool {
	return count > 0 && uint64(count) <= DataBlockSize &&
		offset/DataBlockSize == (offset+uint64(count)-1)/DataBlockSize
}

// insertLocked publishes data as the block's content, replacing any
// existing version, then enforces the byte budget. Caller holds the
// core lock in write mode and has already copied data if it aliases a
// caller-owned buffer.
func (dc *dataCache) insertLocked(fhKey string, blk uint64, data []byte, evictions *atomic.Uint64) {
	blocks := dc.files[fhKey]
	if blocks == nil {
		blocks = make(map[uint64]*dataBlock)
		dc.files[fhKey] = blocks
	}
	if old := blocks[blk]; old != nil {
		dc.size.Add(int64(len(data)) - int64(len(old.data)))
		old.data = data
		old.ref.Store(true)
	} else {
		b := &dataBlock{fhKey: fhKey, blk: blk, data: data, idx: len(dc.ring)}
		b.ref.Store(true)
		blocks[blk] = b
		dc.ring = append(dc.ring, b)
		dc.size.Add(int64(len(data)))
	}
	dc.evictLocked(evictions)
}

// evictLocked runs the CLOCK hand until the cache fits its budget:
// referenced blocks get a second chance, unreferenced ones go.
func (dc *dataCache) evictLocked(evictions *atomic.Uint64) {
	for dc.size.Load() > dc.max && len(dc.ring) > 0 {
		if dc.hand >= len(dc.ring) {
			dc.hand = 0
		}
		b := dc.ring[dc.hand]
		if b.ref.CompareAndSwap(true, false) {
			dc.hand++
			continue
		}
		dc.removeLocked(b)
		evictions.Add(1)
	}
}

// removeLocked unlinks one block from the file map and the CLOCK ring
// (swap-remove, fixing the moved block's index).
func (dc *dataCache) removeLocked(b *dataBlock) {
	blocks := dc.files[b.fhKey]
	delete(blocks, b.blk)
	if len(blocks) == 0 {
		delete(dc.files, b.fhKey)
	}
	last := len(dc.ring) - 1
	moved := dc.ring[last]
	dc.ring[b.idx] = moved
	moved.idx = b.idx
	dc.ring[last] = nil
	dc.ring = dc.ring[:last]
	dc.size.Add(-int64(len(b.data)))
}

// dropFileLocked discards every cached block of one file along with
// its proven-principal set.
func (dc *dataCache) dropFileLocked(fhKey string) {
	for _, b := range dc.files[fhKey] {
		dc.removeLocked(b)
	}
	delete(dc.auth, fhKey)
}

// grantLocked records that principal completed a wire transfer on the
// file with its own credentials.
func (dc *dataCache) grantLocked(fhKey, principal string) {
	set := dc.auth[fhKey]
	if set == nil {
		set = make(map[string]struct{})
		dc.auth[fhKey] = set
	}
	set[principal] = struct{}{}
}

// dropRangeLocked discards the blocks overlapping [from, to).
func (dc *dataCache) dropRangeLocked(fhKey string, from, to uint64) {
	if to <= from {
		return
	}
	blocks := dc.files[fhKey]
	if blocks == nil {
		return
	}
	for blk := from / DataBlockSize; blk <= (to-1)/DataBlockSize; blk++ {
		if b := blocks[blk]; b != nil {
			dc.removeLocked(b)
		}
	}
}

// dataLookup serves a read from the cache if the request fits one
// block, the principal has proven access to the file, the file's
// attribute entry is live, and the block covers the requested range
// up to the file's current size. The returned slice aliases the cache
// and must not be modified. This is the warm hit path: one read lock,
// no allocation.
func (c *Client) dataLookup(fh FH, offset uint64, count uint32) ([]byte, bool, bool) {
	core := c.core
	dc := core.dc
	blk := offset / DataBlockSize
	core.rlock()
	defer core.mu.RUnlock()
	if _, ok := dc.auth[string(fh)][c.principal]; !ok {
		return nil, false, false
	}
	a, ok := core.attrs[string(fh)]
	if !ok || !time.Now().Before(a.expires) {
		return nil, false, false
	}
	size := a.attr.Size
	if offset >= size {
		// Read at/past EOF: empty and EOF, no block required — the
		// readahead pipeline probes past the end of every file it
		// streams, and those probes must not cost READs.
		return nil, true, true
	}
	b := dc.files[string(fh)][blk]
	if b == nil {
		return nil, false, false
	}
	start := blk * DataBlockSize
	have := uint64(len(b.data))
	if have < DataBlockSize && start+have < size {
		// Partial block the file has since outgrown — refetch.
		return nil, false, false
	}
	rel := offset - start
	if rel >= have {
		return nil, false, false
	}
	end := rel + uint64(count)
	if end > have {
		end = have
	}
	b.ref.Store(true)
	return b.data[rel:end], start+end >= size, true
}

// populate stores a READ reply in the cache and records the caller's
// proven access. Only block-aligned replies that either fill a block
// or end at EOF are cacheable, and only while the file's attribute
// entry is live and no invalidation has raced the RPC (epoch check):
// a callback processed between issue and reply must win, or a stale
// block could be revived after forget dropped it. data must be safe
// to retain: with the gather path off XDR decoding copies reply bytes
// into fresh slices; with it on, data borrows the reply record, which
// ReadRecord allocated fresh for this one reply and nothing ever
// reuses — either way the cache alone references the bytes, and the
// invalEpoch guard above decides whether they may serve warm hits.
func (c *Client) populate(fh FH, offset uint64, data []byte, eof bool, epoch uint64) {
	core := c.core
	dc := core.dc
	if dc == nil || offset%DataBlockSize != 0 || len(data) == 0 || len(data) > DataBlockSize {
		return
	}
	if len(data) < DataBlockSize && !eof {
		return
	}
	core.lock()
	defer core.mu.Unlock()
	if core.invalEpoch.Load() != epoch {
		return
	}
	a, ok := core.attrs[string(fh)]
	if !ok || !time.Now().Before(a.expires) {
		return
	}
	dc.grantLocked(string(fh), c.principal)
	dc.insertLocked(string(fh), offset/DataBlockSize, data, &core.evictions)
}

// noteWrite folds an acknowledged WRITE into the cache so re-reads of
// freshly written data never touch the wire. Single-block-aligned
// writes merge copy-on-write into the block; anything else, or any
// write racing an invalidation, just drops the overlapping blocks.
// owned says data belongs to the cache (already a private copy);
// otherwise the caller may reuse its buffer and the bytes are copied.
// The grant a write earns only exposes bytes the writer itself sent.
func (c *Client) noteWrite(fh FH, offset uint64, data []byte, epoch uint64, owned bool) {
	core := c.core
	dc := core.dc
	if dc == nil || len(data) == 0 {
		return
	}
	blk := offset / DataBlockSize
	endBlk := (offset + uint64(len(data)) - 1) / DataBlockSize
	core.lock()
	defer core.mu.Unlock()
	a, live := core.attrs[string(fh)]
	if offset%DataBlockSize != 0 || blk != endBlk ||
		core.invalEpoch.Load() != epoch || !live || !time.Now().Before(a.expires) {
		dc.dropRangeLocked(string(fh), offset, offset+uint64(len(data)))
		return
	}
	var nb []byte
	if old := dc.files[string(fh)][blk]; old != nil && len(old.data) > len(data) {
		// Overwriting the head of a longer block: keep its tail.
		nb = make([]byte, len(old.data))
		copy(nb, old.data)
		copy(nb, data)
	} else if owned {
		nb = data
	} else {
		nb = append(make([]byte, 0, len(data)), data...)
	}
	dc.grantLocked(string(fh), c.principal)
	dc.insertLocked(string(fh), blk, nb, &core.evictions)
}

// dropFileBlocks discards a file's cached blocks without touching its
// attributes — used for truncation (SETATTR with a size), where the
// attributes in the reply are fresh but the cached bytes are not. The
// epoch bump keeps an in-flight pre-truncate READ from repopulating.
func (core *clientCore) dropFileBlocks(fh FH) {
	if core.dc == nil {
		return
	}
	core.lock()
	core.invalEpoch.Add(1)
	core.dc.dropFileLocked(string(fh))
	core.mu.Unlock()
}
