package agent

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/sfsrpc"
)

var (
	agOnce sync.Once
	k1, k2 *rabin.PrivateKey
	srvK   *rabin.PrivateKey
)

func agKeys(t testing.TB) (*rabin.PrivateKey, *rabin.PrivateKey, *rabin.PrivateKey) {
	t.Helper()
	agOnce.Do(func() {
		g := prng.NewSeeded([]byte("agent-test"))
		var err error
		if k1, err = rabin.GenerateKey(g, 512); err != nil {
			t.Fatal(err)
		}
		if k2, err = rabin.GenerateKey(g, 512); err != nil {
			t.Fatal(err)
		}
		if srvK, err = rabin.GenerateKey(g, 512); err != nil {
			t.Fatal(err)
		}
	})
	return k1, k2, srvK
}

func testAI() sfsrpc.AuthInfo {
	var sid [20]byte
	sid[0] = 0x42
	return sfsrpc.NewAuthInfo("server.example.com",
		core.ComputeHostID("server.example.com", []byte("k")), sid)
}

func TestAuthenticateSignsValidRequest(t *testing.T) {
	uk, _, _ := agKeys(t)
	a := New("dm", prng.NewSeeded([]byte("a1")))
	a.AddKey(uk)
	ai := testAI()
	raw, ok := a.Authenticate(ai, 5, "console", 0)
	if !ok {
		t.Fatal("agent declined with a key loaded")
	}
	msg, err := sfsrpc.ParseAuthMsg(raw)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := msg.Verify(ai, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(&uk.PublicKey) {
		t.Fatal("signed with wrong key")
	}
	if msg.Req.AuthPath != "console" {
		t.Fatal("audit path not carried")
	}
}

func TestAuthenticateTriesKeysInOrder(t *testing.T) {
	ka, kb, _ := agKeys(t)
	a := New("dm", prng.NewSeeded([]byte("a2")))
	a.AddKey(ka)
	a.AddKey(kb)
	ai := testAI()
	raw0, ok := a.Authenticate(ai, 1, "", 0)
	if !ok {
		t.Fatal("attempt 0 declined")
	}
	m0, _ := sfsrpc.ParseAuthMsg(raw0)
	p0, _ := rabin.ParsePublicKey(m0.UserKey)
	if !p0.Equal(&ka.PublicKey) {
		t.Fatal("attempt 0 used wrong key")
	}
	raw1, ok := a.Authenticate(ai, 2, "", 1)
	if !ok {
		t.Fatal("attempt 1 declined")
	}
	m1, _ := sfsrpc.ParseAuthMsg(raw1)
	p1, _ := rabin.ParsePublicKey(m1.UserKey)
	if !p1.Equal(&kb.PublicKey) {
		t.Fatal("attempt 1 used wrong key")
	}
	// Out of keys: decline (anonymous access follows).
	if _, ok := a.Authenticate(ai, 3, "", 2); ok {
		t.Fatal("agent did not decline after exhausting keys")
	}
}

func TestAuthenticateWithoutKeysDeclines(t *testing.T) {
	a := New("dm", prng.NewSeeded([]byte("a3")))
	if _, ok := a.Authenticate(testAI(), 1, "", 0); ok {
		t.Fatal("keyless agent signed something")
	}
}

func TestAuditTrail(t *testing.T) {
	uk, _, _ := agKeys(t)
	a := New("dm", prng.NewSeeded([]byte("a4")))
	a.AddKey(uk)
	ai := testAI()
	a.Authenticate(ai, 1, "via:ssh-proxy", 0)
	a.Authenticate(ai, 2, "console", 0)
	audit := a.Audit()
	if len(audit) != 2 {
		t.Fatalf("audit has %d entries", len(audit))
	}
	if audit[0].AuthPath != "via:ssh-proxy" || audit[0].SeqNo != 1 {
		t.Fatalf("audit[0] = %+v", audit[0])
	}
	if audit[1].Location != "server.example.com" {
		t.Fatalf("audit[1] = %+v", audit[1])
	}
}

type fakeResolver struct {
	links map[string]string
	files map[string][]byte
}

func (f *fakeResolver) ReadLink(p string) (string, error) {
	if t, ok := f.links[p]; ok {
		return t, nil
	}
	return "", errors.New("no such link")
}

func (f *fakeResolver) ReadFile(p string) ([]byte, error) {
	if d, ok := f.files[p]; ok {
		return d, nil
	}
	return nil, errors.New("no such file")
}

func TestDynamicLinksAndCertPaths(t *testing.T) {
	a := New("dm", prng.NewSeeded([]byte("a5")))
	a.Symlink("mymit", "/sfs/mit.example.com:aaaa")
	target, err := a.LookupName("mymit")
	if err != nil || target != "/sfs/mit.example.com:aaaa" {
		t.Fatalf("own link: %q %v", target, err)
	}
	// Certification path consulted in order: local dir first, then
	// the CA; the first match wins.
	r := &fakeResolver{links: map[string]string{
		"/home/dm/.sfs/known_hosts/verisign": "/sfs/local-copy:1111",
		"/sfs/ca.example.com:cccc/verisign":  "/sfs/ca-copy:2222",
		"/sfs/ca.example.com:cccc/redhat":    "/sfs/redhat:3333",
	}}
	a.SetResolver(r)
	a.SetCertPaths([]string{"/home/dm/.sfs/known_hosts", "/sfs/ca.example.com:cccc"})
	target, err = a.LookupName("verisign")
	if err != nil || target != "/sfs/local-copy:1111" {
		t.Fatalf("cert path precedence: %q %v", target, err)
	}
	target, err = a.LookupName("redhat")
	if err != nil || target != "/sfs/redhat:3333" {
		t.Fatalf("fallthrough: %q %v", target, err)
	}
	if _, err := a.LookupName("unknown"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown name: %v", err)
	}
}

func TestRevocationBlocksAccess(t *testing.T) {
	_, _, sk := agKeys(t)
	g := prng.NewSeeded([]byte("rev"))
	a := New("dm", g)
	p := core.MakePath("dead.example.com", sk.PublicKey.Bytes())
	cert, err := core.NewRevocation(sk, "dead.example.com", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddRevocation(cert); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CheckPath(p); !errors.Is(err, ErrRevoked) {
		t.Fatalf("got %v, want ErrRevoked", err)
	}
}

func TestForwardingPointerRedirects(t *testing.T) {
	uk, _, sk := agKeys(t)
	g := prng.NewSeeded([]byte("fwd"))
	a := New("dm", g)
	oldPath := core.MakePath("old.example.com", sk.PublicKey.Bytes())
	newPath := core.MakePath("new.example.com", uk.PublicKey.Bytes())
	fwd, err := core.NewForward(sk, "old.example.com", newPath, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddRevocation(fwd); err != nil {
		t.Fatal(err)
	}
	old := oldPath
	old.Rest = "users/dm"
	redirect, err := a.CheckPath(old)
	if err != nil {
		t.Fatal(err)
	}
	if redirect == nil || redirect.Name() != newPath.Name() || redirect.Rest != "users/dm" {
		t.Fatalf("redirect = %+v", redirect)
	}
}

func TestRevocationOverrulesForward(t *testing.T) {
	uk, _, sk := agKeys(t)
	g := prng.NewSeeded([]byte("both"))
	a := New("dm", g)
	p := core.MakePath("h.example.com", sk.PublicKey.Bytes())
	fwd, _ := core.NewForward(sk, "h.example.com", core.MakePath("x", uk.PublicKey.Bytes()), g)
	rev, _ := core.NewRevocation(sk, "h.example.com", g)
	// Forward first, then revocation: revocation wins.
	a.AddRevocation(fwd) //nolint:errcheck
	a.AddRevocation(rev) //nolint:errcheck
	if _, err := a.CheckPath(p); !errors.Is(err, ErrRevoked) {
		t.Fatalf("got %v, want ErrRevoked", err)
	}
	// Reverse order: forward arrives after revocation, still loses.
	b := New("dm", g)
	b.AddRevocation(rev) //nolint:errcheck
	b.AddRevocation(fwd) //nolint:errcheck
	if _, err := b.CheckPath(p); !errors.Is(err, ErrRevoked) {
		t.Fatalf("reverse order: got %v, want ErrRevoked", err)
	}
}

func TestHostIDBlocking(t *testing.T) {
	_, _, sk := agKeys(t)
	a := New("dm", prng.NewSeeded([]byte("blk")))
	p := core.MakePath("sketchy.example.com", sk.PublicKey.Bytes())
	a.Block(p.HostID)
	if _, err := a.CheckPath(p); !errors.Is(err, ErrBlocked) {
		t.Fatalf("got %v, want ErrBlocked", err)
	}
	a.Unblock(p.HostID)
	if _, err := a.CheckPath(p); err != nil {
		t.Fatalf("after unblock: %v", err)
	}
	// Blocking is per-agent: another user's agent is unaffected.
	b := New("other", prng.NewSeeded([]byte("blk2")))
	if _, err := b.CheckPath(p); err != nil {
		t.Fatalf("other agent affected: %v", err)
	}
}

func TestRevocationDirectoryConsulted(t *testing.T) {
	_, _, sk := agKeys(t)
	g := prng.NewSeeded([]byte("revdir"))
	p := core.MakePath("dead.example.com", sk.PublicKey.Bytes())
	cert, err := core.NewRevocation(sk, "dead.example.com", g)
	if err != nil {
		t.Fatal(err)
	}
	r := &fakeResolver{files: map[string][]byte{
		"/sfs/verisign.example.com:vvvv/revocations/" + p.HostID.String(): cert.Marshal(),
	}}
	a := New("dm", g)
	a.SetResolver(r)
	a.SetRevocationDirs([]string{"/sfs/verisign.example.com:vvvv/revocations"})
	if _, err := a.CheckPath(p); !errors.Is(err, ErrRevoked) {
		t.Fatalf("got %v, want ErrRevoked", err)
	}
	// The certificate is now cached: works without the resolver.
	a.SetResolver(nil)
	if _, err := a.CheckPath(p); !errors.Is(err, ErrRevoked) {
		t.Fatalf("cached: got %v, want ErrRevoked", err)
	}
}

func TestForgedRevocationIgnored(t *testing.T) {
	uk, _, sk := agKeys(t)
	g := prng.NewSeeded([]byte("forged"))
	victim := core.MakePath("victim.example.com", sk.PublicKey.Bytes())
	// An attacker (uk) "revokes" the victim's location; the HostID
	// embedded in the certificate is the attacker's own, so lookup
	// by the victim's HostID must miss it — and a certificate
	// planted under the victim's HostID file name fails the id
	// match.
	forged, err := core.NewRevocation(uk, "victim.example.com", g)
	if err != nil {
		t.Fatal(err)
	}
	r := &fakeResolver{files: map[string][]byte{
		"/revs/" + victim.HostID.String(): forged.Marshal(),
	}}
	a := New("dm", g)
	a.SetResolver(r)
	a.SetRevocationDirs([]string{"/revs"})
	if _, err := a.CheckPath(victim); err != nil {
		t.Fatalf("forged revocation took effect: %v", err)
	}
}

func TestBookmarks(t *testing.T) {
	_, _, sk := agKeys(t)
	a := New("dm", prng.NewSeeded([]byte("bm")))
	p := core.MakePath("work.example.com", sk.PublicKey.Bytes())
	a.Bookmark("work", p)
	bm := a.Bookmarks()
	if bm["work"] != p.String() {
		t.Fatalf("bookmark = %q", bm["work"])
	}
}

func TestLinksCopySemantics(t *testing.T) {
	a := New("dm", prng.NewSeeded([]byte("cp")))
	a.Symlink("x", "/sfs/a:1")
	links := a.Links()
	links["x"] = "tampered"
	if a.Links()["x"] != "/sfs/a:1" {
		t.Fatal("Links() exposed internal map")
	}
	a.Unlink("x")
	if len(a.Links()) != 0 {
		t.Fatal("Unlink failed")
	}
}
