package agent

import (
	"net"
	"strings"
	"testing"

	"repro/internal/crypto/prng"
	"repro/internal/sfsrpc"
)

func TestProxyAgentSigning(t *testing.T) {
	uk, _, _ := agKeys(t)
	// The home agent has the keys.
	home := New("dm", prng.NewSeeded([]byte("home")))
	home.AddKey(uk)
	// The lab agent has none; it forwards over a pipe.
	laptop := New("dm", prng.NewSeeded([]byte("lab")))
	c1, c2 := net.Pipe()
	go home.ServeSigner(c2) //nolint:errcheck
	laptop.UseRemoteSigner(c1, "lab-host")

	ai := testAI()
	raw, ok := laptop.Authenticate(ai, 9, "sfscd:dm", 0)
	if !ok {
		t.Fatal("proxy signing declined")
	}
	msg, err := sfsrpc.ParseAuthMsg(raw)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := msg.Verify(ai, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(&uk.PublicKey) {
		t.Fatal("proxy signature under wrong key")
	}
	// The audit path records the hop, and the audit trail lives at
	// the home agent.
	if !strings.Contains(msg.Req.AuthPath, "lab-host") {
		t.Fatalf("audit path %q missing the proxy hop", msg.Req.AuthPath)
	}
	audit := home.Audit()
	if len(audit) != 1 || !strings.Contains(audit[0].AuthPath, "lab-host!sfscd:dm") {
		t.Fatalf("home audit: %+v", audit)
	}
	if len(laptop.Audit()) != 0 {
		t.Fatal("laptop recorded a signing it never performed")
	}
}

func TestProxyDeclinesPropagate(t *testing.T) {
	// A keyless home agent declines; the proxy must too.
	home := New("dm", prng.NewSeeded([]byte("home2")))
	laptop := New("dm", prng.NewSeeded([]byte("lab2")))
	c1, c2 := net.Pipe()
	go home.ServeSigner(c2) //nolint:errcheck
	laptop.UseRemoteSigner(c1, "lab")
	if _, ok := laptop.Authenticate(testAI(), 1, "", 0); ok {
		t.Fatal("proxy signed with a keyless home agent")
	}
}

func TestProxyConnectionLossDeclines(t *testing.T) {
	uk, _, _ := agKeys(t)
	home := New("dm", prng.NewSeeded([]byte("home3")))
	home.AddKey(uk)
	laptop := New("dm", prng.NewSeeded([]byte("lab3")))
	c1, c2 := net.Pipe()
	go home.ServeSigner(c2) //nolint:errcheck
	laptop.UseRemoteSigner(c1, "lab")
	c1.Close() // session torn down
	if _, ok := laptop.Authenticate(testAI(), 1, "", 0); ok {
		t.Fatal("proxy signed over a dead connection")
	}
}

func TestClearRemoteSignerRestoresLocal(t *testing.T) {
	uk, kb, _ := agKeys(t)
	home := New("dm", prng.NewSeeded([]byte("home4")))
	home.AddKey(uk)
	laptop := New("dm", prng.NewSeeded([]byte("lab4")))
	laptop.AddKey(kb) // laptop has its own (different) key
	c1, c2 := net.Pipe()
	go home.ServeSigner(c2) //nolint:errcheck
	laptop.UseRemoteSigner(c1, "lab")
	ai := testAI()
	raw, ok := laptop.Authenticate(ai, 1, "", 0)
	if !ok {
		t.Fatal("proxy declined")
	}
	m, _ := sfsrpc.ParseAuthMsg(raw)
	p, _ := m.Verify(ai, 1)
	if !p.Equal(&uk.PublicKey) {
		t.Fatal("proxy used local key")
	}
	laptop.ClearRemoteSigner()
	raw, ok = laptop.Authenticate(ai, 2, "", 0)
	if !ok {
		t.Fatal("local signing declined after clear")
	}
	m, _ = sfsrpc.ParseAuthMsg(raw)
	p, _ = m.Verify(ai, 2)
	if !p.Equal(&kb.PublicKey) {
		t.Fatal("still proxying after ClearRemoteSigner")
	}
}
