package agent

import (
	"io"
	"sync"

	"repro/internal/sfsrpc"
	"repro/internal/sunrpc"
	"repro/internal/xdr"
)

// Proxy agents (paper §2.5.1): "Proxy agents could forward
// authentication requests to other SFS agents. We hope to build a
// remote login utility similar to ssh that acts as a proxy SFS agent.
// That way, users can automatically access their files when logging
// in to a remote machine."
//
// The protocol is a single signing RPC. The home agent keeps the
// private keys and its audit trail (every request carries the path of
// machines it traveled through); the remote agent holds no key
// material at all, so compromising the remote machine after the
// session ends reveals nothing.

// AgentProgram is the agent↔agent RPC program.
const AgentProgram = 344445

// Agent proxy procedures.
const (
	// ProcSign asks the serving agent to sign an authentication
	// request.
	ProcSign = 1
)

type signArgs struct {
	AuthInfo sfsrpc.AuthInfo
	SeqNo    uint32
	AuthPath string
	Attempt  uint32
}

type signRes struct {
	OK  bool
	Msg []byte
}

// ServeSigner serves signing requests from a proxy agent on conn
// (typically a channel of an ssh-like remote login session). It
// returns when the connection fails. The serving agent appends the
// proxy hop to the audit path of every request it signs.
func (a *Agent) ServeSigner(conn io.ReadWriteCloser) error {
	rpc := sunrpc.NewServer()
	rpc.Register(AgentProgram, sfsrpc.Version, func(proc uint32, _ sunrpc.OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
		if proc != ProcSign {
			return nil, sunrpc.ErrProcUnavail
		}
		var sa signArgs
		if err := args.Decode(&sa); err != nil {
			return nil, sunrpc.ErrGarbageArgs
		}
		msg, ok := a.Authenticate(sa.AuthInfo, sa.SeqNo, sa.AuthPath, int(sa.Attempt))
		if !ok {
			return signRes{OK: false, Msg: []byte{}}, nil
		}
		return signRes{OK: true, Msg: msg}, nil
	})
	return rpc.ServeConn(conn)
}

// remoteSigner forwards signing to a home agent.
type remoteSigner struct {
	mu  sync.Mutex
	rpc *sunrpc.Client
	hop string
}

// UseRemoteSigner switches this agent into proxy mode: Authenticate
// forwards requests over conn to the agent served by ServeSigner at
// the other end, prefixing hop (e.g. "lab-host") to the audit path.
// Local keys, links, certification paths, and revocation state keep
// working as before — only signing is delegated.
func (a *Agent) UseRemoteSigner(conn io.ReadWriteCloser, hop string) {
	rs := &remoteSigner{rpc: sunrpc.NewClient(conn), hop: hop}
	a.mu.Lock()
	a.remote = rs
	a.mu.Unlock()
}

// ClearRemoteSigner returns the agent to local signing.
func (a *Agent) ClearRemoteSigner() {
	a.mu.Lock()
	rs := a.remote
	a.remote = nil
	a.mu.Unlock()
	if rs != nil {
		rs.rpc.Close()
	}
}

// proxyAuthenticate forwards one request; called by Authenticate when
// a remote signer is installed.
func (rs *remoteSigner) authenticate(ai sfsrpc.AuthInfo, seqNo uint32, authPath string, attempt int) ([]byte, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	path := rs.hop
	if authPath != "" {
		path = rs.hop + "!" + authPath
	}
	var res signRes
	err := rs.rpc.Call(AgentProgram, sfsrpc.Version, ProcSign, sunrpc.NoAuth(),
		signArgs{AuthInfo: ai, SeqNo: seqNo, AuthPath: path, Attempt: uint32(attempt)}, &res)
	if err != nil || !res.OK {
		return nil, false
	}
	return res.Msg, true
}
