// Package agent implements the SFS user agent (sfsagent, paper §2.3,
// §2.5.1): the unprivileged per-user program that authenticates its
// user to remote servers, controls the user's view of the /sfs
// directory, and decides which HostIDs to treat as revoked or blocked.
//
// Every user on an SFS client runs an agent of his choice and can
// replace it at will — new user-authentication protocols need no
// client privileges. The agent:
//
//   - holds the user's private keys and signs authentication requests,
//     keeping a full audit trail of every private key operation;
//   - creates symbolic links in /sfs visible only to its own user,
//     mapping human-readable names to self-certifying pathnames;
//   - resolves names through a certification path: an ordered list of
//     directories of symbolic links (e.g. ~/.sfs/known_hosts, then a
//     certification authority), consulted in sequence;
//   - checks new self-certifying pathnames against revocation
//     certificates (its own store plus on-file revocation
//     directories), and honors HostID blocks.
package agent

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/sfsrpc"
)

// Resolver gives the agent read access to mounted SFS file systems so
// certification paths and revocation directories can live on remote,
// secure file systems. The client daemon implements it.
type Resolver interface {
	// ReadLink returns the target of the symbolic link at an
	// absolute path (which may itself be a self-certifying path).
	ReadLink(path string) (string, error)
	// ReadFile returns the contents of the file at an absolute path.
	ReadFile(path string) ([]byte, error)
}

// Errors.
var (
	ErrRevoked   = errors.New("agent: pathname revoked")
	ErrBlocked   = errors.New("agent: HostID blocked by agent")
	ErrNoSuchKey = errors.New("agent: no keys loaded")
	ErrNotFound  = errors.New("agent: name not found")
)

// AuditEntry records one private-key operation (paper §2.5.1: "an SFS
// agent can keep a full audit trail of every private key operation it
// performs").
type AuditEntry struct {
	Time     time.Time
	Location string
	HostID   core.HostID
	SeqNo    uint32
	AuthPath string
	KeyIndex int
}

// Agent is one user's agent.
type Agent struct {
	user string
	rng  *prng.Generator

	mu        sync.Mutex
	keys      []*rabin.PrivateKey
	resolver  Resolver
	links     map[string]string // dynamic symlinks in /sfs
	certPaths []string
	revDirs   []string
	revoked   map[core.HostID]*core.PathRevoke
	forwards  map[core.HostID]*core.PathRevoke
	blocked   map[core.HostID]bool
	bookmarks map[string]string
	// checking guards against re-entrant revocation lookups: the
	// revocation directory itself lives on an SFS path whose access
	// triggers CheckPath again.
	checking map[core.HostID]bool
	// remote, when set, forwards signing to a home agent (proxy
	// mode, paper §2.5.1).
	remote *remoteSigner
	audit  []AuditEntry
	// maxTries bounds authentication attempts per server before the
	// agent declines and the user proceeds anonymously.
	maxTries int
}

// New creates an agent for the named user.
func New(user string, rng *prng.Generator) *Agent {
	if rng == nil {
		rng = prng.New()
	}
	return &Agent{
		user:      user,
		rng:       rng,
		links:     make(map[string]string),
		revoked:   make(map[core.HostID]*core.PathRevoke),
		forwards:  make(map[core.HostID]*core.PathRevoke),
		blocked:   make(map[core.HostID]bool),
		bookmarks: make(map[string]string),
		checking:  make(map[core.HostID]bool),
		maxTries:  3,
	}
}

// User returns the agent's user name.
func (a *Agent) User() string { return a.user }

// SetResolver installs the client-provided resolver.
func (a *Agent) SetResolver(r Resolver) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.resolver = r
}

// AddKey loads a private key. Keys are tried in order during
// authentication.
func (a *Agent) AddKey(k *rabin.PrivateKey) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.keys = append(a.keys, k)
}

// Keys returns the public halves of the loaded keys.
func (a *Agent) Keys() []*rabin.PublicKey {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*rabin.PublicKey, len(a.keys))
	for i, k := range a.keys {
		out[i] = &k.PublicKey
	}
	return out
}

// Authenticate signs an authentication request for the given session
// using the attempt'th key (0-based). It returns the opaque AuthMsg
// bytes, or ok=false when the agent declines (no more keys or too
// many attempts) — at which point the user accesses the file system
// with anonymous permissions.
func (a *Agent) Authenticate(ai sfsrpc.AuthInfo, seqNo uint32, authPath string, attempt int) (msg []byte, ok bool) {
	a.mu.Lock()
	if rs := a.remote; rs != nil {
		a.mu.Unlock()
		return rs.authenticate(ai, seqNo, authPath, attempt)
	}
	defer a.mu.Unlock()
	if attempt >= len(a.keys) || attempt >= a.maxTries {
		return nil, false
	}
	k := a.keys[attempt]
	req := sfsrpc.SignedAuthReq{
		Tag: "SignedAuthReq", AuthID: ai.AuthID(), SeqNo: seqNo, AuthPath: authPath,
	}
	sig, err := k.Sign(a.rng, req.Digest())
	if err != nil {
		return nil, false
	}
	var hostID core.HostID
	copy(hostID[:], ai.HostID[:])
	a.audit = append(a.audit, AuditEntry{
		Time: time.Now(), Location: ai.Location, HostID: hostID,
		SeqNo: seqNo, AuthPath: authPath, KeyIndex: attempt,
	})
	m := sfsrpc.AuthMsg{UserKey: k.PublicKey.Bytes(), Req: req, Sig: *sig}
	return m.Marshal(), true
}

// Audit returns a copy of the audit trail.
func (a *Agent) Audit() []AuditEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AuditEntry(nil), a.audit...)
}

// Symlink creates (or replaces) a dynamic symbolic link in the
// agent's private view of /sfs.
func (a *Agent) Symlink(name, target string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.links[name] = target
}

// Unlink removes a dynamic link.
func (a *Agent) Unlink(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.links, name)
}

// Links returns a copy of the agent's /sfs links.
func (a *Agent) Links() map[string]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]string, len(a.links))
	for k, v := range a.links {
		out[k] = v
	}
	return out
}

// SetCertPaths installs the certification path: directories whose
// symbolic links resolve names in /sfs (paper §2.4, "Certification
// paths").
func (a *Agent) SetCertPaths(paths []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.certPaths = append([]string(nil), paths...)
}

// SetRevocationDirs installs directories containing revocation
// certificates named by HostID (paper §2.6).
func (a *Agent) SetRevocationDirs(dirs []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.revDirs = append([]string(nil), dirs...)
}

// LookupName maps a non-self-certifying name accessed under /sfs to a
// target, consulting the agent's own links first and then each
// certification path directory in sequence. The returned target is
// typically a self-certifying pathname; the client creates a symbolic
// link to it on the fly.
func (a *Agent) LookupName(name string) (string, error) {
	a.mu.Lock()
	if t, ok := a.links[name]; ok {
		a.mu.Unlock()
		return t, nil
	}
	paths := append([]string(nil), a.certPaths...)
	resolver := a.resolver
	a.mu.Unlock()
	if resolver == nil {
		return "", ErrNotFound
	}
	for _, dir := range paths {
		t, err := resolver.ReadLink(strings.TrimSuffix(dir, "/") + "/" + name)
		if err == nil {
			return t, nil
		}
	}
	return "", ErrNotFound
}

// AddRevocation verifies and stores a revocation certificate or
// forwarding pointer. A revocation certificate always overrules a
// forwarding pointer for the same HostID.
func (a *Agent) AddRevocation(cert *core.PathRevoke) error {
	id, err := cert.Verify()
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if cert.IsRevocation() {
		a.revoked[id] = cert
		delete(a.forwards, id)
		return nil
	}
	if _, dead := a.revoked[id]; dead {
		return nil // revocation overrules the forward
	}
	a.forwards[id] = cert
	return nil
}

// Block prevents this agent's user from accessing a HostID without
// requiring a signed revocation — e.g. when an external PKI revoked a
// relevant certificate. It affects no other users (paper §2.6).
func (a *Agent) Block(id core.HostID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.blocked[id] = true
}

// Unblock removes a block.
func (a *Agent) Unblock(id core.HostID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.blocked, id)
}

// CheckPath decides whether the user may access path. It returns:
//   - ErrBlocked if the agent's user blocked the HostID;
//   - ErrRevoked if a valid revocation certificate is known or found
//     in a revocation directory;
//   - a forwarding redirect (newPath, ErrRedirect) if a forwarding
//     pointer is known and no revocation overrules it;
//   - otherwise nil, permitting access.
func (a *Agent) CheckPath(p core.Path) (redirect *core.Path, err error) {
	a.mu.Lock()
	if a.blocked[p.HostID] {
		a.mu.Unlock()
		return nil, ErrBlocked
	}
	if _, ok := a.revoked[p.HostID]; ok {
		a.mu.Unlock()
		return nil, ErrRevoked
	}
	fwd := a.forwards[p.HostID]
	revDirs := append([]string(nil), a.revDirs...)
	resolver := a.resolver
	// Reading a revocation directory accesses an SFS path, which
	// triggers CheckPath again (including for the directory's own
	// server). Skip the directory consultation when a check for
	// this HostID is already on the stack; cached verdicts above
	// still apply.
	reentrant := a.checking[p.HostID]
	if !reentrant {
		a.checking[p.HostID] = true
	}
	a.mu.Unlock()

	// Consult revocation directories for fresh certificates.
	if resolver != nil && !reentrant {
		name := p.HostID.String()
		for _, dir := range revDirs {
			data, err := resolver.ReadFile(strings.TrimSuffix(dir, "/") + "/" + name)
			if err != nil {
				continue
			}
			cert, id, err := core.ParsePathRevoke(data)
			if err != nil || id != p.HostID {
				continue // forged or misplaced certificate: ignore
			}
			if err := a.AddRevocation(cert); err != nil {
				continue
			}
			if cert.IsRevocation() {
				a.doneChecking(p.HostID)
				return nil, ErrRevoked
			}
			fwd = cert
		}
	}
	if !reentrant {
		a.doneChecking(p.HostID)
	}
	if fwd != nil {
		t, err := fwd.ForwardTarget()
		if err != nil {
			return nil, ErrRevoked
		}
		t.Rest = p.Rest
		return &t, nil
	}
	return nil, nil
}

func (a *Agent) doneChecking(id core.HostID) {
	a.mu.Lock()
	delete(a.checking, id)
	a.mu.Unlock()
}

// Bookmark records a secure bookmark: the name maps back to the full
// self-certifying pathname (paper §2.4, the 10-line bookmark script).
func (a *Agent) Bookmark(name string, p core.Path) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bookmarks[name] = p.String()
}

// Bookmarks returns a copy of the bookmark table.
func (a *Agent) Bookmarks() map[string]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]string, len(a.bookmarks))
	for k, v := range a.bookmarks {
		out[k] = v
	}
	return out
}

// String describes the agent for debugging.
func (a *Agent) String() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return fmt.Sprintf("agent(%s, %d keys, %d links)", a.user, len(a.keys), len(a.links))
}
