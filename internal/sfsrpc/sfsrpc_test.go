package sfsrpc

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
)

var (
	userKeyOnce sync.Once
	userKey     *rabin.PrivateKey
	evilKey     *rabin.PrivateKey
)

func keys(t *testing.T) (*rabin.PrivateKey, *rabin.PrivateKey) {
	t.Helper()
	userKeyOnce.Do(func() {
		g := prng.NewSeeded([]byte("sfsrpc-test"))
		var err error
		if userKey, err = rabin.GenerateKey(g, 512); err != nil {
			t.Fatal(err)
		}
		if evilKey, err = rabin.GenerateKey(g, 512); err != nil {
			t.Fatal(err)
		}
	})
	return userKey, evilKey
}

func testAuthInfo(session byte) AuthInfo {
	var sid [20]byte
	sid[0] = session
	return NewAuthInfo("server.example.com", core.ComputeHostID("server.example.com", []byte("k")), sid)
}

func signReq(t *testing.T, k *rabin.PrivateKey, ai AuthInfo, seq uint32) *AuthMsg {
	t.Helper()
	g := prng.NewSeeded([]byte{byte(seq)})
	req := SignedAuthReq{Tag: "SignedAuthReq", AuthID: ai.AuthID(), SeqNo: seq}
	sig, err := k.Sign(g, req.Digest())
	if err != nil {
		t.Fatal(err)
	}
	return &AuthMsg{UserKey: k.PublicKey.Bytes(), Req: req, Sig: *sig}
}

func TestAuthIDDeterministicAndSessionBound(t *testing.T) {
	a := testAuthInfo(1)
	b := testAuthInfo(1)
	if a.AuthID() != b.AuthID() {
		t.Fatal("AuthID not deterministic")
	}
	c := testAuthInfo(2)
	if a.AuthID() == c.AuthID() {
		t.Fatal("AuthID ignores session")
	}
}

func TestAuthMsgRoundTripAndVerify(t *testing.T) {
	uk, _ := keys(t)
	ai := testAuthInfo(1)
	msg := signReq(t, uk, ai, 7)
	parsed, err := ParseAuthMsg(msg.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := parsed.Verify(ai, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(&uk.PublicKey) {
		t.Fatal("verified key differs")
	}
}

func TestVerifyRejectsWrongSession(t *testing.T) {
	uk, _ := keys(t)
	msg := signReq(t, uk, testAuthInfo(1), 7)
	if _, err := msg.Verify(testAuthInfo(2), 7); err == nil {
		t.Fatal("signature accepted for different session")
	}
}

func TestVerifyRejectsWrongSeqNo(t *testing.T) {
	uk, _ := keys(t)
	ai := testAuthInfo(1)
	msg := signReq(t, uk, ai, 7)
	if _, err := msg.Verify(ai, 8); err == nil {
		t.Fatal("signature accepted with replayed seqno")
	}
}

func TestVerifyRejectsSubstitutedKey(t *testing.T) {
	uk, ek := keys(t)
	ai := testAuthInfo(1)
	msg := signReq(t, uk, ai, 7)
	// An attacker replaces the public key with their own: the
	// signature must no longer verify.
	msg.UserKey = ek.PublicKey.Bytes()
	if _, err := msg.Verify(ai, 7); err == nil {
		t.Fatal("key substitution accepted")
	}
}

func TestVerifyRejectsTamperedAuthPath(t *testing.T) {
	uk, _ := keys(t)
	ai := testAuthInfo(1)
	msg := signReq(t, uk, ai, 7)
	msg.Req.AuthPath = "attacker-host!" // audit trail is signed
	if _, err := msg.Verify(ai, 7); err == nil {
		t.Fatal("audit-trail tampering accepted")
	}
}

func TestParseGarbage(t *testing.T) {
	if _, err := ParseAuthMsg([]byte("garbage")); err == nil {
		t.Fatal("garbage parsed")
	}
}
