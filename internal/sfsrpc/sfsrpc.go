// Package sfsrpc defines the SFS user-authentication protocol
// structures and RPC program numbers shared by the client, server,
// agent, and authserver (paper §3.1.2, Figure 4).
//
// SFS identifies sessions uniquely with an AuthInfo structure bound to
// the secure channel's SessionID. When a user first accesses a file
// system, the client sends the AuthInfo and a fresh sequence number to
// the user's agent; the agent hashes the AuthInfo to a 20-byte AuthID,
// concatenates the sequence number, signs the result, and appends the
// user's public key. The file server forwards this opaque message to
// the authserver, which validates the signature and maps the public
// key to local credentials.
package sfsrpc

import (
	"crypto/sha1"

	"repro/internal/core"
	"repro/internal/crypto/rabin"
	"repro/internal/xdr"
)

// RPC program numbers for the SFS services.
const (
	// FileProgram is the read-write file protocol (NFS 3 based),
	// served over the secure channel.
	FileProgram = 344440
	// AuthProgram is the agent-opaque user-authentication service a
	// file server exposes next to the file protocol.
	AuthProgram = 344442
	// KeyProgram is the sfskey↔authserver management service (SRP
	// password login, key registration).
	KeyProgram = 344443
	// ROProgram is the read-only dialect protocol (paper §2.4).
	ROProgram = 344446
)

// Versions.
const Version = 1

// File-auth service procedures (AuthProgram).
const (
	// ProcLogin submits an authentication message; the reply carries
	// an authentication number or a retry indication.
	ProcLogin = 1
)

// AuthInfo identifies one session at one file system. Its hash is the
// AuthID users sign.
type AuthInfo struct {
	Tag       string // "AuthInfo"
	Type      string // "FS"
	Location  string
	HostID    [core.HostIDSize]byte
	SessionID [sha1.Size]byte
}

// NewAuthInfo builds the AuthInfo for a session at path.
func NewAuthInfo(location string, hostID core.HostID, sessionID [sha1.Size]byte) AuthInfo {
	var h [core.HostIDSize]byte
	copy(h[:], hostID[:])
	return AuthInfo{Tag: "AuthInfo", Type: "FS", Location: location, HostID: h, SessionID: sessionID}
}

// AuthID returns SHA-1 of the marshaled AuthInfo.
func (ai AuthInfo) AuthID() [sha1.Size]byte {
	return sha1.Sum(xdr.MustMarshal(ai))
}

// SignedAuthReq is the structure whose hash the agent signs.
type SignedAuthReq struct {
	Tag    string // "SignedAuthReq"
	AuthID [sha1.Size]byte
	SeqNo  uint32
	// AuthPath records the path of processes and machines through
	// which the request arrived at the agent, for the agent's audit
	// trail (paper §2.5.1). Opaque to the file system.
	AuthPath string
}

// Digest returns the bytes the signature covers.
func (r SignedAuthReq) Digest() []byte {
	d := sha1.Sum(xdr.MustMarshal(r))
	return d[:]
}

// AuthMsg is the opaque authentication message: the signed request
// plus the user's public key. The client treats it as opaque data.
type AuthMsg struct {
	UserKey []byte // canonical public key encoding
	Req     SignedAuthReq
	Sig     rabin.Signature
}

// Marshal encodes the message for transport.
func (m *AuthMsg) Marshal() []byte { return xdr.MustMarshal(*m) }

// ParseAuthMsg decodes an AuthMsg.
func ParseAuthMsg(b []byte) (*AuthMsg, error) {
	var m AuthMsg
	if err := xdr.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Verify checks the message's signature and that it speaks for
// authInfo with the given sequence number. It returns the embedded
// public key on success.
func (m *AuthMsg) Verify(ai AuthInfo, seqNo uint32) (*rabin.PublicKey, error) {
	pub, err := rabin.ParsePublicKey(m.UserKey)
	if err != nil {
		return nil, err
	}
	if m.Req.AuthID != ai.AuthID() {
		return nil, rabin.ErrVerify
	}
	if m.Req.SeqNo != seqNo {
		return nil, rabin.ErrVerify
	}
	if err := pub.Verify(m.Req.Digest(), &m.Sig); err != nil {
		return nil, err
	}
	return pub, nil
}

// Credentials are what the authserver maps a public key to: a Unix
// user ID and group list (paper §2.5.1).
type Credentials struct {
	User string
	UID  uint32
	GIDs []uint32
}

// LoginArgs is the client→server (and server→authserver) request.
type LoginArgs struct {
	SeqNo   uint32
	AuthMsg []byte // marshaled AuthMsg, opaque to the client
}

// Login status codes.
const (
	LoginOK    = 0 // authenticated; AuthNo valid
	LoginAgain = 1 // rejected; the agent may try other credentials
	LoginNo    = 2 // rejected; stop trying (fall back to anonymous)
)

// LoginRes is the reply: an authentication number the client tags
// subsequent file system requests with. Zero is reserved for
// anonymous access.
type LoginRes struct {
	Status uint32
	AuthNo uint32
}

// ValidateArgs is what the file server hands the authserver: the
// session's AuthInfo plus the opaque login request.
type ValidateArgs struct {
	AuthInfo AuthInfo
	SeqNo    uint32
	AuthMsg  []byte
}

// ValidateRes returns credentials for a valid request.
type ValidateRes struct {
	OK    bool
	Creds Credentials
	// AuthID and SeqNo echo the signed values so the server can
	// check them against the session (paper §3.1.2).
	AuthID [sha1.Size]byte
	SeqNo  uint32
}
