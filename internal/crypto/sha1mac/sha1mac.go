// Package sha1mac implements the SHA-1-based message authentication
// code SFS uses to guarantee the integrity of file system traffic
// (paper §3.1.3).
//
// The MAC is re-keyed for every message with 32 bytes of data pulled
// from the session's ARC4 stream (bytes that are never used for
// encryption). It is computed over the length and plaintext contents
// of each RPC message; the length, message, and MAC all subsequently
// get encrypted by the channel layer. The construction is an
// envelope MAC: SHA-1(k1 || SHA-1(k1 || k2 || data)) with the 32-byte
// per-message key split into k1 and k2, which is sufficient in the
// random-oracle model the paper assumes for SHA-1.
package sha1mac

import (
	"crypto/sha1"
	"crypto/subtle"
	"encoding/binary"
	"hash"
	"sync"
)

// Size is the MAC length in bytes.
const Size = sha1.Size

// KeySize is the per-message key length pulled from the ARC4 stream.
const KeySize = 32

// macState carries a reusable hash plus the scratch arrays the MAC
// needs. Pooling the scratch alongside the digest matters: a stack
// array handed to the hash.Hash interface escapes, so without the pool
// every message would pay several small heap allocations — and the MAC
// runs once per sealed record on the hot wire path.
type macState struct {
	h    hash.Hash
	ln   [8]byte
	isum [Size]byte
	out  [Size]byte
}

var statePool = sync.Pool{New: func() interface{} { return &macState{h: sha1.New()} }}

// Sum computes the MAC of data under the 32-byte per-message key. It
// includes the message length in the hashed input, as the paper
// specifies ("the MAC is computed on the length and plaintext contents
// of each RPC message").
func Sum(key, data []byte) [Size]byte {
	if len(key) != KeySize {
		panic("sha1mac: key must be 32 bytes")
	}
	st := statePool.Get().(*macState)
	binary.BigEndian.PutUint64(st.ln[:], uint64(len(data)))
	st.h.Reset()
	st.h.Write(key[:16])
	st.h.Write(key[16:])
	st.h.Write(st.ln[:])
	st.h.Write(data)
	st.h.Sum(st.isum[:0])
	st.h.Reset()
	st.h.Write(key[:16])
	st.h.Write(st.isum[:])
	st.h.Sum(st.out[:0])
	out := st.out
	statePool.Put(st)
	return out
}

// SumVec computes the MAC of the concatenation of segs under the
// 32-byte per-message key, without materializing the concatenation:
// SHA-1 is a streaming hash, so feeding the segments in order yields
// exactly Sum(key, concat(segs)). This is what lets the secure
// channel seal a scatter-gather record without first flattening it.
func SumVec(key []byte, segs [][]byte) [Size]byte {
	if len(key) != KeySize {
		panic("sha1mac: key must be 32 bytes")
	}
	var total uint64
	for _, s := range segs {
		total += uint64(len(s))
	}
	st := statePool.Get().(*macState)
	binary.BigEndian.PutUint64(st.ln[:], total)
	st.h.Reset()
	st.h.Write(key[:16])
	st.h.Write(key[16:])
	st.h.Write(st.ln[:])
	for _, s := range segs {
		st.h.Write(s)
	}
	st.h.Sum(st.isum[:0])
	st.h.Reset()
	st.h.Write(key[:16])
	st.h.Write(st.isum[:])
	st.h.Sum(st.out[:0])
	out := st.out
	statePool.Put(st)
	return out
}

// Verify reports whether mac is the correct MAC for data under key,
// in constant time.
func Verify(key, data, mac []byte) bool {
	if len(mac) != Size {
		return false
	}
	want := Sum(key, data)
	return subtle.ConstantTimeCompare(want[:], mac) == 1
}
