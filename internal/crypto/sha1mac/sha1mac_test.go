package sha1mac

import (
	"bytes"
	"testing"
	"testing/quick"
)

func key(b byte) []byte {
	k := make([]byte, KeySize)
	for i := range k {
		k[i] = b + byte(i)
	}
	return k
}

func TestDeterministic(t *testing.T) {
	m1 := Sum(key(1), []byte("hello"))
	m2 := Sum(key(1), []byte("hello"))
	if m1 != m2 {
		t.Fatal("MAC is not deterministic")
	}
}

func TestKeySeparation(t *testing.T) {
	if Sum(key(1), []byte("hello")) == Sum(key(2), []byte("hello")) {
		t.Fatal("different keys produced the same MAC")
	}
}

func TestDataSeparation(t *testing.T) {
	if Sum(key(1), []byte("hello")) == Sum(key(1), []byte("hellp")) {
		t.Fatal("different messages produced the same MAC")
	}
}

func TestLengthBinding(t *testing.T) {
	// Messages that would collide without length framing must not.
	a := Sum(key(1), []byte{0, 0})
	b := Sum(key(1), []byte{0, 0, 0})
	if a == b {
		t.Fatal("length not bound into MAC")
	}
}

func TestVerify(t *testing.T) {
	k := key(9)
	data := []byte("rpc payload")
	m := Sum(k, data)
	if !Verify(k, data, m[:]) {
		t.Fatal("valid MAC rejected")
	}
	bad := m
	bad[0] ^= 1
	if Verify(k, data, bad[:]) {
		t.Fatal("corrupted MAC accepted")
	}
	if Verify(k, data, m[:Size-1]) {
		t.Fatal("short MAC accepted")
	}
	if Verify(k, append([]byte("x"), data...), m[:]) {
		t.Fatal("MAC accepted for different data")
	}
}

func TestBadKeySizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short key did not panic")
		}
	}()
	Sum([]byte("short"), nil)
}

func TestQuickNoCollisionsOnFlip(t *testing.T) {
	f := func(k [KeySize]byte, data []byte, flip uint) bool {
		if len(data) == 0 {
			return true
		}
		m1 := Sum(k[:], data)
		mut := bytes.Clone(data)
		mut[flip%uint(len(mut))] ^= 0x01
		m2 := Sum(k[:], mut)
		return m1 != m2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSum8K(b *testing.B) {
	k := key(3)
	data := make([]byte, 8192)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum(k, data)
	}
}
