package srp

import (
	"bytes"
	"math/big"
	"testing"

	"repro/internal/crypto/prng"
)

func runExchange(t *testing.T, clientSecret, serverSecret []byte, seed string) ([]byte, []byte, error) {
	t.Helper()
	g := prng.NewSeeded([]byte("srp-test-" + seed))
	salt := g.Bytes(16)
	verifier := Verifier(salt, serverSecret)

	cl, a, err := NewClient(g, clientSecret)
	if err != nil {
		t.Fatal(err)
	}
	srv, b, err := NewServer(g, verifier, a)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := cl.React(salt, b)
	if err != nil {
		t.Fatal(err)
	}
	m2, serverKey, err := srv.Confirm(m1)
	if err != nil {
		return nil, nil, err
	}
	clientKey, err := cl.Finish(m2)
	if err != nil {
		return nil, nil, err
	}
	return clientKey, serverKey, nil
}

func TestSuccessfulExchange(t *testing.T) {
	secret := []byte("hardened-password-bytes")
	ck, sk, err := runExchange(t, secret, secret, "ok")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck, sk) {
		t.Fatal("client and server derived different keys")
	}
	if len(ck) != KeySize {
		t.Fatalf("key size %d, want %d", len(ck), KeySize)
	}
}

func TestWrongPasswordRejected(t *testing.T) {
	_, _, err := runExchange(t, []byte("wrong"), []byte("right"), "reject")
	if err != ErrAuth {
		t.Fatalf("got %v, want ErrAuth", err)
	}
}

func TestSessionKeysFresh(t *testing.T) {
	secret := []byte("same password")
	k1, _, err := runExchange(t, secret, secret, "fresh-1")
	if err != nil {
		t.Fatal(err)
	}
	k2, _, err := runExchange(t, secret, secret, "fresh-2")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("two exchanges produced the same session key")
	}
}

func TestDegenerateAValuesRejected(t *testing.T) {
	g := prng.NewSeeded([]byte("degen"))
	salt := g.Bytes(16)
	verifier := Verifier(salt, []byte("pw"))
	bad := [][]byte{
		{},             // zero
		{1},            // one
		groupP.Bytes(), // p ≡ 0
		new(big.Int).Sub(groupP, big.NewInt(1)).Bytes(), // p-1
		new(big.Int).Add(groupP, big.NewInt(5)).Bytes(), // out of range
	}
	for i, a := range bad {
		if _, _, err := NewServer(g, verifier, a); err == nil {
			t.Errorf("degenerate A #%d accepted", i)
		}
	}
}

func TestDegenerateBValuesRejected(t *testing.T) {
	g := prng.NewSeeded([]byte("degen-b"))
	cl, _, err := NewClient(g, []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	salt := g.Bytes(16)
	for i, b := range [][]byte{{}, {1}, groupP.Bytes()} {
		if _, err := cl.React(salt, b); err == nil {
			t.Errorf("degenerate B #%d accepted", i)
		}
	}
}

func TestTamperedM1Rejected(t *testing.T) {
	g := prng.NewSeeded([]byte("tamper"))
	salt := g.Bytes(16)
	secret := []byte("pw")
	verifier := Verifier(salt, secret)
	cl, a, _ := NewClient(g, secret)
	srv, b, err := NewServer(g, verifier, a)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := cl.React(salt, b)
	if err != nil {
		t.Fatal(err)
	}
	m1[0] ^= 1
	if _, _, err := srv.Confirm(m1); err != ErrAuth {
		t.Fatalf("got %v, want ErrAuth", err)
	}
}

func TestTamperedM2Rejected(t *testing.T) {
	g := prng.NewSeeded([]byte("tamper2"))
	salt := g.Bytes(16)
	secret := []byte("pw")
	verifier := Verifier(salt, secret)
	cl, a, _ := NewClient(g, secret)
	srv, b, _ := NewServer(g, verifier, a)
	m1, _ := cl.React(salt, b)
	m2, _, err := srv.Confirm(m1)
	if err != nil {
		t.Fatal(err)
	}
	m2[3] ^= 1
	if _, err := cl.Finish(m2); err != ErrAuth {
		t.Fatalf("got %v, want ErrAuth", err)
	}
}

func TestFinishBeforeReact(t *testing.T) {
	g := prng.NewSeeded([]byte("order"))
	cl, _, _ := NewClient(g, []byte("pw"))
	if _, err := cl.Finish([]byte("m2")); err != ErrProtocol {
		t.Fatalf("got %v, want ErrProtocol", err)
	}
}

func TestVerifierDependsOnSaltAndSecret(t *testing.T) {
	v1 := Verifier([]byte("salt1"), []byte("pw"))
	v2 := Verifier([]byte("salt2"), []byte("pw"))
	v3 := Verifier([]byte("salt1"), []byte("pw2"))
	if bytes.Equal(v1, v2) || bytes.Equal(v1, v3) {
		t.Fatal("verifier collisions")
	}
}

// A passive attacker sees salt, A, B, M1, M2. Check that a guessed
// password cannot be confirmed off line from that transcript alone:
// recomputing the verifier and the client computation with the guess
// requires the discrete log of A or B. This test documents the shape
// by confirming that M1 for a wrong guess (with a fresh a') differs —
// i.e. the transcript is not a password oracle.
func TestTranscriptNotAnOracle(t *testing.T) {
	g := prng.NewSeeded([]byte("oracle"))
	salt := g.Bytes(16)
	secret := []byte("right password")
	verifier := Verifier(salt, secret)
	cl, a, _ := NewClient(g, secret)
	srv, b, _ := NewServer(g, verifier, a)
	m1, _ := cl.React(salt, b)
	if _, _, err := srv.Confirm(m1); err != nil {
		t.Fatal(err)
	}
	// Attacker replays A but guesses the password.
	guessCl := &Client{secret: []byte("guessed password"), a: cl.a, bigA: cl.bigA}
	gm1, err := guessCl.React(salt, b)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(gm1, m1) {
		t.Fatal("wrong-password M1 matched the transcript")
	}
}

func BenchmarkFullExchange(b *testing.B) {
	g := prng.NewSeeded([]byte("bench"))
	salt := g.Bytes(16)
	secret := []byte("hardened")
	verifier := Verifier(salt, secret)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, a, err := NewClient(g, secret)
		if err != nil {
			b.Fatal(err)
		}
		srv, bb, err := NewServer(g, verifier, a)
		if err != nil {
			b.Fatal(err)
		}
		m1, err := cl.React(salt, bb)
		if err != nil {
			b.Fatal(err)
		}
		m2, _, err := srv.Confirm(m1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cl.Finish(m2); err != nil {
			b.Fatal(err)
		}
	}
}
