// Package srp implements the Secure Remote Password protocol (Wu,
// NDSS 1998) that sfskey and the authserver use for password
// authentication of servers (paper §2.4).
//
// SRP lets a client and server sharing a weak secret negotiate a
// strong session key without exposing the weak secret to off-line
// guessing attacks. SFS uses it so a user can securely download a
// server's self-certifying pathname (and an encrypted copy of her
// private key) given only a password. The verifier stored by the
// server is derived from an eksblowfish-transformed password, so even
// a stolen verifier forces an attacker to pay the expensive password
// transformation per guess.
//
// The protocol follows the modern SRP-6a refinement of Wu's design
// (the multiplier k = H(N, g) forecloses the two-for-one guessing
// attack against SRP-3, which the paper's reference would permit):
//
//	x = H(salt, inner)        inner = eksblowfish(password) by callers
//	v = g^x                   (verifier, stored by server)
//	client: A = g^a
//	server: B = k·v + g^b
//	u = H(A, B)
//	client: S = (B − k·g^x)^(a + u·x)
//	server: S = (A·v^u)^b
//	K = H(S)                  session key
//	M1 = H(A, B, K), M2 = H(A, M1, K)   key confirmation
package srp

import (
	"crypto/sha1"
	"crypto/subtle"
	"errors"
	"io"
	"math/big"
)

// Group parameters: a 1024-bit safe prime p = 2q+1 with primitive
// root 2, generated for this implementation and verified by init.
const groupPHex = "ddfa1fe5463e1d8887fbe613b1190837b52daa6b231d94b7d25b5e01854c07deb7156b9b3a8a2f6d3c5457c71324c18c00ac5b07748e953232142de71384bef3ce2fc18de510d01bbbe86469672e6b6938a2ffb6a4f98fe6db5981e2177e79f4b7eb6f47fa9a865b15070a13b2a4e446924dca7210264347515e45229b84c7f3"

var (
	groupP *big.Int
	groupQ *big.Int // (p-1)/2
	groupG = big.NewInt(2)
	multK  *big.Int // k = H(p, g)
)

func init() {
	groupP, _ = new(big.Int).SetString(groupPHex, 16)
	if groupP == nil || groupP.BitLen() != 1024 {
		panic("srp: bad group constant")
	}
	groupQ = new(big.Int).Rsh(groupP, 1)
	if !groupP.ProbablyPrime(20) || !groupQ.ProbablyPrime(20) {
		panic("srp: group modulus not a safe prime")
	}
	h := sha1.New()
	h.Write(groupP.Bytes())
	h.Write(groupG.Bytes())
	multK = new(big.Int).SetBytes(h.Sum(nil))
}

// KeySize is the size of the negotiated session key.
const KeySize = sha1.Size

var (
	// ErrAuth is returned when key confirmation fails — a wrong
	// password, a corrupted verifier, or an active attack.
	ErrAuth = errors.New("srp: authentication failed")
	// ErrProtocol is returned for out-of-range protocol values.
	ErrProtocol = errors.New("srp: protocol violation")
)

func hashInts(vals ...*big.Int) *big.Int {
	h := sha1.New()
	for _, v := range vals {
		b := v.Bytes()
		h.Write([]byte{byte(len(b) >> 8), byte(len(b))})
		h.Write(b)
	}
	return new(big.Int).SetBytes(h.Sum(nil))
}

// deriveX computes the private exponent from salt and the (already
// hardened) password bytes.
func deriveX(salt, secret []byte) *big.Int {
	h := sha1.New()
	h.Write(salt)
	h.Write(secret)
	return new(big.Int).SetBytes(h.Sum(nil))
}

// Verifier computes the value v = g^x the server stores for a user.
// secret should be the eksblowfish-hardened password, not the raw
// password, so stolen verifiers stay expensive to attack.
func Verifier(salt, secret []byte) []byte {
	x := deriveX(salt, secret)
	return new(big.Int).Exp(groupG, x, groupP).Bytes()
}

// randExponent picks a uniform nonzero exponent below q.
func randExponent(r io.Reader) (*big.Int, error) {
	buf := make([]byte, 32)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		e := new(big.Int).SetBytes(buf)
		if e.Sign() > 0 {
			return e, nil
		}
	}
}

// checkGroupElement rejects values an attacker could use to force a
// degenerate session key (0, ±1 mod p, or out of range).
func checkGroupElement(v *big.Int) error {
	if v.Sign() <= 0 || v.Cmp(groupP) >= 0 {
		return ErrProtocol
	}
	m := new(big.Int).Mod(v, groupP)
	one := big.NewInt(1)
	pm1 := new(big.Int).Sub(groupP, one)
	if m.Sign() == 0 || m.Cmp(one) == 0 || m.Cmp(pm1) == 0 {
		return ErrProtocol
	}
	return nil
}

// Client holds the client side of one SRP exchange.
type Client struct {
	secret []byte
	a      *big.Int
	bigA   *big.Int
	key    []byte
	m1     *big.Int
}

// SetSecret replaces the client's hardened password bytes. It must be
// called before React. sfskey uses it because the eksblowfish salt and
// cost needed to harden the password only arrive in the server's first
// response, after A has been sent.
func (c *Client) SetSecret(secret []byte) { c.secret = secret }

// NewClient starts an exchange for the given hardened password bytes.
// It returns the client and the value A to send to the server.
func NewClient(rand io.Reader, secret []byte) (*Client, []byte, error) {
	a, err := randExponent(rand)
	if err != nil {
		return nil, nil, err
	}
	bigA := new(big.Int).Exp(groupG, a, groupP)
	return &Client{secret: secret, a: a, bigA: bigA}, bigA.Bytes(), nil
}

// React processes the server's (salt, B) message and returns the key
// confirmation value M1 to send back.
func (c *Client) React(salt, bBytes []byte) ([]byte, error) {
	bigB := new(big.Int).SetBytes(bBytes)
	if err := checkGroupElement(bigB); err != nil {
		return nil, err
	}
	u := hashInts(c.bigA, bigB)
	if u.Sign() == 0 {
		return nil, ErrProtocol
	}
	x := deriveX(salt, c.secret)
	// S = (B - k*g^x) ^ (a + u*x) mod p
	gx := new(big.Int).Exp(groupG, x, groupP)
	kgx := new(big.Int).Mul(multK, gx)
	base := new(big.Int).Sub(bigB, kgx)
	base.Mod(base, groupP)
	exp := new(big.Int).Mul(u, x)
	exp.Add(exp, c.a)
	s := new(big.Int).Exp(base, exp, groupP)
	kh := sha1.Sum(s.Bytes())
	c.key = kh[:]
	c.m1 = hashInts(c.bigA, bigB, new(big.Int).SetBytes(c.key))
	return c.m1.Bytes(), nil
}

// Finish verifies the server's confirmation M2 and returns the shared
// session key.
func (c *Client) Finish(m2 []byte) ([]byte, error) {
	if c.key == nil {
		return nil, ErrProtocol
	}
	want := hashInts(c.bigA, c.m1, new(big.Int).SetBytes(c.key))
	if subtle.ConstantTimeCompare(want.Bytes(), m2) != 1 {
		return nil, ErrAuth
	}
	return c.key, nil
}

// Server holds the server side of one SRP exchange.
type Server struct {
	v    *big.Int
	b    *big.Int
	bigB *big.Int
	bigA *big.Int
	key  []byte
}

// NewServer starts the server side for a stored (salt, verifier) pair
// after receiving the client's A. It returns the server state and the
// value B to send to the client.
func NewServer(rand io.Reader, verifier, aBytes []byte) (*Server, []byte, error) {
	bigA := new(big.Int).SetBytes(aBytes)
	if err := checkGroupElement(bigA); err != nil {
		return nil, nil, err
	}
	v := new(big.Int).SetBytes(verifier)
	if v.Sign() <= 0 || v.Cmp(groupP) >= 0 {
		return nil, nil, ErrProtocol
	}
	b, err := randExponent(rand)
	if err != nil {
		return nil, nil, err
	}
	// B = k*v + g^b mod p
	bigB := new(big.Int).Exp(groupG, b, groupP)
	kv := new(big.Int).Mul(multK, v)
	bigB.Add(bigB, kv)
	bigB.Mod(bigB, groupP)
	u := hashInts(bigA, bigB)
	if u.Sign() == 0 {
		return nil, nil, ErrProtocol
	}
	// S = (A * v^u) ^ b mod p
	vu := new(big.Int).Exp(v, u, groupP)
	base := new(big.Int).Mul(bigA, vu)
	base.Mod(base, groupP)
	s := new(big.Int).Exp(base, b, groupP)
	kh := sha1.Sum(s.Bytes())
	srv := &Server{v: v, b: b, bigB: bigB, bigA: bigA, key: kh[:]}
	return srv, bigB.Bytes(), nil
}

// Confirm checks the client's M1 and, if the password was right,
// returns the server confirmation M2 and the shared session key.
// On a wrong password it returns ErrAuth and learns nothing usable
// for an off-line guess.
func (s *Server) Confirm(m1 []byte) (m2, key []byte, err error) {
	want := hashInts(s.bigA, s.bigB, new(big.Int).SetBytes(s.key))
	if subtle.ConstantTimeCompare(want.Bytes(), m1) != 1 {
		return nil, nil, ErrAuth
	}
	m2i := hashInts(s.bigA, want, new(big.Int).SetBytes(s.key))
	return m2i.Bytes(), s.key, nil
}
