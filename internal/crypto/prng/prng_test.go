package prng

import (
	"bytes"
	"math/big"
	"testing"
)

func TestSeededDeterministic(t *testing.T) {
	a := NewSeeded([]byte("seed"))
	b := NewSeeded([]byte("seed"))
	if !bytes.Equal(a.Bytes(100), b.Bytes(100)) {
		t.Fatal("same seed produced different streams")
	}
}

func TestSeedsSeparate(t *testing.T) {
	a := NewSeeded([]byte("seed-a"))
	b := NewSeeded([]byte("seed-b"))
	if bytes.Equal(a.Bytes(100), b.Bytes(100)) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamAdvances(t *testing.T) {
	g := NewSeeded([]byte("x"))
	if bytes.Equal(g.Bytes(20), g.Bytes(20)) {
		t.Fatal("generator repeated an output block")
	}
}

func TestNewGeneratorsDiffer(t *testing.T) {
	a := New()
	b := New()
	if bytes.Equal(a.Bytes(32), b.Bytes(32)) {
		t.Fatal("two environment-seeded generators produced the same stream")
	}
}

func TestExtraEntropyChangesStream(t *testing.T) {
	g := NewSeeded([]byte("x"))
	h := NewSeeded([]byte("x"))
	h.AddEntropy([]byte("keystrokes"))
	if bytes.Equal(g.Bytes(40), h.Bytes(40)) {
		t.Fatal("AddEntropy had no effect")
	}
}

func TestReadSizes(t *testing.T) {
	g := NewSeeded([]byte("sizes"))
	for _, n := range []int{0, 1, 19, 20, 21, 64, 1000} {
		b := g.Bytes(n)
		if len(b) != n {
			t.Fatalf("Bytes(%d) returned %d bytes", n, len(b))
		}
	}
}

func TestIntUniformBounds(t *testing.T) {
	g := NewSeeded([]byte("int"))
	max := big.NewInt(1000)
	seen := map[int64]bool{}
	for i := 0; i < 3000; i++ {
		v := g.Int(max)
		if v.Sign() < 0 || v.Cmp(max) >= 0 {
			t.Fatalf("Int out of range: %v", v)
		}
		seen[v.Int64()] = true
	}
	if len(seen) < 800 {
		t.Fatalf("poor coverage: only %d distinct values of 1000", len(seen))
	}
}

func TestIntOneValue(t *testing.T) {
	g := NewSeeded([]byte("one"))
	if v := g.Int(big.NewInt(1)); v.Sign() != 0 {
		t.Fatalf("Int(1) = %v, want 0", v)
	}
}

func TestForwardSecurityStateChanges(t *testing.T) {
	g := NewSeeded([]byte("fwd"))
	before := g.xkey
	g.Bytes(20)
	if g.xkey == before {
		t.Fatal("state did not advance after output")
	}
}

func TestByteDistributionRoughlyUniform(t *testing.T) {
	g := NewSeeded([]byte("dist"))
	counts := [256]int{}
	const n = 1 << 16
	for _, b := range g.Bytes(n) {
		counts[b]++
	}
	exp := n / 256
	for v, c := range counts {
		if c < exp/2 || c > exp*2 {
			t.Fatalf("byte %#x count %d far from expectation %d", v, c, exp)
		}
	}
}

func BenchmarkRead1K(b *testing.B) {
	g := NewSeeded([]byte("bench"))
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		g.Read(buf) //nolint:errcheck
	}
}
