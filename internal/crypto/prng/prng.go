// Package prng implements the pseudo-random generator SFS uses in its
// algorithms and protocols (paper §3.1.3).
//
// The paper chose the DSS pseudo-random generator (FIPS 186 appendix
// 3) because it is based on SHA-1 and cannot be run backwards if its
// state is compromised: each output x is derived one-way from the key
// state, and the state update XKEY = (1 + XKEY + x) mod 2^b destroys
// the information needed to recover previous outputs.
//
// Seeding follows the paper's design: data from several external
// sources (the OS entropy device standing in for ps/netstat output, a
// nanosecond timer capturing scheduling entropy, and any caller-
// provided input such as keystrokes and inter-keystroke timings) is
// run through a SHA-1-based hash to produce a 512-bit seed.
package prng

import (
	"crypto/rand"
	"crypto/sha1"
	"encoding/binary"
	"math/big"
	"sync"
	"time"
)

const stateBytes = 64 // b = 512 bits

// Generator is a forward-secure deterministic random generator.
// It is safe for concurrent use.
type Generator struct {
	mu   sync.Mutex
	xkey [stateBytes]byte
}

// New returns a generator seeded from the environment: the OS entropy
// source, a nanosecond timer, and any extra caller-supplied entropy
// (for example keystrokes and inter-keystroke timings). It never
// fails; if the OS source is unavailable the timer and extra sources
// still contribute.
func New(extra ...[]byte) *Generator {
	g := &Generator{}
	pool := sha1.New()
	pool.Write([]byte("SFS-PRNG-seed"))
	var osr [64]byte
	if _, err := rand.Read(osr[:]); err == nil {
		pool.Write(osr[:])
	}
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], uint64(time.Now().UnixNano()))
	pool.Write(t[:])
	for _, e := range extra {
		pool.Write(e)
		binary.BigEndian.PutUint64(t[:], uint64(time.Now().UnixNano()))
		pool.Write(t[:])
	}
	// Expand the 20-byte pool digest to the 512-bit XKEY.
	d := pool.Sum(nil)
	for i := 0; i < stateBytes; i += sha1.Size {
		h := sha1.New()
		h.Write(d)
		h.Write([]byte{byte(i)})
		copy(g.xkey[i:], h.Sum(nil))
	}
	return g
}

// NewSeeded returns a generator with a deterministic seed, for tests
// and reproducible benchmarks only.
func NewSeeded(seed []byte) *Generator {
	g := &Generator{}
	for i := 0; i < stateBytes; i += sha1.Size {
		h := sha1.New()
		h.Write([]byte("seeded"))
		h.Write(seed)
		h.Write([]byte{byte(i)})
		copy(g.xkey[i:], h.Sum(nil))
	}
	return g
}

// AddEntropy mixes additional entropy (e.g. keystroke data) into the
// generator state.
func (g *Generator) AddEntropy(data []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h := sha1.New()
	h.Write(g.xkey[:])
	h.Write(data)
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], uint64(time.Now().UnixNano()))
	h.Write(t[:])
	d := h.Sum(nil)
	for i := range d {
		g.xkey[i] ^= d[i]
	}
}

// step produces one 20-byte output block and advances the state.
// Callers hold g.mu.
func (g *Generator) step() [sha1.Size]byte {
	// x = G(t, XKEY): SHA-1 as the one-way function.
	var x [sha1.Size]byte
	h := sha1.New()
	h.Write(g.xkey[:])
	copy(x[:], h.Sum(nil))
	// XKEY = (1 + XKEY + x) mod 2^b, big-endian arithmetic.
	carry := uint16(1)
	for i := stateBytes - 1; i >= 0; i-- {
		v := uint16(g.xkey[i]) + carry
		if i >= stateBytes-sha1.Size {
			v += uint16(x[i-(stateBytes-sha1.Size)])
		}
		g.xkey[i] = byte(v)
		carry = v >> 8
	}
	return x
}

// Read fills p with pseudo-random bytes. It always returns len(p), nil.
func (g *Generator) Read(p []byte) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := len(p)
	for len(p) > 0 {
		x := g.step()
		c := copy(p, x[:])
		p = p[c:]
	}
	return n, nil
}

// Bytes returns n pseudo-random bytes.
func (g *Generator) Bytes(n int) []byte {
	b := make([]byte, n)
	g.Read(b) //nolint:errcheck // cannot fail
	return b
}

// Uint32 returns a pseudo-random 32-bit value.
func (g *Generator) Uint32() uint32 {
	return binary.BigEndian.Uint32(g.Bytes(4))
}

// Int returns a uniform pseudo-random integer in [0, max).
func (g *Generator) Int(max *big.Int) *big.Int {
	if max.Sign() <= 0 {
		panic("prng: max must be positive")
	}
	bits := max.BitLen()
	bytes := (bits + 7) / 8
	mask := byte(0xff >> (uint(bytes*8) - uint(bits)))
	for {
		b := g.Bytes(bytes)
		b[0] &= mask
		v := new(big.Int).SetBytes(b)
		if v.Cmp(max) < 0 {
			return v
		}
	}
}
