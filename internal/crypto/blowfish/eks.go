package blowfish

import (
	"crypto/sha1"
	"crypto/subtle"
	"errors"
)

// DefaultCost is the eksblowfish work factor used by sfskey and the
// authserver. The paper's rule of thumb is that one password guess
// should cost almost a full second of CPU time on then-current
// hardware; the parameter can be raised as computers get faster.
const DefaultCost = 7

// magic is the constant bcrypt plaintext; 24 bytes = 3 Blowfish blocks.
var magic = []byte("OrpheanBeholderScryDoubt")

// PasswordHash applies the eksblowfish password transformation: an
// expensive salted key schedule followed by 64 ECB encryptions of a
// constant, yielding a 24-byte verifier-quality digest. Passwords
// longer than 72 bytes are pre-hashed with SHA-1.
func PasswordHash(cost uint, salt []byte, password []byte) ([]byte, error) {
	if len(password) == 0 {
		return nil, errors.New("blowfish: empty password")
	}
	if len(password) > 72 {
		h := sha1.Sum(password)
		password = h[:]
	}
	c, err := NewSalted(cost, salt, password)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(magic))
	copy(out, magic)
	for i := 0; i < 64; i++ {
		for j := 0; j < len(out); j += BlockSize {
			c.Encrypt(out[j:], out[j:])
		}
	}
	return out, nil
}

// VerifyPassword reports, in constant time, whether password hashes to
// want under (cost, salt).
func VerifyPassword(cost uint, salt, password, want []byte) bool {
	got, err := PasswordHash(cost, salt, password)
	if err != nil {
		return false
	}
	return subtle.ConstantTimeCompare(got, want) == 1
}

// PasswordKey derives a 20-byte symmetric key from a password with the
// same expensive transformation; sfskey uses it to encrypt private
// keys registered with the authserver (paper §2.4). The key is the
// SHA-1 of the 24-byte eksblowfish digest, domain-separated from the
// verifier so that a server holding the verifier cannot decrypt the
// private key without running the guessing attack the cost parameter
// makes slow.
func PasswordKey(cost uint, salt, password []byte) ([]byte, error) {
	d, err := PasswordHash(cost, salt, password)
	if err != nil {
		return nil, err
	}
	h := sha1.New()
	h.Write([]byte("SKey"))
	h.Write(d)
	return h.Sum(nil), nil
}
