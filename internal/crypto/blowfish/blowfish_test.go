package blowfish

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
	"time"
)

// Eric Young's standard Blowfish test vectors.
var ecbVectors = []struct{ key, plain, cipher string }{
	{"0000000000000000", "0000000000000000", "4ef997456198dd78"},
	{"ffffffffffffffff", "ffffffffffffffff", "51866fd5b85ecb8a"},
	{"3000000000000000", "1000000000000001", "7d856f9a613063f2"},
	{"1111111111111111", "1111111111111111", "2466dd878b963c9d"},
	{"0123456789abcdef", "1111111111111111", "61f9c3802281b096"},
	{"fedcba9876543210", "0123456789abcdef", "0aceab0fc6a0a28d"},
	{"7ca110454a1a6e57", "01a1d6d039776742", "59c68245eb05282b"},
	{"0131d9619dc1376e", "5cd54ca83def57da", "b1b8cc0b250f09a0"},
}

func TestECBVectors(t *testing.T) {
	for _, v := range ecbVectors {
		key, _ := hex.DecodeString(v.key)
		plain, _ := hex.DecodeString(v.plain)
		want, _ := hex.DecodeString(v.cipher)
		c, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		c.Encrypt(got, plain)
		if !bytes.Equal(got, want) {
			t.Errorf("key %s plain %s: got %x, want %x", v.key, v.plain, got, want)
		}
		back := make([]byte, 8)
		c.Decrypt(back, got)
		if !bytes.Equal(back, plain) {
			t.Errorf("key %s: decrypt failed", v.key)
		}
	}
}

func TestVariableKeyLengths(t *testing.T) {
	// Eric Young's "set_key" test: encrypt the same plaintext with
	// prefixes of a 24-byte key. Spot-check a few entries.
	fullKey, _ := hex.DecodeString("f0e1d2c3b4a5968778695a4b3c2d1e0f0011223344556677")
	plain, _ := hex.DecodeString("fedcba9876543210")
	wants := map[int]string{
		1:  "f9ad597c49db005e",
		8:  "e87a244e2cc85e82",
		16: "93142887ee3be15c",
		24: "05044b62fa52d080",
	}
	for n, wantHex := range wants {
		want, _ := hex.DecodeString(wantHex)
		c, err := New(fullKey[:n])
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		c.Encrypt(got, plain)
		if !bytes.Equal(got, want) {
			t.Errorf("key len %d: got %x, want %x", n, got, want)
		}
	}
}

func TestKeySizeLimits(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil key accepted")
	}
	if _, err := New(make([]byte, 73)); err == nil {
		t.Fatal("73-byte key accepted")
	}
	if _, err := New(make([]byte, 72)); err != nil {
		t.Fatal("72-byte key rejected")
	}
}

func TestCBCRoundTrip(t *testing.T) {
	c, err := New([]byte("twenty-byte-sfs-key!"))
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("filehandle!!"), 4) // 48 bytes
	ct, err := c.EncryptCBC(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, msg) {
		t.Fatal("CBC ciphertext equals plaintext")
	}
	pt, err := c.DecryptCBC(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("CBC round trip failed")
	}
	// Identical first blocks but differing second blocks must chain.
	msg2 := bytes.Clone(msg)
	msg2[9]++
	ct2, _ := c.EncryptCBC(msg2)
	if bytes.Equal(ct[16:24], ct2[16:24]) {
		t.Fatal("CBC chaining not effective")
	}
}

func TestCBCBadLength(t *testing.T) {
	c, _ := New([]byte("k"))
	if _, err := c.EncryptCBC(make([]byte, 7)); err == nil {
		t.Fatal("unaligned CBC input accepted")
	}
	if _, err := c.DecryptCBC(make([]byte, 9)); err == nil {
		t.Fatal("unaligned CBC input accepted")
	}
}

func TestQuickEncryptDecrypt(t *testing.T) {
	c, _ := New([]byte("quickcheck-key"))
	f := func(blk [8]byte) bool {
		ct := make([]byte, 8)
		c.Encrypt(ct, blk[:])
		pt := make([]byte, 8)
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, blk[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEksblowfishSaltMatters(t *testing.T) {
	salt1 := bytes.Repeat([]byte{1}, 16)
	salt2 := bytes.Repeat([]byte{2}, 16)
	h1, err := PasswordHash(4, salt1, []byte("hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := PasswordHash(4, salt2, []byte("hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(h1, h2) {
		t.Fatal("salt does not affect hash")
	}
}

func TestEksblowfishCostMatters(t *testing.T) {
	salt := bytes.Repeat([]byte{7}, 16)
	h4, _ := PasswordHash(4, salt, []byte("pw"))
	h5, _ := PasswordHash(5, salt, []byte("pw"))
	if bytes.Equal(h4, h5) {
		t.Fatal("cost does not affect hash")
	}
}

func TestEksblowfishCostScales(t *testing.T) {
	salt := bytes.Repeat([]byte{7}, 16)
	start := time.Now()
	if _, err := PasswordHash(4, salt, []byte("pw")); err != nil {
		t.Fatal(err)
	}
	t4 := time.Since(start)
	start = time.Now()
	if _, err := PasswordHash(7, salt, []byte("pw")); err != nil {
		t.Fatal(err)
	}
	t7 := time.Since(start)
	// 2^3 = 8x more work; allow generous slack for timer noise.
	if t7 < 3*t4 {
		t.Errorf("cost 7 (%v) not meaningfully slower than cost 4 (%v)", t7, t4)
	}
}

func TestVerifyPassword(t *testing.T) {
	salt := bytes.Repeat([]byte{3}, 16)
	h, err := PasswordHash(4, salt, []byte("correct horse"))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyPassword(4, salt, []byte("correct horse"), h) {
		t.Fatal("correct password rejected")
	}
	if VerifyPassword(4, salt, []byte("incorrect horse"), h) {
		t.Fatal("wrong password accepted")
	}
	if VerifyPassword(5, salt, []byte("correct horse"), h) {
		t.Fatal("wrong cost accepted")
	}
}

func TestPasswordKeyDiffersFromHash(t *testing.T) {
	salt := bytes.Repeat([]byte{3}, 16)
	h, _ := PasswordHash(4, salt, []byte("pw"))
	k, err := PasswordKey(4, salt, []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if len(k) != 20 {
		t.Fatalf("key length %d, want 20", len(k))
	}
	if bytes.Contains(h, k) || bytes.Contains(k, h[:len(k)]) {
		t.Fatal("password key derivable from verifier bytes")
	}
}

func TestLongPasswordPrehashed(t *testing.T) {
	salt := bytes.Repeat([]byte{3}, 16)
	long := bytes.Repeat([]byte("x"), 100)
	if _, err := PasswordHash(4, salt, long); err != nil {
		t.Fatal(err)
	}
}

func TestSaltedParamValidation(t *testing.T) {
	if _, err := NewSalted(4, make([]byte, 15), []byte("k")); err == nil {
		t.Fatal("15-byte salt accepted")
	}
	if _, err := NewSalted(32, make([]byte, 16), []byte("k")); err == nil {
		t.Fatal("cost 32 accepted")
	}
	if _, err := PasswordHash(4, make([]byte, 16), nil); err == nil {
		t.Fatal("empty password accepted")
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	c, _ := New(make([]byte, 20))
	blk := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		c.Encrypt(blk, blk)
	}
}

func BenchmarkEksblowfishCost7(b *testing.B) {
	salt := bytes.Repeat([]byte{7}, 16)
	for i := 0; i < b.N; i++ {
		if _, err := PasswordHash(7, salt, []byte("benchmark password")); err != nil {
			b.Fatal(err)
		}
	}
}
