// Package blowfish implements the Blowfish block cipher and the
// eksblowfish ("expensive key schedule blowfish") variant of Provos
// and Mazières.
//
// SFS uses Blowfish in two places: the read-write server encrypts NFS
// file handles in CBC mode under a 20-byte Blowfish key after adding
// redundancy (paper §3.3), and passwords are transformed with
// eksblowfish, whose cost parameter can be raised as computers get
// faster so that guessing attacks keep taking almost a full second of
// CPU time per candidate password (paper §2.5.2).
//
// The initial P-array and S-boxes are the hexadecimal digits of pi;
// rather than embed the 4 KB table, this package computes pi to the
// required precision at init time with the Gauss–Legendre AGM
// iteration and checks the result against the published constants.
package blowfish

import (
	"encoding/binary"
	"errors"
	"math/big"
)

// BlockSize is the Blowfish block size in bytes.
const BlockSize = 8

const (
	rounds   = 16
	numP     = rounds + 2
	numSbox  = 4
	sboxSize = 256
)

// piWords holds the initial key-schedule material: numP + 4*256 32-bit
// words of the fractional hexadecimal expansion of pi.
var piWords [numP + numSbox*sboxSize]uint32

func init() {
	computePiWords()
	// Guard against any regression in the pi computation with the
	// published first and last words of the Blowfish tables.
	switch {
	case piWords[0] != 0x243f6a88,
		piWords[1] != 0x85a308d3,
		piWords[2] != 0x13198a2e,
		piWords[3] != 0x03707344,
		piWords[17] != 0x8979fb1b,
		piWords[18] != 0xd1310ba6,             // S1[0]
		piWords[len(piWords)-1] != 0x3ac372e6: // S4[255]
		panic("blowfish: pi digit computation produced wrong tables")
	}
}

// computePiWords fills piWords with the fractional hex digits of pi.
func computePiWords() {
	const bits = (numP + numSbox*sboxSize + 2) * 32
	prec := uint(bits + 64)
	one := big.NewFloat(1).SetPrec(prec)
	two := big.NewFloat(2).SetPrec(prec)
	four := big.NewFloat(4).SetPrec(prec)
	half := big.NewFloat(0.5).SetPrec(prec)

	a := new(big.Float).SetPrec(prec).SetInt64(1)
	b := new(big.Float).SetPrec(prec).Quo(one, new(big.Float).SetPrec(prec).Sqrt(two))
	t := new(big.Float).SetPrec(prec).SetFloat64(0.25)
	p := new(big.Float).SetPrec(prec).SetInt64(1)

	tmp := new(big.Float).SetPrec(prec)
	for i := 0; i < 32; i++ { // precision doubles per iteration
		an := new(big.Float).SetPrec(prec).Add(a, b)
		an.Mul(an, half)
		bn := new(big.Float).SetPrec(prec).Mul(a, b)
		bn.Sqrt(bn)
		tmp.Sub(a, an)
		tmp.Mul(tmp, tmp)
		tmp.Mul(tmp, p)
		tn := new(big.Float).SetPrec(prec).Sub(t, tmp)
		pn := new(big.Float).SetPrec(prec).Mul(two, p)
		a, b, t, p = an, bn, tn, pn
	}
	pi := new(big.Float).SetPrec(prec).Add(a, b)
	pi.Mul(pi, pi)
	tmp.Mul(four, t)
	pi.Quo(pi, tmp)

	// Extract the fractional part as consecutive 32-bit words.
	frac := pi.Sub(pi, big.NewFloat(3).SetPrec(prec))
	shift := new(big.Float).SetPrec(prec).SetInt64(1 << 32)
	for i := range piWords {
		frac.Mul(frac, shift)
		w, _ := frac.Int(nil)
		piWords[i] = uint32(w.Uint64())
		frac.Sub(frac, new(big.Float).SetPrec(prec).SetInt(w))
	}
}

// Cipher is a keyed Blowfish instance.
type Cipher struct {
	p [numP]uint32
	s [numSbox][sboxSize]uint32
}

// New derives a Blowfish cipher from key using the standard key
// schedule. Key length must be 1..72 bytes; SFS uses 20-byte keys.
func New(key []byte) (*Cipher, error) {
	if len(key) < 1 || len(key) > 72 {
		return nil, errors.New("blowfish: key length must be 1..72 bytes")
	}
	c := initialState()
	c.expandKey(nil, key)
	return c, nil
}

// NewSalted derives a cipher with the eksblowfish expensive key
// schedule: cost is a log2 work factor (each unit doubles the work),
// salt is a 16-byte salt. This is the password transformation of
// Provos and Mazières used by sfskey and the authserver.
func NewSalted(cost uint, salt, key []byte) (*Cipher, error) {
	if len(key) < 1 || len(key) > 72 {
		return nil, errors.New("blowfish: key length must be 1..72 bytes")
	}
	if len(salt) != 16 {
		return nil, errors.New("blowfish: salt must be 16 bytes")
	}
	if cost > 31 {
		return nil, errors.New("blowfish: cost must be <= 31")
	}
	c := initialState()
	c.expandKey(salt, key)
	for i := uint64(0); i < 1<<cost; i++ {
		c.expandKey(nil, key)
		c.expandKey(nil, salt)
	}
	return c, nil
}

func initialState() *Cipher {
	c := &Cipher{}
	copy(c.p[:], piWords[:numP])
	off := numP
	for i := 0; i < numSbox; i++ {
		copy(c.s[i][:], piWords[off:off+sboxSize])
		off += sboxSize
	}
	return c
}

// expandKey implements ExpandKey(state, salt, key) from the bcrypt
// paper: XOR the P-array with the cyclic key, then replace the P-array
// and S-boxes with successive encryptions, mixing in the salt (when
// non-nil) by XOR before each encryption.
func (c *Cipher) expandKey(salt, key []byte) {
	j := 0
	for i := 0; i < numP; i++ {
		var w uint32
		for k := 0; k < 4; k++ {
			w = w<<8 | uint32(key[j])
			j++
			if j >= len(key) {
				j = 0
			}
		}
		c.p[i] ^= w
	}
	var l, r uint32
	saltPos := 0
	nextBlock := func() {
		if salt != nil {
			l ^= binary.BigEndian.Uint32(salt[saltPos:])
			r ^= binary.BigEndian.Uint32(salt[saltPos+4:])
			saltPos = (saltPos + 8) % len(salt)
		}
		l, r = c.encryptWords(l, r)
	}
	for i := 0; i < numP; i += 2 {
		nextBlock()
		c.p[i], c.p[i+1] = l, r
	}
	for i := 0; i < numSbox; i++ {
		for k := 0; k < sboxSize; k += 2 {
			nextBlock()
			c.s[i][k], c.s[i][k+1] = l, r
		}
	}
}

func (c *Cipher) feistel(x uint32) uint32 {
	return ((c.s[0][x>>24] + c.s[1][x>>16&0xff]) ^ c.s[2][x>>8&0xff]) + c.s[3][x&0xff]
}

func (c *Cipher) encryptWords(l, r uint32) (uint32, uint32) {
	for i := 0; i < rounds; i += 2 {
		l ^= c.p[i]
		r ^= c.feistel(l)
		r ^= c.p[i+1]
		l ^= c.feistel(r)
	}
	l ^= c.p[rounds]
	r ^= c.p[rounds+1]
	return r, l
}

func (c *Cipher) decryptWords(l, r uint32) (uint32, uint32) {
	for i := rounds; i > 0; i -= 2 {
		l ^= c.p[i+1]
		r ^= c.feistel(l)
		r ^= c.p[i]
		l ^= c.feistel(r)
	}
	l ^= c.p[1]
	r ^= c.p[0]
	return r, l
}

// BlockSize returns the cipher's block size (8 bytes), satisfying
// crypto/cipher.Block.
func (c *Cipher) BlockSize() int { return BlockSize }

// Encrypt encrypts one 8-byte block from src into dst.
func (c *Cipher) Encrypt(dst, src []byte) {
	l := binary.BigEndian.Uint32(src)
	r := binary.BigEndian.Uint32(src[4:])
	l, r = c.encryptWords(l, r)
	binary.BigEndian.PutUint32(dst, l)
	binary.BigEndian.PutUint32(dst[4:], r)
}

// Decrypt decrypts one 8-byte block from src into dst.
func (c *Cipher) Decrypt(dst, src []byte) {
	l := binary.BigEndian.Uint32(src)
	r := binary.BigEndian.Uint32(src[4:])
	l, r = c.decryptWords(l, r)
	binary.BigEndian.PutUint32(dst, l)
	binary.BigEndian.PutUint32(dst[4:], r)
}

// EncryptCBC encrypts src (length a multiple of 8) in CBC mode with a
// zero IV, in place over a copy. SFS uses CBC Blowfish to harden NFS
// file handles; the handles carry their own redundancy, so a fixed IV
// is acceptable there (identical handles are not secret from the
// server itself).
func (c *Cipher) EncryptCBC(src []byte) ([]byte, error) {
	if len(src)%BlockSize != 0 {
		return nil, errors.New("blowfish: CBC input not a multiple of block size")
	}
	out := make([]byte, len(src))
	var prev [BlockSize]byte
	for i := 0; i < len(src); i += BlockSize {
		var blk [BlockSize]byte
		for j := 0; j < BlockSize; j++ {
			blk[j] = src[i+j] ^ prev[j]
		}
		c.Encrypt(out[i:], blk[:])
		copy(prev[:], out[i:i+BlockSize])
	}
	return out, nil
}

// DecryptCBC inverts EncryptCBC.
func (c *Cipher) DecryptCBC(src []byte) ([]byte, error) {
	if len(src)%BlockSize != 0 {
		return nil, errors.New("blowfish: CBC input not a multiple of block size")
	}
	out := make([]byte, len(src))
	var prev [BlockSize]byte
	for i := 0; i < len(src); i += BlockSize {
		c.Decrypt(out[i:], src[i:])
		for j := 0; j < BlockSize; j++ {
			out[i+j] ^= prev[j]
		}
		copy(prev[:], src[i:i+BlockSize])
	}
	return out, nil
}
