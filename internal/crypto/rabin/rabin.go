// Package rabin implements the Rabin–Williams public-key cryptosystem
// SFS uses for encryption and signing (paper §3.1.3).
//
// Rabin assumes only that factoring is hard. Like low-exponent RSA,
// encryption and signature verification are particularly fast because
// they need no modular exponentiation — both are a single modular
// squaring. The implementation follows the paper's security claims:
//
//   - Encryption uses OAEP (Bellare–Rogaway optimal asymmetric
//     encryption) with SHA-1, making it plaintext-aware and secure
//     against adaptive chosen-ciphertext attacks in the random-oracle
//     model.
//   - Signing uses a salted full-domain hash (the probabilistic FDH of
//     Bellare–Rogaway "exact security of digital signatures"), secure
//     against adaptive chosen-message attacks.
//
// Keys use Williams' prime structure p ≡ 3 (mod 8), q ≡ 7 (mod 8), so
// n ≡ 5 (mod 8), the Jacobi symbol (2/n) = −1, and (−1/p) = (−1/q) =
// −1. Multiplying by the tweaks e ∈ {1, −1} and f ∈ {1, 2} therefore
// maps any h with gcd(h, n) = 1 to a quadratic residue, giving every
// value a square root.
package rabin

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/xdr"
)

// SaltSize is the number of random salt bytes in a signature.
const SaltSize = 20

// MinBits is the smallest modulus size New will generate. The paper
// era used 1024-bit keys; tests use smaller moduli for speed.
const MinBits = 256

var (
	// ErrDecrypt is returned for any undecryptable ciphertext. The
	// cause is deliberately not disclosed.
	ErrDecrypt = errors.New("rabin: decryption error")
	// ErrVerify is returned when a signature does not check.
	ErrVerify = errors.New("rabin: invalid signature")
	// ErrMessageTooLong is returned when a plaintext exceeds the
	// OAEP capacity of the key.
	ErrMessageTooLong = errors.New("rabin: message too long for key size")
)

// PublicKey is a Rabin–Williams public key: just the modulus.
type PublicKey struct {
	N *big.Int
}

// PrivateKey holds the factorization and CRT precomputation.
type PrivateKey struct {
	PublicKey
	P, Q *big.Int

	expP, expQ *big.Int // (p+1)/4, (q+1)/4 for square roots
	qInvP      *big.Int // q^{-1} mod p
	halfExpP   *big.Int // (p-1)/2 for residuosity tests
}

// wireKey is the canonical XDR form of a public key. HostIDs and all
// protocol messages embed keys in this encoding.
type wireKey struct {
	Type string // "rabin"
	N    []byte
}

// Bytes returns the canonical wire encoding of the public key.
func (k *PublicKey) Bytes() []byte {
	return xdr.MustMarshal(wireKey{Type: "rabin", N: k.N.Bytes()})
}

// ParsePublicKey decodes a key produced by Bytes.
func ParsePublicKey(b []byte) (*PublicKey, error) {
	var w wireKey
	if err := xdr.Unmarshal(b, &w); err != nil {
		return nil, fmt.Errorf("rabin: bad public key encoding: %w", err)
	}
	if w.Type != "rabin" {
		return nil, fmt.Errorf("rabin: unknown key type %q", w.Type)
	}
	n := new(big.Int).SetBytes(w.N)
	if n.BitLen() < MinBits {
		return nil, errors.New("rabin: modulus too small")
	}
	if n.Bit(0) == 0 {
		return nil, errors.New("rabin: even modulus")
	}
	return &PublicKey{N: n}, nil
}

// Equal reports whether two public keys are the same key.
func (k *PublicKey) Equal(o *PublicKey) bool {
	return o != nil && k.N.Cmp(o.N) == 0
}

// size returns the modulus length in bytes.
func (k *PublicKey) size() int { return (k.N.BitLen() + 7) / 8 }

// wirePrivate is the canonical XDR form of a private key, used only
// for encrypted storage with the authserver (paper §2.4).
type wirePrivate struct {
	Type string // "rabin-priv"
	P    []byte
	Q    []byte
}

// PrivateBytes returns the canonical private-key encoding. Callers
// must encrypt it before storage.
func (k *PrivateKey) PrivateBytes() []byte {
	return xdr.MustMarshal(wirePrivate{Type: "rabin-priv", P: k.P.Bytes(), Q: k.Q.Bytes()})
}

// ParsePrivateKey decodes a key produced by PrivateBytes and checks
// its structure.
func ParsePrivateKey(b []byte) (*PrivateKey, error) {
	var w wirePrivate
	if err := xdr.Unmarshal(b, &w); err != nil {
		return nil, fmt.Errorf("rabin: bad private key encoding: %w", err)
	}
	if w.Type != "rabin-priv" {
		return nil, fmt.Errorf("rabin: unknown private key type %q", w.Type)
	}
	p := new(big.Int).SetBytes(w.P)
	q := new(big.Int).SetBytes(w.Q)
	eight := big.NewInt(8)
	if new(big.Int).Mod(p, eight).Int64() != 3 || new(big.Int).Mod(q, eight).Int64() != 7 {
		return nil, errors.New("rabin: private key has wrong prime structure")
	}
	if !p.ProbablyPrime(20) || !q.ProbablyPrime(20) {
		return nil, errors.New("rabin: private key factors not prime")
	}
	k := newPrivateKey(p, q)
	if k.N.BitLen() < MinBits {
		return nil, errors.New("rabin: private key too small")
	}
	return k, nil
}

// GenerateKey creates a key whose modulus has approximately bits bits,
// reading randomness from r (typically a *prng.Generator or
// crypto/rand.Reader).
func GenerateKey(r io.Reader, bits int) (*PrivateKey, error) {
	if bits < MinBits {
		return nil, fmt.Errorf("rabin: key size %d below minimum %d", bits, MinBits)
	}
	p, err := genPrime(r, bits/2, 3)
	if err != nil {
		return nil, err
	}
	q, err := genPrime(r, bits-bits/2, 7)
	if err != nil {
		return nil, err
	}
	if p.Cmp(q) == 0 {
		return nil, errors.New("rabin: degenerate key")
	}
	return newPrivateKey(p, q), nil
}

func newPrivateKey(p, q *big.Int) *PrivateKey {
	n := new(big.Int).Mul(p, q)
	one := big.NewInt(1)
	k := &PrivateKey{
		PublicKey: PublicKey{N: n},
		P:         p,
		Q:         q,
	}
	k.expP = new(big.Int).Add(p, one)
	k.expP.Rsh(k.expP, 2)
	k.expQ = new(big.Int).Add(q, one)
	k.expQ.Rsh(k.expQ, 2)
	k.qInvP = new(big.Int).ModInverse(q, p)
	k.halfExpP = new(big.Int).Sub(p, one)
	k.halfExpP.Rsh(k.halfExpP, 1)
	return k
}

// genPrime returns a prime of the given bit length congruent to
// residue mod 8.
func genPrime(r io.Reader, bits int, residue int64) (*big.Int, error) {
	if bits < 16 {
		return nil, errors.New("rabin: prime too small")
	}
	bytes := (bits + 7) / 8
	buf := make([]byte, bytes)
	eight := big.NewInt(8)
	res := big.NewInt(residue)
	for tries := 0; tries < 10000; tries++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		p := new(big.Int).SetBytes(buf)
		// Clamp to exactly `bits` bits with the top two bits set so
		// the product of two primes has the requested size.
		mask := new(big.Int).Lsh(big.NewInt(1), uint(bits))
		mask.Sub(mask, big.NewInt(1))
		p.And(p, mask)
		p.SetBit(p, bits-1, 1)
		p.SetBit(p, bits-2, 1)
		// Adjust residue class mod 8.
		m := new(big.Int).Mod(p, eight)
		diff := new(big.Int).Sub(res, m)
		diff.Mod(diff, eight)
		p.Add(p, diff)
		// Search upward in steps of 8, keeping the residue.
		for i := 0; i < 4096; i++ {
			if p.BitLen() != bits {
				break
			}
			if p.ProbablyPrime(20) {
				return p, nil
			}
			p.Add(p, eight)
		}
	}
	return nil, errors.New("rabin: prime generation failed")
}

// mgf1 expands (label, seeds...) to length bytes with SHA-1 counter
// hashing, the OAEP mask generation function.
func mgf1(length int, label string, seeds ...[]byte) []byte {
	out := make([]byte, 0, length+sha1.Size)
	var ctr uint32
	for len(out) < length {
		h := sha1.New()
		h.Write([]byte(label))
		for _, s := range seeds {
			h.Write(s)
		}
		h.Write([]byte{byte(ctr >> 24), byte(ctr >> 16), byte(ctr >> 8), byte(ctr)})
		out = h.Sum(out)
		ctr++
	}
	return out[:length]
}

// MaxPlaintext returns the largest message Encrypt accepts under k.
func (k *PublicKey) MaxPlaintext() int {
	// EM = 00 || seed(20) || DB; DB = lhash(20) || PS || 01 || msg
	return k.size() - 2*sha1.Size - 2
}

var oaepLHash = sha1.Sum([]byte("SFS-OAEP"))

// Encrypt OAEP-encrypts msg under k using randomness from rand.
func (k *PublicKey) Encrypt(rand io.Reader, msg []byte) ([]byte, error) {
	kLen := k.size()
	if len(msg) > k.MaxPlaintext() {
		return nil, ErrMessageTooLong
	}
	// Build DB = lHash || PS || 0x01 || msg filling em[1+seed:].
	dbLen := kLen - sha1.Size - 1
	db := make([]byte, dbLen)
	copy(db, oaepLHash[:])
	db[dbLen-len(msg)-1] = 0x01
	copy(db[dbLen-len(msg):], msg)
	seed := make([]byte, sha1.Size)
	if _, err := io.ReadFull(rand, seed); err != nil {
		return nil, err
	}
	dbMask := mgf1(dbLen, "db", seed)
	for i := range db {
		db[i] ^= dbMask[i]
	}
	seedMask := mgf1(sha1.Size, "seed", db)
	maskedSeed := make([]byte, sha1.Size)
	for i := range seed {
		maskedSeed[i] = seed[i] ^ seedMask[i]
	}
	em := make([]byte, kLen)
	copy(em[1:], maskedSeed)
	copy(em[1+sha1.Size:], db)
	m := new(big.Int).SetBytes(em)
	c := new(big.Int).Mul(m, m)
	c.Mod(c, k.N)
	return c.FillBytes(make([]byte, kLen)), nil
}

// oaepDecode inverts the OAEP transform; it returns the message or an
// error if the structure does not check.
func oaepDecode(em []byte) ([]byte, error) {
	kLen := len(em)
	if kLen < 2*sha1.Size+2 || em[0] != 0 {
		return nil, ErrDecrypt
	}
	maskedSeed := em[1 : 1+sha1.Size]
	db := append([]byte(nil), em[1+sha1.Size:]...)
	seedMask := mgf1(sha1.Size, "seed", db)
	seed := make([]byte, sha1.Size)
	for i := range seed {
		seed[i] = maskedSeed[i] ^ seedMask[i]
	}
	dbMask := mgf1(len(db), "db", seed)
	for i := range db {
		db[i] ^= dbMask[i]
	}
	for i := 0; i < sha1.Size; i++ {
		if db[i] != oaepLHash[i] {
			return nil, ErrDecrypt
		}
	}
	rest := db[sha1.Size:]
	for i, b := range rest {
		switch b {
		case 0:
			continue
		case 1:
			return rest[i+1:], nil
		default:
			return nil, ErrDecrypt
		}
	}
	return nil, ErrDecrypt
}

// sqrtModN returns the four square roots of a quadratic residue c
// modulo n via the CRT. If c is not a residue mod both primes, the
// returned values simply won't square to c; callers check redundancy.
func (k *PrivateKey) sqrtModN(c *big.Int) [4]*big.Int {
	cp := new(big.Int).Mod(c, k.P)
	cq := new(big.Int).Mod(c, k.Q)
	rp := new(big.Int).Exp(cp, k.expP, k.P)
	rq := new(big.Int).Exp(cq, k.expQ, k.Q)
	var roots [4]*big.Int
	negRP := new(big.Int).Sub(k.P, rp)
	negRQ := new(big.Int).Sub(k.Q, rq)
	roots[0] = k.crt(rp, rq)
	roots[1] = k.crt(rp, negRQ)
	roots[2] = k.crt(negRP, rq)
	roots[3] = k.crt(negRP, negRQ)
	return roots
}

// crt combines residues mod p and q into a residue mod n.
func (k *PrivateKey) crt(rp, rq *big.Int) *big.Int {
	// x = rq + q * ((rp - rq) * qInvP mod p)
	t := new(big.Int).Sub(rp, rq)
	t.Mul(t, k.qInvP)
	t.Mod(t, k.P)
	t.Mul(t, k.Q)
	t.Add(t, rq)
	return t.Mod(t, k.N)
}

// Decrypt decrypts an OAEP ciphertext. All four square roots are
// tried; the OAEP redundancy identifies the correct one.
func (k *PrivateKey) Decrypt(ct []byte) ([]byte, error) {
	kLen := k.size()
	if len(ct) != kLen {
		return nil, ErrDecrypt
	}
	c := new(big.Int).SetBytes(ct)
	if c.Cmp(k.N) >= 0 {
		return nil, ErrDecrypt
	}
	sq := new(big.Int)
	for _, r := range k.sqrtModN(c) {
		sq.Mul(r, r)
		sq.Mod(sq, k.N)
		if sq.Cmp(c) != 0 {
			continue
		}
		em := r.FillBytes(make([]byte, kLen))
		if msg, err := oaepDecode(em); err == nil {
			return msg, nil
		}
	}
	return nil, ErrDecrypt
}

// signPad maps (salt, digest) to an integer in [0, 2^(8(k-1))) by
// full-domain expansion.
func signPad(kLen int, salt, digest []byte) *big.Int {
	em := mgf1(kLen-1, "RWS", salt, digest)
	return new(big.Int).SetBytes(em)
}

// Signature is a Rabin–Williams signature: the principal square root
// of the tweaked message representative plus the salt needed to
// recompute that representative.
type Signature struct {
	Salt [SaltSize]byte
	Root []byte
}

// Sign produces a signature over digest (any byte string; callers
// conventionally pass a SHA-1 hash of an XDR structure).
func (k *PrivateKey) Sign(rand io.Reader, digest []byte) (*Signature, error) {
	kLen := k.size()
	var sig Signature
	for attempt := 0; attempt < 32; attempt++ {
		if _, err := io.ReadFull(rand, sig.Salt[:]); err != nil {
			return nil, err
		}
		h := signPad(kLen, sig.Salt[:], digest)
		if h.Sign() == 0 || new(big.Int).GCD(nil, nil, h, k.N).Cmp(big.NewInt(1)) != 0 {
			continue // negligible probability; re-salt
		}
		// Williams tweaks: f=2 if Jacobi(h,n) = -1, else 1.
		v := new(big.Int).Set(h)
		if big.Jacobi(h, k.N) == -1 {
			v.Lsh(v, 1)
			v.Mod(v, k.N)
		}
		// e=-1 if v is a non-residue mod p (then also mod q).
		vp := new(big.Int).Mod(v, k.P)
		euler := new(big.Int).Exp(vp, k.halfExpP, k.P)
		if euler.Cmp(big.NewInt(1)) != 0 {
			v.Neg(v)
			v.Mod(v, k.N)
		}
		roots := k.sqrtModN(v)
		sq := new(big.Int)
		for _, r := range roots {
			sq.Mul(r, r)
			sq.Mod(sq, k.N)
			if sq.Cmp(v) == 0 {
				sig.Root = r.FillBytes(make([]byte, kLen))
				return &sig, nil
			}
		}
	}
	return nil, errors.New("rabin: signing failed")
}

// Verify checks sig over digest. Verification is a single modular
// squaring plus the four tweak candidates.
func (k *PublicKey) Verify(digest []byte, sig *Signature) error {
	kLen := k.size()
	if sig == nil || len(sig.Root) != kLen {
		return ErrVerify
	}
	s := new(big.Int).SetBytes(sig.Root)
	if s.Cmp(k.N) >= 0 {
		return ErrVerify
	}
	h := signPad(kLen, sig.Salt[:], digest)
	if h.Cmp(k.N) >= 0 {
		return ErrVerify
	}
	sq := new(big.Int).Mul(s, s)
	sq.Mod(sq, k.N)
	// s^2 = e*f*h mod n for e in {1,-1}, f in {1,2}:
	// candidates for h: s^2, -s^2, s^2/2, -s^2/2.
	inv2 := new(big.Int).ModInverse(big.NewInt(2), k.N)
	cands := make([]*big.Int, 0, 4)
	cands = append(cands, new(big.Int).Set(sq))
	cands = append(cands, new(big.Int).Sub(k.N, sq))
	half := new(big.Int).Mul(sq, inv2)
	half.Mod(half, k.N)
	cands = append(cands, half)
	cands = append(cands, new(big.Int).Sub(k.N, half))
	for _, c := range cands {
		if c.Cmp(h) == 0 {
			return nil
		}
	}
	return ErrVerify
}

// SignMessage hashes msg with SHA-1 and signs the digest.
func (k *PrivateKey) SignMessage(rand io.Reader, msg []byte) (*Signature, error) {
	d := sha1.Sum(msg)
	return k.Sign(rand, d[:])
}

// VerifyMessage hashes msg with SHA-1 and verifies sig over the digest.
func (k *PublicKey) VerifyMessage(msg []byte, sig *Signature) error {
	d := sha1.Sum(msg)
	return k.Verify(d[:], sig)
}
