package rabin

import (
	"bytes"
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/crypto/prng"
)

// testKey caches one key per size so the suite stays fast.
var (
	keyMu   sync.Mutex
	keyMemo = map[int]*PrivateKey{}
)

func testKey(t testing.TB, bits int) *PrivateKey {
	t.Helper()
	keyMu.Lock()
	defer keyMu.Unlock()
	if k, ok := keyMemo[bits]; ok {
		return k
	}
	g := prng.NewSeeded([]byte("rabin-test-key"))
	k, err := GenerateKey(g, bits)
	if err != nil {
		t.Fatal(err)
	}
	keyMemo[bits] = k
	return k
}

func TestKeyStructure(t *testing.T) {
	k := testKey(t, 512)
	eight := big.NewInt(8)
	if r := new(big.Int).Mod(k.P, eight).Int64(); r != 3 {
		t.Errorf("p mod 8 = %d, want 3", r)
	}
	if r := new(big.Int).Mod(k.Q, eight).Int64(); r != 7 {
		t.Errorf("q mod 8 = %d, want 7", r)
	}
	if r := new(big.Int).Mod(k.N, eight).Int64(); r != 5 {
		t.Errorf("n mod 8 = %d, want 5", r)
	}
	if got := new(big.Int).Mul(k.P, k.Q); got.Cmp(k.N) != 0 {
		t.Error("n != p*q")
	}
	if k.N.BitLen() < 510 {
		t.Errorf("modulus only %d bits", k.N.BitLen())
	}
	if !k.P.ProbablyPrime(20) || !k.Q.ProbablyPrime(20) {
		t.Error("factors not prime")
	}
}

func TestKeySizeFloor(t *testing.T) {
	g := prng.NewSeeded([]byte("x"))
	if _, err := GenerateKey(g, 128); err == nil {
		t.Fatal("128-bit key accepted")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	k := testKey(t, 512)
	g := prng.NewSeeded([]byte("enc"))
	for _, msg := range [][]byte{
		[]byte(""),
		[]byte("k"),
		[]byte("session key halves!!"),
		bytes.Repeat([]byte{0xff}, k.MaxPlaintext()),
	} {
		ct, err := k.Encrypt(g, msg)
		if err != nil {
			t.Fatalf("encrypt %d bytes: %v", len(msg), err)
		}
		pt, err := k.Decrypt(ct)
		if err != nil {
			t.Fatalf("decrypt %d bytes: %v", len(msg), err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("round trip failed for %d bytes", len(msg))
		}
	}
}

func TestEncryptionRandomized(t *testing.T) {
	k := testKey(t, 512)
	g := prng.NewSeeded([]byte("rand"))
	a, _ := k.Encrypt(g, []byte("same message"))
	b, _ := k.Encrypt(g, []byte("same message"))
	if bytes.Equal(a, b) {
		t.Fatal("two encryptions of the same message are identical")
	}
}

func TestMessageTooLong(t *testing.T) {
	k := testKey(t, 512)
	g := prng.NewSeeded([]byte("x"))
	if _, err := k.Encrypt(g, make([]byte, k.MaxPlaintext()+1)); err != ErrMessageTooLong {
		t.Fatalf("got %v, want ErrMessageTooLong", err)
	}
}

func TestCiphertextTampering(t *testing.T) {
	k := testKey(t, 512)
	g := prng.NewSeeded([]byte("tamper"))
	ct, err := k.Encrypt(g, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, len(ct) / 2, len(ct) - 1} {
		bad := bytes.Clone(ct)
		bad[pos] ^= 0x40
		if _, err := k.Decrypt(bad); err == nil {
			t.Fatalf("tampered ciphertext (byte %d) decrypted", pos)
		}
	}
	if _, err := k.Decrypt(ct[:len(ct)-1]); err == nil {
		t.Fatal("short ciphertext accepted")
	}
	huge := new(big.Int).Add(k.N, big.NewInt(1)).FillBytes(make([]byte, k.size()))
	if _, err := k.Decrypt(huge); err == nil {
		t.Fatal("out-of-range ciphertext accepted")
	}
}

func TestSignVerify(t *testing.T) {
	k := testKey(t, 512)
	g := prng.NewSeeded([]byte("sig"))
	digest := []byte("12345678901234567890")
	sig, err := k.Sign(g, digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Verify(digest, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestSignatureRejections(t *testing.T) {
	k := testKey(t, 512)
	g := prng.NewSeeded([]byte("rej"))
	digest := []byte("digest-digest-digest")
	sig, err := k.Sign(g, digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Verify([]byte("digest-digest-digesU"), sig); err == nil {
		t.Fatal("signature verified over different digest")
	}
	bad := *sig
	bad.Root = bytes.Clone(sig.Root)
	bad.Root[5] ^= 1
	if err := k.Verify(digest, &bad); err == nil {
		t.Fatal("corrupted root accepted")
	}
	bad2 := *sig
	bad2.Salt[0] ^= 1
	if err := k.Verify(digest, &bad2); err == nil {
		t.Fatal("corrupted salt accepted")
	}
	if err := k.Verify(digest, nil); err == nil {
		t.Fatal("nil signature accepted")
	}
	short := *sig
	short.Root = sig.Root[:len(sig.Root)-1]
	if err := k.Verify(digest, &short); err == nil {
		t.Fatal("short root accepted")
	}
}

func TestSignaturesDiffer(t *testing.T) {
	k := testKey(t, 512)
	g := prng.NewSeeded([]byte("diff"))
	d := []byte("same digest")
	s1, _ := k.Sign(g, d)
	s2, _ := k.Sign(g, d)
	if bytes.Equal(s1.Root, s2.Root) {
		t.Fatal("probabilistic signatures identical")
	}
	if err := k.Verify(d, s1); err != nil {
		t.Fatal(err)
	}
	if err := k.Verify(d, s2); err != nil {
		t.Fatal(err)
	}
}

func TestWrongKeyRejects(t *testing.T) {
	k1 := testKey(t, 512)
	g := prng.NewSeeded([]byte("other-key"))
	k2, err := GenerateKey(g, 512)
	if err != nil {
		t.Fatal(err)
	}
	d := []byte("cross-key digest")
	sig, _ := k1.Sign(g, d)
	if err := k2.Verify(d, sig); err == nil {
		t.Fatal("signature verified under wrong key")
	}
	ct, _ := k1.Encrypt(g, []byte("cross"))
	if _, err := k2.Decrypt(ct); err == nil {
		t.Fatal("ciphertext decrypted under wrong key")
	}
}

func TestPublicKeySerialization(t *testing.T) {
	k := testKey(t, 512)
	b := k.PublicKey.Bytes()
	got, err := ParsePublicKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&k.PublicKey) {
		t.Fatal("round-tripped key differs")
	}
	// Deterministic: used as HostID input.
	if !bytes.Equal(b, k.PublicKey.Bytes()) {
		t.Fatal("key encoding not deterministic")
	}
	if _, err := ParsePublicKey([]byte("garbage")); err == nil {
		t.Fatal("garbage key parsed")
	}
	// Even modulus must be rejected.
	even := &PublicKey{N: new(big.Int).Lsh(big.NewInt(1), 300)}
	if _, err := ParsePublicKey(even.Bytes()); err == nil {
		t.Fatal("even modulus accepted")
	}
}

func TestSignMessageHelpers(t *testing.T) {
	k := testKey(t, 512)
	g := prng.NewSeeded([]byte("msg"))
	msg := []byte("an XDR structure, marshaled")
	sig, err := k.SignMessage(g, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.VerifyMessage(msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := k.VerifyMessage(append(msg, 'x'), sig); err == nil {
		t.Fatal("modified message verified")
	}
}

func TestQuickEncryptDecrypt(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	k := testKey(t, 512)
	g := prng.NewSeeded([]byte("quick"))
	f := func(msg []byte) bool {
		if len(msg) > k.MaxPlaintext() {
			msg = msg[:k.MaxPlaintext()]
		}
		ct, err := k.Encrypt(g, msg)
		if err != nil {
			return false
		}
		pt, err := k.Decrypt(ct)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSignVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	k := testKey(t, 512)
	g := prng.NewSeeded([]byte("quick-sig"))
	f := func(digest []byte) bool {
		sig, err := k.Sign(g, digest)
		if err != nil {
			return false
		}
		return k.Verify(digest, sig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncrypt1024(b *testing.B) {
	k := testKey(b, 1024)
	g := prng.NewSeeded([]byte("bench"))
	msg := []byte("a 20-byte key half!!")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Encrypt(g, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt1024(b *testing.B) {
	k := testKey(b, 1024)
	g := prng.NewSeeded([]byte("bench"))
	ct, _ := k.Encrypt(g, []byte("a 20-byte key half!!"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSign1024(b *testing.B) {
	k := testKey(b, 1024)
	g := prng.NewSeeded([]byte("bench"))
	d := []byte("12345678901234567890")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Sign(g, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify1024(b *testing.B) {
	k := testKey(b, 1024)
	g := prng.NewSeeded([]byte("bench"))
	d := []byte("12345678901234567890")
	sig, _ := k.Sign(g, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.Verify(d, sig); err != nil {
			b.Fatal(err)
		}
	}
}
