// Package arc4 implements the alleged RC4 stream cipher as used by SFS.
//
// SFS assumes ARC4 is a pseudo-random generator and uses it both to
// encrypt file system traffic and as a keystream source for re-keying
// the per-message MAC (paper §3.1.3). The implementation differs from
// textbook RC4 in one deliberate way the paper calls out: it supports
// 20-byte keys by spinning the key schedule once for each 128 bits of
// key data, and the keystream is kept running for the duration of a
// session rather than being reset per message.
package arc4

import "fmt"

// Cipher is an ARC4 keystream generator. It is not safe for concurrent
// use; the secure channel serializes access.
type Cipher struct {
	s    [256]byte
	i, j uint8
}

// New initializes a cipher from key, spinning the key schedule once per
// 128 bits (16 bytes) of key material, rounded up, so a 20-byte session
// key mixes the state twice.
func New(key []byte) (*Cipher, error) {
	if len(key) == 0 || len(key) > 256 {
		return nil, fmt.Errorf("arc4: invalid key size %d", len(key))
	}
	c := &Cipher{}
	for i := range c.s {
		c.s[i] = byte(i)
	}
	spins := (len(key) + 15) / 16
	var j uint8
	for spin := 0; spin < spins; spin++ {
		for i := 0; i < 256; i++ {
			j += c.s[i] + key[i%len(key)]
			c.s[i], c.s[j] = c.s[j], c.s[i]
		}
	}
	return c, nil
}

// XORKeyStream XORs src with the next len(src) keystream bytes into
// dst, which must be at least as long as src and may alias it.
func (c *Cipher) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("arc4: output shorter than input")
	}
	i, j := c.i, c.j
	for k, v := range src {
		i++
		j += c.s[i]
		c.s[i], c.s[j] = c.s[j], c.s[i]
		dst[k] = v ^ c.s[uint8(c.s[i]+c.s[j])]
	}
	c.i, c.j = i, j
}

// KeyStream writes the next n keystream bytes into a fresh slice. SFS
// pulls 32 bytes from the session stream (not used for encryption) to
// re-key the MAC for each message.
func (c *Cipher) KeyStream(n int) []byte {
	out := make([]byte, n)
	c.XORKeyStream(out, out)
	return out
}

// KeyStreamInto fills out with the next len(out) keystream bytes,
// reusing the caller's buffer — the allocation-free form of KeyStream
// for the per-record MAC re-keying on the hot seal/open path.
func (c *Cipher) KeyStreamInto(out []byte) {
	for i := range out {
		out[i] = 0
	}
	c.XORKeyStream(out, out)
}

// Skip advances the keystream n bytes without producing output. The
// unencrypted channel mode uses it to keep its stream position aligned
// with the peer without allocating a throwaway buffer.
func (c *Cipher) Skip(n int) {
	i, j := c.i, c.j
	for ; n > 0; n-- {
		i++
		j += c.s[i]
		c.s[i], c.s[j] = c.s[j], c.s[i]
	}
	c.i, c.j = i, j
}
