package arc4

import (
	"bytes"
	"crypto/rc4"
	"testing"
	"testing/quick"
)

// RFC 6229-style known-answer vectors for standard (single-spin) RC4.
// Keys of 16 bytes or fewer get exactly one spin, so our cipher must
// match the stdlib's RC4 for them.
func TestMatchesRC4ForShortKeys(t *testing.T) {
	for _, keyLen := range []int{1, 5, 8, 13, 16} {
		key := make([]byte, keyLen)
		for i := range key {
			key[i] = byte(i*7 + 3)
		}
		ours, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := rc4.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]byte, 512)
		b := make([]byte, 512)
		ours.XORKeyStream(a, a)
		ref.XORKeyStream(b, b)
		if !bytes.Equal(a, b) {
			t.Fatalf("key len %d: keystream diverges from RC4", keyLen)
		}
	}
}

func TestTwentyByteKeyDiffersFromSingleSpin(t *testing.T) {
	key := make([]byte, 20)
	for i := range key {
		key[i] = byte(i)
	}
	ours, _ := New(key)
	ref, _ := rc4.NewCipher(key)
	a := make([]byte, 64)
	b := make([]byte, 64)
	ours.XORKeyStream(a, a)
	ref.XORKeyStream(b, b)
	if bytes.Equal(a, b) {
		t.Fatal("20-byte key did not get the second key-schedule spin")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	key := []byte("session-key-twenty!!")
	enc, _ := New(key)
	dec, _ := New(key)
	msg := []byte("attack at dawn, flush the attribute cache")
	ct := make([]byte, len(msg))
	enc.XORKeyStream(ct, msg)
	if bytes.Equal(ct, msg) {
		t.Fatal("ciphertext equals plaintext")
	}
	pt := make([]byte, len(ct))
	dec.XORKeyStream(pt, ct)
	if !bytes.Equal(pt, msg) {
		t.Fatal("decryption failed")
	}
}

func TestStreamContinuity(t *testing.T) {
	// Encrypting in two chunks must match encrypting at once: the
	// stream runs for the whole session.
	key := []byte("0123456789abcdefghij")
	a, _ := New(key)
	b, _ := New(key)
	msg := bytes.Repeat([]byte("xyzzy"), 20)
	one := make([]byte, len(msg))
	a.XORKeyStream(one, msg)
	two := make([]byte, len(msg))
	b.XORKeyStream(two[:33], msg[:33])
	b.XORKeyStream(two[33:], msg[33:])
	if !bytes.Equal(one, two) {
		t.Fatal("chunked keystream diverges")
	}
}

func TestKeyStreamTap(t *testing.T) {
	key := []byte("0123456789abcdefghij")
	a, _ := New(key)
	b, _ := New(key)
	tap := a.KeyStream(32)
	zero := make([]byte, 32)
	direct := make([]byte, 32)
	b.XORKeyStream(direct, zero)
	if !bytes.Equal(tap, direct) {
		t.Fatal("KeyStream disagrees with XOR of zeros")
	}
	if bytes.Equal(tap, zero) {
		t.Fatal("keystream is all zeros")
	}
}

func TestInvalidKeySizes(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil key accepted")
	}
	if _, err := New(make([]byte, 257)); err == nil {
		t.Fatal("257-byte key accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(key [20]byte, msg []byte) bool {
		enc, err := New(key[:])
		if err != nil {
			return false
		}
		dec, _ := New(key[:])
		ct := make([]byte, len(msg))
		enc.XORKeyStream(ct, msg)
		pt := make([]byte, len(ct))
		dec.XORKeyStream(pt, ct)
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXORKeyStream(b *testing.B) {
	c, _ := New(make([]byte, 20))
	buf := make([]byte, 8192)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.XORKeyStream(buf, buf)
	}
}
