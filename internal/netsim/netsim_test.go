package netsim

import (
	"net"
	"testing"
	"time"
)

func TestProfileCost(t *testing.T) {
	p := NFSUDP()
	// One empty message: just the per-message cost.
	if got := p.Cost(0); got != UDPPerMessage {
		t.Fatalf("Cost(0) = %v", got)
	}
	// 8 KB at 80 ns/byte ≈ 655 µs wire time on top.
	if got := p.Cost(8192); got != UDPPerMessage+8192*80*time.Nanosecond {
		t.Fatalf("Cost(8192) = %v", got)
	}
}

func TestSFSProfileShape(t *testing.T) {
	enc := SFS(true)
	noenc := SFS(false)
	if enc.Cost(0) <= noenc.Cost(0) {
		t.Fatal("encryption adds no per-message cost")
	}
	if enc.Cost(100000)-enc.Cost(0) <= noenc.Cost(100000)-noenc.Cost(0) {
		t.Fatal("encryption adds no per-byte cost")
	}
	// SFS null RPC ≈ 790 µs: two messages, each charged once per
	// side. 2 × SFS cost(small) should be in the 700–900 µs band.
	rpc := 2 * enc.Cost(120)
	if rpc < 700*time.Microsecond || rpc > 900*time.Microsecond {
		t.Fatalf("SFS null RPC model = %v, want ≈790 µs", rpc)
	}
	nfs := 2 * NFSUDP().Cost(120)
	if nfs < 150*time.Microsecond || nfs > 300*time.Microsecond {
		t.Fatalf("NFS null RPC model = %v, want ≈200 µs", nfs)
	}
	if rpc < 3*nfs {
		t.Fatalf("SFS/NFS latency ratio %v/%v below the paper's ≈4x", rpc, nfs)
	}
}

func TestSpinWaitPrecision(t *testing.T) {
	for _, d := range []time.Duration{50 * time.Microsecond, 300 * time.Microsecond, 3 * time.Millisecond} {
		start := time.Now()
		spinWait(d)
		got := time.Since(start)
		if got < d {
			t.Fatalf("spinWait(%v) returned after %v", d, got)
		}
		if got > d+2*time.Millisecond {
			t.Fatalf("spinWait(%v) overshot to %v", d, got)
		}
	}
}

func TestShapedConnDelivers(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	shaped := ShapeListener(l, Profile{PerMessage: time.Millisecond})
	done := make(chan []byte, 1)
	go func() {
		c, err := shaped.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		n, _ := c.Read(buf)
		c.Write(buf[:n]) //nolint:errcheck
		done <- buf[:n]
	}()
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := Shape(raw, Profile{PerMessage: time.Millisecond})
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("echo: %q %v", buf[:n], err)
	}
	if rtt := time.Since(start); rtt < 2*time.Millisecond {
		t.Fatalf("round trip %v under the modeled 2 ms", rtt)
	}
	<-done
}

func TestDiskCharges(t *testing.T) {
	d := NewDisk()
	start := time.Now()
	d.Sync()
	if got := time.Since(start); got < d.SyncCost {
		t.Fatalf("Sync charged %v, want >= %v", got, d.SyncCost)
	}
	start = time.Now()
	d.Write(1 << 20)
	if got := time.Since(start); got < 50*time.Millisecond {
		t.Fatalf("1 MB write charged %v", got)
	}
	// Reads are buffer-cache hits by default.
	start = time.Now()
	d.Read(1 << 20)
	if got := time.Since(start); got > 5*time.Millisecond {
		t.Fatalf("cached read charged %v", got)
	}
}
