// Package netsim models the paper's evaluation hardware (§4.1): two
// 550 MHz Pentium IIIs on 100 Mbit/s switched Ethernet with IBM 18ES
// disks. The modern reproduction machine is orders of magnitude
// faster, so measured absolute numbers would compress every stack
// toward zero; this package re-inserts the era's costs as explicit,
// documented constants.
//
// The model is calibrated from the paper's own micro-benchmarks
// (Figure 5) and standard hardware specifications:
//
//   - network: per-message fixed cost and 100 Mbit/s wire time, set so
//     a null NFS RPC costs ≈200 µs (UDP) / 220 µs (TCP) round trip;
//   - user-level relay: the SFS client and server run in user space
//     and add two boundary crossings per message (≈285 µs per
//     direction at 550 MHz), accounting for the paper's 790 µs SFS
//     null RPC of which only ≈20 µs is encryption;
//   - crypto: ARC4+SHA-1 throughput at 550 MHz, bounding streaming
//     transfers the way the paper's 4.1 vs 7.1 Mbyte/s split shows;
//   - disk: seek-dominated synchronous metadata updates (≈5 ms) and
//     media-rate transfers.
//
// Everything else — RPC counts, caching behaviour, protocol bytes,
// the actual cryptographic transforms — is executed for real; the
// model only charges time for hardware this reproduction does not
// have. Delays are enforced with spin-precision waits because the
// interesting quantities sit near scheduler granularity.
package netsim

import (
	"net"
	"runtime"
	"sync"
	"time"
)

// Profile describes the time costs of one side of a connection.
// A zero Profile charges nothing.
type Profile struct {
	// PerMessage is charged once per Write (packet processing,
	// interrupts, syscall entry).
	PerMessage time.Duration
	// PerByte is charged per payload byte (wire time).
	PerByte time.Duration
	// CopyPerByte models user-space staging copies (the SFS daemons
	// memcpy every payload byte between buffers on the era's hardware).
	// Flat Writes always pay it; vectored WriteSegments does not —
	// a scatter-gather sender has no staging copy to charge for.
	CopyPerByte time.Duration
	// RelayPerMessage models the SFS user-level relay: the extra
	// boundary crossings a message suffers passing through sfscd or
	// sfssd rather than staying in the kernel.
	RelayPerMessage time.Duration
	// CryptoPerByte models symmetric encryption and MAC cost at the
	// era's CPU speed. Zero for unencrypted stacks.
	CryptoPerByte time.Duration
	// CryptoPerMessage is the fixed per-message crypto cost (MAC
	// re-keying, padding).
	CryptoPerMessage time.Duration
}

// Cost returns the total charge for one flat-Write message of n
// bytes, staging copy included.
func (p Profile) Cost(n int) time.Duration {
	return p.PerMessage + p.RelayPerMessage + p.CryptoPerMessage +
		time.Duration(n)*(p.PerByte+p.CryptoPerByte+p.CopyPerByte)
}

// vectoredCost is Cost without the user-space staging-copy component:
// the charge for a scatter-gather send of n bytes.
func (p Profile) vectoredCost(n int) time.Duration {
	return p.PerMessage + p.RelayPerMessage + p.CryptoPerMessage +
		time.Duration(n)*(p.PerByte+p.CryptoPerByte)
}

// Standard calibration constants (see package comment and DESIGN.md).
const (
	// Wire time on 100 Mbit/s Ethernet: 80 ns/byte.
	WireNsPerByte = 80
	// Per-message processing for the kernel NFS stacks. Two
	// messages per RPC ⇒ 100 µs each side gives the paper's 200 µs
	// null RPC over UDP.
	UDPPerMessage = 100 * time.Microsecond
	// TCP adds stream-processing overhead (220 µs null RPC).
	TCPPerMessage = 110 * time.Microsecond
	// The SFS user-level relay: (790−220−20)/2 ≈ 275 µs extra per
	// message direction.
	SFSRelayPerMessage = 275 * time.Microsecond
	// Software encryption cost: ≈20 µs fixed per RPC...
	SFSCryptoPerMessage = 10 * time.Microsecond
	// ...plus a throughput cap. The paper moves 7.1→4.1 Mbyte/s
	// when encryption turns on: ≈1/(4.1M) − 1/(7.1M) ≈ 103 ns/byte.
	SFSCryptoNsPerByte = 103
	// User-level copies cap unencrypted SFS streaming at
	// 7.1 Mbyte/s vs 9.3: ≈ 1/(7.1M) − 1/(9.3M) ≈ 33 ns/byte.
	SFSCopyNsPerByte = 33
)

// NFSUDP returns the per-side profile of the kernel NFS-over-UDP
// baseline.
func NFSUDP() Profile {
	return Profile{PerMessage: UDPPerMessage, PerByte: WireNsPerByte}
}

// NFSTCP returns the per-side profile of the kernel NFS-over-TCP
// baseline.
func NFSTCP() Profile {
	return Profile{PerMessage: TCPPerMessage, PerByte: WireNsPerByte}
}

// SFS returns the per-side profile of the SFS stack. encrypted
// selects whether the ARC4+MAC cost applies (the paper's "SFS" vs
// "SFS w/o encryption" rows).
func SFS(encrypted bool) Profile {
	p := Profile{
		PerMessage:      TCPPerMessage,
		PerByte:         WireNsPerByte,
		CopyPerByte:     SFSCopyNsPerByte,
		RelayPerMessage: SFSRelayPerMessage,
	}
	if encrypted {
		p.CryptoPerByte = SFSCryptoNsPerByte
		p.CryptoPerMessage = SFSCryptoPerMessage
	}
	return p
}

// spinWait blocks for d with sub-scheduler precision: it sleeps for
// the bulk and spins the remainder. The spin yields the processor on
// every iteration: modeled wire/crypto time is not CPU time, so other
// goroutines — the rest of a pipelined read or write window, the
// peer's reply path, real crypto — must be able to run during the
// charge. With an empty run queue the yield is nearly free, keeping
// the precision the single-threaded micro-benchmarks rely on.
func spinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > 2*time.Millisecond {
		time.Sleep(d - time.Millisecond)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// Conn shapes the write side of a connection with a Profile.
type Conn struct {
	net.Conn
	p    Profile
	mu   sync.Mutex
	vbuf net.Buffers // WriteSegments scratch, guarded by mu
}

// Shape wraps conn so every Write is charged under p. Shape both ends
// of a connection to model both directions.
func Shape(conn net.Conn, p Profile) *Conn {
	return &Conn{Conn: conn, p: p}
}

// Write charges the model cost, then forwards.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	spinWait(c.p.Cost(len(b)))
	c.mu.Unlock()
	return c.Conn.Write(b)
}

// WriteSegments charges one message at the vectored rate — everything
// Cost charges except the user-space staging copy, which a
// scatter-gather send does not perform — then forwards the segments
// (writev on OS sockets, sequential writes otherwise). It satisfies
// sunrpc.SegmentWriter; copied is always 0. Segments are not retained.
func (c *Conn) WriteSegments(segs [][]byte) (int, int, error) {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	c.mu.Lock()
	spinWait(c.p.vectoredCost(n))
	// net.Buffers.WriteTo consumes its receiver (re-slices and zeroes
	// entries), so build it in the scratch and restore the full slice
	// afterwards for reuse.
	bufs := append(c.vbuf[:0], segs...)
	c.vbuf = bufs // keep the pre-WriteTo header for scratch reuse
	_, err := (&bufs).WriteTo(c.Conn)
	for i := range c.vbuf {
		c.vbuf[i] = nil
	}
	c.vbuf = c.vbuf[:0]
	c.mu.Unlock()
	if err != nil {
		return 0, 0, err
	}
	return n, 0, nil
}

// PacketConn shapes the send side of a packet connection (the NFS
// over UDP server's replies).
type PacketConn struct {
	net.PacketConn
	p  Profile
	mu sync.Mutex
}

// ShapePacketConn wraps pc so every WriteTo is charged under p.
func ShapePacketConn(pc net.PacketConn, p Profile) *PacketConn {
	return &PacketConn{PacketConn: pc, p: p}
}

// WriteTo charges the model cost, then forwards.
func (c *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	spinWait(c.p.Cost(len(b)))
	c.mu.Unlock()
	return c.PacketConn.WriteTo(b, addr)
}

// Listener shapes every accepted connection.
type Listener struct {
	net.Listener
	p Profile
}

// ShapeListener wraps l so accepted connections are shaped with p on
// their write side.
func ShapeListener(l net.Listener, p Profile) *Listener {
	return &Listener{Listener: l, p: p}
}

// Accept shapes the accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Shape(c, l.p), nil
}

// Disk models the evaluation machines' SCSI disk for the substrate
// file system. The dominant term for the paper's metadata-heavy
// phases is the synchronous update (seek + rotation), ≈5 ms; writes
// stream at media rate. Reads are charged nothing by default: the
// paper's working sets fit the servers' 256 MB buffer caches (and its
// streaming micro-benchmark deliberately reads a sparse file), so
// benchmark reads are cache hits.
type Disk struct {
	// SyncCost is charged per synchronous metadata update/commit.
	SyncCost time.Duration
	// WriteNsPerByte is media transfer time for writes.
	WriteNsPerByte time.Duration
	// ReadNsPerByte is media transfer time for reads that miss the
	// buffer cache (0 = always hit, the benchmark assumption).
	ReadNsPerByte time.Duration
}

// NewDisk returns the calibrated IBM 18ES stand-in.
func NewDisk() *Disk {
	return &Disk{
		SyncCost:       5 * time.Millisecond,
		WriteNsPerByte: 60, // ≈16 Mbyte/s media rate
	}
}

// Read charges a media read of n bytes.
func (d *Disk) Read(n int) { spinWait(time.Duration(n) * d.ReadNsPerByte) }

// Write charges an asynchronous media write of n bytes.
func (d *Disk) Write(n int) { spinWait(time.Duration(n) * d.WriteNsPerByte) }

// Sync charges a synchronous update.
func (d *Disk) Sync() { spinWait(d.SyncCost) }
