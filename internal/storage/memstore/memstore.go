// Package memstore is the default storage backend: the original
// in-memory content store extracted from internal/vfs behind the
// storage.MetadataStore and storage.BlockStore interfaces. Metadata
// journaling is a no-op (the node tree is the only copy), content
// lives in per-file byte slices, and the RFC 1813 unstable-write
// shadow machinery (keep the last stable image until Commit) moves
// here with it, so the vfs's test-only Restart hook keeps its exact
// pre-refactor semantics and every figure stays byte-comparable.
package memstore

import (
	"fmt"
	"sync"

	"repro/internal/storage"
)

const numShards = 64

type file struct {
	data []byte
	// shadow holds the last stable image while unstable writes are
	// outstanding (RFC 1813 §4.8). Revert restores it; Commit,
	// Truncate, and stable writes drop it.
	shadow    []byte
	hasShadow bool
}

type shard struct {
	mu    sync.RWMutex
	files map[uint64]*file
}

// Store implements storage.MetadataStore and storage.BlockStore in
// memory. The shard locks guard only the id→file maps; per-file field
// access relies on the vfs contract that mutations of one id are
// serialized by the caller.
type Store struct {
	shards [numShards]shard
}

// New returns an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].files = make(map[uint64]*file)
	}
	return s
}

func (s *Store) shardOf(id uint64) *shard {
	return &s.shards[id&(numShards-1)]
}

// lookup returns the file for id, or nil.
func (s *Store) lookup(id uint64) *file {
	sh := s.shardOf(id)
	sh.mu.RLock()
	f := sh.files[id]
	sh.mu.RUnlock()
	return f
}

// fetch returns the file for id, creating it if needed.
func (s *Store) fetch(id uint64) *file {
	sh := s.shardOf(id)
	sh.mu.RLock()
	f := sh.files[id]
	sh.mu.RUnlock()
	if f != nil {
		return f
	}
	sh.mu.Lock()
	f = sh.files[id]
	if f == nil {
		f = &file{}
		sh.files[id] = f
	}
	sh.mu.Unlock()
	return f
}

// LogMeta is a no-op: the node tree is the in-memory store's only
// metadata copy.
func (s *Store) LogMeta(*storage.MetaRecord) error { return nil }

// Close is a no-op.
func (s *Store) Close() error { return nil }

// ReadAt copies content of id at off into p. The vfs guarantees the
// range lies within the file's size.
func (s *Store) ReadAt(id, off uint64, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	f := s.lookup(id)
	if f == nil || off+uint64(len(p)) > uint64(len(f.data)) {
		return fmt.Errorf("memstore: read of id %d [%d,+%d) beyond stored extent", id, off, len(p))
	}
	copy(p, f.data[off:])
	return nil
}

// WriteAt stores data at off, zero-filling any gap. An unstable write
// snapshots the stable image first so Revert can discard it.
func (s *Store) WriteAt(id, off uint64, data []byte, stable bool, _ int64) error {
	f := s.fetch(id)
	if !stable && !f.hasShadow {
		f.shadow = append([]byte(nil), f.data...)
		f.hasShadow = true
	}
	end := off + uint64(len(data))
	if end > uint64(len(f.data)) {
		f.data = append(f.data, make([]byte, end-uint64(len(f.data)))...)
	}
	copy(f.data[off:end], data)
	if stable {
		f.shadow, f.hasShadow = nil, false
	}
	return nil
}

// Truncate sets the size of id. Truncation is stable: it drops any
// unstable-write shadow.
func (s *Store) Truncate(id, size uint64) error {
	f := s.fetch(id)
	if uint64(len(f.data)) > size {
		f.data = f.data[:size]
	} else {
		f.data = append(f.data, make([]byte, size-uint64(len(f.data)))...)
	}
	f.shadow, f.hasShadow = nil, false
	return nil
}

// Commit drops the unstable-write shadow: the current image is now
// the stable one.
func (s *Store) Commit(id uint64) error {
	if f := s.lookup(id); f != nil {
		f.shadow, f.hasShadow = nil, false
	}
	return nil
}

// Remove drops all content of id.
func (s *Store) Remove(id uint64) error {
	sh := s.shardOf(id)
	sh.mu.Lock()
	delete(sh.files, id)
	sh.mu.Unlock()
	return nil
}

// Revert implements storage.Restarter: it restores id's last stable
// image, simulating the loss of uncommitted unstable writes at a
// server crash. The vfs calls it under the node's lock.
func (s *Store) Revert(id uint64) (size uint64, ok bool) {
	f := s.lookup(id)
	if f == nil || !f.hasShadow {
		return 0, false
	}
	f.data = f.shadow
	f.shadow, f.hasShadow = nil, false
	return uint64(len(f.data)), true
}
