package memstore

import (
	"bytes"
	"testing"
)

func readT(t *testing.T, s *Store, id, off uint64, n int) []byte {
	t.Helper()
	p := make([]byte, n)
	if err := s.ReadAt(id, off, p); err != nil {
		t.Fatalf("ReadAt(%d, %d, %d): %v", id, off, n, err)
	}
	return p
}

func TestWriteReadTruncate(t *testing.T) {
	s := New()
	if err := s.WriteAt(1, 4, []byte("hello"), true, 0); err != nil {
		t.Fatal(err)
	}
	// The gap before the write zero-fills.
	if got := readT(t, s, 1, 0, 9); !bytes.Equal(got, append(make([]byte, 4), "hello"...)) {
		t.Fatalf("read = %q", got)
	}
	if err := s.Truncate(1, 6); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(1, 0, make([]byte, 9)); err == nil {
		t.Fatal("read beyond truncated extent succeeded")
	}
	if err := s.Truncate(1, 8); err != nil {
		t.Fatal(err)
	}
	// Growing truncate zero-fills too.
	if got := readT(t, s, 1, 4, 4); !bytes.Equal(got, []byte{'h', 'e', 0, 0}) {
		t.Fatalf("after grow: read = %q", got)
	}
	if err := s.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(1, 0, make([]byte, 1)); err == nil {
		t.Fatal("read of removed id succeeded")
	}
}

// TestShadowSemantics pins the RFC 1813 unstable-write machinery the
// vfs Restart hook depends on: the first unstable write snapshots the
// stable image, Revert restores it, and Commit / Truncate / stable
// writes drop it.
func TestShadowSemantics(t *testing.T) {
	s := New()
	if err := s.WriteAt(1, 0, []byte("stable"), true, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Revert(1); ok {
		t.Fatal("Revert with no unstable writes reported a shadow")
	}
	if err := s.WriteAt(1, 0, []byte("UNSTABLE!"), false, 0); err != nil {
		t.Fatal(err)
	}
	size, ok := s.Revert(1)
	if !ok || size != 6 {
		t.Fatalf("Revert = (%d, %v), want (6, true)", size, ok)
	}
	if got := readT(t, s, 1, 0, 6); string(got) != "stable" {
		t.Fatalf("after revert: %q", got)
	}

	// Commit makes the unstable image the stable one.
	if err := s.WriteAt(1, 0, []byte("committed"), false, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Revert(1); ok {
		t.Fatal("Revert after Commit reported a shadow")
	}
	if got := readT(t, s, 1, 0, 9); string(got) != "committed" {
		t.Fatalf("after commit: %q", got)
	}

	// A stable write mid-stream also drops the shadow.
	if err := s.WriteAt(1, 0, []byte("unstable1"), false, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(1, 0, []byte("stable##2"), true, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Revert(1); ok {
		t.Fatal("Revert after stable write reported a shadow")
	}

	// Truncate is stable: it drops the shadow too.
	if err := s.WriteAt(1, 0, []byte("unstable3"), false, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(1, 4); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Revert(1); ok {
		t.Fatal("Revert after Truncate reported a shadow")
	}
}

// TestShadowSnapshotsFirstImage: a second unstable write must not
// re-snapshot — Revert returns to the last *stable* image, not the
// previous unstable one.
func TestShadowSnapshotsFirstImage(t *testing.T) {
	s := New()
	if err := s.WriteAt(1, 0, []byte("AAAA"), true, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(1, 0, []byte("BBBB"), false, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(1, 0, []byte("CCCCCCCC"), false, 0); err != nil {
		t.Fatal(err)
	}
	size, ok := s.Revert(1)
	if !ok || size != 4 {
		t.Fatalf("Revert = (%d, %v), want (4, true)", size, ok)
	}
	if got := readT(t, s, 1, 0, 4); string(got) != "AAAA" {
		t.Fatalf("after revert: %q, want AAAA", got)
	}
}
