// Package wal implements the write-ahead log under storage/diskstore:
// an append-only file of CRC-framed records with group commit.
//
// # Format
//
//	header:  "SFSWAL01" magic | epoch u64        (16 bytes)
//	record:  len u32 | crc32(payload) u32 | payload
//
// All integers are little-endian. The epoch counts opens: every Open
// reads the stored epoch, increments it, and fsyncs the header before
// serving appends, so a reopened log is distinguishable from the boot
// that crashed — the vfs derives the NFS write verifier from it.
// Recovery truncates the log at the first torn or corrupt record (a
// crash mid-write), keeping every intact record before it.
//
// # Group commit
//
// Append buffers records in user space and returns immediately — the
// WRITE(unstable) path. Sync is the COMMIT path: the first caller in
// becomes the leader, writes the buffered batch, and issues one
// fsync; callers that arrive while the leader is flushing wait and
// then find their records already durable. The records-per-fsync
// histogram is the direct measure of how well commits batch.
//
// The append hot path is allocation-free at steady state: callers
// reserve space with Append(size, fill) and encode in place, and the
// two append buffers are recycled across flushes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

const (
	magic      = "SFSWAL01"
	headerSize = 16
	frameSize  = 8 // len u32 + crc u32

	// maxRecord bounds a single record so a corrupt length field
	// cannot drive a huge allocation during recovery.
	maxRecord = 64 << 20
)

// DefaultAutoFlush is the buffered-byte threshold past which Append
// spills the buffer to the OS (write, no fsync). Spilled records
// survive kill -9 but not power loss; only Sync promises stability.
const DefaultAutoFlush = 256 << 10

// ErrClosed is returned by operations on a closed (or crashed) log.
var ErrClosed = errors.New("wal: log closed")

// Options tunes a WAL.
type Options struct {
	// AutoFlushBytes overrides DefaultAutoFlush; negative disables
	// auto-flush entirely (everything buffers until Flush/Sync).
	AutoFlushBytes int
}

// ReplayInfo summarizes the recovery scan done by Open.
type ReplayInfo struct {
	Records   uint64        // intact records replayed
	Bytes     uint64        // file bytes scanned (frames + payloads)
	Truncated bool          // a torn tail was cut off
	Elapsed   time.Duration // scan wall time
}

// WAL is an append-only record log with group commit. All methods are
// safe for concurrent use.
type WAL struct {
	autoFlush int

	// mu guards the append state: buf accumulates encoded records,
	// seq counts records ever appended.
	mu     sync.Mutex
	buf    []byte
	seq    uint64
	closed bool

	// flushMu serializes file writes and fsyncs (the group-commit
	// leader lock) and guards f, spare, and written. Lock order:
	// flushMu before mu.
	flushMu sync.Mutex
	f       *os.File
	spare   []byte
	written uint64 // records handed to the OS

	synced atomic.Uint64 // records known durable

	epoch  uint64
	replay ReplayInfo

	appends     stats.Counter
	appendBytes stats.Counter
	flushes     stats.Counter
	fsyncs      stats.Counter
	batch       stats.Histogram
}

// Open opens or creates the log at path, replays intact records
// through replay (payload slices are only valid during the call),
// truncates any torn tail, and bumps the epoch. A replay error aborts
// the open: the log is corrupt in a way recovery cannot repair.
func Open(path string, opts Options, replay func(payload []byte) error) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f, autoFlush: opts.AutoFlushBytes}
	if w.autoFlush == 0 {
		w.autoFlush = DefaultAutoFlush
	}
	if err := w.recover(replay); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *WAL) recover(replay func(payload []byte) error) error {
	start := time.Now()
	st, err := w.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		w.epoch = 1
		return w.writeHeader()
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(w.f, hdr[:]); err != nil {
		return fmt.Errorf("wal: short header: %w", err)
	}
	if string(hdr[:8]) != magic {
		return fmt.Errorf("wal: bad magic %q", hdr[:8])
	}
	w.epoch = binary.LittleEndian.Uint64(hdr[8:]) + 1

	// Scan records until EOF or the first torn/corrupt one.
	rest := make([]byte, st.Size()-headerSize)
	if _, err := io.ReadFull(w.f, rest); err != nil {
		return err
	}
	off := 0
	for off < len(rest) {
		if off+frameSize > len(rest) {
			w.replay.Truncated = true
			break
		}
		n := int(binary.LittleEndian.Uint32(rest[off:]))
		crc := binary.LittleEndian.Uint32(rest[off+4:])
		if n <= 0 || n > maxRecord || off+frameSize+n > len(rest) {
			w.replay.Truncated = true
			break
		}
		payload := rest[off+frameSize : off+frameSize+n]
		if crc32.ChecksumIEEE(payload) != crc {
			w.replay.Truncated = true
			break
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				return fmt.Errorf("wal: replay record %d: %w", w.replay.Records, err)
			}
		}
		w.replay.Records++
		off += frameSize + n
	}
	if w.replay.Truncated {
		if err := w.f.Truncate(int64(headerSize + off)); err != nil {
			return err
		}
	}
	w.replay.Bytes = uint64(off)
	w.seq = w.replay.Records
	w.written = w.seq
	w.synced.Store(w.seq)
	if err := w.writeHeader(); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(headerSize+off), io.SeekStart); err != nil {
		return err
	}
	w.replay.Elapsed = time.Since(start)
	return nil
}

// writeHeader persists the current epoch and leaves the offset at the
// end of the scanned region (callers reposition as needed).
func (w *WAL) writeHeader() error {
	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint64(hdr[8:], w.epoch)
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Inc()
	if _, err := w.f.Seek(headerSize, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// Epoch returns the boot epoch assigned by Open.
func (w *WAL) Epoch() uint64 { return w.epoch }

// ReplayInfo returns the recovery summary from Open.
func (w *WAL) ReplayInfo() ReplayInfo { return w.replay }

// Append reserves size bytes for one record and calls fill to encode
// the payload in place. The record buffers in user space (crossing
// the auto-flush threshold spills it to the OS); it is durable only
// after a Sync whose return it precedes.
func (w *WAL) Append(size int, fill func(dst []byte)) error {
	if size <= 0 || size > maxRecord {
		return fmt.Errorf("wal: record size %d out of range", size)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	off := len(w.buf)
	need := off + frameSize + size
	if cap(w.buf) < need {
		grown := make([]byte, off, max(need, 2*cap(w.buf)))
		copy(grown, w.buf)
		w.buf = grown
	}
	w.buf = w.buf[:need]
	payload := w.buf[off+frameSize : need]
	fill(payload)
	binary.LittleEndian.PutUint32(w.buf[off:], uint32(size))
	binary.LittleEndian.PutUint32(w.buf[off+4:], crc32.ChecksumIEEE(payload))
	w.seq++
	buffered := len(w.buf)
	w.mu.Unlock()
	w.appends.Inc()
	w.appendBytes.Add(uint64(frameSize + size))
	if w.autoFlush > 0 && buffered >= w.autoFlush {
		return w.Flush()
	}
	return nil
}

// Flush hands buffered records to the OS without forcing them to
// media: they survive a kill -9 of this process but not power loss.
func (w *WAL) Flush() error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	_, err := w.flushLocked()
	return err
}

// flushLocked writes the append buffer to the file. Caller holds
// flushMu. Returns the record watermark now handed to the OS.
func (w *WAL) flushLocked() (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.written, ErrClosed
	}
	buf, upto := w.buf, w.seq
	if len(buf) == 0 {
		w.mu.Unlock()
		return upto, nil
	}
	w.buf = w.spare[:0]
	w.mu.Unlock()
	_, err := w.f.Write(buf)
	w.spare = buf[:0]
	if err != nil {
		return w.written, err
	}
	w.flushes.Inc()
	w.written = upto
	return upto, nil
}

// SyncClocked is Sync with the whole wait — leader work or follower
// blocking alike — charged to clk's fsync stage. From the request's
// point of view the distinction does not matter: this is the time the
// RPC spent waiting for the group commit covering its records.
func (w *WAL) SyncClocked(clk *stats.StageClock) error {
	t0 := clk.Now()
	err := w.Sync()
	clk.End(stats.StageFsync, t0)
	return err
}

// Sync makes every record appended before the call durable — the
// group-commit point. Concurrent callers share fsyncs: the leader
// flushes and syncs once for everyone who arrived in time.
func (w *WAL) Sync() error {
	w.mu.Lock()
	target := w.seq
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return ErrClosed
	}
	for w.synced.Load() < target {
		w.flushMu.Lock()
		if w.synced.Load() >= target {
			// A leader's fsync covered us while we waited.
			w.flushMu.Unlock()
			return nil
		}
		start := w.synced.Load()
		upto, err := w.flushLocked()
		if err != nil {
			w.flushMu.Unlock()
			return err
		}
		if err := w.f.Sync(); err != nil {
			w.flushMu.Unlock()
			return err
		}
		w.fsyncs.Inc()
		w.batch.Observe(upto - start)
		w.synced.Store(upto)
		w.flushMu.Unlock()
	}
	return nil
}

// Crash simulates kill -9: records still buffered in user space are
// lost, and the file closes without a final flush or sync. Records
// already handed to the OS survive — the page cache outlives the
// process — exactly as with a real SIGKILL.
func (w *WAL) Crash() error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.buf = nil
	w.closed = true
	w.mu.Unlock()
	return w.f.Close()
}

// Close flushes, syncs, and closes the log.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil && !errors.Is(err, ErrClosed) {
		w.f.Close()
		return err
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	return w.f.Close()
}

// Stats is a snapshot of the log's counters.
type Stats struct {
	Epoch       uint64
	Appends     uint64
	AppendBytes uint64
	Flushes     uint64
	Fsyncs      uint64
	Batch       stats.HistSnapshot
}

// StatsSnapshot captures the counters.
func (w *WAL) StatsSnapshot() Stats {
	return Stats{
		Epoch:       w.epoch,
		Appends:     w.appends.Load(),
		AppendBytes: w.appendBytes.Load(),
		Flushes:     w.flushes.Load(),
		Fsyncs:      w.fsyncs.Load(),
		Batch:       w.batch.Snapshot(),
	}
}
