// Package wal implements the write-ahead log under storage/diskstore:
// an append-only record log with group commit, kept short by segment
// rotation at checkpoints.
//
// # Format
//
//	header:  "SFSWAL02" magic | epoch u64 | baseSeq u64 |
//	         crc32(header) u32 | pad u32                  (32 bytes)
//	record:  len u32 | crc32(payload) u32 | payload
//
// All integers are little-endian. Records carry no explicit sequence
// number: the i-th record of a segment (0-based) has seq
// baseSeq + i + 1, so the frame stays 8 bytes and the append path
// allocation-free. The header CRC exists so a corrupted baseSeq is
// detected rather than silently renumbering every record — a bad
// header demotes the whole segment, never shifts replay.
//
// The epoch counts opens: every Open reads the stored epoch,
// increments it, and fsyncs the header before serving appends, so a
// reopened log is distinguishable from the boot that crashed — the
// vfs derives the NFS write verifier from it.
//
// # Rotation
//
// Rotate seals the current segment (flush + fsync), renames it to
// path+".prev" (deleting the previous .prev), and starts a fresh
// segment whose baseSeq continues the chain. The fresh segment is
// created and headered under path+".next" before the live path is
// renamed away, so a failure at any step either completes the
// rotation or leaves the current segment untouched — there is no
// window where acknowledged records live in a file the next boot
// cannot find. The checkpointer calls Rotate right after an image
// lands: the new image covers everything in .prev, and .prev is
// retained one generation so a torn image can fall back to the
// previous image plus a longer replay. The chain therefore never
// holds more than two segments.
//
// # Recovery
//
// Open scans .prev (oldest first) then the current segment, calling
// replay with each intact record's seq, and truncates the first torn
// or corrupt tail it finds. Options.SkipBelow — the seq already
// covered by the caller's checkpoint image — lets Open skip reading
// .prev entirely when the current segment's baseSeq shows .prev is
// fully covered. Corruption never panics: a segment with a bad header
// is dropped (and any later segment with it, since replaying across a
// sequence gap would corrupt state), leaving a shorter but valid
// prefix for the caller to layer over its image.
//
// If SkipBelow ends up above the chain's surviving tail — a crash
// published a checkpoint image but lost the buffered or torn records
// it covered before the rotation ran — Open completes that rotation:
// it seals the scanned segment into the .prev slot and starts a fresh
// segment based at SkipBelow, so fresh appends never reuse seqs the
// image already covers (the caller's replay filter would silently
// drop such records at the next boot, losing acknowledged writes).
//
// # Group commit
//
// Append buffers records in user space and returns immediately — the
// WRITE(unstable) path. Sync is the COMMIT path: the first caller in
// becomes the leader, writes the buffered batch, and issues one
// fsync; callers that arrive while the leader is flushing wait and
// then find their records already durable. The records-per-fsync
// histogram is the direct measure of how well commits batch.
//
// The append hot path is allocation-free at steady state: callers
// reserve space with Append(size, fill) and encode in place, and the
// two append buffers are recycled across flushes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

const (
	magic      = "SFSWAL02"
	headerSize = 32
	frameSize  = 8 // len u32 + crc u32

	// maxRecord bounds a single record so a corrupt length field
	// cannot drive a huge allocation during recovery.
	maxRecord = 64 << 20
)

// DefaultAutoFlush is the buffered-byte threshold past which Append
// spills the buffer to the OS (write, no fsync). Spilled records
// survive kill -9 but not power loss; only Sync promises stability.
const DefaultAutoFlush = 256 << 10

// ErrClosed is returned by operations on a closed (or crashed) log.
var ErrClosed = errors.New("wal: log closed")

// Options tunes a WAL.
type Options struct {
	// AutoFlushBytes overrides DefaultAutoFlush; negative disables
	// auto-flush entirely (everything buffers until Flush/Sync).
	AutoFlushBytes int

	// SkipBelow is the record seq already covered by the caller's
	// checkpoint image. Open still reports every scanned record to
	// replay (the caller filters by seq), but uses SkipBelow to
	// avoid reading the .prev segment at all when the current
	// segment's base shows it is fully covered, and to rebase an
	// emptied log so fresh appends stay above the image.
	SkipBelow uint64
}

// ReplayInfo summarizes the recovery scan done by Open.
type ReplayInfo struct {
	Records   uint64        // intact records scanned (pre-filter)
	Bytes     uint64        // record bytes scanned (frames + payloads)
	Truncated bool          // a torn tail or corrupt segment was cut
	Elapsed   time.Duration // scan wall time
}

// WAL is an append-only record log with group commit. All methods are
// safe for concurrent use.
type WAL struct {
	autoFlush int
	skipBelow uint64
	path      string
	prevPath  string

	// mu guards the append state: buf accumulates encoded records,
	// seq counts records ever appended (absolute, chain-wide), base
	// is the current segment's first seq minus one, and chainBase is
	// the oldest segment's base — the seq below which the log holds
	// no records.
	mu        sync.Mutex
	buf       []byte
	seq       uint64
	base      uint64
	chainBase uint64
	closed    bool

	// flushMu serializes file writes, fsyncs, and rotation (the
	// group-commit leader lock) and guards f, spare, and written.
	// Lock order: flushMu before mu.
	flushMu sync.Mutex
	f       *os.File
	spare   []byte
	written uint64 // records handed to the OS

	synced atomic.Uint64 // records known durable
	live   atomic.Uint64 // record bytes in the current segment

	epoch  uint64
	replay ReplayInfo

	appends     stats.Counter
	appendBytes stats.Counter
	flushes     stats.Counter
	fsyncs      stats.Counter
	rotations   stats.Counter
	batch       stats.Histogram
}

// Open opens or creates the log chain at path (the current segment;
// path+".prev" is the sealed one), replays intact records oldest
// first through replay (payload slices are only valid during the
// call), truncates any torn tail, and bumps the epoch. A replay error
// aborts the open: the log is corrupt in a way recovery cannot
// repair.
func Open(path string, opts Options, replay func(seq uint64, payload []byte) error) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, err
	}
	w := &WAL{
		f:         f,
		autoFlush: opts.AutoFlushBytes,
		skipBelow: opts.SkipBelow,
		path:      path,
		prevPath:  path + ".prev",
	}
	if w.autoFlush == 0 {
		w.autoFlush = DefaultAutoFlush
	}
	if err := w.recover(replay); err != nil {
		w.f.Close() // recover may have swapped in a fresh segment file
		return nil, err
	}
	return w, nil
}

// segInfo describes one scanned segment file.
type segInfo struct {
	hdrOK   bool
	epoch   uint64
	base    uint64
	records uint64
	bytes   uint64 // record bytes in the valid prefix
	torn    bool   // valid prefix ends before EOF
}

func (s segInfo) end() uint64 { return s.base + s.records }

func parseHeader(hdr []byte) (epoch, base uint64, ok bool) {
	le := binary.LittleEndian
	if string(hdr[:8]) != magic || crc32.ChecksumIEEE(hdr[:24]) != le.Uint32(hdr[24:]) {
		return 0, 0, false
	}
	return le.Uint64(hdr[8:]), le.Uint64(hdr[16:]), true
}

// scanSegment parses one segment: header, then records until EOF or
// the first torn/corrupt frame. Corruption is reported in the result,
// not as an error; only I/O failures and replay errors abort.
func scanSegment(f *os.File, replay func(uint64, []byte) error) (segInfo, error) {
	var seg segInfo
	st, err := f.Stat()
	if err != nil {
		return seg, err
	}
	if st.Size() < headerSize {
		return seg, nil
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return seg, err
	}
	if seg.epoch, seg.base, seg.hdrOK = parseHeader(hdr[:]); !seg.hdrOK {
		return seg, nil
	}
	rest := make([]byte, st.Size()-headerSize)
	if _, err := f.ReadAt(rest, headerSize); err != nil {
		return seg, err
	}
	off := 0
	for off < len(rest) {
		if off+frameSize > len(rest) {
			seg.torn = true
			break
		}
		n := int(binary.LittleEndian.Uint32(rest[off:]))
		crc := binary.LittleEndian.Uint32(rest[off+4:])
		if n <= 0 || n > maxRecord || off+frameSize+n > len(rest) {
			seg.torn = true
			break
		}
		payload := rest[off+frameSize : off+frameSize+n]
		if crc32.ChecksumIEEE(payload) != crc {
			seg.torn = true
			break
		}
		if replay != nil {
			if err := replay(seg.base+seg.records+1, payload); err != nil {
				return seg, fmt.Errorf("wal: replay record %d: %w", seg.base+seg.records+1, err)
			}
		}
		seg.records++
		off += frameSize + n
	}
	seg.bytes = uint64(off)
	return seg, nil
}

// truncSeg cuts a segment file at the end of its valid prefix.
func truncSeg(f *os.File, seg segInfo) error {
	if err := f.Truncate(headerSize + int64(seg.bytes)); err != nil {
		return err
	}
	return f.Sync()
}

// finish seals the recovery bookkeeping once epoch/base/chainBase are
// decided: seq watermarks, live-byte gauge, and scan counters.
func (w *WAL) finish(start time.Time, liveBytes uint64) {
	w.seq = max(w.base, w.seq)
	w.written = w.seq
	w.synced.Store(w.seq)
	w.live.Store(liveBytes)
	w.replay.Elapsed = time.Since(start)
}

func (w *WAL) recover(replay func(uint64, []byte) error) error {
	start := time.Now()
	os.Remove(w.path + ".next") // stale temp from an interrupted Rotate
	st, err := w.f.Stat()
	if err != nil {
		return err
	}
	prevF, prevErr := os.OpenFile(w.prevPath, os.O_RDWR, 0)
	if prevErr != nil && !os.IsNotExist(prevErr) {
		return prevErr
	}
	prevExists := prevErr == nil
	if prevExists {
		defer prevF.Close()
	}

	// Fresh log (or one whose files vanished under a live image):
	// start the chain at the image's seq so new records stay above it.
	if st.Size() == 0 && !prevExists {
		w.epoch = 1
		w.base, w.chainBase = w.skipBelow, w.skipBelow
		w.finish(start, 0)
		return w.writeHeader()
	}

	// An empty current segment next to a surviving .prev is a crash
	// between the rotation renames and the first header write:
	// complete the rotation by scanning .prev and re-heading the
	// current segment where it ends.
	if st.Size() == 0 {
		seg, err := scanSegment(prevF, replay)
		if err != nil {
			return err
		}
		if !seg.hdrOK {
			os.Remove(w.prevPath)
			w.epoch = 1
			w.base, w.chainBase = w.skipBelow, w.skipBelow
			w.replay.Truncated = true
		} else {
			if seg.torn {
				if err := truncSeg(prevF, seg); err != nil {
					return err
				}
				w.replay.Truncated = true
			}
			w.epoch = seg.epoch + 1
			w.base = max(seg.end(), w.skipBelow)
			w.chainBase = seg.base
			w.replay.Records = seg.records
			w.replay.Bytes = seg.bytes
		}
		w.finish(start, 0)
		return w.writeHeader()
	}

	var hdr [headerSize]byte
	var curEpoch, curBase uint64
	curHdrOK := false
	if st.Size() >= headerSize {
		if _, err := w.f.ReadAt(hdr[:], 0); err != nil {
			return err
		}
		curEpoch, curBase, curHdrOK = parseHeader(hdr[:])
	}

	// Unreadable current header: fall back to .prev alone, or — with
	// no usable segment at all — restart the chain at the image seq.
	// Either way the surviving records form a valid prefix.
	if !curHdrOK {
		w.replay.Truncated = true
		if prevExists {
			seg, err := scanSegment(prevF, replay)
			if err != nil {
				return err
			}
			if seg.hdrOK {
				if seg.torn {
					if err := truncSeg(prevF, seg); err != nil {
						return err
					}
				}
				w.epoch = seg.epoch + 1
				w.base = max(seg.end(), w.skipBelow)
				w.chainBase = seg.base
				w.replay.Records = seg.records
				w.replay.Bytes = seg.bytes
				w.finish(start, 0)
				return w.resetCur()
			}
			os.Remove(w.prevPath)
		}
		w.epoch = 1
		w.base, w.chainBase = w.skipBelow, w.skipBelow
		w.finish(start, 0)
		return w.resetCur()
	}

	w.epoch = curEpoch + 1
	dropCur := false
	if prevExists {
		if w.skipBelow >= curBase {
			// The image covers every record in .prev: keep it for
			// image fallback but skip reading it.
			var phdr [headerSize]byte
			if _, err := prevF.ReadAt(phdr[:], 0); err == nil {
				if _, pbase, ok := parseHeader(phdr[:]); ok {
					w.chainBase = pbase
				} else {
					os.Remove(w.prevPath)
					w.chainBase = curBase
				}
			} else {
				os.Remove(w.prevPath)
				w.chainBase = curBase
			}
		} else {
			seg, err := scanSegment(prevF, replay)
			if err != nil {
				return err
			}
			switch {
			case !seg.hdrOK:
				// .prev is gone as a record source; the current
				// segment starts past a seq gap and cannot be
				// applied either.
				os.Remove(w.prevPath)
				dropCur = true
				w.base, w.chainBase = w.skipBelow, w.skipBelow
			case seg.torn || seg.end() != curBase:
				// .prev lost its tail (or never met the current
				// segment's base): keep its valid prefix, drop the
				// current records past the gap.
				if seg.torn {
					if err := truncSeg(prevF, seg); err != nil {
						return err
					}
				}
				dropCur = true
				w.base = max(seg.end(), w.skipBelow)
				w.chainBase = seg.base
				w.replay.Records += seg.records
				w.replay.Bytes += seg.bytes
			default:
				w.chainBase = seg.base
				w.replay.Records += seg.records
				w.replay.Bytes += seg.bytes
			}
		}
	} else {
		w.chainBase = curBase
	}
	if dropCur {
		w.replay.Truncated = true
		w.finish(start, 0)
		return w.resetCur()
	}

	w.base = curBase
	seg, err := scanSegment(w.f, replay)
	if err != nil {
		return err
	}
	if seg.torn {
		if err := w.f.Truncate(headerSize + int64(seg.bytes)); err != nil {
			return err
		}
		w.replay.Truncated = true
	}
	w.replay.Records += seg.records
	w.replay.Bytes += seg.bytes
	w.seq = seg.end()

	// The image covers seqs past this segment's durable end: a crash
	// lost the buffered (or torn-off) tail records after the checkpoint
	// image landed but before the WAL rotated. Complete that rotation —
	// seal the scanned segment into the .prev slot and start a fresh
	// segment based at the image's seq — so fresh appends land above
	// the image's coverage instead of reusing seqs the next boot's
	// replay filter would silently discard. The sealed segment keeps
	// the chain's fallback discipline: previous image + .prev replay
	// still reconstructs the pre-crash durable prefix.
	if w.skipBelow > seg.end() {
		if err := w.f.Sync(); err != nil {
			return err
		}
		if err := os.Remove(w.prevPath); err != nil && !os.IsNotExist(err) {
			return err
		}
		if err := os.Rename(w.path, w.prevPath); err != nil {
			return err
		}
		nf, err := os.OpenFile(w.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if err != nil {
			return err
		}
		w.f.Close()
		w.f = nf
		w.chainBase = curBase
		w.base = w.skipBelow
		w.finish(start, 0)
		if err := w.writeHeader(); err != nil {
			return err
		}
		return syncDir(filepath.Dir(w.path))
	}

	w.finish(start, seg.bytes)
	if err := w.writeHeader(); err != nil {
		return err
	}
	_, err = w.f.Seek(headerSize+int64(seg.bytes), io.SeekStart)
	return err
}

// resetCur empties the current segment and rewrites its header with
// the (possibly rebased) epoch and base.
func (w *WAL) resetCur() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	return w.writeHeader()
}

// writeHeaderTo persists a segment header (epoch, base) to f and
// fsyncs it. The file offset is untouched.
func writeHeaderTo(f *os.File, epoch, base uint64) error {
	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint64(hdr[8:], epoch)
	binary.LittleEndian.PutUint64(hdr[16:], base)
	binary.LittleEndian.PutUint32(hdr[24:], crc32.ChecksumIEEE(hdr[:24]))
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	return f.Sync()
}

// writeHeader persists the current epoch and base and leaves the
// offset at the start of the record area (callers reposition as
// needed).
func (w *WAL) writeHeader() error {
	if err := writeHeaderTo(w.f, w.epoch, w.base); err != nil {
		return err
	}
	w.fsyncs.Inc()
	if _, err := w.f.Seek(headerSize, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// Epoch returns the boot epoch assigned by Open.
func (w *WAL) Epoch() uint64 { return w.epoch }

// ReplayInfo returns the recovery summary from Open.
func (w *WAL) ReplayInfo() ReplayInfo { return w.replay }

// Seq returns the seq of the last record appended.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// ChainBase returns the seq below which the chain holds no records:
// the oldest segment's base. A caller whose checkpoint image does not
// reach ChainBase has a hole it cannot replay over.
func (w *WAL) ChainBase() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.chainBase
}

// LiveBytes returns the record bytes in the current segment — the log
// growth since the last rotation, which is what checkpoint triggers
// measure.
func (w *WAL) LiveBytes() uint64 { return w.live.Load() }

// Rotate seals the current segment (flushing and fsyncing everything
// appended so far), renames it to the .prev slot — discarding the
// previous .prev, whose size it returns as the bytes compacted away —
// and starts a fresh segment continuing the seq chain. Callers rotate
// immediately after a checkpoint image lands: the image covers the
// sealed segment, and the sealed segment covers back to the previous
// image for fallback.
//
// Rotation is failure-atomic: the fresh segment is created and
// headered under a .next temp name before the live path is renamed
// away, so any error leaves the WAL un-rotated but fully usable —
// w.f always matches the live path, and no acknowledged record ever
// lands in a file recovery cannot find.
func (w *WAL) Rotate() (freed uint64, err error) {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	upto, err := w.flushLocked()
	if err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	w.fsyncs.Inc()
	w.synced.Store(upto)

	nextPath := w.path + ".next"
	os.Remove(nextPath)
	nf, err := os.OpenFile(nextPath, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return 0, err
	}
	abort := func(e error) (uint64, error) {
		nf.Close()
		os.Remove(nextPath)
		return 0, e
	}
	// Base the fresh segment at the flushed watermark, not w.seq:
	// records appended (buffered) since the flush have seqs above upto
	// and will spill into the fresh segment, where recovery numbers
	// them from its base.
	if err := writeHeaderTo(nf, w.epoch, upto); err != nil {
		return abort(err)
	}
	w.fsyncs.Inc()
	if st, err := os.Stat(w.prevPath); err == nil {
		freed = uint64(st.Size())
	}
	if err := os.Remove(w.prevPath); err != nil && !os.IsNotExist(err) {
		return abort(err)
	}
	if err := os.Rename(w.path, w.prevPath); err != nil {
		return abort(err)
	}
	if err := os.Rename(nextPath, w.path); err != nil {
		// Undo the first rename so the live fd keeps matching the live
		// path; the WAL stays un-rotated but consistent.
		os.Rename(w.prevPath, w.path)
		return abort(err)
	}
	w.mu.Lock()
	old := w.f
	w.f = nf
	w.chainBase = w.base
	w.base = upto
	w.mu.Unlock()
	old.Close()
	if _, err := nf.Seek(headerSize, io.SeekStart); err != nil {
		return 0, err
	}
	w.live.Store(0)
	w.rotations.Inc()
	return freed, syncDir(filepath.Dir(w.path))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Append reserves size bytes for one record and calls fill to encode
// the payload in place. The record buffers in user space (crossing
// the auto-flush threshold spills it to the OS); it is durable only
// after a Sync whose return it precedes.
func (w *WAL) Append(size int, fill func(dst []byte)) error {
	if size <= 0 || size > maxRecord {
		return fmt.Errorf("wal: record size %d out of range", size)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	off := len(w.buf)
	need := off + frameSize + size
	if cap(w.buf) < need {
		grown := make([]byte, off, max(need, 2*cap(w.buf)))
		copy(grown, w.buf)
		w.buf = grown
	}
	w.buf = w.buf[:need]
	payload := w.buf[off+frameSize : need]
	fill(payload)
	binary.LittleEndian.PutUint32(w.buf[off:], uint32(size))
	binary.LittleEndian.PutUint32(w.buf[off+4:], crc32.ChecksumIEEE(payload))
	w.seq++
	buffered := len(w.buf)
	w.mu.Unlock()
	w.appends.Inc()
	w.appendBytes.Add(uint64(frameSize + size))
	w.live.Add(uint64(frameSize + size))
	if w.autoFlush > 0 && buffered >= w.autoFlush {
		return w.Flush()
	}
	return nil
}

// Flush hands buffered records to the OS without forcing them to
// media: they survive a kill -9 of this process but not power loss.
func (w *WAL) Flush() error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	_, err := w.flushLocked()
	return err
}

// flushLocked writes the append buffer to the file. Caller holds
// flushMu. Returns the record watermark now handed to the OS.
func (w *WAL) flushLocked() (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.written, ErrClosed
	}
	buf, upto := w.buf, w.seq
	if len(buf) == 0 {
		w.mu.Unlock()
		return upto, nil
	}
	w.buf = w.spare[:0]
	w.mu.Unlock()
	_, err := w.f.Write(buf)
	w.spare = buf[:0]
	if err != nil {
		return w.written, err
	}
	w.flushes.Inc()
	w.written = upto
	return upto, nil
}

// SyncClocked is Sync with the whole wait — leader work or follower
// blocking alike — charged to clk's fsync stage. From the request's
// point of view the distinction does not matter: this is the time the
// RPC spent waiting for the group commit covering its records.
func (w *WAL) SyncClocked(clk *stats.StageClock) error {
	t0 := clk.Now()
	err := w.Sync()
	clk.End(stats.StageFsync, t0)
	return err
}

// Sync makes every record appended before the call durable — the
// group-commit point. Concurrent callers share fsyncs: the leader
// flushes and syncs once for everyone who arrived in time.
func (w *WAL) Sync() error {
	w.mu.Lock()
	target := w.seq
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return ErrClosed
	}
	for w.synced.Load() < target {
		w.flushMu.Lock()
		if w.synced.Load() >= target {
			// A leader's fsync covered us while we waited.
			w.flushMu.Unlock()
			return nil
		}
		start := w.synced.Load()
		upto, err := w.flushLocked()
		if err != nil {
			w.flushMu.Unlock()
			return err
		}
		if err := w.f.Sync(); err != nil {
			w.flushMu.Unlock()
			return err
		}
		w.fsyncs.Inc()
		w.batch.Observe(upto - start)
		w.synced.Store(upto)
		w.flushMu.Unlock()
	}
	return nil
}

// Crash simulates kill -9: records still buffered in user space are
// lost, and the file closes without a final flush or sync. Records
// already handed to the OS survive — the page cache outlives the
// process — exactly as with a real SIGKILL.
func (w *WAL) Crash() error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.buf = nil
	w.closed = true
	w.mu.Unlock()
	return w.f.Close()
}

// Close flushes, syncs, and closes the log.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil && !errors.Is(err, ErrClosed) {
		w.f.Close()
		return err
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	return w.f.Close()
}

// Stats is a snapshot of the log's counters.
type Stats struct {
	Epoch       uint64
	Appends     uint64
	AppendBytes uint64
	Flushes     uint64
	Fsyncs      uint64
	Rotations   uint64
	Batch       stats.HistSnapshot
}

// StatsSnapshot captures the counters.
func (w *WAL) StatsSnapshot() Stats {
	return Stats{
		Epoch:       w.epoch,
		Appends:     w.appends.Load(),
		AppendBytes: w.appendBytes.Load(),
		Flushes:     w.flushes.Load(),
		Fsyncs:      w.fsyncs.Load(),
		Rotations:   w.rotations.Load(),
		Batch:       w.batch.Snapshot(),
	}
}
